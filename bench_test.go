package mamdr

// The benchmarks below regenerate every table and figure of the MAMDR
// paper's evaluation section, one benchmark per artifact, at the
// harness's Tiny scale so `go test -bench=.` completes on a laptop.
// For recorded numbers at the larger Quick/Full scales, run
// `go run ./cmd/experiments -run all -scale quick` (see EXPERIMENTS.md).
//
// The reported "tables/op" metric is literal: each iteration produces
// the complete table.

import (
	"context"
	"fmt"
	"testing"

	"mamdr/internal/autograd"
	"mamdr/internal/cluster"
	"mamdr/internal/data"
	"mamdr/internal/exp"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/ps"
	"mamdr/internal/synth"
)

// benchTable runs one registered experiment per iteration.
func benchTable(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(id, exp.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkTableI regenerates the dataset statistics table (Table I;
// Tables II-IV are produced by BenchmarkTableII_IV).
func BenchmarkTableI(b *testing.B) { benchTable(b, "table1") }

// BenchmarkTableII_IV regenerates the per-domain statistics tables.
func BenchmarkTableII_IV(b *testing.B) { benchTable(b, "table2-4") }

// BenchmarkTableV regenerates the headline baseline-vs-MAMDR comparison.
func BenchmarkTableV(b *testing.B) { benchTable(b, "table5") }

// BenchmarkTableVI regenerates the DN/DR ablation.
func BenchmarkTableVI(b *testing.B) { benchTable(b, "table6") }

// BenchmarkTableVII regenerates the per-domain Amazon-6 ablation.
func BenchmarkTableVII(b *testing.B) { benchTable(b, "table7") }

// BenchmarkTableVIII regenerates the industry-scale comparison.
func BenchmarkTableVIII(b *testing.B) { benchTable(b, "table8") }

// BenchmarkTableIX regenerates the top-10 industry domains comparison.
func BenchmarkTableIX(b *testing.B) { benchTable(b, "table9") }

// BenchmarkTableX regenerates the learning-framework comparison.
func BenchmarkTableX(b *testing.B) { benchTable(b, "table10") }

// BenchmarkFigure8 regenerates the DR sample-number sweep.
func BenchmarkFigure8(b *testing.B) { benchTable(b, "figure8") }

// BenchmarkFigure9 regenerates the inner/outer learning-rate sweep.
func BenchmarkFigure9(b *testing.B) { benchTable(b, "figure9") }

// BenchmarkDNOrderAblation measures DN's shuffled vs fixed domain order.
func BenchmarkDNOrderAblation(b *testing.B) { benchTable(b, "ablation-dnorder") }

// BenchmarkDROrderAblation measures DR's fixed helper→target order
// against reversed and helper-only variants.
func BenchmarkDROrderAblation(b *testing.B) { benchTable(b, "ablation-drorder") }

// BenchmarkPSCache measures the embedding PS-Worker cache's
// synchronization-traffic saving.
func BenchmarkPSCache(b *testing.B) { benchTable(b, "ablation-cache") }

// BenchmarkConflictScaling measures PCGrad's O(n²) vs DN's O(n) per-
// epoch wall time as the domain count grows.
func BenchmarkConflictScaling(b *testing.B) { benchTable(b, "conflict-scaling") }

// BenchmarkConflictCosine measures the cross-domain gradient cosine
// diagnostic before/after Alternate and DN training.
func BenchmarkConflictCosine(b *testing.B) { benchTable(b, "conflict-cosine") }

// BenchmarkGeneralizationLODO measures zero-shot transfer to held-out
// domains (the conclusion's domain-generalization extension).
func BenchmarkGeneralizationLODO(b *testing.B) { benchTable(b, "generalization") }

// --- micro-benchmarks: training-loop building blocks ---

func benchDataset(b *testing.B) *data.Dataset {
	b.Helper()
	return synth.Generate(synth.Taobao10(2000, 3))
}

// BenchmarkModelForward measures one forward pass per registered model
// structure on a 64-sample batch.
func BenchmarkModelForward(b *testing.B) {
	ds := benchDataset(b)
	batch := ds.MakeBatch(0, ds.Domains[0].Train[:min(64, len(ds.Domains[0].Train))])
	for _, name := range models.Names() {
		b.Run(name, func(b *testing.B) {
			m := models.MustNew(name, models.Config{Dataset: ds, EmbDim: 8, Hidden: []int{32, 16}, Seed: 3})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Forward(batch, false)
			}
		})
	}
}

// BenchmarkTrainEpoch measures one full training epoch per framework on
// the Taobao-10 Tiny dataset with the MLP base model.
func BenchmarkTrainEpoch(b *testing.B) {
	ds := benchDataset(b)
	for _, key := range framework.Keys() {
		b.Run(key, func(b *testing.B) {
			m := models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 8, Hidden: []int{32, 16}, Seed: 3})
			fw := framework.MustNew(key)
			cfg := framework.Config{Epochs: 1, BatchSize: 64, Seed: 3}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fw.Fit(m, ds, cfg)
			}
		})
	}
}

// BenchmarkClusterSync measures the scatter-gather synchronization path
// against 1 vs 4 in-process parameter-server shards: each iteration is
// one worker round — pull all dense tensors, pull a batch's embedding
// rows from a wide table, push the combined delta. The sub-benchmark
// names report the plan imbalance so the partition quality is visible
// next to the latency numbers.
func BenchmarkClusterSync(b *testing.B) {
	const embRows, embCols = 20000, 16
	params := []*autograd.Tensor{
		autograd.ParamZeros(embRows, embCols), // wide embedding table, field 0
		autograd.ParamZeros(128, 64),          // dense
		autograd.ParamZeros(64, 1),            // dense
	}
	tables := map[int]int{0: 0}
	layout := ps.LayoutOf(params, tables)

	rows := make([]int, 512)
	for i := range rows {
		rows[i] = (i * 39) % embRows // spread over the table
	}
	rowDeltas := make([][]float64, len(rows))
	for i := range rowDeltas {
		rowDeltas[i] = make([]float64, embCols)
	}
	denseDelta := make([]float64, 128*64)

	for _, shards := range []int{1, 4} {
		plan := ps.NewPlan(layout, shards, 7)
		local := cluster.NewLocal(params, plan, cluster.ShardOptions{}, cluster.Options{})
		b.Run(fmt.Sprintf("shards=%d/imbalance=%.2f", shards, plan.Imbalance()), func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				local.Router.PullDense(ctx)
				local.Router.PullRows(ctx, 0, rows)
				local.Router.PushDelta(ctx, ps.Delta{
					WorkerID: 0, Seq: int64(i + 1),
					Dense:     map[int][]float64{1: denseDelta},
					Rows:      map[int][]int{0: rows},
					RowDeltas: map[int][][]float64{0: rowDeltas},
				})
			}
		})
	}
}
