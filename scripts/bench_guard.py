#!/usr/bin/env python3
"""Gate kernel benchmarks against the committed baseline.

Usage: bench_guard.py <baseline.txt> <current.txt> [max_regression]

Both files are raw `go test -bench` output. For each benchmark name
(CPU-count suffix stripped, so `-4` runners compare against a `-1`
baseline) the median ns/op is compared; the run fails if any benchmark
regressed by more than max_regression (default 0.20 = +20%).

Medians across -count repetitions absorb single-run noise; the 20%
threshold absorbs runner-to-runner variance. For a human-readable
delta table use benchstat — this script is only the pass/fail gate.
"""
import re
import statistics
import sys

LINE = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op")


def medians(path):
    runs = {}
    for line in open(path):
        m = LINE.match(line)
        if m:
            runs.setdefault(m.group(1), []).append(float(m.group(2)))
    return {name: statistics.median(vals) for name, vals in runs.items()}


def main():
    base, cur = medians(sys.argv[1]), medians(sys.argv[2])
    limit = float(sys.argv[3]) if len(sys.argv) > 3 else 0.20
    if not base:
        sys.exit(f"no benchmarks parsed from baseline {sys.argv[1]}")
    missing = sorted(set(base) - set(cur))
    if missing:
        sys.exit(f"benchmarks missing from current run: {missing}")
    failed = False
    for name in sorted(base):
        delta = cur[name] / base[name] - 1.0
        status = "ok"
        if delta > limit:
            status, failed = "REGRESSION", True
        print(f"{status:>10}  {name:<32} {base[name]:>12.0f} ns/op -> "
              f"{cur[name]:>12.0f} ns/op  ({delta:+.1%})")
    if failed:
        sys.exit(f"benchmark regression beyond {limit:.0%} threshold")
    print(f"bench-guard: all {len(base)} benchmarks within {limit:.0%} of baseline")


if __name__ == "__main__":
    main()
