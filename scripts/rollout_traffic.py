#!/usr/bin/env python3
"""Mirrored canary traffic for the rollout smoke drill.

Replays the dataset's val+test interactions against mamdr-serve, sending
every batch TWICE under paired X-Request-IDs: one ID precomputed to hash
into the canary arm, one into the incumbent arm (the server routes a
request to the canary iff FNV-1a(rid)/2^32 < fraction, so the arm is a
pure function of the ID). Both arms therefore score the same user-item
pairs and join the same true labels, which removes traffic-sampling
noise from the gate's comparison:

  - a canary serving identical weights shows exactly zero AUC / logloss
    / PSI gap and promotes deterministically;
  - a genuinely regressed canary (the label-flipped drill checkpoint)
    differs only because its *model* scores the shared traffic worse,
    so the auto-rollback is deterministic too.

Stdlib only (urllib); the dataset JSON comes from `datagen -out`.
"""

import argparse
import concurrent.futures
import json
import random
import sys
import threading
import urllib.request


def fnv1a32(s):
    """FNV-1a, mirroring Go's hash/fnv New32a over the rid bytes."""
    h = 2166136261
    for b in s.encode():
        h ^= b
        h = (h * 16777619) & 0xFFFFFFFF
    return h


def rid_for(arm, seq, fraction):
    """Smallest suffixed ID that routes to the requested arm."""
    for k in range(10000):
        rid = "mirror-%d-%d" % (seq, k)
        canary = fnv1a32(rid) / 2.0**32 < fraction
        if canary == (arm == "canary"):
            return rid
    raise RuntimeError("no rid found for arm %s at fraction %g" % (arm, fraction))


def post(url, payload, timeout, rid=None):
    headers = {"Content-Type": "application/json"}
    if rid:
        headers["X-Request-ID"] = rid
    req = urllib.request.Request(url, data=json.dumps(payload).encode(), headers=headers)
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--base", default="http://127.0.0.1:8086", help="mamdr-serve base URL")
    ap.add_argument("--data", required=True, help="dataset JSON written by datagen (must match the server's -preset/-samples/-seed)")
    ap.add_argument("--fraction", type=float, default=0.5, help="the server's -canary-fraction (rids are precomputed against it)")
    ap.add_argument("--repeat", type=int, default=4, help="times to replay the val+test set (drives both arms past the gate's evidence thresholds)")
    ap.add_argument("--batch", type=int, default=16)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--timeout", type=float, default=10.0)
    ap.add_argument("--workers", type=int, default=1,
                    help="concurrent request threads (>1 gives a batching server real batchmates to coalesce)")
    ap.add_argument("--dump-scores", default="",
                    help="write one JSON line per predict request ({rid, domain, scores}), sorted by rid -- "
                         "diffing two dumps of the same replay proves batched == unbatched bit-identically")
    args = ap.parse_args()

    with open(args.data) as f:
        ds = json.load(f)
    rng = random.Random(args.seed)

    # Build the full job list up front; the rid fixes each job's arm, so
    # execution order (or concurrency) cannot change what is compared.
    jobs = []
    seq = 0
    for dom in ds["Domains"]:
        ins = list(dom.get("Val") or []) + list(dom.get("Test") or [])
        if not ins:
            continue
        ins = ins * args.repeat
        rng.shuffle(ins)
        for start in range(0, len(ins), args.batch):
            chunk = ins[start : start + args.batch]
            seq += 1
            for arm in ("canary", "incumbent"):
                jobs.append((rid_for(arm, seq, args.fraction), dom["ID"], chunk))

    lock = threading.Lock()
    totals = {"requests": 0, "joined": 0, "labels": 0}
    dumped = []

    def run(job):
        rid, domain, chunk = job
        resp = post(
            args.base + "/predict",
            {
                "domain": domain,
                "users": [i["User"] for i in chunk],
                "items": [i["Item"] for i in chunk],
            },
            args.timeout,
            rid=rid,
        )
        got = resp.get("request_id")
        if got != rid:
            raise RuntimeError("server ignored X-Request-ID: sent %s, got %s" % (rid, got))
        fb = post(
            args.base + "/feedback",
            {"request_id": rid, "labels": [float(i["Label"]) for i in chunk]},
            args.timeout,
        )
        with lock:
            totals["requests"] += 1
            totals["joined"] += 1
            totals["labels"] += fb.get("joined", 0)
            if args.dump_scores:
                dumped.append({"rid": rid, "domain": domain, "scores": resp["probabilities"]})

    if args.workers > 1:
        with concurrent.futures.ThreadPoolExecutor(max_workers=args.workers) as pool:
            for err in pool.map(run, jobs):
                _ = err
    else:
        for job in jobs:
            run(job)

    if args.dump_scores:
        with open(args.dump_scores, "w") as f:
            for rec in sorted(dumped, key=lambda r: r["rid"]):
                f.write(json.dumps(rec, sort_keys=True) + "\n")
        print("dumped %d score records to %s" % (len(dumped), args.dump_scores))

    print("mirrored: %d predict requests (%d pairs), %d feedback joins, %d labels"
          % (totals["requests"], seq, totals["joined"], totals["labels"]))
    if totals["joined"] == 0:
        print("no feedback joined -- is the server running with -quality?", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
