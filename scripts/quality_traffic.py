#!/usr/bin/env python3
"""Replay dataset traffic against mamdr-serve's /predict + /feedback.

Two modes drive the quality-observability smoke:

  control  replay the dataset's val+test interactions with their true
           labels — traffic matched to the baseline the server profiled
           from its validation split, so PSI stays low, the windowed
           AUC tracks the offline AUC, and no quality SLO burns.

  drift    concentrate every request on a few fixed items and invert
           every label — the served score distribution collapses into a
           few histogram bins (score PSI blows past 0.25) and the
           prequential AUC drops below the fleet floor, so the
           quality-psi-drift and quality-auc-floor SLOs fire.

Stdlib only (urllib); the dataset JSON comes from `datagen -out`.
"""

import argparse
import json
import random
import sys
import urllib.request


def post(url, payload, timeout):
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--base", default="http://127.0.0.1:8085", help="mamdr-serve base URL")
    ap.add_argument("--data", required=True, help="dataset JSON written by datagen (must match the server's -preset/-samples/-seed)")
    ap.add_argument("--mode", choices=["control", "drift"], required=True)
    ap.add_argument("--repeat", type=int, default=8, help="times to replay the val+test set (drives windows past the evidence thresholds)")
    ap.add_argument("--batch", type=int, default=16)
    ap.add_argument("--drift-items", type=int, default=3, help="drift mode: number of fixed items traffic collapses onto")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--timeout", type=float, default=10.0)
    args = ap.parse_args()

    with open(args.data) as f:
        ds = json.load(f)
    rng = random.Random(args.seed)

    requests = joined = labels_sent = 0
    for dom in ds["Domains"]:
        ins = list(dom.get("Val") or []) + list(dom.get("Test") or [])
        if not ins:
            continue
        if args.mode == "drift":
            items = sorted({i["Item"] for i in ins})[: args.drift_items]
            ins = [
                {"User": i["User"], "Item": items[k % len(items)], "Label": 1 - i["Label"]}
                for k, i in enumerate(ins)
            ]
        ins = ins * args.repeat
        rng.shuffle(ins)
        for start in range(0, len(ins), args.batch):
            chunk = ins[start : start + args.batch]
            resp = post(
                args.base + "/predict",
                {
                    "domain": dom["ID"],
                    "users": [i["User"] for i in chunk],
                    "items": [i["Item"] for i in chunk],
                },
                args.timeout,
            )
            requests += 1
            rid = resp.get("request_id")
            if not rid:
                continue
            fb = post(
                args.base + "/feedback",
                {"request_id": rid, "labels": [float(i["Label"]) for i in chunk]},
                args.timeout,
            )
            joined += 1
            labels_sent += fb.get("joined", 0)

    print(f"{args.mode}: {requests} predict requests, {joined} feedback joins, {labels_sent} labels")
    if joined == 0:
        print("no feedback joined — is the server running with -quality?", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
