GO ?= go

.PHONY: all build test vet race bench-serve bench-telemetry ci check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The PS and serving paths are the concurrent hot spots; keep them
# race-clean.
race:
	$(GO) test -race -count=1 ./internal/ps/... ./internal/serve/...

bench-serve:
	$(GO) test ./internal/serve -run xxx -bench ServeThroughput -benchtime 2s

# Instrumented-vs-bare cost of the telemetry subsystem on the training
# loop and the serving request path (budget: <5%).
bench-telemetry:
	$(GO) test ./internal/core -run xxx -bench TelemetryOverhead -benchtime 10x
	$(GO) test ./internal/serve -run xxx -bench TelemetryOverhead -benchtime 2s

# What CI runs (.github/workflows/ci.yml).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

check: vet build test race
