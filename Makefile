GO ?= go

.PHONY: all build test vet staticcheck race bench-serve bench-telemetry smoke-trace ci check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Same pinned version as CI; install with:
#   go install honnef.co/go/tools/cmd/staticcheck@2023.1.7
staticcheck:
	staticcheck ./...

# The CI distributed-smoke job locally: a 2-worker traced run whose
# trace file must parse as Chrome trace-event JSON.
smoke-trace:
	$(GO) run ./cmd/mamdr-train -preset taobao-10 -samples 2000 -epochs 2 \
		-ps-workers 2 -trace /tmp/smoke.trace.json
	python3 -c "import json; e=json.load(open('/tmp/smoke.trace.json')); assert e, 'empty'; print('ok:', len(e), 'events')"

# The PS and serving paths are the concurrent hot spots; keep them
# race-clean.
race:
	$(GO) test -race -count=1 ./internal/ps/... ./internal/serve/...

bench-serve:
	$(GO) test ./internal/serve -run xxx -bench ServeThroughput -benchtime 2s

# Instrumented-vs-bare cost of the telemetry subsystem on the training
# loop and the serving request path (budget: <5%).
bench-telemetry:
	$(GO) test ./internal/core -run xxx -bench TelemetryOverhead -benchtime 10x
	$(GO) test ./internal/serve -run xxx -bench TelemetryOverhead -benchtime 2s

# What CI runs (.github/workflows/ci.yml).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

check: vet build test race
