GO ?= go

.PHONY: all build test vet staticcheck race bench-serve bench-telemetry bench-baseline bench-guard smoke-trace smoke-chaos smoke-cluster ci check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Same pinned version as CI; install with:
#   go install honnef.co/go/tools/cmd/staticcheck@2023.1.7
staticcheck:
	staticcheck ./...

# The CI distributed-smoke job locally: a 2-worker traced run whose
# trace file must parse as Chrome trace-event JSON.
smoke-trace:
	$(GO) run ./cmd/mamdr-train -preset taobao-10 -samples 2000 -epochs 2 \
		-ps-workers 2 -trace /tmp/smoke.trace.json
	python3 -c "import json; e=json.load(open('/tmp/smoke.trace.json')); assert e, 'empty'; print('ok:', len(e), 'events')"

# The CI chaos-smoke job locally: a 2-worker run over a loopback RPC
# parameter server with injected errors, delays, and connection drops
# must print exactly the same per-domain AUC table as a clean run (the
# retries are idempotent and SyncPush fixes the delta-apply order), and
# the bit-exact version of the same property is asserted by the chaos
# determinism tests.
smoke-chaos:
	$(GO) run ./cmd/mamdr-train -preset taobao-10 -samples 2000 -epochs 3 \
		-ps-workers 2 -ps-sync-push -seed 7 \
		| grep -v '^trained in' > /tmp/chaos-clean.txt
	$(GO) run ./cmd/mamdr-train -preset taobao-10 -samples 2000 -epochs 3 \
		-ps-workers 2 -ps-sync-push -seed 7 \
		-ps-faults "PushDelta:err@1,3; PullDense:err@2; PullDense:delay=10ms@*; conn:drop@3,7" \
		2>/tmp/chaos-faulty.log | grep -v '^trained in' > /tmp/chaos-faulty.txt
	diff /tmp/chaos-clean.txt /tmp/chaos-faulty.txt
	grep -E '[1-9][0-9]* faults injected' /tmp/chaos-faulty.log
	$(GO) test -count=1 -run 'TestChaosDeterminismOverRPC|TestResumeMatchesUninterrupted' ./internal/ps/

# The CI cluster-smoke job locally: a 2-worker run against a 3-shard
# partitioned PS cluster with injected per-shard faults must print
# exactly the same per-domain AUC table as the 1-shard run (the
# partition plan is a pure function of the layout and seed; SyncPush
# fixes the delta-apply order), the injected faults must be counted,
# and the trace must carry the scatter-gather spans. Amazon-6 is the
# preset with learned embeddings, so row traffic crosses the shards.
smoke-cluster:
	$(GO) run ./cmd/mamdr-train -preset amazon-6 -samples 2000 -epochs 3 \
		-ps-workers 2 -ps-sync-push -seed 7 \
		| grep -v '^trained in\|^training ' > /tmp/cluster-1shard.txt
	$(GO) run ./cmd/mamdr-train -preset amazon-6 -samples 2000 -epochs 3 \
		-ps-workers 2 -ps-sync-push -seed 7 -ps-shards 3 \
		-ps-faults "PullRows:err@2; PushDelta:err@5; conn:drop@6" \
		-trace /tmp/cluster.trace.json \
		2>/tmp/cluster-3shard.log | grep -v '^trained in\|^training ' > /tmp/cluster-3shard.txt
	diff /tmp/cluster-1shard.txt /tmp/cluster-3shard.txt
	grep -E '[1-9][0-9]* faults injected' /tmp/cluster-3shard.log
	python3 -c "import json; n={e['name'] for e in json.load(open('/tmp/cluster.trace.json'))}; missing={'cluster.pull_rows','cluster.push_delta','cluster.shard_call'}-n; assert not missing, missing; print('ok: cluster spans present')"
	$(GO) test -count=1 -run 'TestClusterTrainingBitIdenticalAcrossShardCounts|TestShardFailoverMatchesCleanRun|TestClusterChaosOverRPCBitIdentical' ./internal/cluster/

# The PS, cluster, and serving paths are the concurrent hot spots; keep
# them race-clean.
race:
	$(GO) test -race -count=1 ./internal/ps/... ./internal/cluster/... ./internal/serve/...

bench-serve:
	$(GO) test ./internal/serve -run xxx -bench ServeThroughput -benchtime 2s

# The kernel benchmarks guarded by CI's bench-guard job.
BENCH_GUARD = BenchmarkMatMul64x64$$|BenchmarkMatMulBackward64x64$$|BenchmarkFMSecondOrder$$|BenchmarkTrainStepArena$$
BENCH_BASELINE = internal/autograd/testdata/bench_baseline.txt

# Regenerate the committed baseline after an intentional kernel change.
bench-baseline:
	$(GO) test ./internal/autograd -run '^$$' -bench '$(BENCH_GUARD)' \
		-benchtime=300ms -count=6 | tee $(BENCH_BASELINE)

# The CI bench-guard job locally: re-run the guarded benchmarks and
# fail if any median regressed >20% vs the committed baseline. If
# benchstat is installed (go install golang.org/x/perf/cmd/benchstat@latest)
# it prints the full delta table first.
bench-guard:
	$(GO) test ./internal/autograd -run '^$$' -bench '$(BENCH_GUARD)' \
		-benchtime=300ms -count=6 | tee /tmp/bench_current.txt
	-command -v benchstat >/dev/null && benchstat $(BENCH_BASELINE) /tmp/bench_current.txt
	python3 scripts/bench_guard.py $(BENCH_BASELINE) /tmp/bench_current.txt

# Instrumented-vs-bare cost of the telemetry subsystem on the training
# loop and the serving request path (budget: <5%).
bench-telemetry:
	$(GO) test ./internal/core -run xxx -bench TelemetryOverhead -benchtime 10x
	$(GO) test ./internal/serve -run xxx -bench TelemetryOverhead -benchtime 2s

# What CI runs (.github/workflows/ci.yml).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) smoke-chaos
	$(MAKE) smoke-cluster

check: vet build test race
