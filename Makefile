GO ?= go

.PHONY: all build test vet staticcheck race bench-serve bench-telemetry bench-baseline bench-guard smoke-trace smoke-chaos smoke-cluster smoke-obs smoke-quality smoke-rollout smoke-batch ci check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Same pinned version as CI; install with:
#   go install honnef.co/go/tools/cmd/staticcheck@2023.1.7
staticcheck:
	staticcheck ./...

# The CI distributed-smoke job locally: a 2-worker traced run whose
# trace file must parse as Chrome trace-event JSON.
smoke-trace:
	$(GO) run ./cmd/mamdr-train -preset taobao-10 -samples 2000 -epochs 2 \
		-ps-workers 2 -trace /tmp/smoke.trace.json
	python3 -c "import json; e=json.load(open('/tmp/smoke.trace.json')); assert e, 'empty'; print('ok:', len(e), 'events')"

# The CI chaos-smoke job locally: a 2-worker run over a loopback RPC
# parameter server with injected errors, delays, and connection drops
# must print exactly the same per-domain AUC table as a clean run (the
# retries are idempotent and SyncPush fixes the delta-apply order), and
# the bit-exact version of the same property is asserted by the chaos
# determinism tests.
smoke-chaos:
	$(GO) run ./cmd/mamdr-train -preset taobao-10 -samples 2000 -epochs 3 \
		-ps-workers 2 -ps-sync-push -seed 7 \
		| grep -v '^trained in' > /tmp/chaos-clean.txt
	$(GO) run ./cmd/mamdr-train -preset taobao-10 -samples 2000 -epochs 3 \
		-ps-workers 2 -ps-sync-push -seed 7 \
		-ps-faults "PushDelta:err@1,3; PullDense:err@2; PullDense:delay=10ms@*; conn:drop@3,7" \
		2>/tmp/chaos-faulty.log | grep -v '^trained in' > /tmp/chaos-faulty.txt
	diff /tmp/chaos-clean.txt /tmp/chaos-faulty.txt
	grep -E '[1-9][0-9]* faults injected' /tmp/chaos-faulty.log
	$(GO) test -count=1 -run 'TestChaosDeterminismOverRPC|TestResumeMatchesUninterrupted' ./internal/ps/

# The CI cluster-smoke job locally: a 2-worker run against a 3-shard
# partitioned PS cluster with injected per-shard faults must print
# exactly the same per-domain AUC table as the 1-shard run (the
# partition plan is a pure function of the layout and seed; SyncPush
# fixes the delta-apply order), the injected faults must be counted,
# and the trace must carry the scatter-gather spans. Amazon-6 is the
# preset with learned embeddings, so row traffic crosses the shards.
smoke-cluster:
	$(GO) run ./cmd/mamdr-train -preset amazon-6 -samples 2000 -epochs 3 \
		-ps-workers 2 -ps-sync-push -seed 7 \
		| grep -v '^trained in\|^training ' > /tmp/cluster-1shard.txt
	$(GO) run ./cmd/mamdr-train -preset amazon-6 -samples 2000 -epochs 3 \
		-ps-workers 2 -ps-sync-push -seed 7 -ps-shards 3 \
		-ps-faults "PullRows:err@2; PushDelta:err@5; conn:drop@6" \
		-trace /tmp/cluster.trace.json \
		2>/tmp/cluster-3shard.log | grep -v '^trained in\|^training ' > /tmp/cluster-3shard.txt
	diff /tmp/cluster-1shard.txt /tmp/cluster-3shard.txt
	grep -E '[1-9][0-9]* faults injected' /tmp/cluster-3shard.log
	python3 -c "import json; n={e['name'] for e in json.load(open('/tmp/cluster.trace.json'))}; missing={'cluster.pull_rows','cluster.push_delta','cluster.shard_call'}-n; assert not missing, missing; print('ok: cluster spans present')"
	$(GO) test -count=1 -run 'TestClusterTrainingBitIdenticalAcrossShardCounts|TestShardFailoverMatchesCleanRun|TestClusterChaosOverRPCBitIdentical' ./internal/cluster/

# The CI obs-smoke job locally: two shard servers plus a faulted
# 2-worker training run, observed live by mamdr-obs. The federated
# exposition must carry every instance, the faulted run must fire at
# least one burn-rate alert (with a flight-recorder dump), and a clean
# run observed by a fresh monitor must fire none.
smoke-obs:
	$(GO) build -o /tmp/mamdr-bin/ ./cmd/mamdr-train ./cmd/mamdr-obs
	/tmp/mamdr-bin/mamdr-train -preset amazon-6 -samples 2000 -seed 7 \
		-ps-serve 127.0.0.1:7101,127.0.0.1:7102 >/tmp/obs-ps.log 2>&1 & echo $$! > /tmp/obs-ps.pid
	sleep 1
	kill -0 `cat /tmp/obs-ps.pid` || { cat /tmp/obs-ps.log; exit 1; }
	/tmp/mamdr-bin/mamdr-obs \
		-scrape trainer=127.0.0.1:9190,rpc://127.0.0.1:7101,rpc://127.0.0.1:7102 \
		-interval 500ms -run-for 30s -slo-fast -addr 127.0.0.1:9600 \
		-events /tmp/obs-events.jsonl -flight-dump /tmp/obs-flight \
		>/tmp/obs-faulty.txt 2>&1 & \
	sleep 0.5; \
	/tmp/mamdr-bin/mamdr-train -preset amazon-6 -samples 2000 -epochs 4 -seed 7 \
		-ps-workers 2 -ps-sync-push -ps-addrs 127.0.0.1:7101,127.0.0.1:7102 \
		-ps-faults "PushDelta:err@p0.3; PullRows:err@p0.2" \
		-metrics-addr 127.0.0.1:9190 -metrics-linger 30s -trace /tmp/obs.trace.json \
		>/tmp/obs-train.log 2>&1 & \
	sleep 12; curl -s 127.0.0.1:9600/metrics > /tmp/obs-federated.txt; wait
	grep -E 'alerts_fired=[1-9]' /tmp/obs-faulty.txt
	grep '"event":"slo_burn"' /tmp/obs-events.jsonl >/dev/null
	test -s /tmp/obs-flight-slo_ps-rpc-failures.trace.json
	grep -c 'instance="127.0.0.1:7101"' /tmp/obs-federated.txt >/dev/null
	grep -c 'role="trainer"' /tmp/obs-federated.txt >/dev/null
	/tmp/mamdr-bin/mamdr-obs \
		-scrape trainer=127.0.0.1:9191,rpc://127.0.0.1:7101,rpc://127.0.0.1:7102 \
		-interval 500ms -run-for 15s -slo-fast -addr 127.0.0.1:9601 \
		>/tmp/obs-clean.txt 2>&1 & \
	sleep 0.5; \
	/tmp/mamdr-bin/mamdr-train -preset amazon-6 -samples 2000 -epochs 4 -seed 7 \
		-ps-workers 2 -ps-sync-push -ps-addrs 127.0.0.1:7101,127.0.0.1:7102 \
		-metrics-addr 127.0.0.1:9191 -metrics-linger 5s >/dev/null 2>&1; \
	wait
	kill `cat /tmp/obs-ps.pid`
	grep -E 'alerts_fired=0' /tmp/obs-clean.txt
	@echo "ok: faulted run fired, clean run quiet"

# The CI quality-smoke job locally: one serving process with streaming
# model-quality tracking, observed by mamdr-obs. Matched traffic
# (val+test replayed with true labels) must fire no alert; drifted
# traffic (fixed items, inverted labels) must burn the quality SLOs and
# flip /quality to no-go.
smoke-quality:
	$(GO) build -o /tmp/mamdr-bin/ ./cmd/mamdr-serve ./cmd/mamdr-obs ./cmd/datagen
	/tmp/mamdr-bin/datagen -preset amazon-6 -samples 3000 -seed 11 -out /tmp/quality-ds.json
	/tmp/mamdr-bin/mamdr-serve -preset amazon-6 -samples 3000 -seed 11 -epochs 8 \
		-addr 127.0.0.1:8085 -access-log off \
		>/tmp/quality-serve.log 2>&1 & echo $$! > /tmp/quality-serve.pid
	for i in `seq 90`; do curl -sf 127.0.0.1:8085/healthz >/dev/null 2>&1 && break; \
		kill -0 `cat /tmp/quality-serve.pid` || { cat /tmp/quality-serve.log; exit 1; }; sleep 1; done
	grep 'quality baseline' /tmp/quality-serve.log
	/tmp/mamdr-bin/mamdr-obs -scrape serve=127.0.0.1:8085 \
		-interval 500ms -run-for 15s -slo-fast -addr 127.0.0.1:9610 \
		>/tmp/quality-control.txt 2>&1 & \
	sleep 0.7; \
	python3 scripts/quality_traffic.py --base http://127.0.0.1:8085 \
		--data /tmp/quality-ds.json --mode control --repeat 8; \
	wait
	grep -E 'alerts_fired=0' /tmp/quality-control.txt
	/tmp/mamdr-bin/mamdr-obs -scrape serve=127.0.0.1:8085 \
		-interval 500ms -run-for 15s -slo-fast -addr 127.0.0.1:9611 \
		-events /tmp/quality-events.jsonl >/tmp/quality-drift.txt 2>&1 & \
	sleep 0.7; \
	python3 scripts/quality_traffic.py --base http://127.0.0.1:8085 \
		--data /tmp/quality-ds.json --mode drift --repeat 8; \
	sleep 3; curl -s 127.0.0.1:9611/quality > /tmp/quality-report.json; \
	wait
	kill `cat /tmp/quality-serve.pid`
	grep -E 'alerts_fired=[1-9]' /tmp/quality-drift.txt
	grep '"slo":"quality-psi-drift"' /tmp/quality-events.jsonl >/dev/null
	grep '"slo":"quality-auc-floor"' /tmp/quality-events.jsonl >/dev/null
	python3 -c "import json; r=json.load(open('/tmp/quality-report.json')); \
		assert not r['go'], 'drift run still reports go'; \
		assert any(s.startswith('quality-') for s in r['firing']), r['firing']; \
		w=r['worst_by_psi'][0]; \
		assert max(w['score_psi'], w['label_psi']) > 0.25, w; \
		print('ok: drift fired', r['firing'], 'worst domain', w['domain'])"
	@echo "ok: matched traffic quiet, drifted traffic fired the quality SLOs"

# The CI rollout-smoke job locally: one serving process seeded from a
# clean checkpoint with the canary gate on. Re-publishing the clean
# snapshot must auto-promote (the traffic driver mirrors every batch to
# both arms via precomputed X-Request-IDs, so identical weights show a
# zero quality gap); publishing a label-flipped checkpoint must
# auto-roll-back with zero client-visible errors (the driver fails on
# any non-2xx), the incumbent must keep serving afterwards, and the
# rollback must burn the rollout-rollbacks SLO in mamdr-obs. A final
# restart with an injected serve-path fault proves the chaos schedule
# reaches /predict and is contained to one request.
smoke-rollout:
	$(GO) build -o /tmp/mamdr-bin/ ./cmd/mamdr-train ./cmd/mamdr-serve ./cmd/mamdr-obs ./cmd/datagen
	/tmp/mamdr-bin/datagen -preset taobao-10 -samples 2000 -seed 7 -out /tmp/rollout-ds.json
	/tmp/mamdr-bin/mamdr-train -preset taobao-10 -samples 2000 -seed 7 -epochs 4 \
		-save /tmp/rollout-clean.ckpt >/tmp/rollout-train.log 2>&1
	/tmp/mamdr-bin/mamdr-train -preset taobao-10 -samples 2000 -seed 7 -epochs 4 \
		-flip-labels -save /tmp/rollout-poison.ckpt >>/tmp/rollout-train.log 2>&1
	grep 'flip-labels' /tmp/rollout-train.log
	/tmp/mamdr-bin/mamdr-serve -preset taobao-10 -samples 2000 -seed 7 \
		-checkpoint /tmp/rollout-clean.ckpt -addr 127.0.0.1:8086 -access-log off \
		-canary-fraction 0.5 -rollout-min-labeled 48 -rollout-min-scores 64 \
		-rollout-max-wait 2m \
		>/tmp/rollout-serve.log 2>&1 & echo $$! > /tmp/rollout-serve.pid
	for i in `seq 90`; do curl -sf 127.0.0.1:8086/healthz >/dev/null 2>&1 && break; \
		kill -0 `cat /tmp/rollout-serve.pid` || { cat /tmp/rollout-serve.log; exit 1; }; sleep 1; done
	grep 'loaded checkpoint' /tmp/rollout-serve.log
	curl -sf 127.0.0.1:8086/readyz | grep 'ready v1'
	curl -sf -XPOST -d '{"path":"/tmp/rollout-clean.ckpt"}' 127.0.0.1:8086/admin/publish
	curl -sf 127.0.0.1:8086/readyz | grep 'canary v2 at 50%'
	python3 scripts/rollout_traffic.py --base http://127.0.0.1:8086 \
		--data /tmp/rollout-ds.json --fraction 0.5 --repeat 2
	grep 'rollout_decision=promote version=2 reason=clean' /tmp/rollout-serve.log
	curl -sf 127.0.0.1:8086/readyz | grep 'ready v2'
	/tmp/mamdr-bin/mamdr-obs -scrape serve=127.0.0.1:8086 \
		-interval 500ms -run-for 25s -slo-fast -addr 127.0.0.1:9620 \
		-events /tmp/rollout-events.jsonl >/tmp/rollout-obs.txt 2>&1 & \
	sleep 0.7; \
	curl -sf -XPOST -d '{"path":"/tmp/rollout-poison.ckpt"}' 127.0.0.1:8086/admin/publish; \
	curl -sf 127.0.0.1:8086/readyz > /tmp/rollout-canary-readyz.txt; \
	python3 scripts/rollout_traffic.py --base http://127.0.0.1:8086 \
		--data /tmp/rollout-ds.json --fraction 0.5 --repeat 2; \
	wait
	grep 'canary v3 at 50%' /tmp/rollout-canary-readyz.txt
	grep -E 'rollout_decision=rollback version=3 reason=(psi|auc|logloss)' /tmp/rollout-serve.log
	curl -sf 127.0.0.1:8086/readyz | grep 'ready v2 crc='
	curl -s 127.0.0.1:8086/metrics | grep -E 'mamdr_rollout_decisions_total\{decision="rollback"'
	grep -E 'alerts_fired=[1-9]' /tmp/rollout-obs.txt
	grep '"slo":"rollout-rollbacks"' /tmp/rollout-events.jsonl >/dev/null
	kill `cat /tmp/rollout-serve.pid`
	/tmp/mamdr-bin/mamdr-serve -preset taobao-10 -samples 2000 -seed 7 \
		-checkpoint /tmp/rollout-clean.ckpt -addr 127.0.0.1:8087 -access-log off \
		-rollout=false -serve-faults 'Predict:err@1' \
		>/tmp/rollout-chaos.log 2>&1 & echo $$! > /tmp/rollout-chaos.pid
	for i in `seq 90`; do curl -sf 127.0.0.1:8087/healthz >/dev/null 2>&1 && break; \
		kill -0 `cat /tmp/rollout-chaos.pid` || { cat /tmp/rollout-chaos.log; exit 1; }; sleep 1; done
	test "$$(curl -s -o /dev/null -w '%{http_code}' -XPOST \
		-d '{"domain":0,"users":[0],"items":[0]}' 127.0.0.1:8087/predict)" = 500
	curl -sf -XPOST -d '{"domain":0,"users":[0],"items":[0]}' 127.0.0.1:8087/predict >/dev/null
	kill `cat /tmp/rollout-chaos.pid`
	@echo "ok: clean publish promoted, poisoned publish rolled back, injected predict fault contained"

# The CI batch-smoke job locally: the same mirrored replay driven twice
# through one checkpoint — once with coalescing off (one forward per
# request), once with `-batch-max=64 -batch-linger=500us` under 16
# concurrent client threads — must produce byte-identical score dumps
# at -snapshot-quant=off (the blocked kernels keep textbook accumulation
# order regardless of row count, so batchmates cannot perturb each
# other's math). The batched server must actually coalesce (flush
# counter > 0), and the env-gated Go tests then assert the ≥5x
# throughput floor and the int8 AUC budget (ΔAUC ≥ -0.002 on amazon-6).
smoke-batch:
	$(GO) build -o /tmp/mamdr-bin/ ./cmd/mamdr-train ./cmd/mamdr-serve ./cmd/datagen
	/tmp/mamdr-bin/datagen -preset amazon-6 -samples 2000 -seed 7 -out /tmp/batch-ds.json
	/tmp/mamdr-bin/mamdr-train -preset amazon-6 -samples 2000 -seed 7 -epochs 4 \
		-save /tmp/batch.ckpt >/tmp/batch-train.log 2>&1
	/tmp/mamdr-bin/mamdr-serve -preset amazon-6 -samples 2000 -seed 7 \
		-checkpoint /tmp/batch.ckpt -addr 127.0.0.1:8088 -access-log off \
		-rollout=false -batch-max=0 -max-queue 256 \
		>/tmp/batch-serve-off.log 2>&1 & echo $$! > /tmp/batch-serve.pid
	for i in `seq 90`; do curl -sf 127.0.0.1:8088/healthz >/dev/null 2>&1 && break; \
		kill -0 `cat /tmp/batch-serve.pid` || { cat /tmp/batch-serve-off.log; exit 1; }; sleep 1; done
	python3 scripts/rollout_traffic.py --base http://127.0.0.1:8088 \
		--data /tmp/batch-ds.json --repeat 1 --workers 16 \
		--dump-scores /tmp/batch-scores-off.jsonl
	kill `cat /tmp/batch-serve.pid`
	/tmp/mamdr-bin/mamdr-serve -preset amazon-6 -samples 2000 -seed 7 \
		-checkpoint /tmp/batch.ckpt -addr 127.0.0.1:8089 -access-log off \
		-rollout=false -batch-max=64 -batch-linger=500us -snapshot-quant=off \
		-max-queue 256 \
		>/tmp/batch-serve-on.log 2>&1 & echo $$! > /tmp/batch-serve.pid
	for i in `seq 90`; do curl -sf 127.0.0.1:8089/healthz >/dev/null 2>&1 && break; \
		kill -0 `cat /tmp/batch-serve.pid` || { cat /tmp/batch-serve-on.log; exit 1; }; sleep 1; done
	grep 'request coalescing' /tmp/batch-serve-on.log
	python3 scripts/rollout_traffic.py --base http://127.0.0.1:8089 \
		--data /tmp/batch-ds.json --repeat 1 --workers 16 \
		--dump-scores /tmp/batch-scores-on.jsonl
	curl -s 127.0.0.1:8089/metrics | grep -E 'mamdr_serve_batch_flushes_total\{reason="(full|linger)"\} [1-9]'
	kill `cat /tmp/batch-serve.pid`
	diff /tmp/batch-scores-off.jsonl /tmp/batch-scores-on.jsonl
	MAMDR_SMOKE_BATCH=1 $(GO) test -count=1 -v -run TestBatchThroughputGain ./internal/serve
	MAMDR_SMOKE_BATCH=1 $(GO) test -count=1 -v -run TestQuantAUCBudget ./internal/exp
	@echo "ok: batched scores byte-identical to unbatched; throughput and int8 AUC gates passed"

# The PS, cluster, serving, batching, and quant paths are the
# concurrent hot spots; keep them race-clean.
race:
	$(GO) test -race -count=1 ./internal/ps/... ./internal/cluster/... ./internal/serve/... \
		./internal/batch/... ./internal/quant/...

bench-serve:
	$(GO) test ./internal/serve -run xxx -bench ServeThroughput -benchtime 2s

# The kernel benchmarks guarded by CI's bench-guard job, plus the
# serving-path series (batched forward, quantized row lookup) guarded
# against their own baseline — they live in a different package so they
# carry a separate baseline file, and being end-to-end HTTP benchmarks
# (linger timers, goroutine scheduling) they get a looser 50% gate:
# still far under the 2x+ cost of accidentally serializing the pool or
# losing coalescing, without flaking on scheduler jitter.
BENCH_GUARD = BenchmarkMatMul64x64$$|BenchmarkMatMulBackward64x64$$|BenchmarkFMSecondOrder$$|BenchmarkTrainStepArena$$
BENCH_BASELINE = internal/autograd/testdata/bench_baseline.txt
SERVE_BENCH_GUARD = BenchmarkServeConcurrent|BenchmarkQuantLookup
SERVE_BENCH_BASELINE = internal/serve/testdata/bench_baseline.txt

# Regenerate the committed baselines after an intentional kernel or
# serving-path change.
bench-baseline:
	$(GO) test ./internal/autograd -run '^$$' -bench '$(BENCH_GUARD)' \
		-benchtime=300ms -count=6 | tee $(BENCH_BASELINE)
	$(GO) test ./internal/serve -run '^$$' -bench '$(SERVE_BENCH_GUARD)' \
		-benchtime=300ms -count=6 | tee $(SERVE_BENCH_BASELINE)

# The CI bench-guard job locally: re-run the guarded benchmarks and
# fail if any median regressed >20% vs the committed baseline. If
# benchstat is installed (go install golang.org/x/perf/cmd/benchstat@latest)
# it prints the full delta table first.
bench-guard:
	$(GO) test ./internal/autograd -run '^$$' -bench '$(BENCH_GUARD)' \
		-benchtime=300ms -count=6 | tee /tmp/bench_current.txt
	-command -v benchstat >/dev/null && benchstat $(BENCH_BASELINE) /tmp/bench_current.txt
	python3 scripts/bench_guard.py $(BENCH_BASELINE) /tmp/bench_current.txt
	$(GO) test ./internal/serve -run '^$$' -bench '$(SERVE_BENCH_GUARD)' \
		-benchtime=300ms -count=6 | tee /tmp/bench_serve_current.txt
	-command -v benchstat >/dev/null && benchstat $(SERVE_BENCH_BASELINE) /tmp/bench_serve_current.txt
	python3 scripts/bench_guard.py $(SERVE_BENCH_BASELINE) /tmp/bench_serve_current.txt 0.50

# Instrumented-vs-bare cost of the telemetry subsystem on the training
# loop and the serving request path (budget: <5%).
bench-telemetry:
	$(GO) test ./internal/core -run xxx -bench TelemetryOverhead -benchtime 10x
	$(GO) test ./internal/serve -run xxx -bench TelemetryOverhead -benchtime 2s

# What CI runs (.github/workflows/ci.yml).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) smoke-chaos
	$(MAKE) smoke-cluster
	$(MAKE) smoke-obs
	$(MAKE) smoke-quality
	$(MAKE) smoke-rollout
	$(MAKE) smoke-batch

check: vet build test race
