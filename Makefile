GO ?= go

.PHONY: all build test vet race bench-serve check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The PS and serving paths are the concurrent hot spots; keep them
# race-clean.
race:
	$(GO) test -race -count=1 ./internal/ps/... ./internal/serve/...

bench-serve:
	$(GO) test ./internal/serve -run xxx -bench ServeThroughput -benchtime 2s

check: vet build test race
