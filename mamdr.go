// Package mamdr is the public facade of the MAMDR reproduction: a model
// agnostic learning framework for multi-domain recommendation (Luo et
// al., ICDE 2023), together with the CTR model zoo, baseline learning
// frameworks, synthetic MDR benchmark generators, and the PS-Worker
// distributed trainer the paper's evaluation depends on.
//
// The typical flow is: build (or load) a multi-domain dataset, pick a
// model structure and a learning framework, train, and evaluate
// per-domain AUC:
//
//	ds := mamdr.GenerateDataset(mamdr.DatasetSpec{Preset: "taobao-10", TotalSamples: 20000, Seed: 7})
//	res, err := mamdr.Train(mamdr.TrainSpec{
//		Dataset:   ds,
//		Model:     "mlp",
//		Framework: "mamdr",
//	})
//	fmt.Println(res.MeanTestAUC)
//
// Everything the facade exposes is also available, with more control,
// from the internal packages; examples/ demonstrates both levels.
package mamdr

import (
	"fmt"

	_ "mamdr/internal/core" // register dn/dr/mamdr frameworks
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/metrics"
	"mamdr/internal/models"
	"mamdr/internal/synth"
	"mamdr/internal/telemetry"
	"mamdr/internal/trace"
)

// Dataset is a multi-domain recommendation dataset.
type Dataset = data.Dataset

// DatasetSpec selects a synthetic benchmark to generate.
type DatasetSpec struct {
	// Preset names one of the paper's benchmarks: "amazon-6",
	// "amazon-13", "taobao-10", "taobao-20", "taobao-30",
	// "taobao-online".
	Preset string
	// TotalSamples scales the dataset (the paper's per-domain imbalance
	// profile is preserved). Default 10000.
	TotalSamples int
	// Seed fixes generation. Default 1.
	Seed int64
}

// GenerateDataset builds a synthetic benchmark equivalent. It panics on
// an unknown preset name; use GenerateDatasetErr for error handling.
func GenerateDataset(spec DatasetSpec) *Dataset {
	ds, err := GenerateDatasetErr(spec)
	if err != nil {
		panic(err)
	}
	return ds
}

// GenerateDatasetErr is GenerateDataset returning an error for unknown
// presets.
func GenerateDatasetErr(spec DatasetSpec) (*Dataset, error) {
	if spec.TotalSamples == 0 {
		spec.TotalSamples = 10000
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	presets := synth.Presets(spec.TotalSamples, spec.Seed)
	cfg, ok := presets[spec.Preset]
	if !ok {
		names := make([]string, 0, len(presets))
		for n := range presets {
			names = append(names, n)
		}
		return nil, fmt.Errorf("mamdr: unknown preset %q (have %v)", spec.Preset, names)
	}
	return synth.Generate(cfg), nil
}

// LoadDataset reads a dataset saved with SaveDataset (JSON).
func LoadDataset(path string) (*Dataset, error) { return data.LoadJSON(path) }

// SaveDataset writes the dataset as JSON.
func SaveDataset(ds *Dataset, path string) error { return data.SaveJSON(ds, path) }

// ModelNames lists the available model structures.
func ModelNames() []string { return models.Names() }

// FrameworkNames lists the available learning frameworks (including
// "dn", "dr" and "mamdr").
func FrameworkNames() []string { return framework.Keys() }

// TrainSpec configures one training run.
type TrainSpec struct {
	Dataset *Dataset
	// Model names the structure ("mlp", "wdl", "neurfm", "autoint",
	// "deepfm", "sharedbottom", "mmoe", "cgc", "ple", "star", "raw").
	Model string
	// Framework names the learning framework ("alternate", "finetune",
	// "weighted", "pcgrad", "maml", "reptile", "mldg", "separate",
	// "dn", "dr", "mamdr").
	Framework string
	// Epochs, BatchSize, Seed and the learning rates override the
	// framework defaults when non-zero.
	Epochs    int
	BatchSize int
	Seed      int64
	// InnerLR is the inner-loop learning rate α.
	InnerLR float64
	// OuterLR is DN's outer-loop learning rate β.
	OuterLR float64
	// DRLR is Domain Regularization's learning rate γ.
	DRLR float64
	// SampleK is DR's helper-domain sample count k.
	SampleK int
	// CheckpointDir enables crash-safe epoch-boundary checkpointing for
	// frameworks that support it (MAMDR): parameters plus outer
	// optimizer state land atomically in <dir>/mamdr.ckpt every
	// CheckpointEvery epochs (default 1 when a dir is set).
	CheckpointDir   string
	CheckpointEvery int
	// Resume restores the last checkpoint in CheckpointDir and skips the
	// epochs it covers; with the same Seed the resumed run reproduces an
	// uninterrupted run bit for bit.
	Resume bool
	// EmbDim and Hidden override the model defaults when non-zero.
	EmbDim int
	Hidden []int
	// Dropout is the model's dropout rate.
	Dropout float64
	// Metrics, when non-nil, receives training telemetry (per-domain
	// loss/grad-norm gauges, DN step timings, the gradient-conflict
	// histogram) for Prometheus exposition via Metrics.Handler().
	Metrics *telemetry.Registry
	// Events, when non-nil, receives one JSONL event per epoch so runs
	// are replayable and plottable.
	Events *telemetry.EventLog
	// Tracer, when non-nil, emits structured spans for the training run
	// (epochs, per-domain inner steps, forward/backward/optimizer
	// phases, DR lookaheads) and arms its flight recorder: a NaN/Inf
	// loss or a per-domain loss z-score spike dumps the most recent
	// spans to a Chrome trace-event JSON file.
	Tracer *trace.Tracer
}

// Result reports a finished training run.
type Result struct {
	// Predictor scores new batches (per-domain parameters applied
	// automatically where the framework keeps them).
	Predictor framework.Predictor
	// Model is the trained model (shared parameters restored).
	Model models.Model
	// TestAUC and ValAUC are per-domain AUCs indexed by domain ID.
	TestAUC []float64
	ValAUC  []float64
	// MeanTestAUC and MeanValAUC average the above.
	MeanTestAUC float64
	MeanValAUC  float64
}

// Train builds the model, fits it with the chosen framework, and
// evaluates per-domain AUC on the validation and test splits.
func Train(spec TrainSpec) (*Result, error) {
	if spec.Dataset == nil {
		return nil, fmt.Errorf("mamdr: TrainSpec.Dataset is nil")
	}
	if spec.Model == "" {
		spec.Model = "mlp"
	}
	if spec.Framework == "" {
		spec.Framework = "mamdr"
	}
	m, err := models.New(spec.Model, models.Config{
		Dataset: spec.Dataset,
		EmbDim:  spec.EmbDim,
		Hidden:  spec.Hidden,
		Dropout: spec.Dropout,
		Seed:    spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	fw, err := framework.New(spec.Framework)
	if err != nil {
		return nil, err
	}
	cfg := framework.Config{
		Epochs:          spec.Epochs,
		BatchSize:       spec.BatchSize,
		Seed:            spec.Seed,
		LR:              spec.InnerLR,
		OuterLR:         spec.OuterLR,
		DRLR:            spec.DRLR,
		SampleK:         spec.SampleK,
		CheckpointDir:   spec.CheckpointDir,
		CheckpointEvery: spec.CheckpointEvery,
		Resume:          spec.Resume,
	}
	if spec.Metrics != nil || spec.Events != nil || spec.Tracer != nil {
		cfg.Telemetry = framework.NewTrainMetrics(spec.Metrics, spec.Dataset, spec.Events)
	}
	if spec.Tracer != nil {
		cfg.Tracer = spec.Tracer
		if f := spec.Tracer.Flight(); f != nil {
			cfg.Telemetry.Anomalies = telemetry.NewLossWatch(f, 0, 0)
		}
	}
	pred := fw.Fit(m, spec.Dataset, cfg)

	res := &Result{
		Predictor: pred,
		Model:     m,
		TestAUC:   framework.EvaluateAUC(pred, spec.Dataset, data.Test),
		ValAUC:    framework.EvaluateAUC(pred, spec.Dataset, data.Val),
	}
	res.MeanTestAUC = metrics.Mean(res.TestAUC)
	res.MeanValAUC = metrics.Mean(res.ValAUC)
	return res, nil
}

// Predict scores one domain's interactions with a trained predictor,
// returning click probabilities aligned with the interactions slice.
func Predict(p framework.Predictor, ds *Dataset, domain int, ins []data.Interaction) []float64 {
	return p.Predict(ds.MakeBatch(domain, ins))
}
