package mamdr

import (
	"path/filepath"
	"testing"

	"mamdr/internal/data"
)

func TestGenerateDatasetPresets(t *testing.T) {
	for _, preset := range []string{"amazon-6", "amazon-13", "taobao-10", "taobao-20", "taobao-30", "taobao-online"} {
		ds := GenerateDataset(DatasetSpec{Preset: preset, TotalSamples: 1500, Seed: 3})
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
	}
}

func TestGenerateDatasetUnknownPreset(t *testing.T) {
	if _, err := GenerateDatasetErr(DatasetSpec{Preset: "netflix"}); err == nil {
		t.Fatal("expected error for unknown preset")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GenerateDataset should panic on unknown preset")
		}
	}()
	GenerateDataset(DatasetSpec{Preset: "netflix"})
}

func TestSaveLoadDataset(t *testing.T) {
	ds := GenerateDataset(DatasetSpec{Preset: "taobao-10", TotalSamples: 1200, Seed: 3})
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := SaveDataset(ds, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ds.Name || got.TotalSamples() != ds.TotalSamples() {
		t.Fatal("round trip lost data")
	}
}

func TestNamesNonEmpty(t *testing.T) {
	if len(ModelNames()) != 11 {
		t.Fatalf("ModelNames = %v", ModelNames())
	}
	fw := FrameworkNames()
	want := map[string]bool{"mamdr": true, "dn": true, "dr": true, "alternate": true}
	found := 0
	for _, k := range fw {
		if want[k] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("FrameworkNames missing core entries: %v", fw)
	}
}

func TestTrainEndToEnd(t *testing.T) {
	ds := GenerateDataset(DatasetSpec{Preset: "taobao-10", TotalSamples: 2000, Seed: 3})
	res, err := Train(TrainSpec{
		Dataset:   ds,
		Model:     "mlp",
		Framework: "mamdr",
		Epochs:    3,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TestAUC) != ds.NumDomains() || len(res.ValAUC) != ds.NumDomains() {
		t.Fatal("per-domain AUC lengths wrong")
	}
	if res.MeanTestAUC <= 0.5 {
		t.Fatalf("mean test AUC %.4f, want > 0.5", res.MeanTestAUC)
	}
	if res.Predictor == nil || res.Model == nil {
		t.Fatal("missing predictor/model")
	}
}

func TestTrainDefaults(t *testing.T) {
	ds := GenerateDataset(DatasetSpec{Preset: "taobao-10", TotalSamples: 1200, Seed: 3})
	res, err := Train(TrainSpec{Dataset: ds, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanTestAUC == 0 {
		t.Fatal("evaluation missing")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(TrainSpec{}); err == nil {
		t.Fatal("expected error for nil dataset")
	}
	ds := GenerateDataset(DatasetSpec{Preset: "taobao-10", TotalSamples: 1200, Seed: 3})
	if _, err := Train(TrainSpec{Dataset: ds, Model: "nope"}); err == nil {
		t.Fatal("expected error for unknown model")
	}
	if _, err := Train(TrainSpec{Dataset: ds, Framework: "nope"}); err == nil {
		t.Fatal("expected error for unknown framework")
	}
}

func TestPredictHelper(t *testing.T) {
	ds := GenerateDataset(DatasetSpec{Preset: "taobao-10", TotalSamples: 1200, Seed: 3})
	res, err := Train(TrainSpec{Dataset: ds, Model: "mlp", Framework: "alternate", Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ins := []data.Interaction{{User: 0, Item: 0, Label: 1}, {User: 1, Item: 1, Label: 0}}
	probs := Predict(res.Predictor, ds, 0, ins)
	if len(probs) != 2 {
		t.Fatalf("got %d probs", len(probs))
	}
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability %g out of range", p)
		}
	}
}
