// Command mamdr-serve trains (or loads) a MAMDR state and serves click
// predictions over HTTP — the serving side of the paper's MDR platform.
//
// Usage:
//
//	mamdr-serve -preset taobao-10 -epochs 10 -addr :8080
//	curl -XPOST localhost:8080/predict -d '{"domain":0,"users":[1,2],"items":[3,4]}'
//	curl -XPOST localhost:8080/domains          # register a new domain
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"mamdr"
	"mamdr/internal/core"
	"mamdr/internal/models"
	"mamdr/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mamdr-serve: ")

	var (
		preset     = flag.String("preset", "taobao-10", "benchmark preset to train on")
		samples    = flag.Int("samples", 8000, "dataset scale")
		model      = flag.String("model", "mlp", "model structure")
		epochs     = flag.Int("epochs", 10, "training epochs before serving")
		seed       = flag.Int64("seed", 1, "random seed")
		addr       = flag.String("addr", ":8080", "listen address")
		replicas   = flag.Int("replicas", 0, "model-replica pool size (0 = GOMAXPROCS)")
		timeout    = flag.Duration("timeout", 5*time.Second, "per-request replica-acquisition timeout")
		checkpoint = flag.String("checkpoint", "", "load a state saved with core.State.Save instead of training")
	)
	flag.Parse()

	ds, err := mamdr.GenerateDatasetErr(mamdr.DatasetSpec{Preset: *preset, TotalSamples: *samples, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	res, err := mamdr.Train(mamdr.TrainSpec{
		Dataset: ds, Model: *model, Framework: "mamdr",
		Epochs: pickEpochs(*checkpoint, *epochs), Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	state, ok := res.Predictor.(*core.State)
	if !ok {
		log.Fatalf("predictor is %T, want *core.State", res.Predictor)
	}
	if *checkpoint != "" {
		if err := state.Load(*checkpoint); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded checkpoint %s", *checkpoint)
	} else {
		log.Printf("trained %s on %s: mean test AUC %.4f", *model, ds.Name, res.MeanTestAUC)
	}

	srv := serve.NewWithOptions(state, ds, serve.Options{
		Replicas:       *replicas,
		RequestTimeout: *timeout,
		// Replicas mirror the trained model's structure (same Config,
		// including Seed); their initial weights are irrelevant because
		// every prediction restores a precomposed snapshot first.
		ReplicaFactory: func() models.Model {
			return models.MustNew(*model, models.Config{Dataset: ds, Seed: *seed})
		},
	})
	fmt.Printf("serving %d domains on %s\n", ds.NumDomains(), *addr)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	log.Fatal(httpSrv.ListenAndServe())
}

// pickEpochs trains minimally when a checkpoint will overwrite the
// state anyway (the model must still be constructed with the right
// structure).
func pickEpochs(checkpoint string, epochs int) int {
	if checkpoint != "" {
		return 1
	}
	return epochs
}
