// Command mamdr-serve trains (or loads) a MAMDR state and serves click
// predictions over HTTP — the serving side of the paper's MDR platform.
//
// Usage:
//
//	mamdr-serve -preset taobao-10 -epochs 10 -addr :8080
//	curl -XPOST localhost:8080/predict -d '{"domain":0,"users":[1,2],"items":[3,4]}'
//	curl -XPOST localhost:8080/domains          # register a new domain
//	curl localhost:8080/metrics                 # Prometheus exposition
//	mamdr-serve -ps-addrs 127.0.0.1:7001,127.0.0.1:7002   # serve a live PS cluster's parameters
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mamdr"
	"mamdr/internal/autograd/kernels"
	"mamdr/internal/cluster"
	"mamdr/internal/core"
	"mamdr/internal/data"
	"mamdr/internal/faultinject"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/obsv"
	"mamdr/internal/paramvec"
	"mamdr/internal/ps"
	"mamdr/internal/quality"
	"mamdr/internal/rollout"
	"mamdr/internal/serve"
	"mamdr/internal/telemetry"
	"mamdr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mamdr-serve: ")

	var (
		preset        = flag.String("preset", "taobao-10", "benchmark preset to train on")
		samples       = flag.Int("samples", 8000, "dataset scale")
		model         = flag.String("model", "mlp", "model structure")
		epochs        = flag.Int("epochs", 10, "training epochs before serving")
		seed          = flag.Int64("seed", 1, "random seed")
		addr          = flag.String("addr", ":8080", "listen address")
		replicas      = flag.Int("replicas", 0, "model-replica pool size (0 = GOMAXPROCS)")
		kernelThreads = flag.Int("kernel-threads", 1, "goroutines per math kernel (0 = GOMAXPROCS; serving defaults to 1 so concurrency comes from the replica pool, not intra-op fan-out)")
		timeout       = flag.Duration("timeout", 5*time.Second, "per-request replica-acquisition timeout")
		checkpoint    = flag.String("checkpoint", "", "load a state saved with core.State.Save instead of training")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight requests")
		embDim        = flag.Int("emb", 8, "embedding dimension (must match the cluster's -emb when -ps-addrs is set)")
		psAddrs       = flag.String("ps-addrs", "", "comma-separated shard-server addresses (replicas of one shard joined with '|'): load the shared parameters from the running cluster and report its connectivity in /readyz")

		withQuality   = flag.Bool("quality", true, "streaming model-quality tracking: /feedback label joins, drift detection vs the checkpoint baseline, quality SLO breach counters (needs -metrics)")
		qualityWindow = flag.Int("quality-window", 0, "labeled prequential-evaluation window per domain (0 = default)")
		feedbackTTL   = flag.Duration("feedback-ttl", 0, "how long /predict scores wait in the join buffer for /feedback labels (0 = default 2m)")

		withMetrics = flag.Bool("metrics", true, "expose Prometheus /metrics and instrument the request path")
		withPprof   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		accessLog   = flag.String("access-log", "stderr", `structured JSON access log: "stderr", "stdout", a file path, or "off"`)

		tracePath   = flag.String("trace", "", "stream per-request spans as JSONL to this file (serving never exits; use GET /debug/trace?sec=N for a Chrome/Perfetto capture)")
		traceSample = flag.Float64("trace-sample", 1, "fraction of request root spans to record (0..1)")
		flightDump  = flag.String("flight-dump", "", "flight-recorder dump path prefix for anomalies such as pool saturation (default <trace>.flight when -trace is set)")
		withTrace   = flag.Bool("tracing", true, "enable request tracing and /debug/trace capture-on-demand")

		profileDir      = flag.String("profile-dir", "", "continuous profiling: keep a ring of CPU+heap pprof profiles in this directory")
		profileInterval = flag.Duration("profile-interval", 30*time.Second, "continuous-profiling capture cadence (with -profile-dir)")

		withRollout    = flag.Bool("rollout", true, "canary-gate live publications (POST /admin/publish): new snapshots take a traffic fraction and auto-promote or auto-rollback on live quality")
		canaryFraction = flag.Float64("canary-fraction", 0.2, "traffic share the canary snapshot takes during evaluation")
		rolloutLabeled = flag.Int("rollout-min-labeled", 0, "labeled observations per arm before the AUC/logloss gates may decide (0 = default 200)")
		rolloutScores  = flag.Int("rollout-min-scores", 0, "served scores per arm before the PSI gate may decide (0 = default 500)")
		rolloutMaxWait = flag.Duration("rollout-max-wait", 0, "fail-safe: a canary still unproven after this long is rolled back (0 = default 10m)")
		maxQueue       = flag.Int("max-queue", 0, "admission control: shed predictions once this many queue beyond the replica pool (0 = 4×replicas)")
		serveFaults    = flag.String("serve-faults", "", "serving-path fault schedule (op:kind@occurrences; ops: Predict, PublishSource, UpstreamPing, UpstreamSnapshot), seeded by -seed")

		batchMax      = flag.Int("batch-max", 0, "coalesce concurrent /predict requests into micro-batches of at most this many rows sharing one batched forward (0 = off, one forward per request)")
		batchLinger   = flag.Duration("batch-linger", 500*time.Microsecond, "how long a lone request waits for batchmates before its batch flushes anyway (with -batch-max)")
		snapshotQuant = flag.String("snapshot-quant", "off", `serving-snapshot embedding storage: "off" (float64) or "int8" (symmetric-per-row quantized tables + hot-row dequantization cache)`)
		quantCache    = flag.Int("quant-cache", 0, "dequantization LRU capacity in rows across all domains (0 = default 4096, with -snapshot-quant=int8)")
	)
	flag.Parse()
	kernels.SetThreads(*kernelThreads)

	ds, err := mamdr.GenerateDatasetErr(mamdr.DatasetSpec{Preset: *preset, TotalSamples: *samples, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	res, err := mamdr.Train(mamdr.TrainSpec{
		Dataset: ds, Model: *model, Framework: "mamdr",
		Epochs: pickEpochs2(*checkpoint, *psAddrs, *epochs), EmbDim: *embDim, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	state, ok := res.Predictor.(*core.State)
	if !ok {
		log.Fatalf("predictor is %T, want *core.State", res.Predictor)
	}
	var ckptBaseline *quality.Baseline
	var initialCRC uint32
	if *checkpoint != "" {
		env, err := core.EnvelopeInfo(*checkpoint)
		if err != nil {
			log.Fatalf("checkpoint envelope: %v", err)
		}
		initialCRC = env.CRC
		b, err := state.LoadWithBaseline(*checkpoint)
		if err != nil {
			log.Fatal(err)
		}
		ckptBaseline = b
		log.Printf("loaded checkpoint %s (envelope v%d, crc %08x, %d payload bytes)",
			*checkpoint, env.Version, env.CRC, env.PayloadBytes)
	} else {
		log.Printf("trained %s on %s: mean test AUC %.4f", *model, ds.Name, res.MeanTestAUC)
	}

	// Cluster-backed state: pull the shared parameters straight from a
	// running shard cluster (the one mamdr-train -ps-serve hosts). The
	// initial load retries with seeded backoff — a serve process racing
	// its cluster at startup waits for it instead of dying on the first
	// connection refusal — and the cluster stays wired in as the
	// Upstream: /readyz probes it through the circuit breaker, and
	// POST /admin/publish {"source":"upstream"} pulls fresh snapshots.
	var upstream *serve.Upstream
	if *psAddrs != "" {
		groups := parseShardAddrs(*psAddrs)
		if len(groups) == 0 {
			log.Fatal("-ps-addrs: no addresses given")
		}
		serving := models.MustNew(*model, models.Config{Dataset: ds, EmbDim: *embDim, Seed: *seed})
		plan := ps.NewPlan(ps.LayoutOf(serving.Parameters(), models.EmbeddingTablesOf(serving)), len(groups), *seed)
		dialCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
		router, snap, err := cluster.DialSnapshot(dialCtx, plan, groups, nil, cluster.Options{}, ps.Backoff{Seed: *seed})
		cancel()
		if err != nil {
			log.Fatalf("-ps-addrs: %v", err)
		}
		router.Close() // probes and publishes dial fresh; a condemned replica must not linger
		state.Shared = snap
		log.Printf("loaded shared parameters from %d-shard cluster at %s", len(groups), *psAddrs)
		upstream = &serve.Upstream{
			Ping: shardProber(groups),
			// Each pull dials a fresh router: shard condemnation inside a
			// Router is permanent, so a long-lived one would go stale after
			// any transient loss. Publishes are rare; the dial is cheap.
			Snapshot: func() (paramvec.Vector, error) {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				r, v, err := cluster.DialSnapshot(ctx, plan, groups, nil, cluster.Options{}, ps.Backoff{Seed: *seed})
				if err != nil {
					return nil, err
				}
				r.Close()
				return v, nil
			},
		}
	}

	var reg *telemetry.Registry
	if *withMetrics {
		reg = telemetry.New()
		telemetry.RegisterGoRuntime(reg)
		obsv.RegisterBuildInfo(reg, "serve")
	}
	logger, err := openAccessLog(*accessLog)
	if err != nil {
		log.Fatal(err)
	}

	// Tracing: per-request spans with an optional JSONL stream; the
	// flight recorder dumps recent spans when the replica pool
	// saturates. Capture-on-demand Chrome JSON lives at /debug/trace.
	var tracer *trace.Tracer
	if *withTrace || *tracePath != "" || *flightDump != "" {
		if *tracePath != "" && *flightDump == "" {
			*flightDump = *tracePath + ".flight"
		}
		tracer = trace.New(trace.Options{Sample: *traceSample, FlightPath: *flightDump})
		if *tracePath != "" {
			exp, err := trace.OpenJSONLExporter(*tracePath)
			if err != nil {
				log.Fatal(err)
			}
			defer exp.Close()
			tracer.AddSink(exp)
			log.Printf("streaming spans to %s", *tracePath)
		}
	}

	// Continuous profiling: bounded pprof ring, flushed next to the
	// flight-recorder dump when an anomaly fires.
	if *profileDir != "" {
		prof, err := obsv.NewProfiler(obsv.ProfileOptions{Dir: *profileDir, Interval: *profileInterval})
		if err != nil {
			log.Fatal(err)
		}
		go prof.Run(context.Background())
		if tracer != nil {
			tracer.Flight().SetOnDump(func(d trace.Dump) {
				prof.DumpTo(filepath.Join(*profileDir, "flight-"+d.Kind))
			})
		}
		log.Printf("continuous profiling to %s every %s", *profileDir, *profileInterval)
	}

	// Model-quality tracking: the drift baseline comes from the
	// checkpoint envelope when one is loaded; otherwise it is profiled
	// from the validation split of the model this process just trained.
	// A pre-quality (v2) checkpoint carries no baseline — serving
	// continues with drift detection disabled, logged and counted.
	var tracker *quality.Tracker
	if *withQuality && reg != nil {
		tracker = quality.NewTracker(reg, quality.Options{Checks: true, Window: *qualityWindow})
		switch {
		case ckptBaseline != nil:
			tracker.SetBaseline(ckptBaseline)
			log.Printf("quality baseline loaded from checkpoint (%d domains)", len(ckptBaseline.Domains))
		case *checkpoint != "":
			tracker.SetBaseline(nil)
			log.Printf("pre-quality checkpoint: drift detection disabled (re-save with a baseline to enable)")
		default:
			tracker.SetBaseline(framework.QualityBaseline(state, ds, data.Val))
			log.Printf("quality baseline profiled from the validation split")
		}
	}

	var faults *faultinject.Injector
	if *serveFaults != "" {
		faults, err = faultinject.Parse(*serveFaults, *seed)
		if err != nil {
			log.Fatalf("-serve-faults: %v", err)
		}
		log.Printf("serving-path fault injection armed: %s (seed %d)", *serveFaults, *seed)
	}

	publishInfo := obsv.SnapshotInfoPublisher(reg, "serve")
	srv := serve.NewWithOptions(state, ds, serve.Options{
		Replicas:        *replicas,
		RequestTimeout:  *timeout,
		MaxQueue:        *maxQueue,
		ShedSeed:        *seed,
		Metrics:         reg,
		AccessLog:       logger,
		Tracer:          tracer,
		Upstream:        upstream,
		UpstreamBackoff: ps.Backoff{Seed: *seed},
		Quality:         tracker,
		FeedbackTTL:     *feedbackTTL,
		Faults:          faults,
		InitialCRC:      initialCRC,
		BatchMax:        *batchMax,
		BatchLinger:     *batchLinger,
		SnapshotQuant:   *snapshotQuant,
		QuantCacheRows:  *quantCache,
		OnSwap: func(version uint64, crc uint32) {
			publishInfo(version, crc)
			log.Printf("snapshot v%d (crc %08x) is now the incumbent", version, crc)
		},
		// Replicas mirror the trained model's structure (same Config,
		// including Seed); their initial weights are irrelevant because
		// every prediction restores a precomposed snapshot first.
		ReplicaFactory: func() models.Model {
			return models.MustNew(*model, models.Config{Dataset: ds, EmbDim: *embDim, Seed: *seed})
		},
	})
	publishInfo(1, initialCRC)
	if *batchMax > 0 {
		log.Printf("request coalescing on: batches of up to %d rows, %s linger", *batchMax, *batchLinger)
	}
	if *snapshotQuant == "int8" {
		log.Printf("snapshot embeddings quantized int8 (dequant cache %d rows)", func() int {
			if *quantCache > 0 {
				return *quantCache
			}
			return 4096
		}())
	}

	// The canary gate: serve routes traffic and reports observations,
	// the controller decides, the Fleet interface (srv) executes. A
	// ticker arms the fail-safe deadline so an unproven canary cannot
	// fly forever on a quiet service.
	if *withRollout {
		ctrl := rollout.New(srv, reg, tracer, rollout.Config{
			Fraction:   *canaryFraction,
			MinLabeled: *rolloutLabeled,
			MinScores:  *rolloutScores,
			MaxWait:    *rolloutMaxWait,
			OnDecision: func(d rollout.Decision) { log.Print(d.String()) },
		})
		srv.SetRollout(ctrl)
		go func() {
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for range t.C {
				ctrl.Tick()
			}
		}()
	}
	handler := srv.Handler()
	if *withPprof {
		// Mount pprof explicitly instead of relying on the package's
		// DefaultServeMux side effect, so it only exists behind the flag.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("pprof on /debug/pprof/")
	}
	fmt.Printf("serving %d domains on %s\n", ds.NumDomains(), *addr)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
	}

	// Graceful drain: on SIGTERM/SIGINT, fail /readyz first (load
	// balancers stop sending traffic), then let in-flight requests
	// finish before exiting; a second signal or the drain timeout kills
	// the process regardless.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills immediately
		log.Printf("signal received; draining (readyz now 503, up to %s for in-flight requests)", *drainTimeout)
		srv.SetDraining(true)
		// Keep the listener open briefly so readiness probes on new
		// connections observe the 503 and stop routing; Shutdown would
		// otherwise close it before any balancer re-polls.
		if grace := time.Second; *drainTimeout > 2*grace {
			time.Sleep(grace)
		}
		shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Fatalf("drain incomplete: %v", err)
		}
		srv.Close() // flush any still-open micro-batches
		log.Printf("drained cleanly")
	}
}

// openAccessLog resolves the -access-log destination to a JSON slog
// logger, or nil when disabled.
func openAccessLog(dest string) (*slog.Logger, error) {
	var w *os.File
	switch dest {
	case "", "off", "none":
		return nil, nil
	case "stderr":
		w = os.Stderr
	case "stdout":
		w = os.Stdout
	default:
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("access log: %w", err)
		}
		w = f
	}
	return slog.New(slog.NewJSONHandler(w, nil)), nil
}

// pickEpochs2 trains minimally when a checkpoint or a live PS cluster
// will overwrite the shared state anyway (the model must still be
// constructed with the right structure).
func pickEpochs2(checkpoint, psAddrs string, epochs int) int {
	if checkpoint != "" || psAddrs != "" {
		return 1
	}
	return epochs
}

// parseShardAddrs splits "a,b,c" into per-shard address groups; the
// replicas of one shard are joined with '|' ("a0|a1,b0|b1") — the same
// syntax mamdr-train's -ps-serve/-ps-addrs use.
func parseShardAddrs(s string) [][]string {
	var out [][]string
	for _, shard := range strings.Split(s, ",") {
		var reps []string
		for _, a := range strings.Split(shard, "|") {
			if a = strings.TrimSpace(a); a != "" {
				reps = append(reps, a)
			}
		}
		if len(reps) > 0 {
			out = append(out, reps)
		}
	}
	return out
}

// shardProber dials one probe client per shard replica and returns the
// /readyz upstream check: every replica must answer a Ping within a
// second, and the first failure names the shard that is down.
func shardProber(groups [][]string) func(context.Context) error {
	type probe struct {
		sh, rep int
		cl      *ps.Client
	}
	var probes []probe
	for sh, g := range groups {
		for rep, addr := range g {
			cl, err := ps.Dial(addr)
			if err != nil {
				log.Fatalf("shard %d replica %d (%s): %v", sh, rep, addr, err)
			}
			probes = append(probes, probe{sh, rep, cl})
		}
	}
	return func(ctx context.Context) error {
		ctx, cancel := context.WithTimeout(ctx, time.Second)
		defer cancel()
		for _, p := range probes {
			if err := p.cl.Ping(ctx); err != nil {
				return fmt.Errorf("shard %d replica %d: %w", p.sh, p.rep, err)
			}
		}
		return nil
	}
}
