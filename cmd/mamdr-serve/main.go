// Command mamdr-serve trains (or loads) a MAMDR state and serves click
// predictions over HTTP — the serving side of the paper's MDR platform.
//
// Usage:
//
//	mamdr-serve -preset taobao-10 -epochs 10 -addr :8080
//	curl -XPOST localhost:8080/predict -d '{"domain":0,"users":[1,2],"items":[3,4]}'
//	curl -XPOST localhost:8080/domains          # register a new domain
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"mamdr"
	"mamdr/internal/core"
	"mamdr/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mamdr-serve: ")

	var (
		preset     = flag.String("preset", "taobao-10", "benchmark preset to train on")
		samples    = flag.Int("samples", 8000, "dataset scale")
		model      = flag.String("model", "mlp", "model structure")
		epochs     = flag.Int("epochs", 10, "training epochs before serving")
		seed       = flag.Int64("seed", 1, "random seed")
		addr       = flag.String("addr", ":8080", "listen address")
		checkpoint = flag.String("checkpoint", "", "load a state saved with core.State.Save instead of training")
	)
	flag.Parse()

	ds, err := mamdr.GenerateDatasetErr(mamdr.DatasetSpec{Preset: *preset, TotalSamples: *samples, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	res, err := mamdr.Train(mamdr.TrainSpec{
		Dataset: ds, Model: *model, Framework: "mamdr",
		Epochs: pickEpochs(*checkpoint, *epochs), Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	state, ok := res.Predictor.(*core.State)
	if !ok {
		log.Fatalf("predictor is %T, want *core.State", res.Predictor)
	}
	if *checkpoint != "" {
		if err := state.Load(*checkpoint); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded checkpoint %s", *checkpoint)
	} else {
		log.Printf("trained %s on %s: mean test AUC %.4f", *model, ds.Name, res.MeanTestAUC)
	}

	srv := serve.New(state, ds)
	fmt.Printf("serving %d domains on %s\n", ds.NumDomains(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

// pickEpochs trains minimally when a checkpoint will overwrite the
// state anyway (the model must still be constructed with the right
// structure).
func pickEpochs(checkpoint string, epochs int) int {
	if checkpoint != "" {
		return 1
	}
	return epochs
}
