// Command mamdr-obs is the fleet observer: it scrapes the metric
// snapshots of every mamdr process — trainers and serve frontends over
// HTTP (/metrics/snapshot), parameter-server shards over their gob RPC
// socket (rpc://host:port) — federates them into one fleet-wide
// Prometheus exposition, burns the SLO error budgets against the
// aggregate, and serves a live dashboard.
//
// Usage:
//
//	mamdr-obs -scrape trainer=127.0.0.1:9090,rpc://127.0.0.1:7001,rpc://127.0.0.1:7002
//	curl localhost:9600/metrics          # federated fleet exposition
//	curl localhost:9600/slo              # SLO burn status + alerts fired
//	open http://localhost:9600/          # live dashboard
//
// A firing burn-rate alert increments mamdr_slo_burn_alerts_total,
// appends an slo_burn event to -events, and (with -flight-dump)
// triggers a flight-recorder dump.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"mamdr/internal/obsv"
	"mamdr/internal/telemetry"
	"mamdr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mamdr-obs: ")

	var (
		scrape   = flag.String("scrape", "", `comma-separated scrape targets: "host:port" (HTTP /metrics/snapshot), "role=host:port", or "rpc://host:port" (PS shard gob RPC)`)
		addr     = flag.String("addr", ":9600", "serve the federated /metrics, /slo, and dashboard on this address")
		interval = flag.Duration("interval", 5*time.Second, "scrape cadence")
		timeout  = flag.Duration("timeout", 3*time.Second, "per-target scrape timeout")
		runFor   = flag.Duration("run-for", 0, "exit after this long with a summary line (0 = run until killed)")
		once     = flag.Bool("once", false, "one scrape round: print the federated exposition to stdout and exit")
		sloFast  = flag.Bool("slo-fast", false, "shrink every SLO burn window to seconds (CI and demos: alerts fire within one scrape round of a fault)")

		eventsPath     = flag.String("events", "", "append JSONL observer events (scrape errors, slo_burn, slo_clear) to this file")
		eventsMaxBytes = flag.Int64("events-max-bytes", 0, "rotate the -events file after it reaches this size (0 = never rotate)")
		eventsKeep     = flag.Int("events-keep", 3, "rotated -events segments to keep (with -events-max-bytes)")
		flightDump     = flag.String("flight-dump", "", "flight-recorder dump path prefix written when an SLO alert fires")

		profileDir      = flag.String("profile-dir", "", "continuous profiling: keep a ring of CPU+heap pprof profiles in this directory")
		profileInterval = flag.Duration("profile-interval", 30*time.Second, "continuous-profiling capture cadence (with -profile-dir)")
	)
	flag.Parse()

	targets, err := obsv.ParseTargets(*scrape)
	if err != nil {
		log.Fatal(err)
	}
	if len(targets) == 0 {
		log.Fatal("-scrape: no targets given (see -help)")
	}

	var events *telemetry.EventLog
	if *eventsPath != "" {
		if *eventsMaxBytes > 0 {
			events, err = telemetry.OpenEventLogRotating(*eventsPath,
				telemetry.Rotation{MaxBytes: *eventsMaxBytes, Keep: *eventsKeep})
		} else {
			events, err = telemetry.OpenEventLog(*eventsPath)
		}
		if err != nil {
			log.Fatal(err)
		}
		defer events.Close()
	}

	var flight *trace.FlightRecorder
	if *flightDump != "" {
		flight = trace.NewFlightRecorder(0, *flightDump)
	}

	slos := obsv.DefaultSLOs()
	if *sloFast {
		for i := range slos {
			slos[i].BudgetWindow = time.Minute
			slos[i].Windows = []obsv.Window{{Duration: 10 * time.Second, MaxBurn: 1}, {Duration: 30 * time.Second, MaxBurn: 1}}
		}
		log.Printf("slo-fast: burn windows 10s/30s against a 1m budget window")
	}

	srv := obsv.NewServer(obsv.ServerOptions{
		Targets:  targets,
		Interval: *interval,
		Timeout:  *timeout,
		SLOs:     slos,
		Events:   events,
		Flight:   flight,
	})

	if *profileDir != "" {
		prof, err := obsv.NewProfiler(obsv.ProfileOptions{Dir: *profileDir, Interval: *profileInterval})
		if err != nil {
			log.Fatal(err)
		}
		go prof.Run(context.Background())
		flight.SetOnDump(func(d trace.Dump) { prof.DumpTo(*profileDir + "/flight-" + d.Kind) })
		log.Printf("continuous profiling to %s every %s", *profileDir, *profileInterval)
	}

	if *once {
		srv.ScrapeOnce()
		if err := writeFederated(srv, os.Stdout); err != nil {
			log.Fatal(err)
		}
		summarize(srv)
		return
	}

	go func() {
		log.Printf("observing %d targets; serving on %s", len(targets), *addr)
		hs := &http.Server{Addr: *addr, Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
		if err := hs.ListenAndServe(); err != nil {
			log.Printf("http: %v", err)
		}
	}()

	ctx := context.Background()
	if *runFor > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runFor)
		defer cancel()
	}
	srv.Run(ctx)
	summarize(srv)
	if flight != nil {
		for _, d := range flight.Dumps() {
			log.Printf("flight-recorder dump (%s): %s", d.Kind, d.Path)
		}
	}
}

// writeFederated renders the current federated exposition.
func writeFederated(srv *obsv.Server, w *os.File) error {
	req, _ := http.NewRequest("GET", "/metrics", nil)
	rec := newSink(w)
	srv.Handler().ServeHTTP(rec, req)
	return rec.err
}

// sink adapts an *os.File to http.ResponseWriter for -once output.
type sink struct {
	w   *os.File
	h   http.Header
	err error
}

func newSink(w *os.File) *sink      { return &sink{w: w, h: http.Header{}} }
func (s *sink) Header() http.Header { return s.h }
func (s *sink) WriteHeader(int)     {}
func (s *sink) Write(p []byte) (int, error) {
	n, err := s.w.Write(p)
	if err != nil && s.err == nil {
		s.err = err
	}
	return n, err
}

// summarize prints the greppable exit line CI asserts on.
func summarize(srv *obsv.Server) {
	var firing []string
	for _, st := range srv.Status() {
		if st.Firing {
			firing = append(firing, st.Name)
		}
	}
	state := "none"
	if len(firing) > 0 {
		state = strings.Join(firing, ",")
	}
	fmt.Printf("obs summary: alerts_fired=%d firing=%s\n", srv.Fired(), state)
}
