// Command experiments regenerates the MAMDR paper's evaluation tables
// and figures (Tables I-X, Figures 8-9) plus this repository's extra
// design-choice ablations, writing them as markdown.
//
// Usage:
//
//	experiments -run all -scale quick -out results.md
//	experiments -run table5,table6 -scale full
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mamdr/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		run   = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale = flag.String("scale", "quick", "experiment scale: tiny, quick, full")
		out   = flag.String("out", "", "write markdown to this file (default stdout)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.Order {
			fmt.Println(id)
		}
		return
	}

	var s exp.Scale
	switch *scale {
	case "tiny":
		s = exp.Tiny
	case "quick":
		s = exp.Quick
	case "full":
		s = exp.Full
	default:
		log.Fatalf("unknown scale %q (tiny, quick, full)", *scale)
	}

	ids := exp.Order
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# MAMDR experiment results (scale=%s: %d samples/benchmark, %d epochs, seed %d)\n\n",
		*scale, s.TotalSamples, s.Epochs, s.Seed)
	total := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tables, err := exp.Run(id, s)
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range tables {
			b.WriteString(t.Markdown())
			b.WriteString("\n")
		}
		elapsed := time.Since(start).Round(time.Second)
		fmt.Fprintf(os.Stderr, "experiments: %s done in %s\n", id, elapsed)
		fmt.Fprintf(&b, "_%s completed in %s._\n\n", id, elapsed)
	}
	fmt.Fprintf(&b, "_Total wall time: %s._\n", time.Since(total).Round(time.Second))

	if *out == "" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", *out)
}
