// Command mamdr-train trains any (model, framework) combination on a
// benchmark dataset and reports per-domain AUC.
//
// Usage:
//
//	mamdr-train -preset taobao-10 -model mlp -framework mamdr -epochs 15
//	mamdr-train -data my_dataset.json -model star -framework alternate
//	mamdr-train -metrics-addr :9090 -events run.jsonl     # observability
//	mamdr-train -ps-workers 4                             # distributed PS-Worker run
//	mamdr-train -ps-workers 4 -ps-shards 3                # partitioned PS cluster (in-process shards)
//	mamdr-train -ps-serve  127.0.0.1:7001,127.0.0.1:7002  # host the shard servers and block
//	mamdr-train -ps-workers 4 -ps-addrs 127.0.0.1:7001,127.0.0.1:7002   # train against them
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"mamdr"
	"mamdr/internal/autograd/kernels"
	"mamdr/internal/cluster"
	"mamdr/internal/core"
	"mamdr/internal/data"
	"mamdr/internal/faultinject"
	"mamdr/internal/framework"
	"mamdr/internal/metrics"
	"mamdr/internal/models"
	"mamdr/internal/obsv"
	"mamdr/internal/ps"
	"mamdr/internal/quality"
	"mamdr/internal/telemetry"
	"mamdr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mamdr-train: ")

	var (
		preset   = flag.String("preset", "taobao-10", "benchmark preset (ignored when -data is set)")
		dataPath = flag.String("data", "", "path to a dataset JSON written by datagen")
		samples  = flag.Int("samples", 10000, "dataset scale when generating a preset")
		model    = flag.String("model", "mlp", "model structure: "+strings.Join(mamdr.ModelNames(), ", "))
		fw       = flag.String("framework", "mamdr", "learning framework: "+strings.Join(mamdr.FrameworkNames(), ", "))
		epochs   = flag.Int("epochs", 15, "training epochs")
		batch    = flag.Int("batch", 64, "mini-batch size")
		innerLR  = flag.Float64("lr", 0, "inner-loop learning rate α (0 = framework default)")
		outerLR  = flag.Float64("outer-lr", 0, "DN outer-loop learning rate β (0 = default)")
		drLR     = flag.Float64("dr-lr", 0, "DR learning rate γ (0 = default)")
		sampleK  = flag.Int("k", 0, "DR helper-domain sample count (0 = default)")
		embDim   = flag.Int("emb", 8, "embedding dimension")
		seed     = flag.Int64("seed", 1, "random seed")

		kernelThreads = flag.Int("kernel-threads", 0, "goroutines per math kernel (0 = GOMAXPROCS; results are bit-identical at any setting)")

		metricsAddr    = flag.String("metrics-addr", "", "serve Prometheus /metrics on this address during training (e.g. :9090)")
		metricsLinger  = flag.Duration("metrics-linger", 0, "keep /metrics up this long after training (for a final scrape)")
		eventsPath     = flag.String("events", "", "append one JSONL event per epoch to this file")
		eventsMaxBytes = flag.Int64("events-max-bytes", 0, "rotate the -events file after it reaches this size (0 = never rotate)")
		eventsKeep     = flag.Int("events-keep", 3, "rotated -events segments to keep (with -events-max-bytes)")

		profileDir      = flag.String("profile-dir", "", "continuous profiling: keep a ring of CPU+heap pprof profiles in this directory")
		profileInterval = flag.Duration("profile-interval", 30*time.Second, "continuous-profiling capture cadence (with -profile-dir)")

		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON file of the run (load in Perfetto or chrome://tracing)")
		traceSample = flag.Float64("trace-sample", 1, "fraction of root spans to record (0..1)")
		flightDump  = flag.String("flight-dump", "", "flight-recorder dump path prefix for anomalies (default <trace>.flight when -trace is set)")

		psWorkers = flag.Int("ps-workers", 0, "run distributed PS-Worker training with this many workers (0 = single process; mamdr framework only)")
		psShards  = flag.Int("ps-shards", 1, "partition the parameter server across this many cluster shards (>1 = multi-PS mode; training is bit-identical across shard counts)")
		psCache   = flag.Bool("ps-cache", true, "enable the PS-Worker embedding cache (§IV-E) for -ps-workers")
		psFaults  = flag.String("ps-faults", "", `fault-injection schedule for -ps-workers chaos runs, e.g. "PushDelta:err@p0.05; PullRows:delay=10ms@*" (seeded by -seed + worker id)`)
		psSync    = flag.Bool("ps-sync-push", false, "apply worker deltas serially per epoch for bit-reproducible distributed runs")

		psAddrs  = flag.String("ps-addrs", "", "comma-separated addresses of running shard servers to train against (replicas of one shard joined with '|'); see -ps-serve")
		psServe  = flag.String("ps-serve", "", "host the parameter-server shards on these comma-separated addresses for -model/-preset and block (replica addresses of one shard joined with '|')")
		replicas = flag.Int("shard-replicas", 1, "replicas per cluster shard: writes broadcast to all, reads fail over past dead ones")

		checkpointDir   = flag.String("checkpoint-dir", "", "write crash-safe epoch-boundary checkpoints into this directory")
		checkpointEvery = flag.Int("checkpoint-every", 1, "checkpoint cadence in epochs (with -checkpoint-dir)")
		resume          = flag.Bool("resume", false, "resume from the last checkpoint in -checkpoint-dir (bit-identical to an uninterrupted run under the same seed)")
		savePath        = flag.String("save", "", "save the trained state with a quality baseline profiled on the validation split (loadable by mamdr-serve -checkpoint)")
		flipLabels      = flag.Bool("flip-labels", false, "invert every interaction label before training — produces a deliberately quality-regressed model for rollout/rollback drills")
	)
	flag.Parse()
	kernels.SetThreads(*kernelThreads)

	var (
		ds  *mamdr.Dataset
		err error
	)
	if *dataPath != "" {
		ds, err = mamdr.LoadDataset(*dataPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		ds, err = mamdr.GenerateDatasetErr(mamdr.DatasetSpec{Preset: *preset, TotalSamples: *samples, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
	}
	if *flipLabels {
		// The drill model: structurally identical to an honest run, but
		// trained against inverted labels, so its live quality is reliably
		// worse — exactly what a canary gate must catch and roll back.
		for _, dom := range ds.Domains {
			for _, split := range [][]data.Interaction{dom.Train, dom.Val, dom.Test} {
				for i := range split {
					split[i].Label = 1 - split[i].Label
				}
			}
		}
		log.Printf("flip-labels: inverted every label in %s — this model is deliberately poisoned", ds.Name)
	}

	// Tracing: the tracer is built whenever -trace/-flight-dump asks for
	// it, or when /metrics is up (so /debug/trace capture-on-demand
	// works even without a trace file). Training spans flow into the
	// Chrome exporter; the flight recorder dumps the recent span history
	// when an anomaly (NaN loss, loss spike, RPC error) fires.
	var (
		tracer   *trace.Tracer
		exporter *trace.ChromeExporter
	)
	if *tracePath != "" && *flightDump == "" {
		*flightDump = *tracePath + ".flight"
	}
	if *tracePath != "" || *flightDump != "" || *metricsAddr != "" {
		tracer = trace.New(trace.Options{Sample: *traceSample, FlightPath: *flightDump})
		if *tracePath != "" {
			exporter = trace.NewChromeExporter(*tracePath, 0)
			tracer.AddSink(exporter)
		}
	}

	// Observability: a private registry exposed over HTTP plus an
	// append-only JSONL event log. Both are optional and free when off.
	// The /metrics/snapshot endpoint serves the versioned JSON snapshot
	// that mamdr-obs federates across the fleet.
	role := "trainer"
	if *psServe != "" {
		role = "ps"
	}
	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.New()
		telemetry.RegisterGoRuntime(reg)
		obsv.RegisterBuildInfo(reg, role)
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/metrics/snapshot", telemetry.SnapshotHandler(role, *metricsAddr, reg))
		mux.Handle("/debug/trace", trace.CaptureHandler(tracer))
		go func() {
			log.Printf("serving /metrics on %s", *metricsAddr)
			srv := &http.Server{Addr: *metricsAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
			if err := srv.ListenAndServe(); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}
	var events *telemetry.EventLog
	if *eventsPath != "" {
		if *eventsMaxBytes > 0 {
			events, err = telemetry.OpenEventLogRotating(*eventsPath,
				telemetry.Rotation{MaxBytes: *eventsMaxBytes, Keep: *eventsKeep})
		} else {
			events, err = telemetry.OpenEventLog(*eventsPath)
		}
		if err != nil {
			log.Fatal(err)
		}
		defer events.Close()
	}

	// Continuous profiling: a bounded on-disk ring of CPU+heap pprof
	// captures; a flight-recorder dump copies the ring next to the trace
	// so an anomaly ships with the profiles of the moments before it.
	if *profileDir != "" {
		prof, err := obsv.NewProfiler(obsv.ProfileOptions{Dir: *profileDir, Interval: *profileInterval})
		if err != nil {
			log.Fatal(err)
		}
		go prof.Run(context.Background())
		if tracer != nil {
			tracer.Flight().SetOnDump(func(d trace.Dump) {
				prof.DumpTo(filepath.Join(*profileDir, "flight-"+d.Kind))
			})
		}
		log.Printf("continuous profiling to %s every %s", *profileDir, *profileInterval)
	}

	fmt.Printf("dataset %s: %d domains, %d samples\n", ds.Name, ds.NumDomains(), ds.TotalSamples())

	// Shard-server mode: host this model's slice servers and block. A
	// training process with matching -model/-emb/-seed (so the partition
	// plans agree) then connects with -ps-addrs.
	if *psServe != "" {
		serveCluster(ds, *model, *psServe, *embDim, *seed, *outerLR, *checkpointDir, tracer, reg)
		return
	}

	start := time.Now()
	var (
		valAUC, testAUC []float64
		pred            framework.Predictor
	)
	if *psWorkers > 0 {
		// An explicit -ps-shards — even "-ps-shards 1" — opts into the
		// cluster path, so shard-scaling experiments can compare the
		// same code path (and the same telemetry series) at 1/2/4
		// shards. Leaving the flag unset keeps the plain single-server
		// deployment.
		shards := *psShards
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "ps-shards" && shards == 1 {
				shards = -1 // cluster mode, one shard
			}
		})
		fmt.Printf("training %s with distributed mamdr (%d workers, %d shards, cache=%v) for %d epochs...\n",
			*model, *psWorkers, *psShards, *psCache, *epochs)
		valAUC, testAUC, pred = trainDistributed(ds, *model, trainOpts{
			workers: *psWorkers, shards: shards, replicas: *replicas, cache: *psCache,
			epochs: *epochs, batch: *batch, innerLR: *innerLR, outerLR: *outerLR,
			drLR: *drLR, sampleK: *sampleK, embDim: *embDim, seed: *seed,
			faults: *psFaults, syncPush: *psSync, addrs: *psAddrs,
			checkpointDir: *checkpointDir, checkpointEvery: *checkpointEvery, resume: *resume,
		}, reg, events, tracer)
	} else {
		fmt.Printf("training %s with %s for %d epochs...\n", *model, *fw, *epochs)
		res, err := mamdr.Train(mamdr.TrainSpec{
			Dataset:   ds,
			Model:     *model,
			Framework: *fw,
			Epochs:    *epochs,
			BatchSize: *batch,
			InnerLR:   *innerLR,
			OuterLR:   *outerLR,
			DRLR:      *drLR,
			SampleK:   *sampleK,
			EmbDim:    *embDim,
			Seed:      *seed,
			Metrics:   reg,
			Events:    events,
			Tracer:    tracer,

			CheckpointDir:   *checkpointDir,
			CheckpointEvery: *checkpointEvery,
			Resume:          *resume,
		})
		if err != nil {
			log.Fatal(err)
		}
		valAUC, testAUC = res.ValAUC, res.TestAUC
		pred = res.Predictor
	}
	fmt.Printf("trained in %s\n\n", time.Since(start).Round(time.Millisecond))

	// Trainer-side quality emission: run the final model over the
	// validation split through a passive quality tracker (no breach
	// counting — that is a serving-side concern), so offline eval lands
	// on the same mamdr_quality_* series the serving fleet emits and a
	// final /metrics scrape federates both under one schema.
	if reg != nil && pred != nil {
		framework.EmitQuality(quality.NewTracker(reg, quality.Options{}), pred, ds, data.Val)
	}

	// -save freezes the trained state plus its validation-time quality
	// profile into one envelope; mamdr-serve -checkpoint loads both and
	// detects drift against the profile.
	if *savePath != "" {
		st, ok := pred.(*core.State)
		if !ok {
			log.Fatalf("-save: predictor is %T, want *core.State (framework %q does not produce a saveable state)", pred, *fw)
		}
		if err := st.SaveWithBaseline(*savePath, framework.QualityBaseline(st, ds, data.Val)); err != nil {
			log.Fatal(err)
		}
		// Surface the envelope identity the serving fleet will key the
		// publication to — the version/CRC pair /admin/publish verifies.
		if env, err := core.EnvelopeInfo(*savePath); err != nil {
			log.Fatalf("-save: reading back envelope: %v", err)
		} else {
			log.Printf("saved state + quality baseline to %s (envelope v%d, crc %08x, %d payload bytes)",
				*savePath, env.Version, env.CRC, env.PayloadBytes)
		}
	}

	if exporter != nil {
		if err := exporter.Close(); err != nil {
			log.Printf("trace: %v", err)
		} else {
			log.Printf("trace: wrote %s", *tracePath)
		}
	}
	if tracer != nil {
		for _, d := range tracer.Flight().Dumps() {
			log.Printf("trace: flight-recorder dump (%s): %s", d.Kind, d.Path)
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Domain\tSamples\tVal AUC\tTest AUC")
	for d, dom := range ds.Domains {
		fmt.Fprintf(w, "%s\t%d\t%.4f\t%.4f\n", dom.Name, dom.Samples(), valAUC[d], testAUC[d])
	}
	fmt.Fprintf(w, "MEAN\t\t%.4f\t%.4f\n", metrics.Mean(valAUC), metrics.Mean(testAUC))
	w.Flush()

	if *metricsAddr != "" && *metricsLinger > 0 {
		log.Printf("holding /metrics open for %s", *metricsLinger)
		time.Sleep(*metricsLinger)
	}
}

type trainOpts struct {
	workers, shards, replicas int
	cache                     bool
	epochs, batch             int
	innerLR, outerLR, drLR    float64
	sampleK, embDim           int
	seed                      int64

	faults          string // faultinject schedule applied to every worker's store
	syncPush        bool
	addrs           string // remote shard addresses (cluster mode over sockets)
	checkpointDir   string
	checkpointEvery int
	resume          bool
}

// parseShardAddrs splits "a,b,c" into per-shard address groups; the
// replicas of one shard are joined with '|' ("a0|a1,b0|b1").
func parseShardAddrs(s string) [][]string {
	var out [][]string
	for _, shard := range strings.Split(s, ",") {
		var reps []string
		for _, a := range strings.Split(shard, "|") {
			if a = strings.TrimSpace(a); a != "" {
				reps = append(reps, a)
			}
		}
		if len(reps) > 0 {
			out = append(out, reps)
		}
	}
	return out
}

// serveCluster hosts the parameter-server shards of the given model on
// the listed addresses and blocks. The partition plan is derived from
// the model layout and -seed, exactly as the training side derives it,
// so both ends agree on which shard owns which slice (cluster.Dial
// verifies the layouts and refuses a mismatched cluster).
func serveCluster(ds *mamdr.Dataset, model, addrSpec string, embDim int, seed int64, outerLR float64, checkpointDir string, tracer *trace.Tracer, reg *telemetry.Registry) {
	groups := parseShardAddrs(addrSpec)
	if len(groups) == 0 {
		log.Fatal("-ps-serve: no addresses given")
	}
	reps := len(groups[0])
	for _, g := range groups {
		if len(g) != reps {
			log.Fatalf("-ps-serve: every shard needs the same replica count (got %v)", groups)
		}
	}
	// Shard servers always carry metrics so the fleet aggregator can
	// scrape them over the PS.MetricsSnapshot RPC, even when no HTTP
	// /metrics endpoint was requested.
	if reg == nil {
		reg = telemetry.New()
		obsv.RegisterBuildInfo(reg, "ps")
	}
	serving := models.MustNew(model, models.Config{Dataset: ds, EmbDim: embDim, Seed: seed})
	tables := models.EmbeddingTablesOf(serving)
	plan := ps.NewPlan(ps.LayoutOf(serving.Parameters(), tables), len(groups), seed)
	so := cluster.ShardOptions{Replicas: reps, OuterLR: outerLR, Tracer: tracer, Metrics: ps.NewMetrics(reg)}
	if checkpointDir != "" {
		if err := os.MkdirAll(checkpointDir, 0o755); err != nil {
			log.Fatal(err)
		}
		so.CheckpointPath = filepath.Join(checkpointDir, "ps.ckpt")
	}
	servers := cluster.Shards(serving.Parameters(), plan, so)
	log.Printf("serving %s", plan.String())
	for sh, g := range groups {
		for rep, addr := range g {
			lis, err := net.Listen("tcp", addr)
			if err != nil {
				log.Fatalf("shard %d replica %d: %v", sh, rep, err)
			}
			log.Printf("shard %d replica %d on %s (%d elements)", sh, rep, lis.Addr(), plan.Elements(sh))
			go ps.Serve(servers[sh][rep], lis)
		}
	}
	select {} // serve until killed
}

// trainDistributed runs the PS-Worker trainer (the paper's industrial
// deployment shape) with full telemetry: PS traffic, cache hit ratio,
// row staleness, the per-domain training series from every worker, and
// (with a tracer) one trace per worker epoch plus anomaly watching.
func trainDistributed(ds *mamdr.Dataset, model string, o trainOpts, reg *telemetry.Registry, events *telemetry.EventLog, tracer *trace.Tracer) (val, test []float64, st *core.State) {
	replica := func() models.Model {
		return models.MustNew(model, models.Config{Dataset: ds, EmbDim: o.embDim, Seed: o.seed})
	}
	var (
		psm *ps.Metrics
		tm  *framework.TrainMetrics
	)
	if reg != nil {
		psm = ps.NewMetrics(reg)
	}
	if reg != nil || events != nil || tracer != nil {
		tm = framework.NewTrainMetrics(reg, ds, events)
	}
	if tracer != nil {
		if f := tracer.Flight(); f != nil {
			// Counting wrapper: every anomaly increments
			// mamdr_anomalies_total{kind} before the flight recorder
			// dumps, so the SLO engine can burn-rate on anomalies.
			var sink telemetry.AnomalySink = f
			if reg != nil {
				sink = telemetry.NewCountingSink(f, reg)
			}
			tm.Anomalies = telemetry.NewLossWatch(sink, 0, 0)
		}
	}
	opts := ps.Options{
		Workers: o.workers, CacheEnabled: o.cache,
		Epochs: o.epochs, BatchSize: o.batch,
		InnerLR: o.innerLR, OuterLR: o.outerLR,
		UseDR: true, SampleK: o.sampleK, DRLR: o.drLR,
		Seed: o.seed, Metrics: psm, Telemetry: tm, Tracer: tracer,
		SyncPush:         o.syncPush,
		HeartbeatTimeout: 30 * time.Second,
	}
	if o.checkpointDir != "" {
		if err := os.MkdirAll(o.checkpointDir, 0o755); err != nil {
			log.Fatal(err)
		}
		opts.CheckpointPath = filepath.Join(o.checkpointDir, "ps.ckpt")
		opts.CheckpointEvery = o.checkpointEvery
		opts.Resume = o.resume
	}
	var res *ps.Result
	switch {
	case o.addrs != "" || o.shards != 1 || o.replicas > 1:
		// Multi-PS mode: the parameter space is partitioned across
		// cluster shards (in-process, or the remote servers behind
		// -ps-addrs) and a scatter-gather router fronts them.
		res = trainCluster(ds, replica, o, opts, reg, tracer)
	case o.faults == "":
		res = ps.Train(replica, ds, opts)
	default:
		// Chaos mode: the PS serves over a real loopback RPC socket and
		// every worker talks through its own client armed with a seeded
		// fault injector, so the injected errors, delays, and connection
		// drops hit the retry/idempotency machinery exactly like network
		// faults would. Deterministic under a fixed -seed.
		res = trainChaos(ds, replica, o, opts, reg)
	}
	c := res.Counters
	log.Printf("PS traffic: %d dense pulls, %d dense pushes, %d row pulls, %d row pushes, %d floats moved",
		c.DensePulls, c.DensePushes, c.RowPulls, c.RowPushes, c.FloatsMoved)
	if res.ResumedFrom > 0 {
		log.Printf("resumed from checkpoint at epoch %d", res.ResumedFrom)
	}
	if res.WorkerDeaths > 0 {
		log.Printf("supervision: %d worker death(s); domains redistributed to survivors", res.WorkerDeaths)
	}
	return framework.EvaluateAUC(res.State, ds, data.Val), framework.EvaluateAUC(res.State, ds, data.Test), res.State
}

// trainCluster runs the distributed trainer against a partitioned
// parameter-server cluster: N shards each owning a deterministic slice
// of the parameter space, fronted by a scatter-gather router. Three
// deployments share this code path:
//
//   - in-process shards (-ps-shards N): everything in this binary;
//   - remote shards (-ps-addrs): each worker dials every shard server;
//   - chaos (-ps-faults with either): in-process shards are lifted onto
//     loopback sockets and every worker's per-shard clients carry a
//     seeded fault injector, so faults hit each shard independently.
//
// The partition plan is a pure function of (layout, shards, seed), so
// with -ps-sync-push the run is bit-identical across shard counts.
func trainCluster(ds *mamdr.Dataset, replica func() models.Model, o trainOpts, opts ps.Options, reg *telemetry.Registry, tracer *trace.Tracer) *ps.Result {
	filled := opts.WithDefaults()
	serving := replica()
	tables := models.EmbeddingTablesOf(serving)

	shards := o.shards
	var groups [][]string
	if o.addrs != "" {
		groups = parseShardAddrs(o.addrs)
		shards = len(groups)
	}
	plan := ps.NewPlan(ps.LayoutOf(serving.Parameters(), tables), shards, o.seed)
	log.Printf("cluster: %s", plan.String())
	ro := cluster.Options{Metrics: cluster.NewMetrics(reg), Tracer: tracer}

	var injectors []*faultinject.Injector
	clientCfg := func(workerID int) func(sh, rep int, cl *ps.Client) {
		return func(sh, rep int, cl *ps.Client) {
			seed := o.seed + int64(workerID*100+sh*10+rep)
			cl.SetBackoff(ps.Backoff{Seed: seed})
			cl.SetMetrics(opts.Metrics)
			cl.SetTracer(tracer)
			if o.faults != "" && workerID >= 0 {
				inj := faultinject.MustParse(o.faults, seed)
				inj.BindMetrics(reg)
				cl.SetInjector(inj)
				injectors = append(injectors, inj)
			}
		}
	}

	if groups == nil && o.faults == "" {
		// Fully in-process: workers share one router over the shard
		// servers, no sockets involved.
		so := cluster.ShardOptions{
			Replicas: o.replicas, OuterOpt: filled.OuterOpt, OuterLR: filled.OuterLR,
			CheckpointPath: opts.CheckpointPath, Tracer: tracer,
		}
		local := cluster.NewLocal(serving.Parameters(), plan, so, ro)
		return ps.TrainWithStore(replica, serving, local.Router, local.Router, ds, opts)
	}

	if groups == nil {
		// Chaos over a cluster: lift the in-process shards onto loopback
		// sockets so the injected faults exercise the real per-shard
		// RPC retry/idempotency path.
		so := cluster.ShardOptions{
			Replicas: o.replicas, OuterOpt: filled.OuterOpt, OuterLR: filled.OuterLR,
			CheckpointPath: opts.CheckpointPath, Tracer: tracer,
		}
		servers := cluster.Shards(serving.Parameters(), plan, so)
		addrs, closeAll, err := cluster.ServeTCP(servers)
		if err != nil {
			log.Fatal(err)
		}
		defer closeAll()
		groups = addrs
		log.Printf("chaos: %d shard servers on loopback, fault schedule %q", shards, o.faults)
	}

	// The base router (no injector) serves snapshots and checkpoints;
	// each worker dials its own per-shard clients so faults and retries
	// are independent per (worker, shard). The logical traffic counters
	// therefore live on the workers' routers, not base — sum them all
	// so the reported numbers match an in-process run's.
	base, err := cluster.Dial(plan, groups, clientCfg(-1), ro)
	if err != nil {
		log.Fatal(err)
	}
	var mu sync.Mutex
	routers := []*cluster.Router{base}
	opts.WrapStore = func(workerID int, _ ps.Store) ps.Store {
		r, err := cluster.Dial(plan, groups, clientCfg(workerID), cluster.Options{Metrics: ro.Metrics, Tracer: tracer})
		if err != nil {
			log.Fatal(err)
		}
		mu.Lock()
		routers = append(routers, r)
		mu.Unlock()
		return r
	}
	res := ps.TrainWithStore(replica, serving, base, counterFunc(func() ps.Counters {
		mu.Lock()
		defer mu.Unlock()
		var sum ps.Counters
		for _, r := range routers {
			c := r.Counters()
			sum.DensePulls += c.DensePulls
			sum.DensePushes += c.DensePushes
			sum.RowPulls += c.RowPulls
			sum.RowPushes += c.RowPushes
			sum.FloatsMoved += c.FloatsMoved
		}
		return sum
	}), ds, opts)
	if o.faults != "" {
		var injected int64
		for _, inj := range injectors {
			for _, n := range inj.Counts() {
				injected += n
			}
		}
		log.Printf("chaos: %d faults injected", injected)
	}
	return res
}

// counterFunc adapts a closure to the Counters source TrainWithStore
// reads the final traffic tallies from.
type counterFunc func() ps.Counters

func (f counterFunc) Counters() ps.Counters { return f() }

// trainChaos runs the distributed trainer against a loopback RPC
// parameter server with per-worker fault injection — the CI chaos smoke
// and local failure-drill entry point.
func trainChaos(ds *mamdr.Dataset, replica func() models.Model, o trainOpts, opts ps.Options, reg *telemetry.Registry) *ps.Result {
	filled := opts.WithDefaults()
	serving := replica()
	server := ps.NewServer(serving.Parameters(), models.EmbeddingTablesOf(serving), filled.Shards, filled.OuterOpt, filled.OuterLR)
	server.SetMetrics(opts.Metrics)
	server.SetTracer(opts.Tracer)
	if opts.CheckpointPath != "" {
		server.SetCheckpointPath(opts.CheckpointPath)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lis.Close()
	go ps.Serve(server, lis)

	base, err := ps.Dial(lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer base.Close()

	var injectors []*faultinject.Injector
	opts.WrapStore = func(workerID int, _ ps.Store) ps.Store {
		cl, err := ps.Dial(lis.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		cl.SetBackoff(ps.Backoff{Seed: o.seed + int64(workerID)})
		inj := faultinject.MustParse(o.faults, o.seed+int64(workerID))
		inj.BindMetrics(reg)
		cl.SetInjector(inj)
		injectors = append(injectors, inj)
		return cl
	}
	log.Printf("chaos: PS on %s, fault schedule %q", lis.Addr(), o.faults)
	res := ps.TrainWithStore(replica, serving, base, base, ds, opts)
	var injected int64
	for _, inj := range injectors {
		for _, n := range inj.Counts() {
			injected += n
		}
	}
	log.Printf("chaos: %d faults injected", injected)
	return res
}
