// Command mamdr-train trains any (model, framework) combination on a
// benchmark dataset and reports per-domain AUC.
//
// Usage:
//
//	mamdr-train -preset taobao-10 -model mlp -framework mamdr -epochs 15
//	mamdr-train -data my_dataset.json -model star -framework alternate
//	mamdr-train -metrics-addr :9090 -events run.jsonl     # observability
//	mamdr-train -ps-workers 4 -ps-shards 4                # distributed PS-Worker run
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"
	"time"

	"mamdr"
	"mamdr/internal/data"
	"mamdr/internal/faultinject"
	"mamdr/internal/framework"
	"mamdr/internal/metrics"
	"mamdr/internal/models"
	"mamdr/internal/ps"
	"mamdr/internal/telemetry"
	"mamdr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mamdr-train: ")

	var (
		preset   = flag.String("preset", "taobao-10", "benchmark preset (ignored when -data is set)")
		dataPath = flag.String("data", "", "path to a dataset JSON written by datagen")
		samples  = flag.Int("samples", 10000, "dataset scale when generating a preset")
		model    = flag.String("model", "mlp", "model structure: "+strings.Join(mamdr.ModelNames(), ", "))
		fw       = flag.String("framework", "mamdr", "learning framework: "+strings.Join(mamdr.FrameworkNames(), ", "))
		epochs   = flag.Int("epochs", 15, "training epochs")
		batch    = flag.Int("batch", 64, "mini-batch size")
		innerLR  = flag.Float64("lr", 0, "inner-loop learning rate α (0 = framework default)")
		outerLR  = flag.Float64("outer-lr", 0, "DN outer-loop learning rate β (0 = default)")
		drLR     = flag.Float64("dr-lr", 0, "DR learning rate γ (0 = default)")
		sampleK  = flag.Int("k", 0, "DR helper-domain sample count (0 = default)")
		embDim   = flag.Int("emb", 8, "embedding dimension")
		seed     = flag.Int64("seed", 1, "random seed")

		metricsAddr   = flag.String("metrics-addr", "", "serve Prometheus /metrics on this address during training (e.g. :9090)")
		metricsLinger = flag.Duration("metrics-linger", 0, "keep /metrics up this long after training (for a final scrape)")
		eventsPath    = flag.String("events", "", "append one JSONL event per epoch to this file")

		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON file of the run (load in Perfetto or chrome://tracing)")
		traceSample = flag.Float64("trace-sample", 1, "fraction of root spans to record (0..1)")
		flightDump  = flag.String("flight-dump", "", "flight-recorder dump path prefix for anomalies (default <trace>.flight when -trace is set)")

		psWorkers = flag.Int("ps-workers", 0, "run distributed PS-Worker training with this many workers (0 = single process; mamdr framework only)")
		psShards  = flag.Int("ps-shards", 4, "parameter-server shard count for -ps-workers")
		psCache   = flag.Bool("ps-cache", true, "enable the PS-Worker embedding cache (§IV-E) for -ps-workers")
		psFaults  = flag.String("ps-faults", "", `fault-injection schedule for -ps-workers chaos runs, e.g. "PushDelta:err@p0.05; PullRows:delay=10ms@*" (seeded by -seed + worker id)`)
		psSync    = flag.Bool("ps-sync-push", false, "apply worker deltas serially per epoch for bit-reproducible distributed runs")

		checkpointDir   = flag.String("checkpoint-dir", "", "write crash-safe epoch-boundary checkpoints into this directory")
		checkpointEvery = flag.Int("checkpoint-every", 1, "checkpoint cadence in epochs (with -checkpoint-dir)")
		resume          = flag.Bool("resume", false, "resume from the last checkpoint in -checkpoint-dir (bit-identical to an uninterrupted run under the same seed)")
	)
	flag.Parse()

	var (
		ds  *mamdr.Dataset
		err error
	)
	if *dataPath != "" {
		ds, err = mamdr.LoadDataset(*dataPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		ds, err = mamdr.GenerateDatasetErr(mamdr.DatasetSpec{Preset: *preset, TotalSamples: *samples, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Tracing: the tracer is built whenever -trace/-flight-dump asks for
	// it, or when /metrics is up (so /debug/trace capture-on-demand
	// works even without a trace file). Training spans flow into the
	// Chrome exporter; the flight recorder dumps the recent span history
	// when an anomaly (NaN loss, loss spike, RPC error) fires.
	var (
		tracer   *trace.Tracer
		exporter *trace.ChromeExporter
	)
	if *tracePath != "" && *flightDump == "" {
		*flightDump = *tracePath + ".flight"
	}
	if *tracePath != "" || *flightDump != "" || *metricsAddr != "" {
		tracer = trace.New(trace.Options{Sample: *traceSample, FlightPath: *flightDump})
		if *tracePath != "" {
			exporter = trace.NewChromeExporter(*tracePath, 0)
			tracer.AddSink(exporter)
		}
	}

	// Observability: a private registry exposed over HTTP plus an
	// append-only JSONL event log. Both are optional and free when off.
	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.New()
		telemetry.RegisterGoRuntime(reg)
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/trace", trace.CaptureHandler(tracer))
		go func() {
			log.Printf("serving /metrics on %s", *metricsAddr)
			srv := &http.Server{Addr: *metricsAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
			if err := srv.ListenAndServe(); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}
	var events *telemetry.EventLog
	if *eventsPath != "" {
		events, err = telemetry.OpenEventLog(*eventsPath)
		if err != nil {
			log.Fatal(err)
		}
		defer events.Close()
	}

	fmt.Printf("dataset %s: %d domains, %d samples\n", ds.Name, ds.NumDomains(), ds.TotalSamples())
	start := time.Now()
	var (
		valAUC, testAUC []float64
	)
	if *psWorkers > 0 {
		fmt.Printf("training %s with distributed mamdr (%d workers, %d shards, cache=%v) for %d epochs...\n",
			*model, *psWorkers, *psShards, *psCache, *epochs)
		valAUC, testAUC = trainDistributed(ds, *model, trainOpts{
			workers: *psWorkers, shards: *psShards, cache: *psCache,
			epochs: *epochs, batch: *batch, innerLR: *innerLR, outerLR: *outerLR,
			drLR: *drLR, sampleK: *sampleK, embDim: *embDim, seed: *seed,
			faults: *psFaults, syncPush: *psSync,
			checkpointDir: *checkpointDir, checkpointEvery: *checkpointEvery, resume: *resume,
		}, reg, events, tracer)
	} else {
		fmt.Printf("training %s with %s for %d epochs...\n", *model, *fw, *epochs)
		res, err := mamdr.Train(mamdr.TrainSpec{
			Dataset:   ds,
			Model:     *model,
			Framework: *fw,
			Epochs:    *epochs,
			BatchSize: *batch,
			InnerLR:   *innerLR,
			OuterLR:   *outerLR,
			DRLR:      *drLR,
			SampleK:   *sampleK,
			EmbDim:    *embDim,
			Seed:      *seed,
			Metrics:   reg,
			Events:    events,
			Tracer:    tracer,

			CheckpointDir:   *checkpointDir,
			CheckpointEvery: *checkpointEvery,
			Resume:          *resume,
		})
		if err != nil {
			log.Fatal(err)
		}
		valAUC, testAUC = res.ValAUC, res.TestAUC
	}
	fmt.Printf("trained in %s\n\n", time.Since(start).Round(time.Millisecond))

	if exporter != nil {
		if err := exporter.Close(); err != nil {
			log.Printf("trace: %v", err)
		} else {
			log.Printf("trace: wrote %s", *tracePath)
		}
	}
	if tracer != nil {
		for _, d := range tracer.Flight().Dumps() {
			log.Printf("trace: flight-recorder dump (%s): %s", d.Kind, d.Path)
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Domain\tSamples\tVal AUC\tTest AUC")
	for d, dom := range ds.Domains {
		fmt.Fprintf(w, "%s\t%d\t%.4f\t%.4f\n", dom.Name, dom.Samples(), valAUC[d], testAUC[d])
	}
	fmt.Fprintf(w, "MEAN\t\t%.4f\t%.4f\n", metrics.Mean(valAUC), metrics.Mean(testAUC))
	w.Flush()

	if *metricsAddr != "" && *metricsLinger > 0 {
		log.Printf("holding /metrics open for %s", *metricsLinger)
		time.Sleep(*metricsLinger)
	}
}

type trainOpts struct {
	workers, shards        int
	cache                  bool
	epochs, batch          int
	innerLR, outerLR, drLR float64
	sampleK, embDim        int
	seed                   int64

	faults          string // faultinject schedule applied to every worker's store
	syncPush        bool
	checkpointDir   string
	checkpointEvery int
	resume          bool
}

// trainDistributed runs the PS-Worker trainer (the paper's industrial
// deployment shape) with full telemetry: PS traffic, cache hit ratio,
// row staleness, the per-domain training series from every worker, and
// (with a tracer) one trace per worker epoch plus anomaly watching.
func trainDistributed(ds *mamdr.Dataset, model string, o trainOpts, reg *telemetry.Registry, events *telemetry.EventLog, tracer *trace.Tracer) (val, test []float64) {
	replica := func() models.Model {
		return models.MustNew(model, models.Config{Dataset: ds, EmbDim: o.embDim, Seed: o.seed})
	}
	var (
		psm *ps.Metrics
		tm  *framework.TrainMetrics
	)
	if reg != nil {
		psm = ps.NewMetrics(reg)
	}
	if reg != nil || events != nil || tracer != nil {
		tm = framework.NewTrainMetrics(reg, ds, events)
	}
	if tracer != nil {
		if f := tracer.Flight(); f != nil {
			tm.Anomalies = telemetry.NewLossWatch(f, 0, 0)
		}
	}
	opts := ps.Options{
		Workers: o.workers, Shards: o.shards, CacheEnabled: o.cache,
		Epochs: o.epochs, BatchSize: o.batch,
		InnerLR: o.innerLR, OuterLR: o.outerLR,
		UseDR: true, SampleK: o.sampleK, DRLR: o.drLR,
		Seed: o.seed, Metrics: psm, Telemetry: tm, Tracer: tracer,
		SyncPush:         o.syncPush,
		HeartbeatTimeout: 30 * time.Second,
	}
	if o.checkpointDir != "" {
		if err := os.MkdirAll(o.checkpointDir, 0o755); err != nil {
			log.Fatal(err)
		}
		opts.CheckpointPath = filepath.Join(o.checkpointDir, "ps.ckpt")
		opts.CheckpointEvery = o.checkpointEvery
		opts.Resume = o.resume
	}
	var res *ps.Result
	if o.faults == "" {
		res = ps.Train(replica, ds, opts)
	} else {
		// Chaos mode: the PS serves over a real loopback RPC socket and
		// every worker talks through its own client armed with a seeded
		// fault injector, so the injected errors, delays, and connection
		// drops hit the retry/idempotency machinery exactly like network
		// faults would. Deterministic under a fixed -seed.
		res = trainChaos(ds, replica, o, opts, reg)
	}
	c := res.Counters
	log.Printf("PS traffic: %d dense pulls, %d dense pushes, %d row pulls, %d row pushes, %d floats moved",
		c.DensePulls, c.DensePushes, c.RowPulls, c.RowPushes, c.FloatsMoved)
	if res.ResumedFrom > 0 {
		log.Printf("resumed from checkpoint at epoch %d", res.ResumedFrom)
	}
	if res.WorkerDeaths > 0 {
		log.Printf("supervision: %d worker death(s); domains redistributed to survivors", res.WorkerDeaths)
	}
	return framework.EvaluateAUC(res.State, ds, data.Val), framework.EvaluateAUC(res.State, ds, data.Test)
}

// trainChaos runs the distributed trainer against a loopback RPC
// parameter server with per-worker fault injection — the CI chaos smoke
// and local failure-drill entry point.
func trainChaos(ds *mamdr.Dataset, replica func() models.Model, o trainOpts, opts ps.Options, reg *telemetry.Registry) *ps.Result {
	filled := opts.WithDefaults()
	serving := replica()
	server := ps.NewServer(serving.Parameters(), models.EmbeddingTablesOf(serving), filled.Shards, filled.OuterOpt, filled.OuterLR)
	server.SetMetrics(opts.Metrics)
	server.SetTracer(opts.Tracer)
	if opts.CheckpointPath != "" {
		server.SetCheckpointPath(opts.CheckpointPath)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lis.Close()
	go ps.Serve(server, lis)

	base, err := ps.Dial(lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer base.Close()

	var injectors []*faultinject.Injector
	opts.WrapStore = func(workerID int, _ ps.Store) ps.Store {
		cl, err := ps.Dial(lis.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		cl.SetBackoff(ps.Backoff{Seed: o.seed + int64(workerID)})
		inj := faultinject.MustParse(o.faults, o.seed+int64(workerID))
		inj.BindMetrics(reg)
		cl.SetInjector(inj)
		injectors = append(injectors, inj)
		return cl
	}
	log.Printf("chaos: PS on %s, fault schedule %q", lis.Addr(), o.faults)
	res := ps.TrainWithStore(replica, serving, base, base, ds, opts)
	var injected int64
	for _, inj := range injectors {
		for _, n := range inj.Counts() {
			injected += n
		}
	}
	log.Printf("chaos: %d faults injected", injected)
	return res
}
