// Command mamdr-train trains any (model, framework) combination on a
// benchmark dataset and reports per-domain AUC.
//
// Usage:
//
//	mamdr-train -preset taobao-10 -model mlp -framework mamdr -epochs 15
//	mamdr-train -data my_dataset.json -model star -framework alternate
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"mamdr"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mamdr-train: ")

	var (
		preset   = flag.String("preset", "taobao-10", "benchmark preset (ignored when -data is set)")
		dataPath = flag.String("data", "", "path to a dataset JSON written by datagen")
		samples  = flag.Int("samples", 10000, "dataset scale when generating a preset")
		model    = flag.String("model", "mlp", "model structure: "+strings.Join(mamdr.ModelNames(), ", "))
		fw       = flag.String("framework", "mamdr", "learning framework: "+strings.Join(mamdr.FrameworkNames(), ", "))
		epochs   = flag.Int("epochs", 15, "training epochs")
		batch    = flag.Int("batch", 64, "mini-batch size")
		innerLR  = flag.Float64("lr", 0, "inner-loop learning rate α (0 = framework default)")
		outerLR  = flag.Float64("outer-lr", 0, "DN outer-loop learning rate β (0 = default)")
		drLR     = flag.Float64("dr-lr", 0, "DR learning rate γ (0 = default)")
		sampleK  = flag.Int("k", 0, "DR helper-domain sample count (0 = default)")
		embDim   = flag.Int("emb", 8, "embedding dimension")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var (
		ds  *mamdr.Dataset
		err error
	)
	if *dataPath != "" {
		ds, err = mamdr.LoadDataset(*dataPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		ds, err = mamdr.GenerateDatasetErr(mamdr.DatasetSpec{Preset: *preset, TotalSamples: *samples, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("dataset %s: %d domains, %d samples\n", ds.Name, ds.NumDomains(), ds.TotalSamples())
	fmt.Printf("training %s with %s for %d epochs...\n", *model, *fw, *epochs)
	start := time.Now()
	res, err := mamdr.Train(mamdr.TrainSpec{
		Dataset:   ds,
		Model:     *model,
		Framework: *fw,
		Epochs:    *epochs,
		BatchSize: *batch,
		InnerLR:   *innerLR,
		OuterLR:   *outerLR,
		DRLR:      *drLR,
		SampleK:   *sampleK,
		EmbDim:    *embDim,
		Seed:      *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %s\n\n", time.Since(start).Round(time.Millisecond))

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Domain\tSamples\tVal AUC\tTest AUC")
	for d, dom := range ds.Domains {
		fmt.Fprintf(w, "%s\t%d\t%.4f\t%.4f\n", dom.Name, dom.Samples(), res.ValAUC[d], res.TestAUC[d])
	}
	fmt.Fprintf(w, "MEAN\t\t%.4f\t%.4f\n", res.MeanValAUC, res.MeanTestAUC)
	w.Flush()
}
