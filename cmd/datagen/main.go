// Command datagen generates the synthetic MDR benchmark datasets and
// prints their statistics tables (the equivalents of the paper's Tables
// I-IV for the generated data).
//
// Usage:
//
//	datagen -preset taobao-10 -samples 20000 -seed 7 -out taobao10.json
//	datagen -preset amazon-6 -format csv -out ./amazon6/
//	datagen -preset amazon-6 -imbalance 1.15 -out skewed.json   # Zipf-skewed domain sizes
//	datagen -stats -samples 20000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"mamdr/internal/data"
	"mamdr/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var (
		preset  = flag.String("preset", "taobao-10", "benchmark preset: amazon-6, amazon-13, taobao-10, taobao-20, taobao-30, taobao-online")
		samples = flag.Int("samples", 20000, "total interaction budget for the dataset")
		seed    = flag.Int64("seed", 1, "generation seed")
		out     = flag.String("out", "", "output path (.json file or directory for -format csv)")
		format  = flag.String("format", "json", "output format: json or csv")
		stats   = flag.Bool("stats", false, "print Table I-IV style statistics for all presets and exit")
		// -imbalance 1.15 on a uniform 6-domain preset approximates the
		// real Amazon-6 head/tail sample ratio (~7.8x, Table II).
		imbalance = flag.Float64("imbalance", 0, "Zipf exponent s > 0: re-skew the preset's sample budget so domain sizes follow 1/rank^s (0 = keep the preset's profile)")
	)
	flag.Parse()

	if *stats {
		printStats(*samples, *seed)
		return
	}

	presets := synth.Presets(*samples, *seed)
	cfg, ok := presets[*preset]
	if !ok {
		log.Fatalf("unknown preset %q (have %s)", *preset, strings.Join(presetNames(presets), ", "))
	}
	if *imbalance > 0 {
		cfg = synth.WithZipfImbalance(cfg, *imbalance)
	}
	ds := synth.Generate(cfg)
	if err := ds.Validate(); err != nil {
		log.Fatalf("generated dataset failed validation: %v", err)
	}
	if *out == "" {
		log.Fatal("missing -out path (or use -stats)")
	}
	switch *format {
	case "json":
		if err := data.SaveJSON(ds, *out); err != nil {
			log.Fatal(err)
		}
	case "csv":
		if err := data.SaveCSV(ds, *out); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown format %q (json or csv)", *format)
	}
	o := ds.Overall()
	fmt.Printf("wrote %s: %d domains, %d users, %d items, %d/%d/%d train/val/test\n",
		*out, o.NumDomains, o.NumUsers, o.NumItems, o.TrainSamples, o.ValSamples, o.TestSamples)
}

func presetNames(m map[string]synth.Config) []string {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	return names
}

func printStats(samples int, seed int64) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Dataset\t#Domain\t#User\t#Item\t#Train\t#Val\t#Test\tSample/Domain")
	order := []string{"amazon-6", "amazon-13", "taobao-10", "taobao-20", "taobao-30", "taobao-online"}
	presets := synth.Presets(samples, seed)
	var generated []*data.Dataset
	for _, name := range order {
		ds := synth.Generate(presets[name])
		generated = append(generated, ds)
		o := ds.Overall()
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			o.Name, o.NumDomains, o.NumUsers, o.NumItems,
			o.TrainSamples, o.ValSamples, o.TestSamples, o.SamplesPerDomain)
	}
	w.Flush()

	for _, ds := range generated {
		if ds.Name == "Taobao-online" {
			continue // 20+ rows of Zipf tail add little
		}
		fmt.Printf("\n%s per-domain statistics:\n", ds.Name)
		dw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(dw, "Domain\t#Samples\tPercentage\tCTR Ratio")
		for _, st := range ds.Stats() {
			fmt.Fprintf(dw, "%s\t%d\t%.2f%%\t%.2f\n", st.Name, st.Samples, st.Percentage, st.CTRRatio)
		}
		dw.Flush()
	}
}
