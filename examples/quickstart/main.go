// Quickstart: generate a Taobao-10 benchmark equivalent, train an MLP
// with the MAMDR framework (Domain Negotiation + Domain Regularization),
// and report per-domain AUC against plain alternate training.
package main

import (
	"fmt"
	"log"

	"mamdr"
)

func main() {
	log.SetFlags(0)

	// 1. A multi-domain dataset: 10 Taobao theme domains with the
	// paper's imbalance profile and CTR ratios, at laptop scale.
	ds := mamdr.GenerateDataset(mamdr.DatasetSpec{
		Preset:       "taobao-10",
		TotalSamples: 8000,
		Seed:         7,
	})
	fmt.Printf("dataset %s: %d domains, %d users, %d items, %d interactions\n\n",
		ds.Name, ds.NumDomains(), ds.NumUsers, ds.NumItems, ds.TotalSamples())

	// 2. Train the same MLP structure two ways.
	baseline, err := mamdr.Train(mamdr.TrainSpec{
		Dataset: ds, Model: "mlp", Framework: "alternate",
		Epochs: 12, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	ours, err := mamdr.Train(mamdr.TrainSpec{
		Dataset: ds, Model: "mlp", Framework: "mamdr",
		Epochs: 12, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compare per-domain test AUC.
	fmt.Println("domain                test AUC: alternate -> MAMDR")
	for d, dom := range ds.Domains {
		marker := ""
		if ours.TestAUC[d] > baseline.TestAUC[d] {
			marker = "  (+)"
		}
		fmt.Printf("%-20s  %.4f -> %.4f%s\n", dom.Name, baseline.TestAUC[d], ours.TestAUC[d], marker)
	}
	fmt.Printf("\nMEAN                  %.4f -> %.4f\n", baseline.MeanTestAUC, ours.MeanTestAUC)
}
