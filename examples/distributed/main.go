// This example runs the paper's PS-Worker architecture (Section IV-E)
// over real TCP sockets: parameter-server shards serve slices of the
// model via net/rpc, workers in this process train Domain Negotiation
// inner loops against them through a scatter-gather router, and the
// embedding static/dynamic cache's effect on synchronization traffic is
// measured — the production concern the paper's cache design addresses.
//
// Modes:
//
//	distributed                         # self-host 1 PS over loopback (the default)
//	distributed -shards 3               # self-host a 3-shard PS cluster over loopback
//	distributed -serve 127.0.0.1:7001,127.0.0.1:7002     # host the shard servers and block
//	distributed -ps-addrs 127.0.0.1:7001,127.0.0.1:7002  # train against those servers
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strings"

	"mamdr/internal/cluster"
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/ps"
	"mamdr/internal/synth"
)

func main() {
	log.SetFlags(0)
	var (
		shards  = flag.Int("shards", 1, "self-host this many parameter-server shards over loopback TCP")
		serve   = flag.String("serve", "", "host the shard servers on these comma-separated addresses and block (replicas of one shard joined with '|')")
		psAddrs = flag.String("ps-addrs", "", "train against already-running shard servers at these comma-separated addresses instead of self-hosting")
		workers = flag.Int("workers", 4, "worker count")
		epochs  = flag.Int("epochs", 10, "training epochs")
	)
	flag.Parse()

	ds := synth.Generate(synth.Amazon6(8000, 19))
	replica := func() models.Model {
		return models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 8, Hidden: []int{32, 16}, Seed: 5})
	}
	serving := replica()
	tables := models.EmbeddingTablesOf(serving)
	layout := ps.LayoutOf(serving.Parameters(), tables)

	// Serve mode: this process hosts the shard servers, a training
	// process connects with -ps-addrs. Both derive the same partition
	// plan from the shared model config, so the slices line up.
	if *serve != "" {
		groups := parseAddrs(*serve)
		plan := ps.NewPlan(layout, len(groups), 7)
		servers := cluster.Shards(serving.Parameters(), plan, cluster.ShardOptions{Replicas: len(groups[0])})
		log.Printf("serving %s", plan.String())
		for sh, g := range groups {
			for rep, addr := range g {
				lis, err := net.Listen("tcp", addr)
				if err != nil {
					log.Fatal(err)
				}
				log.Printf("shard %d replica %d on %s (%d elements)", sh, rep, lis.Addr(), plan.Elements(sh))
				go ps.Serve(servers[sh][rep], lis)
			}
		}
		select {}
	}

	opts := func(cache bool) ps.Options {
		return ps.Options{Workers: *workers, Epochs: *epochs, Seed: 9, CacheEnabled: cache, UseDR: true}
	}

	// Remote mode: dial an already-running cluster and do one cached
	// training run against it. (No cache on/off comparison here — the
	// remote servers keep their trained state, so a second run would not
	// start from the same parameters.)
	if *psAddrs != "" {
		groups := parseAddrs(*psAddrs)
		plan := ps.NewPlan(layout, len(groups), 7)
		router, err := cluster.Dial(plan, groups, nil, cluster.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("training %d workers against %d remote PS shard(s)...\n", *workers, len(groups))
		res := ps.TrainWithStore(replica, serving, router, router, ds, opts(true))
		c := res.Counters
		fmt.Printf("\nmean test AUC %.4f\n", framework.MeanAUC(res.State, ds, data.Test))
		fmt.Printf("traffic: %d floats, %d row pulls, %d pushes\n", c.FloatsMoved, c.RowPulls, c.DensePushes)
		return
	}

	// Self-host mode: each run gets a fresh shard cluster over loopback
	// TCP, so the cache on/off comparison starts from identical state.
	plan := ps.NewPlan(layout, *shards, 7)
	run := func(cache bool) (float64, ps.Counters) {
		servers := cluster.Shards(replica().Parameters(), plan, cluster.ShardOptions{OuterOpt: "sgd", OuterLR: 0.5})
		addrs, closeAll, err := cluster.ServeTCP(servers)
		if err != nil {
			log.Fatal(err)
		}
		defer closeAll()
		router, err := cluster.Dial(plan, addrs, nil, cluster.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res := ps.TrainWithStore(replica, replica(), router, router, ds, opts(cache))
		return framework.MeanAUC(res.State, ds, data.Test), res.Counters
	}

	fmt.Printf("training %d workers against %d PS shard(s) over TCP (net/rpc, %s)...\n",
		*workers, *shards, plan.String())
	aucOn, cOn := run(true)
	fmt.Printf("\nwith embedding cache:    mean test AUC %.4f\n", aucOn)
	fmt.Printf("  traffic: %d floats, %d row pulls, %d pushes\n", cOn.FloatsMoved, cOn.RowPulls, cOn.DensePushes)

	aucOff, cOff := run(false)
	fmt.Printf("\nwithout embedding cache: mean test AUC %.4f\n", aucOff)
	fmt.Printf("  traffic: %d floats, %d row pulls, %d pushes\n", cOff.FloatsMoved, cOff.RowPulls, cOff.DensePushes)

	fmt.Printf("\nthe static/dynamic cache cuts synchronization traffic by %.1fx\n",
		float64(cOff.FloatsMoved)/float64(cOn.FloatsMoved))
	fmt.Println("while querying the latest embeddings from the PS on miss bounds staleness.")
}

// parseAddrs splits "a,b,c" into per-shard address groups; replicas of
// one shard are joined with '|'.
func parseAddrs(s string) [][]string {
	var out [][]string
	for _, shard := range strings.Split(s, ",") {
		var reps []string
		for _, a := range strings.Split(shard, "|") {
			if a = strings.TrimSpace(a); a != "" {
				reps = append(reps, a)
			}
		}
		if len(reps) > 0 {
			out = append(out, reps)
		}
	}
	if len(out) == 0 {
		log.Fatal("no addresses given")
	}
	return out
}
