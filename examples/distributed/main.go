// This example runs the paper's PS-Worker architecture (Section IV-E)
// over a real TCP socket: a parameter server serves the model via
// net/rpc, workers in this process train Domain Negotiation inner loops
// against it, and the embedding static/dynamic cache's effect on
// synchronization traffic is measured — the production concern the
// paper's cache design addresses.
package main

import (
	"fmt"
	"log"
	"net"

	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/ps"
	"mamdr/internal/synth"
)

func main() {
	log.SetFlags(0)

	ds := synth.Generate(synth.Amazon6(8000, 19))
	replica := func() models.Model {
		return models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 8, Hidden: []int{32, 16}, Seed: 5})
	}

	run := func(cache bool) (float64, ps.Counters) {
		serving := replica()
		server := ps.NewServer(serving.Parameters(), models.EmbeddingTablesOf(serving), 4, "sgd", 0.5)

		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer lis.Close()
		go ps.Serve(server, lis)

		client, err := ps.Dial(lis.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()

		res := ps.TrainWithStore(replica, serving, client, client, ds, ps.Options{
			Workers: 4, Epochs: 10, Seed: 9, CacheEnabled: cache, UseDR: true,
		})
		return framework.MeanAUC(res.State, ds, data.Test), res.Counters
	}

	fmt.Println("training 4 workers against a parameter server over TCP (net/rpc)...")
	aucOn, cOn := run(true)
	fmt.Printf("\nwith embedding cache:    mean test AUC %.4f\n", aucOn)
	fmt.Printf("  traffic: %d floats, %d row pulls, %d pushes\n", cOn.FloatsMoved, cOn.RowPulls, cOn.DensePushes)

	aucOff, cOff := run(false)
	fmt.Printf("\nwithout embedding cache: mean test AUC %.4f\n", aucOff)
	fmt.Printf("  traffic: %d floats, %d row pulls, %d pushes\n", cOff.FloatsMoved, cOff.RowPulls, cOff.DensePushes)

	fmt.Printf("\nthe static/dynamic cache cuts synchronization traffic by %.1fx\n",
		float64(cOff.FloatsMoved)/float64(cOn.FloatsMoved))
	fmt.Println("while querying the latest embeddings from the PS on miss bounds staleness.")
}
