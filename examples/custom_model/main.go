// This example demonstrates MAMDR's model agnosticism — the property the
// paper's title claims. We define a brand-new model structure the
// repository has never seen (a tiny factorization-style two-tower model)
// and hand it to the MAMDR framework unchanged: the framework only uses
// Forward and Parameters, so anything satisfying the Model interface
// trains with DN+DR.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/nn"
	"mamdr/internal/synth"

	_ "mamdr/internal/core" // registers the dn/dr/mamdr frameworks
)

// TwoTower is a user-tower / item-tower dot-product model: each side
// embeds its id and projects it through a small dense layer; the logit
// is the inner product of the two tower outputs plus a bias.
type TwoTower struct {
	userEmb, itemEmb   *nn.Embedding
	userProj, itemProj *nn.Dense
	bias               *autograd.Tensor
}

// NewTwoTower builds the model for the dataset's user/item vocabularies.
func NewTwoTower(numUsers, numItems, dim int, seed int64) *TwoTower {
	rng := rand.New(rand.NewSource(seed))
	return &TwoTower{
		userEmb:  nn.NewEmbedding(numUsers, dim, 0.05, rng),
		itemEmb:  nn.NewEmbedding(numItems, dim, 0.05, rng),
		userProj: nn.NewDense(dim, dim, nn.Tanh, rng),
		itemProj: nn.NewDense(dim, dim, nn.Tanh, rng),
		bias:     autograd.ParamZeros(1, 1),
	}
}

// Forward implements models.Model.
func (m *TwoTower) Forward(b *data.Batch, training bool) *autograd.Tensor {
	u := m.userProj.Forward(m.userEmb.Lookup(b.Users))
	v := m.itemProj.Forward(m.itemEmb.Lookup(b.Items))
	dot := autograd.RowDot(u, v)
	n := len(b.Labels)
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	return autograd.Add(dot, autograd.MatMul(autograd.New(n, 1, ones), m.bias))
}

// Parameters implements models.Model.
func (m *TwoTower) Parameters() []*autograd.Tensor {
	ps := m.userEmb.Parameters()
	ps = append(ps, m.itemEmb.Parameters()...)
	ps = append(ps, m.userProj.Parameters()...)
	ps = append(ps, m.itemProj.Parameters()...)
	return append(ps, m.bias)
}

// Name implements models.Model.
func (m *TwoTower) Name() string { return "TwoTower (custom)" }

func main() {
	log.SetFlags(0)
	ds := synth.Generate(synth.Taobao10(6000, 13))
	// The two-tower model reads raw user/item ids, so it works with any
	// feature regime; drop the frozen features to exercise id towers.
	ds.FixedUserVecs, ds.FixedItemVecs = nil, nil

	cfg := framework.Config{Epochs: 10, Seed: 5}

	model := NewTwoTower(ds.NumUsers, ds.NumItems, 8, 5)
	fmt.Printf("custom structure %q: %d parameter tensors\n", model.Name(), len(model.Parameters()))

	alt := framework.MustNew("alternate").Fit(NewTwoTower(ds.NumUsers, ds.NumItems, 8, 5), ds, cfg)
	ours := framework.MustNew("mamdr").Fit(model, ds, cfg)

	fmt.Printf("alternate:  mean test AUC %.4f\n", framework.MeanAUC(alt, ds, data.Test))
	fmt.Printf("MAMDR:      mean test AUC %.4f\n", framework.MeanAUC(ours, ds, data.Test))
	fmt.Println("\nNo framework code changed: MAMDR saw only Forward and Parameters.")
}
