// This example recreates the paper's motivating scenario: a platform
// running themed recommendation domains — "what to take when traveling",
// "how to dress up yourself for a party", and "things to prepare when a
// baby is coming" — where the baby domain is newly launched and has very
// little data.
//
// It shows the failure mode MAMDR targets: a separately-trained model
// overfits the sparse domain, alternate training compromises across
// conflicting domains, and MAMDR's Domain Regularization lets the sparse
// domain borrow strength from its siblings without losing its identity.
package main

import (
	"fmt"
	"log"

	"mamdr"
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/synth"
)

func main() {
	log.SetFlags(0)

	// Three themed domains sharing one user/item pool; the baby domain
	// has 20x less data. ConflictStrength models the different
	// purchasing patterns each theme's promotions induce.
	ds := synth.Generate(synth.Config{
		Name:             "taobao-themes",
		Seed:             11,
		ConflictStrength: 1.0,
		Domains: []synth.DomainSpec{
			{Name: "travel", Samples: 4000, CTRRatio: 0.30},
			{Name: "party", Samples: 3000, CTRRatio: 0.40},
			{Name: "baby", Samples: 180, CTRRatio: 0.25},
		},
	})
	if err := ds.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d domains (baby has only %d samples)\n\n",
		ds.Name, ds.NumDomains(), ds.Domains[2].Samples())

	run := func(fw string) *mamdr.Result {
		res, err := mamdr.Train(mamdr.TrainSpec{
			Dataset: ds, Model: "mlp", Framework: fw,
			Epochs: 12, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	separate := run("separate") // one model per domain, Figure 1(b)
	alternate := run("alternate")
	ours := run("mamdr")

	fmt.Println("test AUC            travel   party    baby")
	print3 := func(name string, r *mamdr.Result) {
		fmt.Printf("%-18s  %.4f   %.4f   %.4f\n", name, r.TestAUC[0], r.TestAUC[1], r.TestAUC[2])
	}
	print3("separate", separate)
	print3("alternate", alternate)
	print3("MAMDR", ours)

	fmt.Println("\nThe sparse baby domain is where Domain Regularization earns its")
	fmt.Println("keep: separate training overfits it, MAMDR transfers only the")
	fmt.Println("helpful signal from travel/party (Algorithm 2's fixed order).")

	// Adding a new domain at serving time only requires a fresh specific
	// parameter vector — demonstrate the platform property via the
	// trained state's API.
	if st, ok := ours.Predictor.(interface{ AddDomain() int }); ok {
		id := st.AddDomain()
		fmt.Printf("\nregistered a new domain at runtime: id=%d (serves with shared params until trained)\n", id)
	}

	// The state still predicts for existing domains after the addition.
	b := ds.FullBatch(2, data.Val)
	probs := ours.Predictor.Predict(b)
	fmt.Printf("baby domain val predictions still served: %d scores, first=%.3f\n", len(probs), probs[0])

	_ = framework.Keys // keep the import for the doc pointer below
}
