module mamdr

go 1.22
