package mamdr

// End-to-end integration tests across modules: data generation ->
// serialization -> training (multiple models x frameworks) -> per-domain
// serving -> runtime domain registration -> distributed parity.

import (
	"math"
	"path/filepath"
	"testing"

	"mamdr/internal/core"
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/metrics"
	"mamdr/internal/models"
	"mamdr/internal/ps"
	"mamdr/internal/synth"
)

func TestPipelineGenerateSaveLoadTrainServe(t *testing.T) {
	// 1. Generate and persist.
	ds := GenerateDataset(DatasetSpec{Preset: "amazon-6", TotalSamples: 3000, Seed: 11})
	path := filepath.Join(t.TempDir(), "amazon6.json")
	if err := SaveDataset(ds, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Train on the loaded copy.
	res, err := Train(TrainSpec{
		Dataset: loaded, Model: "deepfm", Framework: "mamdr",
		Epochs: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 3. Serve every domain; scores must be valid probabilities and not
	// all identical (the model must discriminate).
	for d := range loaded.Domains {
		b := loaded.FullBatch(d, data.Test)
		probs := res.Predictor.Predict(b)
		var minP, maxP = 1.0, 0.0
		for _, p := range probs {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("domain %d: invalid probability %g", d, p)
			}
			minP = math.Min(minP, p)
			maxP = math.Max(maxP, p)
		}
		if maxP-minP < 1e-6 {
			t.Fatalf("domain %d: constant predictions", d)
		}
	}

	// 4. Register a new domain at runtime (the MDR platform property).
	st, ok := res.Predictor.(*core.State)
	if !ok {
		t.Fatalf("mamdr predictor is %T, want *core.State", res.Predictor)
	}
	newID := st.AddDomain()
	if newID != loaded.NumDomains() {
		t.Fatalf("new domain id = %d, want %d", newID, loaded.NumDomains())
	}
	// The fresh domain serves with pure shared parameters.
	b := loaded.FullBatch(0, data.Test)
	bNew := *b
	bNew.Domain = newID
	probs := st.Predict(&bNew)
	if len(probs) != b.Size() {
		t.Fatal("new domain cannot serve")
	}
}

// TestEveryModelTrainsUnderMAMDR crosses all 11 model structures with
// the MAMDR framework on a small dataset — the model-agnosticism claim
// as a test.
func TestEveryModelTrainsUnderMAMDR(t *testing.T) {
	ds := GenerateDataset(DatasetSpec{Preset: "taobao-10", TotalSamples: 1500, Seed: 11})
	for _, name := range ModelNames() {
		res, err := Train(TrainSpec{
			Dataset: ds, Model: name, Framework: "mamdr",
			Epochs: 1, Seed: 5,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.IsNaN(res.MeanTestAUC) {
			t.Fatalf("%s: NaN AUC", name)
		}
	}
}

// TestEveryFrameworkTrainsEveryRegime crosses all frameworks with both
// feature regimes (learned Amazon embeddings, frozen Taobao features).
func TestEveryFrameworkTrainsEveryRegime(t *testing.T) {
	for _, preset := range []string{"amazon-6", "taobao-10"} {
		ds := GenerateDataset(DatasetSpec{Preset: preset, TotalSamples: 1200, Seed: 11})
		for _, fw := range FrameworkNames() {
			res, err := Train(TrainSpec{
				Dataset: ds, Model: "mlp", Framework: fw,
				Epochs: 1, Seed: 5,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", preset, fw, err)
			}
			if math.IsNaN(res.MeanTestAUC) {
				t.Fatalf("%s/%s: NaN AUC", preset, fw)
			}
		}
	}
}

// TestDistributedMatchesLocalQuality verifies single-worker PS training
// reaches quality comparable to the in-process DN trainer on the same
// data (the distributed implementation is the same algorithm behind a
// store interface).
func TestDistributedMatchesLocalQuality(t *testing.T) {
	cfg := synth.Taobao10(4000, 11)
	cfg.FixedFeatures = false // exercise the embedding sync path
	ds := synth.Generate(cfg)

	local := models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 4, Hidden: []int{16, 8}, Seed: 5})
	localPred := framework.MustNew("dn").Fit(local, ds, framework.Config{
		Epochs: 10, Seed: 9, InnerOpt: "sgd", LR: 0.1, OuterLR: 0.5, OuterOpt: "sgd",
	})
	localAUC := framework.MeanAUC(localPred, ds, data.Test)

	res := ps.Train(func() models.Model {
		return models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 4, Hidden: []int{16, 8}, Seed: 5})
	}, ds, ps.Options{Workers: 1, Epochs: 10, Seed: 9, CacheEnabled: true})
	distAUC := framework.MeanAUC(res.State, ds, data.Test)

	t.Logf("local DN AUC = %.4f, distributed DN AUC = %.4f", localAUC, distAUC)
	if math.Abs(localAUC-distAUC) > 0.08 {
		t.Fatalf("distributed quality diverges from local: %.4f vs %.4f", distAUC, localAUC)
	}
	if distAUC < 0.53 {
		t.Fatalf("distributed training too weak: %.4f", distAUC)
	}
}

// TestRankMetricAcrossRealRun sanity-checks the Table V RANK aggregation
// on genuine training output: ranks must average to (m+1)/2 across
// methods.
func TestRankMetricAcrossRealRun(t *testing.T) {
	ds := GenerateDataset(DatasetSpec{Preset: "taobao-10", TotalSamples: 1500, Seed: 11})
	perMethod := map[string][]float64{}
	for _, fw := range []string{"alternate", "finetune", "mamdr"} {
		res, err := Train(TrainSpec{Dataset: ds, Model: "mlp", Framework: fw, Epochs: 2, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		perMethod[fw] = res.TestAUC
	}
	ranks := metrics.RankAmong(perMethod)
	var sum float64
	for _, r := range ranks {
		if r < 1 || r > 3 {
			t.Fatalf("rank %g out of [1,3]", r)
		}
		sum += r
	}
	if math.Abs(sum-6) > 1e-9 { // 1+2+3
		t.Fatalf("ranks sum to %g, want 6", sum)
	}
}
