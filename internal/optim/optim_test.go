package optim

import (
	"math"
	"math/rand"
	"testing"

	"mamdr/internal/autograd"
)

// quadratic builds loss = sum((x - target)^2); its minimum is x=target.
func quadratic(x *autograd.Tensor, target []float64) *autograd.Tensor {
	tt := autograd.New(x.Rows, x.Cols, append([]float64(nil), target...))
	return autograd.Sum(autograd.Square(autograd.Sub(x, tt)))
}

func converges(t *testing.T, opt Optimizer, steps int, tol float64) {
	t.Helper()
	x := autograd.Param(1, 3, []float64{5, -4, 2})
	target := []float64{1, 2, -3}
	for s := 0; s < steps; s++ {
		x.ZeroGrad()
		quadratic(x, target).Backward()
		opt.Step([]*autograd.Tensor{x})
	}
	for i, w := range target {
		if math.Abs(x.Data[i]-w) > tol {
			t.Fatalf("entry %d: got %g, want %g", i, x.Data[i], w)
		}
	}
}

func TestSGDConverges(t *testing.T)         { converges(t, NewSGD(0.1), 200, 1e-6) }
func TestSGDMomentumConverges(t *testing.T) { converges(t, NewSGDMomentum(0.05, 0.9), 300, 1e-4) }
func TestAdamConverges(t *testing.T)        { converges(t, NewAdam(0.1), 600, 1e-3) }
func TestAdagradConverges(t *testing.T)     { converges(t, NewAdagrad(1.0), 500, 1e-3) }

func TestSGDSingleStepExactUpdate(t *testing.T) {
	x := autograd.Param(1, 2, []float64{1, 2})
	x.Grad[0], x.Grad[1] = 0.5, -1
	NewSGD(0.1).Step([]*autograd.Tensor{x})
	if math.Abs(x.Data[0]-0.95) > 1e-12 || math.Abs(x.Data[1]-2.1) > 1e-12 {
		t.Fatalf("SGD step produced %v", x.Data)
	}
}

func TestOptimizerSkipsNilGrad(t *testing.T) {
	x := autograd.New(1, 2, []float64{1, 2}) // no grad buffer
	for _, opt := range []Optimizer{NewSGD(0.1), NewAdam(0.1), NewAdagrad(0.1)} {
		opt.Step([]*autograd.Tensor{x})
		if x.Data[0] != 1 || x.Data[1] != 2 {
			t.Fatal("optimizer modified a gradient-free tensor")
		}
	}
}

func TestSetLR(t *testing.T) {
	for _, opt := range []Optimizer{NewSGD(0.1), NewAdam(0.1), NewAdagrad(0.1)} {
		opt.SetLR(0.42)
		if opt.LR() != 0.42 {
			t.Fatalf("%T LR = %g, want 0.42", opt, opt.LR())
		}
	}
}

func TestAdamBiasCorrectionFirstStep(t *testing.T) {
	// With bias correction, the very first Adam step has magnitude ~lr
	// regardless of gradient scale.
	x := autograd.Param(1, 1, []float64{0})
	x.Grad[0] = 1e-4
	a := NewAdam(0.01)
	a.Step([]*autograd.Tensor{x})
	if math.Abs(math.Abs(x.Data[0])-0.01) > 1e-3 {
		t.Fatalf("first Adam step = %g, want ~0.01", x.Data[0])
	}
}

func TestAdagradMonotonicallyShrinksSteps(t *testing.T) {
	x := autograd.Param(1, 1, []float64{0})
	a := NewAdagrad(1.0)
	var prevStep float64 = math.Inf(1)
	for i := 0; i < 5; i++ {
		before := x.Data[0]
		x.ZeroGrad()
		x.Grad[0] = 1
		a.Step([]*autograd.Tensor{x})
		step := math.Abs(x.Data[0] - before)
		if step > prevStep+1e-12 {
			t.Fatalf("step %d grew: %g > %g", i, step, prevStep)
		}
		prevStep = step
	}
}

func TestResetClearsState(t *testing.T) {
	x := autograd.Param(1, 1, []float64{0})
	a := NewAdam(0.1)
	x.Grad[0] = 1
	a.Step([]*autograd.Tensor{x})
	a.Reset()
	if a.m != nil || a.step != 0 {
		t.Fatal("Adam Reset did not clear state")
	}
	s := NewSGDMomentum(0.1, 0.9)
	x.Grad[0] = 1
	s.Step([]*autograd.Tensor{x})
	s.Reset()
	if s.velocity != nil {
		t.Fatal("SGD Reset did not clear velocity")
	}
	g := NewAdagrad(0.1)
	x.Grad[0] = 1
	g.Step([]*autograd.Tensor{x})
	g.Reset()
	if g.g2 != nil {
		t.Fatal("Adagrad Reset did not clear accumulator")
	}
}

func TestClipGradNorm(t *testing.T) {
	x := autograd.Param(1, 2, []float64{0, 0})
	x.Grad[0], x.Grad[1] = 3, 4 // norm 5
	pre := ClipGradNorm([]*autograd.Tensor{x}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %g, want 5", pre)
	}
	norm := math.Hypot(x.Grad[0], x.Grad[1])
	if math.Abs(norm-1) > 1e-12 {
		t.Fatalf("post-clip norm = %g, want 1", norm)
	}
}

func TestClipGradNormNoOpBelowMax(t *testing.T) {
	x := autograd.Param(1, 2, []float64{0, 0})
	x.Grad[0], x.Grad[1] = 0.3, 0.4
	ClipGradNorm([]*autograd.Tensor{x}, 10)
	if x.Grad[0] != 0.3 || x.Grad[1] != 0.4 {
		t.Fatal("clip modified gradients below threshold")
	}
}

func TestNewRegistry(t *testing.T) {
	if _, ok := New("sgd", 0.1).(*SGD); !ok {
		t.Fatal("New(sgd) wrong type")
	}
	if _, ok := New("adam", 0.1).(*Adam); !ok {
		t.Fatal("New(adam) wrong type")
	}
	if _, ok := New("adagrad", 0.1).(*Adagrad); !ok {
		t.Fatal("New(adagrad) wrong type")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown optimizer")
		}
	}()
	New("lbfgs", 0.1)
}

func TestOptimizersOnNoisyProblemStayFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, opt := range []Optimizer{NewSGD(0.01), NewAdam(0.01), NewAdagrad(0.1)} {
		x := autograd.Param(1, 4, []float64{1, -1, 2, -2})
		for s := 0; s < 100; s++ {
			x.ZeroGrad()
			for i := range x.Grad {
				x.Grad[i] = rng.NormFloat64() * 10
			}
			opt.Step([]*autograd.Tensor{x})
		}
		for _, v := range x.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%T produced non-finite parameter", opt)
			}
		}
	}
}
