package optim

import (
	"fmt"

	"mamdr/internal/autograd"
)

// State is a serializable snapshot of an optimizer's per-tensor state,
// aligned slot-for-slot with the parameter list it was captured from.
// It is what crash-safe checkpoints persist so a resumed run replays
// the exact update trajectory of an uninterrupted one: Adagrad's
// accumulators, Adam's moments and step counter, SGD's momentum
// velocities. All fields are exported for encoding/gob.
type State struct {
	// Name records the optimizer kind ("sgd", "adam", "adagrad") as a
	// guard against restoring into a different optimizer.
	Name string
	// Step is Adam's bias-correction step counter (zero elsewhere).
	Step int
	// Slots maps a slot name ("velocity", "m", "v", "g2") to one buffer
	// per parameter; a nil buffer means the optimizer never touched that
	// tensor (lazily initialized state stays lazy after restore).
	Slots map[string][][]float64
}

// Empty reports whether the snapshot carries no optimizer kind at all
// (the zero State, e.g. from a checkpoint written without one).
func (s State) Empty() bool { return s.Name == "" }

// Stateful is implemented by optimizers whose accumulated state can be
// captured for checkpointing and restored on resume.
type Stateful interface {
	Optimizer
	// CaptureState snapshots the state tracked for params.
	CaptureState(params []*autograd.Tensor) State
	// RestoreState rebinds a captured snapshot to params. It fails if
	// the snapshot was captured from a different optimizer kind or a
	// misaligned parameter list.
	RestoreState(params []*autograd.Tensor, st State) error
}

// captureSlot copies the per-tensor buffers tracked in m for params,
// preserving nil for untouched tensors.
func captureSlot(m map[*autograd.Tensor][]float64, params []*autograd.Tensor) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		if buf, ok := m[p]; ok {
			out[i] = append([]float64(nil), buf...)
		}
	}
	return out
}

// restoreSlot rebuilds a per-tensor state map from a captured slot.
func restoreSlot(slot [][]float64, params []*autograd.Tensor, name, opt string) (map[*autograd.Tensor][]float64, error) {
	if slot == nil {
		return nil, nil
	}
	if len(slot) != len(params) {
		return nil, fmt.Errorf("optim: %s state slot %q has %d buffers, restoring over %d params", opt, name, len(slot), len(params))
	}
	var m map[*autograd.Tensor][]float64
	for i, buf := range slot {
		if buf == nil {
			continue
		}
		if len(buf) != len(params[i].Data) {
			return nil, fmt.Errorf("optim: %s state slot %q buffer %d has %d values, tensor has %d",
				opt, name, i, len(buf), len(params[i].Data))
		}
		if m == nil {
			m = map[*autograd.Tensor][]float64{}
		}
		m[params[i]] = append([]float64(nil), buf...)
	}
	return m, nil
}

func checkKind(st State, want string) error {
	if st.Name != want {
		return fmt.Errorf("optim: state captured from %q, restoring into %q", st.Name, want)
	}
	return nil
}

// CaptureState implements Stateful.
func (s *SGD) CaptureState(params []*autograd.Tensor) State {
	return State{Name: "sgd", Slots: map[string][][]float64{"velocity": captureSlot(s.velocity, params)}}
}

// RestoreState implements Stateful.
func (s *SGD) RestoreState(params []*autograd.Tensor, st State) error {
	if err := checkKind(st, "sgd"); err != nil {
		return err
	}
	m, err := restoreSlot(st.Slots["velocity"], params, "velocity", "sgd")
	if err != nil {
		return err
	}
	s.velocity = m
	return nil
}

// CaptureState implements Stateful.
func (a *Adam) CaptureState(params []*autograd.Tensor) State {
	return State{Name: "adam", Step: a.step, Slots: map[string][][]float64{
		"m": captureSlot(a.m, params),
		"v": captureSlot(a.v, params),
	}}
}

// RestoreState implements Stateful.
func (a *Adam) RestoreState(params []*autograd.Tensor, st State) error {
	if err := checkKind(st, "adam"); err != nil {
		return err
	}
	m, err := restoreSlot(st.Slots["m"], params, "m", "adam")
	if err != nil {
		return err
	}
	v, err := restoreSlot(st.Slots["v"], params, "v", "adam")
	if err != nil {
		return err
	}
	a.m, a.v, a.step = m, v, st.Step
	return nil
}

// CaptureState implements Stateful.
func (a *Adagrad) CaptureState(params []*autograd.Tensor) State {
	return State{Name: "adagrad", Slots: map[string][][]float64{"g2": captureSlot(a.g2, params)}}
}

// RestoreState implements Stateful.
func (a *Adagrad) RestoreState(params []*autograd.Tensor, st State) error {
	if err := checkKind(st, "adagrad"); err != nil {
		return err
	}
	g2, err := restoreSlot(st.Slots["g2"], params, "g2", "adagrad")
	if err != nil {
		return err
	}
	a.g2 = g2
	return nil
}
