package optim

import "math"

// Schedule maps a zero-based epoch index to a learning rate. The
// paper's industrial configuration drives its Adagrad outer loop with a
// dynamic rate in [0.1, 1]; schedules make that reproducible.
type Schedule interface {
	// At returns the learning rate for the given epoch.
	At(epoch int) float64
}

// Constant is a fixed learning rate.
type Constant float64

// At implements Schedule.
func (c Constant) At(int) float64 { return float64(c) }

// LinearRange interpolates linearly from From to To over Epochs steps,
// then stays at To. It reproduces the paper's "dynamical learning rate
// ranging from 0.1 to 1" when configured as LinearRange{From: 1, To:
// 0.1, Epochs: N} (large early steps, fine late steps).
type LinearRange struct {
	From, To float64
	Epochs   int
}

// At implements Schedule.
func (l LinearRange) At(epoch int) float64 {
	if l.Epochs <= 1 || epoch >= l.Epochs {
		return l.To
	}
	if epoch < 0 {
		return l.From
	}
	frac := float64(epoch) / float64(l.Epochs-1)
	return l.From + (l.To-l.From)*frac
}

// ExponentialDecay multiplies the base rate by Decay^epoch, optionally
// bounded below by Floor.
type ExponentialDecay struct {
	Base  float64
	Decay float64
	Floor float64
}

// At implements Schedule.
func (e ExponentialDecay) At(epoch int) float64 {
	lr := e.Base * math.Pow(e.Decay, float64(epoch))
	if lr < e.Floor {
		return e.Floor
	}
	return lr
}

// Scheduled wraps an optimizer so each Advance applies the schedule's
// next rate.
type Scheduled struct {
	Optimizer
	Schedule Schedule
	epoch    int
}

// NewScheduled binds a schedule to an optimizer, setting the epoch-0
// rate immediately.
func NewScheduled(opt Optimizer, s Schedule) *Scheduled {
	opt.SetLR(s.At(0))
	return &Scheduled{Optimizer: opt, Schedule: s}
}

// Advance moves to the next epoch's learning rate and returns it.
func (s *Scheduled) Advance() float64 {
	s.epoch++
	lr := s.Schedule.At(s.epoch)
	s.SetLR(lr)
	return lr
}

// Epoch returns the current epoch index.
func (s *Scheduled) Epoch() int { return s.epoch }
