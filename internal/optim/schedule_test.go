package optim

import (
	"math"
	"testing"
)

func TestConstantSchedule(t *testing.T) {
	s := Constant(0.3)
	for _, e := range []int{0, 5, 100} {
		if s.At(e) != 0.3 {
			t.Fatalf("Constant.At(%d) = %g", e, s.At(e))
		}
	}
}

func TestLinearRangeEndpoints(t *testing.T) {
	s := LinearRange{From: 1, To: 0.1, Epochs: 10}
	if s.At(0) != 1 {
		t.Fatalf("At(0) = %g, want 1", s.At(0))
	}
	if math.Abs(s.At(9)-0.1) > 1e-12 {
		t.Fatalf("At(9) = %g, want 0.1", s.At(9))
	}
	if s.At(100) != 0.1 {
		t.Fatalf("At(100) = %g, want 0.1 (clamped)", s.At(100))
	}
	if s.At(-1) != 1 {
		t.Fatalf("At(-1) = %g, want 1 (clamped)", s.At(-1))
	}
}

func TestLinearRangeMonotone(t *testing.T) {
	s := LinearRange{From: 1, To: 0.1, Epochs: 20}
	prev := math.Inf(1)
	for e := 0; e < 25; e++ {
		lr := s.At(e)
		if lr > prev+1e-15 {
			t.Fatalf("schedule increased at epoch %d", e)
		}
		if lr < 0.1-1e-15 || lr > 1+1e-15 {
			t.Fatalf("rate %g outside [0.1, 1]", lr)
		}
		prev = lr
	}
}

func TestLinearRangeDegenerate(t *testing.T) {
	s := LinearRange{From: 1, To: 0.5, Epochs: 1}
	if s.At(0) != 0.5 {
		t.Fatalf("single-epoch schedule should return To, got %g", s.At(0))
	}
}

func TestExponentialDecay(t *testing.T) {
	s := ExponentialDecay{Base: 1, Decay: 0.5, Floor: 0.1}
	if s.At(0) != 1 || s.At(1) != 0.5 || s.At(2) != 0.25 {
		t.Fatalf("decay wrong: %g %g %g", s.At(0), s.At(1), s.At(2))
	}
	if s.At(10) != 0.1 {
		t.Fatalf("floor not applied: %g", s.At(10))
	}
}

func TestScheduledAdvance(t *testing.T) {
	opt := NewSGD(99) // overwritten by the schedule
	sch := NewScheduled(opt, LinearRange{From: 1, To: 0, Epochs: 3})
	if opt.LR() != 1 {
		t.Fatalf("epoch-0 rate not applied: %g", opt.LR())
	}
	if lr := sch.Advance(); lr != 0.5 || opt.LR() != 0.5 {
		t.Fatalf("epoch-1 rate = %g / %g, want 0.5", lr, opt.LR())
	}
	if lr := sch.Advance(); lr != 0 {
		t.Fatalf("epoch-2 rate = %g, want 0", lr)
	}
	if sch.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", sch.Epoch())
	}
}
