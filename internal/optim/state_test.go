package optim

import (
	"testing"

	"mamdr/internal/autograd"
)

func statefulParams() []*autograd.Tensor {
	a := autograd.Param(2, 2, []float64{1, 2, 3, 4})
	b := autograd.Param(1, 3, []float64{-1, 0, 1})
	return []*autograd.Tensor{a, b}
}

func fillGrads(params []*autograd.Tensor, v float64) {
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] = v
		}
	}
}

// TestStateRoundTripContinuesIdentically: an optimizer restored from
// captured state must continue the trajectory bit-for-bit — the property
// the checkpoint/resume path needs for Adagrad accumulators, Adam
// moments, and SGD momentum.
func TestStateRoundTripContinuesIdentically(t *testing.T) {
	builders := map[string]func() Optimizer{
		"sgd-momentum": func() Optimizer { return NewSGDMomentum(0.1, 0.9) },
		"adam":         func() Optimizer { return NewAdam(0.01) },
		"adagrad":      func() Optimizer { return NewAdagrad(0.1) },
	}
	for name, mk := range builders {
		t.Run(name, func(t *testing.T) {
			ref := statefulParams()
			opt := mk()
			for step := 0; step < 3; step++ {
				fillGrads(ref, 0.5)
				opt.Step(ref)
			}
			st := opt.(Stateful).CaptureState(ref)
			if st.Empty() {
				t.Fatal("captured state is empty")
			}

			// A fresh optimizer over parameters at the same values,
			// restored from the checkpointed state...
			cont := statefulParams()
			for i, p := range ref {
				copy(cont[i].Data, p.Data)
			}
			opt2 := mk()
			if err := opt2.(Stateful).RestoreState(cont, st); err != nil {
				t.Fatal(err)
			}

			// ...must take exactly the steps the original takes.
			for step := 0; step < 3; step++ {
				fillGrads(ref, 0.25)
				fillGrads(cont, 0.25)
				opt.Step(ref)
				opt2.Step(cont)
			}
			for i := range ref {
				for j := range ref[i].Data {
					if ref[i].Data[j] != cont[i].Data[j] {
						t.Fatalf("param %d[%d] diverged after restore: %g vs %g",
							i, j, cont[i].Data[j], ref[i].Data[j])
					}
				}
			}
		})
	}
}

func TestRestoreStateRejectsMismatches(t *testing.T) {
	params := statefulParams()
	opt := NewAdagrad(0.1)
	fillGrads(params, 0.5)
	opt.Step(params)
	st := opt.CaptureState(params)

	// Wrong optimizer kind.
	if err := NewAdam(0.1).RestoreState(params, st); err == nil {
		t.Fatal("adam restored adagrad state")
	}
	// Wrong tensor count.
	if err := NewAdagrad(0.1).RestoreState(params[:1], st); err == nil {
		t.Fatal("restore accepted a mismatched parameter list")
	}
	// Wrong tensor size.
	resized := []*autograd.Tensor{autograd.ParamZeros(5, 5), autograd.ParamZeros(1, 3)}
	if err := NewAdagrad(0.1).RestoreState(resized, st); err == nil {
		t.Fatal("restore accepted mismatched tensor sizes")
	}
}

func TestCaptureStatePreservesUntouchedSlots(t *testing.T) {
	// An optimizer that has never stepped captures an empty-but-typed
	// state; restoring it must be a no-op, not an error.
	params := statefulParams()
	st := NewAdagrad(0.1).CaptureState(params)
	if st.Name != "adagrad" {
		t.Fatalf("state name = %q", st.Name)
	}
	if err := NewAdagrad(0.1).RestoreState(params, st); err != nil {
		t.Fatalf("restoring a pre-step state: %v", err)
	}
}
