// Package optim implements the gradient-descent optimizers used by the
// MAMDR learning frameworks: SGD (with optional momentum), Adam, and
// Adagrad. Inner and outer loops of Domain Negotiation can use different
// optimizers (the paper's industrial configuration uses SGD inside and
// Adagrad outside), so optimizers keep per-tensor state keyed by
// parameter identity and can be Reset when the parameter set they track
// is rebound.
package optim

import (
	"math"

	"mamdr/internal/autograd"
)

// Optimizer updates parameters in place from their accumulated
// gradients. Implementations keep internal state (momentum, adaptive
// moments) per parameter tensor.
type Optimizer interface {
	// Step applies one update to every parameter using its Grad buffer.
	// Gradients are not cleared; callers zero them between steps.
	Step(params []*autograd.Tensor)
	// SetLR changes the learning rate for subsequent steps.
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
	// Reset drops all accumulated optimizer state.
	Reset()
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	lr       float64
	Momentum float64
	velocity map[*autograd.Tensor][]float64
}

// NewSGD returns an SGD optimizer with the given learning rate and no
// momentum.
func NewSGD(lr float64) *SGD { return &SGD{lr: lr} }

// NewSGDMomentum returns an SGD optimizer with classical momentum.
func NewSGDMomentum(lr, momentum float64) *SGD {
	return &SGD{lr: lr, Momentum: momentum}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*autograd.Tensor) {
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		if s.Momentum == 0 {
			for i, g := range p.Grad {
				p.Data[i] -= s.lr * g
			}
			continue
		}
		if s.velocity == nil {
			s.velocity = map[*autograd.Tensor][]float64{}
		}
		v := s.velocity[p]
		if v == nil {
			v = make([]float64, len(p.Data))
			s.velocity[p] = v
		}
		for i, g := range p.Grad {
			v[i] = s.Momentum*v[i] + g
			p.Data[i] -= s.lr * v[i]
		}
	}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

// Reset implements Optimizer.
func (s *SGD) Reset() { s.velocity = nil }

// Adam implements the Adam optimizer (Kingma & Ba, 2015).
type Adam struct {
	lr           float64
	Beta1, Beta2 float64
	Eps          float64
	step         int
	m, v         map[*autograd.Tensor][]float64
}

// NewAdam returns Adam with the standard defaults beta1=0.9, beta2=0.999,
// eps=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{lr: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*autograd.Tensor) {
	if a.m == nil {
		a.m = map[*autograd.Tensor][]float64{}
		a.v = map[*autograd.Tensor][]float64{}
	}
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = make([]float64, len(p.Data))
			v = make([]float64, len(p.Data))
			a.m[p] = m
			a.v[p] = v
		}
		for i, g := range p.Grad {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / c1
			vh := v[i] / c2
			p.Data[i] -= a.lr * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.lr }

// Reset implements Optimizer.
func (a *Adam) Reset() { a.m, a.v, a.step = nil, nil, 0 }

// Adagrad implements the Adagrad optimizer (Duchi et al., 2011), used by
// the paper's industrial outer loop.
type Adagrad struct {
	lr  float64
	Eps float64
	g2  map[*autograd.Tensor][]float64
}

// NewAdagrad returns Adagrad with eps=1e-8.
func NewAdagrad(lr float64) *Adagrad { return &Adagrad{lr: lr, Eps: 1e-8} }

// Step implements Optimizer.
func (a *Adagrad) Step(params []*autograd.Tensor) {
	if a.g2 == nil {
		a.g2 = map[*autograd.Tensor][]float64{}
	}
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		s := a.g2[p]
		if s == nil {
			s = make([]float64, len(p.Data))
			a.g2[p] = s
		}
		for i, g := range p.Grad {
			s[i] += g * g
			p.Data[i] -= a.lr * g / (math.Sqrt(s[i]) + a.Eps)
		}
	}
}

// SetLR implements Optimizer.
func (a *Adagrad) SetLR(lr float64) { a.lr = lr }

// LR implements Optimizer.
func (a *Adagrad) LR() float64 { return a.lr }

// Reset implements Optimizer.
func (a *Adagrad) Reset() { a.g2 = nil }

// ClipGradNorm scales all gradients down so their global L2 norm does not
// exceed maxNorm. It returns the pre-clip norm.
func ClipGradNorm(params []*autograd.Tensor, maxNorm float64) float64 {
	var total float64
	for _, p := range params {
		for _, g := range p.Grad {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.Grad {
				p.Grad[i] *= scale
			}
		}
	}
	return norm
}

// New builds an optimizer by name ("sgd", "adam", "adagrad"); it panics
// on an unknown name. It is the registry used by command-line tools.
func New(name string, lr float64) Optimizer {
	switch name {
	case "sgd":
		return NewSGD(lr)
	case "adam":
		return NewAdam(lr)
	case "adagrad":
		return NewAdagrad(lr)
	default:
		panic("optim: unknown optimizer " + name)
	}
}
