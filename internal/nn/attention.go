package nn

import (
	"math"
	"math/rand"

	"mamdr/internal/autograd"
)

// InteractingLayer is AutoInt's multi-head self-attention over feature
// fields. Each field embedding attends to every field (including itself)
// and the head outputs are concatenated and combined with a residual
// projection:
//
//	out_i = ReLU( concat_h( Σ_j softmax_j(<Q_i^h, K_j^h>/√d_h) · V_j^h ) + X_i W_res )
//
// The layer keeps per-field width Heads*HeadDim, so layers can be
// stacked.
type InteractingLayer struct {
	Heads   int
	HeadDim int
	WQ, WK  *autograd.Tensor // In x Heads*HeadDim
	WV      *autograd.Tensor // In x Heads*HeadDim
	WRes    *autograd.Tensor // In x Heads*HeadDim
}

// NewInteractingLayer builds an interacting layer mapping field width
// `in` to heads*headDim.
func NewInteractingLayer(in, heads, headDim int, rng *rand.Rand) *InteractingLayer {
	out := heads * headDim
	return &InteractingLayer{
		Heads:   heads,
		HeadDim: headDim,
		WQ:      autograd.ParamXavier(in, out, rng),
		WK:      autograd.ParamXavier(in, out, rng),
		WV:      autograd.ParamXavier(in, out, rng),
		WRes:    autograd.ParamXavier(in, out, rng),
	}
}

// Forward applies self-attention across the given field tensors (each
// batch x In) and returns one batch x Heads*HeadDim tensor per field.
func (l *InteractingLayer) Forward(fields []*autograd.Tensor) []*autograd.Tensor {
	f := len(fields)
	qs := make([]*autograd.Tensor, f)
	ks := make([]*autograd.Tensor, f)
	vs := make([]*autograd.Tensor, f)
	res := make([]*autograd.Tensor, f)
	for i, x := range fields {
		qs[i] = autograd.MatMul(x, l.WQ)
		ks[i] = autograd.MatMul(x, l.WK)
		vs[i] = autograd.MatMul(x, l.WV)
		res[i] = autograd.MatMul(x, l.WRes)
	}
	invSqrt := 1 / math.Sqrt(float64(l.HeadDim))
	out := make([]*autograd.Tensor, f)
	for i := 0; i < f; i++ {
		headOuts := make([]*autograd.Tensor, 0, l.Heads)
		for h := 0; h < l.Heads; h++ {
			lo, hi := h*l.HeadDim, (h+1)*l.HeadDim
			qi := autograd.SliceCols(qs[i], lo, hi)
			scores := make([]*autograd.Tensor, f)
			for j := 0; j < f; j++ {
				kj := autograd.SliceCols(ks[j], lo, hi)
				scores[j] = autograd.Scale(autograd.RowDot(qi, kj), invSqrt)
			}
			attn := autograd.SoftmaxRows(autograd.ConcatCols(scores...))
			var acc *autograd.Tensor
			for j := 0; j < f; j++ {
				w := autograd.SliceCols(attn, j, j+1)
				term := autograd.MulColBroadcast(autograd.SliceCols(vs[j], lo, hi), w)
				if acc == nil {
					acc = term
				} else {
					acc = autograd.Add(acc, term)
				}
			}
			headOuts = append(headOuts, acc)
		}
		combined := autograd.ConcatCols(headOuts...)
		out[i] = autograd.ReLU(autograd.Add(combined, res[i]))
	}
	return out
}

// OutDim returns the per-field output width.
func (l *InteractingLayer) OutDim() int { return l.Heads * l.HeadDim }

// Parameters implements Module.
func (l *InteractingLayer) Parameters() []*autograd.Tensor {
	return []*autograd.Tensor{l.WQ, l.WK, l.WV, l.WRes}
}
