package nn

import (
	"fmt"
	"math/rand"

	"mamdr/internal/autograd"
)

// Activation names a pointwise nonlinearity applied after a dense layer.
type Activation int

// Supported activations.
const (
	Linear Activation = iota
	ReLU
	Sigmoid
	Tanh
	LeakyReLU
)

// String returns the activation's name.
func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case LeakyReLU:
		return "leaky_relu"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// actKind maps the layer activation onto the fused autograd kind.
func actKind(a Activation) autograd.Act {
	switch a {
	case Linear:
		return autograd.ActIdentity
	case ReLU:
		return autograd.ActReLU
	case Sigmoid:
		return autograd.ActSigmoid
	case Tanh:
		return autograd.ActTanh
	case LeakyReLU:
		return autograd.ActLeaky
	default:
		panic("nn: unknown activation " + a.String())
	}
}

// leakySlope is the LeakyReLU slope used across the package.
const leakySlope = 0.01

func applyActivation(a Activation, x *autograd.Tensor) *autograd.Tensor {
	switch a {
	case Linear:
		return x
	case ReLU:
		return autograd.ReLU(x)
	case Sigmoid:
		return autograd.Sigmoid(x)
	case Tanh:
		return autograd.Tanh(x)
	case LeakyReLU:
		return autograd.LeakyReLU(x, leakySlope)
	default:
		panic("nn: unknown activation " + a.String())
	}
}

// Dense is a fully connected layer: y = act(xW + b).
type Dense struct {
	W   *autograd.Tensor // In x Out
	B   *autograd.Tensor // 1 x Out
	Act Activation
}

// NewDense builds a dense layer with Xavier-initialized weights and zero
// bias.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	return &Dense{
		W:   autograd.ParamXavier(in, out, rng),
		B:   autograd.ParamZeros(1, out),
		Act: act,
	}
}

// Forward applies the layer to an NxIn batch, producing NxOut. The
// matmul, bias add, and activation run as one fused kernel pass,
// bit-identical to the composed ops.
func (d *Dense) Forward(x *autograd.Tensor) *autograd.Tensor {
	return autograd.DenseAct(x, d.W, d.B, actKind(d.Act), leakySlope)
}

// Parameters implements Module.
func (d *Dense) Parameters() []*autograd.Tensor {
	return []*autograd.Tensor{d.W, d.B}
}

// In returns the layer's input width.
func (d *Dense) In() int { return d.W.Rows }

// Out returns the layer's output width.
func (d *Dense) Out() int { return d.W.Cols }

// MLP is a stack of dense layers with a shared hidden activation and
// optional inverted dropout between hidden layers. The final layer is
// linear unless OutAct is set.
type MLP struct {
	Layers  []*Dense
	Dropout float64
	OutAct  Activation
}

// NewMLP builds an MLP with the given layer widths; dims includes the
// input width, e.g. dims = [in, 256, 128, 64, 1]. Hidden layers use act;
// the output layer is linear.
func NewMLP(dims []int, act Activation, dropout float64, rng *rand.Rand) *MLP {
	if len(dims) < 2 {
		panic("nn: NewMLP needs at least [in, out] dims")
	}
	m := &MLP{Dropout: dropout, OutAct: Linear}
	for i := 0; i+1 < len(dims); i++ {
		a := act
		if i+2 == len(dims) {
			a = Linear
		}
		m.Layers = append(m.Layers, NewDense(dims[i], dims[i+1], a, rng))
	}
	return m
}

// Forward applies the network. When training is true, dropout is active
// and rng must be non-nil if Dropout > 0.
func (m *MLP) Forward(x *autograd.Tensor, training bool, rng *rand.Rand) *autograd.Tensor {
	h := x
	for i, l := range m.Layers {
		h = l.Forward(h)
		if i+1 < len(m.Layers) && m.Dropout > 0 {
			h = autograd.Dropout(h, m.Dropout, training, rng)
		}
	}
	return applyActivation(m.OutAct, h)
}

// Parameters implements Module.
func (m *MLP) Parameters() []*autograd.Tensor {
	var ps []*autograd.Tensor
	for _, l := range m.Layers {
		ps = append(ps, l.Parameters()...)
	}
	return ps
}

// OutDim returns the width of the final layer.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].Out() }
