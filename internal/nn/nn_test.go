package nn

import (
	"math"
	"math/rand"
	"testing"

	"mamdr/internal/autograd"
)

func TestDenseShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(4, 3, ReLU, rng)
	x := autograd.Zeros(5, 4)
	y := d.Forward(x)
	if y.Rows != 5 || y.Cols != 3 {
		t.Fatalf("Dense output %dx%d, want 5x3", y.Rows, y.Cols)
	}
	if d.In() != 4 || d.Out() != 3 {
		t.Fatalf("In/Out = %d/%d, want 4/3", d.In(), d.Out())
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(3, 2, Tanh, rng)
	x := autograd.ParamRand(4, 3, 1, rng).Detach()
	labels := []float64{1, 0, 1, 0}
	f := func() *autograd.Tensor {
		h := d.Forward(x)
		logit := autograd.SumRows(h)
		return autograd.BCEWithLogits(logit, labels)
	}
	if err := autograd.CheckGradients(f, d.Parameters(), 1e-5, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestActivationString(t *testing.T) {
	names := map[Activation]string{
		Linear: "linear", ReLU: "relu", Sigmoid: "sigmoid",
		Tanh: "tanh", LeakyReLU: "leaky_relu",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestMLPStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP([]int{8, 16, 4, 1}, ReLU, 0, rng)
	if len(m.Layers) != 3 {
		t.Fatalf("layer count = %d, want 3", len(m.Layers))
	}
	if m.Layers[0].Act != ReLU || m.Layers[2].Act != Linear {
		t.Fatal("hidden layers must use act, output layer linear")
	}
	if m.OutDim() != 1 {
		t.Fatalf("OutDim = %d, want 1", m.OutDim())
	}
	x := autograd.Zeros(2, 8)
	y := m.Forward(x, false, nil)
	if y.Rows != 2 || y.Cols != 1 {
		t.Fatalf("MLP output %dx%d, want 2x1", y.Rows, y.Cols)
	}
}

func TestMLPTooFewDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLP([]int{4}, ReLU, 0, rand.New(rand.NewSource(1)))
}

func TestMLPParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP([]int{8, 16, 1}, ReLU, 0, rng)
	want := 8*16 + 16 + 16*1 + 1
	if got := ParamCount(m); got != want {
		t.Fatalf("ParamCount = %d, want %d", got, want)
	}
}

func TestMLPParametersStableOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP([]int{4, 3, 1}, ReLU, 0, rng)
	a, b := m.Parameters(), m.Parameters()
	if len(a) != len(b) {
		t.Fatal("parameter count changed between calls")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parameter order not stable")
		}
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP([]int{2, 8, 1}, Tanh, 0, rng)
	x := autograd.New(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	labels := []float64{0, 1, 1, 0}
	lr := 0.5
	for step := 0; step < 2000; step++ {
		ZeroGrads(m)
		loss := autograd.BCEWithLogits(m.Forward(x, true, rng), labels)
		loss.Backward()
		for _, p := range m.Parameters() {
			for i := range p.Data {
				p.Data[i] -= lr * p.Grad[i]
			}
		}
	}
	logits := m.Forward(x, false, nil)
	for i, y := range labels {
		p := 1 / (1 + math.Exp(-logits.Data[i]))
		if (y == 1 && p < 0.9) || (y == 0 && p > 0.1) {
			t.Fatalf("XOR sample %d: p=%.3f, label=%g", i, p, y)
		}
	}
}

func TestEmbeddingLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEmbedding(10, 4, 0.1, rng)
	out := e.Lookup([]int{3, 3, 9})
	if out.Rows != 3 || out.Cols != 4 {
		t.Fatalf("Lookup shape %dx%d, want 3x4", out.Rows, out.Cols)
	}
	for j := 0; j < 4; j++ {
		if out.At(0, j) != out.At(1, j) {
			t.Fatal("repeated id produced different vectors")
		}
		if out.At(0, j) != e.Table.At(3, j) {
			t.Fatal("lookup does not match table row")
		}
	}
	if e.Vocab() != 10 || e.Dim() != 4 {
		t.Fatalf("Vocab/Dim = %d/%d", e.Vocab(), e.Dim())
	}
}

func TestFrozenEmbeddingExposesNoParams(t *testing.T) {
	e := NewFrozenEmbedding([][]float64{{1, 2}, {3, 4}})
	if !e.Frozen() {
		t.Fatal("expected frozen")
	}
	if len(e.Parameters()) != 0 {
		t.Fatal("frozen embedding must expose no parameters")
	}
	out := e.Lookup([]int{1})
	if out.At(0, 0) != 3 || out.At(0, 1) != 4 {
		t.Fatal("frozen lookup content wrong")
	}
}

func TestFrozenEmbeddingRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged feature rows")
		}
	}()
	NewFrozenEmbedding([][]float64{{1, 2}, {3}})
}

func TestFrozenEmbeddingGetsNoGradient(t *testing.T) {
	e := NewFrozenEmbedding([][]float64{{1, 2}, {3, 4}})
	out := e.Lookup([]int{0, 1})
	loss := autograd.Sum(autograd.Square(out))
	loss.Backward()
	if e.Table.Grad != nil {
		for _, g := range e.Table.Grad {
			if g != 0 {
				t.Fatal("frozen table received gradient")
			}
		}
	}
}

func TestLayerNormNormalizesRows(t *testing.T) {
	ln := NewLayerNorm(4)
	x := autograd.New(2, 4, []float64{1, 2, 3, 4, 10, 10, 10, 14})
	y := ln.Forward(x)
	for i := 0; i < 2; i++ {
		var mean, varr float64
		for j := 0; j < 4; j++ {
			mean += y.At(i, j)
		}
		mean /= 4
		for j := 0; j < 4; j++ {
			d := y.At(i, j) - mean
			varr += d * d
		}
		varr /= 4
		if math.Abs(mean) > 1e-9 || math.Abs(varr-1) > 1e-3 {
			t.Fatalf("row %d: mean=%g var=%g", i, mean, varr)
		}
	}
}

func TestLayerNormGradFlowsToInputAndParams(t *testing.T) {
	ln := NewLayerNorm(3)
	x := autograd.ParamRand(2, 3, 1, rand.New(rand.NewSource(8)))
	loss := autograd.Sum(autograd.Square(ln.Forward(x)))
	loss.Backward()
	var nonzero bool
	for _, g := range ln.Gamma.Grad {
		if g != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("gamma received no gradient")
	}
	nonzero = false
	for _, g := range x.Grad {
		if g != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("input received no gradient")
	}
}

func TestPartitionedNormDomainsDiffer(t *testing.T) {
	pn := NewPartitionedNorm(3, 2)
	pn.DomainBetas[1].Data[0] = 5
	x := autograd.New(1, 3, []float64{1, 2, 3})
	y0 := pn.Forward(x, 0)
	y1 := pn.Forward(x, 1)
	if math.Abs((y1.At(0, 0)-y0.At(0, 0))-5) > 1e-9 {
		t.Fatalf("domain beta not applied: %g vs %g", y0.At(0, 0), y1.At(0, 0))
	}
	wantParams := 2 + 2*2
	if got := len(pn.Parameters()); got != wantParams {
		t.Fatalf("param tensors = %d, want %d", got, wantParams)
	}
}

func TestInteractingLayerShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewInteractingLayer(4, 2, 3, rng)
	fields := []*autograd.Tensor{
		autograd.ParamRand(5, 4, 1, rng).Detach(),
		autograd.ParamRand(5, 4, 1, rng).Detach(),
		autograd.ParamRand(5, 4, 1, rng).Detach(),
	}
	out := l.Forward(fields)
	if len(out) != 3 {
		t.Fatalf("field count = %d, want 3", len(out))
	}
	for _, o := range out {
		if o.Rows != 5 || o.Cols != l.OutDim() {
			t.Fatalf("field output %dx%d, want 5x%d", o.Rows, o.Cols, l.OutDim())
		}
	}
}

func TestInteractingLayerGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l := NewInteractingLayer(3, 1, 2, rng)
	fields := []*autograd.Tensor{
		autograd.ParamRand(2, 3, 1, rng).Detach(),
		autograd.ParamRand(2, 3, 1, rng).Detach(),
	}
	f := func() *autograd.Tensor {
		outs := l.Forward(fields)
		return autograd.Sum(autograd.Square(autograd.ConcatCols(outs...)))
	}
	if err := autograd.CheckGradients(f, l.Parameters(), 1e-5, 1e-4); err != nil {
		t.Fatal(err)
	}
}

func TestInteractingLayerAttendsAcrossFields(t *testing.T) {
	// Zeroing one field's value vector must change other fields' outputs,
	// demonstrating cross-field attention.
	rng := rand.New(rand.NewSource(11))
	l := NewInteractingLayer(3, 1, 3, rng)
	a := autograd.ParamRand(1, 3, 1, rng).Detach()
	b := autograd.ParamRand(1, 3, 1, rng).Detach()
	out1 := l.Forward([]*autograd.Tensor{a, b})[0].Clone()
	for i := range b.Data {
		b.Data[i] *= 2
	}
	out2 := l.Forward([]*autograd.Tensor{a, b})[0]
	var diff float64
	for i := range out1.Data {
		diff += math.Abs(out1.Data[i] - out2.Data[i])
	}
	if diff == 0 {
		t.Fatal("changing field b did not affect field a's attended output")
	}
}

func TestCollect(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d1 := NewDense(2, 2, Linear, rng)
	d2 := NewDense(2, 1, Linear, rng)
	ps := Collect(d1, d2)
	if len(ps) != 4 {
		t.Fatalf("Collect len = %d, want 4", len(ps))
	}
}

func TestZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := NewDense(2, 1, Linear, rng)
	x := autograd.New(1, 2, []float64{1, 2})
	autograd.Sum(autograd.Square(d.Forward(x))).Backward()
	ZeroGrads(d)
	for _, p := range d.Parameters() {
		for _, g := range p.Grad {
			if g != 0 {
				t.Fatal("ZeroGrads left nonzero gradient")
			}
		}
	}
}
