// Package nn provides neural-network building blocks on top of the
// autograd engine: dense layers, multi-layer perceptrons, embeddings,
// normalization, and the self-attention interacting layer used by
// AutoInt. Every block implements Module, exposing its trainable
// parameters so learning frameworks can treat models as flat parameter
// vectors (the property MAMDR's model-agnosticism relies on).
package nn

import (
	"mamdr/internal/autograd"
)

// Module is anything that owns trainable parameters.
type Module interface {
	// Parameters returns the module's trainable tensors in a stable
	// order. The same order must be produced on every call so that
	// parameter vectors snapshotted by learning frameworks line up.
	Parameters() []*autograd.Tensor
}

// ParamCount returns the total number of scalar parameters in m.
func ParamCount(m Module) int {
	n := 0
	for _, p := range m.Parameters() {
		n += p.Size()
	}
	return n
}

// Collect flattens the parameters of several modules into one list,
// preserving order.
func Collect(ms ...Module) []*autograd.Tensor {
	var out []*autograd.Tensor
	for _, m := range ms {
		out = append(out, m.Parameters()...)
	}
	return out
}

// ZeroGrads clears the gradient buffers of all parameters of m.
func ZeroGrads(m Module) {
	for _, p := range m.Parameters() {
		p.ZeroGrad()
	}
}
