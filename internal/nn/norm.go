package nn

import (
	"math"

	"mamdr/internal/autograd"
)

// LayerNorm normalizes each row of its input to zero mean and unit
// variance, then applies a learned affine transform gamma*x + beta.
type LayerNorm struct {
	Gamma *autograd.Tensor // 1 x D
	Beta  *autograd.Tensor // 1 x D
	Eps   float64
}

// NewLayerNorm builds a layer norm over width dim with gamma=1, beta=0.
func NewLayerNorm(dim int) *LayerNorm {
	g := make([]float64, dim)
	for i := range g {
		g[i] = 1
	}
	return &LayerNorm{
		Gamma: autograd.Param(1, dim, g),
		Beta:  autograd.ParamZeros(1, dim),
		Eps:   1e-5,
	}
}

// Forward normalizes each row of x and applies the affine transform.
// The normalization statistics are treated as constants of the backward
// pass (a standard simplification that keeps gradients stable; verified
// adequate by the training tests).
func (l *LayerNorm) Forward(x *autograd.Tensor) *autograd.Tensor {
	// Compute per-row mean/std outside the graph, then express the
	// normalization as differentiable affine ops on x.
	rows, cols := x.Rows, x.Cols
	shift := make([]float64, rows)
	scale := make([]float64, rows)
	for i := 0; i < rows; i++ {
		var mean float64
		for j := 0; j < cols; j++ {
			mean += x.Data[i*cols+j]
		}
		mean /= float64(cols)
		var v float64
		for j := 0; j < cols; j++ {
			d := x.Data[i*cols+j] - mean
			v += d * d
		}
		v /= float64(cols)
		shift[i] = -mean
		scale[i] = 1 / math.Sqrt(v+l.Eps)
	}
	shiftT := autograd.New(rows, 1, shift)
	scaleT := autograd.New(rows, 1, scale)
	ones := make([]float64, cols)
	for j := range ones {
		ones[j] = 1
	}
	onesRow := autograd.New(1, cols, ones)
	centered := autograd.Add(x, autograd.MatMul(shiftT, onesRow))
	normed := autograd.MulColBroadcast(centered, scaleT)
	scaled := autograd.Mul(normed, autograd.MatMul(autograd.New(rows, 1, onesCol(rows)), l.Gamma))
	return autograd.AddRowVector(scaled, l.Beta)
}

func onesCol(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Parameters implements Module.
func (l *LayerNorm) Parameters() []*autograd.Tensor {
	return []*autograd.Tensor{l.Gamma, l.Beta}
}

// PartitionedNorm is the STAR paper's partitioned normalization adapted
// to per-sample statistics: activations are layer-normalized, then the
// affine transform composes a shared (gamma, beta) with a domain-specific
// (gamma_d, beta_d): y = (gamma*gamma_d)*x_norm + (beta+beta_d).
//
// The original uses per-domain batch statistics; with the small
// per-domain batches used here, per-sample statistics are the stable
// equivalent (the distinction the experiments need — domain-specific
// affine parameters — is preserved).
type PartitionedNorm struct {
	Shared       *LayerNorm
	DomainGammas []*autograd.Tensor // per domain, 1 x D, initialized to 1
	DomainBetas  []*autograd.Tensor // per domain, 1 x D, initialized to 0
}

// NewPartitionedNorm builds a partitioned norm over width dim for n
// domains.
func NewPartitionedNorm(dim, domains int) *PartitionedNorm {
	p := &PartitionedNorm{Shared: NewLayerNorm(dim)}
	for d := 0; d < domains; d++ {
		g := make([]float64, dim)
		for i := range g {
			g[i] = 1
		}
		p.DomainGammas = append(p.DomainGammas, autograd.Param(1, dim, g))
		p.DomainBetas = append(p.DomainBetas, autograd.ParamZeros(1, dim))
	}
	return p
}

// Forward applies the norm for the given domain.
func (p *PartitionedNorm) Forward(x *autograd.Tensor, domain int) *autograd.Tensor {
	h := p.Shared.Forward(x)
	rows := x.Rows
	ones := autograd.New(rows, 1, onesCol(rows))
	h = autograd.Mul(h, autograd.MatMul(ones, p.DomainGammas[domain]))
	return autograd.AddRowVector(h, p.DomainBetas[domain])
}

// Parameters implements Module, exposing shared and all domain-specific
// affine parameters.
func (p *PartitionedNorm) Parameters() []*autograd.Tensor {
	ps := p.Shared.Parameters()
	for i := range p.DomainGammas {
		ps = append(ps, p.DomainGammas[i], p.DomainBetas[i])
	}
	return ps
}
