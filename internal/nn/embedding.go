package nn

import (
	"fmt"
	"math/rand"

	"mamdr/internal/autograd"
)

// Embedding maps categorical ids to dense vectors via a VxD table.
// A frozen embedding (fixed features, as in the Taobao benchmarks where
// features come from a pretrained GraphSage) does not receive gradients.
type Embedding struct {
	Table  *autograd.Tensor
	frozen bool
}

// NewEmbedding builds a trainable embedding table with small random
// initialization (uniform in [-scale, scale]).
func NewEmbedding(vocab, dim int, scale float64, rng *rand.Rand) *Embedding {
	return &Embedding{Table: autograd.ParamRand(vocab, dim, scale, rng)}
}

// NewFrozenEmbedding wraps externally provided feature vectors as a
// non-trainable lookup table. vectors[i] becomes row i; all rows must
// have equal length.
func NewFrozenEmbedding(vectors [][]float64) *Embedding {
	if len(vectors) == 0 {
		panic("nn: NewFrozenEmbedding with no vectors")
	}
	dim := len(vectors[0])
	data := make([]float64, len(vectors)*dim)
	for i, v := range vectors {
		if len(v) != dim {
			panic(fmt.Sprintf("nn: feature row %d has dim %d, want %d", i, len(v), dim))
		}
		copy(data[i*dim:(i+1)*dim], v)
	}
	return &Embedding{Table: autograd.New(len(vectors), dim, data), frozen: true}
}

// Lookup gathers the rows for ids, producing len(ids) x D.
func (e *Embedding) Lookup(ids []int) *autograd.Tensor {
	return autograd.Gather(e.Table, ids)
}

// Dim returns the embedding dimension.
func (e *Embedding) Dim() int { return e.Table.Cols }

// Vocab returns the number of rows in the table.
func (e *Embedding) Vocab() int { return e.Table.Rows }

// Frozen reports whether the table is excluded from training.
func (e *Embedding) Frozen() bool { return e.frozen }

// Parameters implements Module; frozen embeddings expose no parameters.
func (e *Embedding) Parameters() []*autograd.Tensor {
	if e.frozen {
		return nil
	}
	return []*autograd.Tensor{e.Table}
}
