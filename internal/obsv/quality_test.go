package obsv

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mamdr/internal/telemetry"
)

// qfam builds one gauge family with per-(instance, domain) series, the
// shape the federated view hands BuildQualityReport.
func qfam(name string, series ...telemetry.SeriesSnapshot) telemetry.FamilySnapshot {
	return telemetry.FamilySnapshot{Name: name, Kind: "gauge", Series: series}
}

func qseries(value float64, labels ...telemetry.Label) telemetry.SeriesSnapshot {
	return telemetry.SeriesSnapshot{Labels: labels, Value: value}
}

func TestBuildQualityReport(t *testing.T) {
	inst := telemetry.L("instance", "serve-1")
	fams := []telemetry.FamilySnapshot{
		qfam("mamdr_quality_auc",
			qseries(0.71, inst, telemetry.L("domain", "books"), telemetry.L("role", "serve")),
			qseries(0.52, inst, telemetry.L("domain", "music"), telemetry.L("role", "serve"))),
		qfam("mamdr_quality_auc_baseline",
			qseries(0.72, inst, telemetry.L("domain", "books")),
			qseries(0.70, inst, telemetry.L("domain", "music"))),
		qfam("mamdr_quality_psi",
			qseries(0.02, inst, telemetry.L("domain", "books"), telemetry.L("kind", "score")),
			qseries(0.41, inst, telemetry.L("domain", "music"), telemetry.L("kind", "score")),
			qseries(0.30, inst, telemetry.L("domain", "music"), telemetry.L("kind", "label"))),
		qfam("mamdr_quality_calibration_ratio",
			qseries(1.05, inst, telemetry.L("domain", "books"))),
		qfam("mamdr_quality_fleet_auc", qseries(0.66, inst)),
		qfam("mamdr_quality_baseline_missing",
			qseries(1, telemetry.L("instance", "serve-2")),
			qseries(0, inst)),
	}
	status := []SLOStatus{
		{Name: "serve-availability", Firing: true}, // non-quality: must not flip Go
		{Name: "quality-psi-drift", Firing: true},
		{Name: "quality-auc-floor", Firing: false},
	}

	rep := BuildQualityReport(fams, status)

	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2: %+v", len(rep.Rows), rep.Rows)
	}
	books := rep.Rows[0]
	if books.Domain != "books" || books.AUC != 0.71 || books.BaselineAUC != 0.72 {
		t.Fatalf("books row = %+v", books)
	}
	if got := books.AUCDelta; got > -0.0099 || got < -0.0101 {
		t.Fatalf("books auc_delta = %v, want ~-0.01", got)
	}
	if books.Role != "serve" || books.Calibration != 1.05 {
		t.Fatalf("books row lost role/calibration: %+v", books)
	}

	// music regressed hardest AND drifted hardest: first in both lists.
	if rep.WorstByAUCDelta[0].Domain != "music" {
		t.Fatalf("worst_by_auc_delta[0] = %+v, want music", rep.WorstByAUCDelta[0])
	}
	if w := rep.WorstByPSI[0]; w.Domain != "music" || w.ScorePSI != 0.41 || w.LabelPSI != 0.30 {
		t.Fatalf("worst_by_psi[0] = %+v, want music with both PSI kinds", w)
	}

	if len(rep.Fleet) != 1 || rep.Fleet[0].AUC != 0.66 {
		t.Fatalf("fleet rows = %+v", rep.Fleet)
	}
	if len(rep.BaselineMissing) != 1 || rep.BaselineMissing[0] != "serve-2" {
		t.Fatalf("baseline_missing = %v, want [serve-2]", rep.BaselineMissing)
	}
	if rep.Go {
		t.Fatal("go=true while quality-psi-drift fires")
	}
	if len(rep.Firing) != 1 || rep.Firing[0] != "quality-psi-drift" {
		t.Fatalf("firing = %v, want only the quality SLO", rep.Firing)
	}

	// No quality SLO firing (even with other SLOs burning) → go.
	rep = BuildQualityReport(fams, []SLOStatus{{Name: "serve-availability", Firing: true}})
	if !rep.Go || len(rep.Firing) != 0 {
		t.Fatalf("go=%v firing=%v, want go with no quality SLO burning", rep.Go, rep.Firing)
	}
}

// TestQualitySLOsFireOnBreachCounters drives the shipped quality SLOs
// through the burn engine with a fake clock: a drifting fleet fires
// quality-psi-drift and quality-auc-floor; a matched fleet fires
// nothing.
func TestQualitySLOsFireOnBreachCounters(t *testing.T) {
	t0 := time.Unix(1700000000, 0)
	now := t0
	e := NewEvaluator(DefaultSLOs(), EvalOptions{Now: func() time.Time { return now }})

	fams := func(psi, auc float64) []telemetry.FamilySnapshot {
		return []telemetry.FamilySnapshot{
			counterFam("mamdr_quality_psi_breaches_total", psi),
			counterFam("mamdr_quality_auc_floor_breaches_total", auc),
		}
	}

	// Matched traffic: counters flat at zero across rounds — quiet.
	e.Eval(fams(0, 0))
	now = t0.Add(time.Minute)
	if a := e.Eval(fams(0, 0)); len(a) != 0 {
		t.Fatalf("quality SLOs fired on a matched fleet: %v", a)
	}

	// Drift: 200 PSI breaches and 100 AUC-floor breaches in 5 minutes
	// against budgets of 5/h and 3/h — both burn far past 14.4x.
	now = t0.Add(6 * time.Minute)
	alerts := e.Eval(fams(200, 100))
	fired := map[string]bool{}
	for _, a := range alerts {
		fired[a.SLO] = true
	}
	if !fired["quality-psi-drift"] || !fired["quality-auc-floor"] {
		t.Fatalf("alerts = %v, want quality-psi-drift and quality-auc-floor", alerts)
	}
	for _, st := range e.Status() {
		if st.Name == "quality-calibration" && st.Firing {
			t.Fatal("quality-calibration fired with its counter absent")
		}
	}
}

// TestServerServesQualityEndpoint exercises the HTTP surface: a server
// scraping only itself answers /quality with a well-formed go report.
func TestServerServesQualityEndpoint(t *testing.T) {
	s := NewServer(ServerOptions{Instance: "obs-test"})
	s.ScrapeOnce()

	req := httptest.NewRequest(http.MethodGet, "/quality", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/quality = %d", w.Code)
	}
	var rep QualityReport
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatalf("/quality body not JSON: %v\n%s", err, w.Body)
	}
	if !rep.Go {
		t.Fatalf("fresh fleet reports no-go: %+v", rep)
	}
}
