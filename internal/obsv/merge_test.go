package obsv

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mamdr/internal/telemetry"
	"mamdr/internal/telemetry/promtest"
)

// twoRegistries builds two process registries with the same schema and
// known values: counters 3 and 7, gauges 1.5 and 2.5, and histograms
// with identical bounds holding distinct observations.
func twoRegistries() (*telemetry.Registry, *telemetry.Registry) {
	bounds := []float64{1, 2, 4}
	a := telemetry.New()
	a.Counter("test_ops_total", "ops", telemetry.L("kind", "x")).Add(3)
	a.Gauge("test_depth", "depth").Set(1.5)
	ha := a.Histogram("test_latency", "lat", bounds)
	for _, v := range []float64{0.5, 1.5, 3, 9} {
		ha.Observe(v)
	}
	b := telemetry.New()
	b.Counter("test_ops_total", "ops", telemetry.L("kind", "x")).Add(7)
	b.Gauge("test_depth", "depth").Set(2.5)
	hb := b.Histogram("test_latency", "lat", bounds)
	for _, v := range []float64{0.25, 1.75, 5} {
		hb.Observe(v)
	}
	return a, b
}

func snapOf(t *testing.T, r *telemetry.Registry, role, instance string) telemetry.RegistrySnapshot {
	t.Helper()
	s := r.Snapshot()
	s.Role, s.Instance = role, instance
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFederateAddsInstanceLabelsAndValidates(t *testing.T) {
	a, b := twoRegistries()
	fleet, err := Federate([]telemetry.RegistrySnapshot{
		snapOf(t, a, "ps", "127.0.0.1:1"), snapOf(t, b, "ps", "127.0.0.1:2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := fleet.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	promtest.Validate(t, text)

	for _, want := range []string{
		`test_ops_total{instance="127.0.0.1:1",kind="x",role="ps"} 3`,
		`test_ops_total{instance="127.0.0.1:2",kind="x",role="ps"} 7`,
		`test_latency_count{instance="127.0.0.1:1",role="ps"} 4`,
		`test_latency_count{instance="127.0.0.1:2",role="ps"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("federated exposition missing %q\n%s", want, text)
		}
	}
}

// TestAggregateSumsBitExact pins the merge math: counters sum, and
// identical histogram schemas merge bucket-wise with integer counts —
// bit-exact, not approximately.
func TestAggregateSumsBitExact(t *testing.T) {
	a, b := twoRegistries()
	agg, err := Aggregate([]telemetry.RegistrySnapshot{
		snapOf(t, a, "ps", "i1"), snapOf(t, b, "ps", "i2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]telemetry.FamilySnapshot{}
	for _, f := range agg {
		byName[f.Name] = f
	}

	if got := byName["test_ops_total"].Series[0].Value; got != 10 {
		t.Errorf("counter sum = %v, want 10", got)
	}
	if got := byName["test_depth"].Series[0].Value; got != 4 {
		t.Errorf("gauge sum = %v, want 4", got)
	}
	h := byName["test_latency"].Series[0]
	// a: buckets [1 1 1 1] (0.5 | 1.5 | 3 | 9), b: [1 1 0 1].
	wantBuckets := []int64{2, 2, 1, 2}
	for i, w := range wantBuckets {
		if h.Buckets[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, h.Buckets[i], w)
		}
	}
	if h.Count != 7 {
		t.Errorf("merged count = %d, want 7", h.Count)
	}
	if want := 0.5 + 1.5 + 3 + 9 + 0.25 + 1.75 + 5; h.Sum != want {
		t.Errorf("merged sum = %v, want %v (bit-exact)", h.Sum, want)
	}
}

// TestMergeRejectsMismatchedSchemas pins the loud-failure contract: a
// histogram family whose instances disagree on bucket bounds must
// refuse to merge, naming the family and the offending instance.
func TestMergeRejectsMismatchedSchemas(t *testing.T) {
	a := telemetry.New()
	a.Histogram("test_latency", "lat", []float64{1, 2, 4}).Observe(1)
	b := telemetry.New()
	b.Histogram("test_latency", "lat", []float64{1, 2, 8}).Observe(1)
	snaps := []telemetry.RegistrySnapshot{snapOf(t, a, "ps", "i1"), snapOf(t, b, "ps", "i2")}

	for name, run := range map[string]func() error{
		"federate":  func() error { _, err := Federate(snaps); return err },
		"aggregate": func() error { _, err := Aggregate(snaps); return err },
	} {
		err := run()
		if err == nil {
			t.Fatalf("%s: mismatched bucket schemas merged silently", name)
		}
		for _, frag := range []string{"test_latency", "i2", "mismatched schemas"} {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("%s error %q does not mention %q", name, err, frag)
			}
		}
	}

	// Kind conflicts are rejected the same way.
	c := telemetry.New()
	c.Counter("test_latency", "now a counter").Inc()
	if _, err := Federate([]telemetry.RegistrySnapshot{snapOf(t, a, "ps", "i1"), snapOf(t, c, "ps", "i3")}); err == nil {
		t.Fatal("kind conflict merged silently")
	}
}

// TestConcurrentScrapeFederation hammers live snapshot handlers from
// concurrent scrapers while writers mutate the registries, and
// validates every federated exposition — the -race half of the merge
// satellite.
func TestConcurrentScrapeFederation(t *testing.T) {
	a, b := twoRegistries()
	sa := httptest.NewServer(telemetry.SnapshotHandler("ps", "", a))
	defer sa.Close()
	sb := httptest.NewServer(telemetry.SnapshotHandler("serve", "", b))
	defer sb.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for _, reg := range []*telemetry.Registry{a, b} {
		writers.Add(1)
		go func(reg *telemetry.Registry) {
			defer writers.Done()
			c := reg.Counter("test_ops_total", "ops", telemetry.L("kind", "x"))
			h := reg.Histogram("test_latency", "lat", []float64{1, 2, 4})
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(1.5)
				}
			}
		}(reg)
	}

	targets := []Target{
		{Role: "ps", Addr: strings.TrimPrefix(sa.URL, "http://")},
		{Role: "serve", Addr: strings.TrimPrefix(sb.URL, "http://")},
	}
	var scrapers sync.WaitGroup
	for g := 0; g < 4; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			var sc Scraper
			for i := 0; i < 10; i++ {
				results := sc.ScrapeAll(targets)
				var snaps []telemetry.RegistrySnapshot
				for _, r := range results {
					if r.Err != nil {
						t.Error(r.Err)
						return
					}
					snaps = append(snaps, r.Snap)
				}
				fleet, err := Federate(snaps)
				if err != nil {
					t.Error(err)
					return
				}
				var buf strings.Builder
				if err := fleet.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				promtest.Validate(t, buf.String())
				if _, err := Aggregate(snaps); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	writers.Wait()
}

func TestParseTargets(t *testing.T) {
	ts, err := ParseTargets("trainer=127.0.0.1:9090, ps=rpc://127.0.0.1:7000,127.0.0.1:8080")
	if err != nil {
		t.Fatal(err)
	}
	want := []Target{
		{Role: "trainer", Addr: "127.0.0.1:9090"},
		{Role: "ps", Addr: "rpc://127.0.0.1:7000"},
		{Role: "unknown", Addr: "127.0.0.1:8080"},
	}
	if len(ts) != len(want) {
		t.Fatalf("got %d targets, want %d", len(ts), len(want))
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Errorf("target[%d] = %+v, want %+v", i, ts[i], want[i])
		}
	}
	if !ts[1].RPC() || ts[0].RPC() {
		t.Error("RPC() misclassifies targets")
	}
	if _, err := ParseTargets("not-an-addr"); err == nil {
		t.Error("bad address accepted")
	}
	if _, err := ParseTargets(" , "); err == nil {
		t.Error("empty target list accepted")
	}
}
