package obsv

import (
	"math"
	"sort"
	"strings"

	"mamdr/internal/telemetry"
)

// QualityRow is one (instance, domain) slice of model quality read off
// the federated view: the streaming prequential AUC against the
// baseline frozen into the checkpoint, the calibration ratio, and the
// score/label PSI drift signals.
type QualityRow struct {
	Instance    string  `json:"instance"`
	Role        string  `json:"role,omitempty"`
	Domain      string  `json:"domain"`
	AUC         float64 `json:"auc"`
	BaselineAUC float64 `json:"baseline_auc,omitempty"`
	AUCDelta    float64 `json:"auc_delta"`
	LogLoss     float64 `json:"logloss,omitempty"`
	Calibration float64 `json:"calibration,omitempty"`
	ScorePSI    float64 `json:"score_psi"`
	LabelPSI    float64 `json:"label_psi"`
}

// maxPSI is the row's drift headline: the worse of its two PSI kinds.
func (r QualityRow) maxPSI() float64 { return math.Max(r.ScorePSI, r.LabelPSI) }

// QualityFleetRow is one instance's fleet-wide (cross-domain) quality.
type QualityFleetRow struct {
	Instance    string  `json:"instance"`
	Role        string  `json:"role,omitempty"`
	AUC         float64 `json:"auc"`
	BaselineAUC float64 `json:"baseline_auc,omitempty"`
	LogLoss     float64 `json:"logloss,omitempty"`
	Calibration float64 `json:"calibration,omitempty"`
}

// QualityReport is the JSON body of /quality: every (instance, domain)
// row, the worst offenders by AUC regression and by PSI, the quality
// SLOs currently firing, and a single go/no-go bit.
type QualityReport struct {
	Fleet           []QualityFleetRow `json:"fleet,omitempty"`
	Rows            []QualityRow      `json:"rows,omitempty"`
	WorstByAUCDelta []QualityRow      `json:"worst_by_auc_delta,omitempty"`
	WorstByPSI      []QualityRow      `json:"worst_by_psi,omitempty"`
	BaselineMissing []string          `json:"baseline_missing,omitempty"`
	Firing          []string          `json:"firing,omitempty"`
	// Go is false while any quality SLO is firing — the one bit a
	// deploy gate needs.
	Go bool `json:"go"`
}

// qualityWorstN bounds the worst-offender lists on /quality.
const qualityWorstN = 10

// labelValue returns the named label's value, or "".
func labelValue(labels []telemetry.Label, name string) string {
	for _, l := range labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// BuildQualityReport assembles the quality report from a federated
// family list (instance/role labels already applied) and the current
// SLO status. It is a pure function of its inputs so tests can feed it
// hand-built snapshots.
func BuildQualityReport(fams []telemetry.FamilySnapshot, status []SLOStatus) QualityReport {
	rep := QualityReport{Go: true}

	type rowKey struct{ instance, domain string }
	rows := map[rowKey]*QualityRow{}
	rowOf := func(labels []telemetry.Label) *QualityRow {
		k := rowKey{labelValue(labels, "instance"), labelValue(labels, "domain")}
		if k.domain == "" {
			return nil
		}
		r, ok := rows[k]
		if !ok {
			r = &QualityRow{Instance: k.instance, Role: labelValue(labels, "role"), Domain: k.domain}
			rows[k] = r
		}
		return r
	}

	fleet := map[string]*QualityFleetRow{}
	fleetOf := func(labels []telemetry.Label) *QualityFleetRow {
		inst := labelValue(labels, "instance")
		r, ok := fleet[inst]
		if !ok {
			r = &QualityFleetRow{Instance: inst, Role: labelValue(labels, "role")}
			fleet[inst] = r
		}
		return r
	}

	for _, fam := range fams {
		switch fam.Name {
		case "mamdr_quality_auc":
			for _, se := range fam.Series {
				if r := rowOf(se.Labels); r != nil {
					r.AUC = se.Value
				}
			}
		case "mamdr_quality_auc_baseline":
			for _, se := range fam.Series {
				if r := rowOf(se.Labels); r != nil {
					r.BaselineAUC = se.Value
				}
			}
		case "mamdr_quality_logloss":
			for _, se := range fam.Series {
				if r := rowOf(se.Labels); r != nil {
					r.LogLoss = se.Value
				}
			}
		case "mamdr_quality_calibration_ratio":
			for _, se := range fam.Series {
				if r := rowOf(se.Labels); r != nil {
					r.Calibration = se.Value
				}
			}
		case "mamdr_quality_psi":
			for _, se := range fam.Series {
				r := rowOf(se.Labels)
				if r == nil {
					continue
				}
				switch labelValue(se.Labels, "kind") {
				case "label":
					r.LabelPSI = se.Value
				default:
					r.ScorePSI = se.Value
				}
			}
		case "mamdr_quality_fleet_auc":
			for _, se := range fam.Series {
				fleetOf(se.Labels).AUC = se.Value
			}
		case "mamdr_quality_fleet_auc_baseline":
			for _, se := range fam.Series {
				fleetOf(se.Labels).BaselineAUC = se.Value
			}
		case "mamdr_quality_fleet_logloss":
			for _, se := range fam.Series {
				fleetOf(se.Labels).LogLoss = se.Value
			}
		case "mamdr_quality_fleet_calibration_ratio":
			for _, se := range fam.Series {
				fleetOf(se.Labels).Calibration = se.Value
			}
		case "mamdr_quality_baseline_missing":
			for _, se := range fam.Series {
				if se.Value > 0 {
					rep.BaselineMissing = append(rep.BaselineMissing, labelValue(se.Labels, "instance"))
				}
			}
		}
	}

	for _, r := range rows {
		r.AUCDelta = r.AUC - r.BaselineAUC
		rep.Rows = append(rep.Rows, *r)
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Instance != rep.Rows[j].Instance {
			return rep.Rows[i].Instance < rep.Rows[j].Instance
		}
		return rep.Rows[i].Domain < rep.Rows[j].Domain
	})
	for _, r := range fleet {
		rep.Fleet = append(rep.Fleet, *r)
	}
	sort.Slice(rep.Fleet, func(i, j int) bool { return rep.Fleet[i].Instance < rep.Fleet[j].Instance })
	sort.Strings(rep.BaselineMissing)

	// Worst offenders: most-regressed AUC first, then highest PSI first.
	byDelta := append([]QualityRow(nil), rep.Rows...)
	sort.SliceStable(byDelta, func(i, j int) bool { return byDelta[i].AUCDelta < byDelta[j].AUCDelta })
	rep.WorstByAUCDelta = topN(byDelta, qualityWorstN)
	byPSI := append([]QualityRow(nil), rep.Rows...)
	sort.SliceStable(byPSI, func(i, j int) bool { return byPSI[i].maxPSI() > byPSI[j].maxPSI() })
	rep.WorstByPSI = topN(byPSI, qualityWorstN)

	for _, st := range status {
		if st.Firing && strings.HasPrefix(st.Name, "quality-") {
			rep.Firing = append(rep.Firing, st.Name)
			rep.Go = false
		}
	}
	return rep
}

func topN(rows []QualityRow, n int) []QualityRow {
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// qualityReport snapshots the server state for /quality.
func (s *Server) qualityReport() QualityReport {
	s.mu.Lock()
	var fams []telemetry.FamilySnapshot
	if s.fleet != nil {
		fams = s.fleet.Families
	}
	s.mu.Unlock()
	return BuildQualityReport(fams, s.eval.Status())
}
