package obsv

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"mamdr/internal/telemetry"
)

// fakeSink records anomaly triggers.
type fakeSink struct {
	mu    sync.Mutex
	kinds []string
}

func (f *fakeSink) Trigger(kind string, _ map[string]any) {
	f.mu.Lock()
	f.kinds = append(f.kinds, kind)
	f.mu.Unlock()
}

func counterFam(name string, value float64) telemetry.FamilySnapshot {
	return telemetry.FamilySnapshot{
		Name: name, Kind: "counter",
		Series: []telemetry.SeriesSnapshot{{Value: value}},
	}
}

// TestCountModeBurnRateDeterministic drives a count-mode SLO through a
// full incident with a fake clock: quiet, burst (fires once), sustained
// (no re-fire), recovery (clears), second burst (fires again). The
// whole sequence is deterministic — no sleeps, no real time.
func TestCountModeBurnRateDeterministic(t *testing.T) {
	t0 := time.Unix(1700000000, 0)
	now := t0
	clock := func() time.Time { return now }

	reg := telemetry.New()
	var events bytes.Buffer
	sink := &fakeSink{}
	slo := SLO{
		Name:      "ps-rpc-failures",
		Bad:       Selector{Families: []string{"mamdr_ps_rpc_failures_total"}},
		MaxEvents: 5, BudgetWindow: time.Hour,
		Windows: []Window{{time.Minute, 10}, {5 * time.Minute, 10}},
	}
	e := NewEvaluator([]SLO{slo}, EvalOptions{
		Registry: reg, Events: telemetry.NewEventLog(&events), Flight: sink, Now: clock,
	})

	eval := func(failures float64) []Alert {
		return e.Eval([]telemetry.FamilySnapshot{counterFam("mamdr_ps_rpc_failures_total", failures)})
	}

	// Quiet baseline: two rounds, zero failures, nothing fires.
	if a := eval(0); len(a) != 0 {
		t.Fatalf("alert on first-ever eval: %v", a)
	}
	now = t0.Add(30 * time.Second)
	if a := eval(0); len(a) != 0 {
		t.Fatalf("alert with zero failures: %v", a)
	}

	// Burst: 60 failures in 60s against a 5/hour budget — burn far
	// above 10 in both windows. Exactly one rising edge.
	now = t0.Add(60 * time.Second)
	alerts := eval(60)
	if len(alerts) != 1 || alerts[0].SLO != "ps-rpc-failures" {
		t.Fatalf("burst alerts = %v, want exactly one for ps-rpc-failures", alerts)
	}
	for _, w := range []string{"1m0s", "5m0s"} {
		if alerts[0].Burns[w] < 10 {
			t.Errorf("window %s burn %v below threshold yet fired", w, alerts[0].Burns[w])
		}
	}

	// Sustained: still firing, but no re-alert on a level that stays up.
	now = t0.Add(90 * time.Second)
	if a := eval(60); len(a) != 0 {
		t.Fatalf("re-alert while still firing: %v", a)
	}
	if st := e.Status(); !st[0].Firing {
		t.Fatal("status lost the firing state while burn persists")
	}

	// Recovery: ten minutes of silence clears the alert.
	now = t0.Add(10 * time.Minute)
	if a := eval(60); len(a) != 0 {
		t.Fatalf("alert during recovery: %v", a)
	}
	if st := e.Status(); st[0].Firing {
		t.Fatal("still firing after burn stopped")
	}

	// Second incident: the alert re-arms after clearing.
	now = t0.Add(11 * time.Minute)
	if a := eval(120); len(a) != 1 {
		t.Fatalf("second burst alerts = %v, want one", a)
	}

	if got := e.Fired(); got != 2 {
		t.Errorf("Fired() = %d, want 2", got)
	}
	if got := reg.Counter("mamdr_slo_burn_alerts_total",
		"SLO burn-rate alerts fired (rising edges), by SLO name.",
		telemetry.L("slo", "ps-rpc-failures")).Value(); got != 2 {
		t.Errorf("mamdr_slo_burn_alerts_total = %d, want 2", got)
	}
	logged := events.String()
	if strings.Count(logged, `"event":"slo_burn"`) != 2 {
		t.Errorf("event log should carry two slo_burn events:\n%s", logged)
	}
	if !strings.Contains(logged, `"event":"slo_clear"`) {
		t.Errorf("event log missing slo_clear:\n%s", logged)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.kinds) != 2 || sink.kinds[0] != "slo_ps-rpc-failures" {
		t.Errorf("flight triggers = %v, want two slo_ps-rpc-failures", sink.kinds)
	}
}

// TestRatioModeWithWildcardMatch pins ratio-mode burn math and the
// "5*" status-code wildcard over labeled series.
func TestRatioModeWithWildcardMatch(t *testing.T) {
	t0 := time.Unix(1700000000, 0)
	now := t0
	slo := SLO{
		Name: "serve-http-errors",
		Bad: Selector{Families: []string{"mamdr_serve_requests_total"},
			Match: []telemetry.Label{telemetry.L("code", "5*")}},
		Total:     Selector{Families: []string{"mamdr_serve_requests_total"}},
		Objective: 0.99,
		Windows:   []Window{{time.Minute, 2}},
	}
	e := NewEvaluator([]SLO{slo}, EvalOptions{Now: func() time.Time { return now }})

	fams := func(ok, errs float64) []telemetry.FamilySnapshot {
		return []telemetry.FamilySnapshot{{
			Name: "mamdr_serve_requests_total", Kind: "counter",
			Series: []telemetry.SeriesSnapshot{
				{Labels: []telemetry.Label{telemetry.L("code", "200")}, Value: ok},
				{Labels: []telemetry.Label{telemetry.L("code", "503")}, Value: errs},
			},
		}}
	}

	e.Eval(fams(1000, 0))
	// 4% errors against a 1% budget = burn ~4, over the threshold of 2.
	now = t0.Add(time.Minute)
	if a := e.Eval(fams(1960, 40)); len(a) != 1 {
		t.Fatalf("4x budget burn did not fire: %v", a)
	}
	// 0.5% errors = burn ~0.5: clears.
	now = t0.Add(2 * time.Minute)
	e.Eval(fams(2955, 45))
	if st := e.Status(); st[0].Firing {
		t.Error("sub-budget error ratio still firing")
	}
}

// TestSelectorHistogramAbove pins the latency-SLO selector: Above
// counts only observations in buckets beyond the threshold.
func TestSelectorHistogramAbove(t *testing.T) {
	fam := telemetry.FamilySnapshot{
		Name: "mamdr_serve_request_seconds", Kind: "histogram",
		Bounds: []float64{0.1, 0.5, 1},
		Series: []telemetry.SeriesSnapshot{{
			Buckets: []int64{10, 5, 3, 2}, // ≤0.1, ≤0.5, ≤1, +Inf
			Count:   20, Sum: 9,
		}},
	}
	sel := Selector{Families: []string{"mamdr_serve_request_seconds"}, Above: 0.5}
	if got := sel.Eval([]telemetry.FamilySnapshot{fam}); got != 5 {
		t.Errorf("Above=0.5 counted %v observations, want 5 (bucket ≤1 plus +Inf)", got)
	}
	total := Selector{Families: []string{"mamdr_serve_request_seconds"}}
	if got := total.Eval([]telemetry.FamilySnapshot{fam}); got != 20 {
		t.Errorf("total count = %v, want 20", got)
	}
}

// TestDefaultSLOsAreWellFormed keeps the shipped SLO set evaluable:
// every SLO survives defaulting and a no-data eval without firing.
func TestDefaultSLOsAreWellFormed(t *testing.T) {
	e := NewEvaluator(DefaultSLOs(), EvalOptions{})
	if a := e.Eval(nil); len(a) != 0 {
		t.Fatalf("default SLOs fired with no data: %v", a)
	}
	for _, st := range e.Status() {
		if st.Firing {
			t.Errorf("SLO %s firing with no data", st.Name)
		}
		if len(st.Windows) == 0 {
			t.Errorf("SLO %s has no burn windows after defaulting", st.Name)
		}
	}
}
