// Package obsv is the fleet-observability layer: it federates the
// per-process telemetry registries of a distributed MAMDR deployment
// (trainer, PS shards, serve replicas) into one pane of glass, burns
// SLO error budgets against the federated series, and keeps a bounded
// ring of pprof profiles so every alert ships with the evidence needed
// to explain it. It depends only on internal/telemetry, internal/trace,
// and the standard library.
package obsv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/rpc"
	"strings"
	"time"

	"mamdr/internal/telemetry"
)

// Target is one scrape endpoint. Addr is "host:port" for processes
// exposing /metrics/snapshot over HTTP (trainer, serve) or
// "rpc://host:port" for gob-RPC PS shards, which speak no HTTP.
type Target struct {
	Role string
	Addr string
}

// RPC reports whether the target is scraped over the PS gob-RPC path.
func (t Target) RPC() bool { return strings.HasPrefix(t.Addr, "rpc://") }

// String renders the target the way ParseTargets accepts it.
func (t Target) String() string {
	if t.Role == "" {
		return t.Addr
	}
	return t.Role + "=" + t.Addr
}

// ParseTargets parses a comma-separated scrape list. Each entry is
// either "addr" or "role=addr"; "rpc://" addresses default to role
// "ps", plain addresses to role "unknown" (the snapshot's own Role, if
// set, wins either way).
func ParseTargets(s string) ([]Target, error) {
	var out []Target
	for _, raw := range strings.Split(s, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		t := Target{Addr: raw}
		if role, addr, ok := strings.Cut(raw, "="); ok {
			t.Role, t.Addr = role, addr
		}
		host := strings.TrimPrefix(t.Addr, "rpc://")
		if _, _, err := net.SplitHostPort(host); err != nil {
			return nil, fmt.Errorf("obsv: bad scrape target %q: %w", raw, err)
		}
		if t.Role == "" {
			if t.RPC() {
				t.Role = "ps"
			} else {
				t.Role = "unknown"
			}
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("obsv: no scrape targets in %q", s)
	}
	return out, nil
}

// Scraper pulls RegistrySnapshots from targets. The zero value works;
// Timeout defaults to 3s per target.
type Scraper struct {
	Timeout time.Duration
}

func (s Scraper) timeout() time.Duration {
	if s.Timeout <= 0 {
		return 3 * time.Second
	}
	return s.Timeout
}

// Scrape fetches and validates one target's snapshot, filling in Role
// and Instance when the serving side left them blank.
func (s Scraper) Scrape(t Target) (telemetry.RegistrySnapshot, error) {
	var snap telemetry.RegistrySnapshot
	var err error
	if t.RPC() {
		snap, err = s.scrapeRPC(strings.TrimPrefix(t.Addr, "rpc://"))
	} else {
		snap, err = s.scrapeHTTP(t.Addr)
	}
	if err != nil {
		return snap, fmt.Errorf("obsv: scrape %s: %w", t, err)
	}
	if err := snap.Validate(); err != nil {
		return snap, fmt.Errorf("obsv: scrape %s: %w", t, err)
	}
	if snap.Role == "" {
		snap.Role = t.Role
	}
	if snap.Instance == "" {
		snap.Instance = strings.TrimPrefix(t.Addr, "rpc://")
	}
	return snap, nil
}

func (s Scraper) scrapeHTTP(addr string) (telemetry.RegistrySnapshot, error) {
	var snap telemetry.RegistrySnapshot
	client := http.Client{Timeout: s.timeout()}
	resp, err := client.Get("http://" + addr + "/metrics/snapshot")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("status %s", resp.Status)
	}
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}

// scrapeRPC pulls the snapshot over the PS shard's gob-RPC surface.
// The empty args struct gob-decodes into ps.Nothing on the far side,
// so obsv does not need to import internal/ps.
func (s Scraper) scrapeRPC(addr string) (telemetry.RegistrySnapshot, error) {
	var snap telemetry.RegistrySnapshot
	conn, err := net.DialTimeout("tcp", addr, s.timeout())
	if err != nil {
		return snap, err
	}
	conn.SetDeadline(time.Now().Add(s.timeout()))
	client := rpc.NewClient(conn)
	defer client.Close()
	return snap, client.Call("PS.MetricsSnapshot", struct{}{}, &snap)
}

// ScrapeResult pairs one target with its snapshot or scrape error.
type ScrapeResult struct {
	Target Target
	Snap   telemetry.RegistrySnapshot
	Err    error
}

// ScrapeAll scrapes every target concurrently and returns results in
// target order; failed targets carry their error instead of a snapshot.
func (s Scraper) ScrapeAll(targets []Target) []ScrapeResult {
	out := make([]ScrapeResult, len(targets))
	done := make(chan int, len(targets))
	for i, t := range targets {
		go func(i int, t Target) {
			snap, err := s.Scrape(t)
			out[i] = ScrapeResult{Target: t, Snap: snap, Err: err}
			done <- i
		}(i, t)
	}
	for range targets {
		<-done
	}
	return out
}
