package obsv

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mamdr/internal/trace"
)

// TestProfilerRingBounded pins the ring contract: capture rounds keep
// producing profiles, but at most Keep files of each kind survive, and
// the survivors are the newest.
func TestProfilerRingBounded(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfileOptions{Dir: dir, Keep: 2, CPUDuration: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.CaptureOnce(context.Background())
	}
	heaps, _ := filepath.Glob(filepath.Join(dir, "heap-*.pprof"))
	if len(heaps) != 2 {
		t.Fatalf("heap ring holds %d files, want 2: %v", len(heaps), heaps)
	}
	// Zero-padded sequence numbers: the survivors must be the newest.
	if filepath.Base(heaps[len(heaps)-1]) != "heap-000005.pprof" {
		t.Errorf("newest heap profile is %s, want heap-000005.pprof", heaps[len(heaps)-1])
	}
	cpus, _ := filepath.Glob(filepath.Join(dir, "cpu-*.pprof"))
	if len(cpus) > 2 {
		t.Fatalf("cpu ring holds %d files, want <= 2", len(cpus))
	}
	for _, f := range p.Ring() {
		st, err := os.Stat(f)
		if err != nil || st.Size() == 0 {
			t.Errorf("ring file %s empty or unreadable (%v)", f, err)
		}
	}
}

// TestProfilerDumpsWithFlightRecorder wires the profiler into a flight
// recorder's dump hook: triggering an anomaly must copy the profile
// ring next to the trace dump.
func TestProfilerDumpsWithFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfileOptions{Dir: filepath.Join(dir, "ring"), Keep: 3, CPUDuration: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	p.CaptureOnce(context.Background())

	fr := trace.NewFlightRecorder(8, filepath.Join(dir, "flight"))
	fr.SetOnDump(func(d trace.Dump) {
		p.DumpTo(filepath.Join(dir, "flight-"+d.Kind+"-profiles"))
	})
	fr.Trigger("nan_loss", map[string]any{"domain": "a"})

	dumped, _ := filepath.Glob(filepath.Join(dir, "flight-nan_loss-profiles", "*.pprof"))
	if len(dumped) == 0 {
		t.Fatal("anomaly dump carried no profiles")
	}
	if len(fr.Dumps()) != 1 {
		t.Fatalf("flight recorder dumps = %d, want 1", len(fr.Dumps()))
	}
}
