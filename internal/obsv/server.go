package obsv

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"mamdr/internal/telemetry"
)

// ServerOptions configures the fleet-observability server behind
// cmd/mamdr-obs.
type ServerOptions struct {
	// Targets are the processes to scrape.
	Targets []Target
	// Interval between scrape rounds. Default 5s.
	Interval time.Duration
	// Timeout per scrape. Default 3s.
	Timeout time.Duration
	// SLOs to burn against the aggregated series. Nil means
	// DefaultSLOs; an explicit empty slice disables SLO evaluation.
	SLOs []SLO
	// Events receives the JSONL audit trail (scrape errors, slo_burn,
	// slo_clear). Nil disables.
	Events *telemetry.EventLog
	// Flight receives a trigger per rising-edge alert so the dump
	// carries recent span history.
	Flight telemetry.AnomalySink
	// Instance names this process in its own federated view.
	Instance string
	// Now is the SLO clock; nil means time.Now.
	Now func() time.Time
}

// Server scrapes the fleet on a cadence, maintains the latest
// federated and aggregated views, evaluates SLOs, and serves the
// results over HTTP. The observer observes itself too: its registry
// (scrape counters, alert counters, build info) joins the federation
// as role "obs".
type Server struct {
	opts    ServerOptions
	reg     *telemetry.Registry
	scraper Scraper
	eval    *Evaluator

	scrapes   *telemetry.Counter
	scrapeErr *telemetry.Counter
	scrapeDur *telemetry.Histogram

	mu        sync.Mutex
	fleet     *Fleet
	agg       []telemetry.FamilySnapshot
	lastErrs  []string
	lastRound time.Time
}

// NewServer builds the server; SLO evaluation shares the server's own
// registry so mamdr_slo_burn_alerts_total federates like any series.
func NewServer(opts ServerOptions) *Server {
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Second
	}
	if opts.SLOs == nil {
		opts.SLOs = DefaultSLOs()
	}
	if opts.Instance == "" {
		opts.Instance = "mamdr-obs"
	}
	reg := telemetry.New()
	RegisterBuildInfo(reg, "obs")
	s := &Server{
		opts:    opts,
		reg:     reg,
		scraper: Scraper{Timeout: opts.Timeout},
		eval: NewEvaluator(opts.SLOs, EvalOptions{
			Registry: reg, Events: opts.Events, Flight: opts.Flight, Now: opts.Now,
		}),
		scrapes: reg.Counter("mamdr_obs_scrapes_total",
			"Fleet scrape attempts across all targets."),
		scrapeErr: reg.Counter("mamdr_obs_scrape_errors_total",
			"Fleet scrapes that failed (unreachable target, bad snapshot)."),
		scrapeDur: reg.Histogram("mamdr_obs_scrape_round_seconds",
			"Wall time of one full scrape round.", telemetry.DefBuckets),
	}
	return s
}

// Registry exposes the server's own metrics registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// ScrapeOnce runs one round: scrape every target, fold in the
// server's own registry, federate, aggregate, evaluate SLOs. It
// returns the rising-edge alerts from this round. Scrape failures
// degrade the view (the instance is simply absent) rather than failing
// the round.
func (s *Server) ScrapeOnce() []Alert {
	start := time.Now()
	results := s.scraper.ScrapeAll(s.opts.Targets)

	var snaps []telemetry.RegistrySnapshot
	var errs []string
	for _, r := range results {
		s.scrapes.Inc()
		if r.Err != nil {
			s.scrapeErr.Inc()
			errs = append(errs, r.Err.Error())
			s.opts.Events.Log("scrape_error", map[string]any{"target": r.Target.String(), "error": r.Err.Error()})
			continue
		}
		snaps = append(snaps, r.Snap)
	}
	s.scrapeDur.Observe(time.Since(start).Seconds())

	self := s.reg.Snapshot()
	self.Role, self.Instance = "obs", s.opts.Instance
	snaps = append(snaps, self)

	fleet, err := Federate(snaps)
	if err != nil {
		errs = append(errs, err.Error())
		s.opts.Events.Log("federate_error", map[string]any{"error": err.Error()})
	}
	agg, aerr := Aggregate(snaps)
	if aerr != nil {
		errs = append(errs, aerr.Error())
	}

	var alerts []Alert
	if aerr == nil {
		alerts = s.eval.Eval(agg)
	}

	s.mu.Lock()
	if err == nil {
		s.fleet = fleet
	}
	if aerr == nil {
		s.agg = agg
	}
	s.lastErrs = errs
	s.lastRound = time.Now()
	s.mu.Unlock()
	return alerts
}

// Run scrapes on the configured cadence until ctx is done. The first
// round runs immediately.
func (s *Server) Run(ctx context.Context) {
	ticker := time.NewTicker(s.opts.Interval)
	defer ticker.Stop()
	for {
		s.ScrapeOnce()
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// Fired returns the total rising-edge alerts so far.
func (s *Server) Fired() int64 { return s.eval.Fired() }

// Status returns the current per-SLO burn state.
func (s *Server) Status() []SLOStatus { return s.eval.Status() }

// Summary is the JSON body of /metrics/summary.
type Summary struct {
	Instances    []InstanceInfo `json:"instances"`
	Families     int            `json:"families"`
	Series       int            `json:"series"`
	ScrapeErrors []string       `json:"scrape_errors,omitempty"`
	AlertsFired  int64          `json:"alerts_fired"`
	LastRound    time.Time      `json:"last_round"`
}

func (s *Server) summary() Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := Summary{AlertsFired: s.eval.Fired(), LastRound: s.lastRound,
		ScrapeErrors: append([]string(nil), s.lastErrs...)}
	if s.fleet != nil {
		sum.Instances = s.fleet.Instances
		sum.Families = len(s.fleet.Families)
		for _, f := range s.fleet.Families {
			sum.Series += len(f.Series)
		}
	}
	return sum
}

// Handler serves the observability surface:
//
//	GET /              -> live HTML dashboard
//	GET /metrics       -> federated Prometheus exposition (all instances)
//	GET /metrics/summary -> JSON fleet summary
//	GET /slo           -> JSON SLO status
//	GET /quality       -> JSON model-quality report (worst domains, drift, go/no-go)
//	GET /healthz       -> liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		fleet := s.fleet
		s.mu.Unlock()
		w.Header().Set("Content-Type", telemetry.ContentType)
		if fleet != nil {
			fleet.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/metrics/summary", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.summary())
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Fired int64       `json:"alerts_fired"`
			SLOs  []SLOStatus `json:"slos"`
		}{s.eval.Fired(), s.eval.Status()})
	})
	mux.HandleFunc("/quality", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.qualityReport())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(dashboardHTML))
	})
	return mux
}
