package obsv

import (
	"fmt"
	"sync"
	"time"

	"mamdr/internal/telemetry"
)

// Selector picks a scalar out of aggregated families: the sum of every
// matching series. For counters and gauges the series value is used;
// for histograms the observation count — or, with Above set, only the
// observations that landed in buckets above that bound, which is how a
// latency SLO counts "requests slower than X" without storing raw
// samples.
type Selector struct {
	// Families are the family names to sum over.
	Families []string `json:"families"`
	// Match keeps only series carrying every listed label. A value
	// ending in "*" prefix-matches, so code="5*" selects all 5xx
	// status codes.
	Match []telemetry.Label `json:"match,omitempty"`
	// Above, for histogram families, counts only observations in
	// buckets whose upper bound exceeds it (bucket granularity: a
	// bucket straddling the threshold counts in full). Zero means the
	// total observation count.
	Above float64 `json:"above,omitempty"`
}

// Eval sums the selector over aggregated families.
func (sel Selector) Eval(fams []telemetry.FamilySnapshot) float64 {
	var total float64
	for _, fam := range fams {
		if !contains(sel.Families, fam.Name) {
			continue
		}
		for _, se := range fam.Series {
			if !sel.matches(se.Labels) {
				continue
			}
			switch {
			case fam.Kind != "histogram":
				total += se.Value
			case sel.Above > 0:
				for i, bound := range fam.Bounds {
					if bound > sel.Above {
						total += float64(se.Buckets[i])
					}
				}
				total += float64(se.Buckets[len(fam.Bounds)]) // +Inf overflow
			default:
				total += float64(se.Count)
			}
		}
	}
	return total
}

func (sel Selector) matches(labels []telemetry.Label) bool {
	for _, m := range sel.Match {
		found := false
		for _, l := range labels {
			if l.Name != m.Name {
				continue
			}
			if n := len(m.Value); n > 0 && m.Value[n-1] == '*' {
				found = len(l.Value) >= n-1 && l.Value[:n-1] == m.Value[:n-1]
			} else {
				found = l.Value == m.Value
			}
			break
		}
		if !found {
			return false
		}
	}
	return true
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Window is one burn-rate evaluation window. An SLO fires only when
// EVERY window's burn rate is at or above its MaxBurn — the classic
// multi-window rule: the long window proves the budget is really
// burning, the short window proves it is burning right now (and resets
// fast once the incident ends).
type Window struct {
	Duration time.Duration `json:"duration"`
	MaxBurn  float64       `json:"max_burn"`
}

// SLO is one declarative objective over the federated series. Two
// modes:
//
//   - Ratio: Total is set. The error ratio Bad/Total is compared to
//     the budget 1-Objective; burn = ratio / (1-Objective).
//   - Count: Total is empty. Bad events are budgeted at MaxEvents per
//     BudgetWindow; burn = observed rate / budget rate.
type SLO struct {
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	Bad         Selector `json:"bad"`
	Total       Selector `json:"total,omitempty"`
	// Objective is the target good fraction for ratio mode (0.99 =
	// "99% of requests succeed").
	Objective float64 `json:"objective,omitempty"`
	// MaxEvents per BudgetWindow is the count-mode budget.
	MaxEvents    float64       `json:"max_events,omitempty"`
	BudgetWindow time.Duration `json:"budget_window,omitempty"`
	Windows      []Window      `json:"windows,omitempty"`
}

func (s SLO) ratioMode() bool { return len(s.Total.Families) > 0 }

func (s SLO) withDefaults() SLO {
	if s.BudgetWindow <= 0 {
		s.BudgetWindow = time.Hour
	}
	if len(s.Windows) == 0 {
		// Page-tier defaults from the multiwindow burn-rate playbook:
		// 14.4x burn exhausts a 30-day budget in ~2 days.
		s.Windows = []Window{{5 * time.Minute, 14.4}, {time.Hour, 14.4}}
	}
	return s
}

// DefaultSLOs covers the fleet's critical paths. Serve SLOs are ratio
// mode against request traffic; training-side SLOs are count mode —
// RPC failures, worker deaths, and loss anomalies are budgeted
// absolute events, not fractions of a denominator that training does
// not have.
func DefaultSLOs() []SLO {
	return []SLO{
		{
			Name:        "serve-http-errors",
			Description: "99% of serve HTTP responses are non-5xx.",
			Bad: Selector{Families: []string{"mamdr_serve_requests_total"},
				Match: []telemetry.Label{telemetry.L("code", "5*")}},
			Total:     Selector{Families: []string{"mamdr_serve_requests_total"}},
			Objective: 0.99,
		},
		{
			Name:        "serve-latency",
			Description: "99% of predictions complete within 500ms.",
			Bad:         Selector{Families: []string{"mamdr_serve_request_seconds"}, Above: 0.5},
			Total:       Selector{Families: []string{"mamdr_serve_request_seconds"}},
			Objective:   0.99,
		},
		{
			Name:        "ps-rpc-failures",
			Description: "Worker-to-PS RPC failures stay within 5 per hour.",
			Bad:         Selector{Families: []string{"mamdr_ps_rpc_failures_total"}},
			MaxEvents:   5,
		},
		{
			Name:        "worker-deaths",
			Description: "At most 1 worker death per hour.",
			Bad:         Selector{Families: []string{"mamdr_ps_worker_deaths_total"}},
			MaxEvents:   1,
		},
		{
			Name:        "train-anomalies",
			Description: "NaN losses and loss spikes stay within 3 per hour.",
			Bad:         Selector{Families: []string{"mamdr_anomalies_total"}},
			MaxEvents:   3,
		},
		// Quality SLOs burn against the breach counters the quality
		// trackers emit (internal/quality): each breach is one quality
		// check that found the fleet AUC under its floor, a domain's PSI
		// over its ceiling, or a calibration ratio outside its band.
		// Count mode keeps the burn engine unchanged — model-quality
		// checks have no request denominator.
		{
			Name:        "quality-auc-floor",
			Description: "Fleet windowed AUC stays above its floor (at most 3 breach checks per hour).",
			Bad:         Selector{Families: []string{"mamdr_quality_auc_floor_breaches_total"}},
			MaxEvents:   3,
		},
		{
			Name:        "quality-psi-drift",
			Description: "Per-domain score/label PSI stays under its ceiling (at most 5 breach checks per hour).",
			Bad:         Selector{Families: []string{"mamdr_quality_psi_breaches_total"}},
			MaxEvents:   5,
		},
		{
			Name:        "quality-calibration",
			Description: "Per-domain calibration ratio stays in band (at most 5 breach checks per hour).",
			Bad:         Selector{Families: []string{"mamdr_quality_calibration_breaches_total"}},
			MaxEvents:   5,
		},
		// A canary auto-rollback means a bad snapshot reached the serving
		// fleet and the gate caught it — the system worked, but the
		// publication pipeline shipped a regression. One is an incident;
		// promotions burn nothing.
		{
			Name:        "rollout-rollbacks",
			Description: "Canary auto-rollbacks are incidents: at most 1 per hour.",
			Bad: Selector{Families: []string{"mamdr_rollout_decisions_total"},
				Match: []telemetry.Label{telemetry.L("decision", "rollback")}},
			MaxEvents: 1,
		},
	}
}

// obsPoint is one cumulative observation of an SLO's selectors.
type obsPoint struct {
	t          time.Time
	bad, total float64
}

// Alert is one rising-edge burn-rate firing.
type Alert struct {
	SLO   string             `json:"slo"`
	Time  time.Time          `json:"time"`
	Burns map[string]float64 `json:"burns"` // window duration -> burn
	Bad   float64            `json:"bad"`
	Total float64            `json:"total,omitempty"`
}

// WindowStatus is one window's current burn for the /slo endpoint.
type WindowStatus struct {
	Window  string  `json:"window"`
	Burn    float64 `json:"burn"`
	MaxBurn float64 `json:"max_burn"`
}

// SLOStatus is one SLO's current state for the /slo endpoint.
type SLOStatus struct {
	Name        string         `json:"name"`
	Description string         `json:"description,omitempty"`
	Mode        string         `json:"mode"`
	Firing      bool           `json:"firing"`
	Bad         float64        `json:"bad"`
	Total       float64        `json:"total,omitempty"`
	Windows     []WindowStatus `json:"windows"`
}

// EvalOptions wires an Evaluator into the process's observability: a
// registry for the alert counter, an event log for the JSONL audit
// trail, and an anomaly sink (typically a flight recorder) so every
// alert ships with recent span history.
type EvalOptions struct {
	Registry *telemetry.Registry
	Events   *telemetry.EventLog
	Flight   telemetry.AnomalySink
	// Now is the evaluation clock; nil means time.Now. Tests inject a
	// fake clock to make burn windows deterministic.
	Now func() time.Time
}

// Evaluator burns SLO budgets against successive aggregated snapshots
// of the fleet. Call Eval after every scrape round; it tracks
// cumulative selector values over time and applies each SLO's
// multi-window rule. Safe for concurrent use.
type Evaluator struct {
	slos []SLO
	opts EvalOptions

	mu     sync.Mutex
	hist   map[string][]obsPoint
	firing map[string]bool
	status []SLOStatus
	fired  int64
}

// NewEvaluator builds an evaluator over the given SLOs (defaults
// applied per SLO).
func NewEvaluator(slos []SLO, opts EvalOptions) *Evaluator {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	withDefaults := make([]SLO, len(slos))
	for i, s := range slos {
		withDefaults[i] = s.withDefaults()
	}
	return &Evaluator{
		slos:   withDefaults,
		opts:   opts,
		hist:   map[string][]obsPoint{},
		firing: map[string]bool{},
	}
}

// Eval records one aggregated fleet snapshot and returns the alerts
// that fired on this evaluation (rising edges only; an SLO that keeps
// burning does not re-alert until it clears first).
func (e *Evaluator) Eval(fams []telemetry.FamilySnapshot) []Alert {
	now := e.opts.Now()
	var alerts []Alert

	e.mu.Lock()
	defer e.mu.Unlock()
	e.status = e.status[:0]
	for _, slo := range e.slos {
		bad := slo.Bad.Eval(fams)
		var total float64
		if slo.ratioMode() {
			total = slo.Total.Eval(fams)
		}
		pts := append(e.hist[slo.Name], obsPoint{t: now, bad: bad, total: total})
		pts = prune(pts, now.Add(-2*maxWindow(slo.Windows)))
		e.hist[slo.Name] = pts

		st := SLOStatus{Name: slo.Name, Description: slo.Description, Mode: "count", Bad: bad, Total: total}
		if slo.ratioMode() {
			st.Mode = "ratio"
		}
		allBurning := true
		burns := map[string]float64{}
		for _, w := range slo.Windows {
			burn := e.burn(slo, pts, now, w.Duration)
			burns[w.Duration.String()] = burn
			st.Windows = append(st.Windows, WindowStatus{Window: w.Duration.String(), Burn: burn, MaxBurn: w.MaxBurn})
			if burn < w.MaxBurn {
				allBurning = false
			}
		}

		was := e.firing[slo.Name]
		e.firing[slo.Name] = allBurning
		st.Firing = allBurning
		e.status = append(e.status, st)
		switch {
		case allBurning && !was:
			e.fired++
			a := Alert{SLO: slo.Name, Time: now, Burns: burns, Bad: bad, Total: total}
			alerts = append(alerts, a)
			e.alertCounter(slo.Name).Inc()
			fields := map[string]any{"slo": slo.Name, "bad": bad, "total": total}
			for wd, b := range burns {
				fields["burn_"+wd] = b
			}
			e.opts.Events.Log("slo_burn", fields)
			if e.opts.Flight != nil {
				e.opts.Flight.Trigger("slo_"+slo.Name, fields)
			}
		case was && !allBurning:
			e.opts.Events.Log("slo_clear", map[string]any{"slo": slo.Name})
		}
	}
	return alerts
}

// burn computes one window's burn rate from the cumulative history.
func (e *Evaluator) burn(slo SLO, pts []obsPoint, now time.Time, window time.Duration) float64 {
	ref, ok := reference(pts, now.Add(-window))
	if !ok {
		return 0
	}
	cur := pts[len(pts)-1]
	dBad := cur.bad - ref.bad
	if dBad <= 0 {
		return 0
	}
	if slo.ratioMode() {
		dTotal := cur.total - ref.total
		if dTotal <= 0 {
			return 0
		}
		budget := 1 - slo.Objective
		if budget <= 0 {
			budget = 1e-9
		}
		return (dBad / dTotal) / budget
	}
	elapsed := cur.t.Sub(ref.t)
	if elapsed <= 0 {
		// A single-point history cannot express a rate; treat any bad
		// event as one budget-window's worth so a cold-started monitor
		// still reacts to faults it scraped mid-incident.
		return dBad / slo.MaxEvents
	}
	rate := dBad / elapsed.Seconds()
	budgetRate := slo.MaxEvents / slo.BudgetWindow.Seconds()
	if budgetRate <= 0 {
		budgetRate = 1e-9
	}
	return rate / budgetRate
}

// reference returns the newest point at or before cutoff, or the
// oldest point when history does not yet span the window (the standard
// partial-window behavior: better an early read than a blind one).
func reference(pts []obsPoint, cutoff time.Time) (obsPoint, bool) {
	if len(pts) < 2 {
		return obsPoint{}, false
	}
	ref := pts[0]
	for _, p := range pts[:len(pts)-1] {
		if p.t.After(cutoff) {
			break
		}
		ref = p
	}
	return ref, true
}

func prune(pts []obsPoint, cutoff time.Time) []obsPoint {
	i := 0
	for i < len(pts)-1 && pts[i].t.Before(cutoff) {
		i++
	}
	return pts[i:]
}

func maxWindow(ws []Window) time.Duration {
	var max time.Duration
	for _, w := range ws {
		if w.Duration > max {
			max = w.Duration
		}
	}
	if max <= 0 {
		max = time.Hour
	}
	return max
}

func (e *Evaluator) alertCounter(slo string) *telemetry.Counter {
	if e.opts.Registry == nil {
		return nil
	}
	return e.opts.Registry.Counter("mamdr_slo_burn_alerts_total",
		"SLO burn-rate alerts fired (rising edges), by SLO name.",
		telemetry.L("slo", slo))
}

// Status returns every SLO's state as of the last Eval.
func (e *Evaluator) Status() []SLOStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]SLOStatus(nil), e.status...)
}

// Fired returns the total rising-edge alerts since construction.
func (e *Evaluator) Fired() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fired
}

// String renders a one-line summary, used by mamdr-obs's exit report.
func (a Alert) String() string {
	return fmt.Sprintf("slo=%s bad=%g total=%g burns=%v", a.SLO, a.Bad, a.Total, a.Burns)
}
