package obsv

// dashboardHTML is the self-contained live dashboard served at "/": no
// external assets, no build step — it polls /metrics/summary, /slo and
// /quality and renders the fleet, its error budgets, and model quality
// in place.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>mamdr fleet</title>
<style>
  body { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 2rem; background: #0b0e14; color: #d6dbe4; }
  h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.6rem; }
  table { border-collapse: collapse; margin-top: .5rem; }
  th, td { padding: .25rem .7rem; border-bottom: 1px solid #232936; text-align: left; }
  th { color: #8a93a5; font-weight: normal; }
  .ok { color: #7fd962; } .bad { color: #ff6666; font-weight: bold; }
  .dim { color: #8a93a5; }
  #err { color: #ffb454; white-space: pre-wrap; }
</style>
</head>
<body>
<h1>mamdr fleet observability</h1>
<div class="dim">last round: <span id="round">–</span> ·
  alerts fired: <span id="fired">0</span> ·
  <a href="/metrics" style="color:#59c2ff">federated /metrics</a></div>
<div id="err"></div>
<h2>instances</h2>
<table id="inst"><thead><tr><th>role</th><th>instance</th><th>series</th><th>taken</th></tr></thead><tbody></tbody></table>
<h2>SLOs</h2>
<table id="slos"><thead><tr><th>slo</th><th>mode</th><th>bad</th><th>total</th><th>windows (burn / max)</th><th>state</th></tr></thead><tbody></tbody></table>
<h2>model quality <span id="qgo" class="ok">GO</span></h2>
<div class="dim" id="qmissing"></div>
<table id="quality"><thead><tr><th>instance</th><th>domain</th><th>auc</th><th>baseline</th><th>&Delta;auc</th><th>calib</th><th>psi(score)</th><th>psi(label)</th></tr></thead><tbody></tbody></table>
<script>
async function tick() {
  try {
    const sum = await (await fetch('/metrics/summary')).json();
    document.getElementById('round').textContent = sum.last_round;
    document.getElementById('fired').textContent = sum.alerts_fired;
    document.getElementById('err').textContent = (sum.scrape_errors || []).join('\n');
    const it = document.querySelector('#inst tbody'); it.innerHTML = '';
    for (const i of (sum.instances || [])) {
      const tr = document.createElement('tr');
      const taken = new Date(i.taken_unix_nano / 1e6).toLocaleTimeString();
      for (const v of [i.role, i.instance, i.series, taken]) {
        const td = document.createElement('td'); td.textContent = v; tr.appendChild(td);
      }
      it.appendChild(tr);
    }
    const slo = await (await fetch('/slo')).json();
    const st = document.querySelector('#slos tbody'); st.innerHTML = '';
    for (const s of (slo.slos || [])) {
      const tr = document.createElement('tr');
      const wins = (s.windows || []).map(w => w.window + ': ' + w.burn.toFixed(2) + ' / ' + w.max_burn).join('  ');
      const cells = [s.name, s.mode, s.bad, s.total || '', wins];
      for (const v of cells) {
        const td = document.createElement('td'); td.textContent = v; tr.appendChild(td);
      }
      const td = document.createElement('td');
      td.textContent = s.firing ? 'FIRING' : 'ok';
      td.className = s.firing ? 'bad' : 'ok';
      tr.appendChild(td);
      st.appendChild(tr);
    }
    const q = await (await fetch('/quality')).json();
    const go = document.getElementById('qgo');
    go.textContent = q.go ? 'GO' : 'NO-GO: ' + (q.firing || []).join(', ');
    go.className = q.go ? 'ok' : 'bad';
    document.getElementById('qmissing').textContent = (q.baseline_missing || []).length
      ? 'baseline missing (drift detection disabled): ' + q.baseline_missing.join(', ') : '';
    const qt = document.querySelector('#quality tbody'); qt.innerHTML = '';
    // Worst PSI first — the rows an operator acts on.
    for (const r of (q.worst_by_psi || [])) {
      const tr = document.createElement('tr');
      const fmt = v => (v === undefined || v === null) ? '–' : (+v).toFixed(3);
      const cells = [r.instance, r.domain, fmt(r.auc), fmt(r.baseline_auc),
                     fmt(r.auc_delta), fmt(r.calibration), fmt(r.score_psi), fmt(r.label_psi)];
      cells.forEach((v, i) => {
        const td = document.createElement('td'); td.textContent = v;
        if (i === 4 && r.auc_delta < -0.05) td.className = 'bad';
        if ((i === 6 && r.score_psi > 0.25) || (i === 7 && r.label_psi > 0.25)) td.className = 'bad';
        tr.appendChild(td);
      });
      qt.appendChild(tr);
    }
  } catch (e) {
    document.getElementById('err').textContent = 'dashboard: ' + e;
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
