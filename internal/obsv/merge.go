package obsv

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"mamdr/internal/telemetry"
)

// Fleet is the federated view of N scraped registries: every family
// merged by name, every series annotated with the instance and role it
// came from. Families keep first-seen order; series within a family
// are sorted by label signature, so two Federate calls over the same
// snapshots render byte-identical expositions.
type Fleet struct {
	// Instances records which processes contributed, in scrape order.
	Instances []InstanceInfo `json:"instances"`
	// Families is the merged per-instance view (instance/role labels
	// added to every series).
	Families []telemetry.FamilySnapshot `json:"families"`
}

// InstanceInfo identifies one contributing process.
type InstanceInfo struct {
	Role          string `json:"role"`
	Instance      string `json:"instance"`
	TakenUnixNano int64  `json:"taken_unix_nano"`
	Series        int    `json:"series"`
}

// Federate merges snapshots into one per-instance fleet view. Families
// sharing a name must agree on kind and (for histograms) bucket
// schema; a mismatch is rejected loudly — silently coercing bucket
// layouts would corrupt every percentile read off the merged data.
func Federate(snaps []telemetry.RegistrySnapshot) (*Fleet, error) {
	f := &Fleet{}
	byName := map[string]int{}
	for _, snap := range snaps {
		info := InstanceInfo{Role: snap.Role, Instance: snap.Instance, TakenUnixNano: snap.TakenUnixNano}
		for _, fam := range snap.Families {
			idx, ok := byName[fam.Name]
			if !ok {
				idx = len(f.Families)
				byName[fam.Name] = idx
				f.Families = append(f.Families, telemetry.FamilySnapshot{
					Name: fam.Name, Help: fam.Help, Kind: fam.Kind,
					Bounds: append([]float64(nil), fam.Bounds...),
				})
			} else if err := compatible(f.Families[idx], fam, snap.Instance); err != nil {
				return nil, err
			}
			for _, se := range fam.Series {
				labeled := telemetry.SeriesSnapshot{
					Labels: fleetLabels(se.Labels, snap.Instance, snap.Role),
					Value:  se.Value,
					Sum:    se.Sum,
					Count:  se.Count,
				}
				if len(se.Buckets) > 0 {
					labeled.Buckets = append([]int64(nil), se.Buckets...)
				}
				f.Families[idx].Series = append(f.Families[idx].Series, labeled)
				info.Series++
			}
		}
		f.Instances = append(f.Instances, info)
	}
	for i := range f.Families {
		sortSeries(f.Families[i].Series)
	}
	return f, nil
}

// Aggregate collapses snapshots into fleet totals: series with the
// same family and label set are merged across instances — counters and
// gauges sum their values, histograms merge bucket-wise (schemas must
// match exactly) and add their sums and counts. The result is what the
// SLO engine burns against: one series per logical metric, regardless
// of how many processes emit it.
func Aggregate(snaps []telemetry.RegistrySnapshot) ([]telemetry.FamilySnapshot, error) {
	var out []telemetry.FamilySnapshot
	byName := map[string]int{}
	type key struct {
		fam int
		sig string
	}
	bySeries := map[key]int{}
	for _, snap := range snaps {
		for _, fam := range snap.Families {
			idx, ok := byName[fam.Name]
			if !ok {
				idx = len(out)
				byName[fam.Name] = idx
				out = append(out, telemetry.FamilySnapshot{
					Name: fam.Name, Help: fam.Help, Kind: fam.Kind,
					Bounds: append([]float64(nil), fam.Bounds...),
				})
			} else if err := compatible(out[idx], fam, snap.Instance); err != nil {
				return nil, err
			}
			for _, se := range fam.Series {
				k := key{fam: idx, sig: signature(se.Labels)}
				si, ok := bySeries[k]
				if !ok {
					si = len(out[idx].Series)
					bySeries[k] = si
					fresh := telemetry.SeriesSnapshot{Labels: sortedLabels(se.Labels)}
					if fam.Kind == "histogram" {
						fresh.Buckets = make([]int64, len(fam.Bounds)+1)
					}
					out[idx].Series = append(out[idx].Series, fresh)
				}
				dst := &out[idx].Series[si]
				dst.Value += se.Value
				dst.Sum += se.Sum
				dst.Count += se.Count
				for b := range se.Buckets {
					dst.Buckets[b] += se.Buckets[b]
				}
			}
		}
	}
	for i := range out {
		sortSeries(out[i].Series)
	}
	return out, nil
}

// compatible rejects family merges that would mix kinds or bucket
// schemas.
func compatible(have telemetry.FamilySnapshot, next telemetry.FamilySnapshot, instance string) error {
	if have.Kind != next.Kind {
		return fmt.Errorf("obsv: family %s: kind %q from instance %q conflicts with %q",
			next.Name, next.Kind, instance, have.Kind)
	}
	if len(have.Bounds) != len(next.Bounds) {
		return fmt.Errorf("obsv: histogram %s: instance %q has %d bucket bounds, fleet schema has %d — refusing to merge mismatched schemas",
			next.Name, instance, len(next.Bounds), len(have.Bounds))
	}
	for i := range have.Bounds {
		if have.Bounds[i] != next.Bounds[i] {
			return fmt.Errorf("obsv: histogram %s: instance %q bound[%d]=%g differs from fleet schema %g — refusing to merge mismatched schemas",
				next.Name, instance, i, next.Bounds[i], have.Bounds[i])
		}
	}
	return nil
}

// fleetLabels returns the series labels plus instance/role, sorted by
// name. A series-level instance/role label from the source wins — the
// source knows better than the scraper.
func fleetLabels(labels []telemetry.Label, instance, role string) []telemetry.Label {
	out := make([]telemetry.Label, 0, len(labels)+2)
	hasInstance, hasRole := false, false
	for _, l := range labels {
		if l.Name == "instance" {
			hasInstance = true
		}
		if l.Name == "role" {
			hasRole = true
		}
		out = append(out, l)
	}
	if !hasInstance && instance != "" {
		out = append(out, telemetry.L("instance", instance))
	}
	if !hasRole && role != "" {
		out = append(out, telemetry.L("role", role))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func sortedLabels(labels []telemetry.Label) []telemetry.Label {
	out := append([]telemetry.Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func sortSeries(ss []telemetry.SeriesSnapshot) {
	sort.Slice(ss, func(i, j int) bool { return signature(ss[i].Labels) < signature(ss[j].Labels) })
}

// WritePrometheus renders the federated view in the text exposition
// format, matching telemetry.Registry.WritePrometheus line for line so
// the same scrapers and validators read both.
func (f *Fleet) WritePrometheus(w io.Writer) error {
	return WriteFamilies(w, f.Families)
}

// WriteFamilies renders any family list (federated or aggregated) as a
// Prometheus text exposition.
func WriteFamilies(w io.Writer, fams []telemetry.FamilySnapshot) error {
	bw := bufio.NewWriter(w)
	for _, fam := range fams {
		if len(fam.Series) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.Name, fam.Kind)
		for _, se := range fam.Series {
			sig := signature(se.Labels)
			if fam.Kind != "histogram" {
				writeSample(bw, fam.Name, "", sig, "", se.Value)
				continue
			}
			var cum int64
			for i, bound := range fam.Bounds {
				cum += se.Buckets[i]
				writeSample(bw, fam.Name, "_bucket", sig, `le="`+formatFloat(bound)+`"`, float64(cum))
			}
			writeSample(bw, fam.Name, "_bucket", sig, `le="+Inf"`, float64(se.Count))
			writeSample(bw, fam.Name, "_sum", sig, "", se.Sum)
			writeSample(bw, fam.Name, "_count", sig, "", float64(se.Count))
		}
	}
	return bw.Flush()
}

// signature renders labels as sorted exposition pairs — the merge key
// for cross-instance aggregation and the label block of rendered
// samples.
func signature(labels []telemetry.Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := sortedLabels(labels)
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func writeSample(w io.Writer, name, suffix, sig, extra string, v float64) {
	labels := sig
	if extra != "" {
		if labels != "" {
			labels += "," + extra
		} else {
			labels = extra
		}
	}
	if labels != "" {
		fmt.Fprintf(w, "%s%s{%s} %s\n", name, suffix, labels, formatFloat(v))
	} else {
		fmt.Fprintf(w, "%s%s %s\n", name, suffix, formatFloat(v))
	}
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
