package obsv

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"mamdr/internal/autograd/kernels"
	"mamdr/internal/telemetry"
)

// Version identifies this build of the repo in federated views. There
// is no release process yet, so it tracks the PR sequence.
const Version = "0.7.0"

// RegisterBuildInfo registers the mamdr_build_info gauge: constant 1,
// with the build identity in labels, the Prometheus idiom for faceting
// fleet metrics by code version. In a heterogeneous fleet (a canary
// serve replica on a newer build, shards on different kernel backends)
// the federated view joins on these labels to tell the populations
// apart.
func RegisterBuildInfo(reg *telemetry.Registry, role string) {
	if reg == nil {
		return
	}
	reg.Gauge("mamdr_build_info",
		"Build identity of this process; constant 1, the information is in the labels.",
		telemetry.L("go_version", runtime.Version()),
		telemetry.L("kernel_backend", kernels.Default().Name()),
		telemetry.L("role", role),
		telemetry.L("threads", strconv.Itoa(kernels.Threads())),
		telemetry.L("version", Version),
	).Set(1)
}

// SnapshotInfoPublisher returns the hook a serving process calls every
// time a snapshot becomes its incumbent (boot, publish, promote). The
// identity lands as mamdr_snapshot_info{role,version,crc} = 1 — the
// same labels-carry-the-information idiom as mamdr_build_info, so a
// federated view can tell which replica serves which checkpoint during
// a rollout. The previously published series is zeroed: exactly one
// series per process is 1 at any time.
func SnapshotInfoPublisher(reg *telemetry.Registry, role string) func(version uint64, crc uint32) {
	if reg == nil {
		return func(uint64, uint32) {}
	}
	var mu sync.Mutex
	var prev *telemetry.Gauge
	return func(version uint64, crc uint32) {
		g := reg.Gauge("mamdr_snapshot_info",
			"Serving snapshot identity of this process; constant 1, the information is in the labels.",
			telemetry.L("crc", fmt.Sprintf("%08x", crc)),
			telemetry.L("role", role),
			telemetry.L("version", strconv.FormatUint(version, 10)),
		)
		mu.Lock()
		if prev != nil && prev != g {
			prev.Set(0)
		}
		prev = g
		mu.Unlock()
		g.Set(1)
	}
}
