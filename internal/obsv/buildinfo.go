package obsv

import (
	"runtime"
	"strconv"

	"mamdr/internal/autograd/kernels"
	"mamdr/internal/telemetry"
)

// Version identifies this build of the repo in federated views. There
// is no release process yet, so it tracks the PR sequence.
const Version = "0.7.0"

// RegisterBuildInfo registers the mamdr_build_info gauge: constant 1,
// with the build identity in labels, the Prometheus idiom for faceting
// fleet metrics by code version. In a heterogeneous fleet (a canary
// serve replica on a newer build, shards on different kernel backends)
// the federated view joins on these labels to tell the populations
// apart.
func RegisterBuildInfo(reg *telemetry.Registry, role string) {
	if reg == nil {
		return
	}
	reg.Gauge("mamdr_build_info",
		"Build identity of this process; constant 1, the information is in the labels.",
		telemetry.L("go_version", runtime.Version()),
		telemetry.L("kernel_backend", kernels.Default().Name()),
		telemetry.L("role", role),
		telemetry.L("threads", strconv.Itoa(kernels.Threads())),
		telemetry.L("version", Version),
	).Set(1)
}
