package obsv

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// ProfileOptions configures a Profiler.
type ProfileOptions struct {
	// Dir receives the profile ring files (created if missing).
	Dir string
	// Interval between capture rounds. Default 30s.
	Interval time.Duration
	// CPUDuration is how long each CPU profile samples. Default 2s.
	// Zero-interval CPU capture is impossible; captures shorter than
	// the scheduler quantum see nothing.
	CPUDuration time.Duration
	// Keep bounds the ring: at most Keep files of each kind survive.
	// Default 8.
	Keep int
}

func (o ProfileOptions) withDefaults() ProfileOptions {
	if o.Interval <= 0 {
		o.Interval = 30 * time.Second
	}
	if o.CPUDuration <= 0 {
		o.CPUDuration = 2 * time.Second
	}
	if o.CPUDuration > o.Interval {
		o.CPUDuration = o.Interval / 2
	}
	if o.Keep <= 0 {
		o.Keep = 8
	}
	return o
}

// Profiler periodically captures pprof CPU and heap profiles into a
// bounded on-disk ring, so "what was the process doing just before the
// alert" is answerable after the fact without having had pprof
// attached in advance. DumpTo copies the ring next to a flight-record
// dump; wire it via trace.FlightRecorder.SetOnDump.
//
// CPU profiling is exclusive per process: if something else (a test
// -cpuprofile, an explicit pprof session) holds the profiler, the
// round skips CPU and still captures heap.
type Profiler struct {
	opts ProfileOptions

	mu  sync.Mutex
	seq int
}

// NewProfiler builds a profiler; the directory is created eagerly so
// misconfiguration surfaces at startup, not at the first anomaly.
func NewProfiler(opts ProfileOptions) (*Profiler, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("obsv: profiler needs a directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obsv: profile dir: %w", err)
	}
	return &Profiler{opts: opts}, nil
}

// Run captures profiles until ctx is done. Errors are swallowed after
// the first capture round — the profiler must never take down the
// process it is observing.
func (p *Profiler) Run(ctx context.Context) {
	if p == nil {
		return
	}
	ticker := time.NewTicker(p.opts.Interval)
	defer ticker.Stop()
	for {
		p.CaptureOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// CaptureOnce runs one capture round: a CPU profile (if the process
// profiler is free) and a heap profile, then prunes the ring.
func (p *Profiler) CaptureOnce(ctx context.Context) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.seq++
	seq := p.seq
	p.mu.Unlock()

	p.captureCPU(ctx, seq)
	p.captureHeap(seq)
	p.pruneRing()
}

func (p *Profiler) captureCPU(ctx context.Context, seq int) {
	f, err := os.Create(p.ringPath("cpu", seq))
	if err != nil {
		return
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another profiler holds the CPU sampler; drop the empty file.
		os.Remove(f.Name())
		return
	}
	select {
	case <-ctx.Done():
	case <-time.After(p.opts.CPUDuration):
	}
	pprof.StopCPUProfile()
}

func (p *Profiler) captureHeap(seq int) {
	f, err := os.Create(p.ringPath("heap", seq))
	if err != nil {
		return
	}
	defer f.Close()
	runtime.GC() // fold recent frees in, the standard pre-heap-profile hygiene
	pprof.WriteHeapProfile(f)
}

func (p *Profiler) ringPath(kind string, seq int) string {
	return filepath.Join(p.opts.Dir, fmt.Sprintf("%s-%06d.pprof", kind, seq))
}

// pruneRing deletes the oldest files of each kind beyond Keep.
func (p *Profiler) pruneRing() {
	for _, kind := range []string{"cpu", "heap"} {
		files, err := filepath.Glob(filepath.Join(p.opts.Dir, kind+"-*.pprof"))
		if err != nil {
			continue
		}
		sort.Strings(files) // zero-padded sequence numbers sort chronologically
		for len(files) > p.opts.Keep {
			os.Remove(files[0])
			files = files[1:]
		}
	}
}

// Ring lists the current ring files, oldest first.
func (p *Profiler) Ring() []string {
	if p == nil {
		return nil
	}
	var out []string
	for _, kind := range []string{"cpu", "heap"} {
		files, _ := filepath.Glob(filepath.Join(p.opts.Dir, kind+"-*.pprof"))
		out = append(out, files...)
	}
	sort.Strings(out)
	return out
}

// DumpTo copies the ring into dir (created if needed) — called from a
// flight-recorder dump hook so the profiles land beside the trace
// file. Failures are swallowed for the same reason the recorder
// swallows its own.
func (p *Profiler) DumpTo(dir string) {
	if p == nil || dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	for _, src := range p.Ring() {
		copyFile(src, filepath.Join(dir, filepath.Base(src)))
	}
}

func copyFile(src, dst string) {
	in, err := os.Open(src)
	if err != nil {
		return
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return
	}
	defer out.Close()
	io.Copy(out, in)
}
