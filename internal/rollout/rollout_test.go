package rollout

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeFleet records gate verdicts.
type fakeFleet struct {
	mu       sync.Mutex
	promoted []uint64
	rolledB  []uint64
}

func (f *fakeFleet) PromoteCanary(v uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.promoted = append(f.promoted, v)
	return nil
}

func (f *fakeFleet) RollbackCanary(v uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rolledB = append(f.rolledB, v)
	return nil
}

func (f *fakeFleet) counts() (int, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.promoted), len(f.rolledB)
}

// feedLabeled streams informative (score, label) pairs to one arm:
// flip=false is a good model (score tracks label), flip=true an
// anti-correlated one — the label-flipped poisoned snapshot.
func feedLabeled(c *Controller, version uint64, rng *rand.Rand, n int, flip bool) {
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		labels[i] = rng.Float64() < 0.5
		good := labels[i]
		if flip {
			good = !good
		}
		if good {
			scores[i] = 0.6 + 0.3*rng.Float64()
		} else {
			scores[i] = 0.1 + 0.3*rng.Float64()
		}
	}
	c.ObserveLabeled(version, scores, labels)
}

func gateConfig(decided *[]Decision) Config {
	return Config{
		MinLabeled: 100, MinScores: 100, AUCMargin: 0.05,
		MaxWait: time.Minute,
		OnDecision: func(d Decision) {
			*decided = append(*decided, d)
		},
	}
}

func TestCleanCanaryPromotes(t *testing.T) {
	var decided []Decision
	fleet := &fakeFleet{}
	c := New(fleet, nil, nil, gateConfig(&decided))
	if err := c.Begin(2, 1); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Active(); !ok || v != 2 {
		t.Fatalf("Active = %d,%v after Begin", v, ok)
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		feedLabeled(c, 1, rng, 20, false)
		feedLabeled(c, 2, rng, 20, false)
	}
	p, r := fleet.counts()
	if p != 1 || r != 0 {
		t.Fatalf("promoted %d rolled back %d, want 1/0", p, r)
	}
	if len(decided) != 1 || decided[0].Action != "promote" || decided[0].Reason != "clean" {
		t.Fatalf("decisions = %+v", decided)
	}
	if _, ok := c.Active(); ok {
		t.Fatal("canary still active after promotion")
	}
	if !strings.Contains(decided[0].String(), "rollout_decision=promote") {
		t.Fatalf("decision line not greppable: %s", decided[0].String())
	}

	// Only one decision per evaluation: further observations are inert.
	feedLabeled(c, 2, rng, 200, false)
	if p, r := fleet.counts(); p != 1 || r != 0 {
		t.Fatalf("late observations re-decided: %d/%d", p, r)
	}
}

func TestQualityRegressionRollsBackOnAUC(t *testing.T) {
	var decided []Decision
	fleet := &fakeFleet{}
	c := New(fleet, nil, nil, gateConfig(&decided))
	if err := c.Begin(3, 1); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		feedLabeled(c, 1, rng, 20, false)
		feedLabeled(c, 3, rng, 20, true) // poisoned: scores anti-correlate with labels
	}
	p, r := fleet.counts()
	if p != 0 || r != 1 {
		t.Fatalf("promoted %d rolled back %d, want 0/1", p, r)
	}
	d := decided[0]
	if d.Action != "rollback" || d.Reason != "auc" {
		t.Fatalf("decision = %+v", d)
	}
	if d.CanaryAUC >= d.IncumbentAUC {
		t.Fatalf("evidence inverted: canary %.3f vs incumbent %.3f", d.CanaryAUC, d.IncumbentAUC)
	}
	if fleet.rolledB[0] != 3 {
		t.Fatalf("rolled back version %d, want 3", fleet.rolledB[0])
	}
}

func TestScoreShiftRollsBackOnPSIWithoutLabels(t *testing.T) {
	var decided []Decision
	fleet := &fakeFleet{}
	c := New(fleet, nil, nil, gateConfig(&decided))
	if err := c.Begin(4, 1); err != nil {
		t.Fatal(err)
	}
	// Scores only — no label ever arrives, yet the shifted distribution
	// is enough to kill the canary.
	low := make([]float64, 50)
	high := make([]float64, 50)
	for i := range low {
		low[i], high[i] = 0.1+0.001*float64(i), 0.85+0.001*float64(i)
	}
	for i := 0; i < 3; i++ {
		c.ObserveScores(1, low)
		c.ObserveScores(4, high)
	}
	p, r := fleet.counts()
	if p != 0 || r != 1 {
		t.Fatalf("promoted %d rolled back %d, want 0/1", p, r)
	}
	d := decided[0]
	if d.Reason != "psi" || d.PSI <= 0.25 {
		t.Fatalf("decision = %+v", d)
	}
	if d.CanaryLabeled != 0 {
		t.Fatalf("PSI rollback claims %d labels", d.CanaryLabeled)
	}
}

func TestUnprovenCanaryRollsBackAtDeadline(t *testing.T) {
	var decided []Decision
	fleet := &fakeFleet{}
	now := time.Unix(1000, 0)
	cfg := gateConfig(&decided)
	cfg.Now = func() time.Time { return now }
	c := New(fleet, nil, nil, cfg)
	if err := c.Begin(5, 1); err != nil {
		t.Fatal(err)
	}
	if d := c.Tick(); d != nil {
		t.Fatalf("Tick decided early: %+v", d)
	}
	now = now.Add(cfg.MaxWait + time.Second)
	d := c.Tick()
	if d == nil || d.Action != "rollback" || d.Reason != "deadline" {
		t.Fatalf("deadline Tick = %+v", d)
	}
	if d.Elapsed <= cfg.MaxWait {
		t.Fatalf("elapsed %v not past deadline", d.Elapsed)
	}
	if p, r := fleet.counts(); p != 0 || r != 1 {
		t.Fatalf("promoted %d rolled back %d, want 0/1", p, r)
	}
}

func TestSingleCanaryInFlight(t *testing.T) {
	c := New(&fakeFleet{}, nil, nil, Config{})
	if err := c.Begin(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(3, 1); err == nil || !strings.Contains(err.Error(), "already under evaluation") {
		t.Fatalf("second Begin = %v", err)
	}
	if d := c.Cancel(); d == nil || d.Reason != "manual" {
		t.Fatalf("Cancel = %+v", d)
	}
	// After the manual rollback the slot frees up.
	if err := c.Begin(3, 1); err != nil {
		t.Fatalf("Begin after Cancel: %v", err)
	}
}

func TestForeignVersionObservationsAreDropped(t *testing.T) {
	var decided []Decision
	fleet := &fakeFleet{}
	c := New(fleet, nil, nil, gateConfig(&decided))
	if err := c.Begin(2, 1); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	// Version 9 matches neither arm: a prediction scored by a snapshot
	// retired before this canary began. It must count toward nothing.
	for i := 0; i < 20; i++ {
		feedLabeled(c, 9, rng, 20, true)
	}
	st := c.Status()
	if st.CanaryLabeled != 0 || st.IncumbentLabeled != 0 {
		t.Fatalf("foreign labels leaked into arms: %+v", st)
	}
	if p, r := fleet.counts(); p != 0 || r != 0 {
		t.Fatalf("foreign observations decided: %d/%d", p, r)
	}

	// A nil controller (rollout disabled) absorbs everything quietly.
	var nilC *Controller
	nilC.ObserveScores(1, []float64{0.5})
	nilC.ObserveLabeled(1, []float64{0.5}, []bool{true})
	if d := nilC.Tick(); d != nil {
		t.Fatal("nil controller decided")
	}
	if st := nilC.Status(); st.Active {
		t.Fatal("nil controller active")
	}
}

func TestStatusReportsEvidence(t *testing.T) {
	var decided []Decision
	c := New(&fakeFleet{}, nil, nil, gateConfig(&decided))
	if err := c.Begin(7, 6); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	feedLabeled(c, 7, rng, 30, false)
	c.ObserveScores(6, []float64{0.2, 0.3, 0.4})
	st := c.Status()
	if !st.Active || st.Version != 7 || st.Incumbent != 6 {
		t.Fatalf("status = %+v", st)
	}
	if st.CanaryLabeled != 30 || st.IncumbentScores != 3 {
		t.Fatalf("evidence counts wrong: %+v", st)
	}
}
