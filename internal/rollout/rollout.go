// Package rollout is the canary gate for live snapshot publication —
// the piece that makes rollout, not training, the safe moment in the
// paper's continuously-retrained deployment (§V). A newly published
// snapshot serves a configurable fraction of traffic as a canary while
// the incumbent keeps the rest; the Controller accumulates each arm's
// windowed prequential AUC/logloss and score distribution (the same
// O(1)-memory machinery internal/quality uses for drift detection) and,
// once minimum-evidence thresholds are met, either promotes the canary
// or rolls it back automatically:
//
//	rollback  when the canary's windowed AUC trails the incumbent's by
//	          more than AUCMargin, its logloss exceeds the incumbent's
//	          by more than LogLossMargin, or the PSI between the two
//	          arms' score distributions exceeds PSIMax (a poisoned model
//	          usually shows up in its score histogram long before enough
//	          labels arrive to move AUC);
//	promote   when the labeled-evidence threshold is met on both arms
//	          and no gate is breached;
//	rollback  (fail-safe) when MaxWait elapses without a verdict — a
//	          canary that cannot prove itself does not get promoted by
//	          timeout.
//
// Every decision emits telemetry (mamdr_rollout_decisions_total and the
// active-canary gauges), a trace span, and — on rollback — a
// flight-recorder dump, so a 3am auto-rollback leaves a full forensic
// trail. The Controller never touches the serving data path: the serve
// package routes traffic and reports observations; the Fleet interface
// is the only way back.
package rollout

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mamdr/internal/quality"
	"mamdr/internal/telemetry"
	"mamdr/internal/trace"
)

// Fleet is the serving side of the gate: the controller decides,
// the fleet executes. Implemented by serve.Server.
type Fleet interface {
	// PromoteCanary makes the canary snapshot the incumbent and retires
	// the previous incumbent.
	PromoteCanary(version uint64) error
	// RollbackCanary drops the canary snapshot; the incumbent — pinned
	// in memory the whole time — keeps serving untouched.
	RollbackCanary(version uint64) error
}

// Config tunes the gate. Zero values take defaults.
type Config struct {
	// Fraction is the share of traffic the canary takes (default 0.2).
	Fraction float64
	// MinLabeled is the labeled-observation evidence each arm needs
	// before the AUC/logloss gates may issue a verdict (default 200).
	MinLabeled int
	// MinScores is the (unlabeled) score evidence each arm needs before
	// the PSI gate may fire (default 500). Scores accrue at serving
	// rate, so PSI is usually the first gate with enough evidence.
	MinScores int
	// AUCMargin: roll back when canary AUC < incumbent AUC − AUCMargin
	// (default 0.02).
	AUCMargin float64
	// LogLossMargin: roll back when canary logloss > incumbent logloss
	// + LogLossMargin (default 0.05).
	LogLossMargin float64
	// PSIMax: roll back when the PSI between the two arms' score
	// histograms exceeds this (default 0.25, the conventional
	// major-shift threshold).
	PSIMax float64
	// MaxWait is the fail-safe deadline: a canary still unproven after
	// this long is rolled back, never promoted by default (default 10m).
	// Enforced by Tick, which the owner must call periodically.
	MaxWait time.Duration
	// Window and Bins size each arm's evaluators (defaults 2048 and
	// quality's streaming-AUC default).
	Window, Bins int
	// Now is the clock, injectable for tests (nil = time.Now).
	Now func() time.Time
	// OnDecision, when non-nil, runs after every decision has been
	// applied to the fleet — the hook smoke tests and CLIs print from.
	OnDecision func(Decision)
}

func (c Config) withDefaults() Config {
	if c.Fraction <= 0 || c.Fraction > 1 {
		c.Fraction = 0.2
	}
	if c.MinLabeled <= 0 {
		c.MinLabeled = 200
	}
	if c.MinScores <= 0 {
		c.MinScores = 500
	}
	if c.AUCMargin <= 0 {
		c.AUCMargin = 0.02
	}
	if c.LogLossMargin <= 0 {
		c.LogLossMargin = 0.05
	}
	if c.PSIMax <= 0 {
		c.PSIMax = 0.25
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 10 * time.Minute
	}
	if c.Window <= 0 {
		c.Window = 2048
	}
	if c.Bins <= 0 {
		c.Bins = quality.DefaultBins
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Decision records one verdict, promote or rollback, with the evidence
// it was issued on.
type Decision struct {
	Version   uint64        `json:"version"`
	Incumbent uint64        `json:"incumbent"`
	Action    string        `json:"action"` // "promote" or "rollback"
	Reason    string        `json:"reason"` // "clean", "auc", "logloss", "psi", "deadline", "manual"
	Detail    string        `json:"detail"`
	Elapsed   time.Duration `json:"elapsed_ns"`

	CanaryAUC        float64 `json:"canary_auc"`
	IncumbentAUC     float64 `json:"incumbent_auc"`
	CanaryLogLoss    float64 `json:"canary_logloss"`
	IncumbentLogLoss float64 `json:"incumbent_logloss"`
	PSI              float64 `json:"psi"`
	CanaryLabeled    int     `json:"canary_labeled"`
	IncumbentLabeled int     `json:"incumbent_labeled"`

	// FleetErr is the fleet call's failure, if any — the decision was
	// still recorded, but the swap did not happen.
	FleetErr string `json:"fleet_err,omitempty"`
}

// String is the greppable one-line form smoke tests assert on.
func (d Decision) String() string {
	return fmt.Sprintf("rollout_decision=%s version=%d reason=%s canary_auc=%.4f incumbent_auc=%.4f psi=%.4f labeled=%d/%d elapsed=%s",
		d.Action, d.Version, d.Reason, d.CanaryAUC, d.IncumbentAUC, d.PSI,
		d.CanaryLabeled, d.IncumbentLabeled, d.Elapsed.Round(time.Millisecond))
}

// arm is one side's evaluators.
type arm struct {
	eval   *quality.WindowEval
	scores *quality.ScoreWindow
}

// evaluation is one in-flight canary.
type evaluation struct {
	version   uint64
	incumbent uint64
	started   time.Time
	canary    *arm
	incArm    *arm
}

// Status is the GET /admin/rollout view.
type Status struct {
	Active           bool      `json:"active"`
	Version          uint64    `json:"version,omitempty"`
	Incumbent        uint64    `json:"incumbent"`
	Fraction         float64   `json:"fraction,omitempty"`
	ElapsedMS        int64     `json:"elapsed_ms,omitempty"`
	CanaryLabeled    int       `json:"canary_labeled,omitempty"`
	IncumbentLabeled int       `json:"incumbent_labeled,omitempty"`
	CanaryScores     int       `json:"canary_scores,omitempty"`
	IncumbentScores  int       `json:"incumbent_scores,omitempty"`
	CanaryAUC        float64   `json:"canary_auc,omitempty"`
	IncumbentAUC     float64   `json:"incumbent_auc,omitempty"`
	PSI              float64   `json:"psi,omitempty"`
	LastDecision     *Decision `json:"last_decision,omitempty"`
}

// Controller owns at most one canary evaluation at a time. All methods
// are safe for concurrent use; observation methods are nil-receiver
// safe so a serve.Server without a rollout gate costs nothing.
type Controller struct {
	cfg    Config
	fleet  Fleet
	tracer *trace.Tracer

	activeGauge  *telemetry.Gauge
	versionGauge *telemetry.Gauge
	unattributed *telemetry.Counter
	reg          *telemetry.Registry

	mu   sync.Mutex
	cur  *evaluation
	last *Decision
}

// New builds a controller deciding for fleet. reg may be nil (a private
// registry is used); tracer may be nil (spans and flight dumps are
// dropped).
func New(fleet Fleet, reg *telemetry.Registry, tracer *trace.Tracer, cfg Config) *Controller {
	if reg == nil {
		reg = telemetry.New()
	}
	c := &Controller{cfg: cfg.withDefaults(), fleet: fleet, tracer: tracer, reg: reg}
	c.activeGauge = reg.Gauge("mamdr_rollout_canary_active",
		"1 while a canary snapshot is under evaluation, else 0.")
	c.versionGauge = reg.Gauge("mamdr_rollout_canary_version",
		"Version of the canary snapshot under evaluation (0 when none).")
	c.unattributed = reg.Counter("mamdr_rollout_unattributed_total",
		"Labeled observations whose snapshot version matched neither rollout arm (dropped, not misattributed).")
	return c
}

// Fraction returns the canary traffic share the gate was configured
// with.
func (c *Controller) Fraction() float64 {
	if c == nil {
		return 0
	}
	return c.cfg.Fraction
}

// Begin starts evaluating version as a canary against the given
// incumbent. At most one canary is in flight; a second Begin fails.
func (c *Controller) Begin(version, incumbent uint64) error {
	if c == nil {
		return fmt.Errorf("rollout: no controller configured")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur != nil {
		return fmt.Errorf("rollout: canary v%d already under evaluation", c.cur.version)
	}
	c.cur = &evaluation{
		version:   version,
		incumbent: incumbent,
		started:   c.cfg.Now(),
		canary:    &arm{eval: quality.NewWindowEval(c.cfg.Window, c.cfg.Bins), scores: quality.NewScoreWindow(c.cfg.Window, c.cfg.Bins)},
		incArm:    &arm{eval: quality.NewWindowEval(c.cfg.Window, c.cfg.Bins), scores: quality.NewScoreWindow(c.cfg.Window, c.cfg.Bins)},
	}
	c.activeGauge.Set(1)
	c.versionGauge.Set(float64(version))
	return nil
}

// Active reports the in-flight canary version, if any.
func (c *Controller) Active() (uint64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return 0, false
	}
	return c.cur.version, true
}

// armOfLocked routes an observation to the arm owning version, nil when
// no evaluation is in flight or the version matches neither arm (a
// prediction served before the canary began, or by an already-retired
// snapshot — feeding it anywhere would pollute the comparison).
func (c *Controller) armOfLocked(version uint64) *arm {
	if c.cur == nil {
		return nil
	}
	switch version {
	case c.cur.version:
		return c.cur.canary
	case c.cur.incumbent:
		return c.cur.incArm
	}
	return nil
}

// ObserveScores feeds one arm's served scores (no labels yet) — the
// dense signal the PSI gate runs on. The decision check runs inline:
// score evidence alone can roll a distribution-shifted canary back.
func (c *Controller) ObserveScores(version uint64, scores []float64) {
	if c == nil || len(scores) == 0 {
		return
	}
	c.mu.Lock()
	a := c.armOfLocked(version)
	if a == nil {
		c.mu.Unlock()
		return
	}
	for _, s := range scores {
		a.scores.Add(s)
	}
	d := c.maybeDecideLocked(false)
	c.mu.Unlock()
	c.apply(d)
}

// ObserveLabeled feeds one arm's joined feedback. Labeled evidence
// drives the AUC and logloss gates; each call also re-checks the gate.
func (c *Controller) ObserveLabeled(version uint64, scores []float64, labels []bool) {
	if c == nil || len(scores) == 0 || len(scores) != len(labels) {
		return
	}
	c.mu.Lock()
	a := c.armOfLocked(version)
	if a == nil {
		if c.cur != nil {
			c.unattributed.Add(int64(len(scores)))
		}
		c.mu.Unlock()
		return
	}
	for i, s := range scores {
		a.eval.Add(s, labels[i])
	}
	d := c.maybeDecideLocked(false)
	c.mu.Unlock()
	c.apply(d)
}

// Tick enforces the MaxWait fail-safe; the owner calls it periodically
// (and tests call it directly). It returns the decision applied, if
// any.
func (c *Controller) Tick() *Decision {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	d := c.maybeDecideLocked(true)
	c.mu.Unlock()
	c.apply(d)
	return d
}

// Cancel rolls back the in-flight canary unconditionally — the manual
// override behind POST /admin/rollback.
func (c *Controller) Cancel() *Decision {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	if c.cur == nil {
		c.mu.Unlock()
		return nil
	}
	d := c.decisionLocked("rollback", "manual", "operator rollback")
	c.mu.Unlock()
	c.apply(d)
	return d
}

// maybeDecideLocked evaluates the gates against the current evidence
// and, when one fires, consumes the evaluation and returns the decision
// for the caller to apply outside the lock. fromTick additionally arms
// the deadline gate.
func (c *Controller) maybeDecideLocked(fromTick bool) *Decision {
	e := c.cur
	if e == nil {
		return nil
	}

	// PSI gate: pure score evidence, usually available first.
	if e.canary.scores.Count() >= c.cfg.MinScores && e.incArm.scores.Count() >= c.cfg.MinScores {
		psi := quality.PSI(e.incArm.scores.Histogram(quality.DefaultPSIBins), e.canary.scores.Histogram(quality.DefaultPSIBins))
		if psi > c.cfg.PSIMax {
			return c.decisionLocked("rollback", "psi",
				fmt.Sprintf("canary-vs-incumbent score PSI %.4f > %.4f", psi, c.cfg.PSIMax))
		}
	}

	// AUC/logloss gates: need labeled evidence on both arms.
	if e.canary.eval.Count() >= c.cfg.MinLabeled && e.incArm.eval.Count() >= c.cfg.MinLabeled {
		cAUC, iAUC := e.canary.eval.AUC(), e.incArm.eval.AUC()
		cLL, iLL := e.canary.eval.LogLoss(), e.incArm.eval.LogLoss()
		switch {
		case cAUC < iAUC-c.cfg.AUCMargin:
			return c.decisionLocked("rollback", "auc",
				fmt.Sprintf("canary AUC %.4f < incumbent %.4f − %.4f", cAUC, iAUC, c.cfg.AUCMargin))
		case cLL > iLL+c.cfg.LogLossMargin:
			return c.decisionLocked("rollback", "logloss",
				fmt.Sprintf("canary logloss %.4f > incumbent %.4f + %.4f", cLL, iLL, c.cfg.LogLossMargin))
		default:
			return c.decisionLocked("promote", "clean", "evidence met, no gate breached")
		}
	}

	// Fail-safe deadline: an unproven canary is rolled back, never
	// promoted by timeout.
	if fromTick && c.cfg.Now().Sub(e.started) > c.cfg.MaxWait {
		return c.decisionLocked("rollback", "deadline",
			fmt.Sprintf("no verdict after %s (labeled %d/%d, need %d)",
				c.cfg.MaxWait, e.canary.eval.Count(), e.incArm.eval.Count(), c.cfg.MinLabeled))
	}
	return nil
}

// decisionLocked snapshots the evidence into a Decision and consumes
// the evaluation. The caller applies the decision after unlocking.
func (c *Controller) decisionLocked(action, reason, detail string) *Decision {
	e := c.cur
	d := &Decision{
		Version:          e.version,
		Incumbent:        e.incumbent,
		Action:           action,
		Reason:           reason,
		Detail:           detail,
		Elapsed:          c.cfg.Now().Sub(e.started),
		CanaryAUC:        e.canary.eval.AUC(),
		IncumbentAUC:     e.incArm.eval.AUC(),
		CanaryLogLoss:    e.canary.eval.LogLoss(),
		IncumbentLogLoss: e.incArm.eval.LogLoss(),
		PSI:              quality.PSI(e.incArm.scores.Histogram(quality.DefaultPSIBins), e.canary.scores.Histogram(quality.DefaultPSIBins)),
		CanaryLabeled:    e.canary.eval.Count(),
		IncumbentLabeled: e.incArm.eval.Count(),
	}
	c.cur = nil
	c.last = d
	c.activeGauge.Set(0)
	c.versionGauge.Set(0)
	return d
}

// apply executes a decision against the fleet and emits its telemetry,
// span, and (on rollback) flight dump. Runs without the controller
// lock: the fleet call takes the server's own mutex.
func (c *Controller) apply(d *Decision) {
	if d == nil {
		return
	}
	var err error
	if d.Action == "promote" {
		err = c.fleet.PromoteCanary(d.Version)
	} else {
		err = c.fleet.RollbackCanary(d.Version)
	}
	if err != nil {
		d.FleetErr = err.Error()
	}

	c.reg.Counter("mamdr_rollout_decisions_total",
		"Canary gate decisions, by action and reason.",
		telemetry.L("decision", d.Action), telemetry.L("reason", d.Reason)).Inc()

	_, sp := trace.Start(c.tracer.Context(context.Background()), "rollout.decision",
		trace.A("action", d.Action), trace.A("reason", d.Reason),
		trace.A("version", d.Version), trace.A("incumbent", d.Incumbent))
	sp.EndWith(trace.A("canary_auc", d.CanaryAUC), trace.A("incumbent_auc", d.IncumbentAUC),
		trace.A("psi", d.PSI))

	if d.Action == "rollback" {
		c.tracer.Flight().Trigger("rollout_rollback", map[string]any{
			"version":       d.Version,
			"incumbent":     d.Incumbent,
			"reason":        d.Reason,
			"detail":        d.Detail,
			"canary_auc":    d.CanaryAUC,
			"incumbent_auc": d.IncumbentAUC,
			"psi":           d.PSI,
			"elapsed_ms":    d.Elapsed.Milliseconds(),
		})
	}
	if c.cfg.OnDecision != nil {
		c.cfg.OnDecision(*d)
	}
}

// Status reports the current evaluation (and the last decision) for
// GET /admin/rollout.
func (c *Controller) Status() Status {
	if c == nil {
		return Status{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{LastDecision: c.last}
	if c.cur == nil {
		return st
	}
	e := c.cur
	st.Active = true
	st.Version = e.version
	st.Incumbent = e.incumbent
	st.Fraction = c.cfg.Fraction
	st.ElapsedMS = c.cfg.Now().Sub(e.started).Milliseconds()
	st.CanaryLabeled = e.canary.eval.Count()
	st.IncumbentLabeled = e.incArm.eval.Count()
	st.CanaryScores = e.canary.scores.Count()
	st.IncumbentScores = e.incArm.scores.Count()
	st.CanaryAUC = e.canary.eval.AUC()
	st.IncumbentAUC = e.incArm.eval.AUC()
	st.PSI = quality.PSI(e.incArm.scores.Histogram(quality.DefaultPSIBins), e.canary.scores.Histogram(quality.DefaultPSIBins))
	return st
}
