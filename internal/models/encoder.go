package models

import (
	"math/rand"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/nn"
)

// Encoder turns a batch into per-field embedding tensors. It hides the
// difference between the two benchmark regimes:
//
//   - learned mode (Amazon): one trainable embedding table per
//     categorical field, randomly initialized and optimized during
//     training;
//   - fixed mode (Taobao): the user and item are represented by frozen
//     dense feature vectors (pretrained GraphSage features in the paper),
//     exposed as two fields.
type Encoder struct {
	ds     *data.Dataset
	embDim int
	// learned mode
	fieldEmbs []*nn.Embedding
	// fixed mode
	userEmb, itemEmb *nn.Embedding
}

// NewEncoder builds the encoder appropriate for the dataset.
func NewEncoder(ds *data.Dataset, embDim int, rng *rand.Rand) *Encoder {
	e := &Encoder{ds: ds, embDim: embDim}
	if ds.HasFixedFeatures() {
		e.userEmb = nn.NewFrozenEmbedding(ds.FixedUserVecs)
		e.itemEmb = nn.NewFrozenEmbedding(ds.FixedItemVecs)
		return e
	}
	for _, f := range ds.Schema.Fields() {
		e.fieldEmbs = append(e.fieldEmbs, nn.NewEmbedding(f.Vocab, embDim, 0.05, rng))
	}
	return e
}

// Fields returns one batch x FieldDim tensor per field.
func (e *Encoder) Fields(b *data.Batch) []*autograd.Tensor {
	if e.ds.HasFixedFeatures() {
		return []*autograd.Tensor{e.userEmb.Lookup(b.Users), e.itemEmb.Lookup(b.Items)}
	}
	out := make([]*autograd.Tensor, len(e.fieldEmbs))
	for f, emb := range e.fieldEmbs {
		out[f] = emb.Lookup(b.FieldValues[f])
	}
	return out
}

// Concat returns the batch's fields concatenated into batch x InputDim.
func (e *Encoder) Concat(b *data.Batch) *autograd.Tensor {
	return autograd.ConcatCols(e.Fields(b)...)
}

// NumFields returns the number of fields produced by Fields.
func (e *Encoder) NumFields() int {
	if e.ds.HasFixedFeatures() {
		return 2
	}
	return len(e.fieldEmbs)
}

// FieldDim returns the width of each field tensor.
func (e *Encoder) FieldDim() int {
	if e.ds.HasFixedFeatures() {
		return e.userEmb.Dim()
	}
	return e.embDim
}

// InputDim returns NumFields * FieldDim, the width of Concat's output.
func (e *Encoder) InputDim() int { return e.NumFields() * e.FieldDim() }

// Parameters implements nn.Module; frozen tables contribute nothing.
func (e *Encoder) Parameters() []*autograd.Tensor {
	var ps []*autograd.Tensor
	for _, emb := range e.fieldEmbs {
		ps = append(ps, emb.Parameters()...)
	}
	return ps
}

// EmbeddingTables maps each index of Parameters() that is a per-field
// embedding table to the schema field it serves. In learned mode the
// tables appear first, one per field in schema order; in fixed-feature
// mode the frozen tables expose no parameters and the map is empty.
// This is the explicit contract the parameter server uses to decide
// which tensors synchronize row-wise (see internal/nn/README.md).
func (e *Encoder) EmbeddingTables() map[int]int {
	tables := make(map[int]int, len(e.fieldEmbs))
	for f := range e.fieldEmbs {
		tables[f] = f
	}
	return tables
}
