package models

import (
	"math/rand"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/nn"
)

func init() {
	Register("deepfm", func(cfg Config) Model { return NewDeepFM(cfg) })
}

// DeepFM (Guo et al., 2017) combines a factorization machine with a deep
// network sharing the same field embeddings:
//
//	logit = FM_first_order + FM_second_order + MLP(concat(fields))
type DeepFM struct {
	enc        *Encoder
	firstEmbs  []*nn.Embedding
	firstDense *nn.Dense
	deep       *nn.MLP
	rng        *rand.Rand
}

// NewDeepFM builds the DeepFM baseline from cfg.
func NewDeepFM(cfg Config) *DeepFM {
	cfg = cfg.withDefaults()
	rng := rngFor(cfg)
	enc := NewEncoder(cfg.Dataset, cfg.EmbDim, rng)
	m := &DeepFM{enc: enc, rng: rng}
	if cfg.Dataset.HasFixedFeatures() {
		m.firstDense = nn.NewDense(enc.InputDim(), 1, nn.Linear, rng)
	} else {
		for _, f := range cfg.Dataset.Schema.Fields() {
			m.firstEmbs = append(m.firstEmbs, nn.NewEmbedding(f.Vocab, 1, 0.01, rng))
		}
	}
	dims := append([]int{enc.InputDim()}, cfg.Hidden...)
	dims = append(dims, 1)
	m.deep = nn.NewMLP(dims, nn.ReLU, cfg.Dropout, rng)
	return m
}

func (m *DeepFM) firstOrder(b *data.Batch) *autograd.Tensor {
	if m.firstDense != nil {
		return m.firstDense.Forward(m.enc.Concat(b))
	}
	var acc *autograd.Tensor
	for f, emb := range m.firstEmbs {
		term := emb.Lookup(b.FieldValues[f])
		if acc == nil {
			acc = term
		} else {
			acc = autograd.Add(acc, term)
		}
	}
	return acc
}

// Forward implements Model.
func (m *DeepFM) Forward(b *data.Batch, training bool) *autograd.Tensor {
	flat := m.enc.Concat(b)
	second := autograd.FMSecondOrder(flat, m.enc.NumFields(), m.enc.FieldDim())
	deep := m.deep.Forward(flat, training, m.rng)
	return autograd.Add(autograd.Add(m.firstOrder(b), second), deep)
}

// Parameters implements Model.
func (m *DeepFM) Parameters() []*autograd.Tensor {
	ps := m.enc.Parameters()
	for _, e := range m.firstEmbs {
		ps = append(ps, e.Parameters()...)
	}
	if m.firstDense != nil {
		ps = append(ps, m.firstDense.Parameters()...)
	}
	return append(ps, m.deep.Parameters()...)
}

// Name implements Model.
func (m *DeepFM) Name() string { return "DeepFM" }

// EmbeddingTables implements EmbeddingTabler: the encoder's tables plus
// the per-field first-order tables (vocab x 1) that follow them.
func (m *DeepFM) EmbeddingTables() map[int]int {
	tables := m.enc.EmbeddingTables()
	base := len(m.enc.Parameters())
	for f := range m.firstEmbs {
		tables[base+f] = f
	}
	return tables
}
