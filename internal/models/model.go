// Package models implements the CTR model structures evaluated in the
// MAMDR paper: the single-domain baselines (MLP, WDL, NeurFM, AutoInt,
// DeepFM), the multi-task/multi-domain baselines (Shared-Bottom, MMoE,
// CGC, PLE, STAR), and the compact production-style RAW model used in
// the industry experiments.
//
// Every model implements the small Model interface; learning frameworks
// interact with models exclusively through it, which is what makes the
// MAMDR framework model agnostic.
package models

import (
	"fmt"
	"math/rand"
	"sort"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
)

// Model is a trainable CTR predictor over multi-domain batches.
type Model interface {
	// Forward computes one logit per sample (Nx1). Multi-domain
	// structures route by b.Domain; single-domain structures ignore it.
	// training toggles dropout.
	Forward(b *data.Batch, training bool) *autograd.Tensor
	// Parameters returns the trainable tensors in a stable order.
	Parameters() []*autograd.Tensor
	// Name returns the structure's name (e.g. "MLP", "STAR").
	Name() string
}

// EmbeddingTabler is implemented by models that can identify which of
// their Parameters() are per-field embedding tables. The returned map
// keys are parameter indices and the values are the schema fields whose
// ids index the table's rows. The parameter server synchronizes exactly
// these tensors row-wise (touched rows only, through the static/dynamic
// cache of Section IV-E); every other tensor is synchronized densely.
//
// All models in this package implement the interface by delegating to
// their Encoder, extended with any extra per-field tables they own
// (e.g. the vocab x 1 wide/first-order tables of WDL, NeurFM, DeepFM).
type EmbeddingTabler interface {
	EmbeddingTables() map[int]int
}

// EmbeddingTablesOf returns m's embedding-table classification, or an
// empty map when the model does not implement EmbeddingTabler — in that
// case every tensor is synchronized densely, which is always correct
// (just more traffic) and never silently skips a tensor.
func EmbeddingTablesOf(m Model) map[int]int {
	if t, ok := m.(EmbeddingTabler); ok {
		return t.EmbeddingTables()
	}
	return map[int]int{}
}

// Config carries everything needed to build any model structure.
type Config struct {
	Dataset *data.Dataset
	// EmbDim is the per-field embedding size for learned-embedding
	// datasets (ignored when the dataset has fixed features).
	EmbDim int
	// Hidden lists the hidden-layer widths of MLP towers.
	Hidden []int
	// Dropout is the inverted-dropout rate between hidden layers.
	Dropout float64
	// Experts is the expert count for MMoE/CGC/PLE.
	Experts int
	// Heads and HeadDim configure AutoInt's attention.
	Heads, HeadDim int
	// Seed drives parameter initialization.
	Seed int64
}

// withDefaults fills zero fields with benchmark-scale defaults (the
// paper's widths, scaled down to the synthetic benchmark sizes).
func (c Config) withDefaults() Config {
	if c.EmbDim == 0 {
		c.EmbDim = 8
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 32}
	}
	if c.Experts == 0 {
		c.Experts = 2
	}
	if c.Heads == 0 {
		c.Heads = 2
	}
	if c.HeadDim == 0 {
		c.HeadDim = 8
	}
	return c
}

// Builder constructs a model from a config.
type Builder func(Config) Model

var registry = map[string]Builder{}

// Register adds a builder under a canonical name. It panics on
// duplicates; model files register themselves in init functions.
func Register(name string, b Builder) {
	if _, dup := registry[name]; dup {
		panic("models: duplicate registration of " + name)
	}
	registry[name] = b
}

// New builds the named model. Valid names are listed by Names.
func New(name string, cfg Config) (Model, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("models: config for %q has no dataset", name)
	}
	return b(cfg.withDefaults()), nil
}

// MustNew is New for static names; it panics on error.
func MustNew(name string, cfg Config) Model {
	m, err := New(name, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Names lists registered model names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// rngFor derives a model-local RNG from the config seed.
func rngFor(cfg Config) *rand.Rand { return rand.New(rand.NewSource(cfg.Seed + 1)) }
