package models

import (
	"math/rand"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/nn"
)

func init() {
	Register("autoint", func(cfg Config) Model { return NewAutoInt(cfg) })
}

// AutoInt (Song et al., 2019) learns high-order feature interactions
// with multi-head self-attention over field embeddings: fields attend to
// each other through stacked interacting layers, and the attended field
// representations are concatenated into a linear output layer.
type AutoInt struct {
	enc    *Encoder
	layers []*nn.InteractingLayer
	out    *nn.Dense
	rng    *rand.Rand
}

// NewAutoInt builds the AutoInt baseline from cfg with two stacked
// interacting layers.
func NewAutoInt(cfg Config) *AutoInt {
	cfg = cfg.withDefaults()
	rng := rngFor(cfg)
	enc := NewEncoder(cfg.Dataset, cfg.EmbDim, rng)
	l1 := nn.NewInteractingLayer(enc.FieldDim(), cfg.Heads, cfg.HeadDim, rng)
	l2 := nn.NewInteractingLayer(l1.OutDim(), cfg.Heads, cfg.HeadDim, rng)
	return &AutoInt{
		enc:    enc,
		layers: []*nn.InteractingLayer{l1, l2},
		out:    nn.NewDense(enc.NumFields()*l2.OutDim(), 1, nn.Linear, rng),
		rng:    rng,
	}
}

// Forward implements Model.
func (m *AutoInt) Forward(b *data.Batch, training bool) *autograd.Tensor {
	fields := m.enc.Fields(b)
	for _, l := range m.layers {
		fields = l.Forward(fields)
	}
	return m.out.Forward(autograd.ConcatCols(fields...))
}

// Parameters implements Model.
func (m *AutoInt) Parameters() []*autograd.Tensor {
	ps := m.enc.Parameters()
	for _, l := range m.layers {
		ps = append(ps, l.Parameters()...)
	}
	return append(ps, m.out.Parameters()...)
}

// Name implements Model.
func (m *AutoInt) Name() string { return "AutoInt" }

// EmbeddingTables implements EmbeddingTabler.
func (m *AutoInt) EmbeddingTables() map[int]int { return m.enc.EmbeddingTables() }
