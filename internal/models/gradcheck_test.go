package models

import (
	"testing"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/synth"
)

// TestModelGradientsMatchFiniteDifferences verifies the full
// forward/backward of representative model structures against central
// finite differences on a miniature dataset. This is the strongest
// correctness guarantee for the composite structures (attention, FM
// pooling, star topology, expert gating).
func TestModelGradientsMatchFiniteDifferences(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Name: "gradcheck", Seed: 41, ConflictStrength: 0.5,
		NumUsers: 6, NumItems: 5,
		Domains: []synth.DomainSpec{
			{Name: "a", Samples: 12, CTRRatio: 0.4},
			{Name: "b", Samples: 12, CTRRatio: 0.4},
		},
	})
	cfg := Config{Dataset: ds, EmbDim: 2, Hidden: []int{3}, Experts: 2, Heads: 1, HeadDim: 2, Seed: 9}
	batch := ds.MakeBatch(0, ds.Domains[0].Train[:4])

	for _, name := range []string{"mlp", "wdl", "neurfm", "autoint", "deepfm", "sharedbottom", "mmoe", "cgc", "ple", "star", "raw"} {
		name := name
		t.Run(name, func(t *testing.T) {
			m := MustNew(name, cfg)
			params := m.Parameters()
			if name == "star" {
				// STAR's partitioned norm treats the per-sample
				// normalization statistics as constants of the backward
				// pass (see nn.LayerNorm), so gradients of parameters
				// UPSTREAM of the norm — the encoder's embedding tables,
				// the first NumFields tensors — are deliberately
				// approximate. Everything downstream is exact and
				// checked here.
				params = params[ds.Schema.NumFields():]
			}
			f := func() *autograd.Tensor {
				return autograd.BCEWithLogits(m.Forward(batch, false), batch.Labels)
			}
			if err := autograd.CheckGradients(f, params, 1e-5, 2e-4); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
	}
}

// TestModelGradientsFixedFeatureRegime repeats the check in the frozen-
// feature (Taobao) regime for the structures whose wiring differs there.
func TestModelGradientsFixedFeatureRegime(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Name: "gradcheck-fixed", Seed: 43, ConflictStrength: 0.5,
		NumUsers: 6, NumItems: 5, FixedFeatures: true, FeatureDim: 3,
		Domains: []synth.DomainSpec{
			{Name: "a", Samples: 12, CTRRatio: 0.4},
			{Name: "b", Samples: 12, CTRRatio: 0.4},
		},
	})
	cfg := Config{Dataset: ds, EmbDim: 2, Hidden: []int{3}, Experts: 2, Heads: 1, HeadDim: 2, Seed: 9}
	batch := ds.MakeBatch(1, ds.Domains[1].Train[:4])

	for _, name := range []string{"wdl", "neurfm", "deepfm", "star"} {
		name := name
		t.Run(name, func(t *testing.T) {
			m := MustNew(name, cfg)
			f := func() *autograd.Tensor {
				return autograd.BCEWithLogits(m.Forward(batch, false), batch.Labels)
			}
			if err := autograd.CheckGradients(f, m.Parameters(), 1e-5, 2e-4); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
	}
}

var _ = data.Train // keep import stable if splits become needed
