package models

import (
	"math/rand"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/nn"
)

func init() {
	Register("sharedbottom", func(cfg Config) Model { return NewSharedBottom(cfg) })
}

// SharedBottom is the classic hard-parameter-sharing multi-task
// structure applied to MDR: one bottom network shared by all domains
// and one small tower network per domain.
type SharedBottom struct {
	enc    *Encoder
	bottom *nn.MLP
	towers []*nn.MLP
	rng    *rand.Rand
}

// NewSharedBottom builds the Shared-Bottom baseline; the tower width
// follows the paper's configuration (a single compact hidden layer).
func NewSharedBottom(cfg Config) *SharedBottom {
	cfg = cfg.withDefaults()
	rng := rngFor(cfg)
	enc := NewEncoder(cfg.Dataset, cfg.EmbDim, rng)
	bottomDims := append([]int{enc.InputDim()}, cfg.Hidden...)
	m := &SharedBottom{
		enc:    enc,
		bottom: nn.NewMLP(bottomDims, nn.ReLU, cfg.Dropout, rng),
		rng:    rng,
	}
	bottomOut := cfg.Hidden[len(cfg.Hidden)-1]
	for d := 0; d < cfg.Dataset.NumDomains(); d++ {
		m.towers = append(m.towers, nn.NewMLP([]int{bottomOut, 16, 1}, nn.ReLU, 0, rng))
	}
	return m
}

// Forward implements Model, routing through the batch's domain tower.
func (m *SharedBottom) Forward(b *data.Batch, training bool) *autograd.Tensor {
	h := m.bottom.Forward(m.enc.Concat(b), training, m.rng)
	h = autograd.ReLU(h)
	return m.towers[b.Domain].Forward(h, training, m.rng)
}

// Parameters implements Model.
func (m *SharedBottom) Parameters() []*autograd.Tensor {
	ps := m.enc.Parameters()
	ps = append(ps, m.bottom.Parameters()...)
	for _, t := range m.towers {
		ps = append(ps, t.Parameters()...)
	}
	return ps
}

// Name implements Model.
func (m *SharedBottom) Name() string { return "Shared-Bottom" }

// EmbeddingTables implements EmbeddingTabler.
func (m *SharedBottom) EmbeddingTables() map[int]int { return m.enc.EmbeddingTables() }
