package models

import (
	"math/rand"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/nn"
)

func init() {
	Register("neurfm", func(cfg Config) Model { return NewNeurFM(cfg) })
}

// NeurFM is the Neural Factorization Machine (He & Chua, 2017): field
// embeddings are pooled by the bi-interaction layer (pairwise elementwise
// products summed over field pairs) and fed to an MLP, combined with the
// model's first-order linear term at the logit level.
type NeurFM struct {
	enc        *Encoder
	firstEmbs  []*nn.Embedding // linear term per field (learned mode)
	firstDense *nn.Dense       // fixed mode linear term
	deep       *nn.MLP
	rng        *rand.Rand
}

// NewNeurFM builds the NeurFM baseline from cfg.
func NewNeurFM(cfg Config) *NeurFM {
	cfg = cfg.withDefaults()
	rng := rngFor(cfg)
	enc := NewEncoder(cfg.Dataset, cfg.EmbDim, rng)
	m := &NeurFM{enc: enc, rng: rng}
	if cfg.Dataset.HasFixedFeatures() {
		m.firstDense = nn.NewDense(enc.InputDim(), 1, nn.Linear, rng)
	} else {
		for _, f := range cfg.Dataset.Schema.Fields() {
			m.firstEmbs = append(m.firstEmbs, nn.NewEmbedding(f.Vocab, 1, 0.01, rng))
		}
	}
	dims := append([]int{enc.FieldDim()}, cfg.Hidden...)
	dims = append(dims, 1)
	m.deep = nn.NewMLP(dims, nn.ReLU, cfg.Dropout, rng)
	return m
}

func (m *NeurFM) firstOrder(b *data.Batch) *autograd.Tensor {
	if m.firstDense != nil {
		return m.firstDense.Forward(m.enc.Concat(b))
	}
	var acc *autograd.Tensor
	for f, emb := range m.firstEmbs {
		term := emb.Lookup(b.FieldValues[f])
		if acc == nil {
			acc = term
		} else {
			acc = autograd.Add(acc, term)
		}
	}
	return acc
}

// Forward implements Model.
func (m *NeurFM) Forward(b *data.Batch, training bool) *autograd.Tensor {
	flat := m.enc.Concat(b)
	pooled := autograd.BiInteraction(flat, m.enc.NumFields(), m.enc.FieldDim())
	deep := m.deep.Forward(pooled, training, m.rng)
	return autograd.Add(m.firstOrder(b), deep)
}

// Parameters implements Model.
func (m *NeurFM) Parameters() []*autograd.Tensor {
	ps := m.enc.Parameters()
	for _, e := range m.firstEmbs {
		ps = append(ps, e.Parameters()...)
	}
	if m.firstDense != nil {
		ps = append(ps, m.firstDense.Parameters()...)
	}
	return append(ps, m.deep.Parameters()...)
}

// Name implements Model.
func (m *NeurFM) Name() string { return "NeurFM" }

// EmbeddingTables implements EmbeddingTabler: the encoder's tables plus
// the per-field linear-term tables (vocab x 1) that follow them.
func (m *NeurFM) EmbeddingTables() map[int]int {
	tables := m.enc.EmbeddingTables()
	base := len(m.enc.Parameters())
	for f := range m.firstEmbs {
		tables[base+f] = f
	}
	return tables
}
