package models

import (
	"math/rand"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/nn"
)

func init() {
	Register("mlp", func(cfg Config) Model { return NewMLP(cfg) })
	Register("raw", func(cfg Config) Model { return NewRAW(cfg) })
}

// MLP is the simplest baseline: field embeddings concatenated into a
// multi-layer perceptron. It is also the base structure the paper pairs
// with MAMDR in Table V ("MLP+MAMDR").
type MLP struct {
	enc *Encoder
	net *nn.MLP
	rng *rand.Rand
}

// NewMLP builds the MLP baseline from cfg.
func NewMLP(cfg Config) *MLP {
	cfg = cfg.withDefaults()
	rng := rngFor(cfg)
	enc := NewEncoder(cfg.Dataset, cfg.EmbDim, rng)
	dims := append([]int{enc.InputDim()}, cfg.Hidden...)
	dims = append(dims, 1)
	return &MLP{
		enc: enc,
		net: nn.NewMLP(dims, nn.ReLU, cfg.Dropout, rng),
		rng: rng,
	}
}

// Forward implements Model.
func (m *MLP) Forward(b *data.Batch, training bool) *autograd.Tensor {
	return m.net.Forward(m.enc.Concat(b), training, m.rng)
}

// Parameters implements Model.
func (m *MLP) Parameters() []*autograd.Tensor {
	return append(m.enc.Parameters(), m.net.Parameters()...)
}

// Name implements Model.
func (m *MLP) Name() string { return "MLP" }

// EmbeddingTables implements EmbeddingTabler: the encoder's tables lead
// Parameters(), so its map applies unchanged.
func (m *MLP) EmbeddingTables() map[int]int { return m.enc.EmbeddingTables() }

// RAW is the compact production-style base model used in the paper's
// industry experiments (Tables VIII-IX), where MAMDR is applied on top of
// the existing serving model. Structurally it is a narrow single-hidden-
// layer network — intentionally simpler than the benchmark MLP.
type RAW struct {
	enc *Encoder
	l1  *nn.Dense
	l2  *nn.Dense
	rng *rand.Rand
}

// NewRAW builds the RAW model from cfg.
func NewRAW(cfg Config) *RAW {
	cfg = cfg.withDefaults()
	rng := rngFor(cfg)
	enc := NewEncoder(cfg.Dataset, cfg.EmbDim, rng)
	hidden := 32
	return &RAW{
		enc: enc,
		l1:  nn.NewDense(enc.InputDim(), hidden, nn.ReLU, rng),
		l2:  nn.NewDense(hidden, 1, nn.Linear, rng),
		rng: rng,
	}
}

// Forward implements Model.
func (m *RAW) Forward(b *data.Batch, training bool) *autograd.Tensor {
	return m.l2.Forward(m.l1.Forward(m.enc.Concat(b)))
}

// Parameters implements Model.
func (m *RAW) Parameters() []*autograd.Tensor {
	ps := m.enc.Parameters()
	ps = append(ps, m.l1.Parameters()...)
	return append(ps, m.l2.Parameters()...)
}

// Name implements Model.
func (m *RAW) Name() string { return "RAW" }

// EmbeddingTables implements EmbeddingTabler.
func (m *RAW) EmbeddingTables() map[int]int { return m.enc.EmbeddingTables() }
