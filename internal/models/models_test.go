package models

import (
	"math"
	"testing"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/synth"
)

// testDataset returns a small learned-embedding (Amazon-style) dataset.
func testDataset(t *testing.T) *data.Dataset {
	t.Helper()
	ds := synth.Generate(synth.Config{
		Name: "test", Seed: 11, ConflictStrength: 0.5,
		Domains: []synth.DomainSpec{
			{Name: "a", Samples: 300, CTRRatio: 0.3},
			{Name: "b", Samples: 200, CTRRatio: 0.4},
			{Name: "c", Samples: 120, CTRRatio: 0.25},
		},
	})
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	return ds
}

// fixedDataset returns a small frozen-feature (Taobao-style) dataset.
func fixedDataset(t *testing.T) *data.Dataset {
	t.Helper()
	ds := synth.Generate(synth.Config{
		Name: "test-fixed", Seed: 13, ConflictStrength: 0.5, FixedFeatures: true,
		Domains: []synth.DomainSpec{
			{Name: "a", Samples: 250, CTRRatio: 0.3},
			{Name: "b", Samples: 150, CTRRatio: 0.4},
		},
	})
	return ds
}

func smallConfig(ds *data.Dataset) Config {
	return Config{Dataset: ds, EmbDim: 4, Hidden: []int{8, 4}, Seed: 3}
}

var allModelNames = []string{
	"mlp", "wdl", "neurfm", "autoint", "deepfm",
	"sharedbottom", "mmoe", "cgc", "ple", "star", "raw",
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != len(allModelNames) {
		t.Fatalf("registry has %d models (%v), want %d", len(names), names, len(allModelNames))
	}
	for _, n := range allModelNames {
		if _, err := New(n, smallConfig(testDataset(t))); err != nil {
			t.Fatalf("New(%s): %v", n, err)
		}
	}
}

func TestNewUnknownModel(t *testing.T) {
	if _, err := New("transformer9000", smallConfig(testDataset(t))); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestNewNilDataset(t *testing.T) {
	if _, err := New("mlp", Config{}); err == nil {
		t.Fatal("expected error for nil dataset")
	}
}

func TestMustNewPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew("nope", Config{})
}

// TestAllModelsForwardBothRegimes checks every structure produces
// finite, per-sample logits on learned-embedding and frozen-feature
// datasets alike.
func TestAllModelsForwardBothRegimes(t *testing.T) {
	for _, ds := range []*data.Dataset{testDataset(t), fixedDataset(t)} {
		cfg := smallConfig(ds)
		for _, name := range allModelNames {
			m := MustNew(name, cfg)
			for d := 0; d < ds.NumDomains(); d++ {
				b := ds.FullBatch(d, data.Train)
				logits := m.Forward(b, false)
				if logits.Rows != b.Size() || logits.Cols != 1 {
					t.Fatalf("%s/%s: logits %dx%d for %d samples", ds.Name, name, logits.Rows, logits.Cols, b.Size())
				}
				for _, v := range logits.Data {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("%s/%s: non-finite logit", ds.Name, name)
					}
				}
			}
		}
	}
}

// TestAllModelsGradientsFlow runs one backward pass per structure and
// requires at least one parameter tensor to receive nonzero gradient.
func TestAllModelsGradientsFlow(t *testing.T) {
	ds := testDataset(t)
	cfg := smallConfig(ds)
	for _, name := range allModelNames {
		m := MustNew(name, cfg)
		b := ds.FullBatch(0, data.Train)
		loss := autograd.BCEWithLogits(m.Forward(b, true), b.Labels)
		loss.Backward()
		var touched int
		for _, p := range m.Parameters() {
			for _, g := range p.Grad {
				if g != 0 {
					touched++
					break
				}
			}
		}
		if touched == 0 {
			t.Fatalf("%s: no parameter received gradient", name)
		}
	}
}

func TestParametersStableOrder(t *testing.T) {
	ds := testDataset(t)
	for _, name := range allModelNames {
		m := MustNew(name, smallConfig(ds))
		a, b := m.Parameters(), m.Parameters()
		if len(a) == 0 {
			t.Fatalf("%s: no parameters", name)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: parameter count unstable", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: parameter order unstable at %d", name, i)
			}
		}
	}
}

func TestSameSeedSameInit(t *testing.T) {
	ds := testDataset(t)
	cfg := smallConfig(ds)
	m1 := MustNew("mlp", cfg)
	m2 := MustNew("mlp", cfg)
	p1, p2 := m1.Parameters(), m2.Parameters()
	for i := range p1 {
		for j := range p1[i].Data {
			if p1[i].Data[j] != p2[i].Data[j] {
				t.Fatal("same seed produced different initialization")
			}
		}
	}
}

func TestDomainRoutingChangesOutput(t *testing.T) {
	// Multi-domain structures must produce different logits when the
	// same samples are presented under different domains (after nudging
	// the specific parameters away from their init).
	ds := testDataset(t)
	for _, name := range []string{"sharedbottom", "mmoe", "cgc", "ple", "star"} {
		m := MustNew(name, smallConfig(ds))
		// Perturb all parameters so freshly initialized specific parts
		// (e.g. STAR's unit weights) differ across domains.
		rngSeed := 0
		for _, p := range m.Parameters() {
			for i := range p.Data {
				rngSeed = (rngSeed*1103515245 + 12345) & 0x7fffffff
				p.Data[i] += 0.05 * (float64(rngSeed%1000)/500 - 1)
			}
		}
		b := ds.FullBatch(0, data.Train)
		l0 := m.Forward(b, false).Clone()
		b1 := *b
		b1.Domain = 1
		l1 := m.Forward(&b1, false)
		var diff float64
		for i := range l0.Data {
			diff += math.Abs(l0.Data[i] - l1.Data[i])
		}
		if diff == 0 {
			t.Fatalf("%s: domain routing has no effect", name)
		}
	}
}

func TestSingleDomainModelsIgnoreDomain(t *testing.T) {
	ds := testDataset(t)
	for _, name := range []string{"mlp", "wdl", "neurfm", "autoint", "deepfm", "raw"} {
		m := MustNew(name, smallConfig(ds))
		b := ds.FullBatch(0, data.Train)
		l0 := m.Forward(b, false).Clone()
		b1 := *b
		b1.Domain = 2
		l1 := m.Forward(&b1, false)
		for i := range l0.Data {
			if l0.Data[i] != l1.Data[i] {
				t.Fatalf("%s: single-domain model output depends on domain id", name)
			}
		}
	}
}

func TestSTARDomainWeightsStartAtSharedNetwork(t *testing.T) {
	ds := testDataset(t)
	m := MustNew("star", smallConfig(ds)).(*STAR)
	for _, l := range m.layers {
		for _, wd := range l.wDomain {
			for _, v := range wd.Data {
				if v != 1 {
					t.Fatal("STAR domain weights must initialize to 1")
				}
			}
		}
		for _, bd := range l.bDomain {
			for _, v := range bd.Data {
				if v != 0 {
					t.Fatal("STAR domain biases must initialize to 0")
				}
			}
		}
	}
}

func TestModelNames(t *testing.T) {
	ds := testDataset(t)
	want := map[string]string{
		"mlp": "MLP", "wdl": "WDL", "neurfm": "NeurFM", "autoint": "AutoInt",
		"deepfm": "DeepFM", "sharedbottom": "Shared-Bottom", "mmoe": "MMOE",
		"cgc": "CGC", "ple": "PLE", "star": "Star", "raw": "RAW",
	}
	for key, name := range want {
		if got := MustNew(key, smallConfig(ds)).Name(); got != name {
			t.Fatalf("%s.Name() = %q, want %q", key, got, name)
		}
	}
}

// TestModelsLearnOnSingleDomain trains each structure briefly on one
// domain and requires the training loss to drop substantially.
func TestModelsLearnOnSingleDomain(t *testing.T) {
	ds := testDataset(t)
	cfg := smallConfig(ds)
	for _, name := range allModelNames {
		m := MustNew(name, cfg)
		b := ds.FullBatch(0, data.Train)
		initial := autograd.BCEWithLogits(m.Forward(b, false), b.Labels).Item()
		lr := 0.05
		for step := 0; step < 60; step++ {
			for _, p := range m.Parameters() {
				p.ZeroGrad()
			}
			loss := autograd.BCEWithLogits(m.Forward(b, true), b.Labels)
			loss.Backward()
			for _, p := range m.Parameters() {
				for i := range p.Data {
					p.Data[i] -= lr * p.Grad[i]
				}
			}
		}
		final := autograd.BCEWithLogits(m.Forward(b, false), b.Labels).Item()
		if !(final < initial) {
			t.Fatalf("%s: loss did not improve (%.4f -> %.4f)", name, initial, final)
		}
	}
}

func TestEncoderFixedVsLearned(t *testing.T) {
	learned := NewEncoder(testDataset(t), 4, rngFor(Config{Seed: 1}))
	if learned.NumFields() != 6 || learned.FieldDim() != 4 || learned.InputDim() != 24 {
		t.Fatalf("learned encoder dims: %d fields x %d = %d", learned.NumFields(), learned.FieldDim(), learned.InputDim())
	}
	if len(learned.Parameters()) != 6 {
		t.Fatalf("learned encoder params = %d, want 6", len(learned.Parameters()))
	}
	fixed := NewEncoder(fixedDataset(t), 4, rngFor(Config{Seed: 1}))
	if fixed.NumFields() != 2 || fixed.FieldDim() != 16 || fixed.InputDim() != 32 {
		t.Fatalf("fixed encoder dims: %d fields x %d = %d", fixed.NumFields(), fixed.FieldDim(), fixed.InputDim())
	}
	if len(fixed.Parameters()) != 0 {
		t.Fatal("fixed encoder must expose no parameters")
	}
}
