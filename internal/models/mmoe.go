package models

import (
	"math/rand"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/nn"
)

func init() {
	Register("mmoe", func(cfg Config) Model { return NewMMoE(cfg) })
}

// MMoE is the Multi-gate Mixture-of-Experts (Ma et al., 2018): a pool of
// expert networks shared across domains, with one gating network per
// domain that mixes expert outputs before the domain's tower.
type MMoE struct {
	enc     *Encoder
	experts []*nn.MLP
	gates   []*nn.Dense // per domain: input -> #experts, softmaxed
	towers  []*nn.MLP
	rng     *rand.Rand
}

// NewMMoE builds the MMoE baseline from cfg.
func NewMMoE(cfg Config) *MMoE {
	cfg = cfg.withDefaults()
	rng := rngFor(cfg)
	enc := NewEncoder(cfg.Dataset, cfg.EmbDim, rng)
	m := &MMoE{enc: enc, rng: rng}
	expertDims := append([]int{enc.InputDim()}, cfg.Hidden...)
	for e := 0; e < cfg.Experts; e++ {
		m.experts = append(m.experts, nn.NewMLP(expertDims, nn.ReLU, cfg.Dropout, rng))
	}
	expertOut := cfg.Hidden[len(cfg.Hidden)-1]
	for d := 0; d < cfg.Dataset.NumDomains(); d++ {
		m.gates = append(m.gates, nn.NewDense(enc.InputDim(), cfg.Experts, nn.Linear, rng))
		m.towers = append(m.towers, nn.NewMLP([]int{expertOut, 16, 1}, nn.ReLU, 0, rng))
	}
	return m
}

// Forward implements Model.
func (m *MMoE) Forward(b *data.Batch, training bool) *autograd.Tensor {
	x := m.enc.Concat(b)
	outs := make([]*autograd.Tensor, len(m.experts))
	for e, ex := range m.experts {
		outs[e] = autograd.ReLU(ex.Forward(x, training, m.rng))
	}
	weights := autograd.SoftmaxRows(m.gates[b.Domain].Forward(x))
	var mixed *autograd.Tensor
	for e, out := range outs {
		w := autograd.SliceCols(weights, e, e+1)
		term := autograd.MulColBroadcast(out, w)
		if mixed == nil {
			mixed = term
		} else {
			mixed = autograd.Add(mixed, term)
		}
	}
	return m.towers[b.Domain].Forward(mixed, training, m.rng)
}

// Parameters implements Model.
func (m *MMoE) Parameters() []*autograd.Tensor {
	ps := m.enc.Parameters()
	for _, e := range m.experts {
		ps = append(ps, e.Parameters()...)
	}
	for _, g := range m.gates {
		ps = append(ps, g.Parameters()...)
	}
	for _, t := range m.towers {
		ps = append(ps, t.Parameters()...)
	}
	return ps
}

// Name implements Model.
func (m *MMoE) Name() string { return "MMOE" }

// EmbeddingTables implements EmbeddingTabler.
func (m *MMoE) EmbeddingTables() map[int]int { return m.enc.EmbeddingTables() }
