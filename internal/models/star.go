package models

import (
	"math/rand"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/nn"
)

func init() {
	Register("star", func(cfg Config) Model { return NewSTAR(cfg) })
}

// starLayer is one layer of STAR's star-topology fully connected
// network (Sheng et al., 2021): a shared centered weight matrix combined
// with a domain-specific matrix by elementwise multiplication, and a
// shared bias combined with a domain bias by addition:
//
//	W_eff = W_shared ⊙ W_domain,   b_eff = b_shared + b_domain.
//
// Domain weights start at one and domain biases at zero, so training
// begins from the pure shared network.
type starLayer struct {
	wShared *autograd.Tensor
	bShared *autograd.Tensor
	wDomain []*autograd.Tensor
	bDomain []*autograd.Tensor
	act     nn.Activation
}

func newStarLayer(in, out, domains int, act nn.Activation, rng *rand.Rand) *starLayer {
	l := &starLayer{
		wShared: autograd.ParamXavier(in, out, rng),
		bShared: autograd.ParamZeros(1, out),
		act:     act,
	}
	for d := 0; d < domains; d++ {
		ones := make([]float64, in*out)
		for i := range ones {
			ones[i] = 1
		}
		l.wDomain = append(l.wDomain, autograd.Param(in, out, ones))
		l.bDomain = append(l.bDomain, autograd.ParamZeros(1, out))
	}
	return l
}

func (l *starLayer) forward(x *autograd.Tensor, domain int) *autograd.Tensor {
	w := autograd.Mul(l.wShared, l.wDomain[domain])
	b := autograd.Add(l.bShared, l.bDomain[domain])
	switch l.act {
	case nn.ReLU:
		return autograd.DenseAct(x, w, b, autograd.ActReLU, 0)
	case nn.Linear:
		return autograd.DenseAct(x, w, b, autograd.ActIdentity, 0)
	default:
		panic("models: unsupported STAR activation")
	}
}

func (l *starLayer) parameters() []*autograd.Tensor {
	ps := []*autograd.Tensor{l.wShared, l.bShared}
	for d := range l.wDomain {
		ps = append(ps, l.wDomain[d], l.bDomain[d])
	}
	return ps
}

// STAR is the Star Topology Adaptive Recommender, the state-of-the-art
// MDR baseline of the paper. It combines the star-topology FCN with
// partitioned normalization over the input representation and the
// original's auxiliary network: a small shared MLP that reads the domain
// indicator embedding concatenated with the input and adds its logit to
// the main network's output, letting the model capture domain identity
// directly.
type STAR struct {
	enc       *Encoder
	norm      *nn.PartitionedNorm
	layers    []*starLayer
	domainEmb *nn.Embedding
	aux       *nn.MLP
	rng       *rand.Rand
}

// NewSTAR builds the STAR baseline from cfg, with both shared and
// specific networks using cfg.Hidden widths as in the paper's setup.
func NewSTAR(cfg Config) *STAR {
	cfg = cfg.withDefaults()
	rng := rngFor(cfg)
	enc := NewEncoder(cfg.Dataset, cfg.EmbDim, rng)
	domains := cfg.Dataset.NumDomains()
	const domainEmbDim = 8
	m := &STAR{
		enc:       enc,
		norm:      nn.NewPartitionedNorm(enc.InputDim(), domains),
		domainEmb: nn.NewEmbedding(domains, domainEmbDim, 0.05, rng),
		aux:       nn.NewMLP([]int{domainEmbDim + enc.InputDim(), 16, 1}, nn.ReLU, 0, rng),
		rng:       rng,
	}
	dims := append([]int{enc.InputDim()}, cfg.Hidden...)
	dims = append(dims, 1)
	for i := 0; i+1 < len(dims); i++ {
		act := nn.ReLU
		if i+2 == len(dims) {
			act = nn.Linear
		}
		m.layers = append(m.layers, newStarLayer(dims[i], dims[i+1], domains, act, rng))
	}
	return m
}

// Forward implements Model.
func (m *STAR) Forward(b *data.Batch, training bool) *autograd.Tensor {
	x := m.norm.Forward(m.enc.Concat(b), b.Domain)
	h := x
	for _, l := range m.layers {
		h = l.forward(h, b.Domain)
	}
	// Auxiliary network: domain-indicator embedding + input features.
	ids := make([]int, b.Size())
	for i := range ids {
		ids[i] = b.Domain
	}
	auxIn := autograd.ConcatCols(m.domainEmb.Lookup(ids), x)
	return autograd.Add(h, m.aux.Forward(auxIn, training, m.rng))
}

// Parameters implements Model.
func (m *STAR) Parameters() []*autograd.Tensor {
	ps := m.enc.Parameters()
	ps = append(ps, m.norm.Parameters()...)
	for _, l := range m.layers {
		ps = append(ps, l.parameters()...)
	}
	ps = append(ps, m.domainEmb.Parameters()...)
	return append(ps, m.aux.Parameters()...)
}

// Name implements Model.
func (m *STAR) Name() string { return "Star" }

// EmbeddingTables implements EmbeddingTabler. The domain-indicator table
// is intentionally excluded: it is indexed by batch domain, not by a
// schema field, and is tiny, so it synchronizes densely.
func (m *STAR) EmbeddingTables() map[int]int { return m.enc.EmbeddingTables() }
