package models

import (
	"math/rand"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/nn"
)

func init() {
	Register("cgc", func(cfg Config) Model { return NewCGC(cfg) })
	Register("ple", func(cfg Config) Model { return NewPLE(cfg) })
}

// cgcLayer is one Customized Gate Control extraction layer (Tang et al.,
// 2020): a pool of shared experts plus one specific expert per domain.
// For a domain, a gate mixes the shared experts with that domain's
// specific expert; a separate shared gate mixes all experts to produce
// the input of the next layer's shared path.
type cgcLayer struct {
	shared     []*nn.MLP
	specific   []*nn.MLP   // one per domain
	domainGate []*nn.Dense // per domain: in -> len(shared)+1
	sharedGate *nn.Dense   // in -> len(shared)+len(specific)
	out        int
}

func newCGCLayer(in, out, sharedExperts, domains int, dropout float64, rng *rand.Rand) *cgcLayer {
	l := &cgcLayer{out: out}
	for e := 0; e < sharedExperts; e++ {
		l.shared = append(l.shared, nn.NewMLP([]int{in, out}, nn.ReLU, dropout, rng))
	}
	for d := 0; d < domains; d++ {
		l.specific = append(l.specific, nn.NewMLP([]int{in, out}, nn.ReLU, dropout, rng))
		l.domainGate = append(l.domainGate, nn.NewDense(in, sharedExperts+1, nn.Linear, rng))
	}
	l.sharedGate = nn.NewDense(in, sharedExperts+domains, nn.Linear, rng)
	return l
}

// forwardDomain mixes the shared experts with the domain's specific
// expert under the domain gate.
func (l *cgcLayer) forwardDomain(x *autograd.Tensor, domain int, training bool, rng *rand.Rand) *autograd.Tensor {
	outs := make([]*autograd.Tensor, 0, len(l.shared)+1)
	for _, ex := range l.shared {
		outs = append(outs, autograd.ReLU(ex.Forward(x, training, rng)))
	}
	outs = append(outs, autograd.ReLU(l.specific[domain].Forward(x, training, rng)))
	weights := autograd.SoftmaxRows(l.domainGate[domain].Forward(x))
	return mixExperts(outs, weights)
}

// forwardShared mixes every expert under the shared gate (the progressive
// path feeding the next extraction level).
func (l *cgcLayer) forwardShared(x *autograd.Tensor, training bool, rng *rand.Rand) *autograd.Tensor {
	outs := make([]*autograd.Tensor, 0, len(l.shared)+len(l.specific))
	for _, ex := range l.shared {
		outs = append(outs, autograd.ReLU(ex.Forward(x, training, rng)))
	}
	for _, ex := range l.specific {
		outs = append(outs, autograd.ReLU(ex.Forward(x, training, rng)))
	}
	weights := autograd.SoftmaxRows(l.sharedGate.Forward(x))
	return mixExperts(outs, weights)
}

func mixExperts(outs []*autograd.Tensor, weights *autograd.Tensor) *autograd.Tensor {
	var mixed *autograd.Tensor
	for e, out := range outs {
		w := autograd.SliceCols(weights, e, e+1)
		term := autograd.MulColBroadcast(out, w)
		if mixed == nil {
			mixed = term
		} else {
			mixed = autograd.Add(mixed, term)
		}
	}
	return mixed
}

func (l *cgcLayer) parameters() []*autograd.Tensor {
	var ps []*autograd.Tensor
	for _, e := range l.shared {
		ps = append(ps, e.Parameters()...)
	}
	for _, e := range l.specific {
		ps = append(ps, e.Parameters()...)
	}
	for _, g := range l.domainGate {
		ps = append(ps, g.Parameters()...)
	}
	ps = append(ps, l.sharedGate.Parameters()...)
	return ps
}

// CGC is the single-level Customized Gate Control model — the
// building block of PLE, evaluated separately in the paper's industry
// experiments (Table VIII).
type CGC struct {
	enc    *Encoder
	layer  *cgcLayer
	towers []*nn.MLP
	rng    *rand.Rand
}

// NewCGC builds the CGC baseline from cfg.
func NewCGC(cfg Config) *CGC {
	cfg = cfg.withDefaults()
	rng := rngFor(cfg)
	enc := NewEncoder(cfg.Dataset, cfg.EmbDim, rng)
	hidden := cfg.Hidden[len(cfg.Hidden)-1]
	domains := cfg.Dataset.NumDomains()
	m := &CGC{
		enc:   enc,
		layer: newCGCLayer(enc.InputDim(), hidden, cfg.Experts, domains, cfg.Dropout, rng),
		rng:   rng,
	}
	for d := 0; d < domains; d++ {
		m.towers = append(m.towers, nn.NewMLP([]int{hidden, 16, 1}, nn.ReLU, 0, rng))
	}
	return m
}

// Forward implements Model.
func (m *CGC) Forward(b *data.Batch, training bool) *autograd.Tensor {
	x := m.enc.Concat(b)
	h := m.layer.forwardDomain(x, b.Domain, training, m.rng)
	return m.towers[b.Domain].Forward(h, training, m.rng)
}

// Parameters implements Model.
func (m *CGC) Parameters() []*autograd.Tensor {
	ps := m.enc.Parameters()
	ps = append(ps, m.layer.parameters()...)
	for _, t := range m.towers {
		ps = append(ps, t.Parameters()...)
	}
	return ps
}

// Name implements Model.
func (m *CGC) Name() string { return "CGC" }

// EmbeddingTables implements EmbeddingTabler.
func (m *CGC) EmbeddingTables() map[int]int { return m.enc.EmbeddingTables() }

// PLE is Progressive Layered Extraction (Tang et al., 2020): two stacked
// CGC extraction levels. The first level's shared mixture feeds the
// second level's experts alongside the domain mixture, progressively
// separating shared and specific information.
type PLE struct {
	enc    *Encoder
	level1 *cgcLayer
	level2 *cgcLayer
	towers []*nn.MLP
	rng    *rand.Rand
}

// NewPLE builds the PLE baseline from cfg.
func NewPLE(cfg Config) *PLE {
	cfg = cfg.withDefaults()
	rng := rngFor(cfg)
	enc := NewEncoder(cfg.Dataset, cfg.EmbDim, rng)
	hidden := cfg.Hidden[len(cfg.Hidden)-1]
	domains := cfg.Dataset.NumDomains()
	m := &PLE{
		enc:    enc,
		level1: newCGCLayer(enc.InputDim(), hidden, cfg.Experts, domains, cfg.Dropout, rng),
		level2: newCGCLayer(hidden, hidden, cfg.Experts, domains, cfg.Dropout, rng),
		rng:    rng,
	}
	for d := 0; d < domains; d++ {
		m.towers = append(m.towers, nn.NewMLP([]int{hidden, 16, 1}, nn.ReLU, 0, rng))
	}
	return m
}

// Forward implements Model.
func (m *PLE) Forward(b *data.Batch, training bool) *autograd.Tensor {
	x := m.enc.Concat(b)
	domainH := m.level1.forwardDomain(x, b.Domain, training, m.rng)
	sharedH := m.level1.forwardShared(x, training, m.rng)
	// The second level's domain path consumes the first level's domain
	// mixture; its shared experts consume the shared mixture. We follow
	// PLE's progressive routing by feeding the domain gate the domain
	// mixture and the specific expert the domain mixture, while shared
	// experts read the shared path.
	h := m.level2.forwardProgressive(domainH, sharedH, b.Domain, training, m.rng)
	return m.towers[b.Domain].Forward(h, training, m.rng)
}

// forwardProgressive is the level-2 routing: shared experts read the
// shared path, the domain's specific expert reads the domain path, and
// the domain gate (driven by the domain path) mixes them.
func (l *cgcLayer) forwardProgressive(domainX, sharedX *autograd.Tensor, domain int, training bool, rng *rand.Rand) *autograd.Tensor {
	outs := make([]*autograd.Tensor, 0, len(l.shared)+1)
	for _, ex := range l.shared {
		outs = append(outs, autograd.ReLU(ex.Forward(sharedX, training, rng)))
	}
	outs = append(outs, autograd.ReLU(l.specific[domain].Forward(domainX, training, rng)))
	weights := autograd.SoftmaxRows(l.domainGate[domain].Forward(domainX))
	return mixExperts(outs, weights)
}

// Parameters implements Model.
func (m *PLE) Parameters() []*autograd.Tensor {
	ps := m.enc.Parameters()
	ps = append(ps, m.level1.parameters()...)
	ps = append(ps, m.level2.parameters()...)
	for _, t := range m.towers {
		ps = append(ps, t.Parameters()...)
	}
	return ps
}

// Name implements Model.
func (m *PLE) Name() string { return "PLE" }

// EmbeddingTables implements EmbeddingTabler.
func (m *PLE) EmbeddingTables() map[int]int { return m.enc.EmbeddingTables() }
