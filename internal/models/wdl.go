package models

import (
	"math/rand"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/nn"
)

func init() {
	Register("wdl", func(cfg Config) Model { return NewWDL(cfg) })
}

// WDL is Wide & Deep Learning (Cheng et al., 2016): a generalized linear
// "wide" component that memorizes feature-level effects plus a deep MLP
// that generalizes, combined at the logit level.
//
// In learned-embedding mode the wide part is a per-field weight table
// (the linear term of a factorization machine); in fixed-feature mode it
// is a linear layer over the frozen features.
type WDL struct {
	enc       *Encoder
	wideEmbs  []*nn.Embedding // vocab x 1 per field (learned mode)
	wideDense *nn.Dense       // fixed mode
	wideBias  *autograd.Tensor
	deep      *nn.MLP
	rng       *rand.Rand
}

// NewWDL builds the Wide & Deep baseline from cfg.
func NewWDL(cfg Config) *WDL {
	cfg = cfg.withDefaults()
	rng := rngFor(cfg)
	enc := NewEncoder(cfg.Dataset, cfg.EmbDim, rng)
	m := &WDL{
		enc:      enc,
		wideBias: autograd.ParamZeros(1, 1),
		rng:      rng,
	}
	if cfg.Dataset.HasFixedFeatures() {
		m.wideDense = nn.NewDense(enc.InputDim(), 1, nn.Linear, rng)
	} else {
		for _, f := range cfg.Dataset.Schema.Fields() {
			m.wideEmbs = append(m.wideEmbs, nn.NewEmbedding(f.Vocab, 1, 0.01, rng))
		}
	}
	dims := append([]int{enc.InputDim()}, cfg.Hidden...)
	dims = append(dims, 1)
	m.deep = nn.NewMLP(dims, nn.ReLU, cfg.Dropout, rng)
	return m
}

// wide computes the linear component's logit (Nx1).
func (m *WDL) wide(b *data.Batch) *autograd.Tensor {
	if m.wideDense != nil {
		return m.wideDense.Forward(m.enc.Concat(b))
	}
	var acc *autograd.Tensor
	for f, emb := range m.wideEmbs {
		term := emb.Lookup(b.FieldValues[f])
		if acc == nil {
			acc = term
		} else {
			acc = autograd.Add(acc, term)
		}
	}
	n := len(b.Labels)
	bias := make([]float64, n)
	for i := range bias {
		bias[i] = 1
	}
	return autograd.Add(acc, autograd.MatMul(autograd.New(n, 1, bias), m.wideBias))
}

// Forward implements Model.
func (m *WDL) Forward(b *data.Batch, training bool) *autograd.Tensor {
	deep := m.deep.Forward(m.enc.Concat(b), training, m.rng)
	return autograd.Add(m.wide(b), deep)
}

// Parameters implements Model.
func (m *WDL) Parameters() []*autograd.Tensor {
	ps := m.enc.Parameters()
	for _, e := range m.wideEmbs {
		ps = append(ps, e.Parameters()...)
	}
	if m.wideDense != nil {
		ps = append(ps, m.wideDense.Parameters()...)
	}
	ps = append(ps, m.wideBias)
	return append(ps, m.deep.Parameters()...)
}

// Name implements Model.
func (m *WDL) Name() string { return "WDL" }

// EmbeddingTables implements EmbeddingTabler: the encoder's tables plus
// the per-field wide tables (vocab x 1) that follow them.
func (m *WDL) EmbeddingTables() map[int]int {
	tables := m.enc.EmbeddingTables()
	base := len(m.enc.Parameters())
	for f := range m.wideEmbs {
		tables[base+f] = f
	}
	return tables
}
