package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func collectingTracer(opts Options) (*Tracer, *Collector) {
	t := New(opts)
	c := NewCollector(0)
	t.AddSink(c)
	return t, c
}

func TestSpanParentChildLinks(t *testing.T) {
	tr, col := collectingTracer(Options{})
	ctx := tr.Context(context.Background())

	ctx, root := Start(ctx, "root", A("worker", 3))
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grandchild")
	grand.End()
	child.End()
	root.EndWith(A("loss", 0.5))

	spans := col.Spans()
	if len(spans) != 3 {
		t.Fatalf("collected %d spans, want 3", len(spans))
	}
	// Completion order: grandchild, child, root.
	g, c, r := spans[0], spans[1], spans[2]
	if r.ParentID != 0 || c.ParentID != r.ID || g.ParentID != c.ID {
		t.Fatalf("parent links wrong: root=%x child.parent=%x grand.parent=%x", r.ID, c.ParentID, g.ParentID)
	}
	if r.TraceID != c.TraceID || c.TraceID != g.TraceID {
		t.Fatal("trace ids differ within one trace")
	}
	if len(r.Attrs()) != 2 {
		t.Fatalf("root attrs = %v, want worker + loss", r.Attrs())
	}
}

func TestStartWithoutTracerIsNoop(t *testing.T) {
	ctx, s := Start(context.Background(), "orphan")
	if s != nil {
		t.Fatal("expected nil span without a tracer")
	}
	// All nil-span methods must be safe.
	s.SetAttr("k", 1)
	s.End()
	s.EndWith(A("k", 2))
	if s.Context().Valid() {
		t.Fatal("nil span produced a valid TraceContext")
	}
	if _, s2 := Start(ctx, "child-of-orphan"); s2 != nil {
		t.Fatal("child of nil span should be nil")
	}
	var tr *Tracer
	if tr.Context(context.Background()) != context.Background() {
		t.Fatal("nil tracer must not modify the context")
	}
	tr.Flight().Trigger("x", nil) // must not panic
}

func TestRemotePropagation(t *testing.T) {
	workerTr, workerCol := collectingTracer(Options{})
	serverTr, serverCol := collectingTracer(Options{})

	wctx := workerTr.Context(context.Background())
	wctx, caller := Start(wctx, "worker.inner_step")

	// Simulate the RPC boundary: serialize the caller's TraceContext,
	// rebuild the server-side context from it.
	tc := ContextOf(wctx)
	if !tc.Valid() || !tc.Sampled {
		t.Fatalf("caller TraceContext = %+v", tc)
	}
	sctx := WithRemote(context.Background(), serverTr, tc)
	_, remote := Start(sctx, "ps.pull_rows")
	remote.End()
	caller.End()

	rs := serverCol.Spans()
	if len(rs) != 1 {
		t.Fatalf("server collected %d spans, want 1", len(rs))
	}
	if !rs[0].Remote {
		t.Fatal("server span not marked Remote")
	}
	if rs[0].TraceID != caller.TraceID || rs[0].ParentID != caller.ID {
		t.Fatalf("server span (trace=%x parent=%x) not parented to caller (trace=%x id=%x)",
			rs[0].TraceID, rs[0].ParentID, caller.TraceID, caller.ID)
	}
	if len(workerCol.Spans()) != 1 {
		t.Fatal("worker span not collected")
	}
}

func TestSamplingZeroRateStillUnbiased(t *testing.T) {
	// Sample ~10%: out of many roots, some but not all survive, and
	// children always follow their root's decision.
	tr, col := collectingTracer(Options{Sample: 0.1, FlightSize: -1})
	ctx := tr.Context(context.Background())
	const roots = 500
	for i := 0; i < roots; i++ {
		rctx, root := Start(ctx, "root")
		_, child := Start(rctx, "child")
		child.End()
		root.End()
	}
	n := len(col.Spans())
	if n == 0 || n == 2*roots {
		t.Fatalf("sampled %d of %d spans; expected partial sampling", n, 2*roots)
	}
	if n%2 != 0 {
		t.Fatalf("sampled %d spans; children must follow roots (even count)", n)
	}
}

func TestConcurrentSpansRaceClean(t *testing.T) {
	tr, col := collectingTracer(Options{})
	ctx := tr.Context(context.Background())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, s := Start(ctx, "op", A("goroutine", g))
				_, inner := Start(c, "inner")
				inner.End()
				s.End()
			}
		}(g)
	}
	wg.Wait()
	if got := len(col.Spans()); got != 8*50*2 {
		t.Fatalf("collected %d spans, want %d", got, 800)
	}
}

func TestChromeExportParses(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.trace.json")
	tr := New(Options{FlightSize: -1})
	exp := NewChromeExporter(path, 42)
	tr.AddSink(exp)

	ctx := tr.Context(context.Background())
	rctx, root := Start(ctx, "dn.outer_step")
	_, inner := Start(rctx, "dn.inner_step", A("domain", "books"))
	time.Sleep(time.Millisecond)
	inner.End()
	root.End()
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}

	events := loadChrome(t, path)
	if len(events) != 2 {
		t.Fatalf("trace has %d events, want 2", len(events))
	}
	byName := map[string]map[string]any{}
	for _, ev := range events {
		if ev["ph"] != "X" || ev["pid"] != float64(42) {
			t.Fatalf("bad event: %v", ev)
		}
		byName[ev["name"].(string)] = ev
	}
	in, ok := byName["dn.inner_step"]
	if !ok {
		t.Fatal("inner step missing")
	}
	args := in["args"].(map[string]any)
	if args["domain"] != "books" {
		t.Fatalf("inner args = %v", args)
	}
	if args["parent"] != byName["dn.outer_step"]["args"].(map[string]any)["span"] {
		t.Fatal("chrome args do not link child to parent")
	}
	if in["dur"].(float64) < 1000 {
		t.Fatalf("inner dur = %v us, slept 1ms", in["dur"])
	}
}

func loadChrome(t *testing.T, path string) []map[string]any {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("not valid Chrome trace-event JSON: %v\n%s", err, raw)
	}
	return events
}

func TestJSONLExportLines(t *testing.T) {
	var sb strings.Builder
	exp := NewJSONLExporter(&sbWriter{&sb})
	tr := New(Options{FlightSize: -1})
	tr.AddSink(exp)
	ctx := tr.Context(context.Background())
	_, s := Start(ctx, "op", A("k", "v"))
	s.End()

	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if rec["name"] != "op" || rec["k"] != "v" || rec["span"] == "" {
		t.Fatalf("record = %v", rec)
	}
}

type sbWriter struct{ sb *strings.Builder }

func (w *sbWriter) Write(p []byte) (int, error) { return w.sb.Write(p) }

func TestFlightRecorderRingAndDump(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "flight")
	tr := New(Options{FlightSize: 64, FlightPath: prefix})
	ctx := tr.Context(context.Background())

	// Overfill the ring so it wraps: 100 spans into capacity 64.
	var last *Span
	for i := 0; i < 100; i++ {
		_, s := Start(ctx, "step", A("i", i))
		s.End()
		last = s
	}
	if got := len(tr.Flight().Snapshot()); got != 64 {
		t.Fatalf("ring holds %d spans, want 64", got)
	}

	fields := map[string]any{"loss": "NaN", "span_id": last.ID}
	tr.Flight().Trigger("nan_loss", fields)
	tr.Flight().Trigger("nan_loss", fields) // latched: must not dump twice

	dumps := tr.Flight().Dumps()
	if len(dumps) != 1 {
		t.Fatalf("%d dumps fired, want exactly 1", len(dumps))
	}
	events := loadChrome(t, prefix+"-nan_loss.trace.json")
	var spans, markers, triggers int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			spans++
			if args, ok := ev["args"].(map[string]any); ok && args["anomaly_trigger"] == true {
				triggers++
			}
		case "i":
			markers++
		}
	}
	if spans < 64 {
		t.Fatalf("dump holds %d spans, want >= 64", spans)
	}
	if markers != 1 {
		t.Fatalf("dump has %d anomaly markers, want 1", markers)
	}
	if triggers != 1 {
		t.Fatalf("dump marks %d triggering spans, want 1", triggers)
	}

	// The ring keeps the most recent spans: the oldest retained index
	// must be 100-64 = 36.
	snap := tr.Flight().Snapshot()
	if got := snap[0].Attrs()[0].Value.(int); got != 36 {
		t.Fatalf("oldest retained span is i=%d, want 36", got)
	}

	tr.Flight().Rearm("nan_loss")
	tr.Flight().Trigger("nan_loss", fields)
	if len(tr.Flight().Dumps()) != 2 {
		t.Fatal("rearmed kind did not dump again")
	}
}

func TestCaptureHandlerWindow(t *testing.T) {
	tr := New(Options{FlightSize: -1})
	ctx := tr.Context(context.Background())
	h := CaptureHandler(tr)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
			}
			_, s := Start(ctx, "background.op")
			s.End()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	req := httptest.NewRequest("GET", "/debug/trace?sec=1", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	done <- struct{}{}

	if rr.Code != 200 {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var events []map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &events); err != nil {
		t.Fatalf("capture is not valid Chrome JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("capture window collected nothing")
	}
	// The temporary sink must be gone after the window.
	tr.mu.Lock()
	n := len(*tr.sinks.Load())
	tr.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d sinks left attached after capture", n)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace?sec=bogus", nil))
	if rr.Code != 400 {
		t.Fatalf("bad sec: status %d, want 400", rr.Code)
	}
	rr = httptest.NewRecorder()
	CaptureHandler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace", nil))
	if rr.Code != 404 {
		t.Fatalf("nil tracer: status %d, want 404", rr.Code)
	}
}
