// Package trace is a dependency-free span tracer for the MAMDR
// pipeline: context.Context-carried spans with start/end times,
// attributes, and parent links, safe to create from any goroutine.
//
// Aggregate metrics (package telemetry) say *that* a DN outer step is
// slow; spans say *why* — which domain's inner step stalled, on which
// PS pull, behind which forward pass. Spans propagate across the
// net/rpc transport as a TraceContext field in the RPC arguments, so a
// parameter-server-side span links to the worker-side span that issued
// the call even across a real socket.
//
// Completed spans flow to pluggable Sinks: a Chrome trace-event JSON
// exporter (loadable in Perfetto or chrome://tracing), an append-only
// JSONL exporter, a bounded in-memory Collector (behind the
// /debug/trace capture handler), and the FlightRecorder — a ring
// buffer of the most recent spans that dumps itself to disk when an
// anomaly fires (NaN loss, loss spike, RPC error, serve-pool
// saturation).
//
// Everything is nil-receiver-safe: a nil *Tracer yields nil *Spans
// whose methods all no-op, so instrumented hot paths never branch on
// tracing being enabled and the disabled path costs two context
// lookups per Start.
package trace

import (
	"context"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values should be
// JSON-encodable scalars (string, int, float64, bool).
type Attr struct {
	Key   string
	Value any
}

// A is shorthand for constructing an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// TraceContext is the wire-format parent reference: the identifiers a
// caller embeds in RPC arguments so the callee's spans join the
// caller's trace. All fields are exported for gob encoding.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
	Sampled bool
}

// Valid reports whether the context references a real trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// Span is one timed operation. A span is owned by the goroutine that
// started it until End; after End it is immutable and may be read by
// exporters concurrently. Propagate work to other goroutines by
// passing the context returned from Start — children started there
// link back safely.
type Span struct {
	// Name is the operation name, e.g. "worker.inner_step".
	Name string
	// TraceID groups all spans of one logical operation; ID identifies
	// this span; ParentID is zero for roots.
	TraceID, ID, ParentID uint64
	// Remote marks spans whose parent arrived via a propagated
	// TraceContext rather than an in-process context.
	Remote bool

	tracer  *Tracer
	sampled bool
	start   time.Time
	dur     time.Duration
	attrs   []Attr
	ended   atomic.Bool
}

// SetAttr annotates the span. Call only from the owning goroutine,
// before End.
func (s *Span) SetAttr(key string, value any) {
	if s == nil || !s.sampled {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End completes the span and hands it to the tracer's sinks. Multiple
// Ends are safe; only the first one records.
func (s *Span) End() {
	if s == nil || !s.sampled || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.dur = time.Since(s.start)
	s.tracer.record(s)
}

// EndWith attaches final attributes and ends the span.
func (s *Span) EndWith(attrs ...Attr) {
	if s == nil || !s.sampled {
		return
	}
	s.attrs = append(s.attrs, attrs...)
	s.End()
}

// Context returns the span's propagation context for embedding in RPC
// arguments. A nil span yields the zero (invalid) TraceContext.
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.TraceID, SpanID: s.ID, Sampled: s.sampled}
}

// Start returns the span's start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the span's duration (zero before End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Attrs returns the span's attributes. Read only after End.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// --- identifiers ---

// Span and trace ids combine a per-process random high half with an
// atomic counter, so ids are unique within a process and collide
// across processes only with ~2^-32 probability — good enough to tell
// worker-side and server-side spans apart in a merged trace view.
var (
	idHi  = uint64(rand.Uint32()+1) << 32
	idSeq atomic.Uint64
)

func newID() uint64 { return idHi | (idSeq.Add(1) & 0xffffffff) }

// --- context plumbing ---

type ctxKey int

const (
	spanKey ctxKey = iota
	tracerKey
	remoteKey
)

// Context installs the tracer into ctx so Start can create root spans.
// A nil tracer returns ctx unchanged.
func (t *Tracer) Context(ctx context.Context) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// WithRemote installs a remote parent (a TraceContext that arrived in
// RPC arguments) and the local tracer into ctx: the next Start becomes
// a Remote child of the caller's span. An invalid tc or nil tracer
// falls back to plain tracer installation.
func WithRemote(ctx context.Context, t *Tracer, tc TraceContext) context.Context {
	ctx = t.Context(ctx)
	if t == nil || !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey, tc)
}

// FromContext returns the current span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// ContextOf returns the propagation context of the current span (the
// zero TraceContext when none is active). This is what RPC clients
// embed in their call arguments.
func ContextOf(ctx context.Context) TraceContext {
	return FromContext(ctx).Context()
}

// Start begins a span named name: a child of the context's current
// span if one is active, else a Remote child of a propagated
// TraceContext installed by WithRemote, else a new sampled-or-not root
// if a tracer is installed. Without any of those it returns (ctx, nil)
// — and every method on a nil span is a no-op — so call sites never
// branch.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		s := &Span{
			Name:     name,
			TraceID:  parent.TraceID,
			ParentID: parent.ID,
			tracer:   parent.tracer,
			sampled:  parent.sampled,
		}
		if s.sampled {
			s.ID = newID()
			s.start = time.Now()
			s.attrs = attrs
		}
		return context.WithValue(ctx, spanKey, s), s
	}
	t, _ := ctx.Value(tracerKey).(*Tracer)
	if t == nil {
		return ctx, nil
	}
	s := &Span{Name: name, tracer: t}
	if tc, ok := ctx.Value(remoteKey).(TraceContext); ok && tc.Valid() {
		s.TraceID, s.ParentID, s.Remote = tc.TraceID, tc.SpanID, true
		s.sampled = tc.Sampled
	} else {
		s.TraceID = newID()
		s.sampled = t.sampleRoot()
	}
	if s.sampled {
		s.ID = newID()
		s.start = time.Now()
		s.attrs = attrs
	}
	return context.WithValue(ctx, spanKey, s), s
}

// --- tracer ---

// Sink receives completed spans. Record must be safe for concurrent
// use and must not retain the span's attrs slice for mutation (spans
// are immutable after End).
type Sink interface {
	Record(s *Span)
}

// Options configures a Tracer.
type Options struct {
	// Sample is the fraction of root spans recorded, in (0, 1].
	// Zero or anything >= 1 samples everything. Children inherit the
	// root's decision, as does the remote side of a propagated call.
	Sample float64
	// FlightSize is the flight-recorder ring capacity (completed
	// spans retained for anomaly dumps). Zero means the default 256;
	// negative disables the recorder.
	FlightSize int
	// FlightPath is the dump file prefix: an anomaly of kind K writes
	// <FlightPath>-K.trace.json. Empty keeps dumps in memory only.
	FlightPath string
	// PID labels exported Chrome events; zero means os.Getpid().
	PID int
}

// Tracer creates and collects spans. The zero value is not usable;
// call New. A nil *Tracer is a valid disabled tracer.
type Tracer struct {
	sample float64
	pid    int
	flight *FlightRecorder

	mu    sync.Mutex // guards sink add/remove (copy-on-write)
	sinks atomic.Pointer[[]Sink]
}

// New builds a tracer. The flight recorder (unless disabled) is
// attached as a permanent sink.
func New(opts Options) *Tracer {
	t := &Tracer{sample: opts.Sample, pid: opts.PID}
	if t.pid == 0 {
		t.pid = os.Getpid()
	}
	size := opts.FlightSize
	if size == 0 {
		size = 256
	}
	if size > 0 {
		t.flight = NewFlightRecorder(size, opts.FlightPath)
		t.flight.pid = t.pid
		t.AddSink(t.flight)
	}
	return t
}

// Flight returns the tracer's flight recorder (nil when disabled or
// on a nil tracer). FlightRecorder methods are nil-receiver-safe, so
// tracer.Flight().Trigger(...) is always a safe call.
func (t *Tracer) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.flight
}

// PID returns the process id used in Chrome exports.
func (t *Tracer) PID() int {
	if t == nil {
		return 0
	}
	return t.pid
}

// AddSink attaches a sink to receive every completed span.
func (t *Tracer) AddSink(s Sink) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.sinks.Load()
	var next []Sink
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, s)
	t.sinks.Store(&next)
}

// RemoveSink detaches a previously added sink.
func (t *Tracer) RemoveSink(s Sink) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.sinks.Load()
	if old == nil {
		return
	}
	next := make([]Sink, 0, len(*old))
	for _, have := range *old {
		if have != s {
			next = append(next, have)
		}
	}
	t.sinks.Store(&next)
}

func (t *Tracer) record(s *Span) {
	if t == nil {
		return
	}
	sinks := t.sinks.Load()
	if sinks == nil {
		return
	}
	for _, sink := range *sinks {
		sink.Record(s)
	}
}

func (t *Tracer) sampleRoot() bool {
	if t.sample <= 0 || t.sample >= 1 {
		return true
	}
	return rand.Float64() < t.sample
}
