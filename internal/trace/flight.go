package trace

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// FlightRecorder continuously retains the last N completed spans in a
// ring buffer and dumps them — as a Chrome trace-event JSON file with
// the triggering span marked — when an anomaly fires. It is the
// "what happened in the seconds before the loss went NaN" answer that
// aggregate metrics cannot give.
//
// Each anomaly kind dumps at most once per recorder lifetime (a NaN
// loss repeats every subsequent step; one dump of the run-up is the
// signal, a thousand identical dumps are noise). Rearm re-enables a
// kind after the dump has been collected.
//
// Trigger's signature matches telemetry's AnomalySink interface, so a
// recorder can be handed directly to telemetry.NewLossWatch without
// either package importing the other.
type FlightRecorder struct {
	mu     sync.Mutex
	buf    []*Span
	next   int
	full   bool
	path   string
	pid    int
	fired  map[string]bool
	dumps  []Dump
	onDump func(Dump)
}

// Dump describes one completed anomaly dump.
type Dump struct {
	Kind string
	// Path is the written file ("" when the recorder has no dump
	// path; the spans are still retained in Spans).
	Path  string
	Spans []*Span
	// Fields are the anomaly details supplied by the trigger.
	Fields map[string]any
}

// NewFlightRecorder retains the last capacity completed spans and
// dumps anomalies to <pathPrefix>-<kind>.trace.json (memory-only when
// pathPrefix is empty).
func NewFlightRecorder(capacity int, pathPrefix string) *FlightRecorder {
	if capacity < 1 {
		capacity = 256
	}
	return &FlightRecorder{
		buf:   make([]*Span, capacity),
		path:  pathPrefix,
		pid:   os.Getpid(),
		fired: map[string]bool{},
	}
}

// Record implements Sink.
func (f *FlightRecorder) Record(s *Span) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.buf[f.next] = s
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.full = true
	}
	f.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (f *FlightRecorder) Snapshot() []*Span {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snapshotLocked()
}

func (f *FlightRecorder) snapshotLocked() []*Span {
	if !f.full {
		return append([]*Span(nil), f.buf[:f.next]...)
	}
	out := make([]*Span, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out
}

// Trigger fires an anomaly of the given kind: the ring buffer is
// dumped exactly once per kind (later triggers of the same kind are
// dropped until Rearm). fields annotate the dump's anomaly marker;
// the keys "trace_id" and "span_id" (uint64), when present, identify
// the span that tripped the detector so the dump marks it.
//
// Trigger satisfies telemetry.AnomalySink. A nil recorder ignores
// triggers, so tracer.Flight().Trigger(...) is safe unconditionally.
func (f *FlightRecorder) Trigger(kind string, fields map[string]any) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if f.fired[kind] {
		f.mu.Unlock()
		return
	}
	f.fired[kind] = true
	spans := f.snapshotLocked()
	f.mu.Unlock()

	var trigger uint64
	if v, ok := fields["span_id"].(uint64); ok {
		trigger = v
	}
	d := Dump{Kind: kind, Spans: spans, Fields: fields}
	if f.path != "" {
		d.Path = fmt.Sprintf("%s-%s.trace.json", f.path, kind)
		f.writeDump(d, trigger)
	}
	f.mu.Lock()
	f.dumps = append(f.dumps, d)
	hook := f.onDump
	f.mu.Unlock()
	if hook != nil {
		hook(d)
	}
}

// SetOnDump registers a callback invoked after every anomaly dump
// completes (file written, dump recorded). Companion collectors — the
// continuous profiler's on-disk ring, for one — use it to flush their
// own state next to the trace file so an alert ships with everything
// known about the moments before it. The callback runs on the
// triggering goroutine without the recorder's lock held.
func (f *FlightRecorder) SetOnDump(fn func(Dump)) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.onDump = fn
	f.mu.Unlock()
}

// writeDump renders the dump file; failures are swallowed (the
// recorder must never take down the run it is observing).
func (f *FlightRecorder) writeDump(d Dump, trigger uint64) {
	w, err := os.Create(d.Path)
	if err != nil {
		return
	}
	defer w.Close()
	args := map[string]any{"kind": d.Kind}
	for k, v := range d.Fields {
		args[k] = v
	}
	marker := chromeEvent{
		Name: "ANOMALY: " + d.Kind, Cat: "anomaly", Phase: "i",
		TS: time.Now().UnixMicro(), PID: f.pid, Scope: "g", Args: args,
	}
	WriteChrome(w, d.Spans, f.pid, trigger, marker)
}

// Dumps returns the anomaly dumps fired so far.
func (f *FlightRecorder) Dumps() []Dump {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Dump(nil), f.dumps...)
}

// Rearm re-enables dumping for an anomaly kind after its dump has
// been collected.
func (f *FlightRecorder) Rearm(kind string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	delete(f.fired, kind)
	f.mu.Unlock()
}
