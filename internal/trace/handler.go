package trace

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// CaptureHandler serves capture-on-demand tracing: GET
// /debug/trace?sec=N attaches a temporary collector to the tracer,
// waits N seconds (default 5, capped at 120), and responds with
// everything that completed in the window as a Chrome trace-event
// JSON download — no restart, no always-on export cost. Cancelling
// the request ends the capture early with whatever was collected.
func CaptureHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing not enabled", http.StatusNotFound)
			return
		}
		sec := 5
		if v := r.URL.Query().Get("sec"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				http.Error(w, "sec must be a positive integer", http.StatusBadRequest)
				return
			}
			sec = n
		}
		if sec > 120 {
			sec = 120
		}

		col := NewCollector(0)
		t.AddSink(col)
		select {
		case <-time.After(time.Duration(sec) * time.Second):
		case <-r.Context().Done():
		}
		t.RemoveSink(col)

		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf(`attachment; filename="capture-%ds.trace.json"`, sec))
		WriteChrome(w, col.Spans(), t.pid, 0)
	})
}
