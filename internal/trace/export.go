package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// --- Chrome trace-event JSON ---

// chromeEvent is one entry of the Chrome trace-event format's JSON
// array form (the subset Perfetto and chrome://tracing load: complete
// "X" events plus instant "i" markers).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"` // microseconds
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTID maps a span to a Chrome "thread" row. All spans of one
// trace share a row — a trace is one goroutine chain (a worker epoch,
// a serve request), so its spans nest properly in time and Perfetto
// renders the nesting as a flame graph.
func chromeTID(s *Span) uint64 { return s.TraceID & 0xffffffff }

func spanToChrome(s *Span, pid int, trigger bool) chromeEvent {
	args := map[string]any{
		"trace":  fmt.Sprintf("%016x", s.TraceID),
		"span":   fmt.Sprintf("%016x", s.ID),
		"parent": fmt.Sprintf("%016x", s.ParentID),
	}
	if s.Remote {
		args["remote"] = true
	}
	if trigger {
		args["anomaly_trigger"] = true
	}
	for _, a := range s.attrs {
		args[a.Key] = a.Value
	}
	cat := "span"
	if s.Remote {
		cat = "rpc"
	}
	dur := s.dur.Microseconds()
	if dur < 1 {
		dur = 1 // zero-duration events vanish in viewers
	}
	return chromeEvent{
		Name: s.Name, Cat: cat, Phase: "X",
		TS: s.start.UnixMicro(), Dur: dur,
		PID: pid, TID: chromeTID(s), Args: args,
	}
}

// WriteChrome renders spans as a Chrome trace-event JSON array.
// trigger, when non-zero, marks that span id with anomaly_trigger;
// extra events (e.g. anomaly instants) are appended verbatim.
func WriteChrome(w io.Writer, spans []*Span, pid int, trigger uint64, extra ...chromeEvent) error {
	events := make([]chromeEvent, 0, len(spans)+len(extra))
	for _, s := range spans {
		events = append(events, spanToChrome(s, pid, trigger != 0 && s.ID == trigger))
	}
	events = append(events, extra...)
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	for i, ev := range events {
		if i > 0 {
			bw.WriteString(",\n")
		}
		if err := enc.Encode(ev); err != nil { // Encode appends \n; harmless inside the array
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ChromeExporter is a Sink that accumulates every completed span and
// writes one Chrome trace-event JSON file on Close. Suitable for
// bounded runs (mamdr-train -trace); for always-on serving prefer the
// /debug/trace capture handler, which bounds memory by time window.
type ChromeExporter struct {
	mu    sync.Mutex
	spans []*Span
	path  string
	pid   int
}

// NewChromeExporter buffers spans destined for path.
func NewChromeExporter(path string, pid int) *ChromeExporter {
	if pid == 0 {
		pid = os.Getpid()
	}
	return &ChromeExporter{path: path, pid: pid}
}

// Record implements Sink.
func (e *ChromeExporter) Record(s *Span) {
	e.mu.Lock()
	e.spans = append(e.spans, s)
	e.mu.Unlock()
}

// Len returns the number of buffered spans.
func (e *ChromeExporter) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.spans)
}

// Close writes the trace file.
func (e *ChromeExporter) Close() error {
	e.mu.Lock()
	spans := e.spans
	e.spans = nil
	e.mu.Unlock()
	f, err := os.Create(e.path)
	if err != nil {
		return fmt.Errorf("trace: create %s: %w", e.path, err)
	}
	if err := WriteChrome(f, spans, e.pid, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// --- JSONL ---

// JSONLExporter is a Sink that streams one JSON object per completed
// span — append-only, crash-tolerant (every line written is complete),
// and greppable.
type JSONLExporter struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
}

// NewJSONLExporter streams span lines to w.
func NewJSONLExporter(w io.Writer) *JSONLExporter { return &JSONLExporter{w: w} }

// OpenJSONLExporter appends span lines to the file at path.
func OpenJSONLExporter(path string) (*JSONLExporter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace: open span log: %w", err)
	}
	return &JSONLExporter{w: f, closer: f}, nil
}

// Record implements Sink. Marshal failures are dropped — tracing must
// never take down the traced process.
func (e *JSONLExporter) Record(s *Span) {
	rec := map[string]any{
		"name":   s.Name,
		"trace":  fmt.Sprintf("%016x", s.TraceID),
		"span":   fmt.Sprintf("%016x", s.ID),
		"parent": fmt.Sprintf("%016x", s.ParentID),
		"start":  s.start.UTC().Format("2006-01-02T15:04:05.000000Z"),
		"dur_us": s.dur.Microseconds(),
	}
	if s.Remote {
		rec["remote"] = true
	}
	for _, a := range s.attrs {
		rec[a.Key] = a.Value
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.w.Write(line)
	e.w.Write([]byte{'\n'})
}

// Close closes the underlying file when the exporter owns one.
func (e *JSONLExporter) Close() error {
	if e.closer == nil {
		return nil
	}
	return e.closer.Close()
}

// --- bounded in-memory collection (capture windows, tests) ---

// Collector is a Sink that retains completed spans in memory up to a
// cap (default 1<<17), dropping and counting the overflow.
type Collector struct {
	mu      sync.Mutex
	spans   []*Span
	max     int
	dropped int
}

// NewCollector retains at most max spans (<= 0 means the default).
func NewCollector(max int) *Collector {
	if max <= 0 {
		max = 1 << 17
	}
	return &Collector{max: max}
}

// Record implements Sink.
func (c *Collector) Record(s *Span) {
	c.mu.Lock()
	if len(c.spans) < c.max {
		c.spans = append(c.spans, s)
	} else {
		c.dropped++
	}
	c.mu.Unlock()
}

// Spans returns the collected spans (shared backing array; treat as
// read-only).
func (c *Collector) Spans() []*Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spans
}

// Dropped returns how many spans overflowed the cap.
func (c *Collector) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}
