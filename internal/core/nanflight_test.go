package core

import (
	"math"
	"testing"

	"mamdr/internal/autograd"
	"mamdr/internal/telemetry"
	"mamdr/internal/trace"
)

// TestPoisonedWeightTripsNaNFlightRecorder closes the loop on the
// MatMul zero-skip fix at the observability layer: a non-finite
// parameter row whose matching activations are all zero used to be
// skipped entirely, so the loss stayed finite and the anomaly flight
// recorder never fired — the exact blind spot that let a poisoned
// model serve silently. With the kernel rewrite the 0×Inf product
// poisons the loss and the nan_loss watch dumps the run-up.
func TestPoisonedWeightTripsNaNFlightRecorder(t *testing.T) {
	rec := trace.NewFlightRecorder(16, "")
	watch := telemetry.NewLossWatch(rec, 3, 5)

	// Feature vector with a dead (zero) input wired to a poisoned
	// weight row: the only path to the Inf is through 0×Inf.
	x := autograd.New(1, 2, []float64{0, 1})
	w := autograd.Param(2, 1, []float64{math.Inf(1), 0.5})
	logits := autograd.MatMul(x, w)
	loss := autograd.BCEWithLogits(logits, []float64{1})

	if !math.IsNaN(loss.Item()) {
		t.Fatalf("loss = %g, want NaN: zero-skip is masking the poisoned weight", loss.Item())
	}
	watch.Observe("taobao-poisoned", loss.Item(), nil)

	dumps := rec.Dumps()
	if len(dumps) != 1 || dumps[0].Kind != "nan_loss" {
		t.Fatalf("flight recorder dumps = %+v, want one nan_loss dump", dumps)
	}
	loss.Release()
}
