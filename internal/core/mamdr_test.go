package core

import (
	"math"
	"math/rand"
	"testing"

	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/paramvec"
	"mamdr/internal/synth"
)

func testDataset(t testing.TB, conflict float64) *data.Dataset {
	t.Helper()
	return synth.Generate(synth.Config{
		Name: "core-test", Seed: 33, ConflictStrength: conflict,
		Domains: []synth.DomainSpec{
			{Name: "a", Samples: 700, CTRRatio: 0.3},
			{Name: "b", Samples: 500, CTRRatio: 0.4},
			{Name: "c", Samples: 300, CTRRatio: 0.25},
			{Name: "sparse", Samples: 60, CTRRatio: 0.3},
		},
	})
}

func testModel(t testing.TB, ds *data.Dataset) models.Model {
	t.Helper()
	return models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 4, Hidden: []int{16, 8}, Seed: 5})
}

func TestMAMDRVariantsRegistered(t *testing.T) {
	for _, key := range []string{"dn", "dr", "mamdr"} {
		if _, err := framework.New(key); err != nil {
			t.Fatalf("New(%s): %v", key, err)
		}
	}
}

func TestVariantNames(t *testing.T) {
	cases := map[string]string{
		"dn":    "DN",
		"dr":    "DR",
		"mamdr": "MAMDR (DN+DR)",
	}
	for key, want := range cases {
		if got := framework.MustNew(key).Name(); got != want {
			t.Fatalf("%s.Name() = %q, want %q", key, got, want)
		}
	}
	if (&MAMDR{}).Name() != "Alternate" {
		t.Fatal("no-DN-no-DR variant should be named Alternate")
	}
}

func TestMAMDRBeatsChance(t *testing.T) {
	ds := testDataset(t, 0.8)
	for _, key := range []string{"dn", "dr", "mamdr"} {
		m := testModel(t, ds)
		pred := framework.MustNew(key).Fit(m, ds, framework.Config{Epochs: 5, BatchSize: 32, Seed: 9})
		auc := framework.MeanAUC(pred, ds, data.Test)
		if auc < 0.55 {
			t.Fatalf("%s: test AUC %.4f, want > 0.55", key, auc)
		}
	}
}

func TestMAMDRReturnsState(t *testing.T) {
	ds := testDataset(t, 0.8)
	m := testModel(t, ds)
	pred := framework.MustNew("mamdr").Fit(m, ds, framework.Config{Epochs: 2, BatchSize: 32, Seed: 9})
	st, ok := pred.(*State)
	if !ok {
		t.Fatalf("Fit returned %T, want *State", pred)
	}
	if len(st.Specific) != ds.NumDomains() {
		t.Fatalf("specific vectors = %d, want %d", len(st.Specific), ds.NumDomains())
	}
	// With DR enabled, specific parameters must have moved off zero.
	var moved bool
	for _, v := range st.Specific {
		if paramvec.Norm(v) > 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("DR never updated any specific parameters")
	}
}

func TestDNOnlyKeepsSpecificsZero(t *testing.T) {
	ds := testDataset(t, 0.8)
	m := testModel(t, ds)
	st := framework.MustNew("dn").Fit(m, ds, framework.Config{Epochs: 2, BatchSize: 32, Seed: 9}).(*State)
	for d, v := range st.Specific {
		if paramvec.Norm(v) != 0 {
			t.Fatalf("w/o DR variant moved specific params of domain %d", d)
		}
	}
}

func TestComposedForIsSharedPlusSpecific(t *testing.T) {
	ds := testDataset(t, 0.5)
	m := testModel(t, ds)
	st := &State{Model: m, Shared: paramvec.Snapshot(m.Parameters())}
	st.AddDomain()
	st.AddDomain()
	paramvec.Axpy(st.Specific[1], 1, paramvec.Scale(st.Shared, 0.5))
	c0 := st.ComposedFor(0)
	c1 := st.ComposedFor(1)
	for i := range c0 {
		for j := range c0[i] {
			if c0[i][j] != st.Shared[i][j] {
				t.Fatal("domain 0 composition should equal shared")
			}
			want := st.Shared[i][j] * 1.5
			if math.Abs(c1[i][j]-want) > 1e-12 {
				t.Fatal("domain 1 composition wrong")
			}
		}
	}
}

func TestStatePredictRestoresParams(t *testing.T) {
	ds := testDataset(t, 0.5)
	m := testModel(t, ds)
	st := framework.MustNew("mamdr").Fit(m, ds, framework.Config{Epochs: 1, BatchSize: 32, Seed: 9}).(*State)
	params := m.Parameters()
	before := paramvec.Snapshot(params)
	_ = st.Predict(ds.FullBatch(2, data.Test))
	after := paramvec.Snapshot(params)
	if paramvec.Norm(paramvec.Sub(after, before)) != 0 {
		t.Fatal("Predict did not restore model parameters")
	}
}

func TestStatePredictUsesDomainSpecifics(t *testing.T) {
	ds := testDataset(t, 0.5)
	m := testModel(t, ds)
	st := &State{Model: m, Shared: paramvec.Snapshot(m.Parameters())}
	for range ds.Domains {
		st.AddDomain()
	}
	// Give domain 1 a large specific delta; its predictions must differ
	// from domain 0's on identical inputs.
	paramvec.Axpy(st.Specific[1], 2, st.Shared)
	b0 := ds.FullBatch(0, data.Test)
	b1 := *b0
	b1.Domain = 1
	p0 := st.Predict(b0)
	p1 := st.Predict(&b1)
	var diff float64
	for i := range p0 {
		diff += math.Abs(p0[i] - p1[i])
	}
	if diff == 0 {
		t.Fatal("specific parameters had no serving effect")
	}
}

func TestAddDomainGrowsZeroVector(t *testing.T) {
	ds := testDataset(t, 0.5)
	m := testModel(t, ds)
	st := &State{Model: m, Shared: paramvec.Snapshot(m.Parameters())}
	id := st.AddDomain()
	if id != 0 || len(st.Specific) != 1 {
		t.Fatal("AddDomain bookkeeping wrong")
	}
	if paramvec.Norm(st.Specific[0]) != 0 {
		t.Fatal("new domain's specific vector must start at zero")
	}
	if st.Specific[0].Len() != st.Shared.Len() {
		t.Fatal("specific vector shape mismatch")
	}
}

func TestSampleHelpersProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		target := rng.Intn(n)
		k := 1 + rng.Intn(n)
		hs := SampleHelpers(n, target, k, rng)
		if len(hs) == 0 {
			t.Fatal("no helpers sampled")
		}
		if len(hs) > k {
			t.Fatalf("sampled %d helpers, want <= %d", len(hs), k)
		}
		seen := map[int]bool{}
		for _, h := range hs {
			if h == target {
				t.Fatal("helper equals target")
			}
			if h < 0 || h >= n {
				t.Fatal("helper out of range")
			}
			if seen[h] {
				t.Fatal("duplicate helper")
			}
			seen[h] = true
		}
	}
}

func TestSampleHelpersSingleDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	hs := SampleHelpers(1, 0, 3, rng)
	if len(hs) != 1 || hs[0] != 0 {
		t.Fatalf("single-domain fallback = %v, want [0]", hs)
	}
}

func TestSampleHelpersEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))

	// k >= n-1 returns every other domain exactly once.
	for _, k := range []int{4, 5, 100} {
		hs := SampleHelpers(5, 2, k, rng)
		if len(hs) != 4 {
			t.Fatalf("k=%d: got %d helpers, want all 4", k, len(hs))
		}
		seen := map[int]bool{}
		for _, h := range hs {
			seen[h] = true
		}
		for d := 0; d < 5; d++ {
			if d == 2 {
				if seen[d] {
					t.Fatalf("k=%d: target sampled as helper", k)
				}
				continue
			}
			if !seen[d] {
				t.Fatalf("k=%d: domain %d missing from helpers %v", k, d, hs)
			}
		}
	}

	// k=0 asks for no helpers.
	if hs := SampleHelpers(5, 2, 0, rng); len(hs) != 0 {
		t.Fatalf("k=0: got %v, want empty", hs)
	}

	// n=1 with k=0 still falls back to the target (DR degrades to
	// per-domain finetuning rather than a no-op).
	if hs := SampleHelpers(1, 0, 0, rng); len(hs) != 1 || hs[0] != 0 {
		t.Fatalf("n=1,k=0: got %v, want [0]", hs)
	}
}

func TestMAMDRDeterministicWithSeed(t *testing.T) {
	ds := testDataset(t, 0.8)
	run := func() []float64 {
		m := testModel(t, ds)
		pred := framework.MustNew("mamdr").Fit(m, ds, framework.Config{Epochs: 2, BatchSize: 32, Seed: 123})
		return framework.EvaluateAUC(pred, ds, data.Test)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different MAMDR results")
		}
	}
}

// TestMAMDRImprovesOverAlternate is the repository's miniature of the
// paper's headline claim (Table V): under domain conflict, MLP+MAMDR
// outperforms alternate-trained MLP on mean test AUC.
func TestMAMDRImprovesOverAlternate(t *testing.T) {
	ds := testDataset(t, 1.2)
	cfg := framework.Config{Epochs: 6, BatchSize: 32, Seed: 9}

	alt := framework.MustNew("alternate").Fit(testModel(t, ds), ds, cfg)
	altAUC := framework.MeanAUC(alt, ds, data.Test)

	mam := framework.MustNew("mamdr").Fit(testModel(t, ds), ds, cfg)
	mamAUC := framework.MeanAUC(mam, ds, data.Test)

	t.Logf("alternate AUC = %.4f, MAMDR AUC = %.4f", altAUC, mamAUC)
	if mamAUC <= altAUC-0.01 {
		t.Fatalf("MAMDR (%.4f) should not lose to Alternate (%.4f)", mamAUC, altAUC)
	}
}
