package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/synth"
	"mamdr/internal/telemetry"
)

func telemetryDataset() *synth.Config {
	return &synth.Config{
		Name: "telemetry-test", Seed: 31, ConflictStrength: 0.8,
		Domains: []synth.DomainSpec{
			{Name: "books", Samples: 300, CTRRatio: 0.3},
			{Name: "games", Samples: 200, CTRRatio: 0.4},
			{Name: "toys", Samples: 150, CTRRatio: 0.35},
		},
	}
}

// TestTrainingPopulatesTelemetry trains full MAMDR with instrumentation
// attached and checks every advertised series shows up with real data:
// per-domain loss and grad-norm gauges, inner/outer step timings, the
// gradient-conflict cosine histogram, DR loss, and JSONL epoch events.
func TestTrainingPopulatesTelemetry(t *testing.T) {
	ds := synth.Generate(*telemetryDataset())
	reg := telemetry.New()
	var events bytes.Buffer
	tm := framework.NewTrainMetrics(reg, ds, telemetry.NewEventLog(&events))

	m := models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 4, Hidden: []int{8}, Seed: 5})
	const epochs = 3
	framework.MustNew("mamdr").Fit(m, ds, framework.Config{
		Epochs: epochs, BatchSize: 32, Seed: 9, Telemetry: tm,
	})

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`mamdr_train_domain_loss{domain="books"}`,
		`mamdr_train_domain_grad_norm{domain="games"}`,
		`mamdr_train_dr_loss{domain="toys"}`,
		`mamdr_train_inner_step_seconds_bucket`,
		`mamdr_train_outer_step_seconds_count ` + "3",
		`mamdr_train_grad_cosine_bucket`,
		`mamdr_train_epochs_total 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// 3 domains visited per epoch => 3 pairwise cosines per epoch.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "mamdr_train_grad_cosine_count") {
			if !strings.HasSuffix(line, " 9") {
				t.Errorf("grad cosine count = %q, want 9 (3 pairs x 3 epochs)", line)
			}
		}
	}

	lines := strings.Split(strings.TrimSpace(events.String()), "\n")
	if len(lines) != epochs {
		t.Fatalf("event log has %d lines, want %d", len(lines), epochs)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[epochs-1]), &rec); err != nil {
		t.Fatalf("event line is not JSON: %v", err)
	}
	if rec["event"] != "epoch" || rec["epoch"] != float64(epochs) {
		t.Fatalf("last event = %v", rec)
	}
	losses, ok := rec["loss"].(map[string]any)
	if !ok || losses["books"] == nil || losses["games"] == nil || losses["toys"] == nil {
		t.Fatalf("event losses = %v", rec["loss"])
	}
	if rec["grad_cosine_mean"] == nil || rec["outer_seconds"] == nil {
		t.Fatalf("event missing conflict/outer fields: %v", rec)
	}
}

// TestTelemetryDoesNotChangeTraining pins that instrumentation is
// purely observational: the same seed must produce bit-identical shared
// parameters with and without a recorder attached.
func TestTelemetryDoesNotChangeTraining(t *testing.T) {
	run := func(tm *framework.TrainMetrics) *State {
		ds := synth.Generate(*telemetryDataset())
		m := models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 4, Hidden: []int{8}, Seed: 5})
		return framework.MustNew("mamdr").Fit(m, ds, framework.Config{
			Epochs: 2, BatchSize: 32, Seed: 9, Telemetry: tm,
		}).(*State)
	}
	bare := run(nil)
	ds := synth.Generate(*telemetryDataset())
	instrumented := run(framework.NewTrainMetrics(telemetry.New(), ds, nil))

	for i := range bare.Shared {
		for j := range bare.Shared[i] {
			if bare.Shared[i][j] != instrumented.Shared[i][j] {
				t.Fatalf("telemetry changed training: tensor %d entry %d differs", i, j)
			}
		}
	}
}
