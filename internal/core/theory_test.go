package core

import (
	"math"
	"math/rand"
	"testing"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/optim"
	"mamdr/internal/paramvec"
)

// quadModel is an analytically tractable "recommender": on domain d it
// emits the logit −||θ − c_d||² for every sample. With all labels 1 the
// BCE training loss is log(1+exp(||θ − c_d||²)), which is minimized at
// θ = c_d, and one SGD step has the closed form
//
//	θ ← θ − α·k(θ,d)·(θ − c_d),  k = 2·(1 − sigmoid(−||θ − c_d||²)),
//
// letting the tests verify DN/DR updates against hand-computed values.
type quadModel struct {
	theta   *autograd.Tensor
	centers [][]float64
}

func newQuadModel(centers [][]float64) *quadModel {
	return &quadModel{
		theta:   autograd.ParamZeros(1, len(centers[0])),
		centers: centers,
	}
}

// Forward implements models.Model: logit −||θ − c_domain||² per sample.
func (m *quadModel) Forward(b *data.Batch, training bool) *autograd.Tensor {
	c := autograd.New(1, len(m.centers[b.Domain]), m.centers[b.Domain])
	diff := autograd.Sub(m.theta, c)
	loss := autograd.Scale(autograd.Sum(autograd.Square(diff)), -1)
	// Broadcast the scalar loss to one logit per sample.
	n := len(b.Labels)
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	return autograd.MatMul(autograd.New(n, 1, ones), loss)
}

// Parameters implements models.Model.
func (m *quadModel) Parameters() []*autograd.Tensor { return []*autograd.Tensor{m.theta} }

// Name implements models.Model.
func (m *quadModel) Name() string { return "quad" }

// quadDataset builds a trivial dataset with one train sample per domain
// so each TrainDomainPass performs exactly one gradient step.
func quadDataset(domains int) *data.Dataset {
	ds := &data.Dataset{
		Name:     "quad",
		NumUsers: 1,
		NumItems: 1,
		Schema: data.Schema{
			UserFields: []data.Field{{Name: "u", Vocab: 1}},
			ItemFields: []data.Field{{Name: "i", Vocab: 1}},
		},
		UserFeatures: [][]int{{0}},
		ItemFeatures: [][]int{{0}},
	}
	for d := 0; d < domains; d++ {
		ds.Domains = append(ds.Domains, &data.Domain{
			ID:    d,
			Name:  "q",
			Train: []data.Interaction{{User: 0, Item: 0, Label: 1}},
			Val:   []data.Interaction{{User: 0, Item: 0, Label: 1}},
			Test:  []data.Interaction{{User: 0, Item: 0, Label: 1}},
		})
	}
	return ds
}

// TestDNOuterUpdateMatchesEq3 verifies that with SGD in both loops the
// outer update is exactly Θ ← Θ + β(Θ̃_{n+1} − Θ), where Θ̃ is the
// sequential inner-loop endpoint (Algorithm 1).
func TestDNOuterUpdateMatchesEq3(t *testing.T) {
	centers := [][]float64{{1, 0}, {0, 1}}
	m := newQuadModel(centers)
	ds := quadDataset(2)
	alpha, beta := 0.1, 0.5
	cfg := framework.Config{
		Epochs: 1, BatchSize: 1, LR: alpha, OuterLR: beta,
		InnerOpt: "sgd", OuterOpt: "sgd",
	}.WithDefaults()
	cfg.LR, cfg.OuterLR = alpha, beta // WithDefaults must not override

	st := &State{Model: m, Shared: paramvec.Snapshot(m.Parameters())}
	st.AddDomain()
	st.AddDomain()

	// Hand-simulate the inner loop for the order the rng will produce.
	rng := rand.New(rand.NewSource(4))
	order := rand.New(rand.NewSource(4)).Perm(2)
	theta := []float64{0, 0}
	for _, d := range order {
		quadStep(theta, centers[d], alpha)
	}
	want := []float64{beta * theta[0], beta * theta[1]} // from Θ=0

	outer := optim.NewSGD(beta)
	DomainNegotiationEpoch(st, ds, cfg, outer, rng)

	for i, w := range want {
		if math.Abs(st.Shared[0][i]-w) > 1e-9 {
			t.Fatalf("shared[%d] = %g, want %g (Eq. 3)", i, st.Shared[0][i], w)
		}
	}
}

// TestDNConvergesToCompromise verifies DN drives the shared parameters
// to the average of conflicting domain optima (the minimizer of the
// summed quadratic losses), i.e. it converges despite full conflict.
func TestDNConvergesToCompromise(t *testing.T) {
	centers := [][]float64{{2, 0}, {-2, 0}, {0, 2}, {0, -2}}
	m := newQuadModel(centers)
	ds := quadDataset(4)
	cfg := framework.Config{
		Epochs: 1, BatchSize: 1, LR: 0.1, OuterLR: 0.5,
		InnerOpt: "sgd", OuterOpt: "sgd",
	}.WithDefaults()
	cfg.LR, cfg.OuterLR = 0.1, 0.5

	st := &State{Model: m, Shared: paramvec.Snapshot(m.Parameters())}
	for range centers {
		st.AddDomain()
	}
	// Start far from the compromise.
	st.Shared[0][0], st.Shared[0][1] = 5, -7

	rng := rand.New(rand.NewSource(9))
	outer := optim.NewSGD(cfg.OuterLR)
	for e := 0; e < 200; e++ {
		DomainNegotiationEpoch(st, ds, cfg, outer, rng)
	}
	// The summed loss is minimized at the centroid (0, 0); with a
	// constant step size the iterates settle into a small limit cycle
	// around it, so assert the neighborhood rather than the point.
	if math.Abs(st.Shared[0][0]) > 0.25 || math.Abs(st.Shared[0][1]) > 0.25 {
		t.Fatalf("DN did not converge to the compromise point: %v", st.Shared[0])
	}
}

// TestDRPullsSpecificTowardTargetOptimum verifies DR moves a domain's
// specific parameters so that the composed Θ = θ_S + θ_i approaches the
// target domain's own optimum, while the helper step keeps it from
// collapsing onto it (the regularization).
func TestDRPullsSpecificTowardTargetOptimum(t *testing.T) {
	centers := [][]float64{{1, 1}, {-1, 1}}
	m := newQuadModel(centers)
	ds := quadDataset(2)
	cfg := framework.Config{
		Epochs: 1, BatchSize: 1, LR: 0.1, DRLR: 0.5, SampleK: 1,
		InnerOpt: "sgd", OuterOpt: "sgd",
	}.WithDefaults()
	cfg.LR, cfg.DRLR = 0.1, 0.5

	st := &State{Model: m, Shared: paramvec.Snapshot(m.Parameters())}
	st.AddDomain()
	st.AddDomain()

	rng := rand.New(rand.NewSource(5))
	distBefore := dist(st.ComposedFor(0)[0], centers[0])
	for e := 0; e < 50; e++ {
		DomainRegularization(st, ds, 0, cfg, rng)
	}
	distAfter := dist(st.ComposedFor(0)[0], centers[0])
	if distAfter >= distBefore {
		t.Fatalf("DR did not move composed params toward target optimum: %.4f -> %.4f", distBefore, distAfter)
	}
	// DR's fixed point balances the helper and target pulls — that IS
	// the regularization — so the composed parameters settle distinctly
	// closer to the target's optimum than to the helper's.
	if toHelper := dist(st.ComposedFor(0)[0], centers[1]); distAfter >= toHelper {
		t.Fatalf("composed params closer to helper (%.4f) than target (%.4f)", toHelper, distAfter)
	}
	// The shared parameters must be untouched by DR.
	if st.Shared[0][0] != 0 || st.Shared[0][1] != 0 {
		t.Fatalf("DR modified shared parameters: %v", st.Shared[0])
	}
}

// quadStep applies one SGD step of the quadModel's BCE loss in closed
// form: θ ← θ − α·2·(1 − sigmoid(−L))·(θ − c) with L = ||θ − c||².
func quadStep(theta, c []float64, alpha float64) {
	var l float64
	for i := range theta {
		d := theta[i] - c[i]
		l += d * d
	}
	k := 2 * (1 - 1/(1+math.Exp(l)))
	for i := range theta {
		theta[i] -= alpha * k * (theta[i] - c[i])
	}
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// TestDNBetaOneEqualsAlternate verifies the degenerate case discussed in
// Section IV-C: with β=1 and SGD in both loops, one DN epoch leaves the
// parameters exactly at the inner-loop endpoint — i.e. alternate
// training.
func TestDNBetaOneEqualsAlternate(t *testing.T) {
	centers := [][]float64{{1, 2}, {3, -1}, {-2, 0}}
	ds := quadDataset(3)
	cfg := framework.Config{
		Epochs: 1, BatchSize: 1, LR: 0.05, OuterLR: 1,
		InnerOpt: "sgd", OuterOpt: "sgd",
	}.WithDefaults()
	cfg.LR, cfg.OuterLR = 0.05, 1

	// DN with β=1.
	mDN := newQuadModel(centers)
	stDN := &State{Model: mDN, Shared: paramvec.Snapshot(mDN.Parameters())}
	for range centers {
		stDN.AddDomain()
	}
	DomainNegotiationEpoch(stDN, ds, cfg, optim.NewSGD(1), rand.New(rand.NewSource(7)))

	// Alternate training with the same visiting order.
	theta := []float64{0, 0}
	for _, d := range rand.New(rand.NewSource(7)).Perm(3) {
		quadStep(theta, centers[d], 0.05)
	}

	for i := range theta {
		if math.Abs(stDN.Shared[0][i]-theta[i]) > 1e-12 {
			t.Fatalf("β=1 DN != alternate: %v vs %v", stDN.Shared[0], theta)
		}
	}
}
