package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"mamdr/internal/optim"
	"mamdr/internal/paramvec"
	"mamdr/internal/quality"
)

// Checkpoint files are written crash-safely: the payload is gob-encoded
// into a fixed envelope (magic, format version, payload length, CRC32)
// and lands on disk via write-to-temp-file + fsync + atomic rename, so
// a reader never observes a half-written checkpoint under its final
// name, and a truncated or bit-flipped file is rejected with a clear
// error instead of decoding into garbage parameters.
const (
	// checkpointMagic opens every checkpoint file (8 bytes).
	checkpointMagic = "MAMDRCKP"
	// checkpointVersion is the envelope version this build writes,
	// bumped on envelope/payload changes; v3 added the optional
	// quality-baseline block to Checkpoint payloads.
	checkpointVersion uint32 = 3
	// checkpointMinVersion is the oldest envelope this build still
	// reads. v2 (pre-quality) payloads decode with a nil Quality
	// baseline — drift detection is disabled, not fatal. Versions
	// outside [min, current] are rejected loudly.
	checkpointMinVersion uint32 = 2
)

// headerLen is magic(8) + version(4) + payload length(8) + crc32(4).
const headerLen = 8 + 4 + 8 + 4

// ErrCorruptCheckpoint wraps every integrity failure (bad magic,
// truncation, CRC mismatch), so callers can distinguish "this file is
// damaged" from "this checkpoint belongs to a different model".
var ErrCorruptCheckpoint = errors.New("corrupt or truncated checkpoint")

// SaveGob atomically writes v to path in the checkpoint envelope:
// encode to memory, write magic/version/length/CRC32 + payload into
// path.tmp, fsync, then rename over path. A crash at any point leaves
// either the previous complete file or a stray .tmp — never a torn
// checkpoint under the final name.
func SaveGob(path string, v any) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("core: encode %s: %w", path, err)
	}

	var head [headerLen]byte
	copy(head[:8], checkpointMagic)
	binary.LittleEndian.PutUint32(head[8:12], checkpointVersion)
	binary.LittleEndian.PutUint64(head[12:20], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(head[20:24], crc32.ChecksumIEEE(payload.Bytes()))

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: create %s: %w", tmp, err)
	}
	_, werr := f.Write(head[:])
	if werr == nil {
		_, werr = f.Write(payload.Bytes())
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: write %s: %w", tmp, werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: commit %s: %w", path, err)
	}
	// Durability of the rename itself: fsync the directory (best
	// effort — not all filesystems support it).
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// LoadGob reads a file written by SaveGob into v, verifying the
// envelope before decoding: wrong magic, a truncated payload, or a
// CRC mismatch all fail with an error wrapping ErrCorruptCheckpoint.
func LoadGob(path string, v any) error {
	_, err := LoadGobVersion(path, v)
	return err
}

// LoadGobVersion is LoadGob returning the envelope version the file was
// written with, so callers can negotiate payload capabilities: any
// version in [checkpointMinVersion, checkpointVersion] is accepted —
// gob's field-by-name decoding leaves fields absent from older payloads
// at their zero value (e.g. a v2 checkpoint yields a nil quality
// baseline) — and versions outside that range fail loudly.
func LoadGobVersion(path string, v any) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("core: open %s: %w", path, err)
	}
	defer f.Close()

	var head [headerLen]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return 0, fmt.Errorf("core: %s: header unreadable (%v): %w", path, err, ErrCorruptCheckpoint)
	}
	if string(head[:8]) != checkpointMagic {
		return 0, fmt.Errorf("core: %s: not a MAMDR checkpoint (bad magic): %w", path, ErrCorruptCheckpoint)
	}
	ver := binary.LittleEndian.Uint32(head[8:12])
	if ver < checkpointMinVersion || ver > checkpointVersion {
		return 0, fmt.Errorf("core: %s: checkpoint format v%d, this build reads v%d..v%d",
			path, ver, checkpointMinVersion, checkpointVersion)
	}
	want := binary.LittleEndian.Uint64(head[12:20])
	payload, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("core: read %s: %w", path, err)
	}
	if uint64(len(payload)) != want {
		return 0, fmt.Errorf("core: %s: payload is %d bytes, header promises %d (truncated write?): %w",
			path, len(payload), want, ErrCorruptCheckpoint)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(head[20:24]) {
		return 0, fmt.Errorf("core: %s: CRC mismatch (corrupted on disk): %w", path, ErrCorruptCheckpoint)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return 0, fmt.Errorf("core: decode %s: %w: %v", path, ErrCorruptCheckpoint, err)
	}
	return ver, nil
}

// Envelope describes a checkpoint file's identity without decoding its
// payload: the format version it was written with and the CRC32 the
// payload must hash to. The (Version, CRC) pair is what the serving
// fleet keys a snapshot publication to — two files with the same pair
// carry bit-identical parameters.
type Envelope struct {
	// Version is the envelope format version (checkpointVersion at
	// write time).
	Version uint32
	// CRC is the IEEE CRC32 of the gob payload.
	CRC uint32
	// PayloadBytes is the payload length the header promises.
	PayloadBytes uint64
}

// EnvelopeInfo reads and verifies a checkpoint file's envelope — magic,
// version range, payload length, and CRC over the actual bytes — without
// gob-decoding the payload. Integrity failures wrap
// ErrCorruptCheckpoint, exactly as LoadGob would report them, so a
// publisher can reject a damaged snapshot before building anything
// from it.
func EnvelopeInfo(path string) (Envelope, error) {
	f, err := os.Open(path)
	if err != nil {
		return Envelope{}, fmt.Errorf("core: open %s: %w", path, err)
	}
	defer f.Close()

	var head [headerLen]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return Envelope{}, fmt.Errorf("core: %s: header unreadable (%v): %w", path, err, ErrCorruptCheckpoint)
	}
	if string(head[:8]) != checkpointMagic {
		return Envelope{}, fmt.Errorf("core: %s: not a MAMDR checkpoint (bad magic): %w", path, ErrCorruptCheckpoint)
	}
	env := Envelope{
		Version:      binary.LittleEndian.Uint32(head[8:12]),
		PayloadBytes: binary.LittleEndian.Uint64(head[12:20]),
		CRC:          binary.LittleEndian.Uint32(head[20:24]),
	}
	if env.Version < checkpointMinVersion || env.Version > checkpointVersion {
		return Envelope{}, fmt.Errorf("core: %s: checkpoint format v%d, this build reads v%d..v%d",
			path, env.Version, checkpointMinVersion, checkpointVersion)
	}
	payload, err := io.ReadAll(f)
	if err != nil {
		return Envelope{}, fmt.Errorf("core: read %s: %w", path, err)
	}
	if uint64(len(payload)) != env.PayloadBytes {
		return Envelope{}, fmt.Errorf("core: %s: payload is %d bytes, header promises %d (truncated write?): %w",
			path, len(payload), env.PayloadBytes, ErrCorruptCheckpoint)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != env.CRC {
		return Envelope{}, fmt.Errorf("core: %s: CRC mismatch (corrupted on disk): %w", path, ErrCorruptCheckpoint)
	}
	return env, nil
}

// Checkpoint is the serializable form of a trained MAMDR state: the
// shared parameter vector and every domain's specific vector, plus an
// optional resume cursor (completed-epoch count and the DN outer
// optimizer's state) for crash-safe training restarts. The model
// structure itself is rebuilt from configuration by the caller (the
// vectors align with Model.Parameters() order, which is stable for a
// given structure and dataset schema).
type Checkpoint struct {
	// ModelName records the structure the state was trained with, as a
	// guard against loading into a mismatched model.
	ModelName string
	Shared    paramvec.Vector
	Specific  []paramvec.Vector
	// Epoch is the number of fully completed training epochs when the
	// checkpoint was taken; -1 marks a final state with no resume
	// cursor (the State.Save format).
	Epoch int
	// Outer is the DN outer optimizer's accumulated state at the epoch
	// boundary (empty when Epoch is -1 or the optimizer is stateless).
	Outer optim.State
	// Quality is the model's quality baseline — per-domain validation
	// score distributions and eval metrics — frozen at save time so
	// serving can measure live-traffic drift against it. Nil in v2
	// (pre-quality) checkpoints and in saves that skipped profiling;
	// loaders treat nil as "drift detection disabled", never an error.
	Quality *quality.Baseline
}

// Save writes the state's parameters to path crash-safely (atomic
// temp-file + rename, versioned and CRC-guarded envelope), with no
// quality baseline.
func (s *State) Save(path string) error {
	return s.SaveWithBaseline(path, nil)
}

// SaveWithBaseline is Save with a quality baseline frozen into the
// envelope, so a serving process loading this checkpoint can detect
// score/label drift against the model's validation-time profile.
func (s *State) SaveWithBaseline(path string, b *quality.Baseline) error {
	return SaveGob(path, Checkpoint{
		ModelName: s.Model.Name(),
		Shared:    s.Shared,
		Specific:  s.Specific,
		Epoch:     -1,
		Quality:   b,
	})
}

// SaveTraining writes a resumable epoch-boundary checkpoint: parameters
// plus the completed-epoch cursor and the outer optimizer's state, so a
// killed run resumed from it replays the exact trajectory of an
// uninterrupted one. Pass a nil outer for optimizer-free phases.
func (s *State) SaveTraining(path string, epoch int, outer optim.Optimizer) error {
	ck := Checkpoint{
		ModelName: s.Model.Name(),
		Shared:    s.Shared,
		Specific:  s.Specific,
		Epoch:     epoch,
	}
	if st, ok := outer.(optim.Stateful); ok {
		ck.Outer = st.CaptureState(s.Model.Parameters())
	}
	return SaveGob(path, ck)
}

// Load reads a checkpoint saved by Save (or SaveTraining) into the
// state, validating that the vectors align with the state's model
// parameters. The state's Model must already be constructed with the
// same structure and dataset schema as at save time.
func (s *State) Load(path string) error {
	_, _, err := s.load(path, nil)
	return err
}

// LoadWithBaseline is Load returning the quality baseline frozen into
// the checkpoint. A nil baseline means drift detection is unavailable
// for this model: the checkpoint predates the quality block (v2
// envelope) or was saved without profiling — the caller should log and
// count the degraded load (Tracker.SetBaseline(nil) does the counting)
// and carry on serving.
func (s *State) LoadWithBaseline(path string) (*quality.Baseline, error) {
	_, b, err := s.load(path, nil)
	return b, err
}

// LoadTraining is Load plus resume-cursor recovery: it restores the
// parameters, rebinds the outer optimizer's saved state, and returns
// the completed-epoch count the run should continue from. Loading a
// final checkpoint (Save) yields epoch -1.
func (s *State) LoadTraining(path string, outer optim.Optimizer) (epoch int, err error) {
	epoch, _, err = s.load(path, outer)
	return epoch, err
}

func (s *State) load(path string, outer optim.Optimizer) (int, *quality.Baseline, error) {
	var ck Checkpoint
	if _, err := LoadGobVersion(path, &ck); err != nil {
		return 0, nil, err
	}
	if ck.ModelName != s.Model.Name() {
		return 0, nil, fmt.Errorf("core: checkpoint is for model %q, state has %q", ck.ModelName, s.Model.Name())
	}
	params := s.Model.Parameters()
	if len(ck.Shared) != len(params) {
		return 0, nil, fmt.Errorf("core: checkpoint has %d shared segments, model has %d tensors", len(ck.Shared), len(params))
	}
	for i, p := range params {
		if len(ck.Shared[i]) != len(p.Data) {
			return 0, nil, fmt.Errorf("core: shared segment %d has %d values, tensor has %d", i, len(ck.Shared[i]), len(p.Data))
		}
	}
	for d, v := range ck.Specific {
		if len(v) != len(params) {
			return 0, nil, fmt.Errorf("core: specific vector %d misaligned", d)
		}
	}
	s.Shared = ck.Shared
	s.Specific = ck.Specific
	paramvec.Restore(params, s.Shared)
	if outer != nil && !ck.Outer.Empty() {
		st, ok := outer.(optim.Stateful)
		if !ok {
			return 0, nil, fmt.Errorf("core: checkpoint carries %q optimizer state but the outer optimizer cannot restore state", ck.Outer.Name)
		}
		if err := st.RestoreState(params, ck.Outer); err != nil {
			return 0, nil, fmt.Errorf("core: restore outer optimizer: %w", err)
		}
	}
	return ck.Epoch, ck.Quality, nil
}
