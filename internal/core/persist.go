package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"os"

	"mamdr/internal/paramvec"
)

// Checkpoint is the serializable form of a trained MAMDR state: the
// shared parameter vector and every domain's specific vector. The model
// structure itself is rebuilt from configuration by the caller (the
// vectors align with Model.Parameters() order, which is stable for a
// given structure and dataset schema).
type Checkpoint struct {
	// ModelName records the structure the state was trained with, as a
	// guard against loading into a mismatched model.
	ModelName string
	Shared    paramvec.Vector
	Specific  []paramvec.Vector
}

// Save writes the state's parameters to path with encoding/gob.
func (s *State) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: create %s: %w", path, err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	ck := Checkpoint{
		ModelName: s.Model.Name(),
		Shared:    s.Shared,
		Specific:  s.Specific,
	}
	if err := gob.NewEncoder(w).Encode(ck); err != nil {
		return fmt.Errorf("core: encode %s: %w", path, err)
	}
	return w.Flush()
}

// Load reads a checkpoint saved by Save into the state, validating that
// the vectors align with the state's model parameters. The state's
// Model must already be constructed with the same structure and dataset
// schema as at save time.
func (s *State) Load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: open %s: %w", path, err)
	}
	defer f.Close()
	var ck Checkpoint
	if err := gob.NewDecoder(bufio.NewReader(f)).Decode(&ck); err != nil {
		return fmt.Errorf("core: decode %s: %w", path, err)
	}
	if ck.ModelName != s.Model.Name() {
		return fmt.Errorf("core: checkpoint is for model %q, state has %q", ck.ModelName, s.Model.Name())
	}
	params := s.Model.Parameters()
	if len(ck.Shared) != len(params) {
		return fmt.Errorf("core: checkpoint has %d shared segments, model has %d tensors", len(ck.Shared), len(params))
	}
	for i, p := range params {
		if len(ck.Shared[i]) != len(p.Data) {
			return fmt.Errorf("core: shared segment %d has %d values, tensor has %d", i, len(ck.Shared[i]), len(p.Data))
		}
	}
	for d, v := range ck.Specific {
		if len(v) != len(params) {
			return fmt.Errorf("core: specific vector %d misaligned", d)
		}
	}
	s.Shared = ck.Shared
	s.Specific = ck.Specific
	paramvec.Restore(params, s.Shared)
	return nil
}
