package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/optim"
	"mamdr/internal/paramvec"
	"mamdr/internal/quality"
)

// legacyCheckpoint is the v2 payload layout — the Checkpoint struct as
// it existed before the quality-baseline block. Gob matches fields by
// name, so encoding this and decoding into today's Checkpoint is
// exactly what reading a pre-quality file does.
type legacyCheckpoint struct {
	ModelName string
	Shared    paramvec.Vector
	Specific  []paramvec.Vector
	Epoch     int
	Outer     optim.State
}

// writeEnvelope writes payload v under an arbitrary envelope version —
// the file a binary of that era would have produced.
func writeEnvelope(t *testing.T, path string, version uint32, v any) {
	t.Helper()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		t.Fatal(err)
	}
	var head [headerLen]byte
	copy(head[:8], checkpointMagic)
	binary.LittleEndian.PutUint32(head[8:12], version)
	binary.LittleEndian.PutUint64(head[12:20], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(head[20:24], crc32.ChecksumIEEE(payload.Bytes()))
	if err := os.WriteFile(path, append(head[:], payload.Bytes()...), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadPreQualityCheckpoint is the version-negotiation property: a
// v2 (pre-quality) checkpoint must load cleanly — parameters restored,
// nil baseline reported — instead of being rejected.
func TestLoadPreQualityCheckpoint(t *testing.T) {
	ds := testDataset(t, 0.5)
	m := testModel(t, ds)
	st := framework.MustNew("mamdr").Fit(m, ds, framework.Config{Epochs: 1, BatchSize: 32, Seed: 9}).(*State)
	b := ds.FullBatch(0, data.Test)
	want := st.Predict(b)

	path := filepath.Join(t.TempDir(), "v2.ckpt")
	writeEnvelope(t, path, 2, legacyCheckpoint{
		ModelName: st.Model.Name(),
		Shared:    st.Shared,
		Specific:  st.Specific,
		Epoch:     -1,
	})

	st2 := &State{Model: testModel(t, ds)}
	base, err := st2.LoadWithBaseline(path)
	if err != nil {
		t.Fatalf("v2 checkpoint rejected: %v", err)
	}
	if base != nil {
		t.Fatalf("v2 checkpoint produced a baseline: %+v", base)
	}
	got := st2.Predict(b)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("prediction %d differs after v2 reload: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestSaveLoadWithBaseline round-trips the v3 envelope: the frozen
// baseline comes back intact next to the parameters.
func TestSaveLoadWithBaseline(t *testing.T) {
	ds := testDataset(t, 0.5)
	m := testModel(t, ds)
	st := framework.MustNew("mamdr").Fit(m, ds, framework.Config{Epochs: 1, BatchSize: 32, Seed: 9}).(*State)

	bb := quality.NewBaselineBuilder(0)
	for d := range ds.Domains {
		b := ds.FullBatch(d, data.Val)
		bb.Observe(ds.Domains[d].Name, st.Predict(b), b.Labels)
	}
	want := bb.Build()

	path := filepath.Join(t.TempDir(), "v3.ckpt")
	if err := st.SaveWithBaseline(path, want); err != nil {
		t.Fatal(err)
	}
	var ck Checkpoint
	ver, err := LoadGobVersion(path, &ck)
	if err != nil {
		t.Fatal(err)
	}
	if ver != checkpointVersion {
		t.Fatalf("written envelope is v%d, want v%d", ver, checkpointVersion)
	}

	st2 := &State{Model: testModel(t, ds)}
	got, err := st2.LoadWithBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("baseline lost in round trip")
	}
	if got.Bins != want.Bins || len(got.Domains) != len(want.Domains) {
		t.Fatalf("baseline shape changed: %d bins %d domains vs %d/%d",
			got.Bins, len(got.Domains), want.Bins, len(want.Domains))
	}
	for i := range want.Domains {
		w, g := want.Domains[i], got.Domains[i]
		if g.Name != w.Name || g.AUC != w.AUC || g.PosRate != w.PosRate || g.Count != w.Count {
			t.Fatalf("domain %d profile changed: %+v vs %+v", i, g, w)
		}
		for b := range w.ScoreHist {
			if g.ScoreHist[b] != w.ScoreHist[b] {
				t.Fatalf("domain %d hist bucket %d changed", i, b)
			}
		}
	}
}

// TestLoadRejectsOutOfRangeVersions pins the negotiation window: v1
// (never shipped with this payload) and a future v4 both fail with a
// version error, not silent misreads.
func TestLoadRejectsOutOfRangeVersions(t *testing.T) {
	ds := testDataset(t, 0.5)
	m := testModel(t, ds)
	st := framework.MustNew("dn").Fit(m, ds, framework.Config{Epochs: 1, BatchSize: 32, Seed: 9}).(*State)
	for _, ver := range []uint32{1, checkpointVersion + 1} {
		path := filepath.Join(t.TempDir(), "bad.ckpt")
		writeEnvelope(t, path, ver, legacyCheckpoint{ModelName: st.Model.Name(), Shared: st.Shared, Specific: st.Specific, Epoch: -1})
		fresh := &State{Model: testModel(t, ds)}
		err := fresh.Load(path)
		if err == nil || !strings.Contains(err.Error(), "checkpoint format") {
			t.Fatalf("v%d: Load = %v, want version rejection", ver, err)
		}
	}
}
