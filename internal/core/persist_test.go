package core

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/optim"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := testDataset(t, 0.8)
	m := testModel(t, ds)
	st := framework.MustNew("mamdr").Fit(m, ds, framework.Config{Epochs: 2, BatchSize: 32, Seed: 9}).(*State)

	// Reference predictions before saving.
	b := ds.FullBatch(1, data.Test)
	want := st.Predict(b)

	path := filepath.Join(t.TempDir(), "state.gob")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}

	// Load into a freshly built state over a fresh model.
	m2 := testModel(t, ds)
	st2 := &State{Model: m2}
	if err := st2.Load(path); err != nil {
		t.Fatal(err)
	}
	got := st2.Predict(b)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("prediction %d differs after reload: %g vs %g", i, got[i], want[i])
		}
	}
	if len(st2.Specific) != ds.NumDomains() {
		t.Fatalf("specific vectors lost: %d", len(st2.Specific))
	}
}

func TestLoadRejectsWrongModel(t *testing.T) {
	ds := testDataset(t, 0.5)
	m := testModel(t, ds)
	st := framework.MustNew("dn").Fit(m, ds, framework.Config{Epochs: 1, BatchSize: 32, Seed: 9}).(*State)
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}

	other := &State{Model: models.MustNew("wdl", models.Config{Dataset: ds, EmbDim: 4, Hidden: []int{16, 8}, Seed: 5})}
	if err := other.Load(path); err == nil {
		t.Fatal("expected model-name mismatch error")
	}
}

func TestLoadRejectsMissingFile(t *testing.T) {
	ds := testDataset(t, 0.5)
	st := &State{Model: testModel(t, ds)}
	if err := st.Load(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadRejectsCorruptCheckpoint(t *testing.T) {
	ds := testDataset(t, 0.5)
	m := testModel(t, ds)
	st := framework.MustNew("dn").Fit(m, ds, framework.Config{Epochs: 1, BatchSize: 32, Seed: 9}).(*State)
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty file":        {},
		"half-written head": good[:10],
		"truncated payload": good[:len(good)-7],
		"not a checkpoint":  []byte("definitely not a checkpoint"),
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0x40
	cases["bit flip in payload"] = flipped

	for name, contents := range cases {
		if err := os.WriteFile(path, contents, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh := &State{Model: testModel(t, ds)}
		err := fresh.Load(path)
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("%s: Load = %v, want ErrCorruptCheckpoint", name, err)
		}
	}

	// And the pristine file still loads.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := &State{Model: testModel(t, ds)}
	if err := fresh.Load(path); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
}

func TestSaveTrainingRoundTripsOptimizerState(t *testing.T) {
	ds := testDataset(t, 0.5)
	m := testModel(t, ds)
	st := framework.MustNew("mamdr").Fit(m, ds, framework.Config{Epochs: 2, BatchSize: 32, Seed: 9}).(*State)

	outer := optim.New("adagrad", 0.1)
	// Give the optimizer some accumulated state to checkpoint.
	params := m.Parameters()
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] = 0.25
		}
	}
	outer.Step(params)
	want := outer.(optim.Stateful).CaptureState(params)

	path := filepath.Join(t.TempDir(), "train.ckpt")
	if err := st.SaveTraining(path, 7, outer); err != nil {
		t.Fatal(err)
	}

	m2 := testModel(t, ds)
	st2 := &State{Model: m2}
	outer2 := optim.New("adagrad", 0.1)
	epoch, err := st2.LoadTraining(path, outer2)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 7 {
		t.Fatalf("resume cursor = %d, want 7", epoch)
	}
	got := outer2.(optim.Stateful).CaptureState(m2.Parameters())
	if got.Name != want.Name {
		t.Fatalf("optimizer name %q vs %q", got.Name, want.Name)
	}
	for slot, bufs := range want.Slots {
		for i := range bufs {
			for j := range bufs[i] {
				if got.Slots[slot][i][j] != bufs[i][j] {
					t.Fatalf("slot %s[%d][%d] = %g, want %g", slot, i, j, got.Slots[slot][i][j], bufs[i][j])
				}
			}
		}
	}
}

// TestFitResumeBitIdentical is the single-process crash-safety
// property: a run killed after epoch 2 and resumed must end bit-for-bit
// where an uninterrupted run of the same seed ends.
func TestFitResumeBitIdentical(t *testing.T) {
	ds := testDataset(t, 0.5)
	base := framework.Config{Epochs: 4, BatchSize: 32, Seed: 9, OuterOpt: "adagrad", OuterLR: 0.1}

	full := framework.MustNew("mamdr").Fit(testModel(t, ds), ds, base).(*State)

	dir := t.TempDir()
	killed := base
	killed.Epochs = 2 // the "crash": training simply stops after epoch 2
	killed.CheckpointDir = dir
	framework.MustNew("mamdr").Fit(testModel(t, ds), ds, killed)

	resumed := base
	resumed.CheckpointDir = dir
	resumed.Resume = true
	got := framework.MustNew("mamdr").Fit(testModel(t, ds), ds, resumed).(*State)

	for i := range full.Shared {
		for j := range full.Shared[i] {
			if full.Shared[i][j] != got.Shared[i][j] {
				t.Fatalf("Shared[%d][%d] = %g resumed vs %g uninterrupted (must be bit-identical)",
					i, j, got.Shared[i][j], full.Shared[i][j])
			}
		}
	}
	for d := range full.Specific {
		for i := range full.Specific[d] {
			for j := range full.Specific[d][i] {
				if full.Specific[d][i][j] != got.Specific[d][i][j] {
					t.Fatalf("Specific[%d][%d][%d] differs after resume", d, i, j)
				}
			}
		}
	}
}
