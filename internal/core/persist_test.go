package core

import (
	"math"
	"path/filepath"
	"testing"

	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := testDataset(t, 0.8)
	m := testModel(t, ds)
	st := framework.MustNew("mamdr").Fit(m, ds, framework.Config{Epochs: 2, BatchSize: 32, Seed: 9}).(*State)

	// Reference predictions before saving.
	b := ds.FullBatch(1, data.Test)
	want := st.Predict(b)

	path := filepath.Join(t.TempDir(), "state.gob")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}

	// Load into a freshly built state over a fresh model.
	m2 := testModel(t, ds)
	st2 := &State{Model: m2}
	if err := st2.Load(path); err != nil {
		t.Fatal(err)
	}
	got := st2.Predict(b)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("prediction %d differs after reload: %g vs %g", i, got[i], want[i])
		}
	}
	if len(st2.Specific) != ds.NumDomains() {
		t.Fatalf("specific vectors lost: %d", len(st2.Specific))
	}
}

func TestLoadRejectsWrongModel(t *testing.T) {
	ds := testDataset(t, 0.5)
	m := testModel(t, ds)
	st := framework.MustNew("dn").Fit(m, ds, framework.Config{Epochs: 1, BatchSize: 32, Seed: 9}).(*State)
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}

	other := &State{Model: models.MustNew("wdl", models.Config{Dataset: ds, EmbDim: 4, Hidden: []int{16, 8}, Seed: 5})}
	if err := other.Load(path); err == nil {
		t.Fatal("expected model-name mismatch error")
	}
}

func TestLoadRejectsMissingFile(t *testing.T) {
	ds := testDataset(t, 0.5)
	st := &State{Model: testModel(t, ds)}
	if err := st.Load(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("expected error")
	}
}
