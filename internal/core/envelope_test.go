package core

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// TestEnvelopeInfoMatchesFile pins the publication key: EnvelopeInfo
// reports the version this build writes and the CRC of the actual
// payload bytes, without decoding the payload.
func TestEnvelopeInfoMatchesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "e.ckpt")
	if err := SaveGob(path, map[string]int{"a": 1, "b": 2}); err != nil {
		t.Fatal(err)
	}
	env, err := EnvelopeInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if env.Version != checkpointVersion {
		t.Fatalf("Version = %d, want %d", env.Version, checkpointVersion)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := raw[headerLen:]
	if env.PayloadBytes != uint64(len(payload)) {
		t.Fatalf("PayloadBytes = %d, file has %d", env.PayloadBytes, len(payload))
	}
	if want := crc32.ChecksumIEEE(payload); env.CRC != want {
		t.Fatalf("CRC = %08x, payload hashes to %08x", env.CRC, want)
	}
}

// TestEnvelopeInfoRejectsDamage is the reject-before-publish property:
// every way a snapshot file can be damaged — flipped payload bit,
// truncation, wrong magic — surfaces as ErrCorruptCheckpoint from the
// envelope check alone, so a publisher never builds from a bad file.
func TestEnvelopeInfoRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.ckpt")
	if err := SaveGob(good, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	damage := map[string]func([]byte) []byte{
		"flipped payload bit": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[headerLen+2] ^= 0x40
			return c
		},
		"truncated payload": func(b []byte) []byte {
			return append([]byte(nil), b[:len(b)-3]...)
		},
		"truncated header": func(b []byte) []byte {
			return append([]byte(nil), b[:headerLen-2]...)
		},
		"bad magic": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			copy(c[:8], "NOTMAMDR")
			return c
		},
	}
	for name, mutate := range damage {
		path := filepath.Join(dir, "bad.ckpt")
		if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := EnvelopeInfo(path); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Errorf("%s: EnvelopeInfo = %v, want ErrCorruptCheckpoint", name, err)
		}
	}

	// An out-of-range envelope version is a capability mismatch, not
	// corruption — it fails, but with a version message.
	future := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(future[8:12], checkpointVersion+1)
	path := filepath.Join(dir, "future.ckpt")
	if err := os.WriteFile(path, future, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := EnvelopeInfo(path); err == nil || errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("future version: EnvelopeInfo = %v, want a version error", err)
	}

	if _, err := EnvelopeInfo(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Error("missing file: EnvelopeInfo succeeded")
	}
}
