// Package core implements the MAMDR paper's primary contribution: the
// Domain Negotiation (DN) and Domain Regularization (DR) strategies and
// the unified MAMDR learning framework (Algorithms 1-3).
//
// MAMDR maintains a shared parameter vector θ_S and one specific vector
// θ_i per domain; the model serves domain i with Θ = θ_S + θ_i (Eq. 4).
// DN optimizes θ_S with a two-loop schedule whose outer update
// Θ ← Θ + β(Θ̃_{n+1} − Θ) implicitly maximizes cross-domain gradient
// inner products (Section IV-C), mitigating domain conflict in O(n).
// DR optimizes each θ_i with a fixed-order lookahead through a sampled
// helper domain followed by the target domain, extracting only helpful
// cross-domain information and fighting overfitting on sparse domains.
//
// Everything here manipulates models exclusively through Forward and
// Parameters — the framework is agnostic to the model structure.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/optim"
	"mamdr/internal/paramvec"
	"mamdr/internal/trace"
)

func init() {
	framework.Register("dn", func() framework.Framework {
		return &MAMDR{UseDN: true}
	})
	framework.Register("dr", func() framework.Framework {
		return &MAMDR{UseDR: true}
	})
	framework.Register("mamdr", func() framework.Framework {
		return &MAMDR{UseDN: true, UseDR: true}
	})
}

// MAMDR is the unified learning framework (Algorithm 3). The UseDN and
// UseDR switches select the paper's ablations:
//
//   - UseDN && UseDR — full MAMDR;
//   - UseDN only     — "w/o DR": Domain Negotiation for the shared
//     parameters, no specific parameters;
//   - UseDR only     — "w/o DN": the shared parameters fall back to
//     Alternate training, the specific parameters still use DR;
//   - neither        — "w/o DN+DR": plain Alternate training.
type MAMDR struct {
	UseDN bool
	UseDR bool
}

// Name implements framework.Framework.
func (t *MAMDR) Name() string {
	switch {
	case t.UseDN && t.UseDR:
		return "MAMDR (DN+DR)"
	case t.UseDN:
		return "DN"
	case t.UseDR:
		return "DR"
	default:
		return "Alternate"
	}
}

// State is the trained MAMDR parameter state: the shared vector and one
// specific delta per domain. It doubles as the serving-time predictor.
type State struct {
	Model    models.Model
	Shared   paramvec.Vector
	Specific []paramvec.Vector
}

// ComposedFor returns θ_S + θ_i, the serving parameters of domain i
// (Eq. 4).
func (s *State) ComposedFor(domain int) paramvec.Vector {
	return paramvec.Sum(s.Shared, s.Specific[domain])
}

// Predict implements framework.Predictor: it serves each batch with the
// parameters composed for the batch's domain, restoring the model's
// parameters afterwards.
func (s *State) Predict(b *data.Batch) []float64 {
	params := s.Model.Parameters()
	saved := paramvec.Snapshot(params)
	paramvec.Restore(params, s.ComposedFor(b.Domain))
	logits := s.Model.Forward(b, false)
	probs := framework.SigmoidAll(logits)
	logits.Release()
	paramvec.Restore(params, saved)
	return probs
}

// AddDomain appends a zero-initialized specific vector for a newly
// registered domain, mirroring the platform's "new domains only add
// specific parameters" property.
func (s *State) AddDomain() int {
	s.Specific = append(s.Specific, s.Shared.Zero())
	return len(s.Specific) - 1
}

// Fit implements framework.Framework (Algorithm 3): every epoch first
// updates θ_S with DN (Algorithm 1), then updates every θ_i with DR
// (Algorithm 2).
//
// Each epoch's randomness is derived from (Seed, epoch) rather than one
// RNG streamed across epochs, so a run killed and resumed from an
// epoch-boundary checkpoint (Config.CheckpointDir/Resume) replays the
// remaining epochs bit-identically to an uninterrupted run.
func (t *MAMDR) Fit(m models.Model, ds *data.Dataset, cfg framework.Config) framework.Predictor {
	cfg = cfg.WithDefaults()
	params := m.Parameters()

	st := &State{
		Model:  m,
		Shared: paramvec.Snapshot(params),
	}
	for range ds.Domains {
		st.AddDomain()
	}

	outer := optim.New(cfg.OuterOpt, cfg.OuterLR)

	ckpt := ""
	startEpoch := 0
	if cfg.CheckpointDir != "" {
		ckpt = filepath.Join(cfg.CheckpointDir, "mamdr.ckpt")
		if cfg.CheckpointEvery <= 0 {
			cfg.CheckpointEvery = 1
		}
		if cfg.Resume {
			if _, err := os.Stat(ckpt); err == nil {
				epoch, err := st.LoadTraining(ckpt, outer)
				if err != nil {
					panic(fmt.Sprintf("core: resume from %s: %v", ckpt, err))
				}
				if epoch > 0 {
					startEpoch = epoch
				}
			}
		}
	}

	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		rng := EpochRNG(cfg.Seed, epoch)
		if t.UseDN {
			DomainNegotiationEpoch(st, ds, cfg, outer, rng)
		} else {
			alternateEpoch(st, ds, cfg, rng)
		}
		if t.UseDR {
			for i := range ds.Domains {
				DomainRegularization(st, ds, i, cfg, rng)
			}
		}
		if ckpt != "" && (epoch+1)%cfg.CheckpointEvery == 0 {
			if err := st.SaveTraining(ckpt, epoch+1, outer); err != nil {
				panic(fmt.Sprintf("core: checkpoint after epoch %d: %v", epoch, err))
			}
		}
	}
	paramvec.Restore(params, st.Shared)
	return st
}

// EpochRNG derives the RNG for one training epoch from the run seed.
// Deriving per epoch (instead of streaming one RNG across epochs) is
// what lets a resumed run replay epoch k's shuffles and batch orders
// without having consumed epochs 0..k-1 first.
func EpochRNG(seed int64, epoch int) *rand.Rand {
	return rand.New(rand.NewSource(seed + 2654435761*int64(epoch)))
}

// DomainNegotiationEpoch runs one outer-loop iteration of Algorithm 1 on
// the shared parameters: Θ̃_1 ← Θ; sequential inner-loop training over
// all domains in random order; outer update Θ ← Θ + β(Θ̃_{n+1} − Θ).
//
// The outer update is expressed as a gradient −(Θ̃_{n+1} − Θ) fed to the
// outer optimizer, so the inner and outer loops can use independently
// chosen optimizers (SGD inside + Adagrad outside in the paper's
// industrial configuration). With plain SGD outside, the step is exactly
// Eq. 3 with β = the outer optimizer's learning rate.
func DomainNegotiationEpoch(st *State, ds *data.Dataset, cfg framework.Config, outer optim.Optimizer, rng *rand.Rand) {
	DomainNegotiationEpochOpt(st, ds, cfg, outer, rng, false)
}

// DomainNegotiationEpochOpt is DomainNegotiationEpoch with an ablation
// switch: fixedOrder visits domains in id order every epoch instead of
// reshuffling. The Section IV-C symmetrization argument (Eq. 19-21)
// requires the shuffle, so fixed order is expected to negotiate worse —
// BenchmarkDNOrderAblation measures the gap.
func DomainNegotiationEpochOpt(st *State, ds *data.Dataset, cfg framework.Config, outer optim.Optimizer, rng *rand.Rand, fixedOrder bool) {
	params := st.Model.Parameters()
	paramvec.Restore(params, st.Shared)

	order := rng.Perm(ds.NumDomains())
	if fixedOrder {
		for i := range order {
			order[i] = i
		}
	}
	ctx := cfg.Tracer.Context(context.Background())
	ctx, epochSpan := trace.Start(ctx, "dn.epoch", trace.A("domains", ds.NumDomains()))
	defer epochSpan.End()

	rec := cfg.Telemetry.NewEpochRecorder(params, -1)
	inner := optim.New(cfg.InnerOpt, cfg.LR)
	for _, d := range order {
		stepCtx, stepSpan := trace.Start(ctx, "dn.inner_step",
			trace.A("domain", ds.Domains[d].Name))
		rec.BeforePass()
		loss := framework.TrainDomainPassCtx(stepCtx, st.Model, ds, d, inner, cfg.BatchSize, cfg.MaxBatchesPerDomain, rng)
		stepSpan.EndWith(trace.A("loss", loss))
		rec.AfterPassTC(d, loss, stepSpan.Context())
	}
	endpoint := paramvec.Snapshot(params)

	// Treat -(endpoint - shared) as the outer gradient at Θ.
	outerStart := time.Now()
	_, outerSpan := trace.Start(ctx, "dn.outer_step")
	paramvec.Restore(params, st.Shared)
	for i, p := range params {
		for j := range p.Data {
			p.Grad[j] = st.Shared[i][j] - endpoint[i][j]
		}
	}
	outer.Step(params)
	st.Shared = paramvec.Snapshot(params)
	outerSpan.End()
	rec.Finish(time.Since(outerStart).Seconds())
}

// alternateEpoch trains the shared parameters with conventional
// alternate training (the "w/o DN" ablation and the β=1 degenerate case
// discussed in Section IV-C).
func alternateEpoch(st *State, ds *data.Dataset, cfg framework.Config, rng *rand.Rand) {
	params := st.Model.Parameters()
	paramvec.Restore(params, st.Shared)
	ctx := cfg.Tracer.Context(context.Background())
	ctx, epochSpan := trace.Start(ctx, "alternate.epoch", trace.A("domains", ds.NumDomains()))
	defer epochSpan.End()

	rec := cfg.Telemetry.NewEpochRecorder(params, -1)
	inner := optim.New(cfg.InnerOpt, cfg.LR)
	for _, d := range rng.Perm(ds.NumDomains()) {
		stepCtx, stepSpan := trace.Start(ctx, "alternate.inner_step",
			trace.A("domain", ds.Domains[d].Name))
		rec.BeforePass()
		loss := framework.TrainDomainPassCtx(stepCtx, st.Model, ds, d, inner, cfg.BatchSize, cfg.MaxBatchesPerDomain, rng)
		stepSpan.EndWith(trace.A("loss", loss))
		rec.AfterPassTC(d, loss, stepSpan.Context())
	}
	st.Shared = paramvec.Snapshot(params)
	rec.Finish(-1)
}

// DomainRegularization runs Algorithm 2 for one target domain i: sample
// k helper domains; for each helper j, start from θ_i, take inner steps
// on T_j, then on T_i (the fixed order that regularizes domain-j
// information toward the target), and move θ_i toward the endpoint with
// learning rate γ (Eq. 8). Updates run in the composed space
// Θ = θ_S + θ_i with θ_S held fixed.
func DomainRegularization(st *State, ds *data.Dataset, target int, cfg framework.Config, rng *rand.Rand) {
	DomainRegularizationOpt(st, ds, target, cfg, rng, DROptions{})
}

// DROptions selects Domain Regularization ablations used by the design-
// choice benchmarks; the zero value is the paper's Algorithm 2.
type DROptions struct {
	// SkipTargetStep omits the final update on the target domain
	// (Eq. 7), degrading DR to naive cross-domain transfer.
	SkipTargetStep bool
	// ReverseOrder updates on the target domain before the helper,
	// breaking the fixed order the Section IV-C analysis relies on.
	ReverseOrder bool
}

// DomainRegularizationOpt is DomainRegularization with explicit ablation
// options.
func DomainRegularizationOpt(st *State, ds *data.Dataset, target int, cfg framework.Config, rng *rand.Rand, opts DROptions) {
	params := st.Model.Parameters()
	helpers := SampleHelpers(ds.NumDomains(), target, cfg.SampleK, rng)

	ctx := cfg.Tracer.Context(context.Background())
	ctx, drSpan := trace.Start(ctx, "dr.target",
		trace.A("target", ds.Domains[target].Name), trace.A("helpers", len(helpers)))
	defer drSpan.End()

	for _, j := range helpers {
		// θ̃_i ← θ_i (working in composed coordinates Θ = θ_S + θ_i).
		composed := st.ComposedFor(target)
		paramvec.Restore(params, composed)

		laCtx, laSpan := trace.Start(ctx, "dr.lookahead",
			trace.A("helper", ds.Domains[j].Name))
		inner := optim.New(cfg.InnerOpt, cfg.LR)
		// Update on helper domain j, then on the target domain i.
		first, second := j, target
		if opts.ReverseOrder {
			first, second = target, j
		}
		framework.TrainDomainPassCtx(laCtx, st.Model, ds, first, inner, cfg.BatchSize, cfg.MaxBatchesPerDomain, rng)
		if !opts.SkipTargetStep {
			loss := framework.TrainDomainPassCtx(laCtx, st.Model, ds, second, inner, cfg.BatchSize, cfg.MaxBatchesPerDomain, rng)
			cfg.Telemetry.ObserveDRPass(target, loss)
		}
		laSpan.End()

		// θ_i ← θ_i + γ(θ̃_i − θ_i); in composed coordinates the
		// difference of endpoints equals the difference of specifics.
		endpoint := paramvec.Snapshot(params)
		paramvec.Axpy(st.Specific[target], cfg.DRLR, paramvec.Sub(endpoint, composed))
	}
}

// SampleHelpers draws k distinct helper domains excluding the target
// (all others when k >= n-1). With a single domain it returns the target
// itself so DR degrades gracefully to per-domain finetuning.
func SampleHelpers(n, target, k int, rng *rand.Rand) []int {
	if n == 1 {
		return []int{target}
	}
	pool := make([]int, 0, n-1)
	for d := 0; d < n; d++ {
		if d != target {
			pool = append(pool, d)
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if k < len(pool) {
		pool = pool[:k]
	}
	return pool
}
