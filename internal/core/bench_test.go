package core

import (
	"io"
	"testing"
	"time"

	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/obsv"
	"mamdr/internal/synth"
	"mamdr/internal/telemetry"
)

// BenchmarkTelemetryOverhead measures the full MAMDR training loop bare
// versus with a registry and event log attached (per-domain gauges,
// step timing histograms, parameter snapshots for the gradient-conflict
// cosines, one JSONL event per epoch). The instrumented/bare ratio is
// the telemetry tax; the acceptance budget is <5%. Run with:
//
//	go test ./internal/core -bench TelemetryOverhead -benchtime 10x
func BenchmarkTelemetryOverhead(b *testing.B) {
	cfg := synth.Config{
		Name: "telemetry-bench", Seed: 31, ConflictStrength: 0.8,
		Domains: []synth.DomainSpec{
			{Name: "books", Samples: 1200, CTRRatio: 0.3},
			{Name: "games", Samples: 800, CTRRatio: 0.4},
			{Name: "toys", Samples: 600, CTRRatio: 0.35},
			{Name: "tools", Samples: 400, CTRRatio: 0.25},
		},
	}
	run := func(b *testing.B, tm *framework.TrainMetrics) {
		ds := synth.Generate(cfg)
		for i := 0; i < b.N; i++ {
			m := models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 16, Hidden: []int{32}, Seed: 5})
			framework.MustNew("mamdr").Fit(m, ds, framework.Config{
				Epochs: 2, BatchSize: 64, Seed: 9, Telemetry: tm,
			})
		}
	}

	b.Run("bare", func(b *testing.B) { run(b, nil) })
	b.Run("instrumented", func(b *testing.B) {
		ds := synth.Generate(cfg)
		tm := framework.NewTrainMetrics(telemetry.New(), ds, telemetry.NewEventLog(io.Discard))
		run(b, tm)
	})
	// Federation enabled: the same instrumented loop while a background
	// scraper snapshots and federates the live registry every 5ms — far
	// more often than mamdr-obs's default 5s cadence — so the measured
	// ratio bounds the federation tax from above. Budget stays <5%.
	b.Run("federated", func(b *testing.B) {
		ds := synth.Generate(cfg)
		reg := telemetry.New()
		tm := framework.NewTrainMetrics(reg, ds, telemetry.NewEventLog(io.Discard))
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					snap := reg.Snapshot()
					snap.Role, snap.Instance = "trainer", "bench"
					if _, err := obsv.Federate([]telemetry.RegistrySnapshot{snap}); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}()
		run(b, tm)
		close(stop)
		<-done
	})
}
