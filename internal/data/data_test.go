package data

import (
	"math/rand"
	"path/filepath"
	"testing"
)

// tinyDataset builds a hand-rolled 2-domain dataset for unit tests.
func tinyDataset() *Dataset {
	return &Dataset{
		Name:     "tiny",
		NumUsers: 3,
		NumItems: 2,
		Schema: Schema{
			UserFields: []Field{{Name: "user_id", Vocab: 3}, {Name: "seg", Vocab: 2}},
			ItemFields: []Field{{Name: "item_id", Vocab: 2}},
		},
		UserFeatures: [][]int{{0, 1}, {1, 0}, {2, 1}},
		ItemFeatures: [][]int{{0}, {1}},
		Domains: []*Domain{
			{
				ID: 0, Name: "d0", CTRRatio: 0.3,
				Train: []Interaction{{User: 0, Item: 0, Label: 1}, {User: 1, Item: 1, Label: 0}, {User: 2, Item: 0, Label: 1}},
				Val:   []Interaction{{User: 0, Item: 1, Label: 0}},
				Test:  []Interaction{{User: 2, Item: 1, Label: 1}},
			},
			{
				ID: 1, Name: "d1", CTRRatio: 0.4,
				Train: []Interaction{{User: 1, Item: 0, Label: 0}},
				Val:   []Interaction{{User: 2, Item: 0, Label: 1}},
				Test:  []Interaction{{User: 0, Item: 0, Label: 0}},
			},
		},
	}
}

func TestValidateAcceptsGoodDataset(t *testing.T) {
	if err := tinyDataset().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadUser(t *testing.T) {
	d := tinyDataset()
	d.Domains[0].Train[0].User = 99
	if err := d.Validate(); err == nil {
		t.Fatal("expected validation error for bad user id")
	}
}

func TestValidateCatchesBadLabel(t *testing.T) {
	d := tinyDataset()
	d.Domains[1].Test[0].Label = 0.5
	if err := d.Validate(); err == nil {
		t.Fatal("expected validation error for non-binary label")
	}
}

func TestValidateCatchesVocabOverflow(t *testing.T) {
	d := tinyDataset()
	d.UserFeatures[0][1] = 5 // seg vocab is 2
	if err := d.Validate(); err == nil {
		t.Fatal("expected validation error for vocab overflow")
	}
}

func TestValidateCatchesFeatureRowCount(t *testing.T) {
	d := tinyDataset()
	d.UserFeatures = d.UserFeatures[:2]
	if err := d.Validate(); err == nil {
		t.Fatal("expected validation error for missing feature rows")
	}
}

func TestSplitString(t *testing.T) {
	if Train.String() != "train" || Val.String() != "val" || Test.String() != "test" {
		t.Fatal("split names wrong")
	}
}

func TestDomainSamples(t *testing.T) {
	d := tinyDataset().Domains[0]
	if d.Samples() != 5 {
		t.Fatalf("Samples = %d, want 5", d.Samples())
	}
}

func TestMakeBatchResolvesFields(t *testing.T) {
	d := tinyDataset()
	b := d.MakeBatch(0, d.Domains[0].Train)
	if b.Size() != 3 {
		t.Fatalf("batch size = %d, want 3", b.Size())
	}
	if len(b.FieldValues) != 3 {
		t.Fatalf("field count = %d, want 3", len(b.FieldValues))
	}
	// Sample 1 is user 1 (features {1, 0}) and item 1 (features {1}).
	if b.FieldValues[0][1] != 1 || b.FieldValues[1][1] != 0 || b.FieldValues[2][1] != 1 {
		t.Fatalf("resolved fields wrong: %v", b.FieldValues)
	}
	if b.Labels[0] != 1 || b.Labels[1] != 0 {
		t.Fatal("labels wrong")
	}
	if b.Domain != 0 {
		t.Fatal("domain id wrong")
	}
}

func TestBatchesCoverAllSamplesOnce(t *testing.T) {
	d := tinyDataset()
	rng := rand.New(rand.NewSource(1))
	batches := d.Batches(0, Train, 2, rng)
	if len(batches) != 2 {
		t.Fatalf("batch count = %d, want 2", len(batches))
	}
	seen := map[[2]int]int{}
	total := 0
	for _, b := range batches {
		total += b.Size()
		for i := range b.Users {
			seen[[2]int{b.Users[i], b.Items[i]}]++
		}
	}
	if total != 3 {
		t.Fatalf("total samples = %d, want 3", total)
	}
	for pair, n := range seen {
		if n != 1 {
			t.Fatalf("pair %v seen %d times", pair, n)
		}
	}
}

func TestBatchesDeterministicWithoutRng(t *testing.T) {
	d := tinyDataset()
	a := d.Batches(0, Train, 10, nil)
	b := d.Batches(0, Train, 10, nil)
	for i := range a[0].Users {
		if a[0].Users[i] != b[0].Users[i] {
			t.Fatal("nil-rng batching not deterministic")
		}
	}
}

func TestBatchesBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for batch size 0")
		}
	}()
	tinyDataset().Batches(0, Train, 0, nil)
}

func TestFullBatch(t *testing.T) {
	d := tinyDataset()
	b := d.FullBatch(1, Test)
	if b.Size() != 1 || b.Users[0] != 0 {
		t.Fatal("FullBatch wrong")
	}
}

func TestStats(t *testing.T) {
	d := tinyDataset()
	stats := d.Stats()
	if len(stats) != 2 {
		t.Fatalf("stat rows = %d", len(stats))
	}
	if stats[0].Samples != 5 || stats[1].Samples != 3 {
		t.Fatalf("sample counts = %d/%d", stats[0].Samples, stats[1].Samples)
	}
	if stats[0].Percentage < 62 || stats[0].Percentage > 63 {
		t.Fatalf("percentage = %g, want 62.5", stats[0].Percentage)
	}
}

func TestOverall(t *testing.T) {
	o := tinyDataset().Overall()
	if o.NumDomains != 2 || o.TrainSamples != 4 || o.ValSamples != 2 || o.TestSamples != 2 {
		t.Fatalf("overall = %+v", o)
	}
	if o.SamplesPerDomain != 4 {
		t.Fatalf("samples/domain = %d, want 4", o.SamplesPerDomain)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := tinyDataset()
	path := filepath.Join(t.TempDir(), "tiny.json")
	if err := SaveJSON(d, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.NumDomains() != 2 || got.Domains[0].Train[0].User != 0 {
		t.Fatal("round trip lost data")
	}
	if got.Domains[1].CTRRatio != 0.4 {
		t.Fatal("round trip lost CTR ratio")
	}
}

func TestLoadJSONRejectsInvalid(t *testing.T) {
	d := tinyDataset()
	d.Domains[0].Train[0].User = 99
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := SaveJSON(d, path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJSON(path); err == nil {
		t.Fatal("LoadJSON accepted an invalid dataset")
	}
}

func TestLoadJSONMissingFile(t *testing.T) {
	if _, err := LoadJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestSaveCSVWritesAllFiles(t *testing.T) {
	d := tinyDataset()
	dir := t.TempDir()
	if err := SaveCSV(d, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"users.csv", "items.csv", "domain_0.csv", "domain_1.csv"} {
		if _, err := filepath.Glob(filepath.Join(dir, name)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestSchemaFieldsOrder(t *testing.T) {
	s := tinyDataset().Schema
	fields := s.Fields()
	if len(fields) != 3 || fields[0].Name != "user_id" || fields[2].Name != "item_id" {
		t.Fatalf("schema fields = %v", fields)
	}
	if s.NumFields() != 3 {
		t.Fatal("NumFields wrong")
	}
}

func TestHasFixedFeatures(t *testing.T) {
	d := tinyDataset()
	if d.HasFixedFeatures() {
		t.Fatal("tiny dataset should not report fixed features")
	}
	d.FixedUserVecs = [][]float64{{1}, {2}, {3}}
	d.FixedItemVecs = [][]float64{{1}, {2}}
	if !d.HasFixedFeatures() {
		t.Fatal("fixed features not detected")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d.FixedItemVecs = d.FixedItemVecs[:1]
	if err := d.Validate(); err == nil {
		t.Fatal("expected validation error for short fixed features")
	}
}
