// Package data defines the multi-domain recommendation dataset model
// used throughout the repository: domains with train/val/test
// interaction splits, a global feature storage shared by all domains
// (mirroring the Taobao MDR platform of the paper, Fig. 2), categorical
// feature schemas, and mini-batching.
package data

import (
	"fmt"
	"math/rand"
	"sort"
)

// Interaction is one user-item event with a binary click label.
type Interaction struct {
	User  int
	Item  int
	Label float64 // 1 = clicked (positive), 0 = sampled negative
}

// Split selects one of the three interaction partitions of a domain.
type Split int

// The dataset splits.
const (
	Train Split = iota
	Val
	Test
)

// String returns the split's name.
func (s Split) String() string {
	switch s {
	case Train:
		return "train"
	case Val:
		return "val"
	case Test:
		return "test"
	default:
		return fmt.Sprintf("Split(%d)", int(s))
	}
}

// Domain is one recommendation scenario: a theme page, a promotion, a
// product category. Users and items may overlap across domains.
type Domain struct {
	ID       int
	Name     string
	CTRRatio float64 // #positives / #negatives, per the paper's Eq. 23
	Train    []Interaction
	Val      []Interaction
	Test     []Interaction
}

// Samples returns the number of interactions across all splits.
func (d *Domain) Samples() int { return len(d.Train) + len(d.Val) + len(d.Test) }

// Get returns the interactions of one split.
func (d *Domain) Get(s Split) []Interaction {
	switch s {
	case Train:
		return d.Train
	case Val:
		return d.Val
	case Test:
		return d.Test
	default:
		panic("data: unknown split " + s.String())
	}
}

// Field describes one categorical feature field.
type Field struct {
	Name  string
	Vocab int
}

// Schema lists the categorical fields of users and items. The model
// input for a sample is the concatenation of the embeddings of every
// user field followed by every item field.
type Schema struct {
	UserFields []Field
	ItemFields []Field
}

// NumFields returns the total number of fields.
func (s Schema) NumFields() int { return len(s.UserFields) + len(s.ItemFields) }

// Fields returns user fields followed by item fields.
func (s Schema) Fields() []Field {
	out := make([]Field, 0, s.NumFields())
	out = append(out, s.UserFields...)
	out = append(out, s.ItemFields...)
	return out
}

// Dataset is a complete multi-domain benchmark: the global user/item
// feature storage plus per-domain interaction splits.
type Dataset struct {
	Name     string
	NumUsers int
	NumItems int
	Domains  []*Domain
	Schema   Schema

	// UserFeatures[u][f] is the categorical value of user u for user
	// field f; ItemFeatures likewise. Field 0 is the entity id itself.
	UserFeatures [][]int
	ItemFeatures [][]int

	// FixedUserVecs/FixedItemVecs, when non-nil, are frozen dense
	// feature vectors (the Taobao benchmarks fix GraphSage features
	// during training). When nil, models learn embeddings from the
	// categorical fields (the Amazon benchmarks).
	FixedUserVecs [][]float64
	FixedItemVecs [][]float64
}

// NumDomains returns the number of domains.
func (d *Dataset) NumDomains() int { return len(d.Domains) }

// HasFixedFeatures reports whether the dataset carries frozen dense
// features instead of learnable categorical embeddings.
func (d *Dataset) HasFixedFeatures() bool {
	return d.FixedUserVecs != nil && d.FixedItemVecs != nil
}

// TotalSamples sums Samples over all domains.
func (d *Dataset) TotalSamples() int {
	n := 0
	for _, dom := range d.Domains {
		n += dom.Samples()
	}
	return n
}

// Validate checks referential integrity: every interaction references a
// valid user/item, every feature row matches the schema, and labels are
// binary. It returns the first violation found.
func (d *Dataset) Validate() error {
	if len(d.UserFeatures) != d.NumUsers {
		return fmt.Errorf("data: %d user feature rows for %d users", len(d.UserFeatures), d.NumUsers)
	}
	if len(d.ItemFeatures) != d.NumItems {
		return fmt.Errorf("data: %d item feature rows for %d items", len(d.ItemFeatures), d.NumItems)
	}
	for u, row := range d.UserFeatures {
		if len(row) != len(d.Schema.UserFields) {
			return fmt.Errorf("data: user %d has %d fields, want %d", u, len(row), len(d.Schema.UserFields))
		}
		for f, v := range row {
			if v < 0 || v >= d.Schema.UserFields[f].Vocab {
				return fmt.Errorf("data: user %d field %d value %d outside vocab %d", u, f, v, d.Schema.UserFields[f].Vocab)
			}
		}
	}
	for it, row := range d.ItemFeatures {
		if len(row) != len(d.Schema.ItemFields) {
			return fmt.Errorf("data: item %d has %d fields, want %d", it, len(row), len(d.Schema.ItemFields))
		}
		for f, v := range row {
			if v < 0 || v >= d.Schema.ItemFields[f].Vocab {
				return fmt.Errorf("data: item %d field %d value %d outside vocab %d", it, f, v, d.Schema.ItemFields[f].Vocab)
			}
		}
	}
	for _, dom := range d.Domains {
		for _, split := range []Split{Train, Val, Test} {
			for _, in := range dom.Get(split) {
				if in.User < 0 || in.User >= d.NumUsers {
					return fmt.Errorf("data: domain %d %s references user %d of %d", dom.ID, split, in.User, d.NumUsers)
				}
				if in.Item < 0 || in.Item >= d.NumItems {
					return fmt.Errorf("data: domain %d %s references item %d of %d", dom.ID, split, in.Item, d.NumItems)
				}
				if in.Label != 0 && in.Label != 1 {
					return fmt.Errorf("data: domain %d %s has non-binary label %g", dom.ID, split, in.Label)
				}
			}
		}
	}
	if d.HasFixedFeatures() {
		if len(d.FixedUserVecs) != d.NumUsers || len(d.FixedItemVecs) != d.NumItems {
			return fmt.Errorf("data: fixed feature rows %d/%d for %d users / %d items",
				len(d.FixedUserVecs), len(d.FixedItemVecs), d.NumUsers, d.NumItems)
		}
	}
	return nil
}

// Batch is one mini-batch of interactions from a single domain, with
// categorical field values already resolved from the global feature
// storage.
type Batch struct {
	Domain int
	Users  []int
	Items  []int
	// FieldValues[f][i] is sample i's value for field f, ordered as
	// Schema.Fields() (user fields then item fields).
	FieldValues [][]int
	Labels      []float64
}

// Size returns the number of samples in the batch.
func (b *Batch) Size() int { return len(b.Labels) }

// MakeBatch resolves the given interactions of one domain into a Batch.
func (d *Dataset) MakeBatch(domainID int, ins []Interaction) *Batch {
	nu := len(d.Schema.UserFields)
	ni := len(d.Schema.ItemFields)
	b := &Batch{
		Domain:      domainID,
		Users:       make([]int, len(ins)),
		Items:       make([]int, len(ins)),
		FieldValues: make([][]int, nu+ni),
		Labels:      make([]float64, len(ins)),
	}
	for f := range b.FieldValues {
		b.FieldValues[f] = make([]int, len(ins))
	}
	for i, in := range ins {
		b.Users[i] = in.User
		b.Items[i] = in.Item
		b.Labels[i] = in.Label
		for f := 0; f < nu; f++ {
			b.FieldValues[f][i] = d.UserFeatures[in.User][f]
		}
		for f := 0; f < ni; f++ {
			b.FieldValues[nu+f][i] = d.ItemFeatures[in.Item][f]
		}
	}
	return b
}

// Batches splits one domain split into shuffled mini-batches. The rng
// may be nil for deterministic, unshuffled order.
func (d *Dataset) Batches(domainID int, split Split, batchSize int, rng *rand.Rand) []*Batch {
	if batchSize <= 0 {
		panic("data: non-positive batch size")
	}
	ins := d.Domains[domainID].Get(split)
	order := make([]int, len(ins))
	for i := range order {
		order[i] = i
	}
	if rng != nil {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	var out []*Batch
	for start := 0; start < len(order); start += batchSize {
		end := start + batchSize
		if end > len(order) {
			end = len(order)
		}
		chunk := make([]Interaction, 0, end-start)
		for _, idx := range order[start:end] {
			chunk = append(chunk, ins[idx])
		}
		out = append(out, d.MakeBatch(domainID, chunk))
	}
	return out
}

// FullBatch returns the entire split of a domain as one batch (used for
// evaluation).
func (d *Dataset) FullBatch(domainID int, split Split) *Batch {
	return d.MakeBatch(domainID, d.Domains[domainID].Get(split))
}

// DomainStat summarizes one domain for the statistics tables (Tables
// II-IV of the paper).
type DomainStat struct {
	ID         int
	Name       string
	Samples    int
	Percentage float64
	CTRRatio   float64
}

// Stats computes per-domain statistics sorted by domain ID.
func (d *Dataset) Stats() []DomainStat {
	total := d.TotalSamples()
	out := make([]DomainStat, 0, len(d.Domains))
	for _, dom := range d.Domains {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(dom.Samples()) / float64(total)
		}
		out = append(out, DomainStat{
			ID:         dom.ID,
			Name:       dom.Name,
			Samples:    dom.Samples(),
			Percentage: pct,
			CTRRatio:   dom.CTRRatio,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OverallStat is the Table I row for a dataset.
type OverallStat struct {
	Name             string
	NumDomains       int
	NumUsers         int
	NumItems         int
	TrainSamples     int
	ValSamples       int
	TestSamples      int
	SamplesPerDomain int
}

// Overall computes the Table I summary row.
func (d *Dataset) Overall() OverallStat {
	s := OverallStat{
		Name:       d.Name,
		NumDomains: len(d.Domains),
		NumUsers:   d.NumUsers,
		NumItems:   d.NumItems,
	}
	for _, dom := range d.Domains {
		s.TrainSamples += len(dom.Train)
		s.ValSamples += len(dom.Val)
		s.TestSamples += len(dom.Test)
	}
	if len(d.Domains) > 0 {
		s.SamplesPerDomain = d.TotalSamples() / len(d.Domains)
	}
	return s
}
