package data

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// SaveJSON writes the dataset as one indented JSON file. The format is
// self-describing and intended for interchange with other MDR research
// code.
func SaveJSON(d *Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("data: create %s: %w", path, err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("data: encode %s: %w", path, err)
	}
	return w.Flush()
}

// LoadJSON reads a dataset previously written by SaveJSON and validates
// it.
func LoadJSON(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: open %s: %w", path, err)
	}
	defer f.Close()
	var d Dataset
	if err := json.NewDecoder(bufio.NewReader(f)).Decode(&d); err != nil {
		return nil, fmt.Errorf("data: decode %s: %w", path, err)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("data: %s: %w", path, err)
	}
	return &d, nil
}

// SaveCSV writes the dataset as a directory of CSV files, one
// interactions file per domain plus user/item feature files — the
// layout released alongside the paper's public benchmarks.
func SaveCSV(d *Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("data: mkdir %s: %w", dir, err)
	}
	writeFeatures := func(name string, rows [][]int) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		for id, row := range rows {
			fmt.Fprintf(w, "%d", id)
			for _, v := range row {
				fmt.Fprintf(w, ",%d", v)
			}
			fmt.Fprintln(w)
		}
		return w.Flush()
	}
	if err := writeFeatures("users.csv", d.UserFeatures); err != nil {
		return fmt.Errorf("data: users.csv: %w", err)
	}
	if err := writeFeatures("items.csv", d.ItemFeatures); err != nil {
		return fmt.Errorf("data: items.csv: %w", err)
	}
	for _, dom := range d.Domains {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("domain_%d.csv", dom.ID)))
		if err != nil {
			return fmt.Errorf("data: domain csv: %w", err)
		}
		w := bufio.NewWriter(f)
		fmt.Fprintln(w, "split,user,item,label")
		for _, split := range []Split{Train, Val, Test} {
			for _, in := range dom.Get(split) {
				fmt.Fprintf(w, "%s,%d,%d,%g\n", split, in.User, in.Item, in.Label)
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("data: domain csv flush: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("data: domain csv close: %w", err)
		}
	}
	return nil
}
