package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestAUCPerfectRanking(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []float64{1, 1, 0, 0}
	if got := AUC(scores, labels); got != 1 {
		t.Fatalf("AUC = %g, want 1", got)
	}
}

func TestAUCInvertedRanking(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []float64{1, 1, 0, 0}
	if got := AUC(scores, labels); got != 0 {
		t.Fatalf("AUC = %g, want 0", got)
	}
}

func TestAUCAllTiedIsHalf(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []float64{1, 0, 1, 0}
	if got := AUC(scores, labels); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("AUC = %g, want 0.5", got)
	}
}

func TestAUCSingleClassIsHalf(t *testing.T) {
	if got := AUC([]float64{0.1, 0.9}, []float64{1, 1}); got != 0.5 {
		t.Fatalf("all-positive AUC = %g, want 0.5", got)
	}
	if got := AUC([]float64{0.1, 0.9}, []float64{0, 0}); got != 0.5 {
		t.Fatalf("all-negative AUC = %g, want 0.5", got)
	}
	if got := AUC(nil, nil); got != 0.5 {
		t.Fatalf("empty AUC = %g, want 0.5", got)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// One inversion among 2x2 pairs: AUC = 3/4.
	scores := []float64{0.8, 0.3, 0.5, 0.1}
	labels := []float64{1, 1, 0, 0}
	if got := AUC(scores, labels); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("AUC = %g, want 0.75", got)
	}
}

func TestAUCMatchesPairwiseDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		scores := make([]float64, n)
		labels := make([]float64, n)
		for i := range scores {
			scores[i] = math.Round(rng.Float64()*10) / 10 // coarse => ties
			labels[i] = float64(rng.Intn(2))
		}
		var pairs, wins float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if labels[i] > 0.5 && labels[j] < 0.5 {
					pairs++
					switch {
					case scores[i] > scores[j]:
						wins++
					case scores[i] == scores[j]:
						wins += 0.5
					}
				}
			}
		}
		want := 0.5
		if pairs > 0 {
			want = wins / pairs
		}
		if got := AUC(scores, labels); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: AUC = %g, pairwise = %g", trial, got, want)
		}
	}
}

func TestAUCMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AUC([]float64{1}, []float64{1, 0})
}

func TestLogLossPerfectPrediction(t *testing.T) {
	got := LogLoss([]float64{1, 0}, []float64{1, 0})
	if got > 1e-9 {
		t.Fatalf("LogLoss = %g, want ~0", got)
	}
}

func TestLogLossUninformativePrediction(t *testing.T) {
	got := LogLoss([]float64{0.5, 0.5}, []float64{1, 0})
	if math.Abs(got-math.Ln2) > 1e-12 {
		t.Fatalf("LogLoss = %g, want ln2", got)
	}
}

func TestLogLossClampsExtremes(t *testing.T) {
	got := LogLoss([]float64{0}, []float64{1})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("LogLoss not clamped: %g", got)
	}
}

func TestLogLossEmpty(t *testing.T) {
	if got := LogLoss(nil, nil); got != 0 {
		t.Fatalf("empty LogLoss = %g", got)
	}
}

func TestAccuracy(t *testing.T) {
	probs := []float64{0.9, 0.4, 0.6, 0.1}
	labels := []float64{1, 1, 0, 0}
	if got := Accuracy(probs, labels); got != 0.5 {
		t.Fatalf("Accuracy = %g, want 0.5", got)
	}
	if got := Accuracy(nil, nil); got != 0 {
		t.Fatalf("empty Accuracy = %g", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %g", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("empty Mean = %g", got)
	}
}

func TestRankAmongBasic(t *testing.T) {
	// A wins both domains, C loses both, B in between.
	ranks := RankAmong(map[string][]float64{
		"A": {0.9, 0.8},
		"B": {0.7, 0.7},
		"C": {0.5, 0.6},
	})
	if ranks["A"] != 1 || ranks["B"] != 2 || ranks["C"] != 3 {
		t.Fatalf("ranks = %v", ranks)
	}
}

func TestRankAmongMixed(t *testing.T) {
	// A best in domain 0 (rank 1), worst in domain 1 (rank 2): avg 1.5.
	ranks := RankAmong(map[string][]float64{
		"A": {0.9, 0.5},
		"B": {0.6, 0.8},
	})
	if ranks["A"] != 1.5 || ranks["B"] != 1.5 {
		t.Fatalf("ranks = %v", ranks)
	}
}

func TestRankAmongTiesGetMidRank(t *testing.T) {
	ranks := RankAmong(map[string][]float64{
		"A": {0.7},
		"B": {0.7},
		"C": {0.1},
	})
	if ranks["A"] != 1.5 || ranks["B"] != 1.5 || ranks["C"] != 3 {
		t.Fatalf("ranks = %v", ranks)
	}
}

func TestRankAmongEmpty(t *testing.T) {
	if got := RankAmong(nil); got != nil {
		t.Fatalf("RankAmong(nil) = %v", got)
	}
}

func TestRankAmongMismatchedDomainsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RankAmong(map[string][]float64{"A": {1}, "B": {1, 2}})
}
