// Package metrics implements the evaluation metrics of the MAMDR paper:
// per-domain AUC for CTR prediction, log loss, and the average-RANK
// aggregation used to compare methods across domains (Table V).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// AUC computes the area under the ROC curve from scores and binary
// labels using the rank statistic formulation, with proper handling of
// tied scores (tied groups contribute mid-ranks). It returns 0.5 when
// either class is absent, matching the convention of reporting chance
// performance for degenerate domains.
//
// AUC allocates and sorts an index slice per call. Eval loops that
// compute many AUCs (once per domain per epoch) should reuse an
// AUCScratch instead.
func AUC(scores, labels []float64) float64 {
	var s AUCScratch
	return s.AUC(scores, labels)
}

// AUCScratch computes AUCs while reusing its index buffer across calls,
// eliminating the per-call allocation of the package-level AUC. The
// zero value is ready to use; it is not safe for concurrent use.
type AUCScratch struct {
	idx []int
}

// AUC is identical to the package-level AUC but reuses the scratch's
// index buffer (growing it once to the largest input seen).
func (s *AUCScratch) AUC(scores, labels []float64) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: AUC with %d scores vs %d labels", len(scores), len(labels)))
	}
	n := len(scores)
	if n == 0 {
		return 0.5
	}
	if cap(s.idx) < n {
		s.idx = make([]int, n)
	}
	idx := s.idx[:n]
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	var pos, neg int
	var rankSum float64
	i := 0
	for i < n {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		// mid-rank (1-based) for the tied block [i, j)
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if labels[idx[k]] > 0.5 {
				rankSum += mid
			}
		}
		i = j
	}
	for _, y := range labels {
		if y > 0.5 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	return (rankSum - float64(pos)*float64(pos+1)/2) / (float64(pos) * float64(neg))
}

// LogLoss computes the mean binary cross entropy between predicted
// probabilities and labels, with probabilities clamped away from {0,1}.
func LogLoss(probs, labels []float64) float64 {
	if len(probs) != len(labels) {
		panic(fmt.Sprintf("metrics: LogLoss with %d probs vs %d labels", len(probs), len(labels)))
	}
	if len(probs) == 0 {
		return 0
	}
	const eps = 1e-12
	var total float64
	for i, p := range probs {
		p = math.Min(math.Max(p, eps), 1-eps)
		if labels[i] > 0.5 {
			total -= math.Log(p)
		} else {
			total -= math.Log(1 - p)
		}
	}
	return total / float64(len(probs))
}

// Accuracy returns the fraction of predictions on the correct side of
// the 0.5 probability threshold.
func Accuracy(probs, labels []float64) float64 {
	if len(probs) == 0 {
		return 0
	}
	var hit int
	for i, p := range probs {
		if (p >= 0.5) == (labels[i] > 0.5) {
			hit++
		}
	}
	return float64(hit) / float64(len(probs))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// RankAmong assigns competition-style average ranks to methods from
// their per-domain scores (higher score = better = lower rank). Input is
// methodScores[method][domain]; output is the average rank per method
// across domains, with ties receiving mid-ranks — the "RANK" metric of
// the paper's Table V.
func RankAmong(methodScores map[string][]float64) map[string]float64 {
	if len(methodScores) == 0 {
		return nil
	}
	var names []string
	domains := -1
	for name, scores := range methodScores {
		names = append(names, name)
		if domains == -1 {
			domains = len(scores)
		} else if len(scores) != domains {
			panic(fmt.Sprintf("metrics: method %s has %d domains, want %d", name, len(scores), domains))
		}
	}
	sort.Strings(names)
	sums := map[string]float64{}
	for d := 0; d < domains; d++ {
		type entry struct {
			name  string
			score float64
		}
		es := make([]entry, 0, len(names))
		for _, n := range names {
			es = append(es, entry{n, methodScores[n][d]})
		}
		sort.Slice(es, func(a, b int) bool { return es[a].score > es[b].score })
		i := 0
		for i < len(es) {
			j := i
			for j < len(es) && es[j].score == es[i].score {
				j++
			}
			mid := float64(i+j+1) / 2
			for k := i; k < j; k++ {
				sums[es[k].name] += mid
			}
			i = j
		}
	}
	out := map[string]float64{}
	for _, n := range names {
		out[n] = sums[n] / float64(domains)
	}
	return out
}
