package framework

import (
	"math/rand"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/models"
	"mamdr/internal/optim"
)

func init() {
	Register("weighted", func() Framework { return WeightedLoss{} })
}

// WeightedLoss is homoscedastic-uncertainty loss weighting (Kendall et
// al., 2018) applied to MDR: each domain d owns a learned log-variance
// s_d, and its batches are trained with
//
//	loss = exp(-s_d) * BCE + s_d,
//
// so the balance between domains is optimized jointly with the model.
type WeightedLoss struct{}

// Name implements Framework.
func (WeightedLoss) Name() string { return "Weighted Loss" }

// Fit implements Framework.
func (WeightedLoss) Fit(m models.Model, ds *data.Dataset, cfg Config) Predictor {
	cfg = cfg.WithDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := optim.New(cfg.InnerOpt, cfg.LR)

	logVars := make([]*autograd.Tensor, ds.NumDomains())
	for d := range logVars {
		logVars[d] = autograd.ParamZeros(1, 1)
	}
	params := m.Parameters()
	all := append(append([]*autograd.Tensor(nil), params...), logVars...)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, d := range shuffledDomains(ds.NumDomains(), rng) {
			batches := ds.Batches(d, data.Train, cfg.BatchSize, rng)
			if cfg.MaxBatchesPerDomain > 0 && len(batches) > cfg.MaxBatchesPerDomain {
				batches = batches[:cfg.MaxBatchesPerDomain]
			}
			for _, b := range batches {
				for _, p := range all {
					p.ZeroGrad()
				}
				bce := autograd.BCEWithLogits(m.Forward(b, true), b.Labels)
				precision := autograd.Exp(autograd.Scale(logVars[d], -1))
				loss := autograd.Add(autograd.Mul(precision, bce), logVars[d])
				loss.Backward()
				opt.Step(all)
				loss.Release()
			}
		}
	}
	return NewModelPredictor(m)
}
