package framework

import (
	"math/rand"

	"mamdr/internal/data"
	"mamdr/internal/models"
	"mamdr/internal/optim"
	"mamdr/internal/paramvec"
)

func init() {
	Register("alternate", func() Framework { return Alternate{} })
	Register("finetune", func() Framework { return AlternateFinetune{} })
}

// Alternate is conventional alternate (one-by-one) training: every
// epoch visits each domain in a shuffled order and runs mini-batch
// gradient steps directly on the shared parameters. It is the paper's
// baseline training scheme — and the scheme DN degrades to when β=1.
type Alternate struct{}

// Name implements Framework.
func (Alternate) Name() string { return "Alternate" }

// Fit implements Framework.
func (Alternate) Fit(m models.Model, ds *data.Dataset, cfg Config) Predictor {
	cfg = cfg.WithDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := optim.New(cfg.InnerOpt, cfg.LR)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, d := range shuffledDomains(ds.NumDomains(), rng) {
			TrainDomainPass(m, ds, d, opt, cfg.BatchSize, cfg.MaxBatchesPerDomain, rng)
		}
	}
	return NewModelPredictor(m)
}

// AlternateFinetune runs Alternate training and then finetunes a copy of
// the parameters on each domain separately, keeping one parameter vector
// per domain (the traditional way to obtain domain-specific models).
type AlternateFinetune struct{}

// Name implements Framework.
func (AlternateFinetune) Name() string { return "Alternate+Finetune" }

// Fit implements Framework.
func (AlternateFinetune) Fit(m models.Model, ds *data.Dataset, cfg Config) Predictor {
	cfg = cfg.WithDefaults()
	Alternate{}.Fit(m, ds, cfg)

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	params := m.Parameters()
	base := paramvec.Snapshot(params)
	perDomain := make([]paramvec.Vector, ds.NumDomains())
	for d := range ds.Domains {
		paramvec.Restore(params, base)
		opt := optim.New(cfg.InnerOpt, cfg.LR)
		for e := 0; e < cfg.FinetuneEpochs; e++ {
			TrainDomainPass(m, ds, d, opt, cfg.BatchSize, cfg.MaxBatchesPerDomain, rng)
		}
		perDomain[d] = paramvec.Snapshot(params)
	}
	paramvec.Restore(params, base)
	return &PerDomainPredictor{Model: m, Vectors: perDomain}
}

// PerDomainPredictor swaps a per-domain parameter vector into the model
// before scoring each batch. It is shared by every framework that keeps
// domain-specific parameter states (Finetune, DR, MAMDR).
type PerDomainPredictor struct {
	Model   models.Model
	Vectors []paramvec.Vector
}

// Predict implements Predictor.
func (p *PerDomainPredictor) Predict(b *data.Batch) []float64 {
	params := p.Model.Parameters()
	saved := paramvec.Snapshot(params)
	paramvec.Restore(params, p.Vectors[b.Domain])
	logits := p.Model.Forward(b, false)
	probs := SigmoidAll(logits)
	logits.Release()
	paramvec.Restore(params, saved)
	return probs
}
