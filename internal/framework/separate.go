package framework

import (
	"math/rand"

	"mamdr/internal/data"
	"mamdr/internal/models"
	"mamdr/internal/optim"
	"mamdr/internal/paramvec"
)

func init() {
	Register("separate", func() Framework { return Separate{} })
}

// Separate trains an independent copy of the parameters on every domain
// with no sharing at all — Figure 1(b) of the paper and the
// "RAW+Separate" row of the industry experiments (Table VIII). It
// showcases the failure mode MDR addresses: sparse domains overfit
// because they cannot borrow strength from the others.
type Separate struct{}

// Name implements Framework.
func (Separate) Name() string { return "Separate" }

// Fit implements Framework.
func (Separate) Fit(m models.Model, ds *data.Dataset, cfg Config) Predictor {
	cfg = cfg.WithDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := m.Parameters()
	init := paramvec.Snapshot(params)
	perDomain := make([]paramvec.Vector, ds.NumDomains())
	for d := range ds.Domains {
		paramvec.Restore(params, init)
		opt := optim.New(cfg.InnerOpt, cfg.LR)
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			TrainDomainPass(m, ds, d, opt, cfg.BatchSize, cfg.MaxBatchesPerDomain, rng)
		}
		perDomain[d] = paramvec.Snapshot(params)
	}
	paramvec.Restore(params, init)
	return &PerDomainPredictor{Model: m, Vectors: perDomain}
}
