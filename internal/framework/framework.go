// Package framework implements the model-agnostic learning frameworks
// compared in the MAMDR paper (Table X): the traditional frameworks
// (Alternate training, Alternate+Finetune), the multi-task frameworks
// (Weighted Loss, PCGrad), and the meta-learning frameworks (MAML,
// Reptile, MLDG). The paper's own frameworks — Domain Negotiation,
// Domain Regularization, and full MAMDR — live in package core and
// register themselves here.
//
// A Framework trains any models.Model on a multi-domain dataset and
// returns a Predictor; frameworks only interact with models through
// Forward and Parameters, which is precisely the model-agnostic
// contract MAMDR is built on.
package framework

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"mamdr/internal/autograd"
	"mamdr/internal/autograd/kernels"
	"mamdr/internal/data"
	"mamdr/internal/metrics"
	"mamdr/internal/models"
	"mamdr/internal/optim"
	"mamdr/internal/quality"
	"mamdr/internal/trace"
)

// Config carries the hyper-parameters shared by all frameworks. Zero
// values are filled with the paper's benchmark settings (scaled).
type Config struct {
	// Epochs is the number of passes over all domains.
	Epochs int
	// BatchSize is the mini-batch size.
	BatchSize int
	// LR is the base (inner-loop) learning rate α.
	LR float64
	// OuterLR is the outer-loop learning rate β of DN/Reptile (Eq. 3).
	OuterLR float64
	// DRLR is the Domain Regularization learning rate γ (Eq. 8).
	DRLR float64
	// SampleK is the number of helper domains DR samples (k).
	SampleK int
	// InnerOpt and OuterOpt name the optimizers ("sgd", "adam",
	// "adagrad") for the inner and outer loops.
	InnerOpt, OuterOpt string
	// MaxBatchesPerDomain caps the mini-batches consumed per domain
	// visit (0 = one full pass).
	MaxBatchesPerDomain int
	// FinetuneEpochs is the per-domain finetune budget of
	// Alternate+Finetune.
	FinetuneEpochs int
	// Seed drives all framework-level randomness.
	Seed int64
	// CheckpointDir, when non-empty, enables crash-safe epoch-boundary
	// checkpointing for frameworks that support it (MAMDR): parameters
	// plus the outer optimizer's state land in an atomic, CRC-guarded
	// file every CheckpointEvery epochs (default 1 when a dir is set).
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in epochs.
	CheckpointEvery int
	// Resume restores the last checkpoint in CheckpointDir before
	// training and skips the epochs it already covers; a resumed run
	// reproduces the uninterrupted run bit for bit under the same seed.
	Resume bool
	// Telemetry, when non-nil, receives per-domain training telemetry —
	// loss and grad-norm gauges, DN step timings, the gradient-conflict
	// cosine histogram — and emits JSONL epoch events. Nil (the
	// default) disables instrumentation entirely.
	Telemetry *TrainMetrics
	// Tracer, when non-nil, emits structured spans for DN/DR training:
	// one trace per epoch with per-domain inner steps, forward/backward/
	// optimizer phases, and DR lookahead passes as children. Nil (the
	// default) keeps training on the zero-overhead no-op path.
	Tracer *trace.Tracer
}

// WithDefaults returns cfg with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.LR == 0 {
		c.LR = 0.003
	}
	if c.OuterLR == 0 {
		c.OuterLR = 0.5
	}
	if c.DRLR == 0 {
		c.DRLR = 0.1
	}
	if c.SampleK == 0 {
		c.SampleK = 3
	}
	if c.InnerOpt == "" {
		c.InnerOpt = "adam"
	}
	if c.OuterOpt == "" {
		c.OuterOpt = "sgd"
	}
	if c.FinetuneEpochs == 0 {
		c.FinetuneEpochs = 3
	}
	return c
}

// Predictor scores batches after training. Implementations that keep
// per-domain parameters swap them in keyed by the batch's domain.
type Predictor interface {
	// Predict returns click probabilities for the batch.
	Predict(b *data.Batch) []float64
}

// Framework is a model-agnostic multi-domain training strategy.
type Framework interface {
	// Name returns the framework's display name.
	Name() string
	// Fit trains m on ds and returns a Predictor over the trained
	// state. Fit may mutate m's parameters.
	Fit(m models.Model, ds *data.Dataset, cfg Config) Predictor
}

// --- registry ---

var registry = map[string]func() Framework{}

// Register adds a framework constructor under a canonical key.
func Register(key string, f func() Framework) {
	if _, dup := registry[key]; dup {
		panic("framework: duplicate registration of " + key)
	}
	registry[key] = f
}

// New returns the framework registered under key.
func New(key string) (Framework, error) {
	f, ok := registry[key]
	if !ok {
		return nil, fmt.Errorf("framework: unknown framework %q (have %v)", key, Keys())
	}
	return f(), nil
}

// MustNew is New for static keys; it panics on error.
func MustNew(key string) Framework {
	f, err := New(key)
	if err != nil {
		panic(err)
	}
	return f
}

// Keys lists registered framework keys in sorted order.
func Keys() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- shared helpers ---

// SigmoidAll converts logits to probabilities through the kernels'
// batched sigmoid — one call for however many rows the logits tensor
// carries, the vectorized entry point the micro-batched serving path
// shares with single-request scoring (same expression per element, so
// batched and unbatched scores are bit-identical).
func SigmoidAll(logits *autograd.Tensor) []float64 {
	out := make([]float64, len(logits.Data))
	kernels.SigmoidTo(out, logits.Data)
	return out
}

// modelPredictor scores with the model's current parameters.
type modelPredictor struct{ m models.Model }

// Predict implements Predictor.
func (p modelPredictor) Predict(b *data.Batch) []float64 {
	logits := p.m.Forward(b, false)
	probs := SigmoidAll(logits)
	logits.Release()
	return probs
}

// NewModelPredictor wraps a trained model as a Predictor.
func NewModelPredictor(m models.Model) Predictor { return modelPredictor{m} }

// TrainDomainPass runs mini-batch gradient steps on one domain's train
// split: a full shuffled pass, capped at maxBatches when positive. It
// returns the mean training loss over the consumed batches.
func TrainDomainPass(m models.Model, ds *data.Dataset, domain int, opt optim.Optimizer, batchSize, maxBatches int, rng *rand.Rand) float64 {
	return TrainDomainPassCtx(context.Background(), m, ds, domain, opt, batchSize, maxBatches, rng)
}

// TrainDomainPassCtx is TrainDomainPass under a trace context: when ctx
// carries a sampled span, each mini-batch emits train.forward /
// train.backward / train.optimizer child spans. With no span in ctx the
// trace.Start calls are no-ops and the loop is identical to the
// untraced path.
func TrainDomainPassCtx(ctx context.Context, m models.Model, ds *data.Dataset, domain int, opt optim.Optimizer, batchSize, maxBatches int, rng *rand.Rand) float64 {
	batches := ds.Batches(domain, data.Train, batchSize, rng)
	if maxBatches > 0 && len(batches) > maxBatches {
		batches = batches[:maxBatches]
	}
	params := m.Parameters()
	var total float64
	for _, b := range batches {
		for _, p := range params {
			p.ZeroGrad()
		}
		_, fw := trace.Start(ctx, "train.forward")
		logits := m.Forward(b, true)
		loss := autograd.BCEWithLogits(logits, b.Labels)
		fw.End()
		_, bw := trace.Start(ctx, "train.backward")
		loss.Backward()
		bw.End()
		_, op := trace.Start(ctx, "train.optimizer")
		opt.Step(params)
		op.End()
		total += loss.Item()
		loss.Release()
	}
	if len(batches) == 0 {
		return 0
	}
	return total / float64(len(batches))
}

// DomainGradient accumulates the gradient of the mean training loss of
// one domain (over up to maxBatches mini-batches) into the parameters'
// Grad buffers, leaving parameter values untouched. It returns the mean
// loss.
func DomainGradient(m models.Model, ds *data.Dataset, domain int, batchSize, maxBatches int, rng *rand.Rand) float64 {
	batches := ds.Batches(domain, data.Train, batchSize, rng)
	if maxBatches > 0 && len(batches) > maxBatches {
		batches = batches[:maxBatches]
	}
	params := m.Parameters()
	for _, p := range params {
		p.ZeroGrad()
	}
	var total float64
	for _, b := range batches {
		loss := autograd.Scale(autograd.BCEWithLogits(m.Forward(b, true), b.Labels), 1/float64(len(batches)))
		loss.Backward()
		total += loss.Item() * float64(len(batches))
		loss.Release()
	}
	if len(batches) == 0 {
		return 0
	}
	return total / float64(len(batches))
}

// EvaluateAUC computes the per-domain AUC of a predictor on a split,
// indexed by domain ID. One AUCScratch is shared across the domains, so
// the per-epoch eval loop sorts without a fresh index allocation per
// domain.
func EvaluateAUC(p Predictor, ds *data.Dataset, split data.Split) []float64 {
	var scratch metrics.AUCScratch
	out := make([]float64, ds.NumDomains())
	for d := range ds.Domains {
		b := ds.FullBatch(d, split)
		out[d] = scratch.AUC(p.Predict(b), b.Labels)
	}
	return out
}

// MeanAUC is the average of EvaluateAUC across domains.
func MeanAUC(p Predictor, ds *data.Dataset, split data.Split) float64 {
	return metrics.Mean(EvaluateAUC(p, ds, split))
}

// QualityBaseline profiles a predictor on a split: per-domain score
// histograms, positive rates, AUC and logloss. This is the reference a
// serving process compares live traffic against (PSI drift, AUC
// regression), frozen into checkpoints by SaveWithBaseline.
func QualityBaseline(p Predictor, ds *data.Dataset, split data.Split) *quality.Baseline {
	bb := quality.NewBaselineBuilder(0)
	for d, dom := range ds.Domains {
		b := ds.FullBatch(d, split)
		if b.Size() == 0 {
			continue
		}
		bb.Observe(dom.Name, p.Predict(b), b.Labels)
	}
	return bb.Build()
}

// EmitQuality runs a predictor over a split and feeds the scored,
// labeled batches into a quality tracker — the trainer-side emission
// that puts offline eval on the same metric schema as live serving.
// Callers pass a passive tracker (Options.Checks off) when breach
// counting should stay a serving-side concern.
func EmitQuality(t *quality.Tracker, p Predictor, ds *data.Dataset, split data.Split) {
	if t == nil {
		return
	}
	for d, dom := range ds.Domains {
		b := ds.FullBatch(d, split)
		if b.Size() == 0 {
			continue
		}
		scores := p.Predict(b)
		labels := make([]bool, len(b.Labels))
		for i, l := range b.Labels {
			labels[i] = l > 0.5
		}
		t.ObserveLabeled(dom.Name, scores, labels)
	}
	t.Flush()
}

// shuffledDomains returns a random permutation of domain ids.
func shuffledDomains(n int, rng *rand.Rand) []int {
	order := rng.Perm(n)
	return order
}

// autogradBCE builds the training loss graph for one batch.
func autogradBCE(m models.Model, b *data.Batch) *autograd.Tensor {
	return autograd.BCEWithLogits(m.Forward(b, true), b.Labels)
}
