package framework

import (
	"math/rand"

	"mamdr/internal/data"
	"mamdr/internal/models"
	"mamdr/internal/optim"
	"mamdr/internal/paramvec"
)

func init() {
	Register("pcgrad", func() Framework { return PCGrad{} })
}

// PCGrad is gradient surgery (Yu et al., 2020) adapted to MDR, as in
// Mansilla et al. (2021): each step collects one gradient per domain,
// projects every gradient onto the normal plane of each conflicting
// other gradient (in random order), and applies the sum. Its per-step
// complexity is O(n²) in the number of domains — the scalability
// limitation the paper contrasts DN's O(n) with; BenchmarkConflictScaling
// measures exactly this.
type PCGrad struct{}

// Name implements Framework.
func (PCGrad) Name() string { return "PCGrad" }

// Fit implements Framework.
func (PCGrad) Fit(m models.Model, ds *data.Dataset, cfg Config) Predictor {
	cfg = cfg.WithDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := optim.New(cfg.InnerOpt, cfg.LR)
	params := m.Parameters()
	n := ds.NumDomains()

	// stepsPerEpoch keeps the sample budget comparable to one Alternate
	// epoch: each PCGrad step consumes one mini-batch from every domain.
	stepsPerEpoch := 1
	if cfg.MaxBatchesPerDomain > 0 {
		stepsPerEpoch = cfg.MaxBatchesPerDomain
	} else {
		// One full pass over the largest domain.
		for _, dom := range ds.Domains {
			if b := (len(dom.Train) + cfg.BatchSize - 1) / cfg.BatchSize; b > stepsPerEpoch {
				stepsPerEpoch = b
			}
		}
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for step := 0; step < stepsPerEpoch; step++ {
			grads := make([]paramvec.Vector, n)
			for d := 0; d < n; d++ {
				DomainGradient(m, ds, d, cfg.BatchSize, 1, rng)
				grads[d] = paramvec.SnapshotGrads(params)
			}
			projected := ProjectConflicts(grads, rng)
			// Apply the summed projected gradient through the optimizer.
			total := projected[0].Clone()
			for d := 1; d < n; d++ {
				paramvec.Axpy(total, 1, projected[d])
			}
			for i, p := range params {
				copy(p.Grad, total[i])
			}
			opt.Step(params)
		}
	}
	return NewModelPredictor(m)
}

// ProjectConflicts applies PCGrad's pairwise projection: each domain's
// gradient is projected out of every conflicting other gradient's
// direction, iterating over the others in a random order. The input
// vectors are not modified.
func ProjectConflicts(grads []paramvec.Vector, rng *rand.Rand) []paramvec.Vector {
	out := make([]paramvec.Vector, len(grads))
	for i := range grads {
		g := grads[i].Clone()
		order := rng.Perm(len(grads))
		for _, j := range order {
			if j == i {
				continue
			}
			g = paramvec.ProjectOut(g, grads[j])
		}
		out[i] = g
	}
	return out
}
