package framework

import (
	"math"
	"math/rand"
	"testing"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/models"
	"mamdr/internal/optim"
	"mamdr/internal/paramvec"
	"mamdr/internal/synth"
)

func testDataset(t testing.TB) *data.Dataset {
	t.Helper()
	return synth.Generate(synth.Config{
		Name: "fw-test", Seed: 21, ConflictStrength: 0.7,
		Domains: []synth.DomainSpec{
			{Name: "a", Samples: 400, CTRRatio: 0.3},
			{Name: "b", Samples: 300, CTRRatio: 0.4},
			{Name: "c", Samples: 100, CTRRatio: 0.25},
		},
	})
}

func testModel(t testing.TB, ds *data.Dataset) models.Model {
	t.Helper()
	return models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 4, Hidden: []int{16, 8}, Seed: 5})
}

var baselineKeys = []string{"alternate", "finetune", "weighted", "pcgrad", "maml", "reptile", "mldg"}

func TestRegistryHasBaselines(t *testing.T) {
	for _, k := range baselineKeys {
		if _, err := New(k); err != nil {
			t.Fatalf("New(%s): %v", k, err)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("sorcery"); err == nil {
		t.Fatal("expected error")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew("sorcery")
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Epochs == 0 || c.BatchSize == 0 || c.LR == 0 || c.OuterLR == 0 ||
		c.DRLR == 0 || c.SampleK == 0 || c.InnerOpt == "" || c.OuterOpt == "" || c.FinetuneEpochs == 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
	c2 := Config{Epochs: 3, LR: 0.5}.WithDefaults()
	if c2.Epochs != 3 || c2.LR != 0.5 {
		t.Fatal("explicit values overwritten")
	}
}

// TestAllBaselinesBeatChance trains the MLP under each baseline
// framework and requires test AUC meaningfully above 0.5.
func TestAllBaselinesBeatChance(t *testing.T) {
	ds := testDataset(t)
	for _, key := range baselineKeys {
		fw := MustNew(key)
		m := testModel(t, ds)
		pred := fw.Fit(m, ds, Config{Epochs: 6, BatchSize: 32, Seed: 9})
		auc := MeanAUC(pred, ds, data.Test)
		if auc < 0.55 {
			t.Fatalf("%s: test AUC %.4f, want > 0.55", fw.Name(), auc)
		}
	}
}

func TestFrameworkNames(t *testing.T) {
	want := map[string]string{
		"alternate": "Alternate",
		"finetune":  "Alternate+Finetune",
		"weighted":  "Weighted Loss",
		"pcgrad":    "PCGrad",
		"maml":      "MAML",
		"reptile":   "Reptile",
		"mldg":      "MLDG",
	}
	for key, name := range want {
		if got := MustNew(key).Name(); got != name {
			t.Fatalf("%s.Name() = %q, want %q", key, got, name)
		}
	}
}

func TestTrainDomainPassReducesLoss(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	rng := rand.New(rand.NewSource(1))
	opt := optim.NewAdam(0.01)
	first := TrainDomainPass(m, ds, 0, opt, 32, 0, rng)
	var last float64
	for i := 0; i < 10; i++ {
		last = TrainDomainPass(m, ds, 0, opt, 32, 0, rng)
	}
	if !(last < first) {
		t.Fatalf("loss did not drop: %.4f -> %.4f", first, last)
	}
}

func TestTrainDomainPassRespectsMaxBatches(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	params := m.Parameters()
	before := paramvec.Snapshot(params)
	TrainDomainPass(m, ds, 0, optim.NewSGD(0.1), 16, 1, rand.New(rand.NewSource(1)))
	after := paramvec.Snapshot(params)
	if paramvec.Norm(paramvec.Sub(after, before)) == 0 {
		t.Fatal("no update applied")
	}
}

func TestDomainGradientLeavesParamsUntouched(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	params := m.Parameters()
	before := paramvec.Snapshot(params)
	loss := DomainGradient(m, ds, 1, 32, 0, rand.New(rand.NewSource(2)))
	after := paramvec.Snapshot(params)
	if paramvec.Norm(paramvec.Sub(after, before)) != 0 {
		t.Fatal("DomainGradient modified parameters")
	}
	if loss <= 0 {
		t.Fatalf("loss = %g, want > 0", loss)
	}
	grads := paramvec.SnapshotGrads(params)
	if paramvec.Norm(grads) == 0 {
		t.Fatal("DomainGradient produced zero gradient")
	}
}

func TestSigmoidAllRange(t *testing.T) {
	logits := autograd.New(1, 3, []float64{-100, 0, 100})
	probs := SigmoidAll(logits)
	if probs[0] > 1e-6 || math.Abs(probs[1]-0.5) > 1e-12 || probs[2] < 1-1e-6 {
		t.Fatalf("SigmoidAll = %v", probs)
	}
}

func TestPerDomainPredictorRestoresParams(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	params := m.Parameters()
	base := paramvec.Snapshot(params)
	vecs := make([]paramvec.Vector, ds.NumDomains())
	for d := range vecs {
		v := base.Clone()
		paramvec.Axpy(v, 0.1*float64(d+1), base)
		vecs[d] = v
	}
	p := &PerDomainPredictor{Model: m, Vectors: vecs}
	b := ds.FullBatch(1, data.Test)
	_ = p.Predict(b)
	after := paramvec.Snapshot(params)
	if paramvec.Norm(paramvec.Sub(after, base)) != 0 {
		t.Fatal("Predict leaked per-domain parameters into the model")
	}
}

func TestPerDomainPredictorUsesDomainVector(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	params := m.Parameters()
	base := paramvec.Snapshot(params)
	// Domain 0 keeps base parameters; domain 1 gets strongly scaled ones.
	big := paramvec.Scale(base, 5)
	p := &PerDomainPredictor{Model: m, Vectors: []paramvec.Vector{base, big, base}}
	b0 := ds.FullBatch(0, data.Test)
	b1 := *b0
	b1.Domain = 1
	probs0 := p.Predict(b0)
	probs1 := p.Predict(&b1)
	var diff float64
	for i := range probs0 {
		diff += math.Abs(probs0[i] - probs1[i])
	}
	if diff == 0 {
		t.Fatal("per-domain vectors had no effect on predictions")
	}
}

func TestProjectConflictsRemovesPairwiseConflict(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g1 := paramvec.Vector{{1, 0}}
	g2 := paramvec.Vector{{-1, 0.5}}
	out := ProjectConflicts([]paramvec.Vector{g1, g2}, rng)
	if paramvec.Dot(out[0], g2) < -1e-9 {
		t.Fatal("g1 still conflicts with g2")
	}
	if paramvec.Dot(out[1], g1) < -1e-9 {
		t.Fatal("g2 still conflicts with g1")
	}
}

func TestProjectConflictsKeepsNonConflicting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g1 := paramvec.Vector{{1, 0}}
	g2 := paramvec.Vector{{0.5, 0.5}}
	out := ProjectConflicts([]paramvec.Vector{g1, g2}, rng)
	if out[0][0][0] != 1 || out[0][0][1] != 0 {
		t.Fatal("non-conflicting gradient was modified")
	}
}

func TestEvaluateAUCShape(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	aucs := EvaluateAUC(NewModelPredictor(m), ds, data.Val)
	if len(aucs) != ds.NumDomains() {
		t.Fatalf("per-domain AUC count = %d, want %d", len(aucs), ds.NumDomains())
	}
	for _, a := range aucs {
		if a < 0 || a > 1 {
			t.Fatalf("AUC %g out of range", a)
		}
	}
}

func TestFinetunePredictorIsPerDomain(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	pred := MustNew("finetune").Fit(m, ds, Config{Epochs: 2, BatchSize: 32, Seed: 9})
	if _, ok := pred.(*PerDomainPredictor); !ok {
		t.Fatalf("finetune returned %T, want *PerDomainPredictor", pred)
	}
}

func TestDeterministicFitWithSameSeed(t *testing.T) {
	ds := testDataset(t)
	run := func() []float64 {
		m := testModel(t, ds)
		pred := MustNew("alternate").Fit(m, ds, Config{Epochs: 2, BatchSize: 32, Seed: 77})
		return EvaluateAUC(pred, ds, data.Test)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different results")
		}
	}
}

func TestCDRTransferBeatsChanceAndIsPerDomain(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	pred := MustNew("cdr").Fit(m, ds, Config{Epochs: 2, BatchSize: 32, Seed: 9})
	if _, ok := pred.(*PerDomainPredictor); !ok {
		t.Fatalf("cdr returned %T, want *PerDomainPredictor", pred)
	}
	if auc := MeanAUC(pred, ds, data.Test); auc < 0.55 {
		t.Fatalf("CDR transfer AUC %.4f, want > 0.55", auc)
	}
}
