package framework

import (
	"math/rand"

	"mamdr/internal/data"
	"mamdr/internal/models"
	"mamdr/internal/optim"
	"mamdr/internal/paramvec"
)

func init() {
	Register("maml", func() Framework { return MAML{} })
	Register("reptile", func() Framework { return Reptile{} })
	Register("mldg", func() Framework { return MLDG{} })
}

// MAML applies first-order Model-Agnostic Meta-Learning (Finn et al.,
// 2017) to MDR by treating each domain as a task. Each domain's
// training data is split into a support and a query half: the model
// adapts to the support set with inner SGD steps, the query gradient is
// taken at the adapted parameters, and that gradient is applied at the
// original parameters (the FOMAML approximation, standard in practice).
//
// As the paper observes (Table X discussion), the support/query split
// wastes training data relative to Reptile/DN, which is why MAML
// underperforms in MDR.
type MAML struct{}

// Name implements Framework.
func (MAML) Name() string { return "MAML" }

// Fit implements Framework.
func (MAML) Fit(m models.Model, ds *data.Dataset, cfg Config) Predictor {
	cfg = cfg.WithDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	inner := optim.NewSGD(cfg.LR)
	outer := optim.New(cfg.InnerOpt, cfg.LR)
	params := m.Parameters()

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, d := range shuffledDomains(ds.NumDomains(), rng) {
			train := ds.Domains[d].Train
			if len(train) < 4 {
				continue
			}
			half := len(train) / 2
			support := ds.MakeBatch(d, train[:half])
			query := ds.MakeBatch(d, train[half:])

			origin := paramvec.Snapshot(params)
			// Inner adaptation on the support set.
			stepOnBatch(m, support, inner)
			// Query gradient at the adapted parameters...
			gradOnBatch(m, query)
			queryGrad := paramvec.SnapshotGrads(params)
			// ...applied at the original parameters (first-order MAML).
			paramvec.Restore(params, origin)
			for i, p := range params {
				copy(p.Grad, queryGrad[i])
			}
			outer.Step(params)
		}
	}
	return NewModelPredictor(m)
}

// Reptile (Nichol et al., 2018) meta-learning applied to MDR: for each
// domain, run several inner steps on that domain alone, then move the
// parameters a fraction OuterLR toward the adapted endpoint. As Fig. 5
// of the paper illustrates, Reptile maximizes gradient inner products
// *within* a domain; Domain Negotiation extends the idea across domains.
type Reptile struct{}

// Name implements Framework.
func (Reptile) Name() string { return "Reptile" }

// Fit implements Framework.
func (Reptile) Fit(m models.Model, ds *data.Dataset, cfg Config) Predictor {
	cfg = cfg.WithDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := m.Parameters()

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, d := range shuffledDomains(ds.NumDomains(), rng) {
			origin := paramvec.Snapshot(params)
			inner := optim.New(cfg.InnerOpt, cfg.LR)
			TrainDomainPass(m, ds, d, inner, cfg.BatchSize, cfg.MaxBatchesPerDomain, rng)
			endpoint := paramvec.Snapshot(params)
			paramvec.Restore(params, origin)
			paramvec.AddScaledDiffInto(params, cfg.OuterLR, endpoint, origin)
		}
	}
	return NewModelPredictor(m)
}

// MLDG is Meta-Learning Domain Generalization (Li et al., 2018) in its
// first-order form: each step splits the domains into meta-train and
// meta-test sets, takes a virtual gradient step on the meta-train loss,
// evaluates the meta-test gradient at the virtual parameters, and
// applies the combined gradient at the original point:
//
//	g = g_train + β_meta · g_test(θ - α·g_train).
type MLDG struct{}

// Name implements Framework.
func (MLDG) Name() string { return "MLDG" }

// Fit implements Framework.
func (MLDG) Fit(m models.Model, ds *data.Dataset, cfg Config) Predictor {
	cfg = cfg.WithDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := optim.New(cfg.InnerOpt, cfg.LR)
	params := m.Parameters()
	n := ds.NumDomains()
	const metaBeta = 1.0

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for round := 0; round < n; round++ {
			order := rng.Perm(n)
			testDomain := order[0]
			trainDomains := order[1:]
			if len(trainDomains) == 0 {
				trainDomains = []int{testDomain}
			}

			// Meta-train gradient: average over the meta-train domains
			// (one mini-batch each).
			gTrain := accumulateDomainGrads(m, ds, trainDomains, cfg.BatchSize, rng)

			// Virtual step, then meta-test gradient at the shifted point.
			origin := paramvec.Snapshot(params)
			paramvec.AxpyInto(params, -cfg.LR, gTrain)
			DomainGradient(m, ds, testDomain, cfg.BatchSize, 1, rng)
			gTest := paramvec.SnapshotGrads(params)
			paramvec.Restore(params, origin)

			combined := gTrain.Clone()
			paramvec.Axpy(combined, metaBeta, gTest)
			for i, p := range params {
				copy(p.Grad, combined[i])
			}
			opt.Step(params)
		}
	}
	return NewModelPredictor(m)
}

// accumulateDomainGrads returns the average of one-mini-batch gradients
// over the given domains.
func accumulateDomainGrads(m models.Model, ds *data.Dataset, domains []int, batchSize int, rng *rand.Rand) paramvec.Vector {
	params := m.Parameters()
	var total paramvec.Vector
	for _, d := range domains {
		DomainGradient(m, ds, d, batchSize, 1, rng)
		g := paramvec.SnapshotGrads(params)
		if total == nil {
			total = g
		} else {
			paramvec.Axpy(total, 1, g)
		}
	}
	return paramvec.Scale(total, 1/float64(len(domains)))
}

// stepOnBatch runs one optimizer step on a single batch.
func stepOnBatch(m models.Model, b *data.Batch, opt optim.Optimizer) {
	gradOnBatch(m, b)
	opt.Step(m.Parameters())
}

// gradOnBatch fills parameter gradients from one batch's loss.
func gradOnBatch(m models.Model, b *data.Batch) float64 {
	params := m.Parameters()
	for _, p := range params {
		p.ZeroGrad()
	}
	loss := autogradBCE(m, b)
	loss.Backward()
	v := loss.Item()
	loss.Release()
	return v
}
