package framework

import (
	"fmt"
	"sync/atomic"
	"time"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/paramvec"
	"mamdr/internal/telemetry"
	"mamdr/internal/trace"
)

// TrainMetrics bundles the training-side instruments: per-domain loss
// and gradient-norm gauges, DN inner/outer step timing histograms, and
// the cross-domain gradient cosine-similarity histogram that makes
// domain conflict — the phenomenon Domain Negotiation exists to fix —
// observable per epoch. It optionally mirrors each epoch into a JSONL
// event log so runs are replayable and plottable.
//
// All methods are nil-receiver-safe; a nil *TrainMetrics disables
// instrumentation entirely, so call sites never branch.
type TrainMetrics struct {
	// Anomalies, when non-nil, receives every finished pass's loss for
	// NaN/Inf and z-score spike detection; the sink behind it (usually
	// a tracing flight recorder) dumps the run-up when one fires. Set
	// it before training starts — the field is read concurrently by
	// worker goroutines but never written during training.
	Anomalies *telemetry.LossWatch

	names  []string
	events *telemetry.EventLog

	epochs    *telemetry.Counter
	loss      []*telemetry.Gauge
	gradNorm  []*telemetry.Gauge
	drLoss    []*telemetry.Gauge
	innerStep *telemetry.Histogram
	outerStep *telemetry.Histogram
	gradCos   *telemetry.Histogram

	epoch atomic.Int64
}

// NewTrainMetrics registers the training instruments for ds's domains
// in reg (a nil registry gets a private one, useful when only the event
// log is wanted) and attaches the optional JSONL event log.
func NewTrainMetrics(reg *telemetry.Registry, ds *data.Dataset, events *telemetry.EventLog) *TrainMetrics {
	if reg == nil {
		reg = telemetry.New()
	}
	tm := &TrainMetrics{events: events}
	for _, dom := range ds.Domains {
		tm.names = append(tm.names, dom.Name)
	}
	tm.epochs = reg.Counter("mamdr_train_epochs_total",
		"Completed training epoch passes (one per worker per epoch in distributed mode).")
	tm.innerStep = reg.Histogram("mamdr_train_inner_step_seconds",
		"Duration of one DN inner-loop pass over a single domain.", telemetry.DefBuckets)
	tm.outerStep = reg.Histogram("mamdr_train_outer_step_seconds",
		"Duration of the DN outer update (Eq. 3).", telemetry.DefBuckets)
	tm.gradCos = reg.Histogram("mamdr_train_grad_cosine",
		"Pairwise cosine similarity of per-domain parameter-update deltas within one epoch; mass below zero indicates domain conflict (paper Sec. IV-C).",
		telemetry.CosineBuckets())
	for d, name := range tm.names {
		lbl := telemetry.L("domain", name)
		tm.loss = append(tm.loss, reg.Gauge("mamdr_train_domain_loss",
			"Mean training BCE loss of the domain's latest inner-loop pass.", lbl))
		tm.gradNorm = append(tm.gradNorm, reg.Gauge("mamdr_train_domain_grad_norm",
			"L2 norm of the last mini-batch gradient after the domain's latest pass.", lbl))
		tm.drLoss = append(tm.drLoss, reg.Gauge("mamdr_train_dr_loss",
			"Mean target-domain loss of the latest Domain Regularization lookahead.", lbl))
		_ = d
	}
	return tm
}

// DomainName returns the instrumented name for a domain id (runtime-
// registered domains fall back to their id).
func (tm *TrainMetrics) DomainName(d int) string {
	if tm == nil {
		return ""
	}
	if d >= 0 && d < len(tm.names) {
		return tm.names[d]
	}
	return fmt.Sprintf("runtime-%d", d)
}

// ObserveDRPass records the target-domain loss of one DR lookahead.
func (tm *TrainMetrics) ObserveDRPass(target int, loss float64) {
	if tm == nil || target < 0 || target >= len(tm.drLoss) {
		return
	}
	tm.drLoss[target].Set(loss)
}

// EpochRecorder instruments one epoch's sequential pass over domains.
// It snapshots the parameter vector around each domain's inner loop, so
// the per-domain update deltas — the observable proxy for each domain's
// accumulated gradient direction — can be compared pairwise by cosine
// similarity without any extra forward or backward passes.
type EpochRecorder struct {
	tm     *TrainMetrics
	worker int
	params []*autograd.Tensor

	epochStart time.Time
	passStart  time.Time
	prev       paramvec.Vector

	domains []int
	losses  []float64
	norms   []float64
	deltas  []paramvec.Vector
}

// NewEpochRecorder starts recording an epoch over params. worker tags
// distributed workers in the event log; pass -1 for single-process
// training. A nil *TrainMetrics yields a nil recorder whose methods are
// all no-ops.
func (tm *TrainMetrics) NewEpochRecorder(params []*autograd.Tensor, worker int) *EpochRecorder {
	if tm == nil {
		return nil
	}
	return &EpochRecorder{tm: tm, worker: worker, params: params, epochStart: time.Now()}
}

// BeforePass marks the start of one domain's inner-loop pass.
func (r *EpochRecorder) BeforePass() {
	if r == nil {
		return
	}
	r.passStart = time.Now()
	r.prev = paramvec.Snapshot(r.params)
}

// AfterPass records the finished pass: loss and last-batch gradient
// norm gauges, inner-step timing, and the parameter delta the pass
// produced (for the conflict histogram).
func (r *EpochRecorder) AfterPass(domain int, loss float64) {
	r.AfterPassTC(domain, loss, trace.TraceContext{})
}

// AfterPassTC is AfterPass carrying the trace context of the span that
// produced the pass, so an anomaly raised by the loss watcher (NaN,
// z-score spike) can point straight at the offending span in the
// flight-recorder dump.
func (r *EpochRecorder) AfterPassTC(domain int, loss float64, tc trace.TraceContext) {
	if r == nil {
		return
	}
	after := paramvec.Snapshot(r.params)
	norm := paramvec.Norm(paramvec.SnapshotGrads(r.params))
	r.tm.innerStep.Observe(time.Since(r.passStart).Seconds())
	if domain >= 0 && domain < len(r.tm.loss) {
		r.tm.loss[domain].Set(loss)
		r.tm.gradNorm[domain].Set(norm)
	}
	r.domains = append(r.domains, domain)
	r.losses = append(r.losses, loss)
	r.norms = append(r.norms, norm)
	r.deltas = append(r.deltas, paramvec.Sub(after, r.prev))
	r.prev = nil

	if r.tm.Anomalies != nil {
		fields := map[string]any{"domain": r.tm.DomainName(domain), "loss": loss}
		if r.worker >= 0 {
			fields["worker"] = r.worker
		}
		if tc.Valid() {
			fields["trace_id"], fields["span_id"] = tc.TraceID, tc.SpanID
		}
		r.tm.Anomalies.Observe(r.tm.DomainName(domain), loss, fields)
	}
}

// Finish closes the epoch: pairwise delta cosines feed the conflict
// histogram, the outer-step duration is recorded when non-negative, the
// epoch counter advances, and one JSONL event summarizes the epoch.
func (r *EpochRecorder) Finish(outerSeconds float64) {
	if r == nil {
		return
	}
	if outerSeconds >= 0 {
		r.tm.outerStep.Observe(outerSeconds)
	}
	var cosSum, cosMin float64
	cosMin = 1
	var pairs int
	for i := range r.deltas {
		for j := i + 1; j < len(r.deltas); j++ {
			c := paramvec.CosineSimilarity(r.deltas[i], r.deltas[j])
			r.tm.gradCos.Observe(c)
			cosSum += c
			if c < cosMin {
				cosMin = c
			}
			pairs++
		}
	}
	r.tm.epochs.Inc()
	epoch := r.tm.epoch.Add(1)

	if r.tm.events == nil {
		return
	}
	losses := map[string]float64{}
	norms := map[string]float64{}
	for i, d := range r.domains {
		losses[r.tm.DomainName(d)] = r.losses[i]
		norms[r.tm.DomainName(d)] = r.norms[i]
	}
	fields := map[string]any{
		"epoch":     epoch,
		"seconds":   time.Since(r.epochStart).Seconds(),
		"loss":      losses,
		"grad_norm": norms,
	}
	if r.worker >= 0 {
		fields["worker"] = r.worker
	}
	if outerSeconds >= 0 {
		fields["outer_seconds"] = outerSeconds
	}
	if pairs > 0 {
		fields["grad_cosine_mean"] = cosSum / float64(pairs)
		fields["grad_cosine_min"] = cosMin
	}
	r.tm.events.Log("epoch", fields)
}
