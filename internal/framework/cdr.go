package framework

import (
	"math/rand"

	"mamdr/internal/data"
	"mamdr/internal/models"
	"mamdr/internal/optim"
	"mamdr/internal/paramvec"
)

func init() {
	Register("cdr", func() Framework { return CDRTransfer{} })
}

// CDRTransfer adapts cross-domain recommendation to the MDR problem the
// way Section III-C describes: every domain is treated in turn as the
// target, and knowledge is transferred from *each* auxiliary domain by
// pre-training on it before finetuning on the target — O(n²) training
// passes overall. It exists as the complexity baseline the paper argues
// against: DR achieves the same kind of targeted transfer with k
// sampled helpers (O(kn)), and BenchmarkTrainEpoch/cdr shows the cost
// difference directly.
type CDRTransfer struct{}

// Name implements Framework.
func (CDRTransfer) Name() string { return "CDR-Transfer" }

// Fit implements Framework.
func (CDRTransfer) Fit(m models.Model, ds *data.Dataset, cfg Config) Predictor {
	cfg = cfg.WithDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := m.Parameters()

	// A shared warm start: one alternate epoch so every target begins
	// from multi-domain features (as CDR methods assume a pretrained
	// source model).
	warmOpt := optim.New(cfg.InnerOpt, cfg.LR)
	for _, d := range shuffledDomains(ds.NumDomains(), rng) {
		TrainDomainPass(m, ds, d, warmOpt, cfg.BatchSize, cfg.MaxBatchesPerDomain, rng)
	}
	base := paramvec.Snapshot(params)

	n := ds.NumDomains()
	perDomain := make([]paramvec.Vector, n)
	for target := 0; target < n; target++ {
		// Average the endpoints of transferring from every auxiliary
		// domain — the O(n²) inner loop.
		acc := base.Zero()
		var transfers int
		for aux := 0; aux < n; aux++ {
			if aux == target && n > 1 {
				continue
			}
			paramvec.Restore(params, base)
			opt := optim.New(cfg.InnerOpt, cfg.LR)
			for e := 0; e < cfg.Epochs; e++ {
				TrainDomainPass(m, ds, aux, opt, cfg.BatchSize, cfg.MaxBatchesPerDomain, rng)
				TrainDomainPass(m, ds, target, opt, cfg.BatchSize, cfg.MaxBatchesPerDomain, rng)
			}
			paramvec.Axpy(acc, 1, paramvec.Snapshot(params))
			transfers++
		}
		perDomain[target] = paramvec.Scale(acc, 1/float64(transfers))
	}
	paramvec.Restore(params, base)
	return &PerDomainPredictor{Model: m, Vectors: perDomain}
}
