// Package quality is the model-quality observability layer: streaming
// prequential evaluation (windowed AUC, logloss, calibration) over live
// prediction/label streams, score- and label-distribution drift
// detection (Population Stability Index against a baseline frozen into
// the model checkpoint), and the telemetry series and breach counters
// the fleet's quality SLOs burn against.
//
// Everything here is O(1) memory per domain — bounded by the configured
// window, independent of stream length — and O(1) work per observation,
// so the evaluators can sit directly on the serving request path.
package quality

import "math"

// DefaultBins is the fixed-bin resolution of the streaming AUC rank
// approximation. Scores are quantized to 1/DefaultBins before ranking;
// the streaming AUC is exact for the quantized stream, and within
// AUCTolerance of the exact AUC on the raw scores for score
// distributions that do not concentrate within single bins (verified by
// the property test in stream_test.go).
const DefaultBins = 1024

// AUCTolerance is the documented agreement bound between the windowed
// streaming AUC and metrics.AUC over the raw scores of the same window,
// at DefaultBins resolution. The binning error is bounded by the
// fraction of positive/negative pairs whose scores fall in the same
// bin; 0.01 holds for every benchmark score distribution in this repo
// and is asserted by TestStreamAUCWithinToleranceOfExact.
const AUCTolerance = 0.01

// DefaultCalibBuckets is the number of equal-width score buckets the
// calibration ratio is tracked over.
const DefaultCalibBuckets = 10

// sample is one labeled observation in the window ring. Scores are
// stored as float32: the quantization (~1e-7) is far below the bin
// width and halves the ring's memory.
type sample struct {
	score float32
	pos   bool
}

// WindowEval is a streaming prequential evaluator over the most recent
// Window labeled (score, label) observations: windowed AUC via a
// fixed-bin rank approximation, windowed logloss, and windowed
// calibration (predicted CTR vs observed CTR, overall and per score
// bucket). Not safe for concurrent use; callers lock.
type WindowEval struct {
	bins   int
	window int

	ring  []sample
	head  int
	count int

	pos, neg []int64 // per-bin counts over the window

	loglossSum float64
	predSum    float64
	posTotal   int64

	calibPred  []float64 // per calibration bucket: Σ predicted p
	calibPos   []int64   // per calibration bucket: Σ labels
	calibCount []int64
}

// NewWindowEval builds an evaluator over the last window observations
// at the given bin resolution (DefaultBins when bins <= 0).
func NewWindowEval(window, bins int) *WindowEval {
	if window <= 0 {
		window = 2048
	}
	if bins <= 0 {
		bins = DefaultBins
	}
	return &WindowEval{
		bins:       bins,
		window:     window,
		ring:       make([]sample, window),
		pos:        make([]int64, bins),
		neg:        make([]int64, bins),
		calibPred:  make([]float64, DefaultCalibBuckets),
		calibPos:   make([]int64, DefaultCalibBuckets),
		calibCount: make([]int64, DefaultCalibBuckets),
	}
}

// binOf maps a probability to its bin index. Callers pass quantized
// scores so Add and evict agree bit-for-bit.
func binOf(q float64, bins int) int {
	b := int(q * float64(bins))
	if b >= bins {
		b = bins - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Quantize clamps a score to [0, 1] and rounds it to the float32 the
// ring stores — the exact value every windowed statistic is computed
// from. Exported so differential tests can replay the same stream.
func Quantize(score float64) float64 {
	if score < 0 {
		score = 0
	} else if score > 1 {
		score = 1
	}
	return float64(float32(score))
}

// pointLoss is the clamped binary cross entropy of one observation,
// matching metrics.LogLoss's convention.
func pointLoss(q float64, pos bool) float64 {
	const eps = 1e-12
	p := math.Min(math.Max(q, eps), 1-eps)
	if pos {
		return -math.Log(p)
	}
	return -math.Log(1 - p)
}

// Add records one labeled observation, evicting the oldest when the
// window is full. O(1).
func (w *WindowEval) Add(score float64, pos bool) {
	q := Quantize(score)
	if w.count == w.window {
		w.evict(w.ring[w.head])
	} else {
		w.count++
	}
	w.ring[w.head] = sample{score: float32(q), pos: pos}
	w.head = (w.head + 1) % w.window
	w.apply(q, pos, +1)
}

func (w *WindowEval) evict(s sample) {
	w.apply(float64(s.score), s.pos, -1)
}

// apply adds (dir=+1) or removes (dir=-1) one observation's
// contribution to every windowed aggregate. Removal recomputes the
// identical deterministic per-sample values, so the only residue is
// floating-point cancellation in the running sums.
func (w *WindowEval) apply(q float64, pos bool, dir int) {
	d := int64(dir)
	b := binOf(q, w.bins)
	if pos {
		w.pos[b] += d
		w.posTotal += d
	} else {
		w.neg[b] += d
	}
	w.loglossSum += float64(dir) * pointLoss(q, pos)
	w.predSum += float64(dir) * q
	cb := binOf(q, DefaultCalibBuckets)
	w.calibPred[cb] += float64(dir) * q
	if pos {
		w.calibPos[cb] += d
	}
	w.calibCount[cb] += d
}

// Count returns the number of observations currently in the window.
func (w *WindowEval) Count() int { return w.count }

// Positives returns the number of positive labels in the window.
func (w *WindowEval) Positives() int64 { return w.posTotal }

// PosRate returns the observed positive rate over the window (0 when
// empty).
func (w *WindowEval) PosRate() float64 {
	if w.count == 0 {
		return 0
	}
	return float64(w.posTotal) / float64(w.count)
}

// AUC returns the windowed prequential AUC: the tie-corrected rank
// statistic computed over the bin histograms, identical to metrics.AUC
// on the window's quantized scores. Either class absent (including the
// empty window) reports 0.5, matching the batch convention for
// degenerate domains. O(bins).
func (w *WindowEval) AUC() float64 {
	p := w.posTotal
	n := int64(w.count) - p
	if p == 0 || n == 0 {
		return 0.5
	}
	var cumNeg int64
	var rankSum float64
	for b := 0; b < w.bins; b++ {
		if w.pos[b] > 0 {
			rankSum += float64(w.pos[b]) * (float64(cumNeg) + 0.5*float64(w.neg[b]))
		}
		cumNeg += w.neg[b]
	}
	return rankSum / (float64(p) * float64(n))
}

// LogLoss returns the windowed mean binary cross entropy (0 when
// empty).
func (w *WindowEval) LogLoss() float64 {
	if w.count == 0 {
		return 0
	}
	return w.loglossSum / float64(w.count)
}

// CalibrationRatio returns predicted CTR divided by observed CTR over
// the window: Σp / Σy. A well-calibrated model sits near 1; above 1 the
// model over-predicts clicks, below 1 it under-predicts. Returns 0 when
// the window holds no positives (the ratio is undefined; callers must
// not treat 0 as miscalibration — NaN is deliberately never returned
// because the snapshot codec travels over JSON).
func (w *WindowEval) CalibrationRatio() float64 {
	if w.posTotal == 0 {
		return 0
	}
	return w.predSum / float64(w.posTotal)
}

// BucketCalibration returns the per-score-bucket calibration ratios
// (predicted/observed CTR per bucket; 0 where a bucket has no
// positives) and each bucket's observation count.
func (w *WindowEval) BucketCalibration() (ratios []float64, counts []int64) {
	ratios = make([]float64, DefaultCalibBuckets)
	counts = append([]int64(nil), w.calibCount...)
	for b := range ratios {
		if w.calibPos[b] > 0 {
			ratios[b] = w.calibPred[b] / float64(w.calibPos[b])
		}
	}
	return ratios, counts
}

// Histogram returns the window's total (positive + negative) score
// counts folded down to the given number of buckets — the live
// distribution PSI compares against the baseline.
func (w *WindowEval) Histogram(buckets int) []int64 {
	return foldBins(w.pos, w.neg, w.bins, buckets)
}

// ScoreWindow tracks the score distribution of the most recent Window
// unlabeled predictions — the serving-side score stream, which is far
// denser than the delayed label stream and therefore the primary drift
// signal. Not safe for concurrent use; callers lock.
type ScoreWindow struct {
	bins   int
	window int
	ring   []float32
	head   int
	count  int
	counts []int64
}

// NewScoreWindow builds a score-distribution window at the given bin
// resolution.
func NewScoreWindow(window, bins int) *ScoreWindow {
	if window <= 0 {
		window = 8192
	}
	if bins <= 0 {
		bins = DefaultBins
	}
	return &ScoreWindow{bins: bins, window: window, ring: make([]float32, window), counts: make([]int64, bins)}
}

// Add records one predicted score. O(1).
func (s *ScoreWindow) Add(score float64) {
	q := Quantize(score)
	if s.count == s.window {
		s.counts[binOf(float64(s.ring[s.head]), s.bins)]--
	} else {
		s.count++
	}
	s.ring[s.head] = float32(q)
	s.head = (s.head + 1) % s.window
	s.counts[binOf(q, s.bins)]++
}

// Count returns the number of scores currently in the window.
func (s *ScoreWindow) Count() int { return s.count }

// Histogram returns the window's score counts folded down to the given
// number of buckets.
func (s *ScoreWindow) Histogram(buckets int) []int64 {
	return foldBins(s.counts, nil, s.bins, buckets)
}

// foldBins collapses fine-grained bin counts (a plus optional b) into
// coarse buckets by index range.
func foldBins(a, b []int64, bins, buckets int) []int64 {
	if buckets <= 0 || buckets > bins {
		buckets = bins
	}
	out := make([]int64, buckets)
	for i := 0; i < bins; i++ {
		j := i * buckets / bins
		out[j] += a[i]
		if b != nil {
			out[j] += b[i]
		}
	}
	return out
}
