package quality

import "math"

// DefaultPSIBins is the histogram resolution PSI is computed at.
// Deliberately coarse: PSI sums ln-ratio terms per bucket, so
// fine-grained bins turn sampling noise in sparsely populated buckets
// into spurious drift. Twenty buckets is the standard choice in credit
// scoring, where the 0.1/0.25 interpretation thresholds come from.
const DefaultPSIBins = 20

// psiEps floors bucket proportions so empty buckets contribute a large
// finite term instead of an infinite one.
const psiEps = 1e-4

// PSI returns the Population Stability Index between an expected
// (baseline) distribution and an actual (live) one, given raw bucket
// counts of equal length: Σ (aᵢ−eᵢ)·ln(aᵢ/eᵢ) over normalized
// proportions, with both proportions floored at a small epsilon.
// Conventional reading: < 0.1 stable, 0.1–0.25 moderate shift, > 0.25
// major shift. Returns 0 when either histogram is empty or the lengths
// differ (no evidence is not drift).
func PSI(expected, actual []int64) float64 {
	if len(expected) != len(actual) || len(expected) == 0 {
		return 0
	}
	var eTot, aTot int64
	for i := range expected {
		eTot += expected[i]
		aTot += actual[i]
	}
	if eTot == 0 || aTot == 0 {
		return 0
	}
	var psi float64
	for i := range expected {
		e := math.Max(float64(expected[i])/float64(eTot), psiEps)
		a := math.Max(float64(actual[i])/float64(aTot), psiEps)
		psi += (a - e) * math.Log(a/e)
	}
	return psi
}

// PSIProportions is PSI over already-normalized proportions — the form
// stored in checkpoint baselines — against raw live counts.
func PSIProportions(expected []float64, actual []int64) float64 {
	if len(expected) != len(actual) || len(expected) == 0 {
		return 0
	}
	var aTot int64
	var eTot float64
	for i := range actual {
		aTot += actual[i]
		eTot += expected[i]
	}
	if aTot == 0 || eTot <= 0 {
		return 0
	}
	var psi float64
	for i := range expected {
		e := math.Max(expected[i]/eTot, psiEps)
		a := math.Max(float64(actual[i])/float64(aTot), psiEps)
		psi += (a - e) * math.Log(a/e)
	}
	return psi
}

// LabelPSI measures drift in the positive-label rate as a two-bucket
// PSI over [positives, negatives] — the label-stream counterpart of
// score-distribution PSI.
func LabelPSI(expectedPosRate float64, pos, total int64) float64 {
	if total == 0 {
		return 0
	}
	if expectedPosRate < 0 {
		expectedPosRate = 0
	} else if expectedPosRate > 1 {
		expectedPosRate = 1
	}
	expected := []float64{expectedPosRate, 1 - expectedPosRate}
	actual := []int64{pos, total - pos}
	return PSIProportions(expected, actual)
}
