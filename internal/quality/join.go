package quality

import (
	"sync"
	"time"
)

// PendingPrediction is what the serving layer parks in the join buffer
// at predict time, waiting for delayed labels to arrive on /feedback.
type PendingPrediction struct {
	// Domain is the domain the prediction was served for.
	Domain string
	// Scores are the predicted probabilities, in request order.
	Scores []float32
	// Version is the serving snapshot version that produced the scores,
	// stamped at predict time. Feedback arriving after a snapshot swap
	// is attributed to the model that actually scored it — during a
	// canary, labels for the incumbent's predictions must never leak
	// into the canary's evaluation windows (and vice versa).
	Version uint64
}

// JoinBuffer joins delayed feedback labels to earlier predictions by
// request ID, with a bounded capacity and per-entry TTL: production
// label streams lag the request stream by minutes to days, so the
// buffer holds each prediction for at most TTL and evicts
// oldest-first when full. Safe for concurrent use.
//
// Storage is a flat ring of slots plus an integer-keyed index, not a
// linked list keyed by string: at the default 65536 capacity the
// buffer sits on the serving hot path mostly unjoined (labels may
// never arrive), and tens of thousands of list nodes and string map
// buckets made every GC cycle walk the whole buffer. The ring keeps
// the per-slot pointers in one flat array and the index map
// pointer-free, which is what holds the quality-enabled serving
// benchmark inside the telemetry budget.
type JoinBuffer struct {
	ttl int64 // nanoseconds
	max int
	now func() time.Time

	mu    sync.Mutex
	slots []joinSlot
	// head/tail are absolute slot numbers; slot n lives at
	// slots[n%len(slots)]. head..tail is the occupied window,
	// oldest-first; taken or replaced entries leave tombstones
	// (used=false) that compaction reclaims.
	head, tail int
	live       int
	index      map[uint64]int // id hash -> absolute slot number

	evictions int64
}

type joinSlot struct {
	used     bool
	hash     uint64
	id       string
	pending  PendingPrediction
	deadline int64 // unix nanos
}

// NewJoinBuffer builds a buffer holding at most max predictions for at
// most ttl each (defaults: 65536 entries, 2 minutes). The now func is
// injectable for tests; nil means time.Now.
func NewJoinBuffer(max int, ttl time.Duration, now func() time.Time) *JoinBuffer {
	if max <= 0 {
		max = 65536
	}
	if ttl <= 0 {
		ttl = 2 * time.Minute
	}
	if now == nil {
		now = time.Now
	}
	return &JoinBuffer{ttl: ttl.Nanoseconds(), max: max, now: now, index: map[uint64]int{}}
}

// Put parks a prediction under its request ID. A duplicate ID replaces
// the previous entry and refreshes its TTL. IDs are indexed by a
// 64-bit hash; a colliding later ID shadows the earlier entry (the
// shadowed one can no longer be taken and ages out by TTL) — at the
// bounded capacity the collision odds are ~2^-32, and the cost is one
// missed join, never a mislabeled one.
func (j *JoinBuffer) Put(id string, p PendingPrediction) {
	if id == "" {
		return
	}
	nowN := j.now().UnixNano()
	h := hashID(id)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.expireLocked(nowN)
	if n, ok := j.index[h]; ok {
		if s := j.slot(n); s.used && s.id == id {
			j.clearSlot(n)
		}
	}
	for j.live >= j.max {
		j.evictOldestLocked()
	}
	j.ensureSpaceLocked()
	n := j.tail
	*j.slot(n) = joinSlot{used: true, hash: h, id: id, pending: p, deadline: nowN + j.ttl}
	j.index[h] = n
	j.tail++
	j.live++
}

// Take removes and returns the prediction parked under id. ok is false
// when the ID is unknown, already taken, or expired.
func (j *JoinBuffer) Take(id string) (PendingPrediction, bool) {
	nowN := j.now().UnixNano()
	h := hashID(id)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.expireLocked(nowN)
	n, ok := j.index[h]
	if !ok {
		return PendingPrediction{}, false
	}
	s := j.slot(n)
	if !s.used || s.id != id {
		return PendingPrediction{}, false
	}
	p := s.pending
	j.clearSlot(n)
	return p, true
}

// Len returns the number of parked predictions.
func (j *JoinBuffer) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.live
}

// Evictions returns the number of entries dropped by TTL expiry or
// capacity pressure since creation.
func (j *JoinBuffer) Evictions() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.evictions
}

func (j *JoinBuffer) slot(n int) *joinSlot { return &j.slots[n%len(j.slots)] }

// clearSlot tombstones slot n: the index entry goes (unless a newer
// slot took the hash over), the slot's pointers are zeroed so the GC
// can reclaim the strings and scores, and the head skips any leading
// tombstones.
func (j *JoinBuffer) clearSlot(n int) {
	s := j.slot(n)
	if m, ok := j.index[s.hash]; ok && m == n {
		delete(j.index, s.hash)
	}
	*s = joinSlot{}
	j.live--
	for j.head < j.tail && !j.slot(j.head).used {
		j.head++
	}
}

// expireLocked drops entries whose deadline has passed. Deadlines are
// non-decreasing in insertion order, so scanning from the front stops
// at the first live one.
func (j *JoinBuffer) expireLocked(nowN int64) {
	for j.head < j.tail {
		s := j.slot(j.head)
		if !s.used {
			j.head++
			continue
		}
		if nowN < s.deadline {
			return
		}
		j.clearSlot(j.head)
		j.evictions++
	}
}

func (j *JoinBuffer) evictOldestLocked() {
	for j.head < j.tail && !j.slot(j.head).used {
		j.head++
	}
	if j.head == j.tail {
		return
	}
	j.clearSlot(j.head)
	j.evictions++
}

// ensureSpaceLocked makes room for one more slot: skip leading
// tombstones, then grow the ring (up to max), then compact interior
// tombstones, then evict the oldest live entry.
func (j *JoinBuffer) ensureSpaceLocked() {
	if len(j.slots) == 0 {
		j.slots = make([]joinSlot, min(256, j.max))
		return
	}
	for j.head < j.tail && !j.slot(j.head).used {
		j.head++
	}
	if j.tail-j.head < len(j.slots) {
		return
	}
	switch {
	case len(j.slots) < j.max:
		j.rebuild(min(2*len(j.slots), j.max))
	case j.live < len(j.slots):
		j.rebuild(len(j.slots))
	default:
		j.evictOldestLocked()
	}
}

// rebuild repacks the live entries oldest-first into a ring of size n
// and re-derives the index.
func (j *JoinBuffer) rebuild(n int) {
	fresh := make([]joinSlot, n)
	idx := make(map[uint64]int, j.live)
	w := 0
	for i := j.head; i < j.tail; i++ {
		s := j.slot(i)
		if !s.used {
			continue
		}
		// Preserve shadowing: only the slot the index points at is
		// takeable, so carry exactly those forward.
		if m, ok := j.index[s.hash]; ok && m == i {
			fresh[w] = *s
			idx[s.hash] = w
			w++
		}
	}
	j.slots, j.index, j.head, j.tail, j.live = fresh, idx, 0, w, w
}

// hashID is FNV-1a over the request ID.
func hashID(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
