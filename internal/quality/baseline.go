package quality

// Baseline is the reference quality profile frozen into a model's
// checkpoint envelope at save time: per-domain score distributions,
// positive rates, and offline eval metrics computed on the validation
// split of the training data. Serving loads it next to the parameters
// and measures live-traffic drift (PSI) and quality deltas against it.
//
// The struct travels inside the gob checkpoint payload (see
// core/persist.go), so fields are append-only: never renumber, retype,
// or remove one once released.
type Baseline struct {
	// Bins is the histogram resolution of every ScoreHist below.
	Bins int
	// Domains holds one profile per domain, in dataset order.
	Domains []DomainBaseline
	// Fleet is the profile over all domains pooled together.
	Fleet DomainBaseline
}

// DomainBaseline is one domain's frozen quality profile.
type DomainBaseline struct {
	// Name is the domain's display name ("" for the fleet profile).
	Name string
	// ScoreHist is the normalized score distribution (proportions
	// summing to ~1) over Bins equal-width buckets on [0, 1].
	ScoreHist []float64
	// PosRate is the positive-label rate of the profiled split.
	PosRate float64
	// AUC and LogLoss are the offline eval metrics on that split.
	AUC     float64
	LogLoss float64
	// Count is the number of examples profiled.
	Count int
}

// Domain returns the profile for the named domain, or nil when the
// baseline has none (unknown domain, or nil receiver for pre-quality
// checkpoints).
func (b *Baseline) Domain(name string) *DomainBaseline {
	if b == nil {
		return nil
	}
	for i := range b.Domains {
		if b.Domains[i].Name == name {
			return &b.Domains[i]
		}
	}
	return nil
}

// BaselineBuilder accumulates per-domain (score, label) observations —
// typically a validation-split eval pass — and freezes them into a
// Baseline. Not safe for concurrent use.
type BaselineBuilder struct {
	bins    int
	order   []string
	domains map[string]*baselineAccum
	fleet   baselineAccum
}

type baselineAccum struct {
	hist    []int64
	scores  []float64
	labels  []float64
	pos     int64
	predSum float64
}

// NewBaselineBuilder starts a builder at the given histogram resolution
// (DefaultPSIBins when bins <= 0).
func NewBaselineBuilder(bins int) *BaselineBuilder {
	if bins <= 0 {
		bins = DefaultPSIBins
	}
	return &BaselineBuilder{bins: bins, domains: map[string]*baselineAccum{}}
}

// Observe adds one domain's scored batch to the profile.
func (bb *BaselineBuilder) Observe(domain string, scores, labels []float64) {
	acc, ok := bb.domains[domain]
	if !ok {
		acc = &baselineAccum{hist: make([]int64, bb.bins)}
		bb.domains[domain] = acc
		bb.order = append(bb.order, domain)
	}
	if bb.fleet.hist == nil {
		bb.fleet.hist = make([]int64, bb.bins)
	}
	for i, s := range scores {
		q := Quantize(s)
		pos := i < len(labels) && labels[i] > 0.5
		for _, a := range []*baselineAccum{acc, &bb.fleet} {
			a.hist[binOf(q, bb.bins)]++
			a.scores = append(a.scores, q)
			a.predSum += q
			if pos {
				a.pos++
			}
		}
		acc.labels = append(acc.labels, labels[i])
		bb.fleet.labels = append(bb.fleet.labels, labels[i])
	}
}

// Build freezes the accumulated observations into a Baseline. Domains
// appear in first-observed order.
func (bb *BaselineBuilder) Build() *Baseline {
	out := &Baseline{Bins: bb.bins}
	for _, name := range bb.order {
		out.Domains = append(out.Domains, bb.domains[name].freeze(name))
	}
	out.Fleet = bb.fleet.freeze("")
	return out
}

func (a *baselineAccum) freeze(name string) DomainBaseline {
	d := DomainBaseline{Name: name, Count: len(a.scores)}
	d.ScoreHist = make([]float64, len(a.hist))
	if d.Count > 0 {
		for i, c := range a.hist {
			d.ScoreHist[i] = float64(c) / float64(d.Count)
		}
		d.PosRate = float64(a.pos) / float64(d.Count)
		d.AUC = aucOf(a.scores, a.labels)
		d.LogLoss = logLossOf(a.scores, a.labels)
	}
	return d
}

// aucOf / logLossOf are computed through a throwaway WindowEval so the
// baseline metrics share the streaming evaluators' exact conventions
// (quantization, tie handling, degenerate-class 0.5) without importing
// package metrics — keeping quality a leaf package.
func aucOf(scores, labels []float64) float64 {
	w := NewWindowEval(len(scores), 0)
	for i, s := range scores {
		w.Add(s, labels[i] > 0.5)
	}
	return w.AUC()
}

func logLossOf(scores, labels []float64) float64 {
	w := NewWindowEval(len(scores), 0)
	for i, s := range scores {
		w.Add(s, labels[i] > 0.5)
	}
	return w.LogLoss()
}
