package quality

import (
	"math"
	"math/rand"
	"testing"

	"mamdr/internal/metrics"
)

// replayWindow returns the raw scores/labels currently inside the
// window after streaming all n observations through an evaluator of
// the given window size.
func replayWindow(scores, labels []float64, window int) (ws, wl []float64) {
	start := 0
	if len(scores) > window {
		start = len(scores) - window
	}
	return scores[start:], labels[start:]
}

// streamDists are the score-generation regimes the property test
// replays: each returns (score, label) for one draw.
var streamDists = map[string]func(r *rand.Rand) (float64, float64){
	// A discriminative model: positives shifted up, both classes noisy.
	"discriminative": func(r *rand.Rand) (float64, float64) {
		if r.Float64() < 0.3 {
			return clamp01(0.55 + 0.25*r.NormFloat64()), 1
		}
		return clamp01(0.35 + 0.25*r.NormFloat64()), 0
	},
	// Scores uniform and independent of labels: AUC ~ 0.5.
	"uninformative": func(r *rand.Rand) (float64, float64) {
		return r.Float64(), float64(r.Intn(2))
	},
	// Heavy ties: scores drawn from a tiny discrete set.
	"coarse-ties": func(r *rand.Rand) (float64, float64) {
		s := float64(r.Intn(5)) / 4
		y := 0.0
		if r.Float64() < 0.2+0.5*s {
			y = 1
		}
		return s, y
	},
	// Extreme class imbalance (2% positives), like tail CTR domains.
	"imbalanced": func(r *rand.Rand) (float64, float64) {
		if r.Float64() < 0.02 {
			return clamp01(0.6 + 0.2*r.NormFloat64()), 1
		}
		return clamp01(0.3 + 0.2*r.NormFloat64()), 0
	},
}

func clamp01(v float64) float64 { return math.Min(math.Max(v, 0), 1) }

// TestStreamAUCWithinToleranceOfExact is the satellite property test:
// over replayed streams from several score regimes and several window
// sizes, the windowed streaming AUC must stay within AUCTolerance of
// exact metrics.AUC on the raw scores of the same window, and must
// match metrics.AUC bit-tight on the quantized scores (the streaming
// estimator is exact modulo binning).
func TestStreamAUCWithinToleranceOfExact(t *testing.T) {
	for name, draw := range streamDists {
		for _, window := range []int{64, 512, 2048} {
			r := rand.New(rand.NewSource(int64(window)*7919 + int64(len(name))))
			w := NewWindowEval(window, DefaultBins)
			n := window*3 + 57 // force wrap-around evictions
			scores := make([]float64, 0, n)
			labels := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				s, y := draw(r)
				scores = append(scores, s)
				labels = append(labels, y)
				w.Add(s, y > 0.5)

				if i%97 != 0 && i != n-1 {
					continue
				}
				ws, wl := replayWindow(scores, labels, window)
				exact := metrics.AUC(ws, wl)
				got := w.AUC()
				if diff := math.Abs(got - exact); diff > AUCTolerance {
					t.Fatalf("%s window=%d i=%d: streaming AUC %.6f vs exact %.6f (|diff| %.6f > %.3f)",
						name, window, i, got, exact, diff, AUCTolerance)
				}
				quant := make([]float64, len(ws))
				for k, s := range ws {
					q := Quantize(s)
					quant[k] = float64(binOf(q, DefaultBins)) // bin index as score: same ordering, same ties
				}
				exactQ := metrics.AUC(quant, wl)
				if diff := math.Abs(got - exactQ); diff > 1e-9 {
					t.Fatalf("%s window=%d i=%d: streaming AUC %.9f vs exact-on-binned %.9f — estimator not exact on quantized stream",
						name, window, i, got, exactQ)
				}
			}
		}
	}
}

// TestStreamAUCDegenerate covers the degenerate domains the batch
// convention defines as 0.5: all-ties, single-class, and empty.
func TestStreamAUCDegenerate(t *testing.T) {
	w := NewWindowEval(128, 0)
	if got := w.AUC(); got != 0.5 {
		t.Fatalf("empty window AUC = %v, want 0.5", got)
	}
	for i := 0; i < 50; i++ { // single class: all positives
		w.Add(0.7, true)
	}
	if got := w.AUC(); got != 0.5 {
		t.Fatalf("all-positive window AUC = %v, want 0.5", got)
	}
	w = NewWindowEval(128, 0)
	for i := 0; i < 50; i++ { // single class: all negatives
		w.Add(0.2, false)
	}
	if got := w.AUC(); got != 0.5 {
		t.Fatalf("all-negative window AUC = %v, want 0.5", got)
	}
	w = NewWindowEval(128, 0)
	for i := 0; i < 60; i++ { // all scores tied, both classes present
		w.Add(0.42, i%3 == 0)
	}
	if got := w.AUC(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("all-ties window AUC = %v, want 0.5", got)
	}
	if exact := metrics.AUC([]float64{0.42, 0.42, 0.42}, []float64{1, 0, 0}); math.Abs(exact-0.5) > 1e-12 {
		t.Fatalf("batch all-ties AUC = %v, want 0.5 (conventions diverged)", exact)
	}
}

// TestWindowEvalLogLossAndCalibration checks the windowed logloss and
// calibration against direct computation over the window contents,
// across eviction wrap-around.
func TestWindowEvalLogLossAndCalibration(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const window = 200
	w := NewWindowEval(window, 0)
	var scores, labels []float64
	for i := 0; i < 730; i++ {
		s, y := streamDists["discriminative"](r)
		scores = append(scores, s)
		labels = append(labels, y)
		w.Add(s, y > 0.5)
	}
	ws, wl := replayWindow(scores, labels, window)
	quant := make([]float64, len(ws))
	var predSum, posSum float64
	for i, s := range ws {
		quant[i] = Quantize(s)
		predSum += quant[i]
		posSum += wl[i]
	}
	if got, want := w.LogLoss(), metrics.LogLoss(quant, wl); math.Abs(got-want) > 1e-9 {
		t.Fatalf("windowed logloss %.9f vs direct %.9f", got, want)
	}
	if got, want := w.CalibrationRatio(), predSum/posSum; math.Abs(got-want) > 1e-9 {
		t.Fatalf("calibration ratio %.9f vs direct %.9f", got, want)
	}
	if got, want := w.PosRate(), posSum/float64(len(wl)); math.Abs(got-want) > 1e-12 {
		t.Fatalf("pos rate %.12f vs direct %.12f", got, want)
	}
	ratios, counts := w.BucketCalibration()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != int64(window) {
		t.Fatalf("bucket counts sum to %d, want %d", total, window)
	}
	for b, ratio := range ratios {
		if math.IsNaN(ratio) || math.IsInf(ratio, 0) {
			t.Fatalf("bucket %d ratio is %v", b, ratio)
		}
	}
}

// TestWindowEvalNoNaN streams pathological inputs (out-of-range scores,
// empty-class stretches) and asserts no reading ever goes NaN/Inf —
// gauges travel through the JSON snapshot codec, which rejects NaN.
func TestWindowEvalNoNaN(t *testing.T) {
	w := NewWindowEval(32, 0)
	inputs := []float64{-3, -0.1, 0, 0.5, 1, 1.5, 42, math.SmallestNonzeroFloat64}
	for i, s := range inputs {
		w.Add(s, i%2 == 0)
		for _, v := range []float64{w.AUC(), w.LogLoss(), w.CalibrationRatio(), w.PosRate()} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("after Add(%v): reading %v", s, v)
			}
		}
	}
}

// TestScoreWindowHistogram checks ring eviction keeps counts exact.
func TestScoreWindowHistogram(t *testing.T) {
	s := NewScoreWindow(100, 0)
	for i := 0; i < 1000; i++ {
		s.Add((float64(i%10) + 0.5) / 10) // mid-bucket, away from fold boundaries
	}
	if s.Count() != 100 {
		t.Fatalf("Count = %d, want 100", s.Count())
	}
	h := s.Histogram(10)
	var total int64
	for _, c := range h {
		total += c
		if c != 10 {
			t.Fatalf("histogram %v: want uniform 10 per bucket", h)
		}
	}
	if total != 100 {
		t.Fatalf("histogram total %d, want 100", total)
	}
}

func BenchmarkWindowEvalAdd(b *testing.B) {
	w := NewWindowEval(2048, 0)
	r := rand.New(rand.NewSource(1))
	scores := make([]float64, 4096)
	for i := range scores {
		scores[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Add(scores[i%len(scores)], i%4 == 0)
	}
}

func BenchmarkWindowEvalAUC(b *testing.B) {
	w := NewWindowEval(2048, 0)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2048; i++ {
		w.Add(r.Float64(), i%4 == 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.AUC()
	}
}
