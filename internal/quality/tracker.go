package quality

import (
	"sync"

	"mamdr/internal/telemetry"
)

// Options configures a Tracker. Zero values are replaced by defaults.
type Options struct {
	// Window is the labeled observation window per domain (default
	// 2048) — the horizon of the prequential AUC/logloss/calibration.
	Window int
	// ScoreWindow is the unlabeled score window per domain (default
	// 8192) — the horizon of score-distribution drift.
	ScoreWindow int
	// Bins is the streaming-AUC bin resolution (default DefaultBins).
	Bins int
	// PSIBins is the drift histogram resolution (default
	// DefaultPSIBins).
	PSIBins int
	// Checks enables breach counting — the series the quality SLOs
	// burn against. Leave false for passive emitters (the trainer's
	// offline eval) so they can never fire fleet alerts.
	Checks bool
	// MinLabeled gates label-dependent checks (AUC floor, calibration,
	// label PSI) until a domain has this many labeled observations
	// windowed (default 200): thin evidence must not fire alerts.
	MinLabeled int
	// MinScores gates score-PSI checks until this many scores are
	// windowed (default 500).
	MinScores int
	// CheckEvery re-derives gauges and runs breach checks every this
	// many observations per domain (default 64), amortizing the
	// O(bins) AUC read off the request path.
	CheckEvery int
	// AUCFloor is the fleet windowed-AUC floor (default 0.55); below
	// it mamdr_quality_auc_floor_breaches_total increments.
	AUCFloor float64
	// PSICeiling is the per-domain PSI ceiling (default 0.25, the
	// conventional "major shift" threshold).
	PSICeiling float64
	// CalibLow and CalibHigh bound the acceptable calibration ratio
	// (defaults 0.5 and 2.0).
	CalibLow, CalibHigh float64
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 2048
	}
	if o.ScoreWindow <= 0 {
		o.ScoreWindow = 8192
	}
	if o.Bins <= 0 {
		o.Bins = DefaultBins
	}
	if o.PSIBins <= 0 {
		o.PSIBins = DefaultPSIBins
	}
	if o.MinLabeled <= 0 {
		o.MinLabeled = 200
	}
	if o.MinScores <= 0 {
		o.MinScores = 500
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = 64
	}
	if o.AUCFloor == 0 {
		o.AUCFloor = 0.55
	}
	if o.PSICeiling == 0 {
		o.PSICeiling = 0.25
	}
	if o.CalibLow == 0 {
		o.CalibLow = 0.5
	}
	if o.CalibHigh == 0 {
		o.CalibHigh = 2.0
	}
	return o
}

// Tracker owns the per-domain and fleet-wide streaming evaluators and
// publishes their readings as telemetry series — the one schema both
// the serving path (live traffic) and the trainer (offline eval)
// emit. All methods are safe for concurrent use and nil-receiver-safe.
type Tracker struct {
	opts Options
	reg  *telemetry.Registry

	mu       sync.Mutex
	baseline *Baseline
	domains  map[string]*domainState
	fleet    *domainState

	fleetBreaches *telemetry.Counter
	missingGauge  *telemetry.Gauge
	missingLoads  *telemetry.Counter

	feedbackJoins  *telemetry.Counter
	feedbackMisses *telemetry.Counter
	feedbackEvict  *telemetry.Counter
	lastEvictions  int64
}

// domainState is one domain's evaluators plus its instrument handles.
// Its own mutex keeps hot-path contention per domain; the Tracker mutex
// only guards the domain map and baseline pointer.
type domainState struct {
	mu         sync.Mutex
	name       string
	eval       *WindowEval
	scores     *ScoreWindow
	base       *DomainBaseline
	sinceCheck int

	auc, aucBase, logloss, calib *telemetry.Gauge
	psiScore, psiLabel           *telemetry.Gauge
	labels                       *telemetry.Counter
	psiBreachScore               *telemetry.Counter
	psiBreachLabel               *telemetry.Counter
	calibBreach                  *telemetry.Counter
}

// NewTracker registers the quality metric families in reg (nil gets a
// private registry) and returns a ready tracker with no baseline —
// call SetBaseline once the checkpoint (or a fresh eval pass) provides
// one.
func NewTracker(reg *telemetry.Registry, opts Options) *Tracker {
	if reg == nil {
		reg = telemetry.New()
	}
	t := &Tracker{opts: opts.withDefaults(), reg: reg, domains: map[string]*domainState{}}
	t.fleet = t.newDomainState("")
	t.fleetBreaches = reg.Counter("mamdr_quality_auc_floor_breaches_total",
		"Quality checks where the fleet windowed AUC was below the configured floor.")
	t.missingGauge = reg.Gauge("mamdr_quality_baseline_missing",
		"1 when no quality baseline is loaded (drift detection disabled), else 0.")
	t.missingLoads = reg.Counter("mamdr_quality_baseline_missing_total",
		"Model loads that carried no quality baseline (pre-quality checkpoints).")
	t.feedbackJoins = reg.Counter("mamdr_quality_feedback_joins_total",
		"Feedback requests successfully joined to a pending prediction.")
	t.feedbackMisses = reg.Counter("mamdr_quality_feedback_misses_total",
		"Feedback requests whose request ID was unknown, expired, or already consumed.")
	t.feedbackEvict = reg.Counter("mamdr_quality_feedback_evictions_total",
		"Pending predictions dropped from the feedback join buffer by TTL or capacity.")
	t.missingGauge.Set(1)
	return t
}

// newDomainState registers the per-domain series. The fleet state uses
// the mamdr_quality_fleet_* families (no domain label).
func (t *Tracker) newDomainState(name string) *domainState {
	d := &domainState{
		name:   name,
		eval:   NewWindowEval(t.opts.Window, t.opts.Bins),
		scores: NewScoreWindow(t.opts.ScoreWindow, t.opts.Bins),
	}
	if name == "" {
		d.auc = t.reg.Gauge("mamdr_quality_fleet_auc",
			"Windowed prequential AUC over all domains pooled (0.5 when a class is absent).")
		d.aucBase = t.reg.Gauge("mamdr_quality_fleet_auc_baseline",
			"Offline validation AUC frozen into the loaded checkpoint's quality baseline.")
		d.logloss = t.reg.Gauge("mamdr_quality_fleet_logloss",
			"Windowed mean binary cross entropy over all domains pooled.")
		d.calib = t.reg.Gauge("mamdr_quality_fleet_calibration_ratio",
			"Fleet predicted-CTR / observed-CTR over the labeled window (0 when undefined).")
		return d
	}
	lbl := telemetry.L("domain", name)
	d.auc = t.reg.Gauge("mamdr_quality_auc",
		"Windowed prequential AUC of the domain (0.5 when a class is absent).", lbl)
	d.aucBase = t.reg.Gauge("mamdr_quality_auc_baseline",
		"Offline validation AUC frozen into the loaded checkpoint's quality baseline.", lbl)
	d.logloss = t.reg.Gauge("mamdr_quality_logloss",
		"Windowed mean binary cross entropy of the domain.", lbl)
	d.calib = t.reg.Gauge("mamdr_quality_calibration_ratio",
		"Predicted-CTR / observed-CTR over the domain's labeled window (0 when undefined).", lbl)
	d.psiScore = t.reg.Gauge("mamdr_quality_psi",
		"Population Stability Index of the live distribution vs the checkpoint baseline (<0.1 stable, 0.1-0.25 moderate, >0.25 major shift; 0 without a baseline).",
		lbl, telemetry.L("kind", "score"))
	d.psiLabel = t.reg.Gauge("mamdr_quality_psi", "", lbl, telemetry.L("kind", "label"))
	d.labels = t.reg.Counter("mamdr_quality_labels_total",
		"Labeled observations consumed by the streaming evaluators.", lbl)
	d.psiBreachScore = t.reg.Counter("mamdr_quality_psi_breaches_total",
		"Quality checks where a domain's PSI exceeded the configured ceiling.",
		lbl, telemetry.L("kind", "score"))
	d.psiBreachLabel = t.reg.Counter("mamdr_quality_psi_breaches_total", "",
		lbl, telemetry.L("kind", "label"))
	d.calibBreach = t.reg.Counter("mamdr_quality_calibration_breaches_total",
		"Quality checks where a domain's calibration ratio left the configured band.", lbl)
	return d
}

// SetBaseline installs (or clears, with nil) the drift-detection
// baseline. A nil baseline — a pre-quality checkpoint — flips the
// mamdr_quality_baseline_missing gauge and counts the degraded load;
// PSI gauges then report 0 and drift checks are disabled.
func (t *Tracker) SetBaseline(b *Baseline) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.baseline = b
	if b == nil {
		t.missingGauge.Set(1)
		t.missingLoads.Inc()
	} else {
		t.missingGauge.Set(0)
		t.fleet.mu.Lock()
		t.fleet.base = &b.Fleet
		t.fleet.aucBase.Set(b.Fleet.AUC)
		t.fleet.mu.Unlock()
	}
	for name, d := range t.domains {
		base := b.Domain(name) // nil-safe on nil b
		d.mu.Lock()
		d.base = base
		if base != nil {
			d.aucBase.Set(base.AUC)
		} else {
			d.aucBase.Set(0)
		}
		d.mu.Unlock()
	}
}

// Baseline returns the installed baseline (nil when drift detection is
// disabled).
func (t *Tracker) Baseline() *Baseline {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.baseline
}

// domain returns (creating if needed) the named domain's state.
func (t *Tracker) domain(name string) *domainState {
	t.mu.Lock()
	defer t.mu.Unlock()
	d, ok := t.domains[name]
	if !ok {
		d = t.newDomainState(name)
		d.base = t.baseline.Domain(name)
		if d.base != nil {
			d.aucBase.Set(d.base.AUC)
		}
		t.domains[name] = d
	}
	return d
}

// ObserveScores records a served prediction batch's scores (no labels
// yet) for the domain — the dense drift signal.
func (t *Tracker) ObserveScores(domain string, scores []float64) {
	if t == nil || len(scores) == 0 {
		return
	}
	d := t.domain(domain)
	d.mu.Lock()
	for _, s := range scores {
		d.scores.Add(s)
	}
	d.advanceLocked(t, len(scores))
	d.mu.Unlock()

	f := t.fleet
	f.mu.Lock()
	for _, s := range scores {
		f.scores.Add(s)
	}
	f.advanceLocked(t, len(scores))
	f.mu.Unlock()
}

// ObserveLabeled records labeled (score, label) observations for the
// domain — joined feedback on the serving path, or eval-split
// predictions on the trainer path.
func (t *Tracker) ObserveLabeled(domain string, scores []float64, labels []bool) {
	if t == nil || len(scores) == 0 || len(scores) != len(labels) {
		return
	}
	d := t.domain(domain)
	d.mu.Lock()
	for i, s := range scores {
		d.eval.Add(s, labels[i])
	}
	d.labels.Add(int64(len(scores)))
	d.advanceLocked(t, len(scores))
	d.mu.Unlock()

	f := t.fleet
	f.mu.Lock()
	for i, s := range scores {
		f.eval.Add(s, labels[i])
	}
	f.advanceLocked(t, len(scores))
	f.mu.Unlock()
}

// FeedbackJoined / FeedbackMissed count /feedback join outcomes;
// SyncEvictions folds the join buffer's eviction count into its
// counter (call with the buffer's current total).
func (t *Tracker) FeedbackJoined() {
	if t == nil {
		return
	}
	t.feedbackJoins.Inc()
}

// FeedbackMissed counts a feedback request that found no pending
// prediction.
func (t *Tracker) FeedbackMissed() {
	if t == nil {
		return
	}
	t.feedbackMisses.Inc()
}

// SyncEvictions advances the eviction counter to the buffer's total.
func (t *Tracker) SyncEvictions(total int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delta := total - t.lastEvictions
	if delta > 0 {
		t.lastEvictions = total
	}
	t.mu.Unlock()
	t.feedbackEvict.Add(delta)
}

// Flush re-derives every domain's gauges immediately, regardless of the
// CheckEvery cadence — used by the trainer after its final eval pass so
// the emitted series reflect all observations.
func (t *Tracker) Flush() {
	if t == nil {
		return
	}
	t.mu.Lock()
	states := make([]*domainState, 0, len(t.domains)+1)
	for _, d := range t.domains {
		states = append(states, d)
	}
	states = append(states, t.fleet)
	t.mu.Unlock()
	for _, d := range states {
		d.mu.Lock()
		d.refreshLocked(t)
		d.mu.Unlock()
	}
}

// advanceLocked bumps the observation counter and refreshes gauges and
// breach checks once per CheckEvery observations.
func (d *domainState) advanceLocked(t *Tracker, n int) {
	first := d.sinceCheck == 0 && d.eval.Count()+d.scores.Count() == n
	d.sinceCheck += n
	if first || d.sinceCheck >= t.opts.CheckEvery {
		d.sinceCheck = 0
		d.refreshLocked(t)
	}
}

// refreshLocked re-derives the domain's gauges from its windows and,
// when checks are enabled and the evidence thresholds are met, counts
// breaches. Gauges never hold NaN: undefined readings report 0 (and
// the AUC of a single-class window reports 0.5 by construction).
func (d *domainState) refreshLocked(t *Tracker) {
	opts := t.opts
	labeled := d.eval.Count()
	auc := d.eval.AUC()
	calib := d.eval.CalibrationRatio()
	d.auc.Set(auc)
	d.logloss.Set(d.eval.LogLoss())
	d.calib.Set(calib)

	var psiScore, psiLabel float64
	if d.base != nil {
		// Score PSI prefers the dense unlabeled window; with no served
		// scores yet (trainer path) it falls back to the labeled window.
		hist := d.scores.Histogram(len(d.base.ScoreHist))
		nScores := d.scores.Count()
		if nScores == 0 {
			hist = d.eval.Histogram(len(d.base.ScoreHist))
			nScores = labeled
		}
		psiScore = PSIProportions(d.base.ScoreHist, hist)
		psiLabel = LabelPSI(d.base.PosRate, d.eval.Positives(), int64(labeled))
		if d.psiScore != nil {
			d.psiScore.Set(psiScore)
			d.psiLabel.Set(psiLabel)
		}
		if opts.Checks && nScores >= opts.MinScores && psiScore > opts.PSICeiling {
			d.psiBreachScore.Inc()
		}
		if opts.Checks && labeled >= opts.MinLabeled && psiLabel > opts.PSICeiling {
			d.psiBreachLabel.Inc()
		}
	} else if d.psiScore != nil {
		d.psiScore.Set(0)
		d.psiLabel.Set(0)
	}

	if opts.Checks && labeled >= opts.MinLabeled {
		if d.name == "" && auc < opts.AUCFloor {
			t.fleetBreaches.Inc()
		}
		if d.calibBreach != nil && calib > 0 && (calib < opts.CalibLow || calib > opts.CalibHigh) {
			d.calibBreach.Inc()
		}
	}
}
