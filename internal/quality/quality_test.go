package quality

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"mamdr/internal/telemetry"
)

func TestPSI(t *testing.T) {
	same := []int64{100, 200, 300, 200, 100}
	if psi := PSI(same, same); psi > 1e-9 {
		t.Fatalf("PSI of identical distributions = %v, want ~0", psi)
	}
	shifted := []int64{300, 300, 200, 80, 20}
	if psi := PSI(same, shifted); psi < 0.25 {
		t.Fatalf("PSI of shifted distribution = %v, want > 0.25", psi)
	}
	if psi := PSI(same, []int64{0, 0, 0, 0, 0}); psi != 0 {
		t.Fatalf("PSI vs empty actual = %v, want 0", psi)
	}
	if psi := PSI(same, []int64{1, 2}); psi != 0 {
		t.Fatalf("PSI with mismatched lengths = %v, want 0", psi)
	}
	// Scale invariance: 10x the counts, same proportions.
	scaled := []int64{1000, 2000, 3000, 2000, 1000}
	if psi := PSI(same, scaled); psi > 1e-9 {
		t.Fatalf("PSI of scaled distribution = %v, want ~0", psi)
	}
	// Symmetric in its construction: PSI(a,b) == PSI(b,a).
	if a, b := PSI(same, shifted), PSI(shifted, same); math.Abs(a-b) > 1e-12 {
		t.Fatalf("PSI not symmetric: %v vs %v", a, b)
	}
}

func TestLabelPSI(t *testing.T) {
	if psi := LabelPSI(0.2, 20, 100); psi > 1e-9 {
		t.Fatalf("matched label rate PSI = %v, want ~0", psi)
	}
	if psi := LabelPSI(0.2, 80, 100); psi < 0.25 {
		t.Fatalf("inverted label rate PSI = %v, want > 0.25", psi)
	}
	if psi := LabelPSI(0.2, 0, 0); psi != 0 {
		t.Fatalf("empty stream label PSI = %v, want 0", psi)
	}
}

func TestBaselineBuilder(t *testing.T) {
	bb := NewBaselineBuilder(0)
	bb.Observe("books", []float64{0.9, 0.8, 0.1, 0.2}, []float64{1, 1, 0, 0})
	bb.Observe("music", []float64{0.5, 0.5}, []float64{1, 0})
	b := bb.Build()
	if b.Bins != DefaultPSIBins {
		t.Fatalf("Bins = %d, want %d", b.Bins, DefaultPSIBins)
	}
	books := b.Domain("books")
	if books == nil || books.Count != 4 {
		t.Fatalf("books profile missing or wrong count: %+v", books)
	}
	if books.AUC != 1 {
		t.Fatalf("books AUC = %v, want 1 (perfectly separated)", books.AUC)
	}
	if books.PosRate != 0.5 {
		t.Fatalf("books PosRate = %v, want 0.5", books.PosRate)
	}
	var sum float64
	for _, p := range books.ScoreHist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("books ScoreHist sums to %v, want 1", sum)
	}
	music := b.Domain("music")
	if music == nil || music.AUC != 0.5 {
		t.Fatalf("music (all-tied) AUC = %+v, want 0.5", music)
	}
	if b.Fleet.Count != 6 {
		t.Fatalf("fleet count = %d, want 6", b.Fleet.Count)
	}
	if b.Domain("missing") != nil {
		t.Fatal("unknown domain should return nil")
	}
	var nilB *Baseline
	if nilB.Domain("books") != nil {
		t.Fatal("nil baseline should return nil profile")
	}
}

func TestJoinBuffer(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	j := NewJoinBuffer(3, time.Minute, clock)

	j.Put("a", PendingPrediction{Domain: "d1", Scores: []float32{0.5}})
	if p, ok := j.Take("a"); !ok || p.Domain != "d1" {
		t.Fatalf("Take(a) = %+v, %v", p, ok)
	}
	if _, ok := j.Take("a"); ok {
		t.Fatal("second Take(a) should miss")
	}

	// Capacity eviction: oldest goes first.
	for _, id := range []string{"1", "2", "3", "4"} {
		j.Put(id, PendingPrediction{Domain: id})
	}
	if _, ok := j.Take("1"); ok {
		t.Fatal("oldest entry should have been evicted at capacity")
	}
	if _, ok := j.Take("4"); !ok {
		t.Fatal("newest entry should survive capacity eviction")
	}
	if j.Evictions() == 0 {
		t.Fatal("capacity eviction not counted")
	}

	// TTL expiry (this also expires the still-parked "3").
	j.Put("ttl", PendingPrediction{Domain: "d"})
	now = now.Add(2 * time.Minute)
	if _, ok := j.Take("ttl"); ok {
		t.Fatal("expired entry should miss")
	}

	// Duplicate Put replaces and refreshes.
	j.Put("dup", PendingPrediction{Domain: "old"})
	j.Put("dup", PendingPrediction{Domain: "new"})
	if p, ok := j.Take("dup"); !ok || p.Domain != "new" {
		t.Fatalf("duplicate Put not replaced: %+v %v", p, ok)
	}
	if j.Len() != 0 {
		t.Fatalf("Len = %d, want 0", j.Len())
	}
}

// counterValue digs a series value out of a registry snapshot.
func counterValue(reg *telemetry.Registry, name string, labels ...telemetry.Label) float64 {
	snap := reg.Snapshot()
	for _, f := range snap.Families {
		if f.Name != name {
			continue
		}
		for _, s := range f.Series {
			if labelsMatch(s.Labels, labels) {
				return s.Value
			}
		}
	}
	return math.NaN()
}

func labelsMatch(have, want []telemetry.Label) bool {
	if len(have) != len(want) {
		return false
	}
	for _, w := range want {
		found := false
		for _, h := range have {
			if h == w {
				found = true
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestTrackerBreaches(t *testing.T) {
	reg := telemetry.New()
	tr := NewTracker(reg, Options{
		Window: 512, ScoreWindow: 512, Checks: true,
		MinLabeled: 50, MinScores: 50, CheckEvery: 16,
	})

	// Build a healthy baseline from a separable score stream.
	r := rand.New(rand.NewSource(3))
	bb := NewBaselineBuilder(0)
	var bScores, bLabels []float64
	for i := 0; i < 600; i++ {
		s, y := streamDists["discriminative"](r)
		bScores = append(bScores, s)
		bLabels = append(bLabels, y)
	}
	bb.Observe("d0", bScores, bLabels)
	tr.SetBaseline(bb.Build())

	if v := counterValue(reg, "mamdr_quality_baseline_missing"); v != 0 {
		t.Fatalf("baseline_missing = %v after SetBaseline, want 0", v)
	}

	// Matched traffic: replay the same regime. No breaches expected.
	labels := make([]bool, len(bLabels))
	for i, y := range bLabels {
		labels[i] = y > 0.5
	}
	tr.ObserveScores("d0", bScores)
	tr.ObserveLabeled("d0", bScores, labels)
	tr.Flush()
	if v := counterValue(reg, "mamdr_quality_psi_breaches_total",
		telemetry.L("domain", "d0"), telemetry.L("kind", "score")); v != 0 {
		t.Fatalf("matched traffic fired %v score-PSI breaches", v)
	}
	if v := counterValue(reg, "mamdr_quality_auc_floor_breaches_total"); v != 0 {
		t.Fatalf("matched traffic fired %v AUC-floor breaches", v)
	}
	if v := counterValue(reg, "mamdr_quality_auc", telemetry.L("domain", "d0")); v < 0.6 {
		t.Fatalf("windowed AUC on separable stream = %v, want > 0.6", v)
	}

	// Drifted traffic: pile scores into one corner with inverted labels.
	drifted := make([]float64, 600)
	dLabels := make([]bool, 600)
	for i := range drifted {
		drifted[i] = 0.93 + 0.05*r.Float64()
		dLabels[i] = i%25 == 0
	}
	tr.ObserveScores("d0", drifted)
	tr.ObserveLabeled("d0", drifted, dLabels)
	tr.Flush()
	if v := counterValue(reg, "mamdr_quality_psi_breaches_total",
		telemetry.L("domain", "d0"), telemetry.L("kind", "score")); v == 0 {
		t.Fatal("drifted traffic fired no score-PSI breaches")
	}
	if v := counterValue(reg, "mamdr_quality_psi",
		telemetry.L("domain", "d0"), telemetry.L("kind", "score")); v <= 0.25 {
		t.Fatalf("score PSI after drift = %v, want > 0.25", v)
	}
	if v := counterValue(reg, "mamdr_quality_auc_floor_breaches_total"); v == 0 {
		t.Fatal("inverted-label traffic fired no AUC-floor breaches")
	}

	// The snapshot must survive its JSON codec (no NaN gauges).
	if err := reg.Snapshot().Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
}

func TestTrackerChecksOffNeverBreaches(t *testing.T) {
	reg := telemetry.New()
	tr := NewTracker(reg, Options{Checks: false, MinLabeled: 1, MinScores: 1, CheckEvery: 1})
	bb := NewBaselineBuilder(0)
	bb.Observe("d0", []float64{0.1, 0.2, 0.8, 0.9}, []float64{0, 0, 1, 1})
	tr.SetBaseline(bb.Build())
	scores := make([]float64, 400)
	labels := make([]bool, 400)
	for i := range scores {
		scores[i] = 0.99
	}
	tr.ObserveScores("d0", scores)
	tr.ObserveLabeled("d0", scores, labels)
	tr.Flush()
	for _, name := range []string{
		"mamdr_quality_psi_breaches_total",
		"mamdr_quality_auc_floor_breaches_total",
		"mamdr_quality_calibration_breaches_total",
	} {
		snap := reg.Snapshot()
		for _, f := range snap.Families {
			if f.Name != name {
				continue
			}
			for _, s := range f.Series {
				if s.Value != 0 {
					t.Fatalf("%s{%v} = %v with Checks off", name, s.Labels, s.Value)
				}
			}
		}
	}
	// Gauges still emit — the trainer path shares the schema.
	if v := counterValue(reg, "mamdr_quality_psi",
		telemetry.L("domain", "d0"), telemetry.L("kind", "score")); v <= 0.25 {
		t.Fatalf("passive tracker PSI = %v, want > 0.25 (gauges must still emit)", v)
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.ObserveScores("d", []float64{0.5})
	tr.ObserveLabeled("d", []float64{0.5}, []bool{true})
	tr.SetBaseline(nil)
	tr.Flush()
	tr.FeedbackJoined()
	tr.FeedbackMissed()
	tr.SyncEvictions(3)
	if tr.Baseline() != nil {
		t.Fatal("nil tracker Baseline() should be nil")
	}
}

func TestTrackerMissingBaselineCounted(t *testing.T) {
	reg := telemetry.New()
	tr := NewTracker(reg, Options{})
	if v := counterValue(reg, "mamdr_quality_baseline_missing"); v != 1 {
		t.Fatalf("baseline_missing at start = %v, want 1", v)
	}
	tr.SetBaseline(nil)
	if v := counterValue(reg, "mamdr_quality_baseline_missing_total"); v != 1 {
		t.Fatalf("baseline_missing_total = %v, want 1", v)
	}
	// PSI gauges exist but stay 0 without a baseline.
	tr.ObserveScores("d0", []float64{0.1, 0.9, 0.5})
	tr.Flush()
	if v := counterValue(reg, "mamdr_quality_psi",
		telemetry.L("domain", "d0"), telemetry.L("kind", "score")); v != 0 {
		t.Fatalf("PSI without baseline = %v, want 0", v)
	}
}
