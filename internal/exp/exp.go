// Package exp is the experiment harness that regenerates every table
// and figure of the MAMDR paper's evaluation section (Tables I-X,
// Figures 8-9) on the synthetic benchmark equivalents, plus the
// design-choice ablations called out in DESIGN.md. It is shared by
// cmd/experiments and the repository's top-level benchmarks.
package exp

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	_ "mamdr/internal/core" // register dn/dr/mamdr frameworks
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/metrics"
	"mamdr/internal/models"
	"mamdr/internal/synth"
)

// Scale sizes the experiments. The paper's datasets hold millions of
// interactions; Quick and Full reproduce the same distribution shapes
// at laptop scale.
type Scale struct {
	// TotalSamples is the per-dataset interaction budget.
	TotalSamples int
	// IndustrySamples and IndustryDomains size the Taobao-online
	// equivalent.
	IndustrySamples int
	IndustryDomains int
	// Epochs is the per-method training budget.
	Epochs int
	// BatchSize for all trainers.
	BatchSize int
	// Seed fixes dataset generation and training randomness.
	Seed int64
}

// Quick is the scale used by tests and benchmarks (seconds per cell).
var Quick = Scale{
	TotalSamples:    10000,
	IndustrySamples: 8000,
	IndustryDomains: 20,
	Epochs:          15,
	BatchSize:       64,
	Seed:            17,
}

// Full is the scale used by cmd/experiments for the recorded results
// (minutes per table).
var Full = Scale{
	TotalSamples:    24000,
	IndustrySamples: 24000,
	IndustryDomains: 40,
	Epochs:          25,
	BatchSize:       64,
	Seed:            17,
}

// Tiny exercises the harness plumbing in unit tests; orderings are not
// meaningful at this scale.
var Tiny = Scale{
	TotalSamples:    1500,
	IndustrySamples: 1500,
	IndustryDomains: 6,
	Epochs:          2,
	BatchSize:       64,
	Seed:            17,
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		b.WriteString("\n> " + n + "\n")
	}
	return b.String()
}

// f4 formats an AUC to the paper's 4 decimal places.
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// f1 formats a rank to 1 decimal place as in Table V.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// benchmarkDatasets builds the five public benchmark equivalents.
func benchmarkDatasets(s Scale) []*data.Dataset {
	return []*data.Dataset{
		synth.Generate(synth.Amazon6(s.TotalSamples, s.Seed)),
		synth.Generate(synth.Amazon13(s.TotalSamples, s.Seed)),
		synth.Generate(synth.Taobao10(s.TotalSamples, s.Seed)),
		synth.Generate(synth.Taobao20(s.TotalSamples, s.Seed)),
		synth.Generate(synth.Taobao30(s.TotalSamples, s.Seed)),
	}
}

// modelConfig is the shared benchmark model configuration (the paper's
// widths scaled to the synthetic dataset sizes).
func modelConfig(ds *data.Dataset, seed int64) models.Config {
	return models.Config{Dataset: ds, EmbDim: 8, Hidden: []int{32, 16}, Seed: seed}
}

// trainCfg is the shared framework configuration.
func trainCfg(s Scale) framework.Config {
	return framework.Config{
		Epochs:    s.Epochs,
		BatchSize: s.BatchSize,
		Seed:      s.Seed,
	}.WithDefaults()
}

// cell identifies one (method, dataset) training job.
type cell struct {
	method  string // display name
	dataset string
	fit     func() []float64 // returns per-domain test AUC
}

// runCells executes jobs concurrently, bounded by GOMAXPROCS.
func runCells(cells []cell) map[string]map[string][]float64 {
	results := make(map[string]map[string][]float64)
	var mu sync.Mutex
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, c := range cells {
		wg.Add(1)
		go func(c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			aucs := c.fit()
			mu.Lock()
			if results[c.dataset] == nil {
				results[c.dataset] = map[string][]float64{}
			}
			results[c.dataset][c.method] = aucs
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	return results
}

// fitAndEval trains one framework+model pair and returns per-domain
// test AUC.
func fitAndEval(fwKey, modelKey string, ds *data.Dataset, s Scale, cfg framework.Config) []float64 {
	m := models.MustNew(modelKey, modelConfig(ds, s.Seed))
	pred := framework.MustNew(fwKey).Fit(m, ds, cfg)
	return framework.EvaluateAUC(pred, ds, data.Test)
}

// sortedKeys returns map keys in sorted order (stable table rows).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// meanAUCOf averages per-domain AUCs.
func meanAUCOf(aucs []float64) float64 { return metrics.Mean(aucs) }
