package exp

import (
	"fmt"
	"sort"
)

// Runner produces one or more tables at a given scale.
type Runner func(Scale) []*Table

// one lifts a single-table experiment into a Runner.
func one(f func(Scale) *Table) Runner {
	return func(s Scale) []*Table { return []*Table{f(s)} }
}

// Registry maps experiment ids (as used by `cmd/experiments -run`) to
// their runners.
var Registry = map[string]Runner{
	"table1":           one(TableI),
	"table2-4":         TableII_IV,
	"table5":           one(TableV),
	"table6":           one(TableVI),
	"table7":           one(TableVII),
	"table8":           one(TableVIII),
	"table9":           one(TableIX),
	"table10":          one(TableX),
	"figure8":          one(Figure8),
	"figure9":          one(Figure9),
	"ablation-dnorder": one(AblationDNOrder),
	"ablation-drorder": one(AblationDROrder),
	"ablation-cache":   one(AblationCache),
	"conflict-scaling": one(ConflictScaling),
	"conflict-cosine":  one(GradientConflictDiagnostic),
	"generalization":   one(GeneralizationLODO),
	"quant":            one(QuantTradeoff),
}

// Order lists experiment ids in presentation order.
var Order = []string{
	"table1", "table2-4", "table5", "table6", "table7",
	"table8", "table9", "table10", "figure8", "figure9",
	"ablation-dnorder", "ablation-drorder", "ablation-cache",
	"conflict-scaling", "conflict-cosine", "generalization", "quant",
}

// Run executes the named experiment.
func Run(id string, s Scale) ([]*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", id, Names())
	}
	return r(s), nil
}

// Names lists experiment ids sorted alphabetically.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
