package exp

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// All plumbing tests run at Tiny scale: they verify table structure,
// registry wiring and determinism, not result orderings (those are
// asserted in the core/framework tests and recorded in EXPERIMENTS.md).

func TestTableIStructure(t *testing.T) {
	tab := TableI(Tiny)
	if len(tab.Rows) != 6 {
		t.Fatalf("Table I rows = %d, want 6 datasets", len(tab.Rows))
	}
	if len(tab.Header) != 8 {
		t.Fatalf("Table I header = %v", tab.Header)
	}
	for _, r := range tab.Rows {
		if len(r) != len(tab.Header) {
			t.Fatalf("row %v does not match header", r)
		}
	}
}

func TestTableII_IVStructure(t *testing.T) {
	tabs := TableII_IV(Tiny)
	if len(tabs) != 3 {
		t.Fatalf("got %d tables, want 3", len(tabs))
	}
	wantRows := []int{6, 13, 30}
	for i, tab := range tabs {
		if len(tab.Rows) != wantRows[i] {
			t.Fatalf("%s rows = %d, want %d", tab.ID, len(tab.Rows), wantRows[i])
		}
	}
}

func TestTableVStructure(t *testing.T) {
	tab := TableV(Tiny)
	if len(tab.Rows) != len(tableVMethods) {
		t.Fatalf("rows = %d, want %d methods", len(tab.Rows), len(tableVMethods))
	}
	// Header: Method + 2 columns per dataset.
	if len(tab.Header) != 1+2*5 {
		t.Fatalf("header = %v", tab.Header)
	}
	for _, r := range tab.Rows {
		for _, cell := range r[1:] {
			if cell == "" || cell == "NaN" {
				t.Fatalf("empty/NaN cell in %v", r)
			}
		}
	}
}

func TestTableVIAndVIIStructure(t *testing.T) {
	vi := TableVI(Tiny)
	if len(vi.Rows) != 4 || len(vi.Header) != 6 {
		t.Fatalf("Table VI shape: %d rows, header %v", len(vi.Rows), vi.Header)
	}
	vii := TableVII(Tiny)
	if len(vii.Rows) != 4 || len(vii.Header) != 7 {
		t.Fatalf("Table VII shape: %d rows, header %v", len(vii.Rows), vii.Header)
	}
}

func TestTableVIIIAndIXStructure(t *testing.T) {
	viii := TableVIII(Tiny)
	if len(viii.Rows) != len(tableVIIIMethods) {
		t.Fatalf("Table VIII rows = %d", len(viii.Rows))
	}
	ix := TableIX(Tiny)
	if len(ix.Rows) != len(tableVIIIMethods) {
		t.Fatalf("Table IX rows = %d", len(ix.Rows))
	}
	if len(ix.Header) != 1+6 { // Tiny has 6 industry domains
		t.Fatalf("Table IX header = %v", ix.Header)
	}
}

func TestTableXStructure(t *testing.T) {
	tab := TableX(Tiny)
	if len(tab.Rows) != len(tableXModels) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Header) != 1+len(tableXFrameworks) {
		t.Fatalf("header = %v", tab.Header)
	}
}

func TestFiguresStructure(t *testing.T) {
	f8 := Figure8(Tiny)
	if len(f8.Rows) != 5 {
		t.Fatalf("Figure 8 rows = %d, want 5 k values", len(f8.Rows))
	}
	f9 := Figure9(Tiny)
	if len(f9.Rows) != 3 || len(f9.Header) != 5 {
		t.Fatalf("Figure 9 shape: %d rows, header %v", len(f9.Rows), f9.Header)
	}
}

func TestAblationsRun(t *testing.T) {
	for _, f := range []func(Scale) *Table{AblationDNOrder, AblationDROrder, AblationCache, GradientConflictDiagnostic} {
		tab := f(Tiny)
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", tab.ID)
		}
	}
}

func TestConflictScalingStructure(t *testing.T) {
	tab := ConflictScaling(Tiny)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestMarkdownRendering(t *testing.T) {
	tab := &Table{
		ID: "T", Title: "demo",
		Header: []string{"A", "B"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"note"},
	}
	md := tab.Markdown()
	for _, want := range []string{"### T — demo", "| A | B |", "| --- | --- |", "| 1 | 2 |", "> note"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if len(Order) != len(Registry) {
		t.Fatalf("Order lists %d ids, registry has %d", len(Order), len(Registry))
	}
	for _, id := range Order {
		if _, ok := Registry[id]; !ok {
			t.Fatalf("Order references unknown id %q", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("tablezzz", Tiny); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunKnown(t *testing.T) {
	tabs, err := Run("table1", Tiny)
	if err != nil || len(tabs) != 1 {
		t.Fatalf("Run(table1) = %v, %v", tabs, err)
	}
}

func TestDeterministicTables(t *testing.T) {
	a := TableVI(Tiny).Markdown()
	b := TableVI(Tiny).Markdown()
	if a != b {
		t.Fatal("Table VI not deterministic across runs")
	}
}

func TestQuantTradeoffStructure(t *testing.T) {
	tab := QuantTradeoff(Tiny)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want amazon-6 + zipf variant", len(tab.Rows))
	}
	if len(tab.Header) != 7 {
		t.Fatalf("header = %v", tab.Header)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %v misaligned with header %v", row, tab.Header)
		}
	}
	// The compression column is exact arithmetic: (8·cols)/(cols+4).
	if got := tab.Rows[0][6]; got != "5.3x" {
		t.Fatalf("compression = %q, want 5.3x for cols=8", got)
	}
}

// TestQuantAUCBudget is the smoke-batch acceptance gate: at Quick
// scale the amazon-6 int8 serving snapshot must cost at most 0.002
// AUC versus exact float64 composition. Gated behind MAMDR_SMOKE_BATCH
// because Quick-scale training is too slow for the tier-1 suite; run
// via `make smoke-batch`.
func TestQuantAUCBudget(t *testing.T) {
	if os.Getenv("MAMDR_SMOKE_BATCH") == "" {
		t.Skip("set MAMDR_SMOKE_BATCH=1 (make smoke-batch) to run the Quick-scale quant AUC gate")
	}
	tab := QuantTradeoff(Quick)
	for _, row := range tab.Rows {
		delta, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("ΔAUC cell %q: %v", row[3], err)
		}
		t.Logf("%s: AUC fp64=%s int8=%s Δ=%+.4f", row[0], row[1], row[2], delta)
		if strings.EqualFold(row[0], "amazon-6") && delta < -0.002 {
			t.Fatalf("amazon-6 int8 AUC delta %+.4f exceeds the -0.002 budget", delta)
		}
	}
}
