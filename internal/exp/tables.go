package exp

import (
	"fmt"
	"sort"

	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/metrics"
	"mamdr/internal/models"
	"mamdr/internal/synth"
)

// TableI reproduces the overall dataset statistics table.
func TableI(s Scale) *Table {
	t := &Table{
		ID:     "Table I",
		Title:  "Overall statistics of the generated benchmark datasets",
		Header: []string{"Dataset", "#Domain", "#User", "#Item", "#Train", "#Val", "#Test", "Sample/Domain"},
		Notes: []string{fmt.Sprintf("Synthetic equivalents at scale %d samples per benchmark "+
			"(the paper's Table I reports the original Amazon/Taobao datasets).", s.TotalSamples)},
	}
	dss := benchmarkDatasets(s)
	dss = append(dss, synth.Generate(synth.TaobaoOnline(s.IndustryDomains, s.IndustrySamples, s.Seed)))
	for _, ds := range dss {
		o := ds.Overall()
		t.Rows = append(t.Rows, []string{
			o.Name,
			fmt.Sprintf("%d", o.NumDomains),
			fmt.Sprintf("%d", o.NumUsers),
			fmt.Sprintf("%d", o.NumItems),
			fmt.Sprintf("%d", o.TrainSamples),
			fmt.Sprintf("%d", o.ValSamples),
			fmt.Sprintf("%d", o.TestSamples),
			fmt.Sprintf("%d", o.SamplesPerDomain),
		})
	}
	return t
}

// TableII_IV reproduces the per-domain statistics tables (II: Amazon-6,
// III: Amazon-13, IV: Taobao-30).
func TableII_IV(s Scale) []*Table {
	var out []*Table
	for _, spec := range []struct {
		id  string
		cfg synth.Config
	}{
		{"Table II", synth.Amazon6(s.TotalSamples, s.Seed)},
		{"Table III", synth.Amazon13(s.TotalSamples, s.Seed)},
		{"Table IV", synth.Taobao30(s.TotalSamples, s.Seed)},
	} {
		ds := synth.Generate(spec.cfg)
		t := &Table{
			ID:     spec.id,
			Title:  fmt.Sprintf("Per-domain statistics of %s", ds.Name),
			Header: []string{"Domain", "#Samples", "Percentage", "CTR Ratio"},
		}
		for _, st := range ds.Stats() {
			t.Rows = append(t.Rows, []string{
				st.Name,
				fmt.Sprintf("%d", st.Samples),
				fmt.Sprintf("%.2f%%", st.Percentage),
				fmt.Sprintf("%.2f", st.CTRRatio),
			})
		}
		out = append(out, t)
	}
	return out
}

// tableVMethods lists Table V's rows: baselines alternately trained,
// plus MLP optimized by MAMDR.
var tableVMethods = []struct {
	display  string
	modelKey string
	fwKey    string
}{
	{"MLP", "mlp", "alternate"},
	{"WDL", "wdl", "alternate"},
	{"NeurFM", "neurfm", "alternate"},
	{"AutoInt", "autoint", "alternate"},
	{"DeepFM", "deepfm", "alternate"},
	{"Shared-bottom", "sharedbottom", "alternate"},
	{"MMOE", "mmoe", "alternate"},
	{"PLE", "ple", "alternate"},
	{"Star", "star", "alternate"},
	{"MLP+MAMDR", "mlp", "mamdr"},
}

// TableV reproduces the headline comparison: each baseline model
// alternately trained versus MLP+MAMDR, reporting average AUC and
// average RANK per dataset.
func TableV(s Scale) *Table {
	dss := benchmarkDatasets(s)
	// The paper sets DR's sample number k to [3,5,5,5,5] for the five
	// benchmarks respectively.
	sampleK := []int{3, 5, 5, 5, 5}

	var cells []cell
	for di, ds := range dss {
		ds := ds
		cfg := trainCfg(s)
		cfg.SampleK = sampleK[di]
		for _, m := range tableVMethods {
			m := m
			cells = append(cells, cell{
				method:  m.display,
				dataset: ds.Name,
				fit:     func() []float64 { return fitAndEval(m.fwKey, m.modelKey, ds, s, cfg) },
			})
		}
	}
	results := runCells(cells)

	t := &Table{
		ID:    "Table V",
		Title: "Comparison with multi-domain recommendation methods (avg AUC / avg RANK)",
		Notes: []string{"All baselines are trained alternately across domains as in the paper; " +
			"RANK is the average per-domain rank among the methods (lower is better)."},
	}
	t.Header = []string{"Method"}
	for _, ds := range dss {
		t.Header = append(t.Header, ds.Name+" AUC", ds.Name+" RANK")
	}
	for _, m := range tableVMethods {
		row := []string{m.display}
		for _, ds := range dss {
			perDomain := results[ds.Name]
			ranks := metrics.RankAmong(perDomain)
			row = append(row, f4(meanAUCOf(perDomain[m.display])), f1(ranks[m.display]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ablationVariants lists Table VI/VII's rows.
var ablationVariants = []struct {
	display string
	fwKey   string
}{
	{"MLP+MAMDR (DN+DR)", "mamdr"},
	{"w/o DN", "dr"},
	{"w/o DR", "dn"},
	{"w/o DN+DR", "alternate"},
}

// TableVI reproduces the DN/DR ablation across the five benchmarks.
func TableVI(s Scale) *Table {
	dss := benchmarkDatasets(s)
	cfg := trainCfg(s)

	var cells []cell
	for _, ds := range dss {
		ds := ds
		for _, v := range ablationVariants {
			v := v
			cells = append(cells, cell{
				method:  v.display,
				dataset: ds.Name,
				fit:     func() []float64 { return fitAndEval(v.fwKey, "mlp", ds, s, cfg) },
			})
		}
	}
	results := runCells(cells)

	t := &Table{
		ID:     "Table VI",
		Title:  "Ablation study of DN and DR (avg AUC)",
		Header: []string{"Method"},
	}
	for _, ds := range dss {
		t.Header = append(t.Header, ds.Name)
	}
	for _, v := range ablationVariants {
		row := []string{v.display}
		for _, ds := range dss {
			row = append(row, f4(meanAUCOf(results[ds.Name][v.display])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// TableVII reproduces the per-domain ablation on Amazon-6.
func TableVII(s Scale) *Table {
	ds := synth.Generate(synth.Amazon6(s.TotalSamples, s.Seed))
	cfg := trainCfg(s)

	var cells []cell
	for _, v := range ablationVariants {
		v := v
		cells = append(cells, cell{
			method:  v.display,
			dataset: ds.Name,
			fit:     func() []float64 { return fitAndEval(v.fwKey, "mlp", ds, s, cfg) },
		})
	}
	results := runCells(cells)

	t := &Table{
		ID:     "Table VII",
		Title:  "Per-domain results of the ablation on Amazon-6 (AUC)",
		Header: []string{"Method"},
	}
	for _, dom := range ds.Domains {
		t.Header = append(t.Header, dom.Name)
	}
	for _, v := range ablationVariants {
		row := []string{v.display}
		for d := range ds.Domains {
			row = append(row, f4(results[ds.Name][v.display][d]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// tableVIIIMethods lists the industry experiment's rows.
var tableVIIIMethods = []struct {
	display  string
	modelKey string
	fwKey    string
}{
	{"RAW", "raw", "alternate"},
	{"MMOE", "mmoe", "alternate"},
	{"CGC", "cgc", "alternate"},
	{"PLE", "ple", "alternate"},
	{"RAW+Separate", "raw", "separate"},
	{"RAW+DN", "raw", "dn"},
	{"RAW+MAMDR", "raw", "mamdr"},
}

// industryResults trains the Table VIII methods once; Table IX reuses
// the same per-domain results.
func industryResults(s Scale) (*data.Dataset, map[string][]float64) {
	ds := synth.Generate(synth.TaobaoOnline(s.IndustryDomains, s.IndustrySamples, s.Seed))
	// The paper's production configuration pairs an SGD inner loop
	// (lr 0.1) with an Adagrad outer loop; at this substitute's much
	// smaller scale that pair underfits every method equally, so the
	// industry experiment keeps the benchmark configuration (Adam inner
	// loop) — the distributed ps package still exercises the SGD+Adagrad
	// pair. EXPERIMENTS.md documents the deviation.
	cfg := trainCfg(s)

	var cells []cell
	for _, m := range tableVIIIMethods {
		m := m
		cells = append(cells, cell{
			method:  m.display,
			dataset: ds.Name,
			fit:     func() []float64 { return fitAndEval(m.fwKey, m.modelKey, ds, s, cfg) },
		})
	}
	return ds, runCells(cells)[ds.Name]
}

// TableVIII reproduces the industry-scale average-AUC comparison.
func TableVIII(s Scale) *Table {
	_, results := industryResults(s)
	t := &Table{
		ID:     "Table VIII",
		Title:  "Results on the industry-scale dataset (avg AUC)",
		Header: []string{"Method", "AUC"},
		Notes: []string{fmt.Sprintf("Taobao-online equivalent: %d Zipf-sized domains, %d samples.",
			s.IndustryDomains, s.IndustrySamples)},
	}
	for _, m := range tableVIIIMethods {
		t.Rows = append(t.Rows, []string{m.display, f4(meanAUCOf(results[m.display]))})
	}
	return t
}

// TableIX reproduces the top-10 largest industry domains comparison.
func TableIX(s Scale) *Table {
	ds, results := industryResults(s)

	type sized struct{ id, samples int }
	var order []sized
	for _, dom := range ds.Domains {
		order = append(order, sized{dom.ID, dom.Samples()})
	}
	sort.Slice(order, func(a, b int) bool { return order[a].samples > order[b].samples })
	top := order
	if len(top) > 10 {
		top = top[:10]
	}

	t := &Table{
		ID:     "Table IX",
		Title:  "Results on the top-10 largest domains of the industry dataset (AUC)",
		Header: []string{"Method"},
	}
	for i := range top {
		t.Header = append(t.Header, fmt.Sprintf("Top %d", i+1))
	}
	for _, m := range tableVIIIMethods {
		row := []string{m.display}
		for _, d := range top {
			row = append(row, f4(results[m.display][d.id]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// tableXFrameworks lists Table X's columns.
var tableXFrameworks = []struct {
	display string
	key     string
}{
	{"Alternate", "alternate"},
	{"Alternate+Finetune", "finetune"},
	{"Weighted Loss", "weighted"},
	{"PCGrad", "pcgrad"},
	{"MAML", "maml"},
	{"Reptile", "reptile"},
	{"MLDG", "mldg"},
	{"DN", "dn"},
	{"DR", "dr"},
	{"MAMDR (DN+DR)", "mamdr"},
}

// tableXModels lists Table X's rows.
var tableXModels = []struct {
	display string
	key     string
}{
	{"MLP", "mlp"},
	{"WDL", "wdl"},
	{"NeurFM", "neurfm"},
	{"DeepFM", "deepfm"},
	{"Shared-bottom", "sharedbottom"},
	{"Star", "star"},
}

// TableX reproduces the learning-framework comparison on Taobao-10:
// every framework crossed with every model structure.
func TableX(s Scale) *Table {
	ds := synth.Generate(synth.Taobao10(s.TotalSamples, s.Seed))
	cfg := trainCfg(s)

	var cells []cell
	for _, m := range tableXModels {
		m := m
		for _, fw := range tableXFrameworks {
			fw := fw
			cells = append(cells, cell{
				method:  m.display + "/" + fw.display,
				dataset: ds.Name,
				fit:     func() []float64 { return fitAndEval(fw.key, m.key, ds, s, cfg) },
			})
		}
	}
	results := runCells(cells)[ds.Name]

	t := &Table{
		ID:     "Table X",
		Title:  "Comparison with other learning frameworks on Taobao-10 (avg AUC)",
		Header: []string{"Model"},
	}
	for _, fw := range tableXFrameworks {
		t.Header = append(t.Header, fw.display)
	}
	for _, m := range tableXModels {
		row := []string{m.display}
		for _, fw := range tableXFrameworks {
			row = append(row, f4(meanAUCOf(results[m.display+"/"+fw.display])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Figure8 reproduces the DR sample-number sweep (k ∈ {1,3,5,7,9}) on
// Taobao-30; the paper finds a peak at k=5. Single runs are noisy at
// this scale, so each point averages three seeds.
func Figure8(s Scale) *Table {
	ds := synth.Generate(synth.Taobao30(s.TotalSamples, s.Seed))
	ks := []int{1, 3, 5, 7, 9}
	seeds := []int64{s.Seed, s.Seed + 1, s.Seed + 2}

	var cells []cell
	for _, k := range ks {
		for _, seed := range seeds {
			k, seed := k, seed
			cfg := trainCfg(s)
			cfg.SampleK = k
			cfg.Seed = seed
			cells = append(cells, cell{
				method:  fmt.Sprintf("k=%d seed=%d", k, seed),
				dataset: ds.Name,
				fit:     func() []float64 { return fitAndEval("mamdr", "mlp", ds, s, cfg) },
			})
		}
	}
	results := runCells(cells)[ds.Name]

	t := &Table{
		ID:     "Figure 8",
		Title:  "MLP+MAMDR avg AUC vs DR sample number k (Taobao-30, mean of 3 seeds)",
		Header: []string{"k", "AUC"},
	}
	for _, k := range ks {
		var sum float64
		for _, seed := range seeds {
			sum += meanAUCOf(results[fmt.Sprintf("k=%d seed=%d", k, seed)])
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", k), f4(sum / float64(len(seeds)))})
	}
	return t
}

// Figure9 reproduces the inner/outer learning-rate sweep for DN on
// Taobao-10: α ∈ {1e-1, 1e-2, 1e-3} × β ∈ {1, 0.5, 0.1, 0.05}. The
// paper's findings: α must be small for the Taylor expansion to hold,
// and β=1 degrades DN to alternate training.
func Figure9(s Scale) *Table {
	ds := synth.Generate(synth.Taobao10(s.TotalSamples, s.Seed))
	alphas := []float64{1e-1, 1e-2, 1e-3}
	betas := []float64{1, 0.5, 0.1, 0.05}
	// The β=1 degradation to alternate training only shows once training
	// has converged, so this sweep runs a triple epoch budget.
	epochs := 3 * s.Epochs

	seeds := []int64{s.Seed, s.Seed + 1, s.Seed + 2}
	var cells []cell
	for _, a := range alphas {
		for _, b := range betas {
			for _, seed := range seeds {
				a, b, seed := a, b, seed
				cfg := trainCfg(s)
				cfg.Epochs = epochs
				cfg.LR, cfg.OuterLR = a, b
				cfg.Seed = seed
				// Adam inner loop as in the paper's benchmark configuration
				// (its α=1e-3 sweet spot is an Adam-scale rate); plain SGD
				// outside so β is exactly Eq. 3's coefficient.
				cfg.InnerOpt, cfg.OuterOpt = "adam", "sgd"
				cells = append(cells, cell{
					method:  fmt.Sprintf("a=%g b=%g s=%d", a, b, seed),
					dataset: ds.Name,
					fit:     func() []float64 { return fitAndEval("dn", "mlp", ds, s, cfg) },
				})
			}
		}
	}
	results := runCells(cells)[ds.Name]

	t := &Table{
		ID:     "Figure 9",
		Title:  "DN avg AUC under different inner (α) and outer (β) learning rates (Taobao-10, mean of 3 seeds)",
		Header: []string{"α \\ β"},
	}
	for _, b := range betas {
		t.Header = append(t.Header, fmt.Sprintf("β=%g", b))
	}
	for _, a := range alphas {
		row := []string{fmt.Sprintf("α=%g", a)}
		for _, b := range betas {
			var sum float64
			for _, seed := range seeds {
				sum += meanAUCOf(results[fmt.Sprintf("a=%g b=%g s=%d", a, b, seed)])
			}
			row = append(row, f4(sum/float64(len(seeds))))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// evalPredictor is a tiny helper for ad-hoc experiments.
func evalPredictor(p framework.Predictor, ds *data.Dataset) []float64 {
	return framework.EvaluateAUC(p, ds, data.Test)
}

var _ = evalPredictor // referenced by ablation experiments
var _ = models.Names  // keep import
