package exp

import (
	"fmt"
	"math/rand"
	"time"

	"mamdr/internal/core"
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/optim"
	"mamdr/internal/paramvec"
	"mamdr/internal/ps"
	"mamdr/internal/synth"
)

// The experiments below go beyond the paper's tables: they benchmark the
// design choices DESIGN.md calls out (DN's shuffled order, DR's fixed
// order and target step, the embedding cache, and DN's O(n) vs PCGrad's
// O(n²) conflict handling).

// AblationDNOrder compares DN with the per-epoch domain shuffle
// (Algorithm 1 line 3) against a fixed visiting order.
func AblationDNOrder(s Scale) *Table {
	ds := synth.Generate(synth.Taobao10(s.TotalSamples, s.Seed))
	cfg := trainCfg(s)

	run := func(fixed bool, seed int64) float64 {
		m := models.MustNew("mlp", modelConfig(ds, seed))
		params := m.Parameters()
		st := &core.State{Model: m, Shared: paramvec.Snapshot(params)}
		for range ds.Domains {
			st.AddDomain()
		}
		rng := rand.New(rand.NewSource(seed))
		outer := optim.New(cfg.OuterOpt, cfg.OuterLR)
		for e := 0; e < cfg.Epochs; e++ {
			core.DomainNegotiationEpochOpt(st, ds, cfg, outer, rng, fixed)
		}
		paramvec.Restore(params, st.Shared)
		return meanAUCOf(framework.EvaluateAUC(st, ds, data.Test))
	}
	avg := func(fixed bool) float64 {
		var sum float64
		for _, seed := range []int64{s.Seed, s.Seed + 1, s.Seed + 2, s.Seed + 3, s.Seed + 4} {
			sum += run(fixed, seed)
		}
		return sum / 5
	}

	t := &Table{
		ID:     "Ablation DN-Order",
		Title:  "DN with shuffled vs fixed domain order (Taobao-10, avg AUC, mean of 5 seeds)",
		Header: []string{"Variant", "AUC"},
		Notes:  []string{"The Section IV-C symmetrization (Eq. 19-21) requires the shuffle."},
	}
	t.Rows = append(t.Rows, []string{"shuffled (paper)", f4(avg(false))})
	t.Rows = append(t.Rows, []string{"fixed order", f4(avg(true))})
	return t
}

// AblationDROrder compares Algorithm 2 against two broken variants:
// skipping the target regularization step (Eq. 7) and reversing the
// helper/target order.
func AblationDROrder(s Scale) *Table {
	ds := synth.Generate(synth.Taobao10(s.TotalSamples, s.Seed))
	cfg := trainCfg(s)

	run := func(opts core.DROptions, seed int64) float64 {
		m := models.MustNew("mlp", modelConfig(ds, seed))
		params := m.Parameters()
		// Shared parameters from alternate training, as in the DR-only
		// variant, so the comparison isolates the DR design.
		seedCfg := cfg
		seedCfg.Seed = seed
		framework.MustNew("alternate").Fit(m, ds, seedCfg)
		st := &core.State{Model: m, Shared: paramvec.Snapshot(params)}
		for range ds.Domains {
			st.AddDomain()
		}
		rng := rand.New(rand.NewSource(seed))
		for e := 0; e < 2; e++ {
			for d := range ds.Domains {
				core.DomainRegularizationOpt(st, ds, d, seedCfg, rng, opts)
			}
		}
		return meanAUCOf(framework.EvaluateAUC(st, ds, data.Test))
	}
	avg := func(opts core.DROptions) float64 {
		var sum float64
		for _, seed := range []int64{s.Seed, s.Seed + 1, s.Seed + 2, s.Seed + 3, s.Seed + 4} {
			sum += run(opts, seed)
		}
		return sum / 5
	}

	t := &Table{
		ID:     "Ablation DR-Order",
		Title:  "DR design ablation (Taobao-10, avg AUC, mean of 5 seeds)",
		Header: []string{"Variant", "AUC"},
	}
	t.Rows = append(t.Rows, []string{"helper→target (paper)", f4(avg(core.DROptions{}))})
	t.Rows = append(t.Rows, []string{"target→helper (reversed)", f4(avg(core.DROptions{ReverseOrder: true}))})
	t.Rows = append(t.Rows, []string{"helper only (no Eq. 7 step)", f4(avg(core.DROptions{SkipTargetStep: true}))})
	return t
}

// AblationCache measures the PS-Worker embedding cache's effect on
// synchronization traffic and final quality.
func AblationCache(s Scale) *Table {
	ds := synth.Generate(synth.Amazon6(s.TotalSamples, s.Seed))
	replica := func() models.Model {
		return models.MustNew("mlp", modelConfig(ds, s.Seed))
	}
	run := func(cache bool) (float64, ps.Counters) {
		res := ps.Train(replica, ds, ps.Options{
			Workers: 4, Epochs: s.Epochs, Seed: s.Seed, CacheEnabled: cache,
			BatchSize: s.BatchSize,
		})
		return meanAUCOf(framework.EvaluateAUC(res.State, ds, data.Test)), res.Counters
	}

	t := &Table{
		ID:     "Ablation PS-Cache",
		Title:  "Embedding PS-Worker cache: sync overhead and quality (Amazon-6, 4 workers)",
		Header: []string{"Variant", "AUC", "Floats moved", "Row pulls", "Pushes"},
	}
	aucOn, cOn := run(true)
	aucOff, cOff := run(false)
	t.Rows = append(t.Rows, []string{"cache enabled (paper)", f4(aucOn),
		fmt.Sprintf("%d", cOn.FloatsMoved), fmt.Sprintf("%d", cOn.RowPulls), fmt.Sprintf("%d", cOn.DensePushes)})
	t.Rows = append(t.Rows, []string{"cache disabled", f4(aucOff),
		fmt.Sprintf("%d", cOff.FloatsMoved), fmt.Sprintf("%d", cOff.RowPulls), fmt.Sprintf("%d", cOff.DensePushes)})
	if cOff.FloatsMoved > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("Cache reduces synchronization traffic by %.1fx.",
			float64(cOff.FloatsMoved)/float64(cOn.FloatsMoved)))
	}
	return t
}

// ConflictScaling measures one training epoch's wall time for PCGrad
// (O(n²) pairwise projections) versus DN (O(n)) as the domain count
// grows — the scalability argument of Section III-C.
func ConflictScaling(s Scale) *Table {
	t := &Table{
		ID:     "Conflict Scaling",
		Title:  "Wall time of one epoch: PCGrad O(n²) vs DN O(n)",
		Header: []string{"#Domains", "PCGrad", "DN", "Ratio"},
	}
	for _, n := range []int{5, 10, 20, 30} {
		specs := make([]synth.DomainSpec, n)
		for i := range specs {
			specs[i] = synth.DomainSpec{Name: fmt.Sprintf("d%d", i), Samples: 200, CTRRatio: 0.3}
		}
		ds := synth.Generate(synth.Config{Name: fmt.Sprintf("scale-%d", n), Seed: s.Seed, ConflictStrength: 1, Domains: specs})
		cfg := trainCfg(s)
		cfg.Epochs = 1
		cfg.MaxBatchesPerDomain = 2

		time1 := timeFit("pcgrad", ds, s, cfg)
		time2 := timeFit("dn", ds, s, cfg)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), time1.Round(time.Millisecond).String(),
			time2.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", float64(time1)/float64(time2)),
		})
	}
	return t
}

func timeFit(fwKey string, ds *data.Dataset, s Scale, cfg framework.Config) time.Duration {
	m := models.MustNew("mlp", modelConfig(ds, s.Seed))
	start := time.Now()
	framework.MustNew(fwKey).Fit(m, ds, cfg)
	return time.Since(start)
}

// GradientConflictDiagnostic quantifies domain conflict before and after
// DN training: the mean pairwise cosine similarity of per-domain
// gradients at the shared parameters. DN should increase it (Eq. 9).
func GradientConflictDiagnostic(s Scale) *Table {
	ds := synth.Generate(synth.Taobao10(s.TotalSamples, s.Seed))
	cfg := trainCfg(s)

	measure := func(m models.Model) float64 {
		rng := rand.New(rand.NewSource(s.Seed))
		params := m.Parameters()
		grads := make([]paramvec.Vector, ds.NumDomains())
		for d := range ds.Domains {
			framework.DomainGradient(m, ds, d, cfg.BatchSize, 4, rng)
			grads[d] = paramvec.SnapshotGrads(params)
		}
		var total float64
		var pairs int
		for i := range grads {
			for j := i + 1; j < len(grads); j++ {
				total += paramvec.CosineSimilarity(grads[i], grads[j])
				pairs++
			}
		}
		return total / float64(pairs)
	}

	before := models.MustNew("mlp", modelConfig(ds, s.Seed))
	initCos := measure(before)

	alt := models.MustNew("mlp", modelConfig(ds, s.Seed))
	framework.MustNew("alternate").Fit(alt, ds, cfg)
	altCos := measure(alt)

	dn := models.MustNew("mlp", modelConfig(ds, s.Seed))
	framework.MustNew("dn").Fit(dn, ds, cfg)
	dnCos := measure(dn)

	t := &Table{
		ID:     "Conflict Diagnostic",
		Title:  "Mean pairwise cosine similarity of per-domain gradients (Taobao-10)",
		Header: []string{"Parameters", "Mean cosine"},
		Notes:  []string{"DN maximizes cross-domain gradient inner products (Eq. 9); higher is less conflict."},
	}
	t.Rows = append(t.Rows, []string{"random init", f4(initCos)})
	t.Rows = append(t.Rows, []string{"after Alternate", f4(altCos)})
	t.Rows = append(t.Rows, []string{"after DN", f4(dnCos)})
	return t
}
