package exp

import (
	"fmt"

	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/metrics"
	"mamdr/internal/models"
	"mamdr/internal/synth"
)

// GeneralizationLODO is an extension experiment suggested by the paper's
// conclusion ("the proposed DN and DR have the potential to be used for
// ... domain generalization"): leave-one-domain-out evaluation. For each
// held-out domain, the model trains on the remaining domains only and is
// evaluated zero-shot on the held-out domain's test split (served with
// the pure shared parameters, as a newly registered domain would be).
// DN's cross-domain gradient alignment should transfer better to the
// unseen domain than alternate training; MLDG — designed for exactly
// this setting — is the reference point.
func GeneralizationLODO(s Scale) *Table {
	full := synth.Generate(synth.Taobao10(s.TotalSamples, s.Seed))
	methods := []string{"alternate", "mldg", "reptile", "dn"}
	heldOut := []int{0, 3, 7} // small, medium, large domains

	results := map[string][]float64{}
	for _, h := range heldOut {
		train := withoutDomainTrain(full, h)
		for _, key := range methods {
			m := models.MustNew("mlp", modelConfig(train, s.Seed))
			pred := framework.MustNew(key).Fit(m, train, trainCfg(s))
			b := full.FullBatch(h, data.Test)
			results[key] = append(results[key], metrics.AUC(pred.Predict(b), b.Labels))
		}
	}

	t := &Table{
		ID:     "Extension LODO",
		Title:  "Zero-shot AUC on held-out domains (leave-one-domain-out, Taobao-10)",
		Header: []string{"Method"},
		Notes: []string{"Extension beyond the paper's tables: its conclusion proposes DN/DR " +
			"for domain generalization; this measures zero-shot transfer to unseen domains."},
	}
	for _, h := range heldOut {
		t.Header = append(t.Header, fmt.Sprintf("held-out %s", full.Domains[h].Name))
	}
	t.Header = append(t.Header, "mean")
	for _, key := range methods {
		row := []string{framework.MustNew(key).Name()}
		for _, auc := range results[key] {
			row = append(row, f4(auc))
		}
		row = append(row, f4(metrics.Mean(results[key])))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// withoutDomainTrain returns a shallow copy of ds whose held-out
// domain's train and val splits are empty, so no framework can see its
// data during training, while its test split remains for zero-shot
// evaluation via the original dataset.
func withoutDomainTrain(ds *data.Dataset, holdOut int) *data.Dataset {
	cp := *ds
	cp.Domains = make([]*data.Domain, 0, len(ds.Domains)-1)
	for _, dom := range ds.Domains {
		if dom.ID == holdOut {
			continue
		}
		// Re-index so frameworks see a dense domain range.
		d2 := *dom
		d2.ID = len(cp.Domains)
		cp.Domains = append(cp.Domains, &d2)
	}
	return &cp
}
