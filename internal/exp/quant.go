package exp

import (
	"fmt"

	"mamdr/internal/core"
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/metrics"
	"mamdr/internal/models"
	"mamdr/internal/paramvec"
	"mamdr/internal/quant"
	"mamdr/internal/synth"
)

// QuantTradeoff measures what int8 snapshot quantization (the serving
// twin of §IV-E's embedding cache, see internal/quant) costs in ranking
// quality: per-dataset test AUC served from exact float64 composed
// parameters versus the same parameters with every embedding table
// round-tripped through the symmetric-per-row int8 codec. The memory
// side is exact arithmetic — cols+4 bytes per row against 8·cols — so
// the table pairs the AUC delta with the compression it buys. Runs on
// the Amazon-6 equivalent and a Zipf-imbalanced variant (skewed domain
// sizes concentrate specific-parameter mass, the harder case for a
// shared quantization grid).
func QuantTradeoff(s Scale) *Table {
	datasets := []*data.Dataset{
		synth.Generate(synth.Amazon6(s.TotalSamples, s.Seed)),
		synth.Generate(synth.WithZipfImbalance(synth.Amazon6(s.TotalSamples, s.Seed), 1.4)),
	}
	datasets[1].Name = "amazon-6-zipf"

	t := &Table{
		ID:     "Extension Quant",
		Title:  "Serving-snapshot int8 quantization: AUC cost vs embedding-table compression",
		Header: []string{"Dataset", "AUC fp64", "AUC int8", "ΔAUC", "bytes/row fp64", "bytes/row int8", "compression"},
		Notes: []string{"Embedding tables quantized symmetric-per-row int8 with float32 scales " +
			"(internal/quant), dense layers untouched — the storage the serve " +
			"path uses under -snapshot-quant=int8."},
	}
	for _, ds := range datasets {
		m := models.MustNew("mlp", modelConfig(ds, s.Seed))
		st := framework.MustNew("mamdr").Fit(m, ds, trainCfg(s)).(*core.State)

		var aucF, aucQ []float64
		for d := range ds.Domains {
			b := ds.FullBatch(d, data.Test)
			aucF = append(aucF, metrics.AUC(scoreWith(st, st.ComposedFor(d), b), b.Labels))
			aucQ = append(aucQ, metrics.AUC(scoreWith(st, quantRoundTrip(st, d), b), b.Labels))
		}
		meanF, meanQ := metrics.Mean(aucF), metrics.Mean(aucQ)

		fpBytes, qBytes := tableBytes(st.Model)
		t.Rows = append(t.Rows, []string{
			ds.Name, f4(meanF), f4(meanQ), fmt.Sprintf("%+.4f", meanQ-meanF),
			fmt.Sprintf("%d", fpBytes), fmt.Sprintf("%d", qBytes),
			fmt.Sprintf("%.1fx", float64(fpBytes)/float64(qBytes)),
		})
	}
	return t
}

// scoreWith serves one batch with an explicit parameter vector,
// restoring the model afterwards — the experiment-side mirror of the
// serve path's restore-then-forward.
func scoreWith(st *core.State, v paramvec.Vector, b *data.Batch) []float64 {
	params := st.Model.Parameters()
	saved := paramvec.Snapshot(params)
	paramvec.Restore(params, v)
	logits := st.Model.Forward(b, false)
	probs := framework.SigmoidAll(logits)
	logits.Release()
	paramvec.Restore(params, saved)
	return probs
}

// quantRoundTrip composes domain d's serving parameters and round-trips
// every embedding table through the int8 codec — precisely the values
// the quantized serve path dequantizes row by row.
func quantRoundTrip(st *core.State, d int) paramvec.Vector {
	composed := st.ComposedFor(d)
	emb := models.EmbeddingTablesOf(st.Model)
	params := st.Model.Parameters()
	v := make(paramvec.Vector, len(composed))
	for p, seg := range composed {
		if _, isTable := emb[p]; !isTable {
			v[p] = seg
			continue
		}
		v[p] = quant.Quantize(seg, params[p].Rows, params[p].Cols).Dequantize()
	}
	return v
}

// tableBytes sums per-row storage across the model's embedding tables,
// exact vs int8 (quant.Table arithmetic, no estimation).
func tableBytes(m models.Model) (fp64, int8Bytes int) {
	params := m.Parameters()
	for p := range models.EmbeddingTablesOf(m) {
		cols := params[p].Cols
		fp64 += 8 * cols
		int8Bytes += cols + 4
	}
	return fp64, int8Bytes
}
