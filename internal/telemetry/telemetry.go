// Package telemetry is a dependency-free, low-overhead instrument
// library: atomic counters, gauges, and fixed-bucket histograms
// organized into a Registry that renders the Prometheus text exposition
// format (text/plain; version=0.0.4).
//
// Instruments are safe for concurrent use and cost one or two atomic
// operations per update, so they can sit on training and serving hot
// paths. Every instrument method is also nil-receiver-safe: call sites
// do not need to branch on whether telemetry is enabled — a nil
// instrument records nothing.
//
// The library deliberately supports only constant label sets fixed at
// registration time (one time series per Counter/Gauge/Histogram
// value). Get-or-create semantics make per-domain or per-tensor series
// cheap to wire: asking the registry for an existing (name, labels)
// pair returns the same instrument.
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a time series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// kind discriminates metric families for TYPE lines and API checks.
type kind string

const (
	counterKind   kind = "counter"
	gaugeKind     kind = "gauge"
	histogramKind kind = "histogram"
)

// --- instruments ---

// Counter is a monotonically increasing integer. The zero value is
// unusable; obtain counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n. Negative increments are ignored —
// counters never decrease.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increases the gauge by d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	addFloatBits(&g.bits, d)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket bounds are
// inclusive upper limits in strictly increasing order; an implicit +Inf
// bucket catches everything above the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	addFloatBits(&h.sum, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// addFloatBits atomically adds d to a float64 stored as uint64 bits.
func addFloatBits(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// --- bucket helpers ---

// DefBuckets are latency buckets in seconds, spanning sub-millisecond
// forward passes to multi-second replica-pool stalls.
var DefBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// LinearBuckets returns count bounds starting at start, spaced width
// apart.
func LinearBuckets(start, width float64, count int) []float64 {
	if count < 1 {
		panic("telemetry: LinearBuckets needs count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count bounds starting at start, each
// factor times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if count < 1 || start <= 0 || factor <= 1 {
		panic("telemetry: ExponentialBuckets needs count >= 1, start > 0, factor > 1")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// CosineBuckets covers [-1, 1] in 0.1 steps — the natural range of the
// gradient-conflict histogram.
func CosineBuckets() []float64 { return LinearBuckets(-0.9, 0.1, 19) }

// --- registry ---

// series is one labeled time series within a family.
type series struct {
	labels []Label // sorted by name
	sig    string
	inst   any // *Counter, *Gauge, *Histogram, or func() float64
}

// family is all series sharing one metric name.
type family struct {
	name, help string
	kind       kind
	bounds     []float64 // histograms only
	series     map[string]*series
}

// Registry owns metric families and renders them. The zero value is not
// usable; call New.
type Registry struct {
	mu       sync.Mutex
	families []*family // registration order
	byName   map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// Counter returns the counter for (name, labels), creating the family
// and series on first use. A nil registry returns a nil (no-op)
// counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.getOrCreate(name, help, counterKind, nil, labels)
	return s.inst.(*Counter)
}

// Gauge returns the gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.getOrCreate(name, help, gaugeKind, nil, labels)
	return s.inst.(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time (e.g. runtime statistics). Re-registering the same series
// replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.getOrCreate(name, help, gaugeKind, nil, labels)
	r.mu.Lock()
	s.inst = fn
	r.mu.Unlock()
}

// Histogram returns the histogram for (name, labels) with the given
// bucket bounds (strictly increasing upper limits; a +Inf bucket is
// implicit). Pass nil buckets to reuse the family's bounds once
// established; passing different non-nil bounds for the same family
// panics.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.getOrCreate(name, help, histogramKind, buckets, labels)
	return s.inst.(*Histogram)
}

func (r *Registry) getOrCreate(name, help string, k kind, buckets []float64, labels []Label) *series {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for i, l := range sorted {
		if !labelRe.MatchString(l.Name) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %s", l.Name, name))
		}
		if l.Name == "le" {
			panic(fmt.Sprintf("telemetry: label %q on %s is reserved for histogram buckets", l.Name, name))
		}
		if i > 0 && sorted[i-1].Name == l.Name {
			panic(fmt.Sprintf("telemetry: duplicate label %q on %s", l.Name, name))
		}
	}
	sig := signature(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		if k == histogramKind {
			if len(buckets) == 0 {
				panic(fmt.Sprintf("telemetry: histogram %s registered without buckets", name))
			}
			for i := 1; i < len(buckets); i++ {
				if buckets[i] <= buckets[i-1] {
					panic(fmt.Sprintf("telemetry: histogram %s buckets not strictly increasing: %v", name, buckets))
				}
			}
		}
		f = &family{
			name: name, help: help, kind: k,
			bounds: append([]float64(nil), buckets...),
			series: map[string]*series{},
		}
		r.families = append(r.families, f)
		r.byName[name] = f
	} else {
		if f.kind != k {
			panic(fmt.Sprintf("telemetry: %s already registered as %s, requested %s", name, f.kind, k))
		}
		if k == histogramKind && buckets != nil && !equalBounds(buckets, f.bounds) {
			panic(fmt.Sprintf("telemetry: histogram %s re-registered with different buckets", name))
		}
	}
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: sorted, sig: sig}
		switch k {
		case counterKind:
			s.inst = &Counter{}
		case gaugeKind:
			s.inst = &Gauge{}
		case histogramKind:
			s.inst = newHistogram(f.bounds)
		}
		f.series[sig] = s
	}
	return s
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// signature is the canonical label rendering, doubling as the series
// key and as the exposition label block (without braces).
func signature(sorted []Label) string {
	if len(sorted) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double quote, and newline as the
// exposition format requires.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline for HELP lines.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
