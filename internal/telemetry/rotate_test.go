package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// readEvents returns the "i" field of every event in a JSONL file, in
// file order, failing on torn or invalid lines.
func readEvents(t *testing.T, path string) []int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	var out []int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec struct {
			Event string `json:"event"`
			I     int    `json:"i"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("%s: torn line %q: %v", path, sc.Text(), err)
		}
		if rec.Event != "tick" {
			t.Fatalf("%s: unexpected event %q", path, rec.Event)
		}
		out = append(out, rec.I)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEventLogRotation pins the size-based rotation contract: segments
// rotate at the byte limit, at most Keep rotated segments survive, and
// the surviving files partition the most recent events in order with
// whole lines only.
func TestEventLogRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	log, err := OpenEventLogRotating(path, Rotation{MaxBytes: 400, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	const total = 200
	for i := 0; i < total; i++ {
		log.Log("tick", map[string]any{"i": i})
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Only the active file and Keep segments may exist.
	if _, err := os.Stat(segmentPath(path, 3)); !os.IsNotExist(err) {
		t.Fatalf("segment .3 exists; Keep=2 must bound retention (err=%v)", err)
	}
	var all []int
	for _, p := range []string{segmentPath(path, 2), segmentPath(path, 1), path} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("expected %s to exist: %v", p, err)
		}
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		// A segment may exceed MaxBytes only by the final line that
		// crossed the limit, never by more than one event (~80 bytes).
		if p != path && st.Size() > 400+120 {
			t.Fatalf("%s is %d bytes; rotation should trigger at 400", p, st.Size())
		}
		all = append(all, readEvents(t, p)...)
	}

	// The retained files hold a contiguous, ordered suffix of the
	// stream: rotation drops only the oldest segments, never middles.
	if len(all) == 0 || len(all) >= total {
		t.Fatalf("retained %d events of %d; rotation should have discarded an oldest prefix", len(all), total)
	}
	for k := 1; k < len(all); k++ {
		if all[k] != all[k-1]+1 {
			t.Fatalf("retained events not contiguous at %d: %v -> %v", k, all[k-1], all[k])
		}
	}
	if last := all[len(all)-1]; last != total-1 {
		t.Fatalf("newest retained event is %d, want %d", last, total-1)
	}
}

// TestEventLogRotationBoundary pins the boundary behavior: rotation
// triggers on the write that reaches MaxBytes — never mid-line — so
// every segment ends with the whole event that crossed the limit and
// the next segment starts fresh. Lines are padded so their size
// dominates the few bytes of timestamp-length jitter.
func TestEventLogRotationBoundary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.jsonl")
	pad := strings.Repeat("x", 60) // each line lands near 120 bytes

	// MaxBytes = 300: two ~120-byte lines stay under, the third always
	// crosses — every segment must hold exactly three whole events.
	log, err := OpenEventLogRotating(path, Rotation{MaxBytes: 300, Keep: 5})
	if err != nil {
		t.Fatal(err)
	}
	const total = 30
	for i := 0; i < total; i++ {
		log.Log("tick", map[string]any{"i": i, "pad": pad})
	}
	log.Close()

	if got := readEvents(t, path); len(got) != 0 {
		t.Fatalf("active file = %v, want empty (the 30th event crossed the limit and rotated)", got)
	}
	var all []int
	for k := 5; k >= 1; k-- {
		got := readEvents(t, segmentPath(path, k))
		if len(got) != 3 {
			t.Fatalf("segment .%d = %v, want exactly 3 whole events per segment", k, got)
		}
		all = append(all, got...)
	}
	for k := 1; k < len(all); k++ {
		if all[k] != all[k-1]+1 {
			t.Fatalf("segments out of order at %d: %v", k, all)
		}
	}
	if last := all[len(all)-1]; last != total-1 {
		t.Fatalf("newest retained event is %d, want %d", last, total-1)
	}
}

// TestEventLogRotationConcurrent hammers a rotating log from many
// goroutines under -race: every surviving line must be whole and valid
// even when rotation interleaves with writes.
func TestEventLogRotationConcurrent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.jsonl")
	log, err := OpenEventLogRotating(path, Rotation{MaxBytes: 1 << 10, Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				log.Log("tick", map[string]any{"i": w*100 + i})
			}
		}(w)
	}
	wg.Wait()
	log.Close()

	files, err := filepath.Glob(path + "*")
	if err != nil || len(files) == 0 {
		t.Fatalf("no log files (%v)", err)
	}
	if len(files) > 4 { // active + Keep
		t.Fatalf("%d files retained, want <= 4: %v", len(files), files)
	}
	n := 0
	for _, p := range files {
		n += len(readEvents(t, p))
	}
	if n == 0 {
		t.Fatal("no events survived")
	}
}

// TestOpenEventLogAppendCompat pins that the non-rotating constructor
// still appends to an existing file (the pre-rotation contract).
func TestOpenEventLogAppendCompat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jsonl")
	for round := 0; round < 2; round++ {
		log, err := OpenEventLog(path)
		if err != nil {
			t.Fatal(err)
		}
		log.Log("tick", map[string]any{"i": round})
		log.Close()
	}
	if got := readEvents(t, path); fmt.Sprint(got) != "[0 1]" {
		t.Fatalf("append-compat events = %v, want [0 1]", got)
	}
}
