package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// SnapshotVersion is the wire version of RegistrySnapshot. Decoders
// must reject snapshots from a different version instead of guessing —
// a silently misread bucket layout would corrupt every federated
// histogram downstream.
const SnapshotVersion = 1

// SeriesSnapshot is one time series captured at a point in time. For
// counters and gauges only Value is set; for histograms Buckets carries
// the raw (non-cumulative) per-bucket counts — len(bounds)+1, the last
// being the +Inf overflow — plus the observation Sum and Count.
//
// All fields are exported so the snapshot travels over both
// encoding/json (HTTP federation) and encoding/gob (the PS RPC path).
type SeriesSnapshot struct {
	Labels  []Label `json:"labels,omitempty"`
	Value   float64 `json:"value"`
	Buckets []int64 `json:"buckets,omitempty"`
	Sum     float64 `json:"sum,omitempty"`
	Count   int64   `json:"count,omitempty"`
}

// FamilySnapshot is one metric family: every series sharing a name,
// kind, and (for histograms) bucket schema.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help"`
	Kind   string           `json:"kind"` // "counter", "gauge", "histogram"
	Bounds []float64        `json:"bounds,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// RegistrySnapshot is a consistent, self-describing export of a whole
// registry — the unit the fleet aggregator scrapes from every process.
// Role and Instance identify the process in a federated view; the
// registry itself does not know them, so the serving layer (HTTP
// handler, RPC service) fills them in.
type RegistrySnapshot struct {
	Version       int              `json:"version"`
	Role          string           `json:"role,omitempty"`
	Instance      string           `json:"instance,omitempty"`
	TakenUnixNano int64            `json:"taken_unix_nano"`
	Families      []FamilySnapshot `json:"families"`
}

// Validate checks the snapshot's version and internal consistency
// (histogram bucket slices matching their bounds).
func (s RegistrySnapshot) Validate() error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("telemetry: snapshot version %d, this build speaks %d", s.Version, SnapshotVersion)
	}
	for _, f := range s.Families {
		switch f.Kind {
		case "counter", "gauge":
			if len(f.Bounds) != 0 {
				return fmt.Errorf("telemetry: %s family %s carries bucket bounds", f.Kind, f.Name)
			}
		case "histogram":
			for _, se := range f.Series {
				if len(se.Buckets) != len(f.Bounds)+1 {
					return fmt.Errorf("telemetry: histogram %s series has %d buckets, bounds imply %d",
						f.Name, len(se.Buckets), len(f.Bounds)+1)
				}
			}
		default:
			return fmt.Errorf("telemetry: family %s has unknown kind %q", f.Name, f.Kind)
		}
	}
	return nil
}

// Snapshot exports every family and series in registration order.
// GaugeFunc series are evaluated at snapshot time, exactly as a
// Prometheus scrape would. Histogram Count is derived from the bucket
// counts read in one pass, so the snapshot's own invariants (sum of
// buckets == count) hold even while observations race the export.
func (r *Registry) Snapshot() RegistrySnapshot {
	snap := RegistrySnapshot{Version: SnapshotVersion, TakenUnixNano: time.Now().UnixNano()}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: string(f.kind)}
		if f.kind == histogramKind {
			fs.Bounds = append([]float64(nil), f.bounds...)
		}
		r.mu.Lock()
		ss := sortedSeries(f)
		r.mu.Unlock()
		for _, s := range ss {
			se := SeriesSnapshot{Labels: append([]Label(nil), s.labels...)}
			switch inst := s.inst.(type) {
			case *Counter:
				se.Value = float64(inst.Value())
			case *Gauge:
				se.Value = inst.Value()
			case func() float64:
				se.Value = inst()
			case *Histogram:
				se.Buckets = make([]int64, len(inst.counts))
				var total int64
				for i := range inst.counts {
					se.Buckets[i] = inst.counts[i].Load()
					total += se.Buckets[i]
				}
				se.Sum = inst.Sum()
				se.Count = total
			}
			fs.Series = append(fs.Series, se)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// SnapshotHandler serves the registry as a JSON RegistrySnapshot — the
// HTTP federation surface, mounted at /metrics/snapshot on every
// process that already serves /metrics. role names the process's job
// ("trainer", "serve"); instance may be left empty for the scraper to
// fill in with the address it dialed.
func SnapshotHandler(role, instance string, r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		snap := r.Snapshot()
		snap.Role, snap.Instance = role, instance
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(snap)
	})
}

// sortedSeries returns a family's series ordered by label signature.
// Callers must hold the registry mutex.
func sortedSeries(f *family) []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sig < out[j].sig })
	return out
}
