package telemetry

import (
	"math"
	"sync"
)

// AnomalySink receives anomaly triggers. trace.FlightRecorder
// implements it, so telemetry can raise anomalies into the tracing
// flight recorder without either package importing the other; any
// other implementation (a pager, a log line) plugs in the same way.
type AnomalySink interface {
	// Trigger fires one anomaly of the given kind with descriptive
	// fields. Implementations decide their own dedup/once semantics.
	Trigger(kind string, fields map[string]any)
}

// CountingSink forwards anomaly triggers to an inner sink while
// counting them per kind in mamdr_anomalies_total, so anomaly volume
// becomes a federated series that SLOs can burn against — the flight
// recorder's once-per-kind dump latch hides repetition that an error
// budget must see.
type CountingSink struct {
	inner AnomalySink
	reg   *Registry
}

// NewCountingSink wraps inner (which may be nil for count-only use),
// counting triggers as mamdr_anomalies_total{kind=...} on reg.
func NewCountingSink(inner AnomalySink, reg *Registry) *CountingSink {
	return &CountingSink{inner: inner, reg: reg}
}

// Trigger implements AnomalySink.
func (c *CountingSink) Trigger(kind string, fields map[string]any) {
	if c == nil {
		return
	}
	c.reg.Counter("mamdr_anomalies_total",
		"Training anomalies observed, by kind (nan_loss, loss_spike, ...).",
		L("kind", kind)).Inc()
	if c.inner != nil {
		c.inner.Trigger(kind, fields)
	}
}

// LossWatch detects training-loss anomalies per domain: NaN or Inf
// losses fire immediately ("nan_loss"); finite losses feed a running
// mean/variance (Welford) and fire "loss_spike" when a loss lands
// more than Z standard deviations above the domain's mean after a
// warmup period. All methods are safe for concurrent use (workers
// observe from their own goroutines) and nil-receiver-safe.
type LossWatch struct {
	sink   AnomalySink
	z      float64
	warmup int

	mu    sync.Mutex
	stats map[string]*welford
}

type welford struct {
	n    int
	mean float64
	m2   float64
}

func (w *welford) observe(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

func (w *welford) std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// NewLossWatch watches for NaN/Inf losses and per-domain spikes above
// zThreshold standard deviations (<= 0 means the default 4), ignoring
// spikes until a domain has warmup finite observations (<= 0 means
// the default 8).
func NewLossWatch(sink AnomalySink, zThreshold float64, warmup int) *LossWatch {
	if zThreshold <= 0 {
		zThreshold = 4
	}
	if warmup <= 0 {
		warmup = 8
	}
	return &LossWatch{sink: sink, z: zThreshold, warmup: warmup, stats: map[string]*welford{}}
}

// Observe feeds one finished pass's mean loss for a domain. extra
// fields (worker id, the pass span's trace/span ids) are forwarded to
// the sink alongside the watch's own domain/loss/z fields.
func (lw *LossWatch) Observe(domain string, loss float64, extra map[string]any) {
	if lw == nil {
		return
	}
	fields := map[string]any{"domain": domain, "loss": loss}
	for k, v := range extra {
		fields[k] = v
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		// JSON has no NaN/Inf literal; stringify so event sinks that
		// marshal the fields do not drop the record.
		fields["loss"] = "non-finite"
		lw.sink.Trigger("nan_loss", fields)
		return
	}

	lw.mu.Lock()
	st := lw.stats[domain]
	if st == nil {
		st = &welford{}
		lw.stats[domain] = st
	}
	spiked := false
	var z float64
	if st.n >= lw.warmup {
		if sd := st.std(); sd > 0 {
			z = (loss - st.mean) / sd
			spiked = z > lw.z
		}
	}
	st.observe(loss)
	lw.mu.Unlock()

	if spiked {
		fields["z"] = z
		lw.sink.Trigger("loss_spike", fields)
	}
}
