package telemetry

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// buildTestRegistry assembles one of every instrument shape, including
// label values that need escaping.
func buildTestRegistry() *Registry {
	r := New()
	r.Counter("app_requests_total", "Requests served.", L("code", "200")).Add(7)
	r.Counter("app_requests_total", "Requests served.", L("code", "503")).Add(2)
	r.Gauge("app_pool_saturation", "In-flight replicas / pool size.").Set(0.25)
	r.Counter("app_escaped_total", "Label escaping.", L("path", `a\b"c`+"\nd")).Inc()
	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.1, 1}, L("domain", "books"))
	for _, v := range []float64{0.05, 0.5, 2} {
		h.Observe(v)
	}
	return r
}

// TestExpositionGolden pins the exact rendered output: family order
// follows registration, series sort by label signature, histograms
// expand to cumulative buckets + sum + count.
func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{code="200"} 7
app_requests_total{code="503"} 2
# HELP app_pool_saturation In-flight replicas / pool size.
# TYPE app_pool_saturation gauge
app_pool_saturation 0.25
# HELP app_escaped_total Label escaping.
# TYPE app_escaped_total counter
app_escaped_total{path="a\\b\"c\nd"} 1
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{domain="books",le="0.1"} 1
app_latency_seconds_bucket{domain="books",le="1"} 2
app_latency_seconds_bucket{domain="books",le="+Inf"} 3
app_latency_seconds_sum 2.55
app_latency_seconds_count 3
`
	// The histogram _sum/_count carry the series labels too.
	want = strings.ReplaceAll(want,
		"app_latency_seconds_sum 2.55\napp_latency_seconds_count 3",
		`app_latency_seconds_sum{domain="books"} 2.55`+"\n"+`app_latency_seconds_count{domain="books"} 3`)
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionParses validates the output line-by-line the way a
// Prometheus scraper would: HELP immediately before TYPE, every sample
// under a declared family, label escaping well-formed, and histogram
// _bucket/_sum/_count invariants (cumulative non-decreasing buckets,
// +Inf bucket == _count).
func TestExpositionParses(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	validateExposition(t, buf.String())
}

// validateExposition is the reusable line-by-line checker; other
// packages replicate its core checks against live /metrics endpoints.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	type fam struct {
		kind     string
		samples  int
		buckets  map[string][]float64 // histogram: series sig -> cumulative counts
		sumCount map[string][2]float64
		infSeen  map[string]float64
	}
	families := map[string]*fam{}
	var lastHelp string
	var current string

	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for ln, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if _, dup := families[name]; dup {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			lastHelp = name
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, kind := parts[0], parts[1]
			if name != lastHelp {
				t.Fatalf("line %d: TYPE %s not preceded by its HELP (last HELP %s)", ln+1, name, lastHelp)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("line %d: unknown kind %q", ln+1, kind)
			}
			families[name] = &fam{kind: kind,
				buckets: map[string][]float64{}, sumCount: map[string][2]float64{}, infSeen: map[string]float64{}}
			current = name
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			name, labels, value := parseSample(t, ln+1, line)
			base := name
			suffix := ""
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if f, ok := families[strings.TrimSuffix(name, sfx)]; ok && f.kind == "histogram" && strings.HasSuffix(name, sfx) {
					base, suffix = strings.TrimSuffix(name, sfx), sfx
					break
				}
			}
			f, ok := families[base]
			if !ok {
				t.Fatalf("line %d: sample %s before its TYPE", ln+1, name)
			}
			if base != current {
				t.Fatalf("line %d: sample for %s interleaved into family %s", ln+1, base, current)
			}
			if f.kind == "histogram" && suffix == "" {
				t.Fatalf("line %d: bare sample %s for histogram family", ln+1, name)
			}
			f.samples++
			if f.kind != "histogram" {
				continue
			}
			le, sig := splitLE(labels)
			switch suffix {
			case "_bucket":
				if le == "" {
					t.Fatalf("line %d: bucket without le label", ln+1)
				}
				if le == "+Inf" {
					f.infSeen[sig] = value
					break
				}
				prev := f.buckets[sig]
				if len(prev) > 0 && value < prev[len(prev)-1] {
					t.Fatalf("line %d: bucket counts not cumulative: %v then %g", ln+1, prev, value)
				}
				f.buckets[sig] = append(prev, value)
			case "_sum":
				sc := f.sumCount[sig]
				sc[0] = value
				f.sumCount[sig] = sc
			case "_count":
				sc := f.sumCount[sig]
				sc[1] = value
				f.sumCount[sig] = sc
			}
		}
	}
	for name, f := range families {
		if f.samples == 0 {
			t.Errorf("family %s declared but has no samples", name)
		}
		for sig, inf := range f.infSeen {
			if cum := f.buckets[sig]; len(cum) > 0 && cum[len(cum)-1] > inf {
				t.Errorf("%s{%s}: finite bucket %g exceeds +Inf bucket %g", name, sig, cum[len(cum)-1], inf)
			}
			if sc := f.sumCount[sig]; sc[1] != inf {
				t.Errorf("%s{%s}: _count %g != +Inf bucket %g", name, sig, sc[1], inf)
			}
		}
	}
}

// parseSample splits `name{labels} value`, checking label quoting.
func parseSample(t *testing.T, ln int, line string) (name, labels string, value float64) {
	t.Helper()
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			t.Fatalf("line %d: unbalanced braces: %q", ln, line)
		}
		name, labels, rest = line[:i], line[i+1:j], line[j+1:]
		for _, pair := range splitLabelPairs(labels) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: malformed label pair %q", ln, pair)
			}
			if k == "" {
				t.Fatalf("line %d: empty label name in %q", ln, pair)
			}
			inner := v[1 : len(v)-1]
			for i := 0; i < len(inner); i++ {
				switch inner[i] {
				case '\\':
					if i+1 >= len(inner) || !strings.ContainsRune(`\"n`, rune(inner[i+1])) {
						t.Fatalf("line %d: bad escape in label value %q", ln, inner)
					}
					i++
				case '"', '\n':
					t.Fatalf("line %d: unescaped %q in label value %q", ln, inner[i], inner)
				}
			}
		}
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d: malformed sample %q", ln, line)
		}
		name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(rest, " ")), 64)
	if err != nil && strings.TrimSpace(rest) != "+Inf" {
		t.Fatalf("line %d: bad value in %q: %v", ln, line, err)
	}
	return name, labels, v
}

// splitLE extracts the le label from a label block, returning its value
// and the remaining pairs as the series signature.
func splitLE(labels string) (le, sig string) {
	var rest []string
	for _, pair := range splitLabelPairs(labels) {
		if v, ok := strings.CutPrefix(pair, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		rest = append(rest, pair)
	}
	return le, strings.Join(rest, ",")
}

// splitLabelPairs splits on commas outside quoted values.
func splitLabelPairs(s string) []string {
	var out []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(s):
			b.WriteByte(c)
			i++
			b.WriteByte(s[i])
		case c == '"':
			inQuote = !inQuote
			b.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if b.Len() > 0 {
		out = append(out, b.String())
	}
	return out
}

func TestHandlerContentType(t *testing.T) {
	r := buildTestRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q, want %q", ct, ContentType)
	}
}

func TestGaugeFuncEvaluatedAtScrape(t *testing.T) {
	r := New()
	n := 0.0
	r.GaugeFunc("live_value", "scrape-time value", func() float64 { n++; return n })
	var a, b bytes.Buffer
	r.WritePrometheus(&a)
	r.WritePrometheus(&b)
	if !strings.Contains(a.String(), "live_value 1") || !strings.Contains(b.String(), "live_value 2") {
		t.Fatalf("gauge func not re-evaluated:\n%s\n%s", a.String(), b.String())
	}
}

func TestSeriesSortedWithinFamily(t *testing.T) {
	r := New()
	for _, d := range []string{"zeta", "alpha", "mid"} {
		r.Counter("sorted_total", "s", L("domain", d)).Inc()
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	var got []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "sorted_total{") {
			got = append(got, line)
		}
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("series not sorted: %v", got)
	}
	if len(got) != 3 {
		t.Fatalf("got %d series, want 3", len(got))
	}
}

func ExampleRegistry_WritePrometheus() {
	r := New()
	r.Counter("example_total", "An example counter.").Add(3)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	fmt.Print(buf.String())
	// Output:
	// # HELP example_total An example counter.
	// # TYPE example_total counter
	// example_total 3
}
