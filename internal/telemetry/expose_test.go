package telemetry

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"mamdr/internal/telemetry/promtest"
)

// buildTestRegistry assembles one of every instrument shape, including
// label values that need escaping.
func buildTestRegistry() *Registry {
	r := New()
	r.Counter("app_requests_total", "Requests served.", L("code", "200")).Add(7)
	r.Counter("app_requests_total", "Requests served.", L("code", "503")).Add(2)
	r.Gauge("app_pool_saturation", "In-flight replicas / pool size.").Set(0.25)
	r.Counter("app_escaped_total", "Label escaping.", L("path", `a\b"c`+"\nd")).Inc()
	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.1, 1}, L("domain", "books"))
	for _, v := range []float64{0.05, 0.5, 2} {
		h.Observe(v)
	}
	return r
}

// TestExpositionGolden pins the exact rendered output: family order
// follows registration, series sort by label signature, histograms
// expand to cumulative buckets + sum + count.
func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{code="200"} 7
app_requests_total{code="503"} 2
# HELP app_pool_saturation In-flight replicas / pool size.
# TYPE app_pool_saturation gauge
app_pool_saturation 0.25
# HELP app_escaped_total Label escaping.
# TYPE app_escaped_total counter
app_escaped_total{path="a\\b\"c\nd"} 1
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{domain="books",le="0.1"} 1
app_latency_seconds_bucket{domain="books",le="1"} 2
app_latency_seconds_bucket{domain="books",le="+Inf"} 3
app_latency_seconds_sum 2.55
app_latency_seconds_count 3
`
	// The histogram _sum/_count carry the series labels too.
	want = strings.ReplaceAll(want,
		"app_latency_seconds_sum 2.55\napp_latency_seconds_count 3",
		`app_latency_seconds_sum{domain="books"} 2.55`+"\n"+`app_latency_seconds_count{domain="books"} 3`)
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionParses validates the output line-by-line the way a
// Prometheus scraper would: HELP immediately before TYPE, every sample
// under a declared family, label escaping well-formed, and histogram
// _bucket/_sum/_count invariants (cumulative non-decreasing buckets,
// +Inf bucket == _count).
func TestExpositionParses(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	promtest.Validate(t, buf.String())
}

func TestHandlerContentType(t *testing.T) {
	r := buildTestRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q, want %q", ct, ContentType)
	}
}

func TestGaugeFuncEvaluatedAtScrape(t *testing.T) {
	r := New()
	n := 0.0
	r.GaugeFunc("live_value", "scrape-time value", func() float64 { n++; return n })
	var a, b bytes.Buffer
	r.WritePrometheus(&a)
	r.WritePrometheus(&b)
	if !strings.Contains(a.String(), "live_value 1") || !strings.Contains(b.String(), "live_value 2") {
		t.Fatalf("gauge func not re-evaluated:\n%s\n%s", a.String(), b.String())
	}
}

func TestSeriesSortedWithinFamily(t *testing.T) {
	r := New()
	for _, d := range []string{"zeta", "alpha", "mid"} {
		r.Counter("sorted_total", "s", L("domain", d)).Inc()
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	var got []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "sorted_total{") {
			got = append(got, line)
		}
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("series not sorted: %v", got)
	}
	if len(got) != 3 {
		t.Fatalf("got %d series, want 3", len(got))
	}
}

func ExampleRegistry_WritePrometheus() {
	r := New()
	r.Counter("example_total", "An example counter.").Add(3)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	fmt.Print(buf.String())
	// Output:
	// # HELP example_total An example counter.
	// # TYPE example_total counter
	// example_total 3
}
