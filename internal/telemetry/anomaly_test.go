package telemetry_test

import (
	"context"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"mamdr/internal/telemetry"
	"mamdr/internal/trace"
)

type recordingSink struct {
	mu    sync.Mutex
	kinds []string
	last  map[string]any
}

func (s *recordingSink) Trigger(kind string, fields map[string]any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kinds = append(s.kinds, kind)
	s.last = fields
}

func (s *recordingSink) fired() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.kinds...)
}

func TestLossWatchNaNAndInf(t *testing.T) {
	sink := &recordingSink{}
	lw := telemetry.NewLossWatch(sink, 4, 8)
	lw.Observe("books", 0.5, nil)
	lw.Observe("books", math.NaN(), map[string]any{"worker": 3})
	lw.Observe("games", math.Inf(1), nil)
	if got := sink.fired(); len(got) != 2 || got[0] != "nan_loss" || got[1] != "nan_loss" {
		t.Fatalf("fired = %v, want two nan_loss", got)
	}
	if sink.last["domain"] != "games" || sink.last["loss"] != "non-finite" {
		t.Fatalf("fields = %v", sink.last)
	}
}

func TestLossWatchSpikeZScore(t *testing.T) {
	sink := &recordingSink{}
	lw := telemetry.NewLossWatch(sink, 3, 5)
	// Steady losses around 0.5 with a little variance.
	for i := 0; i < 20; i++ {
		lw.Observe("books", 0.5+float64(i%5)*0.01, nil)
	}
	if len(sink.fired()) != 0 {
		t.Fatalf("steady losses fired %v", sink.fired())
	}
	lw.Observe("books", 5.0, nil) // massive spike
	got := sink.fired()
	if len(got) != 1 || got[0] != "loss_spike" {
		t.Fatalf("fired = %v, want one loss_spike", got)
	}
	if z, ok := sink.last["z"].(float64); !ok || z <= 3 {
		t.Fatalf("z = %v, want > 3", sink.last["z"])
	}
	// Other domains have independent statistics: a spike-sized value
	// during another domain's warmup stays quiet.
	lw.Observe("games", 5.0, nil)
	if len(sink.fired()) != 1 {
		t.Fatalf("cross-domain stats leaked: %v", sink.fired())
	}
}

func TestLossWatchNilSafe(t *testing.T) {
	var lw *telemetry.LossWatch
	lw.Observe("books", math.NaN(), nil) // must not panic
}

// TestNaNLossDumpsFlightRecorderOnce is the acceptance wiring: an
// injected NaN loss, observed through the LossWatch with a tracing
// flight recorder as its sink, produces exactly one dump file holding
// the >= 64 most recent spans with the triggering span marked.
func TestNaNLossDumpsFlightRecorderOnce(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "fl")
	tr := trace.New(trace.Options{FlightSize: 64, FlightPath: prefix})
	ctx := tr.Context(context.Background())

	var last *trace.Span
	for i := 0; i < 80; i++ {
		_, s := trace.Start(ctx, "dn.inner_step", trace.A("i", i))
		s.End()
		last = s
	}

	lw := telemetry.NewLossWatch(tr.Flight(), 4, 8)
	inject := func() {
		lw.Observe("books", math.NaN(), map[string]any{
			"trace_id": last.TraceID, "span_id": last.ID,
		})
	}
	inject()
	inject() // NaN repeats every step after the first; still one dump

	dumps := tr.Flight().Dumps()
	if len(dumps) != 1 {
		t.Fatalf("%d dumps, want exactly 1", len(dumps))
	}
	if dumps[0].Kind != "nan_loss" || dumps[0].Path == "" {
		t.Fatalf("dump = %+v", dumps[0])
	}
	if len(dumps[0].Spans) < 64 {
		t.Fatalf("dump retained %d spans, want >= 64", len(dumps[0].Spans))
	}
	found := false
	for _, s := range dumps[0].Spans {
		if s.ID == last.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("triggering span not present in the dump")
	}
}
