package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in registration order: a HELP
// line, a TYPE line, then the series sorted by label signature.
// Histograms expand into cumulative _bucket series (ending with
// le="+Inf"), _sum, and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		r.mu.Lock()
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		ss := make([]*series, len(sigs))
		for i, sig := range sigs {
			ss[i] = f.series[sig]
		}
		r.mu.Unlock()

		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			switch inst := s.inst.(type) {
			case *Counter:
				writeSample(bw, f.name, "", s.sig, "", float64(inst.Value()))
			case *Gauge:
				writeSample(bw, f.name, "", s.sig, "", inst.Value())
			case func() float64:
				writeSample(bw, f.name, "", s.sig, "", inst())
			case *Histogram:
				var cum int64
				for i, bound := range inst.bounds {
					cum += inst.counts[i].Load()
					writeSample(bw, f.name, "_bucket", s.sig,
						`le="`+formatFloat(bound)+`"`, float64(cum))
				}
				// The +Inf bucket equals the total count by construction.
				writeSample(bw, f.name, "_bucket", s.sig, `le="+Inf"`, float64(inst.Count()))
				writeSample(bw, f.name, "_sum", s.sig, "", inst.Sum())
				writeSample(bw, f.name, "_count", s.sig, "", float64(inst.Count()))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one sample line, merging the series' label
// signature with an extra label (the histogram le bound).
func writeSample(w io.Writer, name, suffix, sig, extra string, v float64) {
	labels := sig
	if extra != "" {
		if labels != "" {
			labels += "," + extra
		} else {
			labels = extra
		}
	}
	if labels != "" {
		fmt.Fprintf(w, "%s%s{%s} %s\n", name, suffix, labels, formatFloat(v))
	} else {
		fmt.Fprintf(w, "%s%s %s\n", name, suffix, formatFloat(v))
	}
}

// formatFloat renders a sample value; integral values print without an
// exponent or trailing zeros, and +Inf uses the exposition spelling.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in the Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w)
	})
}

// RegisterGoRuntime adds scrape-time gauges for the Go runtime —
// goroutine count, heap allocated/reserved bytes, GC cycle count and
// cumulative pause time — so /metrics covers process health, not just
// application series. One ReadMemStats snapshot is shared by all the
// memstats-backed gauges per scrape.
func RegisterGoRuntime(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("go_goroutines", "Number of goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	// memStat adapts one MemStats field; the snapshot is re-read at
	// most once per scrape interval (readMemStats caches briefly) so
	// four gauges do not mean four stop-the-world reads per scrape.
	memStat := func(pick func(*runtime.MemStats) float64) func() float64 {
		return func() float64 { return pick(readMemStats()) }
	}
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		memStat(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	r.GaugeFunc("go_memstats_heap_sys_bytes", "Bytes of heap memory obtained from the OS.",
		memStat(func(m *runtime.MemStats) float64 { return float64(m.HeapSys) }))
	r.GaugeFunc("go_gc_cycles_total", "Completed GC cycles.",
		memStat(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
	r.GaugeFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		memStat(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 }))
}

// readMemStats returns a MemStats snapshot at most ~200ms stale, so a
// scrape rendering several memstats gauges pays for one read.
func readMemStats() *runtime.MemStats {
	memMu.Lock()
	defer memMu.Unlock()
	if now := time.Now(); now.Sub(memAt) > 200*time.Millisecond {
		runtime.ReadMemStats(&memSnap)
		memAt = now
	}
	return &memSnap
}

var (
	memMu   sync.Mutex
	memSnap runtime.MemStats
	memAt   time.Time
)
