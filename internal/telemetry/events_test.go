package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// syncBuffer makes bytes.Buffer safe for the concurrent reads the test
// performs after the writers finish; EventLog itself serializes writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestEventLogConcurrentWrites hammers one EventLog from many
// goroutines (run under -race) and checks the output is valid JSONL
// with no interleaved or torn lines: every line parses, every written
// event appears exactly once.
func TestEventLogConcurrentWrites(t *testing.T) {
	var buf syncBuffer
	log := NewEventLog(&buf)

	const writers, events = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				log.Log("tick", map[string]any{
					"writer": w,
					"i":      i,
					// A value with JSON-meaningful characters, so torn
					// lines would break parsing loudly.
					"payload": `{"nested":[1,2,3]}` + strings.Repeat("x", 32),
				})
			}
		}(w)
	}
	wg.Wait()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != writers*events {
		t.Fatalf("got %d lines, want %d", len(lines), writers*events)
	}
	seen := map[string]bool{}
	for n, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON (%v): %q", n, err, line)
		}
		if rec["event"] != "tick" || rec["ts"] == nil {
			t.Fatalf("line %d missing reserved fields: %v", n, rec)
		}
		key := fmt.Sprintf("%v/%v", rec["writer"], rec["i"])
		if seen[key] {
			t.Fatalf("event %s appears twice", key)
		}
		seen[key] = true
	}
}

// TestEventLogNilSafe pins that a nil log accepts writes.
func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Log("x", nil)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
