package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters never decrease
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}

	g := r.Gauge("temp", "temperature")
	g.Set(1.5)
	g.Add(-0.5)
	if g.Value() != 1 {
		t.Fatalf("gauge = %g, want 1", g.Value())
	}
}

func TestGetOrCreateReturnsSameInstrument(t *testing.T) {
	r := New()
	a := r.Counter("hits_total", "h", L("domain", "books"))
	b := r.Counter("hits_total", "h", L("domain", "books"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := r.Counter("hits_total", "h", L("domain", "games"))
	if a == other {
		t.Fatal("different labels returned the same counter")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := New()
	for _, fn := range []func(){
		func() { r.Counter("bad name", "h") },
		func() { r.Counter("ok_total", "h", L("0bad", "v")) },
		func() { r.Histogram("h", "h", []float64{2, 1}) },
		func() { r.Histogram("h2", "h", nil) },
		func() { r.Counter("dup", "h", L("a", "1"), L("a", "2")) },
		func() { r.Histogram("h3", "h", []float64{1}, L("le", "x")) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramObserve(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-105.65) > 1e-9 {
		t.Fatalf("sum = %g, want 105.65", got)
	}
	// Bucket upper bounds are inclusive: 0.1 falls in le="0.1".
	if n := h.counts[0].Load(); n != 2 {
		t.Fatalf("bucket le=0.1 holds %d, want 2 (0.05 and 0.1)", n)
	}
	if n := h.counts[3].Load(); n != 1 {
		t.Fatalf("+Inf overflow holds %d, want 1", n)
	}
}

func TestHistogramBucketMismatchPanics(t *testing.T) {
	r := New()
	r.Histogram("h_seconds", "h", []float64{1, 2})
	// nil buckets reuse the family's bounds.
	if h := r.Histogram("h_seconds", "h", nil); h == nil {
		t.Fatal("nil buckets should reuse the family bounds")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("different buckets should panic")
		}
	}()
	r.Histogram("h_seconds", "h", []float64{1, 3})
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	g := r.Gauge("y", "y")
	h := r.Histogram("z", "z", []float64{1})
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments recorded values")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil registry rendered output")
	}
	var l *EventLog
	l.Log("noop", nil) // must not panic
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInstrumentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h", "h", []float64{0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
				// Concurrent get-or-create against a hot family.
				r.Counter("c_total", "c").Add(0)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d g=%g h=%d", c.Value(), g.Value(), h.Count())
	}
}

func TestEventLogWritesJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.Log("epoch", map[string]any{"epoch": 1, "loss": 0.25})
	l.Log("epoch", map[string]any{"epoch": 2})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if rec["event"] != "epoch" || rec["loss"] != 0.25 || rec["ts"] == nil {
		t.Fatalf("record = %v", rec)
	}
}
