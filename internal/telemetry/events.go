package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// EventLog appends structured training events as JSON Lines, one object
// per line, each stamped with a UTC timestamp and an event name. It is
// safe for concurrent use and nil-receiver-safe, so instrumented code
// can log unconditionally.
type EventLog struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
}

// NewEventLog writes events to w.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{w: w}
}

// OpenEventLog appends events to the file at path, creating it if
// needed.
func OpenEventLog(path string) (*EventLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open event log: %w", err)
	}
	return &EventLog{w: f, closer: f}, nil
}

// Log writes one event line: {"ts":..., "event":name, ...fields}.
// Reserved keys "ts" and "event" in fields are overwritten. Marshal
// failures are silently dropped — telemetry must never take down a
// training run.
func (l *EventLog) Log(name string, fields map[string]any) {
	if l == nil {
		return
	}
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	rec["event"] = name
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(line)
	l.w.Write([]byte{'\n'})
}

// Close closes the underlying file when the log owns one.
func (l *EventLog) Close() error {
	if l == nil || l.closer == nil {
		return nil
	}
	return l.closer.Close()
}
