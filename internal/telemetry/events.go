package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Rotation bounds a file-backed EventLog: when the active file reaches
// MaxBytes the log rotates it to <path>.1 (shifting older segments to
// .2, .3, ...) and starts a fresh file, keeping at most Keep rotated
// segments. Rotation happens only between events, so every segment
// holds whole JSON lines.
type Rotation struct {
	// MaxBytes triggers a rotation once the active file reaches it.
	// Zero or negative disables rotation (the pre-rotation behavior:
	// the file grows without bound).
	MaxBytes int64
	// Keep is how many rotated segments survive; older ones are
	// deleted. Zero or negative means the default of 3.
	Keep int
}

func (p Rotation) withDefaults() Rotation {
	if p.Keep <= 0 {
		p.Keep = 3
	}
	return p
}

// EventLog appends structured training events as JSON Lines, one object
// per line, each stamped with a UTC timestamp and an event name. It is
// safe for concurrent use and nil-receiver-safe, so instrumented code
// can log unconditionally. File-backed logs can rotate by size (see
// Rotation) so long-lived runs do not grow one file without bound.
type EventLog struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer

	// rotation state; zero-valued for writer-backed logs.
	path string
	pol  Rotation
	size int64
}

// NewEventLog writes events to w (never rotates).
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{w: w}
}

// OpenEventLog appends events to the file at path, creating it if
// needed. The file grows without bound; long-lived processes should
// prefer OpenEventLogRotating.
func OpenEventLog(path string) (*EventLog, error) {
	return OpenEventLogRotating(path, Rotation{})
}

// OpenEventLogRotating appends events to the file at path and rotates
// it by size per pol: at MaxBytes the active file becomes <path>.1,
// existing segments shift up, and segments beyond Keep are deleted.
func OpenEventLogRotating(path string, pol Rotation) (*EventLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open event log: %w", err)
	}
	l := &EventLog{w: f, closer: f, path: path, pol: pol.withDefaults()}
	if st, err := f.Stat(); err == nil {
		l.size = st.Size()
	}
	return l, nil
}

// Log writes one event line: {"ts":..., "event":name, ...fields}.
// Reserved keys "ts" and "event" in fields are overwritten. Marshal
// failures are silently dropped — telemetry must never take down a
// training run.
func (l *EventLog) Log(name string, fields map[string]any) {
	if l == nil {
		return
	}
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	rec["event"] = name
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n, _ := l.w.Write(line)
	l.size += int64(n)
	n, _ = l.w.Write([]byte{'\n'})
	l.size += int64(n)
	if l.path != "" && l.pol.MaxBytes > 0 && l.size >= l.pol.MaxBytes {
		l.rotate()
	}
}

// rotate shifts <path>.k to <path>.k+1 for the kept segments, moves the
// active file to <path>.1, and reopens a fresh active file. Callers
// hold mu. Failures leave the log appending to whatever file is open —
// rotation is best-effort, losing events is not an option.
func (l *EventLog) rotate() {
	if l.closer != nil {
		l.closer.Close()
	}
	os.Remove(segmentPath(l.path, l.pol.Keep))
	for k := l.pol.Keep - 1; k >= 1; k-- {
		os.Rename(segmentPath(l.path, k), segmentPath(l.path, k+1))
	}
	os.Rename(l.path, segmentPath(l.path, 1))
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// Reopening the renamed segment keeps events flowing; the next
		// rotation will retry the fresh-file open.
		f, err = os.OpenFile(segmentPath(l.path, 1), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			l.w, l.closer = io.Discard, nil
			return
		}
	}
	l.w, l.closer = f, f
	if st, err := f.Stat(); err == nil {
		l.size = st.Size()
	} else {
		l.size = 0
	}
}

// segmentPath names rotated segment k of an event log.
func segmentPath(path string, k int) string { return fmt.Sprintf("%s.%d", path, k) }

// Close closes the underlying file when the log owns one.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closer == nil {
		return nil
	}
	return l.closer.Close()
}
