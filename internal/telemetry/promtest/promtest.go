// Package promtest validates Prometheus text exposition output the way
// a scraper would. It started life as a private helper inside package
// telemetry's tests; it is its own package so every exposition producer
// in the repo — the per-process /metrics handlers and the fleet
// aggregator's federated rendering — can assert against the same
// line-by-line contract.
package promtest

import (
	"strconv"
	"strings"
	"testing"
)

// Validate checks text line-by-line: HELP immediately before TYPE,
// every sample under a declared family, label escaping well-formed, and
// histogram _bucket/_sum/_count invariants (cumulative non-decreasing
// buckets, +Inf bucket == _count).
func Validate(t testing.TB, text string) {
	t.Helper()
	type fam struct {
		kind     string
		samples  int
		buckets  map[string][]float64 // histogram: series sig -> cumulative counts
		sumCount map[string][2]float64
		infSeen  map[string]float64
	}
	families := map[string]*fam{}
	var lastHelp string
	var current string

	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for ln, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if _, dup := families[name]; dup {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			lastHelp = name
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, kind := parts[0], parts[1]
			if name != lastHelp {
				t.Fatalf("line %d: TYPE %s not preceded by its HELP (last HELP %s)", ln+1, name, lastHelp)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("line %d: unknown kind %q", ln+1, kind)
			}
			families[name] = &fam{kind: kind,
				buckets: map[string][]float64{}, sumCount: map[string][2]float64{}, infSeen: map[string]float64{}}
			current = name
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			name, labels, value := ParseSample(t, ln+1, line)
			base := name
			suffix := ""
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if f, ok := families[strings.TrimSuffix(name, sfx)]; ok && f.kind == "histogram" && strings.HasSuffix(name, sfx) {
					base, suffix = strings.TrimSuffix(name, sfx), sfx
					break
				}
			}
			f, ok := families[base]
			if !ok {
				t.Fatalf("line %d: sample %s before its TYPE", ln+1, name)
			}
			if base != current {
				t.Fatalf("line %d: sample for %s interleaved into family %s", ln+1, base, current)
			}
			if f.kind == "histogram" && suffix == "" {
				t.Fatalf("line %d: bare sample %s for histogram family", ln+1, name)
			}
			f.samples++
			if f.kind != "histogram" {
				continue
			}
			le, sig := SplitLE(labels)
			switch suffix {
			case "_bucket":
				if le == "" {
					t.Fatalf("line %d: bucket without le label", ln+1)
				}
				if le == "+Inf" {
					f.infSeen[sig] = value
					break
				}
				prev := f.buckets[sig]
				if len(prev) > 0 && value < prev[len(prev)-1] {
					t.Fatalf("line %d: bucket counts not cumulative: %v then %g", ln+1, prev, value)
				}
				f.buckets[sig] = append(prev, value)
			case "_sum":
				sc := f.sumCount[sig]
				sc[0] = value
				f.sumCount[sig] = sc
			case "_count":
				sc := f.sumCount[sig]
				sc[1] = value
				f.sumCount[sig] = sc
			}
		}
	}
	for name, f := range families {
		if f.samples == 0 {
			t.Errorf("family %s declared but has no samples", name)
		}
		for sig, inf := range f.infSeen {
			if cum := f.buckets[sig]; len(cum) > 0 && cum[len(cum)-1] > inf {
				t.Errorf("%s{%s}: finite bucket %g exceeds +Inf bucket %g", name, sig, cum[len(cum)-1], inf)
			}
			if sc := f.sumCount[sig]; sc[1] != inf {
				t.Errorf("%s{%s}: _count %g != +Inf bucket %g", name, sig, sc[1], inf)
			}
		}
	}
}

// ParseSample splits `name{labels} value`, checking label quoting.
func ParseSample(t testing.TB, ln int, line string) (name, labels string, value float64) {
	t.Helper()
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			t.Fatalf("line %d: unbalanced braces: %q", ln, line)
		}
		name, labels, rest = line[:i], line[i+1:j], line[j+1:]
		for _, pair := range SplitLabelPairs(labels) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: malformed label pair %q", ln, pair)
			}
			if k == "" {
				t.Fatalf("line %d: empty label name in %q", ln, pair)
			}
			inner := v[1 : len(v)-1]
			for i := 0; i < len(inner); i++ {
				switch inner[i] {
				case '\\':
					if i+1 >= len(inner) || !strings.ContainsRune(`\"n`, rune(inner[i+1])) {
						t.Fatalf("line %d: bad escape in label value %q", ln, inner)
					}
					i++
				case '"', '\n':
					t.Fatalf("line %d: unescaped %q in label value %q", ln, inner[i], inner)
				}
			}
		}
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d: malformed sample %q", ln, line)
		}
		name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(rest, " ")), 64)
	if err != nil && strings.TrimSpace(rest) != "+Inf" {
		t.Fatalf("line %d: bad value in %q: %v", ln, line, err)
	}
	return name, labels, v
}

// SplitLE extracts the le label from a label block, returning its value
// and the remaining pairs as the series signature.
func SplitLE(labels string) (le, sig string) {
	var rest []string
	for _, pair := range SplitLabelPairs(labels) {
		if v, ok := strings.CutPrefix(pair, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		rest = append(rest, pair)
	}
	return le, strings.Join(rest, ",")
}

// SplitLabelPairs splits on commas outside quoted values.
func SplitLabelPairs(s string) []string {
	var out []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(s):
			b.WriteByte(c)
			i++
			b.WriteByte(s[i])
		case c == '"':
			inQuote = !inQuote
			b.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if b.Len() > 0 {
		out = append(out, b.String())
	}
	return out
}
