// Package faultinject is a seeded, schedule-driven fault injector for
// the PS-Worker stack: it decides, per logical operation, whether a
// call should fail, stall, or lose its connection — deterministically,
// so a failing chaos run replays exactly under the same seed and
// schedule.
//
// A schedule is a semicolon-separated list of rules:
//
//	PushDelta:err@5,12; PullRows:delay=20ms@*; conn:drop@30; PullDense:err@p0.05
//
// Each rule names an operation (an RPC method such as PushDelta, or the
// pseudo-operation "conn" for connection-level faults), a fault kind,
// and an occurrence spec:
//
//	kinds:        err            — the call returns an *InjectedError
//	              delay=<dur>    — the call is preceded by a sleep
//	              drop           — the connection is closed before the call
//	              partition=<n>  — this and the next n-1 calls fail at the
//	                               connection level (conn rules only)
//	occurrences:  @5,12          — the 5th and 12th call of that operation
//	              @*             — every call
//	              @p0.05         — each call independently with p=0.05,
//	                               drawn from the injector's seeded RNG
//
// Faults surface to the caller as a Fault value; the transport (the
// ps RPC client, or ps.FaultyStore for in-process stores) applies it.
// Non-transport callers use Fault.Apply. The serving fleet evaluates
// the same grammar under its own operation names: "Predict" (a slow or
// failing model replica), "PublishSource" (reading a snapshot for
// /admin/publish), and "UpstreamPing"/"UpstreamSnapshot" (the serve→PS
// circuit-breaker path).
// Every injected fault is tallied per (op, kind), optionally mirrored
// into a telemetry registry, so flight-recorder dumps and dashboards
// can tell injected failures from organic ones.
//
// Determinism: one injector evaluated from a single goroutine replays
// identically under a fixed seed. An injector shared across goroutines
// is safe (counters and RNG are lock-guarded) but the interleaving of
// callers decides which caller observes which occurrence — for
// deterministic multi-worker chaos, give each worker its own injector
// (e.g. seeded seed+workerID).
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mamdr/internal/telemetry"
)

// Kind classifies an injected fault.
type Kind string

// The supported fault kinds.
const (
	KindErr       Kind = "err"
	KindDelay     Kind = "delay"
	KindDrop      Kind = "drop"
	KindPartition Kind = "partition"
)

// InjectedError is the error returned by calls the injector fails. It
// is distinguishable from organic transport errors (errors.As), so the
// retry layer treats it as transient and telemetry can attribute it.
type InjectedError struct {
	Op   string
	Kind Kind
	// Call is the 1-based per-op call index the fault fired on.
	Call int64
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected %s on %s (call %d)", e.Kind, e.Op, e.Call)
}

// Fault is the injector's verdict for one call. The zero Fault means
// "proceed untouched". Delay applies first, then DropConn, then Err
// (an Err fault means the call must not be performed at all).
type Fault struct {
	Err      error
	Delay    time.Duration
	DropConn bool
}

// Apply enforces the verdict in order for callers that are not a
// transport: sleep the Delay (abandoned early with ctx.Err() if the
// context dies first), then return the Err, treating DropConn as an
// error too — a caller with no connection to drop still must not
// proceed. A nil ctx means no cancellation. This is how non-RPC code
// paths (the serving pool, publish sources, upstream probes) consume
// the same schedule grammar the PS transport does.
func (f Fault) Apply(ctx context.Context) error {
	if f.Delay > 0 {
		if ctx == nil {
			time.Sleep(f.Delay)
		} else {
			t := time.NewTimer(f.Delay)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
			}
		}
	}
	if f.Err != nil {
		return f.Err
	}
	if f.DropConn {
		return &InjectedError{Op: "conn", Kind: KindDrop}
	}
	return nil
}

// rule is one parsed schedule entry.
type rule struct {
	op    string
	kind  Kind
	delay time.Duration
	partN int64
	every bool
	prob  float64
	at    map[int64]bool
}

func (r rule) matches(call int64, rng *rand.Rand) bool {
	switch {
	case r.every:
		return true
	case r.prob > 0:
		return rng.Float64() < r.prob
	default:
		return r.at[call]
	}
}

// Injector evaluates a parsed schedule. All methods are safe for
// concurrent use; see the package comment for what concurrency does to
// determinism.
type Injector struct {
	schedule string
	seed     int64

	mu            sync.Mutex
	rng           *rand.Rand
	rules         map[string][]rule
	calls         map[string]int64
	partitionLeft int64
	counts        map[string]int64

	reg      *telemetry.Registry
	counters map[string]*telemetry.Counter
}

// Parse compiles a schedule (see the package comment for the grammar)
// into an injector whose probabilistic decisions are driven by seed.
// An empty schedule yields a valid injector that never injects.
func Parse(schedule string, seed int64) (*Injector, error) {
	in := &Injector{
		schedule: schedule,
		seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
		rules:    map[string][]rule{},
		calls:    map[string]int64{},
		counts:   map[string]int64{},
	}
	for _, raw := range strings.Split(schedule, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		r, err := parseRule(raw)
		if err != nil {
			return nil, err
		}
		if r.kind == KindPartition && r.op != "conn" {
			return nil, fmt.Errorf("faultinject: %q: partition faults apply to the conn pseudo-op only", raw)
		}
		in.rules[r.op] = append(in.rules[r.op], r)
	}
	return in, nil
}

// MustParse is Parse for static schedules; it panics on a bad one.
func MustParse(schedule string, seed int64) *Injector {
	in, err := Parse(schedule, seed)
	if err != nil {
		panic(err)
	}
	return in
}

func parseRule(raw string) (rule, error) {
	opRest := strings.SplitN(raw, ":", 2)
	if len(opRest) != 2 || strings.TrimSpace(opRest[0]) == "" {
		return rule{}, fmt.Errorf("faultinject: rule %q: want op:fault@occurrences", raw)
	}
	faultOcc := strings.SplitN(opRest[1], "@", 2)
	if len(faultOcc) != 2 {
		return rule{}, fmt.Errorf("faultinject: rule %q: missing @occurrences", raw)
	}
	r := rule{op: strings.TrimSpace(opRest[0])}

	fault := strings.TrimSpace(faultOcc[0])
	switch {
	case fault == "err":
		r.kind = KindErr
	case fault == "drop":
		r.kind = KindDrop
	case strings.HasPrefix(fault, "delay="):
		d, err := time.ParseDuration(fault[len("delay="):])
		if err != nil || d < 0 {
			return rule{}, fmt.Errorf("faultinject: rule %q: bad delay %q", raw, fault)
		}
		r.kind, r.delay = KindDelay, d
	case strings.HasPrefix(fault, "partition="):
		n, err := strconv.ParseInt(fault[len("partition="):], 10, 64)
		if err != nil || n < 1 {
			return rule{}, fmt.Errorf("faultinject: rule %q: bad partition length %q", raw, fault)
		}
		r.kind, r.partN = KindPartition, n
	default:
		return rule{}, fmt.Errorf("faultinject: rule %q: unknown fault %q (want err, drop, delay=<dur>, partition=<n>)", raw, fault)
	}

	occ := strings.TrimSpace(faultOcc[1])
	switch {
	case occ == "*":
		r.every = true
	case strings.HasPrefix(occ, "p"):
		p, err := strconv.ParseFloat(occ[1:], 64)
		if err != nil || p <= 0 || p > 1 {
			return rule{}, fmt.Errorf("faultinject: rule %q: bad probability %q", raw, occ)
		}
		r.prob = p
	default:
		r.at = map[int64]bool{}
		for _, part := range strings.Split(occ, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil || n < 1 {
				return rule{}, fmt.Errorf("faultinject: rule %q: bad call index %q (1-based)", raw, part)
			}
			r.at[n] = true
		}
	}
	return r, nil
}

// BindMetrics mirrors every injection into reg as
// mamdr_fault_injected_total{op,kind} counters. Bind before evaluating.
func (in *Injector) BindMetrics(reg *telemetry.Registry) {
	if in == nil || reg == nil {
		return
	}
	in.mu.Lock()
	in.reg = reg
	in.counters = map[string]*telemetry.Counter{}
	in.mu.Unlock()
}

// Eval advances the call clock for op (and the conn pseudo-op) and
// returns the fault, if any, to apply to this call. A nil injector
// never injects.
func (in *Injector) Eval(op string) Fault {
	if in == nil {
		return Fault{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()

	var f Fault

	// Connection-level rules tick on every call, whatever the method.
	connCall := in.calls["conn"] + 1
	in.calls["conn"] = connCall
	if in.partitionLeft > 0 {
		in.partitionLeft--
		f.DropConn = true
		f.Err = &InjectedError{Op: "conn", Kind: KindPartition, Call: connCall}
		in.countLocked("conn", KindPartition)
	}
	for _, r := range in.rules["conn"] {
		if !r.matches(connCall, in.rng) {
			continue
		}
		switch r.kind {
		case KindDrop:
			f.DropConn = true
			in.countLocked("conn", KindDrop)
		case KindErr:
			f.Err = &InjectedError{Op: "conn", Kind: KindErr, Call: connCall}
			in.countLocked("conn", KindErr)
		case KindDelay:
			f.Delay += r.delay
			in.countLocked("conn", KindDelay)
		case KindPartition:
			// This call and the next partN-1 fail at the connection level.
			f.DropConn = true
			f.Err = &InjectedError{Op: "conn", Kind: KindPartition, Call: connCall}
			in.partitionLeft = r.partN - 1
			in.countLocked("conn", KindPartition)
		}
	}

	// Per-method rules.
	call := in.calls[op] + 1
	in.calls[op] = call
	for _, r := range in.rules[op] {
		if !r.matches(call, in.rng) {
			continue
		}
		switch r.kind {
		case KindErr:
			f.Err = &InjectedError{Op: op, Kind: KindErr, Call: call}
		case KindDelay:
			f.Delay += r.delay
		case KindDrop:
			f.DropConn = true
		}
		in.countLocked(op, r.kind)
	}
	return f
}

// countLocked tallies one injection. Callers hold mu.
func (in *Injector) countLocked(op string, kind Kind) {
	key := op + ":" + string(kind)
	in.counts[key]++
	if in.reg == nil {
		return
	}
	c, ok := in.counters[key]
	if !ok {
		c = in.reg.Counter("mamdr_fault_injected_total",
			"Faults injected by the faultinject schedule, by operation and kind.",
			telemetry.L("op", op), telemetry.L("kind", string(kind)))
		in.counters[key] = c
	}
	c.Inc()
}

// Counts returns a snapshot of injected-fault tallies keyed "op:kind".
func (in *Injector) Counts() map[string]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Schedule returns the schedule string the injector was parsed from.
func (in *Injector) Schedule() string {
	if in == nil {
		return ""
	}
	return in.schedule
}

// Seed returns the seed driving the injector's probabilistic rules.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// String summarizes the injector for logs and flight-recorder dumps.
func (in *Injector) String() string {
	if in == nil {
		return "faultinject(off)"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	keys := make([]string, 0, len(in.counts))
	for k := range in.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "faultinject(seed=%d, schedule=%q", in.seed, in.schedule)
	for _, k := range keys {
		fmt.Fprintf(&b, ", %s=%d", k, in.counts[k])
	}
	b.WriteString(")")
	return b.String()
}
