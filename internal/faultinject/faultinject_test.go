package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mamdr/internal/telemetry"
)

func TestParseErrors(t *testing.T) {
	bad := []string{
		"PushDelta",               // no fault
		"PushDelta:err",           // no occurrences
		":err@1",                  // no op
		"PushDelta:explode@1",     // unknown kind
		"PushDelta:err@0",         // indices are 1-based
		"PushDelta:err@p1.5",      // probability out of range
		"PushDelta:delay=xx@1",    // bad duration
		"conn:partition=0@1",      // partition length must be >= 1
		"PushDelta:partition=3@1", // partitions are conn-only
	}
	for _, s := range bad {
		if _, err := Parse(s, 1); err == nil {
			t.Errorf("Parse(%q) accepted a bad schedule", s)
		}
	}
	if _, err := Parse("", 1); err != nil {
		t.Fatalf("empty schedule rejected: %v", err)
	}
}

func TestIndexedOccurrences(t *testing.T) {
	in := MustParse("PushDelta:err@2,4", 1)
	var failed []int
	for call := 1; call <= 5; call++ {
		if f := in.Eval("PushDelta"); f.Err != nil {
			failed = append(failed, call)
			var ie *InjectedError
			if !errors.As(f.Err, &ie) || ie.Op != "PushDelta" || ie.Kind != KindErr {
				t.Fatalf("unexpected error shape: %v", f.Err)
			}
		}
	}
	if len(failed) != 2 || failed[0] != 2 || failed[1] != 4 {
		t.Fatalf("faults fired on calls %v, want [2 4]", failed)
	}
	if got := in.Counts()["PushDelta:err"]; got != 2 {
		t.Fatalf("counts = %d, want 2", got)
	}
}

func TestEveryAndDelay(t *testing.T) {
	in := MustParse("PullRows:delay=20ms@*", 1)
	for call := 0; call < 3; call++ {
		if f := in.Eval("PullRows"); f.Delay != 20*time.Millisecond || f.Err != nil {
			t.Fatalf("call %d: fault = %+v", call, f)
		}
	}
	// Other ops are untouched.
	if f := in.Eval("PullDense"); f.Delay != 0 || f.Err != nil {
		t.Fatalf("PullDense got fault %+v", f)
	}
}

func TestProbabilisticRulesAreSeedDeterministic(t *testing.T) {
	decide := func(seed int64) []bool {
		in := MustParse("PullDense:err@p0.3", seed)
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Eval("PullDense").Err != nil
		}
		return out
	}
	a, b := decide(7), decide(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := decide(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decisions (suspicious)")
	}
	var fired int
	for _, v := range a {
		if v {
			fired++
		}
	}
	if fired < 30 || fired > 90 {
		t.Fatalf("p=0.3 over 200 calls fired %d times", fired)
	}
}

func TestConnDropAndPartition(t *testing.T) {
	// The conn clock ticks once per Eval, whatever the method.
	in := MustParse("conn:drop@2; conn:partition=3@5", 1)
	type verdict struct {
		drop bool
		err  bool
	}
	var got []verdict
	methods := []string{"PullDense", "PushDelta", "PullRows", "PullDense", "PushDelta", "PullRows", "PullDense", "PushDelta"}
	for _, m := range methods {
		f := in.Eval(m)
		got = append(got, verdict{f.DropConn, f.Err != nil})
	}
	want := []verdict{
		{false, false},
		{true, false}, // drop@2
		{false, false},
		{false, false},
		{true, true}, // partition starts at conn call 5
		{true, true},
		{true, true}, // ...and covers 3 calls
		{false, false},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d: got %+v, want %+v (all: %+v)", i+1, got[i], want[i], got)
		}
	}
	if in.Counts()["conn:partition"] != 3 || in.Counts()["conn:drop"] != 1 {
		t.Fatalf("counts = %v", in.Counts())
	}
}

func TestNilInjectorNeverInjects(t *testing.T) {
	var in *Injector
	if f := in.Eval("PushDelta"); f.Err != nil || f.Delay != 0 || f.DropConn {
		t.Fatalf("nil injector injected %+v", f)
	}
	if in.Counts() != nil || in.Schedule() != "" {
		t.Fatal("nil injector leaked state")
	}
	_ = in.String()
}

func TestTelemetryBinding(t *testing.T) {
	reg := telemetry.New()
	in := MustParse("PushDelta:err@1,2", 3)
	in.BindMetrics(reg)
	in.Eval("PushDelta")
	in.Eval("PushDelta")
	in.Eval("PushDelta")
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "mamdr_fault_injected_total") || !strings.Contains(text, `op="PushDelta"`) {
		t.Fatalf("exposition missing injected counter:\n%s", text)
	}
}
