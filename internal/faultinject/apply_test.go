package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestApplyEnforcesVerdicts covers the non-transport consumption path
// the serving fleet uses: the zero Fault is a no-op, an err verdict
// surfaces as the InjectedError, a drop with no connection to drop
// still blocks the call, and a delay honors context cancellation
// instead of sleeping through a caller's deadline.
func TestApplyEnforcesVerdicts(t *testing.T) {
	if err := (Fault{}).Apply(context.Background()); err != nil {
		t.Fatalf("zero fault: %v", err)
	}
	if err := (Fault{}).Apply(nil); err != nil {
		t.Fatalf("zero fault, nil ctx: %v", err)
	}

	in := MustParse("Predict:err@1", 1)
	err := in.Eval("Predict").Apply(context.Background())
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Op != "Predict" || inj.Kind != KindErr {
		t.Fatalf("err verdict: %v", err)
	}

	err = (Fault{DropConn: true}).Apply(context.Background())
	if !errors.As(err, &inj) || inj.Kind != KindDrop {
		t.Fatalf("drop verdict: %v", err)
	}

	// A delayed err sleeps, then fails.
	start := time.Now()
	err = (Fault{Delay: 5 * time.Millisecond, Err: &InjectedError{Op: "x", Kind: KindErr}}).Apply(context.Background())
	if errors.As(err, &inj); inj == nil || time.Since(start) < 5*time.Millisecond {
		t.Fatalf("delayed err: err=%v elapsed=%v", err, time.Since(start))
	}

	// A dead context aborts the sleep with the context's error, not the
	// injected one.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start = time.Now()
	err = (Fault{Delay: 10 * time.Second, Err: &InjectedError{Op: "x", Kind: KindErr}}).Apply(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled delay: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("cancelled delay slept %v", time.Since(start))
	}
}
