package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collectRuns wires a coalescer whose Run resolves every item with its
// batch's (index, position) and records each flushed batch.
type runRecorder struct {
	mu      sync.Mutex
	batches [][]*Item
	keys    []int
}

func (r *runRecorder) run(key int, items []*Item) {
	r.mu.Lock()
	r.batches = append(r.batches, items)
	r.keys = append(r.keys, key)
	r.mu.Unlock()
	for i, it := range items {
		it.Resolve(i)
	}
}

func (r *runRecorder) snapshot() ([][]*Item, []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]*Item(nil), r.batches...), append([]int(nil), r.keys...)
}

func await(t *testing.T, it *Item) Result {
	t.Helper()
	select {
	case res := <-it.Result():
		return res
	case <-time.After(5 * time.Second):
		t.Fatal("item never resolved")
		return Result{}
	}
}

func TestFlushOnFull(t *testing.T) {
	rec := &runRecorder{}
	c := New(Options{MaxRows: 4, Linger: time.Hour, Run: rec.run})
	var items []*Item
	for i := 0; i < 4; i++ {
		it := NewItem(context.Background(), 1, i)
		items = append(items, it)
		if err := c.Submit(7, it); err != nil {
			t.Fatal(err)
		}
	}
	for pos, it := range items {
		if res := await(t, it); res.Err != nil || res.Value.(int) != pos {
			t.Fatalf("item %d resolved to %+v", pos, res)
		}
	}
	batches, keys := rec.snapshot()
	if len(batches) != 1 || len(batches[0]) != 4 || keys[0] != 7 {
		t.Fatalf("got %d batches (first len %d, key %d), want one 4-item batch under key 7",
			len(batches), len(batches[0]), keys[0])
	}
}

func TestFlushOnLinger(t *testing.T) {
	rec := &runRecorder{}
	c := New(Options{MaxRows: 1024, Linger: 5 * time.Millisecond, Run: rec.run})
	it := NewItem(context.Background(), 3, nil)
	if err := c.Submit(0, it); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	await(t, it)
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("linger flush took %v", waited)
	}
	batches, _ := rec.snapshot()
	if len(batches) != 1 || len(batches[0]) != 1 {
		t.Fatalf("batches = %v", batches)
	}
}

// TestNeverSplitsAnItem: an item that would overflow the open batch
// flushes the batch first and starts the next one — no item's rows are
// ever spread over two Run calls.
func TestNeverSplitsAnItem(t *testing.T) {
	rec := &runRecorder{}
	c := New(Options{MaxRows: 8, Linger: time.Hour, Run: rec.run})
	a := NewItem(context.Background(), 5, "a")
	b := NewItem(context.Background(), 6, "b") // 5+6 > 8: must not join a's batch
	if err := c.Submit(1, a); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(1, b); err != nil {
		t.Fatal(err)
	}
	await(t, a)
	c.Close()
	await(t, b)
	batches, _ := rec.snapshot()
	if len(batches) != 2 || len(batches[0]) != 1 || len(batches[1]) != 1 {
		t.Fatalf("batches = %d (sizes %v), want two singleton batches", len(batches), batches)
	}
}

// TestOversizeItemFlushesAlone: a single item at or past MaxRows forms
// its own batch immediately.
func TestOversizeItemFlushesAlone(t *testing.T) {
	rec := &runRecorder{}
	c := New(Options{MaxRows: 8, Linger: time.Hour, Run: rec.run})
	it := NewItem(context.Background(), 100, nil)
	if err := c.Submit(0, it); err != nil {
		t.Fatal(err)
	}
	await(t, it)
}

func TestKeysDoNotMix(t *testing.T) {
	rec := &runRecorder{}
	c := New(Options{MaxRows: 2, Linger: time.Hour, Run: rec.run})
	for key := 0; key < 3; key++ {
		for i := 0; i < 2; i++ {
			if err := c.Submit(key, NewItem(context.Background(), 1, key)); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		batches, keys := rec.snapshot()
		if len(batches) == 3 {
			for i, b := range batches {
				for _, it := range b {
					if it.Data.(int) != keys[i] {
						t.Fatalf("batch %d (key %d) carries item of key %d", i, keys[i], it.Data)
					}
				}
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("only %d batches flushed", len(batches))
		case <-time.After(time.Millisecond):
		}
	}
}

func TestCloseFlushesAndRejects(t *testing.T) {
	rec := &runRecorder{}
	c := New(Options{MaxRows: 64, Linger: time.Hour, Run: rec.run})
	it := NewItem(context.Background(), 1, nil)
	if err := c.Submit(0, it); err != nil {
		t.Fatal(err)
	}
	c.Close()
	await(t, it)
	if err := c.Submit(0, NewItem(context.Background(), 1, nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	c.Close() // idempotent
}

func TestFailPropagates(t *testing.T) {
	boom := errors.New("boom")
	c := New(Options{MaxRows: 1, Run: func(_ int, items []*Item) {
		for _, it := range items {
			it.Fail(boom)
		}
	}})
	it := NewItem(context.Background(), 1, nil)
	if err := c.Submit(0, it); err != nil {
		t.Fatal(err)
	}
	if res := await(t, it); !errors.Is(res.Err, boom) {
		t.Fatalf("res = %+v, want boom", res)
	}
}

func TestOnFlushObservesReasons(t *testing.T) {
	var mu sync.Mutex
	reasons := map[string]int{}
	rec := &runRecorder{}
	c := New(Options{
		MaxRows: 2, Linger: 2 * time.Millisecond, Run: rec.run,
		OnFlush: func(_, requests, rows int, waited time.Duration, reason string) {
			mu.Lock()
			reasons[reason]++
			mu.Unlock()
			if requests < 1 || rows < requests || waited < 0 {
				t.Errorf("OnFlush(%d, %d, %v, %s)", requests, rows, waited, reason)
			}
		},
	})
	full := []*Item{NewItem(context.Background(), 1, nil), NewItem(context.Background(), 1, nil)}
	for _, it := range full {
		if err := c.Submit(0, it); err != nil {
			t.Fatal(err)
		}
	}
	lone := NewItem(context.Background(), 1, nil)
	if err := c.Submit(0, lone); err != nil {
		t.Fatal(err)
	}
	for _, it := range append(full, lone) {
		await(t, it)
	}
	mu.Lock()
	defer mu.Unlock()
	if reasons["full"] != 1 || reasons["linger"] != 1 {
		t.Fatalf("reasons = %v, want one full + one linger", reasons)
	}
}

// TestConcurrentSubmitters hammers one key from many goroutines under
// -race: every item resolves exactly once, total rows conserved, and
// no batch exceeds MaxRows (items are all 1-row here).
func TestConcurrentSubmitters(t *testing.T) {
	const submitters, perSubmitter, maxRows = 8, 200, 16
	var resolved atomic.Int64
	c := New(Options{
		MaxRows: maxRows, Linger: 100 * time.Microsecond,
		Run: func(_ int, items []*Item) {
			rows := 0
			for _, it := range items {
				rows += it.Rows
			}
			if rows > maxRows {
				t.Errorf("batch of %d rows exceeds max %d", rows, maxRows)
			}
			for _, it := range items {
				it.Resolve(nil)
			}
		},
	})
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				it := NewItem(context.Background(), 1, nil)
				if err := c.Submit(0, it); err != nil {
					t.Error(err)
					return
				}
				res := <-it.Result()
				if res.Err != nil {
					t.Error(res.Err)
					return
				}
				resolved.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := resolved.Load(); got != submitters*perSubmitter {
		t.Fatalf("resolved %d items, want %d", got, submitters*perSubmitter)
	}
}

// TestBatchingActuallyHappens: with concurrent submitters and a
// generous linger, at least one multi-request batch must form —
// otherwise the coalescer is a very elaborate pass-through.
func TestBatchingActuallyHappens(t *testing.T) {
	var maxBatch atomic.Int64
	c := New(Options{
		MaxRows: 64, Linger: 20 * time.Millisecond,
		Run: func(_ int, items []*Item) {
			if n := int64(len(items)); n > maxBatch.Load() {
				maxBatch.Store(n)
			}
			for _, it := range items {
				it.Resolve(nil)
			}
		},
	})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			it := NewItem(context.Background(), 1, nil)
			if err := c.Submit(0, it); err != nil {
				t.Error(err)
				return
			}
			<-it.Result()
		}()
	}
	wg.Wait()
	if maxBatch.Load() < 2 {
		t.Fatalf("largest batch = %d, want >= 2", maxBatch.Load())
	}
}

func ExampleCoalescer() {
	c := New(Options{
		MaxRows: 2, Linger: time.Millisecond,
		Run: func(key int, items []*Item) {
			for _, it := range items {
				it.Resolve(fmt.Sprintf("key %d, %d rows", key, it.Rows))
			}
		},
	})
	it := NewItem(context.Background(), 2, nil)
	c.Submit(5, it)
	res := <-it.Result()
	fmt.Println(res.Value)
	// Output: key 5, 2 rows
}
