// Package batch coalesces concurrent requests into micro-batches — the
// serving-side execution shape production CTR systems use to amortize
// per-request forward-pass overhead. Callers submit items keyed by an
// integer (the serving layer keys by domain); the coalescer gathers
// items for the same key until either the batch is full (MaxRows) or
// the oldest item has lingered long enough (Linger), then hands the
// whole group to the Run callback on a fresh goroutine. A batch of B
// single-row requests thus becomes one B-row forward through the
// blocked GEMM kernels instead of B one-row passes.
//
// Two invariants shape the flush policy:
//
//   - an item is never split across batches: a request's rows always
//     score in one forward, so its scores come from one snapshot;
//   - flush-on-full takes precedence over linger: under saturating
//     traffic the linger timer never fires and adds zero latency, so
//     the configured linger bounds only the *idle-tail* delay of the
//     last stragglers.
package batch

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrClosed rejects submissions after Close.
var ErrClosed = errors.New("batch: coalescer closed")

// Item is one request riding a batch. Rows is its row count (the
// serving layer's user-item pairs); Data carries the caller's payload
// through to Run untouched.
type Item struct {
	// Ctx is the submitting request's context. The coalescer itself
	// never blocks on it, but Run callbacks should drop items whose
	// context has expired before doing work on their behalf.
	Ctx  context.Context
	Rows int
	Data any

	res chan Result
}

// Result is what an Item resolves to.
type Result struct {
	Value any
	Err   error
}

// NewItem builds a submittable item. The result channel is buffered so
// Resolve/Fail never block even if the submitter has given up waiting.
func NewItem(ctx context.Context, rows int, data any) *Item {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Item{Ctx: ctx, Rows: rows, Data: data, res: make(chan Result, 1)}
}

// Result returns the channel the item's outcome arrives on.
func (it *Item) Result() <-chan Result { return it.res }

// Resolve delivers the item's value. Exactly one of Resolve/Fail may
// be called, once, by the Run callback.
func (it *Item) Resolve(v any) { it.res <- Result{Value: v} }

// Fail delivers an error instead.
func (it *Item) Fail(err error) { it.res <- Result{Err: err} }

// Options configures a Coalescer.
type Options struct {
	// MaxRows flushes a batch as soon as its accumulated row count
	// reaches this bound (minimum 1). A single item with Rows >= MaxRows
	// flushes alone — items are never split.
	MaxRows int
	// Linger flushes a non-empty batch this long after its first item
	// arrived, bounding the latency a lone request pays waiting for
	// batchmates. Zero or negative lingers still work: the timer fires
	// on the next scheduler tick, degenerating to per-arrival flushes.
	Linger time.Duration
	// Run executes one flushed batch. It is called on a fresh goroutine
	// (never on a submitter's) and must Resolve or Fail every item.
	Run func(key int, items []*Item)
	// OnFlush, when non-nil, observes every flush for telemetry:
	// request count, total rows, how long the oldest item waited, and
	// the trigger ("full", "linger", "close").
	OnFlush func(key int, requests, rows int, waited time.Duration, reason string)
}

// Coalescer gathers items into per-key micro-batches. Safe for
// concurrent use.
type Coalescer struct {
	opts Options

	mu     sync.Mutex
	queues map[int]*queue
	closed bool
}

// queue is the open batch for one key. gen guards the linger timer: a
// flush bumps it, so a timer armed for a batch that already flushed
// finds a stale generation and does nothing.
type queue struct {
	items []*Item
	rows  int
	since time.Time
	gen   uint64
}

// New builds a coalescer. Run is required.
func New(opts Options) *Coalescer {
	if opts.Run == nil {
		panic("batch: Options.Run is required")
	}
	if opts.MaxRows < 1 {
		opts.MaxRows = 1
	}
	return &Coalescer{opts: opts, queues: make(map[int]*queue)}
}

// Submit enqueues an item under key. It returns immediately; the
// caller waits on item.Result(). Submissions after Close fail.
func (c *Coalescer) Submit(key int, it *Item) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	q := c.queues[key]
	if q == nil {
		q = &queue{}
		c.queues[key] = q
	}
	// Never split an item: if it doesn't fit the open batch, flush the
	// batch first and start a fresh one with this item.
	if q.rows > 0 && q.rows+it.Rows > c.opts.MaxRows {
		c.flushLocked(key, q, "full")
	}
	if len(q.items) == 0 {
		q.since = time.Now()
		c.armLinger(key, q.gen)
	}
	q.items = append(q.items, it)
	q.rows += it.Rows
	if q.rows >= c.opts.MaxRows {
		c.flushLocked(key, q, "full")
	}
	c.mu.Unlock()
	return nil
}

// armLinger schedules the linger flush for the batch generation that
// is open right now.
func (c *Coalescer) armLinger(key int, gen uint64) {
	linger := c.opts.Linger
	if linger < 0 {
		linger = 0
	}
	time.AfterFunc(linger, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		q := c.queues[key]
		if q == nil || q.gen != gen || len(q.items) == 0 {
			return // that batch already flushed (full or close)
		}
		c.flushLocked(key, q, "linger")
	})
}

// flushLocked detaches the open batch and dispatches it. Caller holds
// c.mu.
func (c *Coalescer) flushLocked(key int, q *queue, reason string) {
	items, rows, since := q.items, q.rows, q.since
	q.items, q.rows = nil, 0
	q.gen++
	if len(items) == 0 {
		return
	}
	if c.opts.OnFlush != nil {
		c.opts.OnFlush(key, len(items), rows, time.Since(since), reason)
	}
	go c.opts.Run(key, items)
}

// Close flushes every open batch and rejects further submissions.
// In-flight Run callbacks keep running; Close does not wait for them.
func (c *Coalescer) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for key, q := range c.queues {
		c.flushLocked(key, q, "close")
	}
}
