// Package quant compresses serving-snapshot embedding tables with an
// int8 symmetric-per-row codec — the serving twin of MAMDR §IV-E's
// static/dynamic embedding cache. A published snapshot's embedding
// rows are read-only and Zipf-skewed: a handful of hot users and items
// dominate traffic while the long tail sits cold in memory. Storing
// the tables as int8 with one float32 scale per row cuts the resident
// bytes per row from 8·cols to cols+4 (~7.8× at cols=32), and a small
// LRU over the dequantized hot rows (RowCache) keeps the head of the
// distribution served at float speed.
//
// The codec is symmetric (no zero point): scale_r = maxAbs(row_r)/127,
// q = round(x/scale), x̂ = float64(q)·float64(scale). Per-row scaling
// matters because embedding row norms spread over orders of magnitude
// — a per-table scale would crush the small rows to zero. The maximum
// reconstruction error is scale/2 per element, which the codec's tests
// pin and the serve-level AUC-delta experiment (EXPERIMENTS.md) shows
// is invisible at ranking granularity.
package quant

import (
	"fmt"
	"math"

	"mamdr/internal/autograd/kernels"
)

// Table is one quantized embedding table: Rows×Cols int8 codes plus a
// float32 scale per row. It is immutable after Quantize and safe for
// concurrent readers.
type Table struct {
	Rows, Cols int
	// Scales[r] reconstructs row r: x̂ = float64(code)·float64(Scales[r]).
	Scales []float32
	// Data holds Rows*Cols codes in row-major order.
	Data []int8
}

// Quantize encodes a rows×cols row-major float64 table. An all-zero
// row gets scale 0 and decodes to exact zeros.
func Quantize(data []float64, rows, cols int) *Table {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("quant: %d values for %d×%d table", len(data), rows, cols))
	}
	t := &Table{
		Rows: rows, Cols: cols,
		Scales: make([]float32, rows),
		Data:   make([]int8, rows*cols),
	}
	for r := 0; r < rows; r++ {
		row := data[r*cols : (r+1)*cols]
		var maxAbs float64
		for _, v := range row {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue // scale 0, codes 0
		}
		// The scale is stored as float32 and the encoder divides by the
		// *stored* value, so encode and decode agree on the same grid.
		scale := float32(maxAbs / 127)
		t.Scales[r] = scale
		inv := 1 / float64(scale)
		out := t.Data[r*cols : (r+1)*cols]
		for i, v := range row {
			q := math.RoundToEven(v * inv)
			if q > 127 {
				q = 127
			} else if q < -127 {
				q = -127
			}
			out[i] = int8(q)
		}
	}
	return t
}

// Row dequantizes row r into dst (len ≥ Cols).
func (t *Table) Row(r int, dst []float64) {
	kernels.DequantRowTo(dst[:t.Cols], t.Data[r*t.Cols:(r+1)*t.Cols], t.Scales[r])
}

// Dequantize reconstructs the whole table into a fresh float64 slice —
// the offline path the AUC-tradeoff experiment uses; serving goes
// row-wise through the cache instead.
func (t *Table) Dequantize() []float64 {
	out := make([]float64, t.Rows*t.Cols)
	for r := 0; r < t.Rows; r++ {
		t.Row(r, out[r*t.Cols:(r+1)*t.Cols])
	}
	return out
}

// BytesPerRow is the resident size of one quantized row: Cols codes
// plus the float32 scale.
func (t *Table) BytesPerRow() int { return t.Cols + 4 }

// Float64BytesPerRow is the uncompressed size for comparison.
func (t *Table) Float64BytesPerRow() int { return 8 * t.Cols }

// MaxError returns the codec's worst-case reconstruction error for row
// r: half a quantization step.
func (t *Table) MaxError(r int) float64 { return float64(t.Scales[r]) / 2 }
