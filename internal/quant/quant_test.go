package quant

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func randTable(rows, cols int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		// Spread row norms over orders of magnitude, like trained
		// embedding tables do.
		norm := math.Pow(10, rng.Float64()*4-2)
		for c := 0; c < cols; c++ {
			data[r*cols+c] = rng.NormFloat64() * norm
		}
	}
	return data
}

func TestRoundTripErrorBound(t *testing.T) {
	const rows, cols = 64, 16
	data := randTable(rows, cols, 3)
	tbl := Quantize(data, rows, cols)
	dec := tbl.Dequantize()
	for r := 0; r < rows; r++ {
		bound := tbl.MaxError(r) * 1.0000001 // float32 scale storage slack
		for c := 0; c < cols; c++ {
			got, want := dec[r*cols+c], data[r*cols+c]
			if err := math.Abs(got - want); err > bound {
				t.Fatalf("row %d col %d: |%g-%g| = %g > scale/2 = %g", r, c, got, want, err, bound)
			}
		}
	}
}

func TestZeroRow(t *testing.T) {
	data := make([]float64, 2*4)
	data[4], data[5], data[6], data[7] = 1, -2, 3, -4
	tbl := Quantize(data, 2, 4)
	if tbl.Scales[0] != 0 {
		t.Fatalf("zero row scale = %g, want 0", tbl.Scales[0])
	}
	row := make([]float64, 4)
	tbl.Row(0, row)
	for i, v := range row {
		if v != 0 {
			t.Fatalf("zero row decoded [%d] = %g", i, v)
		}
	}
	tbl.Row(1, row)
	// The maxAbs element decodes to ±127·scale — exact up to the float32
	// rounding of the stored scale.
	if math.Abs(row[3]+4) > 1e-6 {
		t.Fatalf("maxAbs element decoded %g, want ≈ -4", row[3])
	}
}

func TestCodesStayInRange(t *testing.T) {
	data := randTable(32, 8, 9)
	tbl := Quantize(data, 32, 8)
	for i, q := range tbl.Data {
		if q < -127 || q > 127 {
			t.Fatalf("code[%d] = %d out of symmetric range", i, q)
		}
	}
}

func TestBytesPerRow(t *testing.T) {
	tbl := Quantize(make([]float64, 3*32), 3, 32)
	if got := tbl.BytesPerRow(); got != 36 {
		t.Fatalf("BytesPerRow = %d, want 36", got)
	}
	if got := tbl.Float64BytesPerRow(); got != 256 {
		t.Fatalf("Float64BytesPerRow = %d, want 256", got)
	}
}

func TestDeterministic(t *testing.T) {
	data := randTable(16, 8, 11)
	a, b := Quantize(data, 16, 8), Quantize(data, 16, 8)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("codes diverge at %d", i)
		}
	}
	for i := range a.Scales {
		if a.Scales[i] != b.Scales[i] {
			t.Fatalf("scales diverge at %d", i)
		}
	}
}

func TestRowCacheLRU(t *testing.T) {
	tbl := Quantize(randTable(8, 4, 5), 8, 4)
	c := NewRowCache(2)
	get := func(row int) []float64 {
		return c.Get(Key{Snap: 1, Row: row}, 4, func(dst []float64) { tbl.Row(row, dst) })
	}
	r0 := get(0)
	get(1)
	if h, m := c.Stats(); h != 0 || m != 2 {
		t.Fatalf("stats after 2 cold gets = %d/%d", h, m)
	}
	r0again := get(0) // hit
	if h, _ := c.Stats(); h != 1 {
		t.Fatalf("hits = %d, want 1", h)
	}
	if &r0[0] != &r0again[0] {
		t.Fatal("hit returned a different slice")
	}
	get(2) // evicts row 1 (LRU), not row 0
	get(0)
	if h, m := c.Stats(); h != 2 || m != 3 {
		t.Fatalf("stats = %d/%d, want 2/3 (row 0 stayed hot)", h, m)
	}
	get(1) // was evicted: miss
	if _, m := c.Stats(); m != 4 {
		t.Fatalf("misses = %d, want 4 (row 1 was evicted)", m)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want cap 2", c.Len())
	}
}

func TestRowCacheDistinguishesSnapshots(t *testing.T) {
	c := NewRowCache(8)
	a := c.Get(Key{Snap: 1, Row: 0}, 2, func(dst []float64) { dst[0] = 1 })
	b := c.Get(Key{Snap: 2, Row: 0}, 2, func(dst []float64) { dst[0] = 2 })
	if a[0] == b[0] {
		t.Fatal("different snapshots shared a cache row")
	}
}

// TestRowCacheConcurrent hammers the cache from many goroutines under
// -race: returned rows must always decode correctly even while entries
// churn through a tiny capacity.
func TestRowCacheConcurrent(t *testing.T) {
	const rows, cols = 64, 8
	tbl := Quantize(randTable(rows, cols, 7), rows, cols)
	want := tbl.Dequantize()
	c := NewRowCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				r := rng.Intn(rows)
				got := c.Get(Key{Row: r}, cols, func(dst []float64) { tbl.Row(r, dst) })
				for j := 0; j < cols; j++ {
					if got[j] != want[r*cols+j] {
						t.Errorf("row %d col %d = %g, want %g", r, j, got[j], want[r*cols+j])
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
}
