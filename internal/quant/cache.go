package quant

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Key identifies one cached dequantized row. Snap distinguishes
// snapshots (incumbent vs canary, successive publications) so a
// promoted snapshot never serves rows decoded from its predecessor.
type Key struct {
	Snap   uint64
	Domain int
	Param  int
	Row    int
}

// RowCache is a bounded LRU over dequantized embedding rows — the hot
// head of the Zipf access distribution stays decoded while the cold
// tail pays the (cheap) int8 decode on each touch. Returned slices are
// shared and read-only: entries are never rewritten in place, so a
// reader holding a row while it is evicted still sees correct values.
type RowCache struct {
	hits, misses atomic.Int64

	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[Key]*list.Element
}

type cacheEntry struct {
	key Key
	row []float64
}

// NewRowCache builds a cache holding at most capRows rows (minimum 1).
func NewRowCache(capRows int) *RowCache {
	if capRows < 1 {
		capRows = 1
	}
	return &RowCache{cap: capRows, ll: list.New(), m: make(map[Key]*list.Element, capRows)}
}

// Get returns the dequantized row for k, calling fill(dst) to decode
// it on a miss. The returned slice is owned by the cache: read, don't
// write.
func (c *RowCache) Get(k Key, cols int, fill func(dst []float64)) []float64 {
	c.mu.Lock()
	if el, ok := c.m[k]; ok {
		c.ll.MoveToFront(el)
		row := el.Value.(*cacheEntry).row
		c.mu.Unlock()
		c.hits.Add(1)
		return row
	}
	c.mu.Unlock()
	// Decode outside the lock: concurrent misses on distinct rows decode
	// in parallel; a racing double-decode of the same row is benign (the
	// codec is deterministic) and the second insert wins the map slot.
	row := make([]float64, cols)
	fill(row)
	c.misses.Add(1)
	c.mu.Lock()
	if el, ok := c.m[k]; ok {
		// Raced: keep the incumbent entry so its slice stays live.
		c.ll.MoveToFront(el)
		row = el.Value.(*cacheEntry).row
	} else {
		c.m[k] = c.ll.PushFront(&cacheEntry{key: k, row: row})
		for c.ll.Len() > c.cap {
			old := c.ll.Back()
			c.ll.Remove(old)
			delete(c.m, old.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	return row
}

// Len reports the number of cached rows.
func (c *RowCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports cumulative hits and misses.
func (c *RowCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
