package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// The per-domain percentages and CTR ratios below are copied from the
// paper's Tables II, III and IV. Sample counts are the paper's
// percentages applied to a caller-chosen total, so the same imbalance
// profile is reproduced at any scale.

// amazon6Domains: Table II.
var amazon6Domains = []struct {
	name string
	pct  float64
	ctr  float64
}{
	{"Musical Instruments", 7.11, 0.22},
	{"Office Products", 23.17, 0.23},
	{"Patio Lawn and Garden", 17.87, 0.32},
	{"Prime Pantry", 4.10, 0.23},
	{"Toys and Games", 31.80, 0.47},
	{"Video Games", 15.94, 0.21},
}

// amazon13Domains: Table III. The 7 additional domains are sparse.
var amazon13Domains = []struct {
	name string
	pct  float64
	ctr  float64
}{
	{"Arts Crafts and Sewing", 11.86, 0.22},
	{"Digital Music", 3.78, 0.23},
	{"Gift Cards", 0.06, 0.32},
	{"Industrial and Scientific", 1.86, 0.23},
	{"Luxury Beauty", 0.43, 0.47},
	{"Magazine Subscriptions", 0.06, 0.21},
	{"Musical Instruments", 3.99, 0.36},
	{"Office Products", 15.58, 0.30},
	{"Patio Lawn and Garden", 11.36, 0.46},
	{"Prime Pantry", 3.22, 0.25},
	{"Software", 0.05, 0.30},
	{"Toys and Games", 36.97, 0.30},
	{"Video Games", 10.78, 0.27},
}

// taobao30Pct / taobao30CTR: Table IV (domains D1..D30; the first 10 and
// 20 entries form Taobao-10 and Taobao-20).
var taobao30Pct = []float64{
	1.82, 0.96, 2.77, 8.60, 1.59, 0.99, 0.58, 3.31, 0.77, 2.46,
	4.03, 0.89, 1.22, 17.29, 2.14, 0.75, 1.94, 7.42, 1.67, 0.40,
	0.65, 4.03, 5.73, 1.01, 9.38, 0.73, 3.43, 5.36, 3.35, 4.72,
}

var taobao30CTR = []float64{
	0.22, 0.23, 0.32, 0.23, 0.47, 0.21, 0.36, 0.30, 0.46, 0.25,
	0.30, 0.30, 0.27, 0.20, 0.33, 0.23, 0.38, 0.22, 0.29, 0.33,
	0.47, 0.23, 0.24, 0.44, 0.21, 0.47, 0.37, 0.28, 0.45, 0.43,
}

// scaleDomains converts percentage profiles to sample counts for a total
// budget, enforcing a small per-domain floor so sparse domains still have
// train/val/test entries.
func scaleDomains(specs []struct {
	name string
	pct  float64
	ctr  float64
}, total int) []DomainSpec {
	out := make([]DomainSpec, 0, len(specs))
	for _, s := range specs {
		n := int(float64(total) * s.pct / 100)
		if n < 24 {
			n = 24
		}
		out = append(out, DomainSpec{Name: s.name, Samples: n, CTRRatio: s.ctr})
	}
	return out
}

// Amazon6 builds the Amazon-6 benchmark equivalent: 6 relatively
// data-rich domains, learned embeddings, moderate conflict.
func Amazon6(totalSamples int, seed int64) Config {
	return Config{
		Name:             "Amazon-6",
		Seed:             seed,
		ConflictStrength: 0.8,
		Domains:          scaleDomains(amazon6Domains, totalSamples),
	}
}

// Amazon13 builds the Amazon-13 benchmark equivalent: Amazon-6's regime
// plus 7 sparse domains that stress specific-parameter overfitting.
func Amazon13(totalSamples int, seed int64) Config {
	return Config{
		Name:             "Amazon-13",
		Seed:             seed,
		ConflictStrength: 0.8,
		Domains:          scaleDomains(amazon13Domains, totalSamples),
	}
}

// taobaoConfig builds a Taobao-n benchmark equivalent: frozen dense
// features (the original uses fixed GraphSage features) and stronger
// conflict across many small domains.
func taobaoConfig(name string, n, totalSamples int, seed int64) Config {
	specs := make([]DomainSpec, 0, n)
	var pctTotal float64
	for i := 0; i < n; i++ {
		pctTotal += taobao30Pct[i]
	}
	for i := 0; i < n; i++ {
		samples := int(float64(totalSamples) * taobao30Pct[i] / pctTotal)
		if samples < 24 {
			samples = 24
		}
		specs = append(specs, DomainSpec{
			Name:     fmt.Sprintf("D%d", i+1),
			Samples:  samples,
			CTRRatio: taobao30CTR[i],
		})
	}
	return Config{
		Name:             name,
		Seed:             seed,
		ConflictStrength: 1.0,
		FixedFeatures:    true,
		Domains:          specs,
	}
}

// Taobao10 builds the Taobao-10 benchmark equivalent (domains D1-D10).
func Taobao10(totalSamples int, seed int64) Config {
	return taobaoConfig("Taobao-10", 10, totalSamples, seed)
}

// Taobao20 builds the Taobao-20 benchmark equivalent (domains D1-D20).
func Taobao20(totalSamples int, seed int64) Config {
	return taobaoConfig("Taobao-20", 20, totalSamples, seed)
}

// Taobao30 builds the Taobao-30 benchmark equivalent (domains D1-D30).
func Taobao30(totalSamples int, seed int64) Config {
	return taobaoConfig("Taobao-30", 30, totalSamples, seed)
}

// TaobaoOnline builds an industry-scale equivalent of the Taobao-online
// dataset: numDomains domains whose sizes follow a Zipf long tail (a few
// huge head domains, a long tail of tiny ones, as in the production
// system's 69,102 domains averaging ~7k samples each), with CTR ratios
// drawn uniformly from [0.2, 0.5].
func TaobaoOnline(numDomains, totalSamples int, seed int64) Config {
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, numDomains)
	var wsum float64
	for i := range weights {
		weights[i] = 1 / float64(i+1) // Zipf s=1
		wsum += weights[i]
	}
	specs := make([]DomainSpec, numDomains)
	for i := range specs {
		n := int(float64(totalSamples) * weights[i] / wsum)
		if n < 24 {
			n = 24
		}
		specs[i] = DomainSpec{
			Name:     fmt.Sprintf("online-%d", i+1),
			Samples:  n,
			CTRRatio: 0.2 + 0.3*rng.Float64(),
		}
	}
	return Config{
		Name:             "Taobao-online",
		Seed:             seed,
		ConflictStrength: 1.2,
		FixedFeatures:    true,
		Domains:          specs,
	}
}

// WithZipfImbalance redistributes cfg's total sample budget across its
// domains by a Zipf law with exponent s: domains are ranked by their
// current size (largest first) and rank r receives weight 1/r^s, so
// raising s concentrates data in the head domains while the tail
// shrinks toward the 24-sample floor. s <= 0 returns cfg unchanged.
//
// The skew knob exists because partition-plan balancing and the
// shard-scaling experiments need datasets whose embedding traffic is
// dominated by a few hot domains. With s ≈ 1.15 a uniform 6-domain
// preset lands near the real Amazon-6 head/tail ratio of Table II
// (largest/smallest ≈ 31.8%/4.1% ≈ 7.8 ≈ 6^1.15).
func WithZipfImbalance(cfg Config, s float64) Config {
	if s <= 0 {
		return cfg
	}
	total := 0
	for _, d := range cfg.Domains {
		total += d.Samples
	}
	// Rank by current size, largest first; ties keep the preset order so
	// the reassignment is deterministic.
	rank := make([]int, len(cfg.Domains))
	for i := range rank {
		rank[i] = i
	}
	sort.SliceStable(rank, func(a, b int) bool {
		return cfg.Domains[rank[a]].Samples > cfg.Domains[rank[b]].Samples
	})
	var wsum float64
	weights := make([]float64, len(rank))
	for r := range rank {
		weights[r] = 1 / math.Pow(float64(r+1), s)
		wsum += weights[r]
	}
	out := cfg
	out.Name = fmt.Sprintf("%s-zipf%.2f", cfg.Name, s)
	out.Domains = append([]DomainSpec(nil), cfg.Domains...)
	for r, i := range rank {
		n := int(float64(total) * weights[r] / wsum)
		if n < 24 {
			n = 24
		}
		out.Domains[i].Samples = n
	}
	return out
}

// Presets maps dataset names to their builders at a default experiment
// scale; used by command-line tools.
func Presets(totalSamples int, seed int64) map[string]Config {
	return map[string]Config{
		"amazon-6":      Amazon6(totalSamples, seed),
		"amazon-13":     Amazon13(totalSamples, seed),
		"taobao-10":     Taobao10(totalSamples, seed),
		"taobao-20":     Taobao20(totalSamples, seed),
		"taobao-30":     Taobao30(totalSamples, seed),
		"taobao-online": TaobaoOnline(60, totalSamples, seed),
	}
}
