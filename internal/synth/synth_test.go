package synth

import (
	"math"
	"testing"

	"mamdr/internal/data"
)

func TestGenerateValidates(t *testing.T) {
	for name, cfg := range Presets(3000, 7) {
		ds := Generate(cfg)
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Taobao10(2000, 42))
	b := Generate(Taobao10(2000, 42))
	if a.TotalSamples() != b.TotalSamples() {
		t.Fatal("same seed produced different totals")
	}
	for d := range a.Domains {
		at, bt := a.Domains[d].Train, b.Domains[d].Train
		if len(at) != len(bt) {
			t.Fatalf("domain %d train size differs", d)
		}
		for i := range at {
			if at[i] != bt[i] {
				t.Fatalf("domain %d interaction %d differs", d, i)
			}
		}
	}
}

func TestGenerateSeedChangesData(t *testing.T) {
	a := Generate(Taobao10(2000, 1))
	b := Generate(Taobao10(2000, 2))
	same := true
	for i := range a.Domains[0].Train {
		if i >= len(b.Domains[0].Train) || a.Domains[0].Train[i] != b.Domains[0].Train[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestDomainCounts(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Amazon6(3000, 1), 6},
		{Amazon13(3000, 1), 13},
		{Taobao10(3000, 1), 10},
		{Taobao20(3000, 1), 20},
		{Taobao30(3000, 1), 30},
		{TaobaoOnline(40, 3000, 1), 40},
	}
	for _, c := range cases {
		ds := Generate(c.cfg)
		if ds.NumDomains() != c.want {
			t.Fatalf("%s: %d domains, want %d", c.cfg.Name, ds.NumDomains(), c.want)
		}
	}
}

func TestCTRRatioApproximatelyRespected(t *testing.T) {
	ds := Generate(Amazon6(20000, 3))
	for _, dom := range ds.Domains {
		var pos, neg float64
		for _, split := range []data.Split{data.Train, data.Val, data.Test} {
			for _, in := range dom.Get(split) {
				if in.Label > 0.5 {
					pos++
				} else {
					neg++
				}
			}
		}
		if neg == 0 {
			t.Fatalf("domain %s has no negatives", dom.Name)
		}
		got := pos / neg
		if math.Abs(got-dom.CTRRatio) > 0.1*dom.CTRRatio+0.05 {
			t.Fatalf("domain %s: CTR ratio %g, want ~%g", dom.Name, got, dom.CTRRatio)
		}
	}
}

func TestImbalanceProfileMatchesPaper(t *testing.T) {
	// Toys and Games must be the largest Amazon-6 domain (31.8%),
	// Prime Pantry the smallest (4.1%).
	ds := Generate(Amazon6(30000, 4))
	sizes := map[string]int{}
	for _, dom := range ds.Domains {
		sizes[dom.Name] = dom.Samples()
	}
	if sizes["Toys and Games"] <= sizes["Office Products"] {
		t.Fatal("Toys and Games should be largest")
	}
	if sizes["Prime Pantry"] >= sizes["Musical Instruments"] {
		t.Fatal("Prime Pantry should be smallest")
	}
	ratio := float64(sizes["Toys and Games"]) / float64(sizes["Prime Pantry"])
	if ratio < 5 || ratio > 11 {
		t.Fatalf("largest/smallest ratio = %.1f, want ~7.8", ratio)
	}
}

func TestAmazon13HasSparseDomains(t *testing.T) {
	ds := Generate(Amazon13(50000, 5))
	var sparse int
	for _, dom := range ds.Domains {
		if dom.Samples() < 100 {
			sparse++
		}
	}
	if sparse < 3 {
		t.Fatalf("only %d sparse domains; Amazon-13 must include data-sparse domains", sparse)
	}
}

func TestTaobaoFixedFeaturesPresent(t *testing.T) {
	ds := Generate(Taobao10(2000, 6))
	if !ds.HasFixedFeatures() {
		t.Fatal("Taobao preset must carry frozen features")
	}
	if len(ds.FixedUserVecs[0]) != 16 {
		t.Fatalf("feature dim = %d, want 16", len(ds.FixedUserVecs[0]))
	}
	for _, v := range ds.FixedUserVecs[0] {
		if v < -1 || v > 1 {
			t.Fatalf("tanh-projected feature %g outside [-1,1]", v)
		}
	}
}

func TestAmazonHasNoFixedFeatures(t *testing.T) {
	ds := Generate(Amazon6(2000, 6))
	if ds.HasFixedFeatures() {
		t.Fatal("Amazon preset should use learned embeddings")
	}
}

func TestUsersOverlapAcrossDomains(t *testing.T) {
	ds := Generate(Taobao10(5000, 7))
	inDomain := func(d int) map[int]bool {
		m := map[int]bool{}
		for _, in := range ds.Domains[d].Train {
			m[in.User] = true
		}
		return m
	}
	a, b := inDomain(0), inDomain(3)
	var shared int
	for u := range a {
		if b[u] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no user overlap between domains; the paper's domains share users")
	}
}

func TestConflictStrengthSeparatesDomainWeights(t *testing.T) {
	// With zero conflict all domains share one preference vector, so
	// per-domain positive rates should be very similar; with high
	// conflict they diverge. We proxy this by checking the generator
	// runs and labels differ across configs.
	low := Generate(Config{Name: "low", Seed: 9, ConflictStrength: 0,
		Domains: []DomainSpec{{Name: "a", Samples: 500, CTRRatio: 0.3}, {Name: "b", Samples: 500, CTRRatio: 0.3}}})
	high := Generate(Config{Name: "high", Seed: 9, ConflictStrength: 3,
		Domains: []DomainSpec{{Name: "a", Samples: 500, CTRRatio: 0.3}, {Name: "b", Samples: 500, CTRRatio: 0.3}}})
	if low.TotalSamples() == 0 || high.TotalSamples() == 0 {
		t.Fatal("generation failed")
	}
}

func TestZipfLongTail(t *testing.T) {
	cfg := TaobaoOnline(50, 100000, 8)
	head := cfg.Domains[0].Samples
	tail := cfg.Domains[49].Samples
	if head < 10*tail {
		t.Fatalf("head %d vs tail %d: expected a long-tail distribution", head, tail)
	}
	for _, d := range cfg.Domains {
		if d.CTRRatio < 0.2 || d.CTRRatio > 0.5 {
			t.Fatalf("CTR ratio %g outside [0.2, 0.5]", d.CTRRatio)
		}
	}
}

func TestSplitsNonEmpty(t *testing.T) {
	ds := Generate(Amazon13(5000, 10))
	for _, dom := range ds.Domains {
		if len(dom.Train) == 0 || len(dom.Val) == 0 || len(dom.Test) == 0 {
			t.Fatalf("domain %s has an empty split (%d/%d/%d)",
				dom.Name, len(dom.Train), len(dom.Val), len(dom.Test))
		}
	}
}

func TestNoDomainsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty config")
		}
	}()
	Generate(Config{Name: "empty"})
}

func TestConfigString(t *testing.T) {
	s := Taobao10(100, 3).String()
	if s == "" {
		t.Fatal("empty config string")
	}
}

func TestScaleInvarianceOfProfile(t *testing.T) {
	// Doubling total samples should roughly double each domain.
	small := Amazon6(10000, 1)
	big := Amazon6(20000, 1)
	for i := range small.Domains {
		r := float64(big.Domains[i].Samples) / float64(small.Domains[i].Samples)
		if r < 1.8 || r > 2.2 {
			t.Fatalf("domain %d scale ratio %g, want ~2", i, r)
		}
	}
}

// TestWithZipfImbalance: the skew knob re-ranks the budget by 1/rank^s
// — sizes become monotone in rank, the head/tail ratio tracks the
// exponent, the total budget is roughly preserved, and s <= 0 is a
// no-op.
func TestWithZipfImbalance(t *testing.T) {
	base := Amazon6(12000, 7)

	if got := WithZipfImbalance(base, 0); got.Name != base.Name {
		t.Fatal("s=0 should return the config unchanged")
	}

	skewed := WithZipfImbalance(base, 1.15)
	if len(skewed.Domains) != len(base.Domains) {
		t.Fatalf("domain count changed: %d vs %d", len(skewed.Domains), len(base.Domains))
	}
	baseTotal, skewTotal := 0, 0
	for i := range base.Domains {
		baseTotal += base.Domains[i].Samples
		skewTotal += skewed.Domains[i].Samples
		if skewed.Domains[i].Name != base.Domains[i].Name || skewed.Domains[i].CTRRatio != base.Domains[i].CTRRatio {
			t.Fatalf("domain %d identity changed: %+v vs %+v", i, skewed.Domains[i], base.Domains[i])
		}
	}
	if ratio := float64(skewTotal) / float64(baseTotal); ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("budget drifted: %d -> %d", baseTotal, skewTotal)
	}

	// Head/tail ratio ~ n^s for n domains: 6^1.15 ~ 7.8, the real
	// Amazon-6 ratio from Table II.
	max, min := 0, 1<<31
	for _, d := range skewed.Domains {
		if d.Samples > max {
			max = d.Samples
		}
		if d.Samples < min {
			min = d.Samples
		}
	}
	if ht := float64(max) / float64(min); ht < 6 || ht > 10 {
		t.Fatalf("head/tail ratio %.2f, want ~7.8 for s=1.15 over 6 domains", ht)
	}

	// The largest base domain keeps rank 1 after re-skewing, and the
	// generated dataset still validates.
	baseMaxIdx, skewMaxIdx := 0, 0
	for i := range base.Domains {
		if base.Domains[i].Samples > base.Domains[baseMaxIdx].Samples {
			baseMaxIdx = i
		}
		if skewed.Domains[i].Samples > skewed.Domains[skewMaxIdx].Samples {
			skewMaxIdx = i
		}
	}
	if baseMaxIdx != skewMaxIdx {
		t.Fatalf("head domain moved: base %d, skewed %d", baseMaxIdx, skewMaxIdx)
	}
	if err := Generate(skewed).Validate(); err != nil {
		t.Fatalf("skewed dataset invalid: %v", err)
	}

	// Determinism: same inputs, same assignment.
	again := WithZipfImbalance(base, 1.15)
	for i := range skewed.Domains {
		if again.Domains[i].Samples != skewed.Domains[i].Samples {
			t.Fatal("re-skewing is not deterministic")
		}
	}
}
