// Package synth generates the MDR benchmark datasets of the MAMDR paper
// as synthetic equivalents. The real benchmarks (Amazon product reviews,
// Taobao Cloud Theme click logs) cannot be redistributed here, so the
// generators reproduce the *distributional properties* the paper's
// experiments depend on, at configurable scale:
//
//   - per-domain sample counts, percentages and CTR ratios copied from
//     the paper's Tables II-IV;
//   - a latent-factor click model with a shared preference component and
//     domain-specific conflicting components (domain conflict);
//   - partially overlapping user/item sets across domains, backed by a
//     global feature storage;
//   - deliberately sparse domains (the 7 extra Amazon-13 domains);
//   - learned-embedding mode (Amazon) and frozen-feature mode (Taobao,
//     where features came from a pretrained GraphSage and were fixed).
//
// All generation is deterministic given Config.Seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mamdr/internal/data"
)

// DomainSpec describes one domain to generate.
type DomainSpec struct {
	Name     string
	Samples  int     // total interactions across train/val/test
	CTRRatio float64 // positives per negative, in [0.2, 0.5] per the paper
}

// Config controls dataset generation.
type Config struct {
	Name     string
	Seed     int64
	NumUsers int
	NumItems int
	// LatentDim is the dimensionality of the ground-truth user/item
	// factors driving clicks.
	LatentDim int
	// ConflictStrength scales the domain-specific component of each
	// domain's preference weights. 0 means all domains agree perfectly;
	// larger values increase cross-domain gradient conflict.
	ConflictStrength float64
	// Sharpness scales latent scores before the sigmoid; larger values
	// make labels less noisy (easier AUC).
	Sharpness float64
	// ValFrac and TestFrac control the split sizes (train gets the rest).
	ValFrac, TestFrac float64
	// FixedFeatures switches to the Taobao regime: dense frozen feature
	// vectors of width FeatureDim derived from the true latents.
	FixedFeatures bool
	FeatureDim    int
	// DomainUserFrac is the fraction of global users each domain draws
	// its interactions from (partial overlap across domains).
	DomainUserFrac float64
	Domains        []DomainSpec
}

// withDefaults fills zero-valued fields.
func (c Config) withDefaults() Config {
	if c.LatentDim == 0 {
		c.LatentDim = 8
	}
	if c.Sharpness == 0 {
		c.Sharpness = 5
	}
	if c.ValFrac == 0 {
		c.ValFrac = 0.2
	}
	if c.TestFrac == 0 {
		c.TestFrac = 0.2
	}
	if c.FeatureDim == 0 {
		c.FeatureDim = 16
	}
	if c.DomainUserFrac == 0 {
		c.DomainUserFrac = 0.6
	}
	if c.NumUsers == 0 || c.NumItems == 0 {
		total := 0
		for _, d := range c.Domains {
			total += d.Samples
		}
		if c.NumUsers == 0 {
			c.NumUsers = clampInt(total/25, 40, 200000)
		}
		if c.NumItems == 0 {
			c.NumItems = clampInt(total/50, 30, 100000)
		}
	}
	return c
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Oracle exposes the generator's ground-truth click propensities, for
// measuring the Bayes-optimal AUC of a generated dataset and for
// verifying that trained models approach it.
type Oracle struct {
	domains []clickModel
}

// Score returns the true (pre-sigmoid) click score of user u and item v
// in the given domain.
func (o *Oracle) Score(domain, u, v int) float64 {
	return o.domains[domain].score(u, v)
}

// Generate builds a dataset according to cfg. The resulting dataset
// always passes data.Validate.
func Generate(cfg Config) *data.Dataset {
	ds, _ := GenerateWithOracle(cfg)
	return ds
}

// GenerateWithOracle is Generate but also returns the ground-truth
// oracle behind the dataset.
func GenerateWithOracle(cfg Config) (*data.Dataset, *Oracle) {
	cfg = cfg.withDefaults()
	if len(cfg.Domains) == 0 {
		panic("synth: no domains configured")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.LatentDim

	// Ground-truth latent factors plus scalar propensity biases
	// (user activity, item popularity). The biases make part of the
	// signal reachable through generalizable bucket features, as in real
	// CTR data where popularity effects dominate cold-start pairs.
	userLat := randnMatrix(rng, cfg.NumUsers, k)
	itemLat := randnMatrix(rng, cfg.NumItems, k)
	userBias := randnVec(rng, cfg.NumUsers)
	itemBias := randnVec(rng, cfg.NumItems)

	// Shared preference direction plus per-domain conflicting deltas on
	// both the interaction weights and the bias coefficient: at high
	// ConflictStrength domains disagree even on whether popular items
	// should be recommended, producing genuine gradient conflict.
	shared := randnVec(rng, k)
	normalize(shared)
	domainW := make([][]float64, len(cfg.Domains))
	domainBiasCoef := make([]float64, len(cfg.Domains))
	for d := range cfg.Domains {
		delta := randnVec(rng, k)
		normalize(delta)
		w := make([]float64, k)
		for i := range w {
			w[i] = shared[i] + cfg.ConflictStrength*delta[i]
		}
		normalize(w)
		domainW[d] = w
		domainBiasCoef[d] = 1 + cfg.ConflictStrength*rng.NormFloat64()*0.5
	}

	ds := &data.Dataset{
		Name:     cfg.Name,
		NumUsers: cfg.NumUsers,
		NumItems: cfg.NumItems,
		Schema:   buildSchema(cfg),
	}
	ds.UserFeatures = buildUserFeatures(cfg, userLat, userBias)
	ds.ItemFeatures = buildItemFeatures(cfg, itemLat, itemBias)
	if cfg.FixedFeatures {
		ds.FixedUserVecs = projectFeatures(rng, userLat, userBias, cfg.FeatureDim)
		ds.FixedItemVecs = projectFeatures(rng, itemLat, itemBias, cfg.FeatureDim)
	}

	oracle := &Oracle{}
	for di, spec := range cfg.Domains {
		model := clickModel{
			userLat: userLat, itemLat: itemLat,
			userBias: userBias, itemBias: itemBias,
			w: domainW[di], biasCoef: domainBiasCoef[di],
		}
		oracle.domains = append(oracle.domains, model)
		ds.Domains = append(ds.Domains, generateDomain(cfg, rng, di, spec, model))
	}
	return ds, oracle
}

// clickModel is the ground-truth propensity of one domain:
//
//	score(u, v) = w · (userLat_u ⊙ itemLat_v) + biasCoef·(userBias_u + itemBias_v)
type clickModel struct {
	userLat, itemLat   [][]float64
	userBias, itemBias []float64
	w                  []float64
	biasCoef           float64
}

func (c clickModel) score(u, v int) float64 {
	var s float64
	for i := range c.w {
		s += c.w[i] * c.userLat[u][i] * c.itemLat[v][i]
	}
	return s + c.biasCoef*(c.userBias[u]+c.itemBias[v])
}

// generateDomain samples one domain's interactions from the click model.
func generateDomain(cfg Config, rng *rand.Rand, id int, spec DomainSpec, model clickModel) *data.Domain {
	if spec.Samples < 5 {
		spec.Samples = 5
	}
	if spec.CTRRatio <= 0 {
		spec.CTRRatio = 0.3
	}
	// Subset of the global user/item pools visible in this domain.
	users := sampleSubset(rng, cfg.NumUsers, int(cfg.DomainUserFrac*float64(cfg.NumUsers)))
	items := sampleSubset(rng, cfg.NumItems, int(cfg.DomainUserFrac*float64(cfg.NumItems)))

	nPos := int(math.Round(float64(spec.Samples) * spec.CTRRatio / (1 + spec.CTRRatio)))
	if nPos < 2 {
		nPos = 2
	}
	nNeg := spec.Samples - nPos
	if nNeg < 2 {
		nNeg = 2
	}

	score := model.score

	ins := make([]data.Interaction, 0, nPos+nNeg)
	// Positives: rejection-sample pairs proportional to click propensity
	// sigmoid(sharpness * score). A cap bounds worst-case work.
	attempts := 0
	maxAttempts := 200 * (nPos + 1)
	for got := 0; got < nPos && attempts < maxAttempts; attempts++ {
		u := users[rng.Intn(len(users))]
		v := items[rng.Intn(len(items))]
		p := sigmoid(cfg.Sharpness * score(u, v))
		if rng.Float64() < p {
			ins = append(ins, data.Interaction{User: u, Item: v, Label: 1})
			got++
		}
	}
	// If rejection sampling stalls (tiny domains with unlucky latents),
	// top up with the best-scoring random pairs.
	for len(ins) < nPos {
		u := users[rng.Intn(len(users))]
		v := items[rng.Intn(len(items))]
		ins = append(ins, data.Interaction{User: u, Item: v, Label: 1})
	}
	// Negatives: uniform random unobserved pairs (the paper samples items
	// the user has not clicked).
	for got := 0; got < nNeg; got++ {
		u := users[rng.Intn(len(users))]
		v := items[rng.Intn(len(items))]
		ins = append(ins, data.Interaction{User: u, Item: v, Label: 0})
	}
	rng.Shuffle(len(ins), func(i, j int) { ins[i], ins[j] = ins[j], ins[i] })

	n := len(ins)
	nVal := int(cfg.ValFrac * float64(n))
	nTest := int(cfg.TestFrac * float64(n))
	if nVal < 1 {
		nVal = 1
	}
	if nTest < 1 {
		nTest = 1
	}
	nTrain := n - nVal - nTest
	if nTrain < 1 {
		nTrain = 1
		if nTrain+nVal+nTest > n {
			nVal = (n - 1) / 2
			nTest = n - 1 - nVal
		}
	}
	return &data.Domain{
		ID:       id,
		Name:     spec.Name,
		CTRRatio: spec.CTRRatio,
		Train:    ins[:nTrain],
		Val:      ins[nTrain : nTrain+nVal],
		Test:     ins[nTrain+nVal:],
	}
}

func buildSchema(cfg Config) data.Schema {
	return data.Schema{
		UserFields: []data.Field{
			{Name: "user_id", Vocab: cfg.NumUsers},
			{Name: "user_activity", Vocab: 10},
			{Name: "user_segment", Vocab: 5},
		},
		ItemFields: []data.Field{
			{Name: "item_id", Vocab: cfg.NumItems},
			{Name: "item_category", Vocab: 20},
			{Name: "item_popularity", Vocab: 10},
		},
	}
}

// buildUserFeatures derives the categorical side features from the
// ground truth so that non-id fields carry generalizable signal:
// activity is the decile of the user's propensity bias, segment the
// dominant latent direction.
func buildUserFeatures(cfg Config, lat [][]float64, bias []float64) [][]int {
	deciles := decileBoundaries(bias)
	out := make([][]int, len(lat))
	for i, v := range lat {
		out[i] = []int{i, bucketOf(bias[i], deciles), dominantAxis(v) % 5}
	}
	return out
}

// buildItemFeatures mirrors buildUserFeatures: popularity is the decile
// of the item's propensity bias; category blends the dominant latent
// axis and its sign into a 20-way split.
func buildItemFeatures(cfg Config, lat [][]float64, bias []float64) [][]int {
	deciles := decileBoundaries(bias)
	out := make([][]int, len(lat))
	for i, v := range lat {
		a1 := dominantAxis(v)
		sign := 0
		if v[a1] < 0 {
			sign = 1
		}
		cat := (a1*2 + sign) % 20
		out[i] = []int{i, cat, bucketOf(bias[i], deciles)}
	}
	return out
}

// projectFeatures maps latents (with the propensity bias appended) to
// frozen dense features through a fixed random linear map plus tanh,
// emulating pretrained (GraphSage-style) representations that correlate
// with, but do not equal, the ground truth.
func projectFeatures(rng *rand.Rand, lat [][]float64, bias []float64, dim int) [][]float64 {
	k := len(lat[0]) + 1
	proj := randnMatrix(rng, k, dim)
	out := make([][]float64, len(lat))
	for i, v := range lat {
		row := make([]float64, dim)
		for j := 0; j < dim; j++ {
			s := bias[i] * proj[k-1][j]
			for a := 0; a < k-1; a++ {
				s += v[a] * proj[a][j]
			}
			row[j] = math.Tanh(s / math.Sqrt(float64(k)))
		}
		out[i] = row
	}
	return out
}

func sampleSubset(rng *rand.Rand, n, size int) []int {
	if size < 1 {
		size = 1
	}
	if size > n {
		size = n
	}
	perm := rng.Perm(n)
	return perm[:size]
}

func randnMatrix(rng *rand.Rand, rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = randnVec(rng, cols)
	}
	return m
}

func randnVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func normalize(v []float64) {
	n := vecNorm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

func vecNorm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// decileBoundaries returns the 9 interior decile cut points of xs.
func decileBoundaries(xs []float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	cuts := make([]float64, 9)
	for i := 1; i <= 9; i++ {
		idx := i * len(sorted) / 10
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		cuts[i-1] = sorted[idx]
	}
	return cuts
}

func bucketOf(x float64, cuts []float64) int {
	for i, c := range cuts {
		if x < c {
			return i
		}
	}
	return len(cuts)
}

func dominantAxis(v []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range v {
		if a := math.Abs(x); a > best {
			best, bi = a, i
		}
	}
	return bi
}

// String summarizes a config.
func (c Config) String() string {
	return fmt.Sprintf("synth.Config{%s: %d domains, seed %d}", c.Name, len(c.Domains), c.Seed)
}
