package paramvec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mamdr/internal/autograd"
)

func testParams() []*autograd.Tensor {
	return []*autograd.Tensor{
		autograd.Param(1, 3, []float64{1, 2, 3}),
		autograd.Param(2, 2, []float64{4, 5, 6, 7}),
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	ps := testParams()
	v := Snapshot(ps)
	ps[0].Data[0] = 99
	ps[1].Data[3] = -1
	Restore(ps, v)
	if ps[0].Data[0] != 1 || ps[1].Data[3] != 7 {
		t.Fatal("Restore did not recover snapshotted values")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	ps := testParams()
	v := Snapshot(ps)
	ps[0].Data[0] = 42
	if v[0][0] != 1 {
		t.Fatal("Snapshot shares memory with parameters")
	}
}

func TestSnapshotGrads(t *testing.T) {
	ps := testParams()
	ps[0].Grad[1] = 5
	noGrad := autograd.New(1, 2, []float64{0, 0})
	v := SnapshotGrads(append(ps, noGrad))
	if v[0][1] != 5 {
		t.Fatal("SnapshotGrads missed gradient")
	}
	if len(v[2]) != 2 || v[2][0] != 0 {
		t.Fatal("SnapshotGrads should zero-fill gradient-free tensors")
	}
}

func TestVectorAlgebra(t *testing.T) {
	v := Vector{{1, 2}, {3}}
	w := Vector{{10, 20}, {30}}
	sum := Add(v, w)
	if sum[0][0] != 11 || sum[1][0] != 33 {
		t.Fatalf("Add = %v", sum)
	}
	diff := Sub(w, v)
	if diff[0][1] != 18 {
		t.Fatalf("Sub = %v", diff)
	}
	sc := Scale(v, 2)
	if sc[0][1] != 4 {
		t.Fatalf("Scale = %v", sc)
	}
	if d := Dot(v, w); d != 10+40+90 {
		t.Fatalf("Dot = %g", d)
	}
	if n := Norm(Vector{{3, 4}}); n != 5 {
		t.Fatalf("Norm = %g", n)
	}
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	z := v.Zero()
	if z[0][0] != 0 || len(z[1]) != 1 {
		t.Fatal("Zero wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{{1, 2}}
	c := v.Clone()
	c[0][0] = 9
	if v[0][0] != 1 {
		t.Fatal("Clone not deep")
	}
}

func TestAxpy(t *testing.T) {
	dst := Vector{{1, 1}}
	Axpy(dst, 2, Vector{{3, 4}})
	if dst[0][0] != 7 || dst[0][1] != 9 {
		t.Fatalf("Axpy = %v", dst)
	}
}

func TestAxpyInto(t *testing.T) {
	ps := []*autograd.Tensor{autograd.Param(1, 2, []float64{1, 1})}
	AxpyInto(ps, -1, Vector{{0.5, 0.25}})
	if ps[0].Data[0] != 0.5 || ps[0].Data[1] != 0.75 {
		t.Fatalf("AxpyInto = %v", ps[0].Data)
	}
}

func TestAddScaledDiffInto(t *testing.T) {
	// The Reptile/DN outer update: params += s*(endpoint - base).
	ps := []*autograd.Tensor{autograd.Param(1, 2, []float64{10, 10})}
	base := Vector{{10, 10}}
	endpoint := Vector{{14, 6}}
	AddScaledDiffInto(ps, 0.5, endpoint, base)
	if ps[0].Data[0] != 12 || ps[0].Data[1] != 8 {
		t.Fatalf("AddScaledDiffInto = %v", ps[0].Data)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if c := CosineSimilarity(Vector{{1, 0}}, Vector{{0, 1}}); c != 0 {
		t.Fatalf("orthogonal cos = %g", c)
	}
	if c := CosineSimilarity(Vector{{1, 1}}, Vector{{2, 2}}); math.Abs(c-1) > 1e-12 {
		t.Fatalf("parallel cos = %g", c)
	}
	if c := CosineSimilarity(Vector{{1, 0}}, Vector{{-1, 0}}); math.Abs(c+1) > 1e-12 {
		t.Fatalf("antiparallel cos = %g", c)
	}
	if c := CosineSimilarity(Vector{{0, 0}}, Vector{{1, 1}}); c != 0 {
		t.Fatalf("zero-vector cos = %g", c)
	}
}

func TestProjectOutConflicting(t *testing.T) {
	// v conflicts with w; the projection must be orthogonal to w.
	v := Vector{{1, -1}}
	w := Vector{{0, 1}}
	p := ProjectOut(v, w)
	if d := Dot(p, w); math.Abs(d) > 1e-12 {
		t.Fatalf("projection not orthogonal: <p,w> = %g", d)
	}
	if p[0][0] != 1 {
		t.Fatal("projection changed the non-conflicting component")
	}
}

func TestProjectOutNonConflictingIsIdentity(t *testing.T) {
	v := Vector{{1, 1}}
	w := Vector{{1, 0}}
	p := ProjectOut(v, w)
	if p[0][0] != 1 || p[0][1] != 1 {
		t.Fatalf("non-conflicting projection altered v: %v", p)
	}
}

func TestProjectOutZeroW(t *testing.T) {
	v := Vector{{1, 2}}
	p := ProjectOut(v, Vector{{0, 0}})
	if p[0][0] != 1 || p[0][1] != 2 {
		t.Fatal("projection against zero vector should be identity")
	}
}

func TestMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Add(Vector{{1}}, Vector{{1, 2}})
}

func TestRestoreMisalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on misaligned restore")
		}
	}()
	Restore(testParams(), Vector{{1}})
}

func TestQuickDotSymmetric(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		v, w := Vector{a[:n]}, Vector{b[:n]}
		d1, d2 := Dot(v, w), Dot(w, v)
		return d1 == d2 || (math.IsNaN(d1) && math.IsNaN(d2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		a, b := make([]float64, n), make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		v, w := Vector{a}, Vector{b}
		if Norm(Add(v, w)) > Norm(v)+Norm(w)+1e-9 {
			t.Fatal("triangle inequality violated")
		}
	}
}

func TestQuickProjectOutNeverConflicts(t *testing.T) {
	// Property: after ProjectOut, <result, w> >= 0 (no conflict remains).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		a, b := make([]float64, n), make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		p := ProjectOut(Vector{a}, Vector{b})
		if Dot(p, Vector{b}) < -1e-9 {
			t.Fatal("conflict remained after projection")
		}
	}
}
