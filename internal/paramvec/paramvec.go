// Package paramvec provides flat-vector algebra over lists of parameter
// tensors. The MAMDR learning frameworks (Domain Negotiation, Domain
// Regularization, Reptile, MAML, PCGrad) are all expressed as geometry on
// parameter vectors — snapshot an initial point, run inner steps, move
// toward an endpoint, project gradients — and this package supplies those
// primitives without copying parameters into a single contiguous slice.
package paramvec

import (
	"fmt"
	"math"

	"mamdr/internal/autograd"
	"mamdr/internal/autograd/kernels"
)

// Vector is a value-copy of a parameter list, aligned entry for entry
// with the tensors it was snapshotted from.
type Vector [][]float64

// Snapshot copies the current values of params into a new Vector.
func Snapshot(params []*autograd.Tensor) Vector {
	v := make(Vector, len(params))
	for i, p := range params {
		v[i] = append([]float64(nil), p.Data...)
	}
	return v
}

// SnapshotGrads copies the current gradients of params into a new Vector.
// Parameters without gradient buffers contribute zero entries.
func SnapshotGrads(params []*autograd.Tensor) Vector {
	v := make(Vector, len(params))
	for i, p := range params {
		if p.Grad == nil {
			v[i] = make([]float64, len(p.Data))
			continue
		}
		v[i] = append([]float64(nil), p.Grad...)
	}
	return v
}

// Restore writes the vector's values back into params.
func Restore(params []*autograd.Tensor, v Vector) {
	mustAlign(params, v)
	for i, p := range params {
		copy(p.Data, v[i])
	}
}

// Clone deep-copies the vector.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	for i := range v {
		c[i] = append([]float64(nil), v[i]...)
	}
	return c
}

// Zero returns a zero vector with the same structure as v.
func (v Vector) Zero() Vector {
	z := make(Vector, len(v))
	for i := range v {
		z[i] = make([]float64, len(v[i]))
	}
	return z
}

// Len returns the total number of scalar entries.
func (v Vector) Len() int {
	n := 0
	for i := range v {
		n += len(v[i])
	}
	return n
}

// Sum returns v + w into a freshly allocated vector in a single pass.
// It is Add without the intermediate clone: Clone-then-Axpy writes
// every element twice, and on the serving path — which composes
// θ_S + θ_d once per (snapshot, domain) — the second pass over
// multi-megabyte vectors is measurable. Element order and expression
// (v[i][j] + w[i][j]) match Add bit for bit.
func Sum(v, w Vector) Vector {
	mustMatch(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = make([]float64, len(v[i]))
		kernels.AddTo(out[i], v[i], w[i])
	}
	return out
}

// Add returns v + w.
func Add(v, w Vector) Vector {
	mustMatch(v, w)
	out := v.Clone()
	for i := range out {
		for j := range out[i] {
			out[i][j] += w[i][j]
		}
	}
	return out
}

// Sub returns v - w.
func Sub(v, w Vector) Vector {
	mustMatch(v, w)
	out := v.Clone()
	for i := range out {
		for j := range out[i] {
			out[i][j] -= w[i][j]
		}
	}
	return out
}

// Scale returns s * v.
func Scale(v Vector, s float64) Vector {
	out := v.Clone()
	for i := range out {
		for j := range out[i] {
			out[i][j] *= s
		}
	}
	return out
}

// AxpyInto performs params += s * v in place on the tensors.
func AxpyInto(params []*autograd.Tensor, s float64, v Vector) {
	mustAlign(params, v)
	for i, p := range params {
		for j := range p.Data {
			p.Data[j] += s * v[i][j]
		}
	}
}

// Axpy performs dst += s * v in place on the vector dst.
func Axpy(dst Vector, s float64, v Vector) {
	mustMatch(dst, v)
	for i := range dst {
		for j := range dst[i] {
			dst[i][j] += s * v[i][j]
		}
	}
}

// Dot returns the inner product <v, w>.
func Dot(v, w Vector) float64 {
	mustMatch(v, w)
	var s float64
	for i := range v {
		for j := range v[i] {
			s += v[i][j] * w[i][j]
		}
	}
	return s
}

// Norm returns the L2 norm of v.
func Norm(v Vector) float64 { return math.Sqrt(Dot(v, v)) }

// CosineSimilarity returns <v,w>/(|v||w|), or 0 when either vector is
// zero. It is the diagnostic used to measure domain conflict.
func CosineSimilarity(v, w Vector) float64 {
	nv, nw := Norm(v), Norm(w)
	if nv == 0 || nw == 0 {
		return 0
	}
	return Dot(v, w) / (nv * nw)
}

// ProjectOut removes from v its component along w when they conflict
// (negative inner product), returning the PCGrad projection
// v - (<v,w>/|w|^2) w. If the vectors do not conflict, v is returned
// unchanged (as a clone).
func ProjectOut(v, w Vector) Vector {
	d := Dot(v, w)
	out := v.Clone()
	if d >= 0 {
		return out
	}
	ww := Dot(w, w)
	if ww == 0 {
		return out
	}
	Axpy(out, -d/ww, w)
	return out
}

// AddScaledDiffInto implements the meta-update params += s*(endpoint -
// base) used by the outer loops of DN, DR and Reptile (paper Eq. 3 and
// Eq. 8).
func AddScaledDiffInto(params []*autograd.Tensor, s float64, endpoint, base Vector) {
	mustMatch(endpoint, base)
	mustAlign(params, base)
	for i, p := range params {
		for j := range p.Data {
			p.Data[j] += s * (endpoint[i][j] - base[i][j])
		}
	}
}

func mustMatch(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("paramvec: vector length %d vs %d", len(v), len(w)))
	}
	for i := range v {
		if len(v[i]) != len(w[i]) {
			panic(fmt.Sprintf("paramvec: segment %d length %d vs %d", i, len(v[i]), len(w[i])))
		}
	}
}

func mustAlign(params []*autograd.Tensor, v Vector) {
	if len(params) != len(v) {
		panic(fmt.Sprintf("paramvec: %d tensors vs %d segments", len(params), len(v)))
	}
	for i, p := range params {
		if len(p.Data) != len(v[i]) {
			panic(fmt.Sprintf("paramvec: tensor %d size %d vs segment %d", i, len(p.Data), len(v[i])))
		}
	}
}
