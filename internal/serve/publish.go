// This file is the live snapshot publication path: the versioned
// warm-swap behind POST /admin/publish and the serve-side half of the
// rollout gate's Fleet interface. A publication never touches the
// request path until its snapshot is fully composed; installation is
// one atomic view store, and the displaced incumbent keeps serving
// every request that already loaded it.

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"mamdr/internal/core"
	"mamdr/internal/quality"
	"mamdr/internal/rollout"
)

// errCanaryInFlight rejects a second publication while one canary is
// still under evaluation — two canaries against one incumbent would
// split the evidence three ways.
var errCanaryInFlight = errors.New("serve: canary already in flight")

// Publish stages a new state under version (0 = auto-increment past
// the incumbent) keyed to the checkpoint envelope CRC. With a rollout
// gate attached, the snapshot becomes a canary taking the gate's
// traffic fraction and the decision is the gate's; without one it
// swaps in immediately. Publish rejects, loudly, version regressions
// (an explicit version at or below the incumbent's — replaying an old
// snapshot silently is how fleets end up serving last week's model)
// and structurally incompatible states. It returns the assigned
// version and whether the snapshot was staged as a canary.
func (s *Server) Publish(state *core.State, version uint64, crc uint32, baseline *quality.Baseline) (uint64, bool, error) {
	s.mu.Lock()
	old := s.view.Load()
	if old.canary != nil {
		s.mu.Unlock()
		s.metrics.publishOutcome("rejected")
		return 0, false, fmt.Errorf("%w: v%d still under evaluation", errCanaryInFlight, old.canaryV)
	}
	if err := s.validateStateLocked(state); err != nil {
		s.mu.Unlock()
		s.metrics.publishOutcome("rejected")
		return 0, false, err
	}
	if version == 0 {
		version = old.incumbentV + 1
	} else if version <= old.incumbentV {
		s.mu.Unlock()
		s.metrics.publishOutcome("rejected")
		return 0, false, fmt.Errorf("serve: version regression: published v%d is not newer than incumbent v%d", version, old.incumbentV)
	}
	snap := s.composeState(state)

	gate := s.gate()
	if gate == nil {
		// No gate: classic warm swap, immediately live.
		s.installLocked(state, snap, version, crc, baseline)
		onSwap := s.opts.OnSwap
		s.mu.Unlock()
		s.metrics.publishOutcome("accepted")
		if onSwap != nil {
			onSwap(version, crc)
		}
		return version, false, nil
	}

	// Stage as canary: the incumbent stays in the view — pinned in
	// memory as the last known good — while the canary takes its
	// fraction.
	s.view.Store(&view{
		incumbent: old.incumbent, incumbentV: old.incumbentV, incumbentCRC: old.incumbentCRC,
		canary: snap, canaryV: version, canaryCRC: crc,
		fraction: gate.Fraction(),
	})
	s.pendingState, s.pendingBaseline = state, baseline
	s.metrics.snapshotVersions(old.incumbentV, version)
	incumbentV := old.incumbentV
	s.mu.Unlock()

	if err := gate.Begin(version, incumbentV); err != nil {
		// The gate refused (e.g. it raced another evaluation): undo the
		// staging so view and gate cannot disagree about what's flying.
		s.mu.Lock()
		s.view.Store(old)
		s.pendingState, s.pendingBaseline = nil, nil
		s.metrics.snapshotVersions(old.incumbentV, 0)
		s.mu.Unlock()
		s.metrics.publishOutcome("rejected")
		return 0, false, err
	}
	s.metrics.publishOutcome("accepted")
	return version, true, nil
}

// PromoteCanary implements rollout.Fleet: the canary becomes the
// incumbent, its staged state and quality baseline install, and the
// old incumbent retires.
func (s *Server) PromoteCanary(version uint64) error {
	s.mu.Lock()
	v := s.view.Load()
	if v.canary == nil || v.canaryV != version {
		s.mu.Unlock()
		return fmt.Errorf("serve: promote v%d: no such canary", version)
	}
	s.installLocked(s.pendingState, v.canary, v.canaryV, v.canaryCRC, s.pendingBaseline)
	s.pendingState, s.pendingBaseline = nil, nil
	crc := v.canaryCRC
	onSwap := s.opts.OnSwap
	s.mu.Unlock()
	if onSwap != nil {
		onSwap(version, crc)
	}
	return nil
}

// RollbackCanary implements rollout.Fleet: the canary is dropped and
// the incumbent — untouched and still in the view — keeps serving.
// Nothing recomposes, so post-rollback predictions are bit-identical
// to never having published.
func (s *Server) RollbackCanary(version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.view.Load()
	if v.canary == nil || v.canaryV != version {
		return fmt.Errorf("serve: rollback v%d: no such canary", version)
	}
	s.view.Store(&view{incumbent: v.incumbent, incumbentV: v.incumbentV, incumbentCRC: v.incumbentCRC})
	s.pendingState, s.pendingBaseline = nil, nil
	s.metrics.snapshotVersions(v.incumbentV, 0)
	return nil
}

// Versions reports the live snapshot versions (canary 0 when none).
func (s *Server) Versions() (incumbent, canary uint64) {
	v := s.view.Load()
	return v.incumbentV, v.canaryV
}

// PublishRequest is the POST /admin/publish body: exactly one source —
// a checkpoint path, or "upstream" to pull the live cluster snapshot.
type PublishRequest struct {
	Path    string `json:"path,omitempty"`
	Source  string `json:"source,omitempty"`
	Version uint64 `json:"version,omitempty"`
}

// PublishResponse reports the accepted publication.
type PublishResponse struct {
	Version  uint64  `json:"version"`
	CRC      string  `json:"crc,omitempty"`
	Canary   bool    `json:"canary"`
	Fraction float64 `json:"fraction,omitempty"`
}

// RolloutStatusResponse is the GET /admin/rollout view: what serves,
// what's flying, and the gate's evidence.
type RolloutStatusResponse struct {
	IncumbentVersion uint64         `json:"incumbent_version"`
	IncumbentCRC     string         `json:"incumbent_crc,omitempty"`
	CanaryVersion    uint64         `json:"canary_version,omitempty"`
	CanaryCRC        string         `json:"canary_crc,omitempty"`
	Gate             rollout.Status `json:"gate"`
}

func (s *Server) handleAdminPublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req PublishRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return
	}

	var (
		state    *core.State
		crc      uint32
		baseline *quality.Baseline
		err      error
	)
	switch {
	case req.Path != "" && req.Source == "":
		state, crc, baseline, err = s.loadPublishSource(r.Context(), req.Path)
	case req.Source == "upstream" && req.Path == "":
		state, err = s.upstreamPublishSource(r.Context())
	default:
		http.Error(w, `exactly one of "path" or "source":"upstream" required`, http.StatusBadRequest)
		return
	}
	if err != nil {
		s.metrics.publishOutcome("rejected")
		http.Error(w, "publish source: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}

	version, canary, err := s.Publish(state, req.Version, crc, baseline)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	resp := PublishResponse{Version: version, Canary: canary}
	if crc != 0 {
		resp.CRC = fmt.Sprintf("%08x", crc)
	}
	if canary {
		resp.Fraction = s.gate().Fraction()
	}
	s.writeJSON(w, r, resp)
}

// loadPublishSource reads a checkpoint into a fresh state. The envelope
// is verified first — a CRC-corrupt or truncated file is rejected
// before any decode — and the gob load re-verifies end to end.
func (s *Server) loadPublishSource(ctx context.Context, path string) (*core.State, uint32, *quality.Baseline, error) {
	if err := s.opts.Faults.Eval("PublishSource").Apply(ctx); err != nil {
		return nil, 0, nil, err
	}
	env, err := core.EnvelopeInfo(path)
	if err != nil {
		return nil, 0, nil, err
	}

	st := &core.State{}
	if s.opts.ReplicaFactory != nil {
		st.Model = s.opts.ReplicaFactory()
	} else {
		// Single-replica server: the state's own model is the only
		// replica, and loading restores parameters into its tensors.
		// Borrow it from the pool so no forward pass is mid-flight while
		// the load writes — the tensors' content between requests is
		// irrelevant (predictOn restores the composed snapshot first).
		waitCtx, cancel := context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
		select {
		case rep := <-s.pool:
			defer func() { s.pool <- rep }()
			st.Model = rep.model
		case <-waitCtx.Done():
			return nil, 0, nil, fmt.Errorf("serve: no replica free to stage the load: %w", waitCtx.Err())
		}
	}
	baseline, err := st.LoadWithBaseline(path)
	if err != nil {
		return nil, 0, nil, err
	}
	return st, env.CRC, baseline, nil
}

// upstreamPublishSource builds a publishable state from the live
// cluster snapshot: fresh shared parameters over the served
// domain-specific ones.
func (s *Server) upstreamPublishSource(ctx context.Context) (*core.State, error) {
	up := s.opts.Upstream
	if up == nil || up.Snapshot == nil {
		return nil, errors.New("serve: no upstream snapshot source configured")
	}
	if err := s.opts.Faults.Eval("UpstreamSnapshot").Apply(ctx); err != nil {
		return nil, err
	}
	vec, err := up.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("upstream snapshot: %w", err)
	}
	s.mu.Lock()
	cur := s.state
	s.mu.Unlock()
	return &core.State{Model: cur.Model, Shared: vec, Specific: cur.Specific}, nil
}

func (s *Server) handleRolloutStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	v := s.view.Load()
	resp := RolloutStatusResponse{
		IncumbentVersion: v.incumbentV,
		Gate:             s.gate().Status(),
	}
	if v.incumbentCRC != 0 {
		resp.IncumbentCRC = fmt.Sprintf("%08x", v.incumbentCRC)
	}
	if v.canary != nil {
		resp.CanaryVersion = v.canaryV
		if v.canaryCRC != 0 {
			resp.CanaryCRC = fmt.Sprintf("%08x", v.canaryCRC)
		}
	}
	s.writeJSON(w, r, resp)
}

func (s *Server) handleAdminRollback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	d := s.gate().Cancel()
	if d == nil {
		http.Error(w, "no canary in flight", http.StatusConflict)
		return
	}
	s.writeJSON(w, r, d)
}
