package serve

import (
	"math"
	"net/http"
	"strconv"
	"time"
)

// ewmaAlpha weights the service-time estimate toward recent forward
// passes; at 0.2 a regime change (bigger batches, slower snapshot)
// settles in a handful of requests.
const ewmaAlpha = 0.2

// shedReason decides whether a newly arrived prediction should be shed,
// given that pending requests (including this one) are already inside
// the handler. Empty string admits.
func (s *Server) shedReason(pending int64) string {
	return admissionVerdict(pending, s.opts.Replicas, s.opts.MaxQueue,
		s.serviceTime(), s.opts.RequestTimeout)
}

// admissionVerdict is the pure shed policy: requests beyond the
// replica pool queue; a queue past MaxQueue sheds ("queue_full"), and
// even inside it, a queue whose projected drain time already exceeds
// the request deadline sheds now ("deadline") — waiting would only
// turn a fast 503 into a slow one.
func admissionVerdict(pending int64, replicas, maxQueue int, svc, deadline time.Duration) string {
	queued := int(pending) - replicas
	if queued <= 0 {
		return ""
	}
	if queued > maxQueue {
		return "queue_full"
	}
	if svc > 0 && replicas > 0 && time.Duration(queued)*svc/time.Duration(replicas) > deadline {
		return "deadline"
	}
	return ""
}

// shed answers a shed request: 503 with a jittered Retry-After so a
// synchronized herd of clients does not return as one wave.
func (s *Server) shed(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
	s.metrics.shed(reason)
	http.Error(w, "overloaded ("+reason+"): retry later", http.StatusServiceUnavailable)
}

// retryAfter picks the shed backoff in seconds: 1–3, from the seeded
// jitter source.
func (s *Server) retryAfter() int {
	s.shedMu.Lock()
	defer s.shedMu.Unlock()
	if s.shedRng == nil {
		return 1
	}
	return 1 + s.shedRng.Intn(3)
}

// observeServiceTime folds one forward-pass duration into the EWMA via
// lock-free CAS on the float bits. occupancy is how many requests the
// pass served (1 on the inline path, the batch's rider count on the
// coalesced path): the EWMA tracks the *marginal* replica cost per
// request, because that is what admissionVerdict's drain-time
// projection multiplies by the queue depth — pricing a 64-rider batch
// as 64 single-request passes would shed traffic the pool can easily
// absorb.
func (s *Server) observeServiceTime(d time.Duration, occupancy int) {
	if occupancy < 1 {
		occupancy = 1
	}
	for {
		old := s.svcEWMA.Load()
		next := d.Seconds() / float64(occupancy)
		if old != 0 {
			next = (1-ewmaAlpha)*math.Float64frombits(old) + ewmaAlpha*next
		}
		if s.svcEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// serviceTime is the current forward-pass estimate (0 before the first
// observation, which disables the deadline shed).
func (s *Server) serviceTime() time.Duration {
	return time.Duration(math.Float64frombits(s.svcEWMA.Load()) * float64(time.Second))
}
