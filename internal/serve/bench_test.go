package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"mamdr/internal/core"
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/quality"
	"mamdr/internal/synth"
	"mamdr/internal/telemetry"
)

// legacyServer replicates the seed serving path this package shipped
// with: one global mutex around every request and a full parameter
// composition (clone + axpy) plus a snapshot/restore pair per request
// via core.State.Predict. It exists only as the benchmark baseline.
type legacyServer struct {
	mu      sync.Mutex
	state   *core.State
	dataset *data.Dataset
}

func (s *legacyServer) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ins := make([]data.Interaction, len(req.Users))
	for i := range req.Users {
		ins[i] = data.Interaction{User: req.Users[i], Item: req.Items[i]}
	}
	probs := s.state.Predict(s.dataset.MakeBatch(req.Domain, ins))
	json.NewEncoder(w).Encode(PredictResponse{Probabilities: probs})
}

func benchState(b *testing.B) (*core.State, *data.Dataset, func() models.Model) {
	b.Helper()
	ds := synth.Generate(synth.Config{
		Name: "serve-bench", Seed: 71, ConflictStrength: 0.5,
		Domains: []synth.DomainSpec{
			{Name: "a", Samples: 600, CTRRatio: 0.3},
			{Name: "b", Samples: 400, CTRRatio: 0.4},
			{Name: "c", Samples: 300, CTRRatio: 0.35},
		},
	})
	factory := func() models.Model {
		return models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 32, Hidden: []int{64, 32}, Seed: 5})
	}
	st := framework.MustNew("mamdr").Fit(factory(), ds, framework.Config{
		Epochs: 1, BatchSize: 64, Seed: 9,
	}).(*core.State)
	return st, ds, factory
}

// BenchmarkServeThroughput compares the seed global-mutex serving path
// against the replica-pool server at 8 concurrent clients. Run with:
//
//	go test ./internal/serve -bench ServeThroughput -benchtime 2s
func BenchmarkServeThroughput(b *testing.B) {
	st, ds, factory := benchState(b)
	body, err := json.Marshal(PredictRequest{Domain: 1, Users: []int{0, 1, 2, 3}, Items: []int{1, 0, 2, 3}})
	if err != nil {
		b.Fatal(err)
	}

	drive := func(b *testing.B, h http.Handler) {
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				req := httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("predict = %d: %s", w.Code, w.Body)
				}
			}
		})
	}

	b.Run("seed-global-mutex", func(b *testing.B) {
		legacy := &legacyServer{state: st, dataset: ds}
		mux := http.NewServeMux()
		mux.HandleFunc("/predict", legacy.handlePredict)
		drive(b, mux)
	})

	b.Run("replica-pool", func(b *testing.B) {
		srv := NewWithOptions(st, ds, Options{Replicas: 8, ReplicaFactory: factory})
		drive(b, srv.Handler())
	})
}

// BenchmarkTelemetryOverhead measures the serving request path bare
// versus fully instrumented (request-ID middleware, status-code
// counters, pool-wait and per-domain latency histograms, saturation
// gauge). The instrumented/bare ratio is the telemetry tax; the
// acceptance budget is <5%. Run with:
//
//	go test ./internal/serve -bench TelemetryOverhead -benchtime 2s
func BenchmarkTelemetryOverhead(b *testing.B) {
	st, ds, factory := benchState(b)
	body, err := json.Marshal(PredictRequest{Domain: 1, Users: []int{0, 1, 2, 3}, Items: []int{1, 0, 2, 3}})
	if err != nil {
		b.Fatal(err)
	}

	drive := func(b *testing.B, h http.Handler) {
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				req := httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("predict = %d: %s", w.Code, w.Body)
				}
			}
		})
	}

	b.Run("bare", func(b *testing.B) {
		srv := NewWithOptions(st, ds, Options{Replicas: 8, ReplicaFactory: factory})
		drive(b, srv.Handler())
	})

	b.Run("instrumented", func(b *testing.B) {
		srv := NewWithOptions(st, ds, Options{
			Replicas: 8, ReplicaFactory: factory, Metrics: telemetry.New(),
		})
		drive(b, srv.Handler())
	})

	b.Run("instrumented+quality", func(b *testing.B) {
		reg := telemetry.New()
		srv := NewWithOptions(st, ds, Options{
			Replicas: 8, ReplicaFactory: factory, Metrics: reg,
			Quality: quality.NewTracker(reg, quality.Options{Checks: true}),
		})
		drive(b, srv.Handler())
	})
}
