package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mamdr/internal/core"
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/quality"
	"mamdr/internal/quant"
	"mamdr/internal/synth"
	"mamdr/internal/telemetry"
)

// legacyServer replicates the seed serving path this package shipped
// with: one global mutex around every request and a full parameter
// composition (clone + axpy) plus a snapshot/restore pair per request
// via core.State.Predict. It exists only as the benchmark baseline.
type legacyServer struct {
	mu      sync.Mutex
	state   *core.State
	dataset *data.Dataset
}

func (s *legacyServer) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ins := make([]data.Interaction, len(req.Users))
	for i := range req.Users {
		ins[i] = data.Interaction{User: req.Users[i], Item: req.Items[i]}
	}
	probs := s.state.Predict(s.dataset.MakeBatch(req.Domain, ins))
	json.NewEncoder(w).Encode(PredictResponse{Probabilities: probs})
}

func benchState(b testing.TB) (*core.State, *data.Dataset, func() models.Model) {
	b.Helper()
	ds := synth.Generate(synth.Config{
		Name: "serve-bench", Seed: 71, ConflictStrength: 0.5,
		Domains: []synth.DomainSpec{
			{Name: "a", Samples: 600, CTRRatio: 0.3},
			{Name: "b", Samples: 400, CTRRatio: 0.4},
			{Name: "c", Samples: 300, CTRRatio: 0.35},
		},
	})
	factory := func() models.Model {
		return models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 32, Hidden: []int{64, 32}, Seed: 5})
	}
	st := framework.MustNew("mamdr").Fit(factory(), ds, framework.Config{
		Epochs: 1, BatchSize: 64, Seed: 9,
	}).(*core.State)
	return st, ds, factory
}

// BenchmarkServeThroughput compares the seed global-mutex serving path
// against the replica-pool server at 8 concurrent clients. Run with:
//
//	go test ./internal/serve -bench ServeThroughput -benchtime 2s
func BenchmarkServeThroughput(b *testing.B) {
	st, ds, factory := benchState(b)
	body, err := json.Marshal(PredictRequest{Domain: 1, Users: []int{0, 1, 2, 3}, Items: []int{1, 0, 2, 3}})
	if err != nil {
		b.Fatal(err)
	}

	drive := func(b *testing.B, h http.Handler) {
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				req := httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("predict = %d: %s", w.Code, w.Body)
				}
			}
		})
	}

	b.Run("seed-global-mutex", func(b *testing.B) {
		legacy := &legacyServer{state: st, dataset: ds}
		mux := http.NewServeMux()
		mux.HandleFunc("/predict", legacy.handlePredict)
		drive(b, mux)
	})

	b.Run("replica-pool", func(b *testing.B) {
		srv := NewWithOptions(st, ds, Options{Replicas: 8, ReplicaFactory: factory})
		drive(b, srv.Handler())
	})
}

// BenchmarkTelemetryOverhead measures the serving request path bare
// versus fully instrumented (request-ID middleware, status-code
// counters, pool-wait and per-domain latency histograms, saturation
// gauge). The instrumented/bare ratio is the telemetry tax; the
// acceptance budget is <5%. Run with:
//
//	go test ./internal/serve -bench TelemetryOverhead -benchtime 2s
func BenchmarkTelemetryOverhead(b *testing.B) {
	st, ds, factory := benchState(b)
	body, err := json.Marshal(PredictRequest{Domain: 1, Users: []int{0, 1, 2, 3}, Items: []int{1, 0, 2, 3}})
	if err != nil {
		b.Fatal(err)
	}

	drive := func(b *testing.B, h http.Handler) {
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				req := httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("predict = %d: %s", w.Code, w.Body)
				}
			}
		})
	}

	b.Run("bare", func(b *testing.B) {
		srv := NewWithOptions(st, ds, Options{Replicas: 8, ReplicaFactory: factory})
		drive(b, srv.Handler())
	})

	b.Run("instrumented", func(b *testing.B) {
		srv := NewWithOptions(st, ds, Options{
			Replicas: 8, ReplicaFactory: factory, Metrics: telemetry.New(),
		})
		drive(b, srv.Handler())
	})

	b.Run("instrumented+quality", func(b *testing.B) {
		reg := telemetry.New()
		srv := NewWithOptions(st, ds, Options{
			Replicas: 8, ReplicaFactory: factory, Metrics: reg,
			Quality: quality.NewTracker(reg, quality.Options{Checks: true}),
		})
		drive(b, srv.Handler())
	})
}

// BenchmarkServeConcurrent is the bench-guard series for the batched
// serving path: the same concurrent workload with coalescing off
// (one forward per request) and on (micro-batched forwards). Run with:
//
//	go test ./internal/serve -bench ServeConcurrent -benchtime 300ms
func BenchmarkServeConcurrent(b *testing.B) {
	st, ds, factory := benchState(b)
	body, err := json.Marshal(PredictRequest{Domain: 0, Users: []int{0}, Items: []int{1}})
	if err != nil {
		b.Fatal(err)
	}
	drive := func(b *testing.B, h http.Handler) {
		b.SetParallelism(32)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				req := httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("predict = %d: %s", w.Code, w.Body)
				}
			}
		})
	}
	b.Run("batch-off", func(b *testing.B) {
		srv := NewWithOptions(st, ds, Options{Replicas: 2, ReplicaFactory: factory, MaxQueue: 4096})
		drive(b, srv.Handler())
	})
	b.Run("batch-on", func(b *testing.B) {
		srv := NewWithOptions(st, ds, Options{
			Replicas: 2, ReplicaFactory: factory, MaxQueue: 4096,
			BatchMax: 64, BatchLinger: 100 * time.Microsecond,
		})
		defer srv.Close()
		drive(b, srv.Handler())
	})
}

// BenchmarkQuantLookup is the bench-guard series for the quantized
// lookup path: a cache hit returns a shared decoded row; a miss pays
// the int8 row decode. Run with:
//
//	go test ./internal/serve -bench QuantLookup -benchtime 300ms
func BenchmarkQuantLookup(b *testing.B) {
	const rows, cols = 4096, 32
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = float64(i%97)/97 - 0.5
	}
	tbl := quant.Quantize(data, rows, cols)
	fill := func(row int) func([]float64) {
		return func(dst []float64) { tbl.Row(row, dst) }
	}
	b.Run("hit", func(b *testing.B) {
		c := quant.NewRowCache(64)
		k := quant.Key{Snap: 1, Row: 7}
		c.Get(k, cols, fill(7))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Get(k, cols, fill(7))
		}
	})
	b.Run("miss", func(b *testing.B) {
		c := quant.NewRowCache(1) // every distinct row evicts the last
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := i % rows
			c.Get(quant.Key{Snap: 1, Row: r}, cols, fill(r))
		}
	})
}

// BenchmarkComposeSnapshot measures the publish path's composition
// cost with -benchmem. "publish" is what composeState now does: wrap
// references, defer all composition (the lazy scheme). "eager" forces
// every domain's composition inside the loop — the float traffic the
// seed's publish path paid up front. The allocs/op gap is the measured
// satellite: publish-time work no longer scales with the domain zoo.
func BenchmarkComposeSnapshot(b *testing.B) {
	st, ds, factory := benchState(b)
	srv := NewWithOptions(st, ds, Options{Replicas: 1, ReplicaFactory: factory})
	b.Run("publish", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			srv.composeState(st)
		}
	})
	b.Run("eager", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sn := srv.composeState(st)
			for d := 0; d < sn.numDomains(); d++ {
				sn.comp(d)
			}
		}
	})
}
