package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestAdmissionVerdict(t *testing.T) {
	ms := time.Millisecond
	cases := []struct {
		name     string
		pending  int64
		replicas int
		maxQueue int
		svc      time.Duration
		deadline time.Duration
		want     string
	}{
		{"idle", 1, 2, 4, ms, 100 * ms, ""},
		{"all replicas busy, no queue", 2, 2, 4, ms, 100 * ms, ""},
		{"queue within bounds", 5, 2, 4, 0, 100 * ms, ""},
		{"queue overflow", 7, 2, 4, 0, 100 * ms, "queue_full"},
		{"deep overflow", 100, 2, 4, 0, 100 * ms, "queue_full"},
		{"deadline unreachable", 5, 2, 4, 100 * ms, 100 * ms, "deadline"},
		{"slow service but short queue", 3, 2, 4, 100 * ms, 100 * ms, ""},
		{"no service estimate disables deadline", 5, 2, 8, 0, ms, ""},
		{"single replica deadline", 3, 1, 8, 10 * ms, 15 * ms, "deadline"},
	}
	for _, c := range cases {
		if got := admissionVerdict(c.pending, c.replicas, c.maxQueue, c.svc, c.deadline); got != c.want {
			t.Errorf("%s: admissionVerdict(%d, %d, %d, %v, %v) = %q, want %q",
				c.name, c.pending, c.replicas, c.maxQueue, c.svc, c.deadline, got, c.want)
		}
	}
}

func TestObserveServiceTimeEWMA(t *testing.T) {
	s := &Server{}
	if s.serviceTime() != 0 {
		t.Fatalf("initial service time = %v, want 0", s.serviceTime())
	}
	s.observeServiceTime(100*time.Millisecond, 1)
	if got := s.serviceTime(); got != 100*time.Millisecond {
		t.Fatalf("first observation = %v, want 100ms (seeded, not blended with zero)", got)
	}
	s.observeServiceTime(0, 1)
	if got := s.serviceTime(); got < 79*time.Millisecond || got > 81*time.Millisecond {
		t.Fatalf("after 0 observation = %v, want ~80ms (alpha %.1f)", got, ewmaAlpha)
	}
}

// TestObserveServiceTimeBatchOccupancy: the EWMA must track the
// *marginal* per-request cost. A 64-rider batch whose forward takes
// 64ms contributes 1ms per request — the same estimate as a 1ms
// single-request pass — not 64ms, which would make admissionVerdict's
// drain-time projection shed traffic a batching pool absorbs trivially.
func TestObserveServiceTimeBatchOccupancy(t *testing.T) {
	single := &Server{}
	single.observeServiceTime(time.Millisecond, 1)

	batched := &Server{}
	batched.observeServiceTime(64*time.Millisecond, 64)

	if s, b := single.serviceTime(), batched.serviceTime(); s != b {
		t.Fatalf("marginal cost diverges: occupancy 1 -> %v, occupancy 64 -> %v", s, b)
	}
	// The projection consequence, end to end: with a 64ms-per-batch
	// estimate wrongly priced as per-request, a modest queue sheds on
	// "deadline"; priced marginally it admits.
	wrong := &Server{}
	wrong.observeServiceTime(64*time.Millisecond, 1)
	if got := admissionVerdict(6, 2, 8, wrong.serviceTime(), 100*time.Millisecond); got != "deadline" {
		t.Fatalf("sanity: naive pricing should shed, got %q", got)
	}
	if got := admissionVerdict(6, 2, 8, batched.serviceTime(), 100*time.Millisecond); got != "" {
		t.Fatalf("marginal pricing should admit, got %q", got)
	}
	// Degenerate occupancy never divides by zero or inflates the EWMA.
	z := &Server{}
	z.observeServiceTime(5*time.Millisecond, 0)
	if got := z.serviceTime(); got != 5*time.Millisecond {
		t.Fatalf("occupancy 0 clamps to 1: got %v, want 5ms", got)
	}
}

// TestShedFailsFast is the saturation acceptance check: a request that
// the admission gate rejects must fail in well under 5ms — before the
// body is even decoded — with a jittered Retry-After, and the gate must
// reopen as soon as the pressure is gone.
func TestShedFailsFast(t *testing.T) {
	st, ds, _ := testState(t)
	s := NewWithOptions(st, ds, Options{MaxQueue: 4})
	h := s.Handler()
	req := PredictRequest{Domain: 0, Users: []int{0}, Items: []int{0}}

	// Simulate a saturated handler: pending far beyond replicas+queue.
	s.pending.Add(20)
	start := time.Now()
	w := postJSON(t, h, "/predict", req)
	elapsed := time.Since(start)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed predict = %d, want 503: %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "overloaded (queue_full)") {
		t.Fatalf("shed body = %q", w.Body.String())
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 1 || ra > 3 {
		t.Fatalf("Retry-After = %q, want 1-3", w.Header().Get("Retry-After"))
	}
	if elapsed >= 5*time.Millisecond {
		t.Fatalf("shed took %v, want <5ms", elapsed)
	}

	s.pending.Add(-20)
	if w := postJSON(t, h, "/predict", req); w.Code != http.StatusOK {
		t.Fatalf("predict after pressure released = %d: %s", w.Code, w.Body)
	}
}

// TestRetryAfterJitterIsSeeded: the jitter sequence is a pure function
// of ShedSeed, so drills replay bit-identically.
func TestRetryAfterJitterIsSeeded(t *testing.T) {
	st, ds, _ := testState(t)
	seq := func() []int {
		s := NewWithOptions(st, ds, Options{ShedSeed: 42})
		var out []int
		for i := 0; i < 8; i++ {
			out = append(out, s.retryAfter())
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter diverged at %d: %v vs %v", i, a, b)
		}
		if a[i] < 1 || a[i] > 3 {
			t.Fatalf("jitter %d out of range 1-3", a[i])
		}
	}
}

// BenchmarkShedUnderSaturation measures the fail-fast path end to end
// through the handler chain — the cost of telling a client to go away
// while the pool is drowning.
func BenchmarkShedUnderSaturation(b *testing.B) {
	st, ds, _ := testState(b)
	s := NewWithOptions(st, ds, Options{MaxQueue: 4})
	h := s.Handler()
	s.pending.Add(100)
	body, _ := marshalPredict(PredictRequest{Domain: 0, Users: []int{0}, Items: []int{0}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := newPredictRequest(body)
		w := &discardResponseWriter{h: make(http.Header)}
		h.ServeHTTP(w, req)
		if w.code != http.StatusServiceUnavailable {
			b.Fatalf("code = %d", w.code)
		}
	}
}

// BenchmarkPredictUnloaded is the contrast benchmark: the same request
// when the pool is free.
func BenchmarkPredictUnloaded(b *testing.B) {
	st, ds, _ := testState(b)
	s := NewWithOptions(st, ds, Options{})
	h := s.Handler()
	body, _ := marshalPredict(PredictRequest{Domain: 0, Users: []int{0}, Items: []int{0}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := newPredictRequest(body)
		w := &discardResponseWriter{h: make(http.Header)}
		h.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("code = %d", w.code)
		}
	}
}

// --- benchmark plumbing ---

func marshalPredict(r PredictRequest) ([]byte, error) {
	return json.Marshal(r)
}

func newPredictRequest(body []byte) *http.Request {
	req, _ := http.NewRequest(http.MethodPost, "/predict", bytes.NewReader(body))
	return req
}

// discardResponseWriter is a minimal allocation-light recorder.
type discardResponseWriter struct {
	h    http.Header
	code int
}

func (w *discardResponseWriter) Header() http.Header { return w.h }
func (w *discardResponseWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return len(b), nil
}
func (w *discardResponseWriter) WriteHeader(code int) { w.code = code }
