// This file is the micro-batched serving path: with Options.BatchMax
// set, concurrent /predict requests for the same domain coalesce into
// one batched forward pass — B single-row requests become one B-row
// MatMul through the blocked GEMM kernels — and the scores demultiplex
// back to the waiting handlers. The kernels' determinism contract
// (every output element accumulates in textbook order regardless of
// blocking or row count) plus the models' strictly per-row inference
// math make row r of a B-row forward bit-identical to a 1-row forward
// of the same request, so batching changes throughput and nothing
// else.

package serve

import (
	"context"
	"errors"
	"net/http"
	"time"

	"mamdr/internal/batch"
	"mamdr/internal/data"
	"mamdr/internal/trace"
)

// errNoReplica is the batched path's replica-acquisition timeout; the
// handler maps it to the same 503 + Retry-After the inline path emits.
var errNoReplica = errors.New("serve: no model replica available")

// pendingPredict rides a batch item from handler to executor.
type pendingPredict struct {
	rid    string
	domain int
	ins    []data.Interaction
}

// batchedScores rides back: this request's slice of the batched
// forward, plus the identity of the snapshot that served it.
type batchedScores struct {
	probs   []float64
	version uint64
	name    string
}

// predictBatched submits one validated request to the coalescer and
// waits for its slice of the batched forward. Everything after the
// result — quality recording, gate observation, response shape — is
// the shared respondPredict tail, identical to the inline path.
func (s *Server) predictBatched(w http.ResponseWriter, r *http.Request, start time.Time, rid string, domain int, ins []data.Interaction) {
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	it := batch.NewItem(ctx, len(ins), &pendingPredict{rid: rid, domain: domain, ins: ins})
	if err := s.coalescer.Submit(domain, it); err != nil {
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	select {
	case res := <-it.Result():
		if res.Err != nil {
			if errors.Is(res.Err, errNoReplica) || errors.Is(res.Err, context.DeadlineExceeded) {
				w.Header().Set("Retry-After", "1")
				s.metrics.timeout()
				http.Error(w, "no model replica available", http.StatusServiceUnavailable)
				return
			}
			http.Error(w, "prediction failed: "+res.Err.Error(), http.StatusInternalServerError)
			return
		}
		out := res.Value.(*batchedScores)
		s.respondPredict(w, r, start, rid, out.name, out.version, out.probs)
	case <-ctx.Done():
		// The deadline fired while the batch was still queued or flying;
		// the item's eventual result goes to its buffered channel and is
		// garbage collected with it.
		w.Header().Set("Retry-After", "1")
		s.metrics.timeout()
		http.Error(w, "no model replica available", http.StatusServiceUnavailable)
	}
}

// runBatch executes one coalesced flush. ONE atomic view load pins
// every rider to the same world: a publish, promote, or rollback that
// lands mid-batch swaps the view for the *next* flush and never tears
// this one — the snapshots read here are immutable and stay pinned by
// this frame until the batch completes.
func (s *Server) runBatch(domain int, items []*batch.Item) {
	v := s.view.Load()
	live := items[:0]
	for _, it := range items {
		if err := it.Ctx.Err(); err != nil {
			it.Fail(err)
			continue
		}
		live = append(live, it)
	}
	if len(live) == 0 {
		return
	}

	waitStart := time.Now()
	_, waitSpan := trace.Start(context.Background(), "serve.pool_wait")
	timer := time.NewTimer(s.opts.RequestTimeout)
	defer timer.Stop()
	var rep *replica
	select {
	case rep = <-s.pool:
		waitSpan.End()
		s.metrics.acquire(time.Since(waitStart))
	case <-timer.C:
		waitSpan.EndWith(trace.A("timeout", true))
		for _, it := range live {
			it.Fail(errNoReplica)
		}
		return
	}
	defer func() {
		s.pool <- rep
		s.metrics.release()
	}()

	// Rollout-arm routing is preserved under batching: each request
	// hashes to incumbent or canary independently by its request ID,
	// exactly as the inline path routes, so one micro-batch may split
	// across arms — each arm then gets its own batched forward.
	var groups [2][]*batch.Item
	for _, it := range live {
		p := it.Data.(*pendingPredict)
		arm := 0
		if v.canary != nil && p.domain < v.canary.numDomains() && routeToCanary(p.rid, v.fraction) {
			arm = 1
		}
		groups[arm] = append(groups[arm], it)
	}

	start := time.Now()
	requests := 0
	for arm, group := range groups {
		if len(group) == 0 {
			continue
		}
		snap, version := v.incumbent, v.incumbentV
		if arm == 1 {
			snap, version = v.canary, v.canaryV
		}
		s.forwardGroup(rep, snap, version, domain, group)
		requests += len(group)
	}
	// The EWMA sees the batch's wall time spread over its riders — the
	// marginal replica cost per request, which is what the admission
	// gate's drain-time projection prices (see observeServiceTime).
	s.observeServiceTime(time.Since(start), requests)
}

// forwardGroup concatenates one arm's requests into a single batch,
// runs one forward pass, and splits the scores back per request.
func (s *Server) forwardGroup(rep *replica, snap *snapshot, version uint64, domain int, group []*batch.Item) {
	// Chaos hook: one "Predict" fault fails this forward the way a
	// broken pass would; every rider of the faulted forward sees it.
	if err := s.opts.Faults.Eval("Predict").Apply(context.Background()); err != nil {
		for _, it := range group {
			it.Fail(err)
		}
		return
	}
	rows := 0
	for _, it := range group {
		rows += len(it.Data.(*pendingPredict).ins)
	}
	ins := make([]data.Interaction, 0, rows)
	for _, it := range group {
		ins = append(ins, it.Data.(*pendingPredict).ins...)
	}
	b := s.dataset.MakeBatch(domain, ins)
	_, span := trace.Start(context.Background(), "serve.batch_predict",
		trace.A("domain", snap.names[domain]), trace.A("requests", len(group)),
		trace.A("rows", rows), trace.A("snapshot_version", version))
	probs := s.predictOn(rep, snap, domain, b)
	span.End()
	off := 0
	for _, it := range group {
		n := len(it.Data.(*pendingPredict).ins)
		it.Resolve(&batchedScores{probs: probs[off : off+n : off+n], version: version, name: snap.names[domain]})
		off += n
	}
}
