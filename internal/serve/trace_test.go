package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mamdr/internal/trace"
)

// attrMap flattens a span's attributes for assertions.
func attrMap(s *trace.Span) map[string]any {
	out := map[string]any{}
	for _, a := range s.Attrs() {
		out[a.Key] = a.Value
	}
	return out
}

// TestRequestTracing verifies one prediction produces a serve.request
// root span keyed to the response's X-Request-ID, with pool_wait and
// predict spans parented to it in the same trace.
func TestRequestTracing(t *testing.T) {
	st, ds, _ := testState(t)
	tracer := trace.New(trace.Options{Sample: 1, FlightSize: -1})
	spans := trace.NewCollector(0)
	tracer.AddSink(spans)
	s := NewWithOptions(st, ds, Options{Tracer: tracer})

	w := postJSON(t, s.Handler(), "/predict",
		PredictRequest{Domain: 0, Users: []int{0, 1}, Items: []int{1, 0}})
	if w.Code != http.StatusOK {
		t.Fatalf("predict: %d %s", w.Code, w.Body.String())
	}
	rid := w.Header().Get("X-Request-ID")
	if rid == "" {
		t.Fatal("no X-Request-ID header")
	}

	var root *trace.Span
	byName := map[string]*trace.Span{}
	for _, sp := range spans.Spans() {
		byName[sp.Name] = sp
		if sp.Name == "serve.request" {
			root = sp
		}
	}
	if root == nil {
		t.Fatalf("no serve.request span; got %v", names(spans.Spans()))
	}
	attrs := attrMap(root)
	if attrs["rid"] != rid {
		t.Fatalf("root span rid = %v, response header = %q", attrs["rid"], rid)
	}
	if attrs["status"] != http.StatusOK {
		t.Fatalf("root span status = %v", attrs["status"])
	}
	for _, child := range []string{"serve.pool_wait", "serve.predict"} {
		sp, ok := byName[child]
		if !ok {
			t.Fatalf("missing %s span; got %v", child, names(spans.Spans()))
		}
		if sp.ParentID != root.ID || sp.TraceID != root.TraceID {
			t.Fatalf("%s not parented to serve.request root", child)
		}
	}
}

// TestPoolSaturationDumpsFlightRecorder verifies a replica-pool timeout
// raises exactly one pool_saturation anomaly into the flight recorder.
func TestPoolSaturationDumpsFlightRecorder(t *testing.T) {
	st, ds, _ := testState(t)
	tracer := trace.New(trace.Options{
		Sample: 1, FlightSize: 64, FlightPath: t.TempDir() + "/flight",
	})
	s := NewWithOptions(st, ds, Options{
		Tracer:         tracer,
		RequestTimeout: 30 * time.Millisecond,
	})

	// Drain the single-replica pool so every prediction times out.
	rep := <-s.pool
	defer func() { s.pool <- rep }()

	for i := 0; i < 3; i++ {
		w := postJSON(t, s.Handler(), "/predict",
			PredictRequest{Domain: 0, Users: []int{0}, Items: []int{1}})
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("request %d: code %d, want 503", i, w.Code)
		}
	}
	dumps := tracer.Flight().Dumps()
	if len(dumps) != 1 {
		t.Fatalf("flight dumps = %d, want exactly 1", len(dumps))
	}
	if dumps[0].Kind != "pool_saturation" {
		t.Fatalf("dump kind = %q", dumps[0].Kind)
	}
}

// TestDebugTraceEndpoint verifies capture-on-demand is mounted when a
// tracer is configured.
func TestDebugTraceEndpoint(t *testing.T) {
	st, ds, _ := testState(t)
	tracer := trace.New(trace.Options{Sample: 1, FlightSize: -1})
	s := NewWithOptions(st, ds, Options{Tracer: tracer})

	req := httptest.NewRequest(http.MethodGet, "/debug/trace?sec=0", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK && w.Code != http.StatusBadRequest {
		t.Fatalf("/debug/trace: %d %s", w.Code, w.Body.String())
	}
}

func names(spans []*trace.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}
