// Tests for the micro-batched serving path: bit-identity with the
// unbatched path, rollout-arm routing inside mixed batches, snapshot
// pinning against mid-batch rollbacks, and per-request deadlines.

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"

	"mamdr/internal/core"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/quality"
	"mamdr/internal/rollout"
	"mamdr/internal/synth"
	"mamdr/internal/telemetry"
)

// concurrentPredict fires all reqs at the handler simultaneously (one
// goroutine each, released together) and returns the decoded responses
// in request order, failing the test on any non-200.
func concurrentPredict(t *testing.T, h http.Handler, rids []string, reqs []PredictRequest) []PredictResponse {
	t.Helper()
	out := make([]PredictResponse, len(reqs))
	errs := make([]string, len(reqs))
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rid := ""
			if rids != nil {
				rid = rids[i]
			}
			w := predictRID(t, h, rid, reqs[i])
			if w.Code != http.StatusOK {
				errs[i] = fmt.Sprintf("predict %d = %d: %s", i, w.Code, w.Body)
				return
			}
			if err := json.NewDecoder(w.Body).Decode(&out[i]); err != nil {
				errs[i] = err.Error()
			}
		}(i)
	}
	close(start)
	wg.Wait()
	for _, e := range errs {
		if e != "" {
			t.Fatal(e)
		}
	}
	return out
}

// TestBatchedMatchesUnbatchedBitIdentical is the correctness anchor:
// at -snapshot-quant=off, scores served through coalesced multi-request
// batches are bit-identical to the single-request path — the kernels'
// determinism contract (textbook accumulation order regardless of row
// count) plus strictly per-row inference math, observed end to end.
func TestBatchedMatchesUnbatchedBitIdentical(t *testing.T) {
	st, ds, factory := testState(t)
	plain := NewWithOptions(st, ds, Options{Replicas: 2, ReplicaFactory: factory})
	reg := telemetry.New()
	batched := NewWithOptions(st, ds, Options{
		Replicas: 2, ReplicaFactory: factory, Metrics: reg, MaxQueue: 1024,
		BatchMax: 64, BatchLinger: 20 * time.Millisecond,
	})
	defer batched.Close()

	reqs := make([]PredictRequest, 24)
	for i := range reqs {
		reqs[i] = PredictRequest{
			Domain: i % 2,
			Users:  []int{i % ds.NumUsers, (i * 7) % ds.NumUsers},
			Items:  []int{(i * 3) % ds.NumItems, (i + 5) % ds.NumItems},
		}
	}
	want := make([][]float64, len(reqs))
	ph := plain.Handler()
	for i, r := range reqs {
		var resp PredictResponse
		if err := json.NewDecoder(postJSON(t, ph, "/predict", r).Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		want[i] = resp.Probabilities
	}

	got := concurrentPredict(t, batched.Handler(), nil, reqs)
	for i := range reqs {
		if len(got[i].Probabilities) != len(want[i]) {
			t.Fatalf("request %d: %d probabilities, want %d", i, len(got[i].Probabilities), len(want[i]))
		}
		for j := range want[i] {
			if got[i].Probabilities[j] != want[i][j] {
				t.Fatalf("request %d pair %d: batched %v != unbatched %v (must be bit-identical)",
					i, j, got[i].Probabilities[j], want[i][j])
			}
		}
	}
	// The comparison is only meaningful if coalescing actually happened:
	// more requests than flushes means at least one multi-request batch.
	flushes := reg.Histogram("mamdr_serve_batch_requests", "", []float64{1, 2, 4, 8, 16, 32, 64, 128})
	if flushes.Sum() <= float64(flushes.Count()) {
		t.Fatalf("no multi-request batch formed (%d flushes for %.0f requests); raise the linger",
			flushes.Count(), flushes.Sum())
	}
}

// TestMixedArmBatchAttributesVersions: requests hash to incumbent or
// canary independently inside one micro-batch, each arm runs its own
// forward, and the JoinBuffer entry for every request carries the
// version of the snapshot that actually served it — labels arriving
// mid-canary credit the right arm.
func TestMixedArmBatchAttributesVersions(t *testing.T) {
	st, ds, factory := testState(t)
	reg := telemetry.New()
	s := NewWithOptions(st, ds, Options{
		Replicas: 2, ReplicaFactory: factory, Metrics: reg, MaxQueue: 1024,
		Quality:  quality.NewTracker(reg, quality.Options{}),
		BatchMax: 64, BatchLinger: 20 * time.Millisecond,
	})
	defer s.Close()
	// A gate must be attached for Publish to stage a canary; thresholds
	// are set unreachably high so it never decides mid-test.
	s.SetRollout(rollout.New(s, reg, nil, rollout.Config{
		Fraction: 0.5, MinLabeled: 1 << 20, MinScores: 1 << 20,
	}))
	if _, canary, err := s.Publish(cloneState(st, factory()), 0, 0xfeed, nil); err != nil || !canary {
		t.Fatalf("Publish = (canary %v, %v)", canary, err)
	}

	const perArm = 8
	incRIDs := ridsFor(0.5, false, perArm, "inc")
	canRIDs := ridsFor(0.5, true, perArm, "can")
	rids := append(append([]string(nil), incRIDs...), canRIDs...)
	reqs := make([]PredictRequest, len(rids))
	for i := range reqs {
		// One domain: every request lands in the same coalescer queue, so
		// the batches that form span both arms.
		reqs[i] = PredictRequest{Domain: 0, Users: []int{i % ds.NumUsers}, Items: []int{(i * 3) % ds.NumItems}}
	}
	concurrentPredict(t, s.Handler(), rids, reqs)

	flushes := reg.Histogram("mamdr_serve_batch_requests", "", []float64{1, 2, 4, 8, 16, 32, 64, 128})
	if flushes.Sum() <= float64(flushes.Count()) {
		t.Fatalf("no multi-request batch formed (%d flushes for %.0f requests)", flushes.Count(), flushes.Sum())
	}
	for _, rid := range incRIDs {
		p, ok := s.feedback.Take(rid)
		if !ok || p.Version != 1 {
			t.Fatalf("incumbent rid %s: pending = %+v (ok=%v), want version 1", rid, p, ok)
		}
	}
	for _, rid := range canRIDs {
		p, ok := s.feedback.Take(rid)
		if !ok || p.Version != 2 {
			t.Fatalf("canary rid %s: pending = %+v (ok=%v), want version 2", rid, p, ok)
		}
	}
}

// TestMidBatchRollbackDoesNotTear hammers a batching server with
// predictions while canaries publish and roll back concurrently. The
// runBatch frame pins ONE view load for its whole flush, and the canary
// is a bit-identical clone, so every response must be 200 with exactly
// the baseline scores — a torn batch (half old snapshot, half dropped
// canary) would surface as an error or a score drift. Run with -race.
func TestMidBatchRollbackDoesNotTear(t *testing.T) {
	st, ds, factory := testState(t)
	reg := telemetry.New()
	s := NewWithOptions(st, ds, Options{
		Replicas: 2, ReplicaFactory: factory, Metrics: reg, MaxQueue: 1024,
		BatchMax: 16, BatchLinger: 200 * time.Microsecond,
	})
	defer s.Close()
	s.SetRollout(rollout.New(s, reg, nil, rollout.Config{
		Fraction: 0.5, MinLabeled: 1 << 20, MinScores: 1 << 20,
	}))
	h := s.Handler()

	req := PredictRequest{Domain: 0, Users: []int{1, 2}, Items: []int{0, 3}}
	var baseline PredictResponse
	if err := json.NewDecoder(postJSON(t, h, "/predict", req).Body).Decode(&baseline); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, canary, err := s.Publish(cloneState(st, factory()), 0, 0, nil); err != nil || !canary {
				t.Errorf("publish %d = (canary %v, %v)", i, canary, err)
				return
			}
			time.Sleep(300 * time.Microsecond)
			// Cancel through the gate (the /admin/rollback path): the
			// controller clears its own canary state and invokes the
			// Fleet rollback.
			if d := s.gate().Cancel(); d == nil {
				t.Errorf("cancel %d: no canary in flight", i)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				w := predictRID(t, h, fmt.Sprintf("tear-%d-%03d", g, i), req)
				if w.Code != http.StatusOK {
					t.Errorf("goroutine %d request %d = %d: %s", g, i, w.Code, w.Body)
					return
				}
				var resp PredictResponse
				if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
					t.Error(err)
					return
				}
				for j := range baseline.Probabilities {
					if resp.Probabilities[j] != baseline.Probabilities[j] {
						t.Errorf("goroutine %d request %d pair %d: %v != baseline %v (torn batch?)",
							g, i, j, resp.Probabilities[j], baseline.Probabilities[j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
}

// TestBatchDeadlineRespected: a batched request whose replica never
// frees up fails with the same 503 + Retry-After contract as the
// inline path, within its own deadline.
func TestBatchDeadlineRespected(t *testing.T) {
	st, ds, _ := testState(t)
	s := NewWithOptions(st, ds, Options{
		RequestTimeout: 30 * time.Millisecond,
		BatchMax:       8, BatchLinger: 100 * time.Microsecond,
	})
	defer s.Close()
	rep := <-s.pool // starve the pool: single replica held by "another request"
	defer func() { s.pool <- rep }()

	start := time.Now()
	w := postJSON(t, s.Handler(), "/predict", PredictRequest{Domain: 0, Users: []int{0}, Items: []int{0}})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("starved predict = %d: %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline took %v, want ~30ms", elapsed)
	}
}

// TestBatchCloseShedsCleanly: submissions after Close get a clean 503,
// not a hang or a panic.
func TestBatchCloseShedsCleanly(t *testing.T) {
	st, ds, _ := testState(t)
	s := NewWithOptions(st, ds, Options{BatchMax: 8})
	s.Close()
	w := postJSON(t, s.Handler(), "/predict", PredictRequest{Domain: 0, Users: []int{0}, Items: []int{0}})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("predict after Close = %d: %s", w.Code, w.Body)
	}
}

// TestQuantServingStaysClose: under -snapshot-quant=int8 the served
// scores track the exact float64 scores within a coarse bound (the
// per-row quantization error is scale/2 per element), and the hot-row
// cache actually carries the lookups.
func TestQuantServingStaysClose(t *testing.T) {
	st, ds, factory := testState(t)
	qs := NewWithOptions(st, ds, Options{
		Replicas: 2, ReplicaFactory: factory, SnapshotQuant: "int8", QuantCacheRows: 8,
	})
	if qs.quantCfg == nil {
		t.Fatal("test model has embedding tables; quantCfg must be armed")
	}
	ref := NewWithOptions(st, ds, Options{Replicas: 2, ReplicaFactory: factory})
	h, rh := qs.Handler(), ref.Handler()

	for i := 0; i < 12; i++ {
		req := PredictRequest{
			Domain: i % 2,
			Users:  []int{i % ds.NumUsers},
			Items:  []int{(i * 3) % ds.NumItems},
		}
		var got, exact PredictResponse
		if err := json.NewDecoder(postJSON(t, h, "/predict", req).Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(postJSON(t, rh, "/predict", req).Body).Decode(&exact); err != nil {
			t.Fatal(err)
		}
		for j := range exact.Probabilities {
			if d := got.Probabilities[j] - exact.Probabilities[j]; d > 0.05 || d < -0.05 {
				t.Fatalf("request %d pair %d: int8 score %v vs exact %v (|Δ|=%v too large)",
					i, j, got.Probabilities[j], exact.Probabilities[j], d)
			}
		}
	}
	if hits, misses := qs.quantCfg.cache.Stats(); hits+misses == 0 {
		t.Fatal("quantized serving never touched the row cache")
	}
}

// TestBatchThroughputGain is the acceptance measurement, gated behind
// MAMDR_SMOKE_BATCH=1 (run by `make smoke-batch`): at high concurrency
// on a small replica pool, coalescing must lift throughput at least 5×
// over one-forward-per-request.
func TestBatchThroughputGain(t *testing.T) {
	if os.Getenv("MAMDR_SMOKE_BATCH") == "" {
		t.Skip("set MAMDR_SMOKE_BATCH=1 (make smoke-batch) to run the throughput acceptance check")
	}
	// Production-shaped state: the embedding tables dominate the
	// parameter vector (the paper's CTR regime, §IV-E), so the
	// unbatched path is bound by its per-request full-vector restore —
	// precisely the cost one batched forward amortizes over its riders.
	ds := synth.Generate(synth.Config{
		Name: "serve-tput", Seed: 83, ConflictStrength: 0.5,
		NumUsers: 20000, NumItems: 8000,
		Domains: []synth.DomainSpec{
			{Name: "a", Samples: 6000, CTRRatio: 0.3},
			{Name: "b", Samples: 4000, CTRRatio: 0.4},
		},
	})
	factory := func() models.Model {
		return models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 32, Hidden: []int{64, 32}, Seed: 5})
	}
	st := framework.MustNew("mamdr").Fit(factory(), ds, framework.Config{
		Epochs: 1, BatchSize: 64, Seed: 9,
	}).(*core.State)
	req := PredictRequest{Domain: 0, Users: []int{0}, Items: []int{1}}

	measure := func(h http.Handler) float64 {
		const clients = 64
		const window = 700 * time.Millisecond
		var done int64
		var mu sync.Mutex
		deadline := time.Now().Add(window)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				n := 0
				for time.Now().Before(deadline) {
					w := postJSON(t, h, "/predict", req)
					if w.Code != http.StatusOK {
						t.Errorf("predict = %d: %s", w.Code, w.Body)
						return
					}
					n++
				}
				mu.Lock()
				done += int64(n)
				mu.Unlock()
			}()
		}
		wg.Wait()
		return float64(done) / window.Seconds()
	}

	plain := NewWithOptions(st, ds, Options{Replicas: 2, ReplicaFactory: factory, MaxQueue: 1024})
	baseline := measure(plain.Handler())

	batched := NewWithOptions(st, ds, Options{
		Replicas: 2, ReplicaFactory: factory, MaxQueue: 1024,
		BatchMax: 64, BatchLinger: 500 * time.Microsecond,
	})
	defer batched.Close()
	coalesced := measure(batched.Handler())

	gain := coalesced / baseline
	t.Logf("throughput: unbatched %.0f req/s, batched %.0f req/s (%.1fx)", baseline, coalesced, gain)
	if gain < 5 {
		t.Fatalf("batching gain %.2fx < 5x acceptance floor", gain)
	}
}
