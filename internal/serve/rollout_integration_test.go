// Integration tests for the live rollout path: publish → canary →
// promote/rollback, end to end through the HTTP surface. The central
// claim under test is the safety contract: a quality-regressing canary
// is rolled back automatically with zero 5xx responses, and the
// incumbent's post-rollback predictions are bit-identical to never
// having published.

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"mamdr/internal/core"
	"mamdr/internal/data"
	"mamdr/internal/faultinject"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/paramvec"
	"mamdr/internal/quality"
	"mamdr/internal/rollout"
	"mamdr/internal/telemetry"
)

// cloneState deep-copies a state's parameters over a fresh model —
// publishing the clone serves bit-identical scores.
func cloneState(st *core.State, model models.Model) *core.State {
	spec := make([]paramvec.Vector, len(st.Specific))
	for d := range st.Specific {
		spec[d] = st.Specific[d].Clone()
	}
	return &core.State{Model: model, Shared: st.Shared.Clone(), Specific: spec}
}

// poisonState builds a structurally valid but quality-destroyed state:
// the shared parameters are negated and amplified, the way a corrupted
// or mistrained checkpoint regresses quality without failing any
// structural validation.
func poisonState(st *core.State, model models.Model) *core.State {
	bad := cloneState(st, model)
	for i := range bad.Shared {
		for j := range bad.Shared[i] {
			bad.Shared[i][j] = -4 * bad.Shared[i][j]
		}
	}
	return bad
}

// ridsFor picks n request IDs that routeToCanary assigns to the wanted
// arm under fraction — tests choose their arm by choosing their
// X-Request-ID, exactly like the routing contract promises.
func ridsFor(fraction float64, canary bool, n int, prefix string) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		rid := fmt.Sprintf("%s-%05d", prefix, i)
		if routeToCanary(rid, fraction) == canary {
			out = append(out, rid)
		}
	}
	return out
}

// predictRID posts a prediction under an explicit request ID.
func predictRID(t *testing.T, h http.Handler, rid string, req PredictRequest) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/predict", &buf)
	if rid != "" {
		r.Header.Set("X-Request-ID", rid)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// decisionLog collects gate decisions concurrency-safely.
type decisionLog struct {
	mu sync.Mutex
	ds []rollout.Decision
}

func (l *decisionLog) add(d rollout.Decision) {
	l.mu.Lock()
	l.ds = append(l.ds, d)
	l.mu.Unlock()
}

func (l *decisionLog) all() []rollout.Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]rollout.Decision(nil), l.ds...)
}

// rolloutPairs is a fixed probe workload: one user-item pair per
// request, bounded by the dataset's actual user/item counts.
func rolloutPairs(ds *data.Dataset) []PredictRequest {
	pairs := make([]PredictRequest, 24)
	for i := range pairs {
		pairs[i] = PredictRequest{
			Domain: i % 2,
			Users:  []int{i % ds.NumUsers},
			Items:  []int{(i*3 + 1) % ds.NumItems},
		}
	}
	return pairs
}

// groundTruthLabels queries the incumbent for every pair and labels
// each pair by whether its score is above the median — by construction
// the incumbent ranks these labels perfectly, so any canary that
// scrambles scores shows an AUC regression.
func groundTruthLabels(t *testing.T, h http.Handler, pairs []PredictRequest) []bool {
	t.Helper()
	probs := make([]float64, len(pairs))
	for i, p := range pairs {
		w := predictRID(t, h, fmt.Sprintf("gt-%05d", i), p)
		if w.Code != http.StatusOK {
			t.Fatalf("ground-truth predict %d = %d: %s", i, w.Code, w.Body)
		}
		var resp PredictResponse
		if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		probs[i] = resp.Probabilities[0]
	}
	sorted := append([]float64(nil), probs...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	labels := make([]bool, len(pairs))
	for i, p := range probs {
		labels[i] = p >= median
	}
	return labels
}

// TestPoisonedCanaryAutoRollsBackBitIdentical is the acceptance drill:
// a quality-regressing canary takes its traffic fraction, the gate
// collects prequential evidence from both arms, rolls the canary back,
// and the incumbent serves on — bit-identical to never having
// published, with zero 5xx along the way.
func TestPoisonedCanaryAutoRollsBackBitIdentical(t *testing.T) {
	st, ds, factory := testState(t)
	reg := telemetry.New()
	s := NewWithOptions(st, ds, Options{
		Replicas: 2, ReplicaFactory: factory,
		Metrics: reg,
		Quality: quality.NewTracker(reg, quality.Options{}),
	})
	var dl decisionLog
	ctrl := rollout.New(s, reg, nil, rollout.Config{
		Fraction:   0.5,
		MinLabeled: 32,
		MinScores:  1 << 20, // PSI gate disabled: force the labeled (AUC) path
		OnDecision: dl.add,
	})
	s.SetRollout(ctrl)
	h := s.Handler()

	pairs := rolloutPairs(ds)
	labels := groundTruthLabels(t, h, pairs)

	// Baseline: the incumbent's exact response bytes for a fixed probe
	// set. JSON float64 encoding round-trips, so byte equality is score
	// equality.
	verifyRIDs := ridsFor(0.5, false, 8, "verify")
	baseline := make(map[string]string, len(verifyRIDs))
	for i, rid := range verifyRIDs {
		w := predictRID(t, h, rid, pairs[i%len(pairs)])
		if w.Code != http.StatusOK {
			t.Fatalf("baseline predict = %d: %s", w.Code, w.Body)
		}
		baseline[rid] = w.Body.String()
	}

	version, canary, err := s.Publish(poisonState(st, factory()), 0, 0xfeed, nil)
	if err != nil || !canary || version != 2 {
		t.Fatalf("Publish = (%d, %v, %v), want (2, true, nil)", version, canary, err)
	}
	if inc, can := s.Versions(); inc != 1 || can != 2 {
		t.Fatalf("Versions during canary = (%d, %d), want (1, 2)", inc, can)
	}
	ready := httptest.NewRecorder()
	h.ServeHTTP(ready, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if ready.Code != http.StatusOK || !strings.Contains(ready.Body.String(), "canary v2 at 50%") {
		t.Fatalf("readyz during canary = %d %q", ready.Code, ready.Body.String())
	}

	// Drive both arms with labeled feedback. Every response along the
	// way must be a success: a rollout must never surface as a 5xx.
	incRIDs := ridsFor(0.5, false, 48, "inc")
	canRIDs := ridsFor(0.5, true, 48, "can")
	feed := func(rid string, pair int) {
		t.Helper()
		if w := predictRID(t, h, rid, pairs[pair]); w.Code != http.StatusOK {
			t.Fatalf("predict %s = %d: %s", rid, w.Code, w.Body)
		}
		lbl := 0.0
		if labels[pair] {
			lbl = 1.0
		}
		w := postJSON(t, h, "/feedback", FeedbackRequest{RequestID: rid, Labels: []float64{lbl}})
		if w.Code != http.StatusOK {
			t.Fatalf("feedback %s = %d: %s", rid, w.Code, w.Body)
		}
	}
	for i := range incRIDs {
		feed(incRIDs[i], i%len(pairs))
		feed(canRIDs[i], i%len(pairs))
		if i == 10 {
			// Mid-canary, the incumbent arm must still serve baseline
			// bytes: the canary never touches the other arm's snapshot.
			for j, rid := range verifyRIDs {
				if got := predictRID(t, h, rid, pairs[j%len(pairs)]); got.Body.String() != baseline[rid] {
					t.Fatalf("mid-canary incumbent drift on %s:\n got %q\nwant %q", rid, got.Body.String(), baseline[rid])
				}
			}
		}
	}

	decisions := dl.all()
	if len(decisions) == 0 {
		t.Fatalf("no gate decision after %d labeled observations per arm", len(incRIDs))
	}
	d := decisions[0]
	if d.Action != "rollback" || d.Version != 2 || d.FleetErr != "" {
		t.Fatalf("decision = %+v, want rollback of v2", d)
	}
	if d.Reason != "auc" && d.Reason != "logloss" {
		t.Fatalf("rollback reason = %q, want a labeled-evidence gate", d.Reason)
	}
	if !strings.Contains(d.String(), "rollout_decision=rollback") {
		t.Fatalf("decision line = %q", d.String())
	}
	if inc, can := s.Versions(); inc != 1 || can != 0 {
		t.Fatalf("Versions after rollback = (%d, %d), want (1, 0)", inc, can)
	}

	// Bit-identity: the same probes under the same request IDs serve the
	// exact bytes they did before the poisoned snapshot ever existed.
	for j, rid := range verifyRIDs {
		got := predictRID(t, h, rid, pairs[j%len(pairs)])
		if got.Code != http.StatusOK {
			t.Fatalf("post-rollback predict = %d", got.Code)
		}
		if got.Body.String() != baseline[rid] {
			t.Fatalf("post-rollback drift on %s:\n got %q\nwant %q", rid, got.Body.String(), baseline[rid])
		}
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`mamdr_rollout_decisions_total{decision="rollback",reason="` + d.Reason + `"} 1`,
		"mamdr_rollout_canary_active 0",
		"mamdr_serve_canary_version 0",
		"mamdr_serve_snapshot_version 1",
		`mamdr_serve_publish_total{outcome="accepted"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestCleanCanaryPromotes proves the other half of the gate: a canary
// that matches the incumbent's quality is promoted once the evidence
// threshold is met, and the promotion invokes OnSwap with the new
// incumbent identity.
func TestCleanCanaryPromotes(t *testing.T) {
	st, ds, factory := testState(t)
	reg := telemetry.New()
	var swaps []uint64
	s := NewWithOptions(st, ds, Options{
		Replicas: 2, ReplicaFactory: factory,
		Metrics: reg,
		Quality: quality.NewTracker(reg, quality.Options{}),
		OnSwap:  func(version uint64, _ uint32) { swaps = append(swaps, version) },
	})
	var dl decisionLog
	ctrl := rollout.New(s, reg, nil, rollout.Config{
		Fraction:   0.5,
		MinLabeled: 32,
		MinScores:  1 << 20,
		OnDecision: dl.add,
	})
	s.SetRollout(ctrl)
	h := s.Handler()

	pairs := rolloutPairs(ds)
	labels := groundTruthLabels(t, h, pairs)

	if _, canary, err := s.Publish(cloneState(st, factory()), 0, 0xbeef, nil); err != nil || !canary {
		t.Fatalf("Publish = (canary %v, %v)", canary, err)
	}

	incRIDs := ridsFor(0.5, false, 40, "inc")
	canRIDs := ridsFor(0.5, true, 40, "can")
	for i := range incRIDs {
		for _, rid := range []string{incRIDs[i], canRIDs[i]} {
			if w := predictRID(t, h, rid, pairs[i%len(pairs)]); w.Code != http.StatusOK {
				t.Fatalf("predict %s = %d: %s", rid, w.Code, w.Body)
			}
			lbl := 0.0
			if labels[i%len(pairs)] {
				lbl = 1.0
			}
			if w := postJSON(t, h, "/feedback", FeedbackRequest{RequestID: rid, Labels: []float64{lbl}}); w.Code != http.StatusOK {
				t.Fatalf("feedback %s = %d: %s", rid, w.Code, w.Body)
			}
		}
	}

	decisions := dl.all()
	if len(decisions) == 0 {
		t.Fatal("no gate decision")
	}
	if d := decisions[0]; d.Action != "promote" || d.Reason != "clean" || d.FleetErr != "" {
		t.Fatalf("decision = %+v, want clean promote", d)
	}
	if inc, can := s.Versions(); inc != 2 || can != 0 {
		t.Fatalf("Versions after promote = (%d, %d), want (2, 0)", inc, can)
	}
	if len(swaps) != 1 || swaps[0] != 2 {
		t.Fatalf("OnSwap calls = %v, want [2]", swaps)
	}
	ready := httptest.NewRecorder()
	h.ServeHTTP(ready, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if !strings.Contains(ready.Body.String(), "ready v2 crc=0000beef") {
		t.Fatalf("readyz after promote = %q", ready.Body.String())
	}
}

// TestPSIRollbackFromScoresAlone drives only unlabeled traffic: the
// poisoned canary's score distribution alone — no labels ever arrive —
// is enough for the PSI gate to roll it back.
func TestPSIRollbackFromScoresAlone(t *testing.T) {
	st, ds, factory := testState(t)
	s := NewWithOptions(st, ds, Options{Replicas: 2, ReplicaFactory: factory})
	var dl decisionLog
	ctrl := rollout.New(s, nil, nil, rollout.Config{
		Fraction:   0.5,
		MinScores:  64,
		MinLabeled: 1 << 20,
		OnDecision: dl.add,
	})
	s.SetRollout(ctrl)
	h := s.Handler()

	if _, canary, err := s.Publish(poisonState(st, factory()), 0, 0, nil); err != nil || !canary {
		t.Fatalf("Publish = (canary %v, %v)", canary, err)
	}

	pairs := rolloutPairs(ds)
	incRIDs := ridsFor(0.5, false, 80, "inc")
	canRIDs := ridsFor(0.5, true, 80, "can")
	for i := range incRIDs {
		for _, rid := range []string{incRIDs[i], canRIDs[i]} {
			if w := predictRID(t, h, rid, pairs[i%len(pairs)]); w.Code != http.StatusOK {
				t.Fatalf("predict %s = %d: %s", rid, w.Code, w.Body)
			}
		}
		if len(dl.all()) > 0 {
			break
		}
	}

	decisions := dl.all()
	if len(decisions) == 0 {
		t.Fatal("PSI gate never fired on score evidence")
	}
	if d := decisions[0]; d.Action != "rollback" || d.Reason != "psi" {
		t.Fatalf("decision = %+v, want psi rollback", d)
	}
	if inc, can := s.Versions(); inc != 1 || can != 0 {
		t.Fatalf("Versions = (%d, %d), want (1, 0)", inc, can)
	}
}

// TestAdminPublishLifecycle exercises POST /admin/publish with real
// checkpoint files on an ungated server: a clean envelope swaps in
// immediately; a CRC-corrupt file and a version regression are rejected
// loudly with distinct statuses.
func TestAdminPublishLifecycle(t *testing.T) {
	st, ds, factory := testState(t)
	reg := telemetry.New()
	s := NewWithOptions(st, ds, Options{Replicas: 2, ReplicaFactory: factory, Metrics: reg})
	h := s.Handler()
	dir := t.TempDir()

	st2 := framework.MustNew("mamdr").Fit(factory(), ds, framework.Config{Epochs: 2, BatchSize: 32, Seed: 123}).(*core.State)
	good := filepath.Join(dir, "v2.ckpt")
	if err := st2.Save(good); err != nil {
		t.Fatal(err)
	}

	before := predictRID(t, h, "probe-1", PredictRequest{Domain: 0, Users: []int{0, 1}, Items: []int{0, 1}})

	w := postJSON(t, h, "/admin/publish", PublishRequest{Path: good})
	if w.Code != http.StatusOK {
		t.Fatalf("publish = %d: %s", w.Code, w.Body)
	}
	var resp PublishResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != 2 || resp.Canary || resp.CRC == "" {
		t.Fatalf("publish response = %+v, want v2 immediate with CRC", resp)
	}
	ready := httptest.NewRecorder()
	h.ServeHTTP(ready, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if !strings.Contains(ready.Body.String(), "ready v2 crc="+resp.CRC) {
		t.Fatalf("readyz after publish = %q, want v2 crc=%s", ready.Body.String(), resp.CRC)
	}
	after := predictRID(t, h, "probe-1", PredictRequest{Domain: 0, Users: []int{0, 1}, Items: []int{0, 1}})
	if before.Body.String() == after.Body.String() {
		t.Fatal("published snapshot serves the old scores")
	}

	var status RolloutStatusResponse
	wr := httptest.NewRecorder()
	h.ServeHTTP(wr, httptest.NewRequest(http.MethodGet, "/admin/rollout", nil))
	if err := json.NewDecoder(wr.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.IncumbentVersion != 2 || status.CanaryVersion != 0 || status.Gate.Active {
		t.Fatalf("rollout status = %+v", status)
	}

	// A corrupt checkpoint must be rejected before anything decodes.
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	bad := filepath.Join(dir, "corrupt.ckpt")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if w := postJSON(t, h, "/admin/publish", PublishRequest{Path: bad}); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt publish = %d, want 422: %s", w.Code, w.Body)
	}

	// Replaying an old version must be refused, not silently served.
	w = postJSON(t, h, "/admin/publish", PublishRequest{Path: good, Version: 2})
	if w.Code != http.StatusConflict || !strings.Contains(w.Body.String(), "version regression") {
		t.Fatalf("regressing publish = %d %q, want 409 version regression", w.Code, w.Body.String())
	}
	if inc, _ := s.Versions(); inc != 2 {
		t.Fatalf("incumbent = v%d after rejected publishes, want v2", inc)
	}

	// Exactly one source is required.
	if w := postJSON(t, h, "/admin/publish", PublishRequest{Path: good, Source: "upstream"}); w.Code != http.StatusBadRequest {
		t.Fatalf("two-source publish = %d, want 400", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/admin/publish", nil)
	wg := httptest.NewRecorder()
	h.ServeHTTP(wg, req)
	if wg.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/publish = %d, want 405", wg.Code)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`mamdr_serve_publish_total{outcome="accepted"} 1`,
		`mamdr_serve_publish_total{outcome="rejected"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestAdminManualRollback pins the operator override: POST
// /admin/rollback cancels the in-flight canary unconditionally and a
// second call reports there is nothing to roll back.
func TestAdminManualRollback(t *testing.T) {
	st, ds, factory := testState(t)
	s := NewWithOptions(st, ds, Options{Replicas: 2, ReplicaFactory: factory})
	ctrl := rollout.New(s, nil, nil, rollout.Config{Fraction: 0.5})
	s.SetRollout(ctrl)
	h := s.Handler()

	if _, canary, err := s.Publish(cloneState(st, factory()), 0, 0, nil); err != nil || !canary {
		t.Fatalf("Publish = (canary %v, %v)", canary, err)
	}
	w := postJSON(t, h, "/admin/rollback", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("rollback = %d: %s", w.Code, w.Body)
	}
	var d rollout.Decision
	if err := json.NewDecoder(w.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.Action != "rollback" || d.Reason != "manual" {
		t.Fatalf("decision = %+v, want manual rollback", d)
	}
	if inc, can := s.Versions(); inc != 1 || can != 0 {
		t.Fatalf("Versions = (%d, %d), want (1, 0)", inc, can)
	}
	if w := postJSON(t, h, "/admin/rollback", nil); w.Code != http.StatusConflict {
		t.Fatalf("second rollback = %d, want 409", w.Code)
	}
}

// TestPublishRejectsSecondCanary: one canary in flight at a time.
func TestPublishRejectsSecondCanary(t *testing.T) {
	st, ds, factory := testState(t)
	s := NewWithOptions(st, ds, Options{Replicas: 2, ReplicaFactory: factory})
	ctrl := rollout.New(s, nil, nil, rollout.Config{Fraction: 0.5})
	s.SetRollout(ctrl)

	if _, canary, err := s.Publish(cloneState(st, factory()), 0, 0, nil); err != nil || !canary {
		t.Fatalf("first Publish = (canary %v, %v)", canary, err)
	}
	if _, _, err := s.Publish(cloneState(st, factory()), 0, 0, nil); err == nil {
		t.Fatal("second canary accepted while the first is in flight")
	}
	if err := s.SwapState(cloneState(st, factory())); err == nil {
		t.Fatal("SwapState accepted mid-canary")
	}
	ctrl.Cancel()
	if _, canary, err := s.Publish(cloneState(st, factory()), 0, 0, nil); err != nil || !canary {
		t.Fatalf("Publish after cancel = (canary %v, %v)", canary, err)
	}
}

// TestUpstreamSourcedPublishWithChaos covers the "source":"upstream"
// publish path and the serving-side fault injector: the first snapshot
// pull and the first path load are injected to fail (422, loudly), then
// the retry succeeds.
func TestUpstreamSourcedPublishWithChaos(t *testing.T) {
	st, ds, factory := testState(t)
	shared := st.Shared.Clone()
	for i := range shared {
		for j := range shared[i] {
			shared[i][j] *= 1.01
		}
	}
	s := NewWithOptions(st, ds, Options{
		Replicas: 2, ReplicaFactory: factory,
		Upstream: &Upstream{Snapshot: func() (paramvec.Vector, error) { return shared.Clone(), nil }},
		Faults:   faultinject.MustParse("UpstreamSnapshot:err@1", 7),
	})
	h := s.Handler()

	w := postJSON(t, h, "/admin/publish", PublishRequest{Source: "upstream"})
	if w.Code != http.StatusUnprocessableEntity || !strings.Contains(w.Body.String(), "faultinject") {
		t.Fatalf("injected upstream publish = %d %q, want 422 injected", w.Code, w.Body.String())
	}
	w = postJSON(t, h, "/admin/publish", PublishRequest{Source: "upstream"})
	if w.Code != http.StatusOK {
		t.Fatalf("upstream publish after fault = %d: %s", w.Code, w.Body)
	}
	var resp PublishResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != 2 || resp.Canary {
		t.Fatalf("upstream publish = %+v, want immediate v2", resp)
	}
}

// TestPredictFaultInjectionReturnsReplica: an injected forward-pass
// failure surfaces as a 500 without leaking the replica — the next
// request serves normally.
func TestPredictFaultInjectionReturnsReplica(t *testing.T) {
	st, ds, _ := testState(t)
	s := NewWithOptions(st, ds, Options{Faults: faultinject.MustParse("Predict:err@1", 3)})
	h := s.Handler()

	req := PredictRequest{Domain: 0, Users: []int{0}, Items: []int{0}}
	w := postJSON(t, h, "/predict", req)
	if w.Code != http.StatusInternalServerError || !strings.Contains(w.Body.String(), "prediction failed") {
		t.Fatalf("injected predict = %d %q, want 500", w.Code, w.Body.String())
	}
	if w := postJSON(t, h, "/predict", req); w.Code != http.StatusOK {
		t.Fatalf("predict after injected fault = %d: %s", w.Code, w.Body)
	}
	if len(s.pool) != 1 {
		t.Fatalf("replica pool has %d free replicas, want 1 (leak)", len(s.pool))
	}
}

// TestConcurrentPublishDrainPredict races the full mutation surface —
// canary staging, cancellation, drain toggles, readiness probes —
// against live predictions. Run with -race; the assertion is simply
// that every prediction succeeds while the control plane churns.
func TestConcurrentPublishDrainPredict(t *testing.T) {
	st, ds, factory := testState(t)
	s := NewWithOptions(st, ds, Options{Replicas: 2, ReplicaFactory: factory, MaxQueue: 64})
	ctrl := rollout.New(s, nil, nil, rollout.Config{Fraction: 0.5, MinLabeled: 1 << 20, MinScores: 1 << 20})
	s.SetRollout(ctrl)
	h := s.Handler()

	// Clones are prepared up front: building them races nothing.
	clones := make([]*core.State, 24)
	for i := range clones {
		clones[i] = cloneState(st, factory())
	}

	var wg sync.WaitGroup
	codes := make(chan int, 4*120)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				rid := fmt.Sprintf("g%d-%04d", g, i)
				w := predictRID(t, h, rid, PredictRequest{Domain: i % 2, Users: []int{i % ds.NumUsers}, Items: []int{(i * 3) % ds.NumItems}})
				codes <- w.Code
			}
		}(g)
	}
	wg.Add(1)
	go func() { // canary staging and rollback churn
		defer wg.Done()
		for _, c := range clones {
			if _, canary, err := s.Publish(c, 0, 0, nil); err == nil && canary {
				ctrl.Cancel()
			}
		}
	}()
	wg.Add(1)
	go func() { // drain toggles: /readyz flips, predictions must not
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.SetDraining(i%2 == 0)
		}
		s.SetDraining(false)
	}()
	wg.Add(1)
	go func() { // readiness and status probes race the view swaps
		defer wg.Done()
		for i := 0; i < 100; i++ {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
			w2 := httptest.NewRecorder()
			h.ServeHTTP(w2, httptest.NewRequest(http.MethodGet, "/admin/rollout", nil))
		}
	}()
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("prediction returned %d during control-plane churn", code)
		}
	}
	if inc, can := s.Versions(); can != 0 || inc == 0 {
		t.Fatalf("Versions after churn = (%d, %d), want no canary left", inc, can)
	}
}
