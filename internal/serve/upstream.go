package serve

import (
	"context"
	"sync"
	"time"

	"mamdr/internal/faultinject"
	"mamdr/internal/ps"
	"mamdr/internal/telemetry"
)

// upstreamMonitor is the circuit breaker on the serve→PS path. Probes
// run through it on every /readyz; while the breaker is closed each
// probe hits the real upstream and a failure fails readiness. Once
// UpstreamThreshold consecutive probes fail, the breaker opens: the
// server degrades to serving its last good snapshot (readyz green,
// staleness gauge climbing) and re-probes only on the seeded backoff
// schedule — a dead cluster is asked occasionally, not hammered.
type upstreamMonitor struct {
	up        *Upstream
	faults    *faultinject.Injector
	threshold int
	bo        ps.Backoff
	now       func() time.Time

	healthyGauge *telemetry.Gauge
	staleGauge   *telemetry.Gauge

	mu          sync.Mutex
	consecutive int
	open        bool
	probes      int
	nextProbe   time.Time
	lastHealthy time.Time
	lastErr     error
}

// newUpstreamMonitor returns nil (all methods nil-safe) when no
// upstream is configured.
func newUpstreamMonitor(up *Upstream, faults *faultinject.Injector, reg *telemetry.Registry, threshold int, bo ps.Backoff) *upstreamMonitor {
	if up == nil || up.Ping == nil {
		return nil
	}
	m := &upstreamMonitor{
		up:        up,
		faults:    faults,
		threshold: threshold,
		bo:        bo.WithDefaults(),
		now:       time.Now,
	}
	m.lastHealthy = m.now()
	if reg != nil {
		m.healthyGauge = reg.Gauge("mamdr_serve_upstream_healthy",
			"1 while the PS upstream answers probes, 0 while the circuit breaker considers it down.")
		m.staleGauge = reg.Gauge("mamdr_serve_upstream_stale_seconds",
			"Seconds since the upstream last answered a probe — how stale the served snapshot may be while degraded.")
		m.healthyGauge.Set(1)
	}
	return m
}

// check runs one breaker-mediated probe. It returns (degraded, err):
// (false, nil) healthy; (false, err) failing but breaker still closed —
// the caller should fail readiness; (true, err) breaker open — the
// caller should stay ready and report degraded service.
func (m *upstreamMonitor) check(ctx context.Context) (bool, error) {
	if m == nil {
		return false, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()

	if m.open && now.Before(m.nextProbe) {
		// Open breaker, probe budgeted away: report degraded from the
		// cached verdict without touching the dead upstream.
		m.setGauges(now)
		return true, m.lastErr
	}

	err := m.faults.Eval("UpstreamPing").Apply(ctx)
	if err == nil {
		err = m.up.Ping(ctx)
	}
	if err == nil {
		m.consecutive, m.probes, m.open = 0, 0, false
		m.lastErr = nil
		m.lastHealthy = now
		m.setGauges(now)
		return false, nil
	}

	m.consecutive++
	m.lastErr = err
	if !m.open && m.consecutive >= m.threshold {
		m.open = true
		m.probes = 0
	}
	if m.open {
		m.probes++
		attempt := m.probes
		if attempt > m.bo.Attempts {
			attempt = m.bo.Attempts
		}
		m.nextProbe = now.Add(m.bo.Delay(attempt))
	}
	m.setGauges(now)
	return m.open, err
}

// setGauges publishes the health bit and snapshot staleness. Caller
// holds mu.
func (m *upstreamMonitor) setGauges(now time.Time) {
	if m.healthyGauge == nil {
		return
	}
	if m.lastErr == nil {
		m.healthyGauge.Set(1)
		m.staleGauge.Set(0)
		return
	}
	m.healthyGauge.Set(0)
	m.staleGauge.Set(now.Sub(m.lastHealthy).Seconds())
}
