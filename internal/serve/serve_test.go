package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mamdr/internal/core"
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/synth"
	"mamdr/internal/telemetry"
)

func testState(t testing.TB) (*core.State, *data.Dataset, func() models.Model) {
	t.Helper()
	ds := synth.Generate(synth.Config{
		Name: "serve-test", Seed: 61, ConflictStrength: 0.5,
		Domains: []synth.DomainSpec{
			{Name: "a", Samples: 200, CTRRatio: 0.3},
			{Name: "b", Samples: 150, CTRRatio: 0.4},
		},
	})
	factory := func() models.Model {
		return models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 4, Hidden: []int{8}, Seed: 5})
	}
	st := framework.MustNew("mamdr").Fit(factory(), ds, framework.Config{Epochs: 1, BatchSize: 32, Seed: 9}).(*core.State)
	return st, ds, factory
}

func testServer(t *testing.T) (*Server, *data.Dataset) {
	t.Helper()
	st, ds, _ := testState(t)
	return New(st, ds), ds
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz = %d", w.Code)
	}
}

func TestPredictReturnsProbabilities(t *testing.T) {
	s, _ := testServer(t)
	w := postJSON(t, s.Handler(), "/predict", PredictRequest{
		Domain: 0, Users: []int{0, 1, 2}, Items: []int{0, 1, 0},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("predict = %d: %s", w.Code, w.Body)
	}
	var resp PredictResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Probabilities) != 3 {
		t.Fatalf("got %d probabilities", len(resp.Probabilities))
	}
	for _, p := range resp.Probabilities {
		if p < 0 || p > 1 {
			t.Fatalf("probability %g out of range", p)
		}
	}
}

func TestPredictDomainSpecific(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	get := func(domain int) []float64 {
		w := postJSON(t, h, "/predict", PredictRequest{Domain: domain, Users: []int{0, 1}, Items: []int{0, 1}})
		var resp PredictResponse
		if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp.Probabilities
	}
	p0, p1 := get(0), get(1)
	same := true
	for i := range p0 {
		if p0[i] != p1[i] {
			same = false
		}
	}
	if same {
		t.Log("domains served identical scores (specific params may be near zero after 1 epoch)")
	}
}

func TestPredictValidation(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	cases := []struct {
		req  PredictRequest
		code int
	}{
		{PredictRequest{Domain: 99, Users: []int{0}, Items: []int{0}}, http.StatusNotFound},
		{PredictRequest{Domain: 0, Users: []int{0, 1}, Items: []int{0}}, http.StatusBadRequest},
		{PredictRequest{Domain: 0}, http.StatusBadRequest},
		{PredictRequest{Domain: 0, Users: []int{99999}, Items: []int{0}}, http.StatusBadRequest},
		{PredictRequest{Domain: 0, Users: []int{0}, Items: []int{99999}}, http.StatusBadRequest},
	}
	for i, c := range cases {
		if w := postJSON(t, h, "/predict", c.req); w.Code != c.code {
			t.Fatalf("case %d: code %d, want %d", i, w.Code, c.code)
		}
	}
	// Malformed JSON.
	req := httptest.NewRequest(http.MethodPost, "/predict", bytes.NewBufferString("{nope"))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("malformed json = %d", w.Code)
	}
	// Wrong method.
	req = httptest.NewRequest(http.MethodGet, "/predict", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict = %d", w.Code)
	}
}

func TestDomainsListAndRegister(t *testing.T) {
	s, ds := testServer(t)
	h := s.Handler()

	req := httptest.NewRequest(http.MethodGet, "/domains", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var list DomainsResponse
	if err := json.NewDecoder(w.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.NumDomains != ds.NumDomains() || len(list.Names) != 2 {
		t.Fatalf("domains = %+v", list)
	}

	// Register a new domain at runtime.
	w2 := postJSON(t, h, "/domains", nil)
	var added AddDomainResponse
	if err := json.NewDecoder(w2.Body).Decode(&added); err != nil {
		t.Fatal(err)
	}
	if added.ID != 2 {
		t.Fatalf("new domain id = %d, want 2", added.ID)
	}

	// The fresh domain serves immediately with shared parameters.
	w3 := postJSON(t, h, "/predict", PredictRequest{Domain: 2, Users: []int{0}, Items: []int{0}})
	if w3.Code != http.StatusOK {
		t.Fatalf("predict on new domain = %d: %s", w3.Code, w3.Body)
	}

	// And the listing reflects it.
	req = httptest.NewRequest(http.MethodGet, "/domains", nil)
	w4 := httptest.NewRecorder()
	h.ServeHTTP(w4, req)
	var list2 DomainsResponse
	if err := json.NewDecoder(w4.Body).Decode(&list2); err != nil {
		t.Fatal(err)
	}
	if list2.NumDomains != 3 || list2.Names[2] != "runtime-2" {
		t.Fatalf("after register: %+v", list2)
	}
}

func TestPredictBodySizeLimit(t *testing.T) {
	st, ds, _ := testState(t)
	s := NewWithOptions(st, ds, Options{MaxBodyBytes: 64})
	h := s.Handler()

	big := PredictRequest{Domain: 0}
	for i := 0; i < 64; i++ {
		big.Users = append(big.Users, 0)
		big.Items = append(big.Items, 0)
	}
	if w := postJSON(t, h, "/predict", big); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", w.Code)
	}
	// A request under the limit still works.
	small := PredictRequest{Domain: 0, Users: []int{0}, Items: []int{0}}
	if w := postJSON(t, h, "/predict", small); w.Code != http.StatusOK {
		t.Fatalf("small body = %d: %s", w.Code, w.Body)
	}
}

func TestReplicaPoolServesIdenticalScores(t *testing.T) {
	st, ds, factory := testState(t)
	single := New(st, ds)
	pooled := NewWithOptions(st, ds, Options{Replicas: 4, ReplicaFactory: factory})

	req := PredictRequest{Domain: 1, Users: []int{0, 1, 2}, Items: []int{2, 1, 0}}
	get := func(h http.Handler) []float64 {
		w := postJSON(t, h, "/predict", req)
		if w.Code != http.StatusOK {
			t.Fatalf("predict = %d: %s", w.Code, w.Body)
		}
		var resp PredictResponse
		if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp.Probabilities
	}
	want := get(single.Handler())
	h := pooled.Handler()
	// Cycle through the pool several times: every replica must produce
	// bit-identical scores from the same precomposed snapshot.
	for i := 0; i < 12; i++ {
		got := get(h)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("iteration %d: replica scores diverge: %v vs %v", i, got, want)
			}
		}
	}
}

func TestSwapState(t *testing.T) {
	st, ds, factory := testState(t)
	s := NewWithOptions(st, ds, Options{Replicas: 2, ReplicaFactory: factory})
	h := s.Handler()

	req := PredictRequest{Domain: 0, Users: []int{0, 1}, Items: []int{0, 1}}
	before := postJSON(t, h, "/predict", req)

	// Retrain to a different state and swap it in.
	st2 := framework.MustNew("mamdr").Fit(factory(), ds, framework.Config{Epochs: 3, BatchSize: 32, Seed: 123}).(*core.State)
	if err := s.SwapState(st2); err != nil {
		t.Fatal(err)
	}
	after := postJSON(t, h, "/predict", req)
	if after.Code != http.StatusOK {
		t.Fatalf("predict after swap = %d: %s", after.Code, after.Body)
	}
	if before.Body.String() == after.Body.String() {
		t.Fatal("swap did not change served scores")
	}

	// A structurally different state is rejected.
	other := framework.MustNew("mamdr").Fit(
		models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 8, Hidden: []int{8}, Seed: 5}),
		ds, framework.Config{Epochs: 1, BatchSize: 32, Seed: 9}).(*core.State)
	if err := s.SwapState(other); err == nil {
		t.Fatal("mismatched state accepted")
	}
}

func TestAddDomainKeepsOldSnapshotsImmutable(t *testing.T) {
	st, ds, _ := testState(t)
	s := New(st, ds)
	h := s.Handler()

	req := PredictRequest{Domain: 0, Users: []int{0, 1}, Items: []int{0, 1}}
	before := postJSON(t, h, "/predict", req)
	for i := 0; i < 3; i++ {
		if id := s.AddDomain(); id != ds.NumDomains()+i {
			t.Fatalf("AddDomain id = %d, want %d", id, ds.NumDomains()+i)
		}
	}
	after := postJSON(t, h, "/predict", req)
	if before.Body.String() != after.Body.String() {
		t.Fatal("registering domains changed existing domains' scores")
	}
}

// TestPoolTimeoutSetsRetryAfter exhausts the replica pool and asserts
// the 503 response carries a Retry-After header and increments the
// pool-timeout counter.
func TestPoolTimeoutSetsRetryAfter(t *testing.T) {
	st, ds, _ := testState(t)
	reg := telemetry.New()
	s := NewWithOptions(st, ds, Options{
		RequestTimeout: 5 * time.Millisecond,
		Metrics:        reg,
	})
	h := s.Handler()

	// Drain the single-replica pool so every predict times out.
	rep := <-s.pool
	defer func() { s.pool <- rep }()

	w := postJSON(t, h, "/predict", PredictRequest{Domain: 0, Users: []int{0}, Items: []int{0}})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("predict with exhausted pool = %d, want 503", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	if w.Header().Get("X-Request-ID") == "" {
		t.Fatal("503 response missing X-Request-ID")
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"mamdr_serve_pool_timeouts_total 1",
		`mamdr_serve_requests_total{code="503"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsEndpoint drives instrumented traffic and scrapes /metrics
// on the serving handler itself.
func TestMetricsEndpoint(t *testing.T) {
	st, ds, _ := testState(t)
	s := NewWithOptions(st, ds, Options{Metrics: telemetry.New()})
	h := s.Handler()

	for i := 0; i < 3; i++ {
		if w := postJSON(t, h, "/predict", PredictRequest{Domain: 0, Users: []int{0}, Items: []int{0}}); w.Code != http.StatusOK {
			t.Fatalf("predict = %d", w.Code)
		}
	}
	postJSON(t, h, "/predict", PredictRequest{Domain: 99, Users: []int{0}, Items: []int{0}})

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("content type = %q", ct)
	}
	out := w.Body.String()
	for _, want := range []string{
		`mamdr_serve_request_seconds_bucket{domain="a",le="`,
		`mamdr_serve_request_seconds_count{domain="a"} 3`,
		`mamdr_serve_requests_total{code="200"} 3`,
		`mamdr_serve_requests_total{code="404"} 1`,
		"mamdr_serve_pool_wait_seconds_count 3",
		"mamdr_serve_replica_pool_size 1",
		"mamdr_serve_pool_saturation 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestAccessLogEmitsRequestIDs checks one structured line per request
// with stable request-ID propagation.
func TestAccessLogEmitsRequestIDs(t *testing.T) {
	st, ds, _ := testState(t)
	var logBuf bytes.Buffer
	s := NewWithOptions(st, ds, Options{
		AccessLog: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	h := s.Handler()

	w := postJSON(t, h, "/predict", PredictRequest{Domain: 0, Users: []int{0}, Items: []int{0}})
	rid := w.Header().Get("X-Request-ID")
	if rid == "" {
		t.Fatal("response missing X-Request-ID")
	}

	// An inbound ID is honored and echoed.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-ID", "upstream-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "upstream-42" {
		t.Fatalf("inbound request ID not propagated: %q", got)
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2", len(lines))
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("log line not JSON: %v", err)
	}
	if entry["request_id"] != rid || entry["path"] != "/predict" || entry["status"] != float64(200) {
		t.Fatalf("log entry = %v", entry)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["request_id"] != "upstream-42" {
		t.Fatalf("second entry request_id = %v", second["request_id"])
	}
}

func TestConcurrentPredicts(t *testing.T) {
	s, _ := testServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(domain int) {
			defer wg.Done()
			body, _ := json.Marshal(PredictRequest{Domain: domain % 2, Users: []int{0, 1}, Items: []int{1, 0}})
			for i := 0; i < 20; i++ {
				resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- nil
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if _, bad := <-errs; bad {
		t.Fatal("concurrent predicts failed")
	}
}

func TestReadyzReflectsDraining(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	get := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	if w := get(); w.Code != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", w.Code)
	}

	s.SetDraining(true)
	w := get()
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", w.Code)
	}
	if !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("drain reason missing: %q", w.Body.String())
	}
	// /healthz stays green during a drain: the process is alive, it just
	// wants no new traffic.
	reqH := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	wh := httptest.NewRecorder()
	h.ServeHTTP(wh, reqH)
	if wh.Code != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", wh.Code)
	}

	s.SetDraining(false)
	if w := get(); w.Code != http.StatusOK {
		t.Fatalf("readyz after drain cancelled = %d, want 200", w.Code)
	}
}

func TestReadyzReportsPoolSaturation(t *testing.T) {
	st, ds, factory := testState(t)
	s := NewWithOptions(st, ds, Options{Replicas: 1, ReplicaFactory: factory})
	h := s.Handler()
	get := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	if w := get(); w.Code != http.StatusOK {
		t.Fatalf("readyz with a free replica = %d, want 200", w.Code)
	}

	r := <-s.pool // all replicas busy
	w := get()
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with saturated pool = %d, want 503", w.Code)
	}
	if !strings.Contains(w.Body.String(), "saturated") {
		t.Fatalf("saturation reason missing: %q", w.Body.String())
	}

	s.pool <- r
	if w := get(); w.Code != http.StatusOK {
		t.Fatalf("readyz after replica returned = %d, want 200", w.Code)
	}
}

// TestReadyzReportsUpstreamHealth pins the cluster-backed readiness
// contract: a server whose snapshot source (PS shards) goes away must
// fail /readyz with the upstream reason while the outage looks
// transient, then — once the circuit breaker decides the upstream is
// persistently gone — degrade to serving the last good snapshot with
// /readyz green again. /healthz stays green throughout — the process
// is fine, its upstream is not.
func TestReadyzReportsUpstreamHealth(t *testing.T) {
	st, ds, _ := testState(t)
	upErr := atomic.Pointer[string]{}
	s := NewWithOptions(st, ds, Options{
		Upstream: &Upstream{Ping: func(context.Context) error {
			if msg := upErr.Load(); msg != nil {
				return errors.New(*msg)
			}
			return nil
		}},
		UpstreamThreshold: 2,
	})
	// The breaker's probe budget is time-based; a fixed clock keeps the
	// open-breaker probe schedule out of this test's way.
	now := time.Unix(1000, 0)
	s.upstream.now = func() time.Time { return now }
	h := s.Handler()
	get := func(path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	if w := get("/readyz"); w.Code != http.StatusOK {
		t.Fatalf("readyz with healthy upstream = %d, want 200", w.Code)
	}

	msg := "shard 1: connection refused"
	upErr.Store(&msg)
	w := get("/readyz")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead upstream = %d, want 503", w.Code)
	}
	if !strings.Contains(w.Body.String(), "upstream: shard 1") {
		t.Fatalf("upstream reason missing: %q", w.Body.String())
	}
	if wh := get("/healthz"); wh.Code != http.StatusOK {
		t.Fatalf("healthz with dead upstream = %d, want 200", wh.Code)
	}

	// Second consecutive failure crosses the threshold: the breaker
	// opens and the server degrades instead of staying out of rotation.
	w = get("/readyz")
	if w.Code != http.StatusOK {
		t.Fatalf("readyz with open breaker = %d, want 200 (degraded)", w.Code)
	}
	if !strings.Contains(w.Body.String(), "degraded") {
		t.Fatalf("degraded notice missing: %q", w.Body.String())
	}

	// Recovery: advance past the probe schedule so the next /readyz
	// actually re-probes, sees health, and closes the breaker.
	upErr.Store(nil)
	now = now.Add(time.Hour)
	w = get("/readyz")
	if w.Code != http.StatusOK || strings.Contains(w.Body.String(), "degraded") {
		t.Fatalf("readyz after upstream recovery = %d %q, want clean 200", w.Code, w.Body.String())
	}
}

// TestMetricsSnapshotEndpoint pins the federation surface: a serve
// process with metrics enabled exports a valid versioned snapshot at
// /metrics/snapshot, tagged role=serve.
func TestMetricsSnapshotEndpoint(t *testing.T) {
	st, ds, _ := testState(t)
	reg := telemetry.New()
	s := NewWithOptions(st, ds, Options{Metrics: reg})
	h := s.Handler()

	req := httptest.NewRequest(http.MethodGet, "/metrics/snapshot", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("snapshot endpoint = %d, want 200", w.Code)
	}
	var snap telemetry.RegistrySnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if snap.Role != "serve" {
		t.Fatalf("snapshot role = %q, want serve", snap.Role)
	}
	found := false
	for _, f := range snap.Families {
		if f.Name == "mamdr_serve_requests_total" {
			found = true
		}
	}
	if !found {
		t.Fatal("snapshot missing the request counter family")
	}
}
