package serve

import (
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mamdr/internal/telemetry"
	"mamdr/internal/trace"
)

// serveMetrics are the request-path instruments. All fields are safe
// for concurrent use; the struct itself is nil when metrics are
// disabled (every method is nil-receiver-safe).
type serveMetrics struct {
	reg *telemetry.Registry

	poolWait      *telemetry.Histogram
	poolTimeouts  *telemetry.Counter
	saturation    *telemetry.Gauge
	poolSize      *telemetry.Gauge
	writeFailures *telemetry.Counter

	snapshotVersion *telemetry.Gauge
	canaryVersion   *telemetry.Gauge

	// Micro-batching instruments (Options.BatchMax > 0): flush shape,
	// linger tail, and how full batches run relative to BatchMax.
	batchRequests  *telemetry.Histogram
	batchRows      *telemetry.Histogram
	batchLinger    *telemetry.Histogram
	batchOccupancy *telemetry.Histogram

	// Quantized-snapshot instruments (Options.SnapshotQuant = "int8").
	quantHits   *telemetry.Gauge
	quantMisses *telemetry.Gauge
	quantRatio  *telemetry.Gauge

	// codeCounters, latencies, and scoreHists cache instrument pointers
	// so the hot request path skips the registry's mutex-guarded lookup
	// (the registry is get-or-create, so a racing double-create is
	// benign — both callers get the same series).
	codeCounters  sync.Map // int -> *telemetry.Counter
	latencies     sync.Map // string -> *telemetry.Histogram
	scoreHists    sync.Map // string -> *telemetry.Histogram
	shedCounters  sync.Map // string -> *telemetry.Counter
	flushCounters sync.Map // string -> *telemetry.Counter

	inflight atomic.Int64
	replicas int
}

func newServeMetrics(reg *telemetry.Registry, replicas int) *serveMetrics {
	if reg == nil {
		return nil
	}
	m := &serveMetrics{
		reg: reg,
		poolWait: reg.Histogram("mamdr_serve_pool_wait_seconds",
			"Time a prediction waited for a free model replica.", telemetry.DefBuckets),
		poolTimeouts: reg.Counter("mamdr_serve_pool_timeouts_total",
			"Predictions that timed out waiting for a replica (503 + Retry-After)."),
		saturation: reg.Gauge("mamdr_serve_pool_saturation",
			"In-flight predictions divided by the replica-pool size."),
		poolSize: reg.Gauge("mamdr_serve_replica_pool_size",
			"Configured model-replica pool size."),
		writeFailures: reg.Counter("mamdr_serve_write_failures_total",
			"Response body writes that failed after headers were sent (client gone, broken pipe)."),
		snapshotVersion: reg.Gauge("mamdr_serve_snapshot_version",
			"Version of the incumbent serving snapshot."),
		canaryVersion: reg.Gauge("mamdr_serve_canary_version",
			"Version of the canary snapshot taking traffic (0 when none)."),
		batchRequests: reg.Histogram("mamdr_serve_batch_requests",
			"Requests coalesced per micro-batch flush.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128}),
		batchRows: reg.Histogram("mamdr_serve_batch_rows",
			"User-item rows per micro-batch flush.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128}),
		batchLinger: reg.Histogram("mamdr_serve_batch_linger_seconds",
			"How long each flushed batch's oldest request waited for batchmates.",
			[]float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.05}),
		batchOccupancy: reg.Histogram("mamdr_serve_batch_occupancy",
			"Flushed batch rows divided by the configured BatchMax.",
			telemetry.LinearBuckets(0.125, 0.125, 8)),
		quantHits: reg.Gauge("mamdr_serve_quant_cache_hits_total",
			"Cumulative dequantization row-cache hits."),
		quantMisses: reg.Gauge("mamdr_serve_quant_cache_misses_total",
			"Cumulative dequantization row-cache misses (int8 decodes)."),
		quantRatio: reg.Gauge("mamdr_serve_quant_cache_hit_ratio",
			"Dequantization row-cache hit ratio over the process lifetime."),
		replicas: replicas,
	}
	m.poolSize.Set(float64(replicas))
	// Declare the status-code counter family up front so a scrape
	// before the first request still shows it.
	m.requestCounter(http.StatusOK).Add(0)
	return m
}

// requestCounter returns the per-status-code request counter.
func (m *serveMetrics) requestCounter(code int) *telemetry.Counter {
	if m == nil {
		return nil
	}
	if v, ok := m.codeCounters.Load(code); ok {
		return v.(*telemetry.Counter)
	}
	c := m.reg.Counter("mamdr_serve_requests_total",
		"HTTP requests by status code.", telemetry.L("code", strconv.Itoa(code)))
	m.codeCounters.Store(code, c)
	return c
}

// latencyFor returns the per-domain request latency histogram.
func (m *serveMetrics) latencyFor(domain string) *telemetry.Histogram {
	if m == nil {
		return nil
	}
	if v, ok := m.latencies.Load(domain); ok {
		return v.(*telemetry.Histogram)
	}
	h := m.reg.Histogram("mamdr_serve_request_seconds",
		"Prediction latency by domain.", telemetry.DefBuckets, telemetry.L("domain", domain))
	m.latencies.Store(domain, h)
	return h
}

// scoreHistFor returns the per-domain served-score histogram — the
// live score distribution, the raw material of drift detection.
func (m *serveMetrics) scoreHistFor(domain string) *telemetry.Histogram {
	if m == nil {
		return nil
	}
	if v, ok := m.scoreHists.Load(domain); ok {
		return v.(*telemetry.Histogram)
	}
	h := m.reg.Histogram("mamdr_serve_scores",
		"Predicted click probabilities by domain.",
		telemetry.LinearBuckets(0.1, 0.1, 9), telemetry.L("domain", domain))
	m.scoreHists.Store(domain, h)
	return h
}

// shed counts one admission-gate rejection by reason ("queue_full",
// "deadline").
func (m *serveMetrics) shed(reason string) {
	if m == nil {
		return
	}
	c, ok := m.shedCounters.Load(reason)
	if !ok {
		c = m.reg.Counter("mamdr_serve_shed_total",
			"Predictions shed by the admission gate before reaching the replica pool, by reason.",
			telemetry.L("reason", reason))
		m.shedCounters.Store(reason, c)
	}
	c.(*telemetry.Counter).Inc()
}

// batchFlush records one coalescer flush: its request/row shape, the
// oldest rider's wait, the trigger reason, and the occupancy relative
// to the configured batch bound.
func (m *serveMetrics) batchFlush(requests, rows int, waited time.Duration, reason string, maxRows int) {
	if m == nil {
		return
	}
	m.batchRequests.Observe(float64(requests))
	m.batchRows.Observe(float64(rows))
	m.batchLinger.Observe(waited.Seconds())
	if maxRows > 0 {
		m.batchOccupancy.Observe(float64(rows) / float64(maxRows))
	}
	c, ok := m.flushCounters.Load(reason)
	if !ok {
		c = m.reg.Counter("mamdr_serve_batch_flushes_total",
			"Micro-batch flushes by trigger (full, linger, close).",
			telemetry.L("reason", reason))
		m.flushCounters.Store(reason, c)
	}
	c.(*telemetry.Counter).Inc()
}

// quantCache publishes the dequantization cache's cumulative counters.
func (m *serveMetrics) quantCache(hits, misses int64) {
	if m == nil {
		return
	}
	m.quantHits.Set(float64(hits))
	m.quantMisses.Set(float64(misses))
	if total := hits + misses; total > 0 {
		m.quantRatio.Set(float64(hits) / float64(total))
	}
}

// snapshotVersions publishes the live snapshot identities (canary 0
// when none is flying).
func (m *serveMetrics) snapshotVersions(incumbent, canary uint64) {
	if m == nil {
		return
	}
	m.snapshotVersion.Set(float64(incumbent))
	m.canaryVersion.Set(float64(canary))
}

// publishOutcome counts one publication attempt ("accepted",
// "rejected").
func (m *serveMetrics) publishOutcome(outcome string) {
	if m == nil {
		return
	}
	m.reg.Counter("mamdr_serve_publish_total",
		"Snapshot publication attempts, by outcome.",
		telemetry.L("outcome", outcome)).Inc()
}

// writeFailure counts one failed response-body write.
func (m *serveMetrics) writeFailure() {
	if m == nil {
		return
	}
	m.writeFailures.Inc()
}

// acquire/release bracket a replica checkout and keep the saturation
// gauge current.
func (m *serveMetrics) acquire(waited time.Duration) {
	if m == nil {
		return
	}
	m.poolWait.Observe(waited.Seconds())
	n := m.inflight.Add(1)
	m.saturation.Set(float64(n) / float64(m.replicas))
}

// timeout counts one pool-acquisition timeout. Nil-safe: the timeout
// path must work on metrics-less servers too.
func (m *serveMetrics) timeout() {
	if m == nil {
		return
	}
	m.poolTimeouts.Inc()
}

func (m *serveMetrics) release() {
	if m == nil {
		return
	}
	n := m.inflight.Add(-1)
	m.saturation.Set(float64(n) / float64(m.replicas))
}

// --- request IDs and the instrumented handler chain ---

// ridPrefix distinguishes processes; ridSeq distinguishes requests.
var (
	ridPrefix = fmt.Sprintf("%08x", rand.Uint32())
	ridSeq    atomic.Uint64
)

// requestID honors an inbound X-Request-ID (so IDs propagate through
// proxies) or mints a process-unique one.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" {
		return id
	}
	return fmt.Sprintf("%s-%06d", ridPrefix, ridSeq.Add(1))
}

// statusWriter captures the response status and size for counters and
// access logs.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
	// writeFailLogged suppresses repeat write-failure log lines for the
	// same request (the counter still counts every failure).
	writeFailLogged bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// instrument wraps the route mux with the observability chain: a
// request ID on every response, per-status-code counters, a
// serve.request root span keyed to that ID, and one structured
// access-log line per request.
func (s *Server) instrument(next http.Handler) http.Handler {
	metrics, logger, tracer := s.metrics, s.opts.AccessLog, s.opts.Tracer
	if metrics == nil && logger == nil && tracer == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := requestID(r)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		sw.Header().Set("X-Request-ID", rid)
		ctx, span := trace.Start(tracer.Context(r.Context()), "serve.request",
			trace.A("rid", rid), trace.A("method", r.Method), trace.A("path", r.URL.Path))
		next.ServeHTTP(sw, r.WithContext(ctx))
		span.EndWith(trace.A("status", sw.code))
		metrics.requestCounter(sw.code).Inc()
		if logger != nil {
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("request_id", rid),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.code),
				slog.Int("bytes", sw.bytes),
				slog.Duration("duration", time.Since(start)),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}
