// This file is the serving snapshot representation: per-domain lazy
// composition of θ_S + θ_d and the optional int8 quantization of the
// composed embedding tables (internal/quant).
//
// The seed representation eagerly composed every domain at publish
// time — O(domains × params) float traffic on the publish path, which
// spikes allocations on a large domain zoo where most domains see no
// traffic between publications. Here a snapshot holds only references
// to the state's shared and specific vectors (immutable once
// published) and composes each domain's serving parameters on first
// use. Racing composers compute bit-identical values (composition is
// deterministic), so the CAS loser simply adopts the winner's copy.

package serve

import (
	"fmt"
	"sync/atomic"

	"mamdr/internal/core"
	"mamdr/internal/models"
	"mamdr/internal/paramvec"
	"mamdr/internal/quant"
)

// snapSeq hands every snapshot a process-unique identity — the cache
// namespace keeping dequantized rows of different snapshots apart.
var snapSeq atomic.Uint64

// snapshot is the immutable view predictions serve from. The parameter
// vectors it references are never written after publication, so any
// number of replicas may read them concurrently; the lazily composed
// per-domain entries are write-once behind an atomic pointer.
type snapshot struct {
	id uint64
	// shared and specific reference the published state's vectors;
	// composed[d] = shared + specific[d] (Eq. 4) materializes on demand.
	shared   paramvec.Vector
	specific []paramvec.Vector
	names    []string
	// quant, when non-nil, stores composed embedding tables as int8
	// instead of float64 (the rest of the vector stays dense).
	quant *quantConfig
	// domains[d] caches domain d's composition; nil until first use.
	domains []atomic.Pointer[domainComp]
}

// domainComp is one domain's materialized serving parameters.
type domainComp struct {
	// dense is θ_S + θ_d. Under int8 quantization the embedding-table
	// segments are nil — those rows live in tables.
	dense paramvec.Vector
	// tables[paramIdx] is the quantized composed embedding table
	// (int8 mode only).
	tables map[int]*quant.Table
}

// numDomains reports how many domains the snapshot serves.
func (sn *snapshot) numDomains() int { return len(sn.specific) }

// comp returns domain d's composition, materializing it on first use.
func (sn *snapshot) comp(d int) *domainComp {
	if c := sn.domains[d].Load(); c != nil {
		return c
	}
	c := sn.composeDomain(d)
	if sn.domains[d].CompareAndSwap(nil, c) {
		return c
	}
	// Lost the race: both compositions are bit-identical, but adopting
	// the winner keeps exactly one backing array alive.
	return sn.domains[d].Load()
}

func (sn *snapshot) composeDomain(d int) *domainComp {
	full := paramvec.Sum(sn.shared, sn.specific[d])
	c := &domainComp{dense: full}
	if sn.quant != nil {
		c.tables = make(map[int]*quant.Table, len(sn.quant.tables))
		for p, dim := range sn.quant.tables {
			c.tables[p] = quant.Quantize(full[p], dim.rows, dim.cols)
			full[p] = nil // served from the table; drop the float copy
		}
	}
	return c
}

// extend appends one domain without touching the published snapshot
// (capped appends: the old slices stay immutable) and carries over
// every already-materialized composition. The snapshot id is kept —
// existing domains' cached rows stay valid because their inputs are
// unchanged.
func (sn *snapshot) extend(specific paramvec.Vector, id int) *snapshot {
	n := len(sn.specific)
	out := &snapshot{
		id:       sn.id,
		shared:   sn.shared,
		specific: append(sn.specific[:n:n], specific),
		names:    append(sn.names[:n:n], fmt.Sprintf("runtime-%d", id)),
		quant:    sn.quant,
		domains:  make([]atomic.Pointer[domainComp], n+1),
	}
	for d := 0; d < n; d++ {
		if c := sn.domains[d].Load(); c != nil {
			out.domains[d].Store(c)
		}
	}
	return out
}

// quantConfig is the server-wide quantization setup: which Parameters()
// indices are embedding tables, their geometry, and the shared hot-row
// dequantization cache. Nil when -snapshot-quant=off or the model has
// no learned embedding tables (fixed-feature presets).
type quantConfig struct {
	tables map[int]tableDim
	cache  *quant.RowCache
}

// tableDim is one embedding table's geometry plus the batch field whose
// values index it.
type tableDim struct {
	rows, cols int
	field      int
}

// newQuantConfig classifies the model's parameters via the same
// EmbeddingTabler contract the parameter server uses for row-wise
// sync — the contract guarantees a forward pass reads only the rows
// the batch's field values gather, which is exactly what lets the
// quantized path restore touched rows only.
func newQuantConfig(m models.Model, cacheRows int) *quantConfig {
	emb := models.EmbeddingTablesOf(m)
	if len(emb) == 0 {
		return nil
	}
	params := m.Parameters()
	qc := &quantConfig{
		tables: make(map[int]tableDim, len(emb)),
		cache:  quant.NewRowCache(cacheRows),
	}
	for p, f := range emb {
		t := params[p]
		qc.tables[p] = tableDim{rows: t.Rows, cols: t.Cols, field: f}
	}
	return qc
}

// composeState wraps an arbitrary state as a servable snapshot — the
// publish path does this off the request path before anything is
// installed. Composition itself is deferred per domain.
func (s *Server) composeState(st *core.State) *snapshot {
	sn := &snapshot{
		id:       snapSeq.Add(1),
		shared:   st.Shared,
		specific: append([]paramvec.Vector(nil), st.Specific...),
		names:    make([]string, len(st.Specific)),
		quant:    s.quantCfg,
		domains:  make([]atomic.Pointer[domainComp], len(st.Specific)),
	}
	for d := range sn.names {
		if d < len(s.dataset.Domains) {
			sn.names[d] = s.dataset.Domains[d].Name
		} else {
			sn.names[d] = fmt.Sprintf("runtime-%d", d)
		}
	}
	return sn
}
