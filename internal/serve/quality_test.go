package serve

import (
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mamdr/internal/quality"
	"mamdr/internal/telemetry"
)

// qualityServer builds a server with the quality tracker wired in.
func qualityServer(t *testing.T) (*Server, *telemetry.Registry, *quality.Tracker) {
	t.Helper()
	st, ds, factory := testState(t)
	reg := telemetry.New()
	tr := quality.NewTracker(reg, quality.Options{Checks: true, MinLabeled: 8, MinScores: 8, CheckEvery: 1})
	srv := NewWithOptions(st, ds, Options{
		Replicas: 2, ReplicaFactory: factory, Metrics: reg, Quality: tr,
	})
	return srv, reg, tr
}

func seriesValue(t *testing.T, reg *telemetry.Registry, name string, labels ...telemetry.Label) (float64, bool) {
	t.Helper()
	for _, f := range reg.Snapshot().Families {
		if f.Name != name {
			continue
		}
		for _, s := range f.Series {
			if len(s.Labels) != len(labels) {
				continue
			}
			all := true
			for _, want := range labels {
				found := false
				for _, have := range s.Labels {
					if have == want {
						found = true
					}
				}
				all = all && found
			}
			if all {
				return s.Value, true
			}
		}
	}
	return 0, false
}

func TestFeedbackJoinFlow(t *testing.T) {
	srv, reg, _ := qualityServer(t)
	h := srv.Handler()

	w := postJSON(t, h, "/predict", PredictRequest{Domain: 0, Users: []int{0, 1, 2}, Items: []int{0, 1, 2}})
	if w.Code != http.StatusOK {
		t.Fatalf("predict = %d: %s", w.Code, w.Body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.RequestID == "" {
		t.Fatal("quality-enabled predict response carries no request_id")
	}
	if got := w.Header().Get("X-Request-ID"); got != resp.RequestID {
		t.Fatalf("request_id %q != X-Request-ID %q", resp.RequestID, got)
	}

	// Join labels back.
	fw := postJSON(t, h, "/feedback", FeedbackRequest{RequestID: resp.RequestID, Labels: []float64{1, 0, 0}})
	if fw.Code != http.StatusOK {
		t.Fatalf("feedback = %d: %s", fw.Code, fw.Body)
	}
	var fresp FeedbackResponse
	if err := json.Unmarshal(fw.Body.Bytes(), &fresp); err != nil {
		t.Fatal(err)
	}
	if fresp.Joined != 3 || fresp.Domain != "a" {
		t.Fatalf("feedback response = %+v", fresp)
	}
	if v, ok := seriesValue(t, reg, "mamdr_quality_feedback_joins_total"); !ok || v != 1 {
		t.Fatalf("feedback_joins_total = %v (%v), want 1", v, ok)
	}
	if v, ok := seriesValue(t, reg, "mamdr_quality_labels_total", telemetry.L("domain", "a")); !ok || v != 3 {
		t.Fatalf("labels_total{a} = %v (%v), want 3", v, ok)
	}

	// The same ID cannot join twice.
	fw = postJSON(t, h, "/feedback", FeedbackRequest{RequestID: resp.RequestID, Labels: []float64{1, 0, 0}})
	if fw.Code != http.StatusNotFound {
		t.Fatalf("replayed feedback = %d, want 404", fw.Code)
	}
	if v, _ := seriesValue(t, reg, "mamdr_quality_feedback_misses_total"); v != 1 {
		t.Fatalf("feedback_misses_total = %v, want 1", v)
	}

	// Misaligned labels are a 400.
	w = postJSON(t, h, "/predict", PredictRequest{Domain: 0, Users: []int{0}, Items: []int{0}})
	json.Unmarshal(w.Body.Bytes(), &resp)
	fw = postJSON(t, h, "/feedback", FeedbackRequest{RequestID: resp.RequestID, Labels: []float64{1, 0}})
	if fw.Code != http.StatusBadRequest {
		t.Fatalf("misaligned feedback = %d, want 400", fw.Code)
	}

	// Unknown ID is a 404; missing ID a 400.
	if fw = postJSON(t, h, "/feedback", FeedbackRequest{RequestID: "nope", Labels: []float64{1}}); fw.Code != http.StatusNotFound {
		t.Fatalf("unknown-id feedback = %d, want 404", fw.Code)
	}
	if fw = postJSON(t, h, "/feedback", FeedbackRequest{Labels: []float64{1}}); fw.Code != http.StatusBadRequest {
		t.Fatalf("no-id feedback = %d, want 400", fw.Code)
	}
}

func TestPredictRecordsScoreDistribution(t *testing.T) {
	srv, reg, _ := qualityServer(t)
	h := srv.Handler()
	for i := 0; i < 10; i++ {
		w := postJSON(t, h, "/predict", PredictRequest{Domain: 1, Users: []int{0, 1}, Items: []int{1, 0}})
		if w.Code != http.StatusOK {
			t.Fatalf("predict = %d", w.Code)
		}
	}
	found := false
	for _, f := range reg.Snapshot().Families {
		if f.Name != "mamdr_serve_scores" {
			continue
		}
		for _, s := range f.Series {
			for _, l := range s.Labels {
				if l.Name == "domain" && l.Value == "b" && s.Count == 20 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("mamdr_serve_scores{domain=b} missing or wrong count")
	}
	// The tracker saw the same scores.
	if v, ok := seriesValue(t, reg, "mamdr_quality_auc", telemetry.L("domain", "b")); !ok || v != 0.5 {
		// No labels yet: windowed AUC must sit at the degenerate 0.5.
		t.Fatalf("mamdr_quality_auc{b} = %v (%v), want 0.5 with no labels", v, ok)
	}
}

func TestFeedbackNotMountedWithoutQuality(t *testing.T) {
	s, _ := testServer(t)
	w := postJSON(t, s.Handler(), "/feedback", FeedbackRequest{RequestID: "x", Labels: []float64{1}})
	if w.Code != http.StatusNotFound {
		t.Fatalf("feedback without quality = %d, want 404", w.Code)
	}
}

// failingWriter errors on every body write — the broken-pipe case.
type failingWriter struct {
	httptest.ResponseRecorder
}

func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

func TestWriteJSONFailureCountedAndLoggedOnce(t *testing.T) {
	st, ds, factory := testState(t)
	reg := telemetry.New()
	var logBuf strings.Builder
	srv := NewWithOptions(st, ds, Options{
		Replicas: 1, ReplicaFactory: factory, Metrics: reg,
		AccessLog: slog.New(slog.NewTextHandler(&logBuf, nil)),
	})

	req := httptest.NewRequest(http.MethodPost, "/domains", nil)
	req.Method = http.MethodGet
	inner := &failingWriter{}
	sw := &statusWriter{ResponseWriter: inner, code: http.StatusOK}
	sw.Header().Set("X-Request-ID", "rid-1")
	srv.writeJSON(sw, req, DomainsResponse{NumDomains: 2, Names: []string{"a", "b"}})
	srv.writeJSON(sw, req, DomainsResponse{NumDomains: 2, Names: []string{"a", "b"}})

	if v, ok := seriesValue(t, reg, "mamdr_serve_write_failures_total"); !ok || v != 2 {
		t.Fatalf("write_failures_total = %v (%v), want 2 (every failure counted)", v, ok)
	}
	if got := strings.Count(logBuf.String(), "response write failed"); got != 1 {
		t.Fatalf("write failure logged %d times, want once per request ID:\n%s", got, logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "rid-1") {
		t.Fatalf("log line carries no request ID:\n%s", logBuf.String())
	}
}
