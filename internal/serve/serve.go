// Package serve exposes a trained MAMDR state over HTTP, mirroring the
// serving side of the paper's Taobao MDR platform (Fig. 2): clients ask
// for click probabilities of user-item pairs under a given domain, and
// new domains can be registered at runtime (they serve with the shared
// parameters until their specific parameters are trained).
//
// The server is built for concurrent traffic. Serving parameters for
// every domain (θ_S + θ_i, Eq. 4) are precomposed into an immutable
// snapshot that requests read through an atomic pointer — no global
// lock and no per-request parameter composition. Forward passes run on
// a pool of model replicas, so predictions for different requests
// proceed concurrently. Domain registration and state swaps build a
// fresh snapshot and publish it atomically; in-flight requests keep
// serving the snapshot they started with.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mamdr/internal/autograd"
	"mamdr/internal/core"
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/paramvec"
	"mamdr/internal/quality"
	"mamdr/internal/telemetry"
	"mamdr/internal/trace"
)

// Options configures the serving path.
type Options struct {
	// Replicas is the model-replica pool size; each in-flight prediction
	// holds one replica for the duration of its forward pass. Defaults
	// to GOMAXPROCS. Without a ReplicaFactory the pool holds only the
	// state's own model, so Replicas is forced to 1.
	Replicas int
	// ReplicaFactory builds additional model replicas structurally
	// identical to the state's model (same Config including Seed).
	ReplicaFactory func() models.Model
	// RequestTimeout bounds how long a prediction waits for a free
	// replica before returning 503. Default 5s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps the request body size. Default 1 MiB.
	MaxBodyBytes int64
	// Metrics, when non-nil, receives the serving instruments —
	// per-domain latency histograms, replica-pool wait and saturation,
	// per-status-code request counters — and is exposed at GET /metrics
	// on the server's handler.
	Metrics *telemetry.Registry
	// AccessLog, when non-nil, emits one structured log line per
	// request, carrying a request ID that is also returned in the
	// X-Request-ID response header.
	AccessLog *slog.Logger
	// Tracer, when non-nil, opens one trace per request — a
	// serve.request root span keyed to the X-Request-ID with pool-wait
	// and predict child spans — exposes GET /debug/trace?sec=N
	// capture-on-demand, and raises a pool_saturation anomaly into the
	// tracer's flight recorder when a prediction times out waiting for
	// a replica.
	Tracer *trace.Tracer
	// Upstream, when non-nil, reports the health of the snapshot
	// source backing this server — PS/shard connectivity when the
	// state was loaded from a cluster. /readyz consults it after the
	// local checks, so a replica whose upstream is gone drops out of
	// the load balancer before it starts serving stale predictions.
	Upstream func() error
	// Quality, when non-nil, turns on model-quality observability:
	// every successful prediction feeds per-domain score-distribution
	// histograms and the tracker's drift windows, responses carry a
	// request_id, and POST /feedback joins delayed labels back to
	// their predictions so prequential AUC/calibration accrue from
	// live traffic.
	Quality *quality.Tracker
	// FeedbackTTL bounds how long a prediction waits in the feedback
	// join buffer for its labels. Default 2 minutes.
	FeedbackTTL time.Duration
	// FeedbackBuffer caps the join buffer's entry count (oldest
	// evicted first). Default 65536.
	FeedbackBuffer int
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = runtime.GOMAXPROCS(0)
	}
	if o.ReplicaFactory == nil {
		o.Replicas = 1
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	return o
}

// snapshot is the immutable view predictions serve from. A new one is
// published wholesale on every state mutation; the composed vectors are
// never written after publication, so any number of replicas may
// restore from them concurrently.
type snapshot struct {
	// composed[d] is θ_S + θ_d (Eq. 4), ready to load into a replica.
	composed []paramvec.Vector
	names    []string
}

// replica is one pooled model instance. Its tensors are owned
// exclusively by the request currently holding it.
type replica struct {
	model  models.Model
	params []*autograd.Tensor
}

// Server serves predictions from a MAMDR state. All handlers are safe
// for concurrent use.
type Server struct {
	dataset *data.Dataset
	opts    Options

	// mu serializes state mutations (AddDomain, SwapState). Reads never
	// take it: they load snap.
	mu    sync.Mutex
	state *core.State

	snap atomic.Pointer[snapshot]
	pool chan *replica

	// draining flips on SIGTERM: /readyz starts failing so load
	// balancers stop routing here, while in-flight requests finish.
	draining atomic.Bool

	metrics  *serveMetrics
	quality  *quality.Tracker
	feedback *quality.JoinBuffer
}

// New builds a server over a trained state and its dataset with default
// options (single replica, 5s request timeout, 1 MiB bodies). The
// dataset supplies the global feature storage needed to resolve field
// values.
func New(state *core.State, dataset *data.Dataset) *Server {
	return NewWithOptions(state, dataset, Options{})
}

// NewWithOptions builds a server with explicit concurrency options. It
// panics if a factory-built replica's parameters do not align with the
// state's shared vector — a mismatched replica would serve garbage.
func NewWithOptions(state *core.State, dataset *data.Dataset, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		dataset: dataset,
		opts:    opts,
		state:   state,
		pool:    make(chan *replica, opts.Replicas),
	}
	s.pool <- &replica{model: state.Model, params: state.Model.Parameters()}
	for i := 1; i < opts.Replicas; i++ {
		m := opts.ReplicaFactory()
		params := m.Parameters()
		if len(params) != len(state.Shared) {
			panic(fmt.Sprintf("serve: replica %d has %d tensors, state has %d", i, len(params), len(state.Shared)))
		}
		for t, p := range params {
			if len(p.Data) != len(state.Shared[t]) {
				panic(fmt.Sprintf("serve: replica %d tensor %d has %d entries, state has %d",
					i, t, len(p.Data), len(state.Shared[t])))
			}
		}
		s.pool <- &replica{model: m, params: params}
	}
	s.snap.Store(s.compose())
	s.metrics = newServeMetrics(opts.Metrics, opts.Replicas)
	if opts.Quality != nil {
		s.quality = opts.Quality
		s.feedback = quality.NewJoinBuffer(opts.FeedbackBuffer, opts.FeedbackTTL, nil)
	}
	return s
}

// compose precomposes every domain's serving parameters from the
// current state. Callers must hold mu (or be the constructor).
func (s *Server) compose() *snapshot {
	snap := &snapshot{
		composed: make([]paramvec.Vector, len(s.state.Specific)),
		names:    make([]string, len(s.state.Specific)),
	}
	for d := range s.state.Specific {
		snap.composed[d] = s.state.ComposedFor(d)
		if d < len(s.dataset.Domains) {
			snap.names[d] = s.dataset.Domains[d].Name
		} else {
			snap.names[d] = fmt.Sprintf("runtime-%d", d)
		}
	}
	return snap
}

// AddDomain registers a new domain at runtime and publishes a snapshot
// that serves it with the shared parameters (its specific vector starts
// at zero). It returns the new domain id.
func (s *Server) AddDomain() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.state.AddDomain()
	// Only the new domain's composition is missing; existing composed
	// vectors are immutable and carried over.
	old := s.snap.Load()
	snap := &snapshot{
		composed: append(old.composed[:len(old.composed):len(old.composed)], s.state.ComposedFor(id)),
		names:    append(old.names[:len(old.names):len(old.names)], fmt.Sprintf("runtime-%d", id)),
	}
	s.snap.Store(snap)
	return id
}

// SwapState replaces the served state wholesale (e.g. after a new
// training run) and recomposes every domain. The new state's model must
// be structurally identical to the pool replicas.
func (s *Server) SwapState(state *core.State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(state.Shared) != len(s.state.Shared) {
		return fmt.Errorf("serve: new state has %d tensors, old has %d", len(state.Shared), len(s.state.Shared))
	}
	for t := range state.Shared {
		if len(state.Shared[t]) != len(s.state.Shared[t]) {
			return fmt.Errorf("serve: new state tensor %d has %d entries, old has %d",
				t, len(state.Shared[t]), len(s.state.Shared[t]))
		}
	}
	s.state = state
	s.snap.Store(s.compose())
	return nil
}

// PredictRequest asks for click probabilities of user-item pairs in one
// domain.
type PredictRequest struct {
	Domain int   `json:"domain"`
	Users  []int `json:"users"`
	Items  []int `json:"items"`
}

// PredictResponse carries the probabilities aligned with the request
// pairs. RequestID is set when quality observability is enabled: echo
// it in a later POST /feedback to join the eventual click/no-click
// labels back to these predictions.
type PredictResponse struct {
	Probabilities []float64 `json:"probabilities"`
	RequestID     string    `json:"request_id,omitempty"`
}

// FeedbackRequest delivers delayed labels for an earlier prediction,
// identified by the request_id the PredictResponse carried. Labels
// align with that request's user-item pairs (>0.5 = click).
type FeedbackRequest struct {
	RequestID string    `json:"request_id"`
	Labels    []float64 `json:"labels"`
}

// FeedbackResponse reports a successful label join.
type FeedbackResponse struct {
	Domain string `json:"domain"`
	Joined int    `json:"joined"`
}

// DomainsResponse describes the served domains.
type DomainsResponse struct {
	NumDomains int      `json:"num_domains"`
	Names      []string `json:"names"`
}

// AddDomainResponse reports a runtime domain registration.
type AddDomainResponse struct {
	ID int `json:"id"`
}

// SetDraining marks the server as draining (or not): while draining,
// /readyz returns 503 so load balancers route new traffic elsewhere,
// but /healthz stays green and in-flight requests complete — the
// standard graceful-shutdown handshake.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Handler returns the HTTP routes:
//
//	POST /predict     {domain, users[], items[]} -> {probabilities[], request_id}
//	POST /feedback    {request_id, labels[]} -> {domain, joined}
//	                  (when Options.Quality is set: joins delayed labels
//	                  to the prediction served under that request ID)
//	GET  /domains     -> {num_domains, names[]}
//	POST /domains     -> {id}   (registers a new domain)
//	GET  /healthz     -> 200 ok (liveness: the process serves HTTP)
//	GET  /readyz      -> 200 when ready to take traffic: a model
//	                     snapshot is published, at least one replica is
//	                     free, and the server is not draining; 503
//	                     otherwise, with the reason in the body
//	GET  /metrics     -> Prometheus text exposition (when Options.Metrics is set)
//
// With Options.Metrics or Options.AccessLog set, every response carries
// an X-Request-ID header, status codes are counted, and one structured
// log line is emitted per request.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	if s.quality != nil {
		mux.HandleFunc("/feedback", s.handleFeedback)
	}
	mux.HandleFunc("/domains", s.handleDomains)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.handleReady)
	if s.opts.Metrics != nil {
		mux.Handle("/metrics", s.opts.Metrics.Handler())
		mux.Handle("/metrics/snapshot", telemetry.SnapshotHandler("serve", "", s.opts.Metrics))
	}
	if s.opts.Tracer != nil {
		mux.Handle("/debug/trace", trace.CaptureHandler(s.opts.Tracer))
	}
	return s.instrument(mux)
}

// handleReady is the readiness probe: unlike /healthz (alive at all),
// it answers 200 only when the server can actually serve a prediction
// right now — a snapshot is published, the replica pool has a free
// replica, and no drain is in progress.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.snap.Load() == nil:
		http.Error(w, "no model snapshot loaded", http.StatusServiceUnavailable)
	case len(s.pool) == 0:
		http.Error(w, "replica pool saturated", http.StatusServiceUnavailable)
	default:
		if s.opts.Upstream != nil {
			if err := s.opts.Upstream(); err != nil {
				http.Error(w, "upstream: "+err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ready")
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Users) != len(req.Items) {
		http.Error(w, "users and items must align", http.StatusBadRequest)
		return
	}
	if len(req.Users) == 0 {
		http.Error(w, "empty request", http.StatusBadRequest)
		return
	}

	snap := s.snap.Load()
	if req.Domain < 0 || req.Domain >= len(snap.composed) {
		http.Error(w, fmt.Sprintf("unknown domain %d", req.Domain), http.StatusNotFound)
		return
	}
	ins := make([]data.Interaction, len(req.Users))
	for i := range req.Users {
		if req.Users[i] < 0 || req.Users[i] >= s.dataset.NumUsers {
			http.Error(w, fmt.Sprintf("unknown user %d", req.Users[i]), http.StatusBadRequest)
			return
		}
		if req.Items[i] < 0 || req.Items[i] >= s.dataset.NumItems {
			http.Error(w, fmt.Sprintf("unknown item %d", req.Items[i]), http.StatusBadRequest)
			return
		}
		ins[i] = data.Interaction{User: req.Users[i], Item: req.Items[i]}
	}
	batch := s.dataset.MakeBatch(req.Domain, ins)

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	waitStart := time.Now()
	// Both spans parent to the serve.request root: pool_wait has ended
	// by the time predict starts, so nesting predict under it would
	// place a child outside its parent's time bounds.
	_, waitSpan := trace.Start(ctx, "serve.pool_wait")
	select {
	case rep := <-s.pool:
		waitSpan.End()
		s.metrics.acquire(time.Since(waitStart))
		_, predictSpan := trace.Start(ctx, "serve.predict",
			trace.A("domain", snap.names[req.Domain]), trace.A("pairs", len(req.Users)))
		probs := s.predictOn(rep, snap, req.Domain, batch)
		predictSpan.End()
		s.pool <- rep
		s.metrics.release()
		resp := PredictResponse{Probabilities: probs}
		if s.quality != nil {
			resp.RequestID = s.recordPrediction(w, r, snap.names[req.Domain], probs)
		}
		s.writeJSON(w, r, resp)
		s.metrics.latencyFor(snap.names[req.Domain]).Observe(time.Since(start).Seconds())
	case <-ctx.Done():
		waitSpan.EndWith(trace.A("timeout", true))
		// Tell well-behaved clients when to come back: the pool is
		// saturated now, so a retry sooner than a second will likely
		// block again.
		w.Header().Set("Retry-After", "1")
		s.metrics.timeout()
		fields := map[string]any{
			"domain":     snap.names[req.Domain],
			"replicas":   s.opts.Replicas,
			"timeout_ms": s.opts.RequestTimeout.Milliseconds(),
		}
		if tc := trace.ContextOf(ctx); tc.Valid() {
			fields["trace_id"], fields["span_id"] = tc.TraceID, tc.SpanID
		}
		s.opts.Tracer.Flight().Trigger("pool_saturation", fields)
		http.Error(w, "no model replica available", http.StatusServiceUnavailable)
	}
}

// predictOn loads the domain's precomposed parameters into the replica
// and runs the forward pass. The composed vector is read-only; the
// replica's tensors are exclusively ours while it is out of the pool.
func (s *Server) predictOn(rep *replica, snap *snapshot, domain int, b *data.Batch) []float64 {
	paramvec.Restore(rep.params, snap.composed[domain])
	logits := rep.model.Forward(b, false)
	probs := framework.SigmoidAll(logits)
	logits.Release()
	return probs
}

// recordPrediction feeds the quality tracker with the served scores and
// parks them in the feedback join buffer under the response's request
// ID (minting one when the instrument chain did not). Returns the ID.
func (s *Server) recordPrediction(w http.ResponseWriter, r *http.Request, domain string, probs []float64) string {
	rid := w.Header().Get("X-Request-ID")
	if rid == "" {
		rid = requestID(r)
		w.Header().Set("X-Request-ID", rid)
	}
	scoreHist := s.metrics.scoreHistFor(domain)
	scores := make([]float32, len(probs))
	for i, p := range probs {
		scoreHist.Observe(p)
		scores[i] = float32(p)
	}
	s.quality.ObserveScores(domain, probs)
	s.feedback.Put(rid, quality.PendingPrediction{Domain: domain, Scores: scores})
	return rid
}

// handleFeedback joins delayed labels to an earlier prediction. An
// unknown, expired, or already-consumed request ID is a 404 (and a
// feedback-miss in the metrics); labels that do not align with the
// original pair count are a 400, and consume the pending entry — a
// malformed join cannot be retried into a double count.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req FeedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.RequestID == "" {
		http.Error(w, "request_id required", http.StatusBadRequest)
		return
	}
	pending, ok := s.feedback.Take(req.RequestID)
	s.quality.SyncEvictions(s.feedback.Evictions())
	if !ok {
		s.quality.FeedbackMissed()
		http.Error(w, "unknown or expired request_id", http.StatusNotFound)
		return
	}
	if len(req.Labels) != len(pending.Scores) {
		http.Error(w, fmt.Sprintf("%d labels for %d predictions", len(req.Labels), len(pending.Scores)),
			http.StatusBadRequest)
		return
	}
	scores := make([]float64, len(pending.Scores))
	labels := make([]bool, len(req.Labels))
	for i := range pending.Scores {
		scores[i] = float64(pending.Scores[i])
		labels[i] = req.Labels[i] > 0.5
	}
	s.quality.ObserveLabeled(pending.Domain, scores, labels)
	s.quality.FeedbackJoined()
	s.writeJSON(w, r, FeedbackResponse{Domain: pending.Domain, Joined: len(labels)})
}

func (s *Server) handleDomains(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		snap := s.snap.Load()
		s.writeJSON(w, r, DomainsResponse{NumDomains: len(snap.composed), Names: snap.names})
	case http.MethodPost:
		s.writeJSON(w, r, AddDomainResponse{ID: s.AddDomain()})
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
	}
}

// writeJSON encodes v into a buffer before touching the ResponseWriter,
// so an encoding failure can still produce a clean 500 instead of a 200
// header followed by a truncated body. A failed body write — the client
// hung up, or the connection broke mid-response — cannot be reported to
// the client anymore, so it is counted (mamdr_serve_write_failures_total)
// and logged once per request ID instead of being silently dropped.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.metrics.writeFailure()
		if sw, ok := w.(*statusWriter); ok {
			if sw.writeFailLogged {
				return
			}
			sw.writeFailLogged = true
		}
		if s.opts.AccessLog != nil {
			s.opts.AccessLog.LogAttrs(r.Context(), slog.LevelWarn, "response write failed",
				slog.String("request_id", w.Header().Get("X-Request-ID")),
				slog.String("path", r.URL.Path),
				slog.String("error", err.Error()))
		}
	}
}
