// Package serve exposes a trained MAMDR state over HTTP, mirroring the
// serving side of the paper's Taobao MDR platform (Fig. 2): clients ask
// for click probabilities of user-item pairs under a given domain, and
// new domains can be registered at runtime (they serve with the shared
// parameters until their specific parameters are trained).
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"mamdr/internal/core"
	"mamdr/internal/data"
)

// Server serves predictions from a MAMDR state. All handlers are safe
// for concurrent use; prediction swaps domain parameters in and out of
// the model, so calls are serialized by a mutex (models are cheap to
// replicate if more throughput is needed — one Server per replica).
type Server struct {
	mu      sync.Mutex
	state   *core.State
	dataset *data.Dataset
}

// New builds a server over a trained state and its dataset (the dataset
// supplies the global feature storage needed to resolve field values).
func New(state *core.State, dataset *data.Dataset) *Server {
	return &Server{state: state, dataset: dataset}
}

// PredictRequest asks for click probabilities of user-item pairs in one
// domain.
type PredictRequest struct {
	Domain int   `json:"domain"`
	Users  []int `json:"users"`
	Items  []int `json:"items"`
}

// PredictResponse carries the probabilities aligned with the request
// pairs.
type PredictResponse struct {
	Probabilities []float64 `json:"probabilities"`
}

// DomainsResponse describes the served domains.
type DomainsResponse struct {
	NumDomains int      `json:"num_domains"`
	Names      []string `json:"names"`
}

// AddDomainResponse reports a runtime domain registration.
type AddDomainResponse struct {
	ID int `json:"id"`
}

// Handler returns the HTTP routes:
//
//	POST /predict     {domain, users[], items[]} -> {probabilities[]}
//	GET  /domains     -> {num_domains, names[]}
//	POST /domains     -> {id}   (registers a new domain)
//	GET  /healthz     -> 200 ok
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/domains", s.handleDomains)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Users) != len(req.Items) {
		http.Error(w, "users and items must align", http.StatusBadRequest)
		return
	}
	if len(req.Users) == 0 {
		http.Error(w, "empty request", http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Domain < 0 || req.Domain >= len(s.state.Specific) {
		http.Error(w, fmt.Sprintf("unknown domain %d", req.Domain), http.StatusNotFound)
		return
	}
	ins := make([]data.Interaction, len(req.Users))
	for i := range req.Users {
		if req.Users[i] < 0 || req.Users[i] >= s.dataset.NumUsers {
			http.Error(w, fmt.Sprintf("unknown user %d", req.Users[i]), http.StatusBadRequest)
			return
		}
		if req.Items[i] < 0 || req.Items[i] >= s.dataset.NumItems {
			http.Error(w, fmt.Sprintf("unknown item %d", req.Items[i]), http.StatusBadRequest)
			return
		}
		ins[i] = data.Interaction{User: req.Users[i], Item: req.Items[i]}
	}
	probs := s.state.Predict(s.dataset.MakeBatch(req.Domain, ins))
	writeJSON(w, PredictResponse{Probabilities: probs})
}

func (s *Server) handleDomains(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch r.Method {
	case http.MethodGet:
		resp := DomainsResponse{NumDomains: len(s.state.Specific)}
		for _, dom := range s.dataset.Domains {
			resp.Names = append(resp.Names, dom.Name)
		}
		for i := len(resp.Names); i < resp.NumDomains; i++ {
			resp.Names = append(resp.Names, fmt.Sprintf("runtime-%d", i))
		}
		writeJSON(w, resp)
	case http.MethodPost:
		id := s.state.AddDomain()
		writeJSON(w, AddDomainResponse{ID: id})
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
