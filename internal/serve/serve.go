// Package serve exposes a trained MAMDR state over HTTP, mirroring the
// serving side of the paper's Taobao MDR platform (Fig. 2): clients ask
// for click probabilities of user-item pairs under a given domain, and
// new domains can be registered at runtime (they serve with the shared
// parameters until their specific parameters are trained).
//
// The server is built for concurrent traffic. Serving parameters for
// every domain (θ_S + θ_i, Eq. 4) are precomposed into an immutable
// snapshot that requests read through an atomic pointer — no global
// lock and no per-request parameter composition. Forward passes run on
// a pool of model replicas, so predictions for different requests
// proceed concurrently. Domain registration, state swaps, and live
// publications build a fresh snapshot off-path and install it
// atomically; in-flight requests keep serving the snapshot they
// started with.
//
// Live rollout: Publish stages a new versioned snapshot next to the
// incumbent. With a rollout gate attached (SetRollout), the new
// snapshot serves only a canary fraction of traffic — requests are
// routed deterministically by request-ID hash — while the gate compares
// the two arms' live quality and then promotes or rolls back through
// the Fleet interface this server implements. The incumbent snapshot
// is immutable and stays pinned in memory for the whole evaluation, so
// a rollback is a pointer drop: post-rollback predictions are
// bit-identical to never having published.
//
// Overload and upstream failure degrade instead of cascading: an
// admission gate sheds requests (503 + jittered Retry-After) before
// the replica pool saturates, and a circuit breaker on the serve→PS
// upstream keeps /readyz green — serving the last good snapshot with a
// staleness gauge — when the cluster behind it dies.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mamdr/internal/autograd"
	"mamdr/internal/batch"
	"mamdr/internal/core"
	"mamdr/internal/data"
	"mamdr/internal/faultinject"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/paramvec"
	"mamdr/internal/ps"
	"mamdr/internal/quality"
	"mamdr/internal/quant"
	"mamdr/internal/rollout"
	"mamdr/internal/telemetry"
	"mamdr/internal/trace"
)

// Upstream describes the PS cluster backing this server's parameters:
// a health probe and a snapshot source for live publication. Both are
// wrapped in the server's circuit breaker and fault-injection hooks.
type Upstream struct {
	// Ping probes shard connectivity.
	Ping func(ctx context.Context) error
	// Snapshot pulls a fresh shared-parameter vector from the cluster —
	// the publish source behind POST /admin/publish {"source":"upstream"}.
	// Optional; nil disables upstream-sourced publication.
	Snapshot func() (paramvec.Vector, error)
}

// Options configures the serving path.
type Options struct {
	// Replicas is the model-replica pool size; each in-flight prediction
	// holds one replica for the duration of its forward pass. Defaults
	// to GOMAXPROCS. Without a ReplicaFactory the pool holds only the
	// state's own model, so Replicas is forced to 1.
	Replicas int
	// ReplicaFactory builds additional model replicas structurally
	// identical to the state's model (same Config including Seed).
	ReplicaFactory func() models.Model
	// RequestTimeout bounds how long a prediction waits for a free
	// replica before returning 503. Default 5s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps the request body size. Default 1 MiB.
	MaxBodyBytes int64
	// Metrics, when non-nil, receives the serving instruments —
	// per-domain latency histograms, replica-pool wait and saturation,
	// per-status-code request counters — and is exposed at GET /metrics
	// on the server's handler.
	Metrics *telemetry.Registry
	// AccessLog, when non-nil, emits one structured log line per
	// request, carrying a request ID that is also returned in the
	// X-Request-ID response header.
	AccessLog *slog.Logger
	// Tracer, when non-nil, opens one trace per request — a
	// serve.request root span keyed to the X-Request-ID with pool-wait
	// and predict child spans — exposes GET /debug/trace?sec=N
	// capture-on-demand, and raises a pool_saturation anomaly into the
	// tracer's flight recorder when a prediction times out waiting for
	// a replica.
	Tracer *trace.Tracer
	// Upstream, when non-nil, connects this server to the snapshot
	// source backing it — PS/shard connectivity when the state was
	// loaded from a cluster. /readyz probes Upstream.Ping after the
	// local checks, through a circuit breaker: transient failures fail
	// readiness (the load balancer steers away), but once
	// UpstreamThreshold consecutive probes fail the breaker opens and
	// the server degrades instead — /readyz goes green again, serving
	// the last good snapshot with a staleness gauge, because a dead PS
	// cluster must not take the whole serving fleet out with it.
	Upstream *Upstream
	// UpstreamThreshold is the consecutive-failure count that opens
	// the upstream circuit breaker. Default 3.
	UpstreamThreshold int
	// UpstreamBackoff paces upstream probes while the breaker is open
	// (zero value takes the ps package defaults).
	UpstreamBackoff ps.Backoff
	// MaxQueue bounds how many admitted predictions may wait for a
	// replica beyond the ones executing; requests past it are shed
	// immediately (503 + jittered Retry-After) instead of piling onto
	// the pool. Default 4×Replicas.
	MaxQueue int
	// ShedSeed seeds the Retry-After jitter (default 1): deterministic
	// under test, spread out enough that a synchronized client herd
	// does not come back as one wave.
	ShedSeed int64
	// Faults, when non-nil, injects deterministic serving-path faults
	// for chaos drills under the operation names "Predict",
	// "PublishSource", "UpstreamPing", and "UpstreamSnapshot".
	Faults *faultinject.Injector
	// OnSwap, when non-nil, runs after a snapshot becomes the incumbent
	// — every immediate publish, promotion, and state swap — with the
	// new incumbent's version and envelope CRC (0 when sourced outside
	// a checkpoint). Called without internal locks held.
	OnSwap func(version uint64, crc uint32)
	// InitialVersion and InitialCRC label the snapshot the server boots
	// with, normally the loaded checkpoint's envelope identity.
	// InitialVersion defaults to 1.
	InitialVersion uint64
	InitialCRC     uint32
	// Quality, when non-nil, turns on model-quality observability:
	// every successful prediction feeds per-domain score-distribution
	// histograms and the tracker's drift windows, responses carry a
	// request_id, and POST /feedback joins delayed labels back to
	// their predictions so prequential AUC/calibration accrue from
	// live traffic.
	Quality *quality.Tracker
	// FeedbackTTL bounds how long a prediction waits in the feedback
	// join buffer for its labels. Default 2 minutes.
	FeedbackTTL time.Duration
	// FeedbackBuffer caps the join buffer's entry count (oldest
	// evicted first). Default 65536.
	FeedbackBuffer int
	// BatchMax enables request coalescing when > 0: concurrent
	// predictions for the same domain gather into micro-batches of at
	// most this many rows and share one batched forward pass. 0 keeps
	// the classic one-request-per-forward path.
	BatchMax int
	// BatchLinger bounds how long a lone request waits for batchmates
	// before its batch flushes anyway. Default 500µs (with BatchMax).
	// Under saturating traffic batches fill before the linger fires,
	// so this prices only the idle-tail latency.
	BatchLinger time.Duration
	// SnapshotQuant selects the embedding-table storage of serving
	// snapshots: "off" (default) keeps composed float64 vectors;
	// "int8" stores composed embedding tables symmetric-per-row
	// quantized (internal/quant) and restores only each batch's
	// touched rows through a hot-row dequantization cache. Models
	// without learned embedding tables serve exactly as "off".
	SnapshotQuant string
	// QuantCacheRows caps the shared dequantization LRU (rows held
	// decoded across all domains and snapshots). Default 4096.
	QuantCacheRows int
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = runtime.GOMAXPROCS(0)
	}
	if o.ReplicaFactory == nil {
		o.Replicas = 1
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 4 * o.Replicas
	}
	if o.ShedSeed == 0 {
		o.ShedSeed = 1
	}
	if o.UpstreamThreshold <= 0 {
		o.UpstreamThreshold = 3
	}
	if o.InitialVersion == 0 {
		o.InitialVersion = 1
	}
	if o.BatchMax > 0 && o.BatchLinger <= 0 {
		o.BatchLinger = 500 * time.Microsecond
	}
	if o.QuantCacheRows <= 0 {
		o.QuantCacheRows = 4096
	}
	return o
}

// view is what the request path reads in one atomic load: the
// incumbent snapshot, the canary snapshot under evaluation (nil when
// none), and the versions/CRCs that key them to their checkpoint
// envelopes. Both snapshots are immutable; keeping the incumbent in
// the same view pins the last known good in memory for the entire
// canary evaluation, so a rollback is a pointer drop and post-rollback
// predictions are bit-identical to never having published.
type view struct {
	incumbent, canary       *snapshot
	incumbentV, canaryV     uint64
	incumbentCRC, canaryCRC uint32
	fraction                float64
}

// routeToCanary deterministically assigns a request to the canary arm
// by hashing its request ID against the traffic fraction: the same ID
// always lands on the same arm, so retries and replays are comparable
// and tests can pick their arm by picking their X-Request-ID.
func routeToCanary(rid string, fraction float64) bool {
	h := fnv.New32a()
	h.Write([]byte(rid))
	return float64(h.Sum32())/float64(1<<32) < fraction
}

// replica is one pooled model instance. Its tensors are owned
// exclusively by the request currently holding it.
type replica struct {
	model  models.Model
	params []*autograd.Tensor
}

// Server serves predictions from a MAMDR state. All handlers are safe
// for concurrent use.
type Server struct {
	dataset *data.Dataset
	opts    Options

	// mu serializes state mutations (AddDomain, SwapState, Publish,
	// promote/rollback). Reads never take it: they load view.
	mu    sync.Mutex
	state *core.State
	// pendingState/pendingBaseline back the staged canary: installed on
	// promote, dropped on rollback. Guarded by mu.
	pendingState    *core.State
	pendingBaseline *quality.Baseline

	view atomic.Pointer[view]
	pool chan *replica

	// rollout is the canary gate, attached via SetRollout after
	// construction (the controller needs the server as its Fleet).
	rollout atomic.Pointer[rollout.Controller]

	// draining flips on SIGTERM: /readyz starts failing so load
	// balancers stop routing here, while in-flight requests finish.
	draining atomic.Bool

	// pending counts requests inside the predict handler (queued or
	// executing); the admission gate sheds off it before the pool
	// saturates.
	pending atomic.Int64
	// svcEWMA is the exponentially-weighted mean forward-pass time in
	// seconds, as math.Float64bits — the service-time estimate behind
	// the deadline-aware shed.
	svcEWMA atomic.Uint64
	shedMu  sync.Mutex
	shedRng *rand.Rand

	upstream *upstreamMonitor

	metrics  *serveMetrics
	quality  *quality.Tracker
	feedback *quality.JoinBuffer

	// quantCfg, when non-nil, quantizes every snapshot's embedding
	// tables to int8 (Options.SnapshotQuant); coalescer, when non-nil,
	// micro-batches /predict requests (Options.BatchMax).
	quantCfg  *quantConfig
	coalescer *batch.Coalescer
}

// gate returns the attached rollout controller, nil when none; every
// rollout.Controller method is nil-receiver-safe.
func (s *Server) gate() *rollout.Controller { return s.rollout.Load() }

// SetRollout attaches the canary gate. Publish stages snapshots as
// canaries only once a gate is attached; without one it swaps
// immediately.
func (s *Server) SetRollout(c *rollout.Controller) { s.rollout.Store(c) }

// New builds a server over a trained state and its dataset with default
// options (single replica, 5s request timeout, 1 MiB bodies). The
// dataset supplies the global feature storage needed to resolve field
// values.
func New(state *core.State, dataset *data.Dataset) *Server {
	return NewWithOptions(state, dataset, Options{})
}

// NewWithOptions builds a server with explicit concurrency options. It
// panics if a factory-built replica's parameters do not align with the
// state's shared vector — a mismatched replica would serve garbage.
func NewWithOptions(state *core.State, dataset *data.Dataset, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		dataset: dataset,
		opts:    opts,
		state:   state,
		pool:    make(chan *replica, opts.Replicas),
	}
	s.pool <- &replica{model: state.Model, params: state.Model.Parameters()}
	for i := 1; i < opts.Replicas; i++ {
		m := opts.ReplicaFactory()
		params := m.Parameters()
		if len(params) != len(state.Shared) {
			panic(fmt.Sprintf("serve: replica %d has %d tensors, state has %d", i, len(params), len(state.Shared)))
		}
		for t, p := range params {
			if len(p.Data) != len(state.Shared[t]) {
				panic(fmt.Sprintf("serve: replica %d tensor %d has %d entries, state has %d",
					i, t, len(p.Data), len(state.Shared[t])))
			}
		}
		s.pool <- &replica{model: m, params: params}
	}
	switch opts.SnapshotQuant {
	case "", "off":
	case "int8":
		// Nil when the model has no learned embedding tables (the
		// fixed-feature presets): nothing to quantize, serve as "off".
		s.quantCfg = newQuantConfig(state.Model, opts.QuantCacheRows)
	default:
		panic(fmt.Sprintf("serve: unknown SnapshotQuant %q (off or int8)", opts.SnapshotQuant))
	}
	s.view.Store(&view{
		incumbent:    s.compose(),
		incumbentV:   opts.InitialVersion,
		incumbentCRC: opts.InitialCRC,
	})
	s.metrics = newServeMetrics(opts.Metrics, opts.Replicas)
	s.metrics.snapshotVersions(opts.InitialVersion, 0)
	s.shedRng = rand.New(rand.NewSource(opts.ShedSeed))
	s.upstream = newUpstreamMonitor(opts.Upstream, opts.Faults, opts.Metrics,
		opts.UpstreamThreshold, opts.UpstreamBackoff)
	if opts.Quality != nil {
		s.quality = opts.Quality
		s.feedback = quality.NewJoinBuffer(opts.FeedbackBuffer, opts.FeedbackTTL, nil)
	}
	if opts.BatchMax > 0 {
		s.coalescer = batch.New(batch.Options{
			MaxRows: opts.BatchMax,
			Linger:  opts.BatchLinger,
			Run:     s.runBatch,
			OnFlush: func(_ int, requests, rows int, waited time.Duration, reason string) {
				s.metrics.batchFlush(requests, rows, waited, reason, opts.BatchMax)
			},
		})
	}
	return s
}

// compose wraps the current state as a servable snapshot. Callers must
// hold mu (or be the constructor).
func (s *Server) compose() *snapshot { return s.composeState(s.state) }

// AddDomain registers a new domain at runtime and publishes a snapshot
// that serves it with the shared parameters (its specific vector starts
// at zero). It returns the new domain id.
func (s *Server) AddDomain() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.state.AddDomain()
	// Only the new domain is missing; existing compositions are
	// immutable and carried over by extend.
	old := s.view.Load()
	nv := *old
	nv.incumbent = old.incumbent.extend(s.state.Specific[id], id)
	// A staged canary must stay domain-aligned with the incumbent, or a
	// later promote would silently lose the registration.
	if s.pendingState != nil {
		s.pendingState.AddDomain()
		nv.canary = old.canary.extend(s.pendingState.Specific[id], id)
	}
	s.view.Store(&nv)
	return id
}

// validateStateLocked checks a candidate state is structurally
// compatible with the served one — a mismatched state would serve
// garbage through the pool replicas.
func (s *Server) validateStateLocked(state *core.State) error {
	if len(state.Shared) != len(s.state.Shared) {
		return fmt.Errorf("serve: new state has %d tensors, old has %d", len(state.Shared), len(s.state.Shared))
	}
	for t := range state.Shared {
		if len(state.Shared[t]) != len(s.state.Shared[t]) {
			return fmt.Errorf("serve: new state tensor %d has %d entries, old has %d",
				t, len(state.Shared[t]), len(s.state.Shared[t]))
		}
	}
	return nil
}

// SwapState replaces the served state wholesale (e.g. after a new
// training run) and recomposes every domain, bumping the incumbent
// version. The new state's model must be structurally identical to the
// pool replicas. It refuses while a canary evaluation is in flight —
// the comparison would no longer be against the snapshot the gate
// started with.
func (s *Server) SwapState(state *core.State) error {
	s.mu.Lock()
	old := s.view.Load()
	if old.canary != nil {
		s.mu.Unlock()
		return fmt.Errorf("serve: cannot swap state while canary v%d is in flight", old.canaryV)
	}
	if err := s.validateStateLocked(state); err != nil {
		s.mu.Unlock()
		return err
	}
	version := old.incumbentV + 1
	s.installLocked(state, s.composeState(state), version, 0, nil)
	onSwap := s.opts.OnSwap
	s.mu.Unlock()
	if onSwap != nil {
		onSwap(version, 0)
	}
	return nil
}

// installLocked makes (state, snap) the incumbent under version/crc and
// applies its frozen quality baseline, if any. Caller holds mu and is
// responsible for invoking OnSwap after unlocking.
func (s *Server) installLocked(state *core.State, snap *snapshot, version uint64, crc uint32, baseline *quality.Baseline) {
	s.state = state
	s.view.Store(&view{incumbent: snap, incumbentV: version, incumbentCRC: crc})
	s.metrics.snapshotVersions(version, 0)
	if baseline != nil && s.quality != nil {
		s.quality.SetBaseline(baseline)
	}
}

// PredictRequest asks for click probabilities of user-item pairs in one
// domain.
type PredictRequest struct {
	Domain int   `json:"domain"`
	Users  []int `json:"users"`
	Items  []int `json:"items"`
}

// PredictResponse carries the probabilities aligned with the request
// pairs. RequestID is set when quality observability is enabled: echo
// it in a later POST /feedback to join the eventual click/no-click
// labels back to these predictions.
type PredictResponse struct {
	Probabilities []float64 `json:"probabilities"`
	RequestID     string    `json:"request_id,omitempty"`
}

// FeedbackRequest delivers delayed labels for an earlier prediction,
// identified by the request_id the PredictResponse carried. Labels
// align with that request's user-item pairs (>0.5 = click).
type FeedbackRequest struct {
	RequestID string    `json:"request_id"`
	Labels    []float64 `json:"labels"`
}

// FeedbackResponse reports a successful label join.
type FeedbackResponse struct {
	Domain string `json:"domain"`
	Joined int    `json:"joined"`
}

// DomainsResponse describes the served domains.
type DomainsResponse struct {
	NumDomains int      `json:"num_domains"`
	Names      []string `json:"names"`
}

// AddDomainResponse reports a runtime domain registration.
type AddDomainResponse struct {
	ID int `json:"id"`
}

// SetDraining marks the server as draining (or not): while draining,
// /readyz returns 503 so load balancers route new traffic elsewhere,
// but /healthz stays green and in-flight requests complete — the
// standard graceful-shutdown handshake.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Close flushes and closes the request coalescer (if batching is on):
// queued requests complete, later submissions get a clean 503. Call it
// after the HTTP server has stopped accepting connections.
func (s *Server) Close() {
	if s.coalescer != nil {
		s.coalescer.Close()
	}
}

// Handler returns the HTTP routes:
//
//	POST /predict     {domain, users[], items[]} -> {probabilities[], request_id}
//	POST /feedback    {request_id, labels[]} -> {domain, joined}
//	                  (when Options.Quality is set: joins delayed labels
//	                  to the prediction served under that request ID)
//	GET  /domains     -> {num_domains, names[]}
//	POST /domains     -> {id}   (registers a new domain)
//	GET  /healthz     -> 200 ok (liveness: the process serves HTTP)
//	GET  /readyz      -> 200 when ready to take traffic: a model
//	                     snapshot is published, at least one replica is
//	                     free, and the server is not draining; 503
//	                     otherwise, with the reason in the body. The
//	                     body carries the incumbent snapshot version
//	                     (and canary/degraded state when applicable).
//	GET  /metrics     -> Prometheus text exposition (when Options.Metrics is set)
//
//	POST /admin/publish  {path | source:"upstream", version?} -> {version, crc, canary, fraction}
//	                     (stages a new snapshot: as a canary when a
//	                     rollout gate is attached, else an immediate swap)
//	GET  /admin/rollout  -> incumbent/canary versions + gate status
//	POST /admin/rollback -> rolls back the in-flight canary manually
//
// With Options.Metrics or Options.AccessLog set, every response carries
// an X-Request-ID header, status codes are counted, and one structured
// log line is emitted per request.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	if s.quality != nil {
		mux.HandleFunc("/feedback", s.handleFeedback)
	}
	mux.HandleFunc("/domains", s.handleDomains)
	mux.HandleFunc("/admin/publish", s.handleAdminPublish)
	mux.HandleFunc("/admin/rollout", s.handleRolloutStatus)
	mux.HandleFunc("/admin/rollback", s.handleAdminRollback)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.handleReady)
	if s.opts.Metrics != nil {
		mux.Handle("/metrics", s.opts.Metrics.Handler())
		mux.Handle("/metrics/snapshot", telemetry.SnapshotHandler("serve", "", s.opts.Metrics))
	}
	if s.opts.Tracer != nil {
		mux.Handle("/debug/trace", trace.CaptureHandler(s.opts.Tracer))
	}
	return s.instrument(mux)
}

// handleReady is the readiness probe: unlike /healthz (alive at all),
// it answers 200 only when the server can actually serve a prediction
// right now — a snapshot is published, the replica pool has a free
// replica, and no drain is in progress.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.view.Load() == nil:
		http.Error(w, "no model snapshot loaded", http.StatusServiceUnavailable)
	case len(s.pool) == 0:
		http.Error(w, "replica pool saturated", http.StatusServiceUnavailable)
	default:
		v := s.view.Load()
		degraded, err := s.upstream.check(r.Context())
		switch {
		case err != nil && !degraded:
			// Transient upstream failure, breaker still closed: fail
			// readiness so the load balancer steers away while it lasts.
			http.Error(w, "upstream: "+err.Error(), http.StatusServiceUnavailable)
		case degraded:
			// Breaker open: the upstream is persistently gone, but the
			// last good snapshot still serves. Staying ready keeps the
			// fleet up; the staleness gauge keeps operators honest.
			fmt.Fprintf(w, "ready v%d crc=%08x (degraded: upstream down, serving last good snapshot: %v)\n",
				v.incumbentV, v.incumbentCRC, err)
		case v.canary != nil:
			fmt.Fprintf(w, "ready v%d crc=%08x (canary v%d at %.0f%%)\n",
				v.incumbentV, v.incumbentCRC, v.canaryV, v.fraction*100)
		default:
			fmt.Fprintf(w, "ready v%d crc=%08x\n", v.incumbentV, v.incumbentCRC)
		}
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Admission gate: shed before decoding the body, before the pool —
	// a request that would only wait out its deadline in the queue fails
	// in microseconds with a Retry-After instead.
	admitted := s.pending.Add(1)
	defer s.pending.Add(-1)
	if reason := s.shedReason(admitted); reason != "" {
		s.shed(w, reason)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Users) != len(req.Items) {
		http.Error(w, "users and items must align", http.StatusBadRequest)
		return
	}
	if len(req.Users) == 0 {
		http.Error(w, "empty request", http.StatusBadRequest)
		return
	}

	// One atomic load pins this request's world: incumbent, canary, and
	// the fraction. The request ID is resolved before routing so the
	// canary assignment is deterministic per ID.
	rid := w.Header().Get("X-Request-ID")
	if rid == "" {
		rid = requestID(r)
		w.Header().Set("X-Request-ID", rid)
	}
	v := s.view.Load()
	snap, version := v.incumbent, v.incumbentV
	if v.canary != nil && req.Domain >= 0 && req.Domain < v.canary.numDomains() && routeToCanary(rid, v.fraction) {
		snap, version = v.canary, v.canaryV
	}
	if req.Domain < 0 || req.Domain >= snap.numDomains() {
		http.Error(w, fmt.Sprintf("unknown domain %d", req.Domain), http.StatusNotFound)
		return
	}
	ins := make([]data.Interaction, len(req.Users))
	for i := range req.Users {
		if req.Users[i] < 0 || req.Users[i] >= s.dataset.NumUsers {
			http.Error(w, fmt.Sprintf("unknown user %d", req.Users[i]), http.StatusBadRequest)
			return
		}
		if req.Items[i] < 0 || req.Items[i] >= s.dataset.NumItems {
			http.Error(w, fmt.Sprintf("unknown item %d", req.Items[i]), http.StatusBadRequest)
			return
		}
		ins[i] = data.Interaction{User: req.Users[i], Item: req.Items[i]}
	}

	// Micro-batched path: the coalescer gathers this request with its
	// concurrent batchmates; arm routing re-resolves per item at flush
	// time from ONE view load per batch, preserving the same
	// ID-deterministic assignment.
	if s.coalescer != nil {
		s.predictBatched(w, r, start, rid, req.Domain, ins)
		return
	}
	batch := s.dataset.MakeBatch(req.Domain, ins)

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	waitStart := time.Now()
	// Both spans parent to the serve.request root: pool_wait has ended
	// by the time predict starts, so nesting predict under it would
	// place a child outside its parent's time bounds.
	_, waitSpan := trace.Start(ctx, "serve.pool_wait")
	select {
	case rep := <-s.pool:
		waitSpan.End()
		s.metrics.acquire(time.Since(waitStart))
		// Chaos hook: a "Predict" fault holds or fails this replica the
		// way a slow or broken forward pass would.
		if err := s.opts.Faults.Eval("Predict").Apply(ctx); err != nil {
			s.pool <- rep
			s.metrics.release()
			http.Error(w, "prediction failed: "+err.Error(), http.StatusInternalServerError)
			return
		}
		predictStart := time.Now()
		_, predictSpan := trace.Start(ctx, "serve.predict",
			trace.A("domain", snap.names[req.Domain]), trace.A("pairs", len(req.Users)),
			trace.A("snapshot_version", version))
		probs := s.predictOn(rep, snap, req.Domain, batch)
		predictSpan.End()
		s.pool <- rep
		s.metrics.release()
		s.observeServiceTime(time.Since(predictStart), 1)
		s.respondPredict(w, r, start, rid, snap.names[req.Domain], version, probs)
	case <-ctx.Done():
		waitSpan.EndWith(trace.A("timeout", true))
		// Tell well-behaved clients when to come back: the pool is
		// saturated now, so a retry sooner than a second will likely
		// block again.
		w.Header().Set("Retry-After", "1")
		s.metrics.timeout()
		fields := map[string]any{
			"domain":     snap.names[req.Domain],
			"replicas":   s.opts.Replicas,
			"timeout_ms": s.opts.RequestTimeout.Milliseconds(),
		}
		if tc := trace.ContextOf(ctx); tc.Valid() {
			fields["trace_id"], fields["span_id"] = tc.TraceID, tc.SpanID
		}
		s.opts.Tracer.Flight().Trigger("pool_saturation", fields)
		http.Error(w, "no model replica available", http.StatusServiceUnavailable)
	}
}

// respondPredict is the shared response tail for the inline and batched
// predict paths: quality recording, gate observation, JSON write, and
// the per-domain latency observation — in exactly this order.
func (s *Server) respondPredict(w http.ResponseWriter, r *http.Request, start time.Time, rid, domain string, version uint64, probs []float64) {
	resp := PredictResponse{Probabilities: probs}
	if s.quality != nil {
		resp.RequestID = s.recordPrediction(rid, domain, version, probs)
	}
	// The gate compares arms on the dense score signal; with no
	// canary in flight this is a no-op.
	s.gate().ObserveScores(version, probs)
	s.writeJSON(w, r, resp)
	s.metrics.latencyFor(domain).Observe(time.Since(start).Seconds())
}

// predictOn loads the domain's composed parameters into the replica and
// runs the forward pass. The composed vector is read-only; the
// replica's tensors are exclusively ours while it is out of the pool.
func (s *Server) predictOn(rep *replica, snap *snapshot, domain int, b *data.Batch) []float64 {
	c := snap.comp(domain)
	if snap.quant == nil {
		paramvec.Restore(rep.params, c.dense)
	} else {
		s.restoreQuantized(rep, snap, domain, c, b)
	}
	logits := rep.model.Forward(b, false)
	probs := framework.SigmoidAll(logits)
	logits.Release()
	return probs
}

// restoreQuantized loads the replica for a quantized snapshot: dense
// (non-table) segments copy wholesale, and for each embedding table
// only the rows this batch's field values gather are dequantized —
// through the shared hot-row cache — into the replica's tensor. Rows
// the batch does not touch keep stale values, which is safe by the
// EmbeddingTabler contract: the forward pass reads exactly the gathered
// rows, the same guarantee the parameter server's row-wise sync leans
// on during training.
func (s *Server) restoreQuantized(rep *replica, snap *snapshot, domain int, c *domainComp, b *data.Batch) {
	for p, seg := range c.dense {
		if seg != nil {
			copy(rep.params[p].Data, seg)
		}
	}
	for p, dim := range snap.quant.tables {
		tbl := c.tables[p]
		dst := rep.params[p].Data
		for _, row := range b.FieldValues[dim.field] {
			dec := snap.quant.cache.Get(
				quant.Key{Snap: snap.id, Domain: domain, Param: p, Row: row},
				dim.cols,
				func(out []float64) { tbl.Row(row, out) },
			)
			copy(dst[row*dim.cols:(row+1)*dim.cols], dec)
		}
	}
	s.metrics.quantCache(snap.quant.cache.Stats())
}

// recordPrediction feeds the quality tracker with the served scores and
// parks them in the feedback join buffer under the request ID, stamped
// with the snapshot version that produced them — when the labels come
// back mid-canary they credit the arm that actually served, never the
// other one. Returns the ID.
func (s *Server) recordPrediction(rid, domain string, version uint64, probs []float64) string {
	scoreHist := s.metrics.scoreHistFor(domain)
	scores := make([]float32, len(probs))
	for i, p := range probs {
		scoreHist.Observe(p)
		scores[i] = float32(p)
	}
	s.quality.ObserveScores(domain, probs)
	s.feedback.Put(rid, quality.PendingPrediction{Domain: domain, Scores: scores, Version: version})
	return rid
}

// handleFeedback joins delayed labels to an earlier prediction. An
// unknown, expired, or already-consumed request ID is a 404 (and a
// feedback-miss in the metrics); labels that do not align with the
// original pair count are a 400, and consume the pending entry — a
// malformed join cannot be retried into a double count.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req FeedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.RequestID == "" {
		http.Error(w, "request_id required", http.StatusBadRequest)
		return
	}
	pending, ok := s.feedback.Take(req.RequestID)
	s.quality.SyncEvictions(s.feedback.Evictions())
	if !ok {
		s.quality.FeedbackMissed()
		http.Error(w, "unknown or expired request_id", http.StatusNotFound)
		return
	}
	if len(req.Labels) != len(pending.Scores) {
		http.Error(w, fmt.Sprintf("%d labels for %d predictions", len(req.Labels), len(pending.Scores)),
			http.StatusBadRequest)
		return
	}
	scores := make([]float64, len(pending.Scores))
	labels := make([]bool, len(req.Labels))
	for i := range pending.Scores {
		scores[i] = float64(pending.Scores[i])
		labels[i] = req.Labels[i] > 0.5
	}
	s.quality.ObserveLabeled(pending.Domain, scores, labels)
	s.quality.FeedbackJoined()
	// Labeled evidence also drives the canary gate, routed by the
	// version stamped at predict time — labels for a snapshot that
	// matches neither arm are dropped there, not misattributed.
	s.gate().ObserveLabeled(pending.Version, scores, labels)
	s.writeJSON(w, r, FeedbackResponse{Domain: pending.Domain, Joined: len(labels)})
}

func (s *Server) handleDomains(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		snap := s.view.Load().incumbent
		s.writeJSON(w, r, DomainsResponse{NumDomains: snap.numDomains(), Names: snap.names})
	case http.MethodPost:
		s.writeJSON(w, r, AddDomainResponse{ID: s.AddDomain()})
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
	}
}

// writeJSON encodes v into a buffer before touching the ResponseWriter,
// so an encoding failure can still produce a clean 500 instead of a 200
// header followed by a truncated body. A failed body write — the client
// hung up, or the connection broke mid-response — cannot be reported to
// the client anymore, so it is counted (mamdr_serve_write_failures_total)
// and logged once per request ID instead of being silently dropped.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.metrics.writeFailure()
		if sw, ok := w.(*statusWriter); ok {
			if sw.writeFailLogged {
				return
			}
			sw.writeFailLogged = true
		}
		if s.opts.AccessLog != nil {
			s.opts.AccessLog.LogAttrs(r.Context(), slog.LevelWarn, "response write failed",
				slog.String("request_id", w.Header().Get("X-Request-ID")),
				slog.String("path", r.URL.Path),
				slog.String("error", err.Error()))
		}
	}
}
