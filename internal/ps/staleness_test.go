package ps

import (
	"context"
	"sync"
	"testing"

	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
)

// staleStore wraps a Server and serves parameter reads from a delayed
// snapshot, injecting the bounded staleness a real multi-machine PS
// exhibits under asynchronous pushes. Pushes go through immediately;
// pulls see state as of `lag` pushes ago.
type staleStore struct {
	inner *Server
	lag   int

	mu      sync.Mutex
	history []snapshotPair
}

type snapshotPair struct {
	dense map[int][]float64
	rows  map[int]map[int][]float64
}

func newStaleStore(inner *Server, lag int) *staleStore {
	s := &staleStore{inner: inner, lag: lag}
	s.record()
	return s
}

func (s *staleStore) record() {
	pair := snapshotPair{dense: s.inner.PullDense(context.Background()), rows: map[int]map[int][]float64{}}
	layout := s.inner.Layout()
	for t := 0; t < layout.NumTensors(); t++ {
		if !layout.Embedding[t] {
			continue
		}
		all := make([]int, layout.Rows[t])
		for r := range all {
			all[r] = r
		}
		vals := s.inner.PullRows(context.Background(), t, all)
		pair.rows[t] = map[int][]float64{}
		for r, v := range vals {
			pair.rows[t][r] = v
		}
	}
	s.mu.Lock()
	s.history = append(s.history, pair)
	if len(s.history) > s.lag+1 {
		s.history = s.history[len(s.history)-s.lag-1:]
	}
	s.mu.Unlock()
}

func (s *staleStore) stale() snapshotPair {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.history[0]
}

// Layout implements Store.
func (s *staleStore) Layout() Layout { return s.inner.Layout() }

// PullDense implements Store, serving lagged values.
func (s *staleStore) PullDense(_ context.Context) map[int][]float64 {
	src := s.stale().dense
	out := map[int][]float64{}
	for t, v := range src {
		out[t] = append([]float64(nil), v...)
	}
	return out
}

// PullRows implements Store, serving lagged values.
func (s *staleStore) PullRows(_ context.Context, tensor int, rows []int) [][]float64 {
	src := s.stale().rows[tensor]
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = append([]float64(nil), src[r]...)
	}
	return out
}

// PushDelta implements Store: applied immediately, then the visible
// snapshot advances by one.
func (s *staleStore) PushDelta(ctx context.Context, d Delta) {
	s.inner.PushDelta(ctx, d)
	s.record()
}

// Counters implements Store.
func (s *staleStore) Counters() Counters { return s.inner.Counters() }

// TestTrainingTolleratesStaleReads verifies DN training still learns
// when every parameter read is several pushes stale — the asynchronous
// regime the embedding cache's query-latest-on-miss design targets.
func TestTrainingToleratesStaleReads(t *testing.T) {
	ds := testDataset(t)
	factory := replicaFactory(ds)
	serving := factory()
	server := NewServer(serving.Parameters(), models.EmbeddingTablesOf(serving), 2, "sgd", 0.5)
	store := newStaleStore(server, 3)

	res := TrainWithStore(factory, serving, store, store, ds, Options{
		Workers: 2, Epochs: 20, Seed: 9, CacheEnabled: true,
	})
	auc := framework.MeanAUC(res.State, ds, data.Test)
	if auc < 0.53 {
		t.Fatalf("stale-read training collapsed: AUC %.4f", auc)
	}
}

// TestStaleStoreActuallyLags is a meta-test: the wrapper must serve
// values older than the server's current state.
func TestStaleStoreActuallyLags(t *testing.T) {
	ds := testDataset(t)
	serving := replicaFactory(ds)()
	server := NewServer(serving.Parameters(), models.EmbeddingTablesOf(serving), 1, "sgd", 1)
	store := newStaleStore(server, 2)

	// Find a dense tensor index.
	var denseT = -1
	layout := server.Layout()
	for i := 0; i < layout.NumTensors(); i++ {
		if !layout.Embedding[i] {
			denseT = i
			break
		}
	}
	if denseT < 0 {
		t.Fatal("no dense tensor")
	}
	size := layout.Rows[denseT] * layout.Cols[denseT]
	delta := make([]float64, size)
	for i := range delta {
		delta[i] = 1
	}
	store.PushDelta(context.Background(), Delta{Dense: map[int][]float64{denseT: delta}})

	fresh := server.PullDense(context.Background())[denseT][0]
	lagged := store.PullDense(context.Background())[denseT][0]
	if fresh == lagged {
		t.Fatalf("stale store not lagging: fresh=%g lagged=%g", fresh, lagged)
	}
}
