package ps

import (
	"errors"
	"fmt"
	"os"
	"sort"

	"mamdr/internal/autograd"
	"mamdr/internal/core"
	"mamdr/internal/optim"
	"mamdr/internal/paramvec"
)

// CheckpointStore is the optional capability the trainer uses for
// epoch-boundary checkpointing: the store persists its full state
// (parameters, per-shard outer-optimizer state, epoch cursor) to its
// own configured location. The in-process Server and the RPC Client
// both implement it; over RPC the snapshot lands on the server's disk,
// which is what survives a worker-side crash.
type CheckpointStore interface {
	// SaveCheckpoint persists the current state with epoch as the
	// number of fully completed training epochs.
	SaveCheckpoint(epoch int) error
	// LoadCheckpoint restores the last saved state and returns its
	// epoch cursor; (-1, nil) means no checkpoint exists yet.
	LoadCheckpoint() (int, error)
}

var _ CheckpointStore = (*Server)(nil)

// serverCheckpoint is the gob payload of a PS checkpoint: every managed
// tensor's values plus each shard's outer-optimizer state, aligned with
// the shard's tensors in ascending tensor-index order.
type serverCheckpoint struct {
	Params paramvec.Vector
	Shards []optim.State
	Epoch  int
}

// SetCheckpointPath configures where SaveCheckpoint/LoadCheckpoint
// persist the server's snapshot. Set before serving traffic.
func (s *Server) SetCheckpointPath(path string) { s.ckptPath = path }

// shardParams returns shard sh's tensors in ascending tensor-index
// order — the stable ordering optimizer state is serialized against.
func (s *Server) shardParams(sh int) []*autograd.Tensor {
	var idx []int
	for t := range s.shards[sh].data {
		idx = append(idx, t)
	}
	sort.Ints(idx)
	out := make([]*autograd.Tensor, len(idx))
	for i, t := range idx {
		out[i] = s.shards[sh].data[t]
	}
	return out
}

// SaveCheckpoint implements CheckpointStore: it writes the server's
// parameters, per-shard optimizer state, and the completed-epoch cursor
// to the configured path crash-safely (temp file + fsync + rename,
// CRC-guarded envelope). Shards are locked one at a time, so a snapshot
// taken at an epoch boundary — when no pushes are in flight — is
// globally consistent.
func (s *Server) SaveCheckpoint(epoch int) error {
	if s.ckptPath == "" {
		return errors.New("ps: no checkpoint path configured on the server")
	}
	ck := serverCheckpoint{Params: s.Snapshot(), Epoch: epoch}
	for sh := range s.shards {
		params := s.shardParams(sh)
		s.shards[sh].mu.Lock()
		if st, ok := s.shards[sh].opt.(optim.Stateful); ok {
			ck.Shards = append(ck.Shards, st.CaptureState(params))
		} else {
			ck.Shards = append(ck.Shards, optim.State{})
		}
		s.shards[sh].mu.Unlock()
	}
	return core.SaveGob(s.ckptPath, ck)
}

// LoadCheckpoint implements CheckpointStore: it restores parameters and
// optimizer state from the configured path and returns the epoch cursor
// the run should continue from, or (-1, nil) when no checkpoint file
// exists. Per-worker push sequences reset on load — a resumed run
// spawns fresh workers whose sequences restart at 1.
func (s *Server) LoadCheckpoint() (int, error) {
	if s.ckptPath == "" {
		return 0, errors.New("ps: no checkpoint path configured on the server")
	}
	if _, err := os.Stat(s.ckptPath); os.IsNotExist(err) {
		return -1, nil
	}
	var ck serverCheckpoint
	if err := core.LoadGob(s.ckptPath, &ck); err != nil {
		return 0, err
	}
	if len(ck.Params) != s.layout.NumTensors() {
		return 0, fmt.Errorf("ps: checkpoint has %d tensors, server manages %d", len(ck.Params), s.layout.NumTensors())
	}
	if len(ck.Shards) != len(s.shards) {
		return 0, fmt.Errorf("ps: checkpoint has %d shards, server has %d", len(ck.Shards), len(s.shards))
	}
	for t, vals := range ck.Params {
		sh := s.shards[s.shardOf[t]]
		sh.mu.Lock()
		if len(sh.data[t].Data) != len(vals) {
			sh.mu.Unlock()
			return 0, fmt.Errorf("ps: checkpoint tensor %d has %d values, server tensor has %d", t, len(vals), len(sh.data[t].Data))
		}
		copy(sh.data[t].Data, vals)
		sh.mu.Unlock()
	}
	for sh := range s.shards {
		if ck.Shards[sh].Empty() {
			continue
		}
		st, ok := s.shards[sh].opt.(optim.Stateful)
		if !ok {
			return 0, fmt.Errorf("ps: checkpoint carries %q optimizer state for shard %d but the outer optimizer cannot restore state", ck.Shards[sh].Name, sh)
		}
		params := s.shardParams(sh)
		s.shards[sh].mu.Lock()
		err := st.RestoreState(params, ck.Shards[sh])
		s.shards[sh].mu.Unlock()
		if err != nil {
			return 0, fmt.Errorf("ps: restore shard %d optimizer: %w", sh, err)
		}
	}
	s.seqMu.Lock()
	s.lastSeq = map[int]int64{}
	s.seqMu.Unlock()
	return ck.Epoch, nil
}
