package ps

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"

	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/trace"
)

// TestRPCTracePropagation runs a 2-worker distributed training session
// over a real TCP socket with *separate* tracers on the worker and
// server processes' sides, and verifies the TraceContext carried in the
// RPC arguments stitches the two span streams together: at least one
// server-side PS span must be parented to a worker-side inner-step span
// and share its trace id, and the merged stream must render as valid
// Chrome trace-event JSON.
func TestRPCTracePropagation(t *testing.T) {
	ds := testDataset(t)
	factory := replicaFactory(ds)
	serving := factory()
	server := NewServer(serving.Parameters(), models.EmbeddingTablesOf(serving), 2, "adagrad", 0.1)

	serverTracer := trace.New(trace.Options{Sample: 1, FlightSize: -1})
	serverSpans := trace.NewCollector(0)
	serverTracer.AddSink(serverSpans)
	server.SetTracer(serverTracer)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go Serve(server, lis)

	client, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	workerTracer := trace.New(trace.Options{Sample: 1, FlightSize: -1})
	workerSpans := trace.NewCollector(0)
	workerTracer.AddSink(workerSpans)
	client.SetTracer(workerTracer)

	res := TrainWithStore(factory, serving, client, client, ds, Options{
		Workers: 2, Epochs: 10, Seed: 9, CacheEnabled: true, Tracer: workerTracer,
	})
	auc := framework.MeanAUC(res.State, ds, data.Test)
	if auc < 0.5 {
		t.Fatalf("traced RPC training collapsed: AUC %.4f", auc)
	}

	// Index the worker-side inner-step spans by id.
	steps := map[uint64]*trace.Span{}
	for _, s := range workerSpans.Spans() {
		if s.Name == "worker.inner_step" {
			steps[s.ID] = s
		}
	}
	if len(steps) == 0 {
		t.Fatal("no worker.inner_step spans collected on the worker side")
	}

	// Server-side spans issued from inside a worker inner step must have
	// adopted the worker's trace context from the RPC arguments: Remote
	// flag set, parent = the calling inner-step span, same trace id.
	// (Calls with no live caller span — e.g. the final serving-state
	// snapshot — legitimately start fresh server-side roots.)
	linked := 0
	for _, s := range serverSpans.Spans() {
		if step, ok := steps[s.ParentID]; ok {
			if !s.Remote {
				t.Fatalf("server-side span %s adopted a worker parent but is not marked Remote", s.Name)
			}
			if s.TraceID != step.TraceID {
				t.Fatalf("span %s parented to inner step but trace ids differ: %x vs %x",
					s.Name, s.TraceID, step.TraceID)
			}
			linked++
		}
	}
	if linked == 0 {
		t.Fatalf("no server-side PS span parented to a worker-side inner-step span (%d server spans, %d steps)",
			len(serverSpans.Spans()), len(steps))
	}

	// The merged two-process stream must be loadable Chrome trace JSON.
	merged := append(append([]*trace.Span{}, workerSpans.Spans()...), serverSpans.Spans()...)
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, merged, 1, 0); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("merged trace is not valid Chrome trace-event JSON: %v", err)
	}
	if len(events) != len(merged) {
		t.Fatalf("chrome export lost events: %d spans, %d events", len(merged), len(events))
	}
}
