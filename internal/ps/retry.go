package ps

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff is a jittered-exponential retry policy shared by every RPC on
// the worker-PS path. Sleeps grow Base, 2·Base, 4·Base, ... capped at
// Max, each drawn uniformly from [d/2, d) so a fleet of workers that
// lost the same server does not retry in lockstep. The jitter RNG is
// seeded, so a chaos run replays the same sleep sequence under the same
// seed.
type Backoff struct {
	// Attempts is the total number of tries (first call + retries).
	// Zero or negative means DefaultAttempts.
	Attempts int
	// Base is the pre-jitter sleep before the first retry (doubled each
	// further retry). Zero means DefaultBase.
	Base time.Duration
	// Max caps the pre-jitter sleep. Zero means DefaultMax.
	Max time.Duration
	// Seed drives the jitter RNG; a given (Seed, policy) pair yields a
	// reproducible sleep sequence.
	Seed int64
	// Sleep overrides the sleeper in tests (nil means a real
	// context-aware sleep). It must return ctx.Err() if the context is
	// done before d elapses.
	Sleep func(ctx context.Context, d time.Duration) error

	// state holds the seeded jitter stream. It is allocated lazily so
	// the zero Backoff works; copies made after first use share the
	// stream, which keeps Backoff itself copyable.
	state *backoffState
}

type backoffState struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// backoffInit guards lazy allocation of the jitter stream when several
// goroutines race on the first Delay of a shared policy.
var backoffInit sync.Mutex

func (b *Backoff) jitter() *backoffState {
	backoffInit.Lock()
	defer backoffInit.Unlock()
	if b.state == nil {
		b.state = &backoffState{rng: rand.New(rand.NewSource(b.Seed))}
	}
	return b.state
}

// The default policy: 5 tries over roughly a second and a half.
const (
	DefaultAttempts = 5
	DefaultBase     = 20 * time.Millisecond
	DefaultMax      = 500 * time.Millisecond
)

// WithDefaults fills zero fields with the default policy.
func (b Backoff) WithDefaults() Backoff {
	if b.Attempts <= 0 {
		b.Attempts = DefaultAttempts
	}
	if b.Base <= 0 {
		b.Base = DefaultBase
	}
	if b.Max <= 0 {
		b.Max = DefaultMax
	}
	return b
}

// Delay returns the jittered sleep before retry attempt (1-based: the
// sleep between try attempt and try attempt+1). It advances the seeded
// jitter RNG, so calls from concurrent goroutines are safe but share
// one jitter stream.
func (b *Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = DefaultBase
	}
	if max <= 0 {
		max = DefaultMax
	}
	d := base << (attempt - 1)
	if d > max || d <= 0 { // d <= 0 guards shift overflow
		d = max
	}
	st := b.jitter()
	st.mu.Lock()
	jittered := d/2 + time.Duration(st.rng.Int63n(int64(d/2)))
	st.mu.Unlock()
	return jittered
}

// Wait sleeps the jittered delay for retry attempt, aborting
// immediately with ctx.Err() if the context is cancelled first.
func (b *Backoff) Wait(ctx context.Context, attempt int) error {
	d := b.Delay(attempt)
	if b.Sleep != nil {
		return b.Sleep(ctx, d)
	}
	return sleepCtx(ctx, d)
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
