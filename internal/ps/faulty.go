package ps

import (
	"context"
	"time"

	"mamdr/internal/faultinject"
)

// FaultyStore wraps an in-process Store with a fault injector, so chaos
// tests exercise failure paths without a network. The Store interface
// has no error returns — in-process calls cannot fail organically — so
// injected faults surface the way real in-process failures would:
//
//   - delay faults sleep before the call;
//   - err, drop, and partition faults panic with the *InjectedError,
//     simulating an unrecoverable worker fault (there is no connection
//     to redial in-process) and exercising the trainer's supervision
//     and domain-reassignment path.
//
// For retryable faults, inject at the RPC transport instead
// (Client.SetInjector), where errors exist and the backoff policy
// absorbs them.
type FaultyStore struct {
	Base     Store
	Injector *faultinject.Injector
}

var _ Store = (*FaultyStore)(nil)

// NewFaultyStore wraps base with the injector.
func NewFaultyStore(base Store, in *faultinject.Injector) *FaultyStore {
	return &FaultyStore{Base: base, Injector: in}
}

func (f *FaultyStore) apply(op string) {
	v := f.Injector.Eval(op)
	if v.Delay > 0 {
		time.Sleep(v.Delay)
	}
	if v.Err != nil {
		panic(v.Err)
	}
	if v.DropConn {
		panic(&faultinject.InjectedError{Op: op, Kind: faultinject.KindDrop})
	}
}

// Layout implements Store (never injected: layout is fetched once at
// construction, before any schedule should fire).
func (f *FaultyStore) Layout() Layout { return f.Base.Layout() }

// PullDense implements Store.
func (f *FaultyStore) PullDense(ctx context.Context) map[int][]float64 {
	f.apply("PullDense")
	return f.Base.PullDense(ctx)
}

// PullRows implements Store.
func (f *FaultyStore) PullRows(ctx context.Context, tensor int, rows []int) [][]float64 {
	f.apply("PullRows")
	return f.Base.PullRows(ctx, tensor, rows)
}

// PushDelta implements Store.
func (f *FaultyStore) PushDelta(ctx context.Context, d Delta) {
	f.apply("PushDelta")
	f.Base.PushDelta(ctx, d)
}

// Counters implements Store.
func (f *FaultyStore) Counters() Counters { return f.Base.Counters() }
