package ps

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mamdr/internal/autograd"
	"mamdr/internal/faultinject"
	"mamdr/internal/models"
	"mamdr/internal/paramvec"
	"mamdr/internal/telemetry"
	"mamdr/internal/trace"
)

// chaosOptions is the shared configuration for the determinism tests:
// SyncPush freezes the delta-apply order, so a faulty run and a clean
// run must agree float for float.
func chaosOptions() Options {
	return Options{
		Workers: 2, Shards: 2, Epochs: 3, Seed: 9,
		CacheEnabled: true, SyncPush: true,
		OuterOpt: "adagrad", OuterLR: 0.1,
	}
}

func requireSameVector(t *testing.T, name string, a, b paramvec.Vector) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: tensor count %d vs %d", name, len(a), len(b))
	}
	for ti := range a {
		if len(a[ti]) != len(b[ti]) {
			t.Fatalf("%s: tensor %d size %d vs %d", name, ti, len(a[ti]), len(b[ti]))
		}
		for j := range a[ti] {
			if a[ti][j] != b[ti][j] {
				t.Fatalf("%s: tensor %d[%d] = %g vs %g (must be bit-identical)",
					name, ti, j, a[ti][j], b[ti][j])
			}
		}
	}
}

// TestChaosDeterminismOverRPC is the headline fault-tolerance property:
// a 2-worker run over a real RPC transport with injected errors,
// delays, and connection drops converges to exactly the same parameters
// as a clean in-process run. Retries are idempotent (sequence tokens),
// absorbed faults never double-apply, and SyncPush fixes the apply
// order, so the trajectories are bit-identical.
func TestChaosDeterminismOverRPC(t *testing.T) {
	ds := testDataset(t)
	factory := replicaFactory(ds)

	clean := Train(factory, ds, chaosOptions())

	// Faulty twin: same options, but every worker talks to the server
	// through its own freshly dialed client armed with a seeded fault
	// injector and a tight retry policy.
	serving := factory()
	server := NewServer(serving.Parameters(), models.EmbeddingTablesOf(serving), 2, "adagrad", 0.1)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go Serve(server, lis)

	base, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	var injectors []*faultinject.Injector
	opts := chaosOptions()
	opts.WrapStore = func(workerID int, _ Store) Store {
		cl, err := Dial(lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		cl.SetBackoff(Backoff{Attempts: 30, Base: time.Millisecond, Max: 4 * time.Millisecond, Seed: int64(workerID)})
		inj := faultinject.MustParse(
			"PushDelta:err@p0.1; PullDense:err@p0.1; PullRows:delay=1ms@p0.05; conn:drop@4,9", int64(workerID))
		cl.SetInjector(inj)
		injectors = append(injectors, inj)
		return cl
	}
	faulty := TrainWithStore(factory, serving, base, base, ds, opts)

	var injected int64
	for _, inj := range injectors {
		for _, n := range inj.Counts() {
			injected += n
		}
	}
	if injected == 0 {
		t.Fatal("fault schedule injected nothing; the test is vacuous")
	}
	t.Logf("injected %d faults; comparing final parameters", injected)
	requireSameVector(t, "shared", clean.State.Shared, faulty.State.Shared)
}

// TestDuplicatePushAppliedExactlyOnce covers the idempotency token: a
// retransmitted delta (same WorkerID, same Seq) must be discarded, even
// when the replays race each other.
func TestDuplicatePushAppliedExactlyOnce(t *testing.T) {
	params := []*autograd.Tensor{autograd.ParamZeros(2, 2)}
	s := NewServer(params, nil, 1, "sgd", 1)
	reg := telemetry.New()
	s.SetMetrics(NewMetrics(reg))

	mk := func(seq int64) Delta {
		return Delta{WorkerID: 7, Seq: seq, Dense: map[int][]float64{0: {1, 1, 1, 1}}}
	}
	ctx := context.Background()
	// The server owns copies of the initial tensors, so observe values
	// the way a worker would: through PullDense.
	val := func() float64 { return s.PullDense(ctx)[0][0] }

	// Sequential replay.
	s.PushDelta(ctx, mk(1))
	s.PushDelta(ctx, mk(1))
	if got := val(); got != 1 {
		t.Fatalf("after duplicate push param = %g, want 1 (applied exactly once)", got)
	}

	// Concurrent replay of the next sequence number (run with -race).
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); s.PushDelta(ctx, mk(2)) }()
	}
	wg.Wait()
	if got := val(); got != 2 {
		t.Fatalf("after concurrent replay param = %g, want 2", got)
	}

	// Stale (lower) sequence numbers are duplicates too.
	s.PushDelta(ctx, mk(1))
	if got := val(); got != 2 {
		t.Fatalf("stale seq applied: param = %g, want 2", got)
	}

	// Untagged deltas (Seq 0) always apply — the single-process path.
	s.PushDelta(ctx, Delta{Dense: map[int][]float64{0: {1, 1, 1, 1}}})
	if got := val(); got != 3 {
		t.Fatalf("untagged delta not applied: param = %g, want 3", got)
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "mamdr_ps_duplicate_pushes_total 9") {
		t.Fatalf("duplicate pushes not counted; exposition:\n%s", buf.String())
	}
}

// TestWorkerLossRedistributesDomains kills one of two workers
// mid-training (its store errors every push) and checks the run still
// completes: the survivor takes over the dead worker's domains, the
// death is counted in telemetry, and the flight recorder dumps the
// anomaly.
func TestWorkerLossRedistributesDomains(t *testing.T) {
	ds := testDataset(t)
	reg := telemetry.New()
	prefix := filepath.Join(t.TempDir(), "flight")
	tracer := trace.New(trace.Options{FlightPath: prefix})

	opts := Options{
		Workers: 2, Shards: 2, Epochs: 3, Seed: 9, CacheEnabled: true,
		Metrics: NewMetrics(reg), Tracer: tracer,
	}
	opts.WrapStore = func(workerID int, base Store) Store {
		if workerID != 1 {
			return base
		}
		return NewFaultyStore(base, faultinject.MustParse("PushDelta:err@*", 1))
	}
	res := Train(replicaFactory(ds), ds, opts)

	if res.WorkerDeaths != 1 {
		t.Fatalf("WorkerDeaths = %d, want 1", res.WorkerDeaths)
	}
	if res.State == nil || len(res.State.Shared) == 0 {
		t.Fatal("training did not produce a state after the worker loss")
	}
	if res.Counters.DensePushes == 0 {
		t.Fatal("survivor pushed nothing")
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "mamdr_ps_worker_deaths_total 1") {
		t.Fatalf("worker death not counted; exposition:\n%s", buf.String())
	}

	dumps := tracer.Flight().Dumps()
	if len(dumps) == 0 {
		t.Fatal("no flight-recorder dump for the worker death")
	}
	found := false
	for _, d := range dumps {
		if d.Kind == "worker_death" {
			found = true
			if d.Path != "" {
				if _, err := os.Stat(d.Path); err != nil {
					t.Fatalf("flight dump file missing: %v", err)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no worker_death dump in %+v", dumps)
	}
}

// TestHeartbeatWatchdogCancelsStalledWorker stalls one worker's store
// (every pull takes far longer than the heartbeat budget) and checks the
// watchdog declares it dead instead of hanging the epoch.
func TestHeartbeatWatchdogCancelsStalledWorker(t *testing.T) {
	ds := testDataset(t)
	opts := Options{
		Workers: 2, Shards: 2, Epochs: 1, Seed: 9, CacheEnabled: true,
		HeartbeatTimeout: 50 * time.Millisecond,
	}
	// Each delayed PullRows stalls well past the heartbeat budget; the
	// worker notices the cancellation at its next batch boundary.
	opts.WrapStore = func(workerID int, base Store) Store {
		if workerID != 1 {
			return base
		}
		return NewFaultyStore(base, faultinject.MustParse("PullRows:delay=500ms@*", 1))
	}
	done := make(chan *Result, 1)
	go func() { done <- Train(replicaFactory(ds), ds, opts) }()
	select {
	case res := <-done:
		if res.WorkerDeaths != 1 {
			t.Fatalf("WorkerDeaths = %d, want 1 (stalled worker)", res.WorkerDeaths)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("watchdog never cancelled the stalled worker")
	}
}

// TestResumeMatchesUninterrupted is the crash-safety property: train 6
// epochs straight through, then train 3 epochs + kill + resume to 6
// with the same seed — final parameters must be bit-identical.
func TestResumeMatchesUninterrupted(t *testing.T) {
	ds := testDataset(t)
	factory := replicaFactory(ds)

	full := chaosOptions()
	full.Epochs = 6
	want := Train(factory, ds, full)

	ckpt := filepath.Join(t.TempDir(), "ps.ckpt")

	interrupted := chaosOptions()
	interrupted.Epochs = 3 // the "crash" after epoch 3's checkpoint
	interrupted.CheckpointPath, interrupted.CheckpointEvery = ckpt, 1
	Train(factory, ds, interrupted)

	resumed := chaosOptions()
	resumed.Epochs = 6
	resumed.CheckpointPath, resumed.CheckpointEvery = ckpt, 1
	resumed.Resume = true
	got := Train(factory, ds, resumed)

	if got.ResumedFrom != 3 {
		t.Fatalf("ResumedFrom = %d, want 3", got.ResumedFrom)
	}
	requireSameVector(t, "resumed shared", want.State.Shared, got.State.Shared)
}

// TestResumeWithoutCheckpointStartsFresh: Resume against an empty
// directory is not an error — there is simply nothing to restore.
func TestResumeWithoutCheckpointStartsFresh(t *testing.T) {
	ds := testDataset(t)
	opts := chaosOptions()
	opts.Epochs = 1
	opts.CheckpointPath = filepath.Join(t.TempDir(), "ps.ckpt")
	opts.CheckpointEvery = 1
	opts.Resume = true
	res := Train(replicaFactory(ds), ds, opts)
	if res.ResumedFrom != -1 {
		t.Fatalf("ResumedFrom = %d, want -1 (fresh start)", res.ResumedFrom)
	}
	if _, err := os.Stat(opts.CheckpointPath); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
}
