package ps

import (
	"math/rand"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/models"
	"mamdr/internal/optim"
)

// Worker runs MAMDR's inner loops on a model replica over an assigned
// subset of domains, exchanging parameters with a Store as described in
// Section IV-E:
//
//  1. pull dense parameters into the static cache at epoch start;
//  2. during the inner loop, resolve embedding rows through the
//     dynamic-cache — a miss queries the *latest* row from the PS
//     (bounding staleness), caches it, and records its static value;
//  3. after the inner loop, push Θ̃−Θ for dense tensors and touched rows
//     only, then clear both caches.
//
// With CacheEnabled=false the worker re-pulls every batch's embedding
// rows from the PS and pushes per-batch deltas immediately — the naive
// protocol whose synchronization overhead the cache experiments compare
// against.
type Worker struct {
	ID           int
	Model        models.Model
	Dataset      *data.Dataset
	Domains      []int
	Store        Store
	CacheEnabled bool

	// InnerOpt and InnerLR configure the worker's local optimizer.
	InnerOpt string
	InnerLR  float64
	// BatchSize and MaxBatchesPerDomain bound the inner loop per domain.
	BatchSize           int
	MaxBatchesPerDomain int

	params []*autograd.Tensor
	// static holds the epoch-start values: full tensors for dense
	// parameters, and per-row values for embedding rows as they are
	// first pulled.
	staticDense map[int][]float64
	staticRows  map[int]map[int][]float64
	// dynamicRows marks embedding rows currently held in the dynamic
	// cache (the model tensor itself stores their updated values).
	dynamicRows map[int]map[int]bool
}

// NewWorker builds a worker over a model replica.
func NewWorker(id int, m models.Model, ds *data.Dataset, domains []int, store Store, cache bool) *Worker {
	return &Worker{
		ID: id, Model: m, Dataset: ds, Domains: domains, Store: store,
		CacheEnabled: cache,
		InnerOpt:     "sgd", InnerLR: 0.1,
		BatchSize: 64,
		params:    m.Parameters(),
	}
}

// RunEpoch executes one DN inner loop over the worker's domains and
// pushes the outer-loop delta to the parameter server.
func (w *Worker) RunEpoch(rng *rand.Rand) {
	w.pullDense()
	w.staticRows = map[int]map[int][]float64{}
	w.dynamicRows = map[int]map[int]bool{}

	inner := optim.New(w.InnerOpt, w.InnerLR)
	order := rng.Perm(len(w.Domains))
	for _, di := range order {
		d := w.Domains[di]
		batches := w.Dataset.Batches(d, data.Train, w.BatchSize, rng)
		if w.MaxBatchesPerDomain > 0 && len(batches) > w.MaxBatchesPerDomain {
			batches = batches[:w.MaxBatchesPerDomain]
		}
		for _, b := range batches {
			w.resolveEmbeddingRows(b)
			for _, p := range w.params {
				p.ZeroGrad()
			}
			loss := autograd.BCEWithLogits(w.Model.Forward(b, true), b.Labels)
			loss.Backward()
			inner.Step(w.params)
			if !w.CacheEnabled {
				// Naive protocol: push this batch's deltas right away
				// and drop the cache so the next batch re-pulls.
				w.pushDelta()
				w.pullDense()
				w.staticRows = map[int]map[int][]float64{}
				w.dynamicRows = map[int]map[int]bool{}
			}
		}
	}
	if w.CacheEnabled {
		w.pushDelta()
	}
	// Clear caches for the next epoch (paper: "we clear both the
	// static-cache and dynamic-cache for next epoch").
	w.staticDense = nil
	w.staticRows = nil
	w.dynamicRows = nil
}

// pullDense refreshes dense tensors from the PS into both the model and
// the static cache.
func (w *Worker) pullDense() {
	w.staticDense = w.Store.PullDense()
	for t, vals := range w.staticDense {
		copy(w.params[t].Data, vals)
	}
}

// resolveEmbeddingRows ensures every embedding row the batch touches is
// present in the dynamic cache, querying the latest values from the PS
// on miss.
func (w *Worker) resolveEmbeddingRows(b *data.Batch) {
	layout := w.Store.Layout()
	for t, p := range w.params {
		if !layout.Embedding[t] {
			continue
		}
		rows := w.rowsTouchedBy(b, t)
		if len(rows) == 0 {
			continue
		}
		if w.dynamicRows[t] == nil {
			w.dynamicRows[t] = map[int]bool{}
			w.staticRows[t] = map[int][]float64{}
		}
		var missing []int
		for _, r := range rows {
			if !w.dynamicRows[t][r] {
				missing = append(missing, r)
			}
		}
		if len(missing) == 0 {
			continue
		}
		vals := w.Store.PullRows(t, missing)
		cols := p.Cols
		for i, r := range missing {
			copy(p.Data[r*cols:(r+1)*cols], vals[i])
			w.staticRows[t][r] = vals[i]
			w.dynamicRows[t][r] = true
		}
	}
}

// rowsTouchedBy returns the distinct rows of embedding tensor t that the
// batch will gather. Tensor-to-field association is positional: the
// encoder's embedding tables appear first in Parameters() in field
// order, which LayoutOf identifies by their row counts matching the
// field vocabularies.
func (w *Worker) rowsTouchedBy(b *data.Batch, t int) []int {
	p := w.params[t]
	if w.Dataset.HasFixedFeatures() {
		return nil // frozen features never sync
	}
	// Models built on the shared Encoder expose the per-field embedding
	// tables as the first NumFields() parameters in schema order, so
	// tensor t (< NumFields) serves field t. Tables for tiny
	// vocabularies fall below the embedding row threshold and are
	// synchronized densely instead, so they never reach this point.
	if t >= w.Dataset.Schema.NumFields() {
		return nil
	}
	ids := b.FieldValues[t]
	seen := make(map[int]bool, len(ids))
	var rows []int
	for _, id := range ids {
		if id >= 0 && id < p.Rows && !seen[id] {
			seen[id] = true
			rows = append(rows, id)
		}
	}
	return rows
}

// pushDelta sends Θ̃−Θ to the PS: full deltas for dense tensors, touched
// rows only for embeddings.
func (w *Worker) pushDelta() {
	layout := w.Store.Layout()
	d := Delta{Dense: map[int][]float64{}, Rows: map[int][]int{}, RowDeltas: map[int][][]float64{}}
	for t, p := range w.params {
		if layout.Embedding[t] {
			rows := w.dynamicRows[t]
			if len(rows) == 0 {
				continue
			}
			cols := p.Cols
			for r := range rows {
				static := w.staticRows[t][r]
				delta := make([]float64, cols)
				for j := 0; j < cols; j++ {
					delta[j] = p.Data[r*cols+j] - static[j]
				}
				d.Rows[t] = append(d.Rows[t], r)
				d.RowDeltas[t] = append(d.RowDeltas[t], delta)
			}
			continue
		}
		static := w.staticDense[t]
		delta := make([]float64, len(p.Data))
		for j := range delta {
			delta[j] = p.Data[j] - static[j]
		}
		d.Dense[t] = delta
	}
	w.Store.PushDelta(d)
}
