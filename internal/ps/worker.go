package ps

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/optim"
	"mamdr/internal/trace"
)

// Worker runs MAMDR's inner loops on a model replica over an assigned
// subset of domains, exchanging parameters with a Store as described in
// Section IV-E:
//
//  1. pull dense parameters into the static cache at epoch start;
//  2. during the inner loop, resolve embedding rows through the
//     dynamic-cache — a miss queries the *latest* row from the PS
//     (bounding staleness), caches it, and records its static value;
//  3. after the inner loop, push Θ̃−Θ for dense tensors and touched rows
//     only, then clear both caches.
//
// With CacheEnabled=false the worker re-pulls every batch's embedding
// rows from the PS and pushes per-batch deltas immediately — the naive
// protocol whose synchronization overhead the cache experiments compare
// against.
type Worker struct {
	ID           int
	Model        models.Model
	Dataset      *data.Dataset
	Domains      []int
	Store        Store
	CacheEnabled bool

	// InnerOpt and InnerLR configure the worker's local optimizer.
	InnerOpt string
	InnerLR  float64
	// BatchSize and MaxBatchesPerDomain bound the inner loop per domain.
	BatchSize           int
	MaxBatchesPerDomain int

	// Metrics, when non-nil, records the dynamic-cache hit/miss ratio
	// and the row-staleness distribution (shared with the server's
	// traffic series). Telemetry, when non-nil, records the same
	// per-domain loss/timing/conflict series as single-process training,
	// tagged with the worker id in the event log.
	Metrics   *Metrics
	Telemetry *framework.TrainMetrics
	// Tracer, when non-nil, emits one trace per epoch: worker.epoch →
	// worker.inner_step per domain → per-batch forward/backward/
	// optimizer phase spans, with every PS pull and push parented to
	// the step that issued it (across the RPC socket too).
	Tracer *trace.Tracer

	// OnBeat, when non-nil, is the worker's heartbeat: it fires after
	// every completed mini-batch (piggybacking liveness on real
	// progress), so a supervisor can declare the worker dead after a
	// missed-heartbeat deadline without any extra RPC traffic.
	OnBeat func()

	params []*autograd.Tensor
	// pushSeq numbers this worker's pushes (1-based); together with ID
	// it forms the Delta idempotency token that makes retries safe.
	pushSeq int64
	// pending holds the epoch's delta between TrainEpoch and PushEpoch
	// in the trainer's deterministic synchronous-push mode.
	pending *Delta
	// static holds the epoch-start values: full tensors for dense
	// parameters, and per-row values for embedding rows as they are
	// first pulled.
	staticDense map[int][]float64
	staticRows  map[int]map[int][]float64
	// dynamicRows marks embedding rows currently held in the dynamic
	// cache (the model tensor itself stores their updated values).
	dynamicRows map[int]map[int]bool
	// batchClock counts local mini-batches this epoch; rowPulledAt
	// remembers the clock at each row's last PS pull, so pushDelta can
	// report how stale the cached row grew (tracked only when Metrics
	// is attached).
	batchClock  int
	rowPulledAt map[int]map[int]int
}

// NewWorker builds a worker over a model replica. It panics if the
// store's layout does not align with the replica's parameters or names
// fields the dataset schema does not have — a mismatch here means some
// tensor would silently never synchronize.
func NewWorker(id int, m models.Model, ds *data.Dataset, domains []int, store Store, cache bool) *Worker {
	w := &Worker{
		ID: id, Model: m, Dataset: ds, Domains: domains, Store: store,
		CacheEnabled: cache,
		InnerOpt:     "sgd", InnerLR: 0.1,
		BatchSize: 64,
		params:    m.Parameters(),
	}
	w.verifyLayout()
	return w
}

// verifyLayout cross-checks the store's layout against the replica: the
// tensor list must align shape for shape, and every embedding tensor's
// field must exist in the dataset schema. Together with Layout.Validate
// on the server side this guarantees each tensor is reachable by either
// dense or row synchronization.
func (w *Worker) verifyLayout() {
	layout := w.Store.Layout()
	if layout.NumTensors() != len(w.params) {
		panic(fmt.Sprintf("ps: worker %d: store manages %d tensors, replica has %d",
			w.ID, layout.NumTensors(), len(w.params)))
	}
	numFields := w.Dataset.Schema.NumFields()
	for t, p := range w.params {
		if layout.Rows[t] != p.Rows || layout.Cols[t] != p.Cols {
			panic(fmt.Sprintf("ps: worker %d: tensor %d is %dx%d on the store, %dx%d on the replica",
				w.ID, t, layout.Rows[t], layout.Cols[t], p.Rows, p.Cols))
		}
		if layout.Embedding[t] && layout.Field[t] >= numFields {
			panic(fmt.Sprintf("ps: worker %d: tensor %d maps to field %d, schema has %d fields",
				w.ID, t, layout.Field[t], numFields))
		}
	}
}

// WorkerAbort is the panic value a worker raises when its supervisor
// cancels it (missed heartbeats, shutdown): the trainer's recovery path
// distinguishes a deliberate abort from an organic crash.
type WorkerAbort struct {
	ID     int
	Reason string
}

// Error implements error.
func (a *WorkerAbort) Error() string {
	return fmt.Sprintf("ps: worker %d aborted: %s", a.ID, a.Reason)
}

// RunEpoch executes one DN inner loop over the worker's domains and
// pushes the outer-loop delta to the parameter server.
func (w *Worker) RunEpoch(rng *rand.Rand) {
	w.RunEpochCtx(context.Background(), rng)
}

// RunEpochCtx is RunEpoch under a supervisor's context: the worker
// checks ctx between mini-batches and panics with *WorkerAbort once it
// is cancelled, so a hung or condemned worker stops at the next batch
// boundary instead of finishing the epoch.
func (w *Worker) RunEpochCtx(ctx context.Context, rng *rand.Rand) {
	w.runEpoch(ctx, rng, false)
}

// TrainEpoch runs the inner loops but defers the outer push: the
// epoch's delta is computed against the epoch-start state and parked
// until PushEpoch. The trainer's deterministic mode runs all workers'
// TrainEpochs concurrently (every worker reads the same epoch-start
// parameters, since nobody pushes) and then applies PushEpoch serially
// in worker-id order, which makes distributed training bit-reproducible
// under a fixed seed. Requires the PS-Worker cache: without it the
// worker pushes mid-epoch by design.
func (w *Worker) TrainEpoch(ctx context.Context, rng *rand.Rand) {
	if !w.CacheEnabled {
		panic(fmt.Sprintf("ps: worker %d: TrainEpoch requires CacheEnabled (deferred pushes)", w.ID))
	}
	w.runEpoch(ctx, rng, true)
}

// PushEpoch applies the delta parked by TrainEpoch.
func (w *Worker) PushEpoch(ctx context.Context) {
	if w.pending != nil {
		ctx = w.Tracer.Context(ctx)
		w.send(ctx, *w.pending)
		w.pending = nil
	}
}

// runEpoch is the shared epoch body; deferPush parks the outer delta
// for PushEpoch instead of sending it.
func (w *Worker) runEpoch(ctx context.Context, rng *rand.Rand, deferPush bool) {
	ctx = w.Tracer.Context(ctx)
	ctx, epochSpan := trace.Start(ctx, "worker.epoch", trace.A("worker", w.ID))
	defer epochSpan.End()

	w.pullDense(ctx)
	w.staticRows = map[int]map[int][]float64{}
	w.dynamicRows = map[int]map[int]bool{}
	w.rowPulledAt = map[int]map[int]int{}
	w.batchClock = 0

	rec := w.Telemetry.NewEpochRecorder(w.params, w.ID)
	inner := optim.New(w.InnerOpt, w.InnerLR)
	order := rng.Perm(len(w.Domains))
	for _, di := range order {
		d := w.Domains[di]
		batches := w.Dataset.Batches(d, data.Train, w.BatchSize, rng)
		if w.MaxBatchesPerDomain > 0 && len(batches) > w.MaxBatchesPerDomain {
			batches = batches[:w.MaxBatchesPerDomain]
		}
		dname := w.Telemetry.DomainName(d)
		if dname == "" { // no telemetry attached; fall back to the id
			dname = fmt.Sprintf("domain-%d", d)
		}
		stepCtx, stepSpan := trace.Start(ctx, "worker.inner_step",
			trace.A("worker", w.ID), trace.A("domain", dname),
			trace.A("batches", len(batches)))
		rec.BeforePass()
		var total float64
		for _, b := range batches {
			if err := ctx.Err(); err != nil {
				panic(&WorkerAbort{ID: w.ID, Reason: err.Error()})
			}
			w.resolveEmbeddingRows(stepCtx, b)
			for _, p := range w.params {
				p.ZeroGrad()
			}
			_, fw := trace.Start(stepCtx, "train.forward")
			loss := autograd.BCEWithLogits(w.Model.Forward(b, true), b.Labels)
			fw.End()
			_, bw := trace.Start(stepCtx, "train.backward")
			loss.Backward()
			bw.End()
			_, op := trace.Start(stepCtx, "train.optimizer")
			inner.Step(w.params)
			op.End()
			total += loss.Item()
			loss.Release()
			w.batchClock++
			if w.OnBeat != nil {
				w.OnBeat()
			}
			if !w.CacheEnabled {
				// Naive protocol: push this batch's deltas right away
				// and drop the cache so the next batch re-pulls.
				w.send(stepCtx, w.buildDelta())
				w.pullDense(stepCtx)
				w.staticRows = map[int]map[int][]float64{}
				w.dynamicRows = map[int]map[int]bool{}
				w.rowPulledAt = map[int]map[int]int{}
			}
		}
		if len(batches) > 0 {
			total /= float64(len(batches))
		}
		stepSpan.EndWith(trace.A("loss", total))
		rec.AfterPassTC(d, total, stepSpan.Context())
	}
	if w.CacheEnabled {
		d := w.buildDelta()
		if deferPush {
			w.pending = &d
		} else {
			w.send(ctx, d)
		}
	}
	rec.Finish(-1)
	w.clearCaches()
}

// clearCaches drops the static and dynamic caches for the next epoch
// (paper: "we clear both the static-cache and dynamic-cache for next
// epoch").
func (w *Worker) clearCaches() {
	w.staticDense = nil
	w.staticRows = nil
	w.dynamicRows = nil
	w.rowPulledAt = nil
}

// pullDense refreshes dense tensors from the PS into both the model and
// the static cache.
func (w *Worker) pullDense(ctx context.Context) {
	w.staticDense = w.Store.PullDense(ctx)
	for t, vals := range w.staticDense {
		copy(w.params[t].Data, vals)
	}
}

// resolveEmbeddingRows ensures every embedding row the batch touches is
// present in the dynamic cache, querying the latest values from the PS
// on miss.
func (w *Worker) resolveEmbeddingRows(ctx context.Context, b *data.Batch) {
	layout := w.Store.Layout()
	for t, p := range w.params {
		if !layout.Embedding[t] {
			continue
		}
		rows := w.rowsTouchedBy(b, t, layout.Field[t])
		if len(rows) == 0 {
			continue
		}
		if w.dynamicRows[t] == nil {
			w.dynamicRows[t] = map[int]bool{}
			w.staticRows[t] = map[int][]float64{}
		}
		var missing []int
		for _, r := range rows {
			if !w.dynamicRows[t][r] {
				missing = append(missing, r)
			}
		}
		w.Metrics.observeCacheResolve(len(rows)-len(missing), len(missing))
		if len(missing) == 0 {
			continue
		}
		vals := w.Store.PullRows(ctx, t, missing)
		cols := p.Cols
		for i, r := range missing {
			copy(p.Data[r*cols:(r+1)*cols], vals[i])
			w.staticRows[t][r] = vals[i]
			w.dynamicRows[t][r] = true
		}
		if w.Metrics != nil {
			if w.rowPulledAt[t] == nil {
				w.rowPulledAt[t] = map[int]int{}
			}
			for _, r := range missing {
				w.rowPulledAt[t][r] = w.batchClock
			}
		}
	}
}

// rowsTouchedBy returns the distinct rows of embedding tensor t that
// the batch will gather. The tensor-to-field association comes from the
// layout's explicit Field mapping (declared by the model through
// models.EmbeddingTabler), not from the tensor's position or row count.
func (w *Worker) rowsTouchedBy(b *data.Batch, t, field int) []int {
	p := w.params[t]
	ids := b.FieldValues[field]
	seen := make(map[int]bool, len(ids))
	var rows []int
	for _, id := range ids {
		if id >= 0 && id < p.Rows && !seen[id] {
			seen[id] = true
			rows = append(rows, id)
		}
	}
	return rows
}

// buildDelta computes Θ̃−Θ against the caches: full deltas for dense
// tensors, touched rows only for embeddings.
func (w *Worker) buildDelta() Delta {
	layout := w.Store.Layout()
	d := Delta{Dense: map[int][]float64{}, Rows: map[int][]int{}, RowDeltas: map[int][][]float64{}}
	for t, p := range w.params {
		if layout.Embedding[t] {
			if len(w.dynamicRows[t]) == 0 {
				continue
			}
			// Push rows in sorted order: map iteration order is random,
			// and the server applies row updates sequentially per shard,
			// so a deterministic order keeps distributed runs
			// reproducible under a fixed seed.
			rows := make([]int, 0, len(w.dynamicRows[t]))
			for r := range w.dynamicRows[t] {
				rows = append(rows, r)
			}
			sort.Ints(rows)
			cols := p.Cols
			for _, r := range rows {
				if w.Metrics != nil {
					w.Metrics.observeStaleness(w.batchClock - w.rowPulledAt[t][r])
				}
				static := w.staticRows[t][r]
				delta := make([]float64, cols)
				for j := 0; j < cols; j++ {
					delta[j] = p.Data[r*cols+j] - static[j]
				}
				d.Rows[t] = append(d.Rows[t], r)
				d.RowDeltas[t] = append(d.RowDeltas[t], delta)
			}
			continue
		}
		static := w.staticDense[t]
		delta := make([]float64, len(p.Data))
		for j := range delta {
			delta[j] = p.Data[j] - static[j]
		}
		d.Dense[t] = delta
	}
	return d
}

// send tags the delta with the worker's idempotency token and pushes
// it. A failed push — the Store panics when a push exhausts its
// retries — is never silent: it is counted as push_failures_total in
// the telemetry registry and re-raised, aborting the epoch so the
// supervisor sees a dead worker rather than a silently desynced one.
func (w *Worker) send(ctx context.Context, d Delta) {
	w.pushSeq++
	d.WorkerID, d.Seq = w.ID, w.pushSeq
	defer func() {
		if r := recover(); r != nil {
			w.Metrics.observePushFailure()
			panic(r)
		}
	}()
	w.Store.PushDelta(ctx, d)
}
